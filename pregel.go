// Package pregelnet is a native Go implementation of a Pregel-style Bulk
// Synchronous Parallel (BSP) graph-processing framework for (simulated)
// public clouds, reproducing "Optimizations and Analysis of BSP Graph
// Processing Models on Public Clouds" (Redekopp, Simmhan, Prasanna —
// IPDPS 2013).
//
// The framework mirrors the paper's Pregel.NET architecture: a job manager
// coordinates supersteps through reliable cloud queues; partition workers
// hold disjoint vertex partitions, run a user compute() on every active
// vertex in parallel across cores, deliver messages to co-located vertices
// in memory and to remote ones as serialized bulk batches (over in-process
// channels or real TCP). A deterministic cloud cost model prices each
// superstep — compute, serialization, network, virtual-memory thrash past
// the physical ceiling, and barrier overhead that grows with workers — in
// simulated seconds and pay-per-use dollars.
//
// Its centerpiece is the paper's contribution: swath scheduling. Instead of
// starting all |V| traversals of an O(|V||E|)-message algorithm like
// betweenness centrality at once, sources are injected in swaths whose size
// (static, sampling, adaptive) and initiation (sequential, static-N,
// dynamic peak detection) are chosen to keep message buffers inside
// physical memory.
//
// Quick start:
//
//	g := pregelnet.Datasets.WG()
//	res, err := pregelnet.PageRank(g, 8)            // ranks + per-superstep stats
//	bc, err := pregelnet.BetweennessCentrality(g, 8, pregelnet.BCOptions{
//		Roots:     64,
//		SwathSize: pregelnet.AdaptiveSwathSize(6 << 30),
//		Initiate:  pregelnet.DynamicInitiation(),
//	})
//
// For full control (custom vertex programs, combiners, aggregators, TCP
// transport, custom cost models) use the generic JobSpec / Run aliases.
package pregelnet

import (
	"io"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/cloud"
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/observe"
	"pregelnet/internal/partition"
)

// Graph and dataset types.
type (
	// Graph is an immutable CSR graph.
	Graph = graph.Graph
	// VertexID identifies a vertex (dense, 0..N-1).
	VertexID = graph.VertexID
	// GraphBuilder accumulates edges into a Graph.
	GraphBuilder = graph.Builder
	// GraphStats summarizes a dataset (Table 1 columns).
	GraphStats = graph.Stats
)

// Engine types (generic aliases into the core engine).
type (
	// JobSpec configures a BSP job over message type M.
	JobSpec[M any] = core.JobSpec[M]
	// JobResult is a completed job's programs, stats, and simulated bill.
	JobResult[M any] = core.JobResult[M]
	// Context is the engine API available inside Compute.
	Context[M any] = core.Context[M]
	// VertexProgram is a user algorithm.
	VertexProgram[M any] = core.VertexProgram[M]
	// PartitionProgram is a subgraph-centric user algorithm: it receives
	// its whole partition each superstep and typically runs to a local
	// fixpoint before the barrier (JobSpec.NewPartitionProgram).
	PartitionProgram[M any] = core.PartitionProgram[M]
	// PartitionContext is the engine API available inside ComputePartition.
	PartitionContext[M any] = core.PartitionContext[M]
	// Codec serializes messages.
	Codec[M any] = core.Codec[M]
	// Combiner merges same-destination messages.
	Combiner[M any] = core.Combiner[M]
	// StepStats is one superstep's measurements.
	StepStats = core.StepStats
	// SwathScheduler injects traversal sources over time.
	SwathScheduler = core.SwathScheduler
	// SwathSizer chooses swath sizes.
	SwathSizer = core.SwathSizer
	// SwathInitiator decides when the next swath starts.
	SwathInitiator = core.SwathInitiator
)

// Cloud substrate types.
type (
	// VMSpec describes a worker instance type.
	VMSpec = cloud.VMSpec
	// CostModel prices superstep resource usage into simulated time.
	CostModel = cloud.CostModel
	// Partitioner assigns vertices to workers.
	Partitioner = partition.Partitioner
	// Assignment maps vertices to partitions.
	Assignment = partition.Assignment
)

// Fault-tolerance and chaos-testing types. A FaultPlan declares seeded
// fault probabilities plus scripted events; NewChaos arms it; JobSpec.Chaos
// wires it into every substrate layer (blob store, queues, transport,
// fabric). The engine's retry and checkpoint-rollback machinery absorbs
// the injected faults: results match a failure-free run.
type (
	// FaultPlan declares seeded fault probabilities and scripted events.
	FaultPlan = cloud.FaultPlan
	// Chaos is an armed FaultPlan (see NewChaos, JobSpec.Chaos).
	Chaos = cloud.Chaos
	// FaultStats counts faults a Chaos actually injected (JobResult.Faults).
	FaultStats = cloud.FaultStats
	// RetryPolicy tunes transient-fault retry/backoff (JobSpec.Retry).
	RetryPolicy = cloud.RetryPolicy
	// VMRestart scripts one fabric VM restart (FaultPlan.VMRestarts).
	VMRestart = cloud.VMRestart
	// ConnDrop scripts one dropped data-plane connection (FaultPlan.ConnDrops).
	ConnDrop = cloud.ConnDrop
	// BlobWriteFail scripts one blob's writes failing persistently — a VM
	// dying mid-write (FaultPlan.BlobWriteFails).
	BlobWriteFail = cloud.BlobWriteFail
	// RecoveryMode selects confined (failed-workers-only) or global
	// rollback recovery (JobSpec.RecoveryMode).
	RecoveryMode = core.RecoveryMode
	// RecoveryEvent records one recovery's scope and duplicated-work cost
	// (JobResult.RecoveryEvents).
	RecoveryEvent = core.RecoveryEvent
)

// Recovery modes for JobSpec.RecoveryMode.
const (
	// RecoverConfined (the default) rolls back only the failed workers;
	// survivors keep live state and replay logged messages.
	RecoverConfined = core.RecoverConfined
	// RecoverGlobal rolls every worker back to the last checkpoint.
	RecoverGlobal = core.RecoverGlobal
)

// NewChaos arms a FaultPlan with its seeded per-category PRNG streams.
func NewChaos(plan FaultPlan) *Chaos { return cloud.NewChaos(plan) }

// Observability types. A Tracer on JobSpec.Tracer records typed engine spans
// (supersteps, barriers, compute, checkpoints, faults...) into its sinks; a
// FlightRecorder sink keeps the most recent events in a bounded ring that
// survives job failure. A nil Tracer costs nothing on the hot path.
type (
	// Tracer is the structured event tracer (JobSpec.Tracer).
	Tracer = observe.Tracer
	// TraceEvent is one recorded span or instant.
	TraceEvent = observe.Event
	// TraceKind classifies a TraceEvent (superstep, barrier_wait, fault...).
	TraceKind = observe.Kind
	// FlightRecorder is a bounded in-memory ring of recent TraceEvents.
	FlightRecorder = observe.Recorder
	// EngineMetrics is a Prometheus-style metric registry (JobSpec.Metrics).
	EngineMetrics = observe.Metrics
)

// NewTracer returns a Tracer fanning events out to the given sinks.
func NewTracer(sinks ...observe.Sink) *Tracer { return observe.NewTracer(sinks...) }

// NewTraceRecorder returns a Tracer wired to a fresh FlightRecorder keeping
// the most recent `capacity` events (<=0 picks a sensible default).
func NewTraceRecorder(capacity int) (*Tracer, *FlightRecorder) {
	return observe.NewTraceRecorder(capacity)
}

// NewEngineMetrics returns an empty metric registry for JobSpec.Metrics.
func NewEngineMetrics() *EngineMetrics { return observe.NewMetrics() }

// WriteChromeTrace writes events as a Chrome trace_event file, loadable in
// chrome://tracing or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return observe.WriteChromeTrace(w, events)
}

// WriteTraceJSONL writes events as one JSON object per line.
func WriteTraceJSONL(w io.Writer, events []TraceEvent) error {
	return observe.WriteJSONL(w, events)
}

// ErrTransient classifies retryable substrate faults (match with errors.Is).
var ErrTransient = cloud.ErrTransient

// Run executes a BSP job (see core.Run).
func Run[M any](spec JobSpec[M]) (*JobResult[M], error) { return core.Run(spec) }

// NewGraphBuilder returns a builder for a graph with n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// Partitioners.
var (
	// HashPartitioner is the Pregel default (vertexID mod k).
	HashPartitioner Partitioner = partition.Hash{}
	// ChunkPartitioner assigns contiguous ID ranges.
	ChunkPartitioner Partitioner = partition.Chunk{}
)

// MultilevelPartitioner returns a METIS-style multilevel k-way partitioner.
func MultilevelPartitioner() Partitioner { return partition.NewMultilevel() }

// StreamingPartitioner returns the linear-weighted deterministic greedy
// (LDG) streaming partitioner of Stanton & Kliot.
func StreamingPartitioner() Partitioner { return partition.NewLDG(partition.DefaultSlack) }

// IncrementalPartitioner returns the Spinner-style incremental repartitioner:
// fresh jobs get an LDG layout, and live resizes adapt the previous
// assignment, moving only the minimum set of vertices needed for balance.
// This is the default JobSpec.Repartitioner for elastic jobs.
func IncrementalPartitioner() Partitioner { return partition.NewIncremental() }

// RepartitionerFrom is implemented by partitioners that can adapt a previous
// assignment to a new partition count instead of recomputing from scratch
// (see IncrementalPartitioner). The engine uses it automatically at live
// resizes when JobSpec.Repartitioner implements it.
type RepartitionerFrom = partition.RepartitionerFrom

// PartitionQuality evaluates an assignment (edge-cut %, balance). It returns
// an error (rather than panicking) for assignments with out-of-range entries.
func PartitionQuality(g *Graph, a Assignment, k int, strategy string) (partition.Quality, error) {
	return partition.Evaluate(g, a, k, strategy)
}

// datasets groups the paper's dataset analogs and generators.
type datasets struct{}

// Datasets provides the scaled analogs of the paper's Table 1 datasets and
// the synthetic generators behind them.
var Datasets datasets

// SD returns the SlashDot analog (social network, very short diameter).
func (datasets) SD() *Graph { return graph.DatasetSD() }

// WG returns the web-Google analog (power-law hubs + host communities).
func (datasets) WG() *Graph { return graph.DatasetWG() }

// CP returns the cit-Patents analog (temporally banded citation graph).
func (datasets) CP() *Graph { return graph.DatasetCP() }

// LJ returns the LiveJournal analog (large dense social network).
func (datasets) LJ() *Graph { return graph.DatasetLJ() }

// ByName looks a dataset up by name ("sd", "wg", "cp", "lj"); nil if unknown.
func (datasets) ByName(name string) *Graph { return graph.Dataset(name) }

// Stats measures a graph (Table 1 columns), sampling `samples` BFS sources.
func (datasets) Stats(g *Graph, samples int, seed int64) GraphStats {
	return graph.ComputeStats(g, samples, seed)
}

// Swath heuristic constructors (paper §IV).

// StaticSwathSize always uses a fixed swath size.
func StaticSwathSize(n int) SwathSizer { return core.StaticSizer(n) }

// AdaptiveSwathSize scales each swath by target/observed peak memory (the
// paper's adaptive heuristic, up to 3.5x speedup).
func AdaptiveSwathSize(targetMemoryBytes int64) SwathSizer {
	return &core.AdaptiveSizer{Initial: 4, TargetMemoryBytes: targetMemoryBytes}
}

// SamplingSwathSize probes with small swaths then extrapolates one static
// size (the paper's sampling heuristic).
func SamplingSwathSize(sampleSize, samples int, targetMemoryBytes int64) SwathSizer {
	return &core.SamplingSizer{SampleSize: sampleSize, Samples: samples, TargetMemoryBytes: targetMemoryBytes}
}

// SequentialInitiation starts each swath only after the previous drains.
func SequentialInitiation() SwathInitiator { return core.SequentialInitiator{} }

// StaticNInitiation starts a swath every n supersteps.
func StaticNInitiation(n int) SwathInitiator { return core.StaticNInitiator(n) }

// DynamicInitiation starts a swath when message traffic peaks and falls
// (the paper's automated heuristic, ~24% over sequential).
func DynamicInitiation() SwathInitiator { return core.DynamicPeakInitiator{} }

// NewSwathRunner schedules the sources in swaths under a sizer + initiator.
func NewSwathRunner(sources []VertexID, sizer SwathSizer, init SwathInitiator) SwathScheduler {
	return core.NewSwathRunner(sources, sizer, init)
}

// AllSourcesAtOnce injects every source in superstep 0 (the unoptimized
// Pregel model; the paper's baseline).
func AllSourcesAtOnce(sources []VertexID) SwathScheduler { return core.NewAllAtOnce(sources) }

// FirstNSources returns the n lowest vertex IDs as a root set.
func FirstNSources(g *Graph, n int) []VertexID { return core.FirstNSources(g, n) }

// DefaultCostModel prices jobs on the paper's Azure large instances.
func DefaultCostModel() CostModel { return cloud.DefaultCostModel(cloud.LargeVM()) }

// CostModelWithMemory prices jobs on large instances with a custom physical
// memory ceiling (used to study memory pressure at small scale).
func CostModelWithMemory(bytes int64) CostModel {
	return cloud.DefaultCostModel(cloud.LargeVM().WithMemory(bytes))
}

// PageRankResult bundles PageRank output with run statistics.
type PageRankResult struct {
	Ranks  []float64
	Stats  []StepStats
	SimSec float64
	CostUS float64
}

// PageRank runs the paper's 30-iteration PageRank on `workers` workers with
// hash partitioning and a sum combiner.
func PageRank(g *Graph, workers int) (*PageRankResult, error) {
	return PageRankWith(g, workers, 30, 0.85, nil, CostModel{})
}

// PageRankWith runs PageRank with explicit iterations, damping, assignment
// (nil = hash) and cost model (zero = default).
func PageRankWith(g *Graph, workers, iterations int, damping float64,
	assign Assignment, model CostModel) (*PageRankResult, error) {
	spec := algorithms.PageRank{Iterations: iterations, Damping: damping}.Spec(g, workers)
	spec.Assignment = assign
	spec.CostModel = model
	res, err := core.Run(spec)
	if err != nil {
		return nil, err
	}
	return &PageRankResult{
		Ranks:  algorithms.Ranks(res, g.NumVertices()),
		Stats:  res.Steps,
		SimSec: res.SimSeconds,
		CostUS: res.CostDollars,
	}, nil
}

// PageRankSubgraph runs the default 30-iteration PageRank under the
// subgraph-centric execution path (UseSubgraphModel): one sequential
// partition sweep per superstep instead of the parallel per-vertex slots.
// Ranks agree with PageRank to ULP scale — the adapter changes only the
// order float sums associate in.
func PageRankSubgraph(g *Graph, workers int) (*PageRankResult, error) {
	spec := algorithms.PageRank{Iterations: 30, Damping: 0.85}.Spec(g, workers)
	core.UseVertexAdapter(&spec)
	res, err := core.Run(spec)
	if err != nil {
		return nil, err
	}
	return &PageRankResult{
		Ranks:  algorithms.Ranks(res, g.NumVertices()),
		Stats:  res.Steps,
		SimSec: res.SimSeconds,
		CostUS: res.CostDollars,
	}, nil
}

// BCOptions configures a betweenness-centrality run.
type BCOptions struct {
	// Roots is the number of traversal sources (0 = all vertices). The
	// paper samples 50-75 roots on large graphs and extrapolates.
	Roots int
	// SwathSize sizes each swath (nil = all roots at once, the baseline).
	SwathSize SwathSizer
	// Initiate decides when swaths start (nil = sequential).
	Initiate SwathInitiator
	// Assignment maps vertices to workers (nil = hash).
	Assignment Assignment
	// CostModel prices the run (zero value = default large VMs).
	CostModel CostModel
	// Elastic, when non-nil, enables live elastic scaling: the controller
	// is consulted at every superstep barrier and may change the worker
	// count mid-job (see LiveThresholdScaling). `workers` is the starting
	// count. Checkpointing is enabled automatically (every 4 supersteps)
	// unless CheckpointEvery is set.
	Elastic ElasticController
	// CheckpointEvery snapshots worker state every Nth superstep for fault
	// recovery (0 = only the elastic default above).
	CheckpointEvery int
}

// BCResult bundles BC output with run statistics.
type BCResult struct {
	// Scores are raw Brandes scores over ordered pairs from the chosen
	// roots (halve them for the undirected convention).
	Scores []float64
	Stats  []StepStats
	SimSec float64
	CostUS float64
	// VMSec is the pro-rata VM-seconds bill — under live elastic scaling
	// this is what the dynamic policy is trying to shrink.
	VMSec float64
	// ScaleEvents records live resizes (empty without BCOptions.Elastic).
	ScaleEvents []ScaleEvent
}

// BetweennessCentrality runs Brandes' algorithm from opt.Roots sources with
// swath scheduling (paper §IV).
func BetweennessCentrality(g *Graph, workers int, opt BCOptions) (*BCResult, error) {
	n := opt.Roots
	if n <= 0 || n > g.NumVertices() {
		n = g.NumVertices()
	}
	roots := core.FirstNSources(g, n)
	var sched SwathScheduler
	if opt.SwathSize == nil {
		sched = core.NewAllAtOnce(roots)
	} else {
		init := opt.Initiate
		if init == nil {
			init = core.SequentialInitiator{}
		}
		sched = core.NewSwathRunner(roots, opt.SwathSize, init)
	}
	spec := algorithms.BC(g, workers, sched)
	spec.Assignment = opt.Assignment
	spec.CostModel = opt.CostModel
	spec.CheckpointEvery = opt.CheckpointEvery
	if opt.Elastic != nil {
		spec.ElasticController = opt.Elastic
		if spec.CheckpointEvery <= 0 {
			spec.CheckpointEvery = 4
		}
	}
	res, err := core.Run(spec)
	if err != nil {
		return nil, err
	}
	return &BCResult{
		Scores:      algorithms.BCScores(res, g.NumVertices()),
		Stats:       res.Steps,
		SimSec:      res.SimSeconds,
		CostUS:      res.CostDollars,
		VMSec:       res.VMSeconds,
		ScaleEvents: res.ScaleEvents,
	}, nil
}

// APSPResult bundles all-pairs shortest path output.
type APSPResult struct {
	// Dist[i][v] is the hop distance from the i-th root to v (-1 unreachable).
	Dist   [][]int32
	Roots  []VertexID
	Stats  []StepStats
	SimSec float64
}

// AllPairsShortestPaths runs multi-source BFS from `roots` sources (0 = all)
// under the given swath scheduler configuration (nil sizer = all at once).
func AllPairsShortestPaths(g *Graph, workers, nRoots int, sizer SwathSizer, init SwathInitiator) (*APSPResult, error) {
	if nRoots <= 0 || nRoots > g.NumVertices() {
		nRoots = g.NumVertices()
	}
	roots := core.FirstNSources(g, nRoots)
	var sched SwathScheduler
	if sizer == nil {
		sched = core.NewAllAtOnce(roots)
	} else {
		if init == nil {
			init = core.SequentialInitiator{}
		}
		sched = core.NewSwathRunner(roots, sizer, init)
	}
	spec := algorithms.APSP(g, workers, sched)
	res, err := core.Run(spec)
	if err != nil {
		return nil, err
	}
	return &APSPResult{
		Dist:   algorithms.APSPDistances(res, g.NumVertices(), roots),
		Roots:  roots,
		Stats:  res.Steps,
		SimSec: res.SimSeconds,
	}, nil
}

// ShortestPaths runs single-source BFS from src, returning hop distances.
func ShortestPaths(g *Graph, workers int, src VertexID) ([]int32, error) {
	res, err := core.Run(algorithms.SSSP(g, workers, src))
	if err != nil {
		return nil, err
	}
	return algorithms.SSSPDistances(res, g.NumVertices()), nil
}

// ShortestPathsSubgraph is ShortestPaths under the subgraph-centric model:
// each partition relaxes to a local fixpoint between barriers and only
// boundary edges generate messages, so supersteps track the partition-hop
// diameter instead of the vertex-hop diameter. Distances are bit-identical
// to ShortestPaths.
func ShortestPathsSubgraph(g *Graph, workers int, src VertexID) ([]int32, error) {
	res, err := core.Run(algorithms.SSSPSubgraph(g, workers, src))
	if err != nil {
		return nil, err
	}
	return algorithms.SSSPSubgraphDistances(res, g.NumVertices()), nil
}

// UseSubgraphModel rewrites a vertex-centric spec in place to run under the
// subgraph-centric execution path via the engine's adapter: one sequential
// partition sweep per superstep, same results. Useful for A/B-ing the two
// models on an unmodified VertexProgram.
func UseSubgraphModel[M any](spec *JobSpec[M]) { core.UseVertexAdapter(spec) }

// ConnectedComponents labels each vertex with its component's minimum
// vertex id.
func ConnectedComponents(g *Graph, workers int) ([]int32, error) {
	res, err := core.Run(algorithms.WCC(g, workers))
	if err != nil {
		return nil, err
	}
	return algorithms.WCCLabels(res, g.NumVertices()), nil
}

// ConnectedComponentsSubgraph is ConnectedComponents under the
// subgraph-centric model (bit-identical labels, far fewer supersteps and
// boundary messages on high-diameter or well-partitioned graphs).
func ConnectedComponentsSubgraph(g *Graph, workers int) ([]int32, error) {
	res, err := core.Run(algorithms.WCCSubgraph(g, workers))
	if err != nil {
		return nil, err
	}
	return algorithms.WCCSubgraphLabels(res, g.NumVertices()), nil
}

// Communities runs label-propagation community detection for `rounds`
// rounds.
func Communities(g *Graph, workers, rounds int) ([]int32, error) {
	res, err := core.Run(algorithms.LPA(g, workers, rounds))
	if err != nil {
		return nil, err
	}
	return algorithms.LPALabels(res, g.NumVertices()), nil
}

// TriangleCount counts the triangles in g on the BSP engine (two
// supersteps, degree-ordered candidate exchange).
func TriangleCount(g *Graph, workers int) (int64, error) {
	res, err := core.Run(algorithms.Triangles(g, workers))
	if err != nil {
		return 0, err
	}
	return algorithms.TriangleCount(res), nil
}

// KCoreDecomposition computes each vertex's coreness (distributed h-index
// iteration to fixpoint).
func KCoreDecomposition(g *Graph, workers int) ([]uint32, error) {
	res, err := core.Run(algorithms.KCore(g, workers))
	if err != nil {
		return nil, err
	}
	return algorithms.Coreness(res, g.NumVertices()), nil
}

// EstimateDiameter estimates max/effective diameter via a sampled
// multi-source BFS sweep on the engine.
func EstimateDiameter(g *Graph, workers, samples int) (*algorithms.DiameterEstimate, error) {
	return algorithms.EstimateDiameter(g, workers, samples)
}

// BCMessage is the betweenness-centrality wire message type, for use with
// BCSpec and the generic Run.
type BCMessage = algorithms.BCMsg

// BCSpec builds a betweenness-centrality JobSpec for full control (custom
// assignment, cost model, checkpointing); BetweennessCentrality is the
// simpler one-call wrapper.
func BCSpec(g *Graph, workers int, scheduler SwathScheduler) JobSpec[BCMessage] {
	return algorithms.BC(g, workers, scheduler)
}

// BCScoresOf extracts centrality scores from a BCSpec run.
func BCScoresOf(res *JobResult[BCMessage], n int) []float64 {
	return algorithms.BCScores(res, n)
}

// WeightedShortestPaths computes weighted single-source shortest paths from
// src (the canonical Pregel example program; +Inf = unreachable).
func WeightedShortestPaths(wg *WeightedGraph, workers int, src VertexID) ([]float64, error) {
	res, err := core.Run(algorithms.WeightedSSSP(wg, workers, src))
	if err != nil {
		return nil, err
	}
	return algorithms.WeightedDistances(res, wg.NumVertices()), nil
}
