package jobserver

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"pregelnet/internal/cloud"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustValidate normalizes a request the way handleSubmit would.
func mustValidate(t *testing.T, req JobRequest) JobRequest {
	t.Helper()
	if err := validate(&req); err != nil {
		t.Fatal(err)
	}
	return req
}

// isolatedRun executes the request alone, outside any scheduler, as the
// bit-identical baseline.
func isolatedRun(t *testing.T, req JobRequest) *Summary {
	t.Helper()
	sum, err := executeJob(req, &runHooks{queues: cloud.NewQueueService()})
	if err != nil {
		t.Fatalf("isolated run: %v", err)
	}
	return sum
}

// waitTerminal polls until the job leaves the scheduler, failing the test
// on timeout.
func waitTerminal(t *testing.T, s *Server, id int) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		st := s.jobs[id].statusLocked()
		s.mu.Unlock()
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %d did not finish", id)
	return JobStatus{}
}

// normalized strips the fields a scheduler legitimately changes — real
// wall time and preemption billing — leaving everything that must be
// bit-identical to an isolated run.
func normalized(sum *Summary) Summary {
	cp := *sum
	cp.WallSeconds = 0
	cp.Preemptions = 0
	cp.PreemptSeconds = 0
	cp.CostDollars = 0
	cp.VMSeconds = 0
	return cp
}

// summariesMatch compares a scheduled job's summary against its isolated
// baseline: everything must be exactly equal except TopVertices scores,
// which get a relative 1e-9 tolerance. Float-scored algorithms (pagerank,
// bc) sum message contributions in cross-sender arrival order, which is
// goroutine-scheduling dependent in the engine with or without a
// concurrent scheduler, so their scores are only ULP-stable; integer-state
// algorithms compare bit-exactly through this same helper.
func summariesMatch(got, want Summary) bool {
	gt, wt := got.TopVertices, want.TopVertices
	if len(gt) != len(wt) {
		return false
	}
	for i := range gt {
		if gt[i].Vertex != wt[i].Vertex {
			return false
		}
		a, b := gt[i].Score, wt[i].Score
		if a != b && math.Abs(a-b) > 1e-9*math.Max(math.Abs(a), math.Abs(b)) {
			return false
		}
	}
	got.TopVertices, want.TopVertices = nil, nil
	return reflect.DeepEqual(got, want)
}

// TestConcurrentTenantsSoak drives the scheduler with a mixed-tenant,
// mixed-priority, mixed-algorithm load and verifies every job's summary is
// bit-identical to running that job alone. Run with -race in CI.
func TestConcurrentTenantsSoak(t *testing.T) {
	reqs := []JobRequest{
		{Algorithm: "pagerank", Graph: "sd", Workers: 4, Iterations: 12, Tenant: "acme"},
		{Algorithm: "sssp", Graph: "sd", Workers: 3, Tenant: "acme", Priority: 2},
		{Algorithm: "wcc", Graph: "sd", Workers: 4, Tenant: "globex"},
		{Algorithm: "lpa", Graph: "sd", Workers: 2, Iterations: 6, Tenant: "globex", Priority: 4},
		{Algorithm: "bc", Graph: "sd", Workers: 3, Roots: 6, Swath: "none", Tenant: "initech"},
		{Algorithm: "pagerank", Graph: "sd", Workers: 2, Iterations: 8, Tenant: "initech", Priority: 1},
		{Algorithm: "wcc", Graph: "sd", Workers: 2, Tenant: "acme", Priority: 3},
		{Algorithm: "sssp", Graph: "sd", Workers: 4, Tenant: "globex", Priority: 9},
	}
	base := make([]*Summary, len(reqs))
	for i := range reqs {
		reqs[i] = mustValidate(t, reqs[i])
		base[i] = isolatedRun(t, reqs[i])
	}

	s := newTestServer(t, Config{FleetVMs: 10, MaxConcurrent: 4, TenantCap: 4})
	ids := make([]int, len(reqs))
	for i, req := range reqs {
		id, err := s.submit(req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		st := waitTerminal(t, s, id)
		if st.State != StateDone {
			t.Fatalf("job %d (%s/%s): state %s, error %q", id,
				st.Request.Tenant, st.Request.Algorithm, st.State, st.Error)
		}
		got, want := normalized(st.Result), normalized(base[i])
		if !summariesMatch(got, want) {
			t.Errorf("job %d (%s) diverged from isolated run:\n got %+v\nwant %+v",
				id, st.Request.Algorithm, got, want)
		}
	}
	s.Close()
	if s.fleet.InUse() != 0 {
		t.Errorf("fleet still holds %d slots after all jobs finished", s.fleet.InUse())
	}
	// Quota billing accumulated per tenant.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tenant := range []string{"acme", "globex", "initech"} {
		if s.spend[tenant] <= 0 {
			t.Errorf("tenant %q has zero accumulated spend", tenant)
		}
	}
}

// TestPriorityPreemptsAtBarrier fills the fleet with a low-priority job,
// then submits a high-priority one: the scheduler must suspend the first
// at a superstep barrier, run the second, resume the first, and the
// preempted job's results must be bit-identical to an isolated run. Both
// jobs use integer-state algorithms (min-combiners), so the comparison is
// exact — no float tolerance anywhere.
func TestPriorityPreemptsAtBarrier(t *testing.T) {
	low := mustValidate(t, JobRequest{Algorithm: "apsp", Graph: "sd",
		Workers: 8, Roots: 60, Tenant: "batch"})
	high := mustValidate(t, JobRequest{Algorithm: "sssp", Graph: "sd",
		Workers: 8, Tenant: "interactive", Priority: 9})
	baseLow := isolatedRun(t, low)
	baseHigh := isolatedRun(t, high)

	s := newTestServer(t, Config{FleetVMs: 8, MaxConcurrent: 2})
	lowID, err := s.submit(low)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	lowEvents := s.jobs[lowID].events
	s.mu.Unlock()
	// Let the victim get past its first barrier before the challenger
	// arrives, so the suspension tests a mid-run cut.
	deadline := time.Now().Add(30 * time.Second)
	for {
		batch, _, _ := lowEvents.since(0)
		steps := 0
		for _, e := range batch {
			if e.Type == "superstep" {
				steps++
			}
		}
		if steps >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("low-priority job never progressed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	highID, err := s.submit(high)
	if err != nil {
		t.Fatal(err)
	}

	stHigh := waitTerminal(t, s, highID)
	stLow := waitTerminal(t, s, lowID)
	if stHigh.State != StateDone || stLow.State != StateDone {
		t.Fatalf("states: high %s (%s), low %s (%s)", stHigh.State, stHigh.Error, stLow.State, stLow.Error)
	}
	if stLow.Result.Preemptions < 1 {
		t.Fatalf("low-priority job was never preempted (fleet was full; it must have been)")
	}
	if stLow.Result.PreemptSeconds <= 0 {
		t.Errorf("PreemptSeconds = %v, want > 0", stLow.Result.PreemptSeconds)
	}
	if got, want := normalized(stLow.Result), normalized(baseLow); !reflect.DeepEqual(got, want) {
		t.Errorf("preempted job diverged from isolated run:\n got %+v\nwant %+v", got, want)
	}
	if got, want := normalized(stHigh.Result), normalized(baseHigh); !reflect.DeepEqual(got, want) {
		t.Errorf("preempting job diverged from isolated run:\n got %+v\nwant %+v", got, want)
	}
	// The event stream must record the suspension and the resume.
	events, _, _ := lowEvents.since(0)
	var sawPreempt, sawResume bool
	for _, e := range events {
		switch e.Type {
		case "preempt":
			sawPreempt = true
		case "resume":
			sawResume = true
		}
	}
	if !sawPreempt || !sawResume {
		t.Errorf("event log missing preempt/resume (preempt=%v resume=%v)", sawPreempt, sawResume)
	}
	s.Close()
}

// TestPreemptionAtConcurrencyCap is the regression test for the other way
// a high-priority job can be blocked: the fleet has plenty of slots but
// every MaxConcurrent seat is taken. Suspending a victim must free its
// seat, not just its VMs.
func TestPreemptionAtConcurrencyCap(t *testing.T) {
	low := mustValidate(t, JobRequest{Algorithm: "apsp", Graph: "sd",
		Workers: 4, Roots: 40, Tenant: "batch"})
	high := mustValidate(t, JobRequest{Algorithm: "sssp", Graph: "sd",
		Workers: 4, Tenant: "interactive", Priority: 9})
	baseLow := isolatedRun(t, low)

	// 16 slots for two 4-worker jobs: only the single seat is contended.
	s := newTestServer(t, Config{FleetVMs: 16, MaxConcurrent: 1})
	lowID, err := s.submit(low)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	lowEvents := s.jobs[lowID].events
	s.mu.Unlock()
	deadline := time.Now().Add(30 * time.Second)
	for {
		batch, _, _ := lowEvents.since(0)
		steps := 0
		for _, e := range batch {
			if e.Type == "superstep" {
				steps++
			}
		}
		if steps >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("low-priority job never progressed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	highID, err := s.submit(high)
	if err != nil {
		t.Fatal(err)
	}

	stHigh := waitTerminal(t, s, highID)
	stLow := waitTerminal(t, s, lowID)
	if stHigh.State != StateDone || stLow.State != StateDone {
		t.Fatalf("states: high %s (%s), low %s (%s)", stHigh.State, stHigh.Error, stLow.State, stLow.Error)
	}
	if stLow.Result.Preemptions < 1 {
		t.Fatalf("low-priority job was never preempted (the seat was contended; it must have been)")
	}
	if got, want := normalized(stLow.Result), normalized(baseLow); !reflect.DeepEqual(got, want) {
		t.Errorf("preempted job diverged from isolated run:\n got %+v\nwant %+v", got, want)
	}
	s.Close()
}

// TestAdmissionControl exercises the three 429 paths: queue overflow,
// per-tenant in-flight cap, and quota exhaustion — plus the 400 for a job
// the fleet can never seat.
func TestAdmissionControl(t *testing.T) {
	t.Run("queue overflow", func(t *testing.T) {
		s := newTestServer(t, Config{FleetVMs: 2, MaxConcurrent: 1, QueueDepth: 1})
		req := mustValidate(t, JobRequest{Algorithm: "pagerank", Graph: "sd",
			Workers: 2, Iterations: 40, Tenant: "a"})
		if _, err := s.submit(req); err != nil { // seats immediately
			t.Fatal(err)
		}
		if _, err := s.submit(req); err != nil { // queued
			t.Fatal(err)
		}
		_, err := s.submit(req)
		adm, ok := err.(*admissionError)
		if !ok || adm.status != 429 {
			t.Fatalf("third submit: err %v, want 429 queue overflow", err)
		}
		s.Close()
	})
	t.Run("tenant cap", func(t *testing.T) {
		s := newTestServer(t, Config{FleetVMs: 8, MaxConcurrent: 4, TenantCap: 1})
		req := mustValidate(t, JobRequest{Algorithm: "pagerank", Graph: "sd",
			Workers: 2, Iterations: 40, Tenant: "capped"})
		if _, err := s.submit(req); err != nil {
			t.Fatal(err)
		}
		_, err := s.submit(req)
		adm, ok := err.(*admissionError)
		if !ok || adm.status != 429 {
			t.Fatalf("second submit: err %v, want 429 tenant cap", err)
		}
		other := req
		other.Tenant = "other"
		if _, err := s.submit(other); err != nil {
			t.Fatalf("other tenant must not be capped: %v", err)
		}
		s.Close()
	})
	t.Run("quota exhausted", func(t *testing.T) {
		s := newTestServer(t, Config{FleetVMs: 4, DefaultQuotaDollars: 1e-9})
		req := mustValidate(t, JobRequest{Algorithm: "sssp", Graph: "sd",
			Workers: 2, Tenant: "spender"})
		id, err := s.submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, s, id); st.State != StateDone {
			t.Fatalf("job failed: %s", st.Error)
		}
		_, err = s.submit(req)
		adm, ok := err.(*admissionError)
		if !ok || adm.status != 429 {
			t.Fatalf("over-quota submit: err %v, want 429", err)
		}
		s.Close()
	})
	t.Run("oversized job", func(t *testing.T) {
		s := newTestServer(t, Config{FleetVMs: 4})
		req := mustValidate(t, JobRequest{Algorithm: "sssp", Graph: "sd", Workers: 8})
		_, err := s.submit(req)
		adm, ok := err.(*admissionError)
		if !ok || adm.status != 400 {
			t.Fatalf("oversized submit: err %v, want 400", err)
		}
		s.Close()
	})
}

// TestDrainUnderLoad closes the server while jobs are queued and running:
// every accepted job must still reach done, and post-drain submissions
// must get 503.
func TestDrainUnderLoad(t *testing.T) {
	s := newTestServer(t, Config{FleetVMs: 4, MaxConcurrent: 1})
	req := mustValidate(t, JobRequest{Algorithm: "pagerank", Graph: "sd",
		Workers: 2, Iterations: 20, Tenant: "drain"})
	var ids []int
	for i := 0; i < 3; i++ {
		id, err := s.submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s.Close() // blocks until all three finish
	for _, id := range ids {
		s.mu.Lock()
		st := s.jobs[id].statusLocked()
		s.mu.Unlock()
		if st.State != StateDone {
			t.Fatalf("job %d after drain: state %s (%s)", id, st.State, st.Error)
		}
	}
	_, err := s.submit(req)
	adm, ok := err.(*admissionError)
	if !ok || adm.status != 503 {
		t.Fatalf("submit after drain: err %v, want 503", err)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    string
	event string
	data  Event
}

// readSSE consumes an SSE stream until it ends, returning the frames.
func readSSE(t *testing.T, body *bufio.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	for {
		line, err := body.ReadString('\n')
		if err != nil {
			return out
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		case line == "":
			if cur.event != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		}
	}
}

// TestSSERoundTrip submits a job over HTTP and follows its event stream to
// the terminal result, checking replay, per-superstep progress, and
// sequence contiguity.
func TestSSERoundTrip(t *testing.T) {
	s := newTestServer(t, Config{FleetVMs: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"algorithm":"pagerank","graph":"sd","workers":4,"iterations":10,"tenant":"sse"}`))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	stream, err := http.Get(fmt.Sprintf("%s/jobs/%d/events", ts.URL, submitted.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(t, bufio.NewReader(stream.Body))
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	steps := 0
	for i, e := range events {
		if e.id != fmt.Sprint(i) || e.data.Seq != i {
			t.Fatalf("event %d has id %q seq %d; stream must be contiguous from 0", i, e.id, e.data.Seq)
		}
		if e.event == "superstep" {
			if e.data.Superstep != steps {
				t.Fatalf("superstep event out of order: got %d, want %d", e.data.Superstep, steps)
			}
			steps++
		}
	}
	last := events[len(events)-1]
	if last.event != "result" || last.data.Result == nil {
		t.Fatalf("stream did not end in a result event: %+v", last)
	}
	// 10 pagerank iterations: 11 supersteps (final halt round), each
	// streamed live before the result.
	if steps != 11 || last.data.Result.Supersteps != 11 {
		t.Fatalf("streamed %d superstep events, result says %d; want 11",
			steps, last.data.Result.Supersteps)
	}
}

// TestMetricsAggregation checks the multi-job /metrics shape: global and
// per-tenant job-state gauges plus fleet occupancy.
func TestMetricsAggregation(t *testing.T) {
	s := newTestServer(t, Config{FleetVMs: 8, MaxConcurrent: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tenant := range []string{"acme", "globex"} {
		req := mustValidate(t, JobRequest{Algorithm: "sssp", Graph: "sd",
			Workers: 2, Tenant: tenant})
		id, err := s.submit(req)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, s, id)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(strings.Builder)
	if _, err := fmt.Fprint(body, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{
		`pregel_jobs{state="done"} 2`,
		`pregel_tenant_jobs{state="done",tenant="acme"} 1`,
		`pregel_tenant_jobs{state="done",tenant="globex"} 1`,
		`pregel_tenant_spend_dollars{tenant="acme"}`,
		`pregel_fleet_vms 8`,
		`pregel_fleet_vms_in_use 0`,
		`pregel_supersteps_total`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	s.Close()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := bufio.NewReader(resp.Body)
	for {
		line, err := buf.ReadString('\n')
		sb.WriteString(line)
		if err != nil {
			return sb.String()
		}
	}
}

// TestModelAdmission covers the model field's validation: bad values are
// rejected at submit time, the default is vertex.
func TestModelAdmission(t *testing.T) {
	bad := JobRequest{Algorithm: "sssp", Graph: "sd", Model: "giraffe"}
	if err := validate(&bad); err == nil || !strings.Contains(err.Error(), "model") {
		t.Fatalf("bad model: err = %v, want model validation error", err)
	}
	def := mustValidate(t, JobRequest{Algorithm: "sssp", Graph: "sd"})
	if def.Model != "vertex" {
		t.Fatalf("default model = %q, want vertex", def.Model)
	}
	sub := mustValidate(t, JobRequest{Algorithm: "wcc", Graph: "sd", Model: "subgraph"})
	if sub.Model != "subgraph" {
		t.Fatalf("model = %q, want subgraph", sub.Model)
	}
}

// TestSubgraphModelJobs runs traversals under model=subgraph through the
// full executeJob path and checks they agree with the vertex model: same
// component count for wcc, no more supersteps for sssp, and the adapter
// path (pagerank has no native subgraph port) reproduces the vertex ranks.
func TestSubgraphModelJobs(t *testing.T) {
	base := JobRequest{Graph: "sd", Workers: 4, Partitioner: "metis"}

	ssspV := base
	ssspV.Algorithm = "sssp"
	vsum := isolatedRun(t, mustValidate(t, ssspV))
	ssspS := ssspV
	ssspS.Model = "subgraph"
	ssum := isolatedRun(t, mustValidate(t, ssspS))
	if ssum.Supersteps > vsum.Supersteps {
		t.Errorf("subgraph sssp took %d supersteps, vertex %d", ssum.Supersteps, vsum.Supersteps)
	}

	wccV := base
	wccV.Algorithm = "wcc"
	wccS := wccV
	wccS.Model = "subgraph"
	vw := isolatedRun(t, mustValidate(t, wccV))
	sw := isolatedRun(t, mustValidate(t, wccS))
	if vw.Extra != sw.Extra {
		t.Errorf("wcc: subgraph %q vs vertex %q", sw.Extra, vw.Extra)
	}

	prV := base
	prV.Algorithm = "pagerank"
	prV.Iterations = 10
	prS := prV
	prS.Model = "subgraph"
	vp := isolatedRun(t, mustValidate(t, prV))
	sp := isolatedRun(t, mustValidate(t, prS))
	// The adapter serializes compute within a partition, so sum-combiner
	// association order differs from the parallel vertex path: ranks agree
	// to ULP scale, not bit-exactly.
	for i := range vp.TopVertices {
		v, s := vp.TopVertices[i], sp.TopVertices[i]
		if v.Vertex != s.Vertex || math.Abs(v.Score-s.Score) > 1e-12*(1+math.Abs(v.Score)) {
			t.Errorf("pagerank rank %d: adapter %v vs vertex %v", i, s, v)
		}
	}
}
