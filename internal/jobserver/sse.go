package jobserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Event is one entry in a job's progress stream, delivered over SSE.
type Event struct {
	// Seq is the event's position in the job's stream, starting at 0; it is
	// also the SSE event id, so reconnecting clients can resume with
	// Last-Event-ID semantics.
	Seq int `json:"seq"`
	// Type: state | superstep | preempt | resume | result | error.
	Type string `json:"type"`
	// State accompanies state/preempt/resume/result/error events.
	State JobState `json:"state,omitempty"`
	// Superstep identifies the just-committed superstep on superstep
	// events, and the resume point on preempt/resume events.
	Superstep int `json:"superstep,omitempty"`
	// ActiveVertices/Messages/SimSeconds carry the committed superstep's
	// stats on superstep events.
	ActiveVertices int64   `json:"activeVertices,omitempty"`
	Messages       int64   `json:"messages,omitempty"`
	SimSeconds     float64 `json:"simSeconds,omitempty"`
	// Result holds the completed-job summary on result events.
	Result *Summary `json:"result,omitempty"`
	// Error holds the failure message on error events.
	Error string `json:"error,omitempty"`
}

// maxEventLog bounds a job's retained event history. Long jobs drop their
// oldest superstep events; the stream stays live and terminal events are
// appended after the cap, so subscribers always see how the job ended.
const maxEventLog = 4096

// eventLog is a job's append-only progress stream: a bounded replay buffer
// plus an edge-triggered notification channel. Writers (the job runner and
// the manager's OnStep hook) append; any number of SSE subscribers replay
// from an offset and then follow live. The log has its own lock and never
// calls back into the server, so appends are safe under Server.mu.
type eventLog struct {
	mu sync.Mutex
	// base is the sequence number of events[0] (> 0 once the cap trims).
	base   int
	events []Event
	closed bool
	notify chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{notify: make(chan struct{})}
}

// append assigns the event its sequence number and wakes all waiters. The
// terminal flag closes the stream: subscribers finish after draining.
func (l *eventLog) append(e Event, terminal bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	e.Seq = l.base + len(l.events)
	l.events = append(l.events, e)
	if len(l.events) > maxEventLog {
		drop := len(l.events) - maxEventLog
		l.base += drop
		l.events = append(l.events[:0], l.events[drop:]...)
	}
	if terminal {
		l.closed = true
	}
	close(l.notify)
	l.notify = make(chan struct{})
}

// since returns the events at sequence >= from (clamped to the retained
// window), whether the stream has ended, and a channel that closes on the
// next append.
func (l *eventLog) since(from int) ([]Event, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := from - l.base
	if i < 0 {
		i = 0
	}
	var batch []Event
	if i < len(l.events) {
		batch = append(batch, l.events[i:]...)
	}
	return batch, l.closed, l.notify
}

// serveSSE streams a job's events as text/event-stream: full replay of the
// retained history, then live events until the job reaches a terminal
// state or the client disconnects.
func serveSSE(w http.ResponseWriter, r *http.Request, log *eventLog) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	next := 0
	for {
		batch, closed, notify := log.since(next)
		for _, e := range batch {
			body, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, body); err != nil {
				return
			}
			next = e.Seq + 1
		}
		fl.Flush()
		if closed && len(batch) == 0 {
			return
		}
		if closed {
			continue // drain whatever raced in before the close
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}
