package jobserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"pregelnet/internal/cloud"
	"pregelnet/internal/observe"
)

// Handler returns the HTTP routes:
//
//	POST /jobs             submit a JobRequest, returns {"id": N}
//	GET  /jobs             list all jobs
//	GET  /jobs/{id}        poll one job
//	GET  /jobs/{id}/events stream the job's progress as SSE
//	GET  /jobs/{id}/trace  dump the job's flight recorder (?format=jsonl|chrome)
//	GET  /metrics          Prometheus text exposition
//	GET  /healthz          liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := validate(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id, err := s.submit(req)
	if err != nil {
		var adm *admissionError
		if errors.As(err, &adm) {
			http.Error(w, adm.msg, adm.status)
		} else {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, `{"id":%d}`+"\n", id)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, s.jobs[id].statusLocked())
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(list)
}

// jobByID returns a snapshot copy of the job, or writes a 400/404.
func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return nil, false
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return nil, false
	}
	return j, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	cp := j.statusLocked()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&cp)
}

// handleEvents streams the job's progress over SSE: a replay of the
// retained history (states, per-superstep stats, preemptions) followed by
// live events until the job ends or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(w, r)
	if !ok {
		return
	}
	serveSSE(w, r, j.events)
}

// handleHealthz is the liveness probe: the server answers as long as its
// HTTP listener and mux are alive (jobs run on separate goroutines).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the Prometheus text exposition. Engine counters and
// histograms accumulate into the server-wide registry as jobs run. Queue
// gauges are sampled at scrape time from EVERY running job's control plane
// and aggregated by queue name (depths and redeliveries sum; ages take the
// max), because with a concurrent scheduler there is no longer a single
// "the" running job. Job-state gauges are exported both globally and per
// tenant, alongside fleet occupancy and quota spend.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	type tenantCounts struct{ states map[JobState]int }
	s.mu.Lock()
	states := map[JobState]int{}
	tenants := map[string]*tenantCounts{}
	var running []*cloud.QueueService
	for _, j := range s.jobs {
		states[j.State]++
		tc := tenants[j.Request.Tenant]
		if tc == nil {
			tc = &tenantCounts{states: map[JobState]int{}}
			tenants[j.Request.Tenant] = tc
		}
		tc.states[j.State]++
		if j.State == StateRunning && j.queues != nil {
			running = append(running, j.queues)
		}
	}
	spend := make(map[string]float64, len(s.spend))
	for t, d := range s.spend {
		spend[t] = d
	}
	s.mu.Unlock()

	for _, st := range jobStates {
		s.metrics.Gauge("pregel_jobs", "Jobs by lifecycle state.",
			observe.Label{Name: "state", Value: string(st)}).Set(float64(states[st]))
	}
	tenantNames := make([]string, 0, len(tenants))
	for t := range tenants {
		tenantNames = append(tenantNames, t)
	}
	sort.Strings(tenantNames)
	for _, t := range tenantNames {
		for _, st := range jobStates {
			s.metrics.Gauge("pregel_tenant_jobs", "Jobs by tenant and lifecycle state.",
				observe.Label{Name: "tenant", Value: t},
				observe.Label{Name: "state", Value: string(st)}).Set(float64(tenants[t].states[st]))
		}
		s.metrics.Gauge("pregel_tenant_spend_dollars",
			"Accumulated simulated spend per tenant.",
			observe.Label{Name: "tenant", Value: t}).Set(spend[t])
		s.metrics.Gauge("pregel_tenant_quota_dollars",
			"Configured spend ceiling per tenant (0 = unlimited).",
			observe.Label{Name: "tenant", Value: t}).Set(s.quota(t))
	}

	s.metrics.Gauge("pregel_fleet_vms", "Total VM slots in the shared fleet.").
		Set(float64(s.fleet.Capacity()))
	s.metrics.Gauge("pregel_fleet_vms_in_use", "VM slots reserved by running jobs.").
		Set(float64(s.fleet.InUse()))
	usage := s.fleet.TenantUsage()
	for _, t := range s.fleet.Tenants() {
		s.metrics.Gauge("pregel_fleet_tenant_vms", "VM slots reserved per tenant.",
			observe.Label{Name: "tenant", Value: t}).Set(float64(usage[t]))
	}

	// Aggregate queue stats across all running jobs. Each job has its own
	// queue namespace with colliding names (step-0, barrier, ...), so the
	// per-name gauges describe the whole deployment's control plane.
	type agg struct {
		depth, leased int
		redeliveries  uint64
		oldestAge     float64
	}
	byName := map[string]*agg{}
	for _, qs := range running {
		for name, st := range qs.Stats() {
			a := byName[name]
			if a == nil {
				a = &agg{}
				byName[name] = a
			}
			a.depth += st.Depth
			a.leased += st.Leased
			a.redeliveries += st.Redeliveries
			if age := st.OldestAge.Seconds(); age > a.oldestAge {
				a.oldestAge = age
			}
		}
	}
	for name, a := range byName {
		l := observe.Label{Name: "queue", Value: name}
		s.metrics.Gauge("pregel_queue_depth",
			"Visible messages in the queue (summed across running jobs).", l).Set(float64(a.depth))
		s.metrics.Gauge("pregel_queue_leased",
			"Messages hidden by an outstanding visibility lease (summed across running jobs).", l).Set(float64(a.leased))
		s.metrics.Gauge("pregel_queue_oldest_age_seconds",
			"Age of the oldest visible message (max across running jobs).", l).Set(a.oldestAge)
		s.metrics.Gauge("pregel_queue_redeliveries",
			"Messages redelivered after a visibility-timeout expiry (summed across running jobs).", l).Set(float64(a.redeliveries))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

// handleTrace dumps a job's flight recorder. It works for running jobs (the
// recorder is a concurrent ring buffer) and for failed ones (the ring holds
// the events leading up to the failure). ?format=chrome emits a Chrome
// trace_event file loadable in chrome://tracing or Perfetto; the default is
// one JSON event per line.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(w, r)
	if !ok {
		return
	}
	var events []observe.Event
	if j.recorder != nil {
		events = j.recorder.Snapshot()
	}
	switch r.URL.Query().Get("format") {
	case "", "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = observe.WriteJSONL(w, events)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = observe.WriteChromeTrace(w, events)
	default:
		http.Error(w, "unknown format (want jsonl|chrome)", http.StatusBadRequest)
	}
}
