package jobserver

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/cloud"
	"pregelnet/internal/core"
	"pregelnet/internal/elastic"
	"pregelnet/internal/graph"
	"pregelnet/internal/observe"
	"pregelnet/internal/partition"
)

// runHooks is the server-side wiring a job executes under: observability
// sinks, its queue namespace, and the scheduler's preemption callbacks.
type runHooks struct {
	tracer  *observe.Tracer
	metrics *observe.Metrics
	queues  *cloud.QueueService
	// barrierPreempt is consulted at every superstep barrier (the engine's
	// JobSpec.BarrierPreempt); returning true suspends the job.
	barrierPreempt func(nextSuperstep int) bool
	// onStep receives each committed superstep's stats (SSE progress).
	onStep func(core.StepStats)
	// onSuspend parks the job goroutine after a suspension until the
	// scheduler grants the resume. Called between two core.Run calls.
	onSuspend func(*core.Suspension)
}

// runSpec drives one spec through as many suspend/resume cycles as the
// scheduler causes. The same spec value (same Scheduler, controller, and
// queue service instances) is handed back with Resume set, as the engine's
// suspension contract requires; elastic jobs get checkpointing defaulted
// on because a failed live migration rolls back through checkpoints.
func runSpec[M any](spec core.JobSpec[M], h *runHooks, ctrl core.ElasticController) (*core.JobResult[M], error) {
	spec.Tracer = h.tracer
	spec.Metrics = h.metrics
	spec.Queues = h.queues
	spec.BarrierPreempt = h.barrierPreempt
	spec.OnStep = h.onStep
	if ctrl != nil {
		spec.ElasticController = ctrl
		if spec.CheckpointEvery <= 0 {
			spec.CheckpointEvery = 4
		}
	}
	for {
		res, err := core.Run(spec)
		if err != nil {
			return nil, err
		}
		if res.Suspended == nil {
			return res, nil
		}
		h.onSuspend(res.Suspended)
		spec.Resume = res.Suspended
	}
}

// executeJob runs one validated request to completion and summarizes it.
func executeJob(req JobRequest, h *runHooks) (*Summary, error) {
	g := graph.Dataset(req.Graph)
	assign := partition.ByName(req.Partitioner).Partition(g, req.Workers)
	model := cloud.DefaultCostModel(cloud.LargeVM())
	if req.MemoryMiB > 0 {
		model.Spec = model.Spec.WithMemory(req.MemoryMiB << 20)
	}

	var elasticCtrl core.ElasticController
	if req.ElasticHigh > 0 {
		ctrl, err := elastic.NewLiveController(req.Workers, req.ElasticHigh,
			elastic.ThresholdPolicy{Fraction: req.ElasticThreshold})
		if err != nil {
			return nil, err
		}
		elasticCtrl = ctrl
	}

	top := func(scores []float64, n int) []TopVertex {
		tv := make([]TopVertex, len(scores))
		for v, s := range scores {
			tv[v] = TopVertex{graph.VertexID(v), s}
		}
		sort.Slice(tv, func(i, j int) bool { return tv[i].Score > tv[j].Score })
		if n > len(tv) {
			n = len(tv)
		}
		return tv[:n]
	}
	switch req.Algorithm {
	case "pagerank":
		spec := algorithms.PageRank{Iterations: req.Iterations, Damping: 0.85}.Spec(g, req.Workers)
		spec.Assignment = assign
		spec.CostModel = model
		if req.Model == "subgraph" {
			core.UseVertexAdapter(&spec)
		}
		res, err := runSpec(spec, h, elasticCtrl)
		if err != nil {
			return nil, err
		}
		sum := summarizeResult(req, res)
		sum.TopVertices = top(algorithms.Ranks(res, g.NumVertices()), 10)
		return sum, nil
	case "bc":
		if req.Model == "subgraph" {
			// The subgraph port batches all roots in one AllAtOnce sweep:
			// its per-root state lives in partition-local maps, so swath
			// scheduling (a vertex-memory optimization) does not apply.
			spec := algorithms.BCSubgraph(g, req.Workers, core.FirstNSources(g, req.Roots))
			spec.Assignment = assign
			spec.CostModel = model
			res, err := runSpec(spec, h, elasticCtrl)
			if err != nil {
				return nil, err
			}
			sum := summarizeResult(req, res)
			sum.TopVertices = top(algorithms.BCSubgraphScores(res, g.NumVertices()), 10)
			return sum, nil
		}
		sched, err := swathScheduler(g, req, model)
		if err != nil {
			return nil, err
		}
		spec := algorithms.BC(g, req.Workers, sched)
		spec.Assignment = assign
		spec.CostModel = model
		res, err := runSpec(spec, h, elasticCtrl)
		if err != nil {
			return nil, err
		}
		sum := summarizeResult(req, res)
		sum.TopVertices = top(algorithms.BCScores(res, g.NumVertices()), 10)
		return sum, nil
	case "apsp":
		sched, err := swathScheduler(g, req, model)
		if err != nil {
			return nil, err
		}
		spec := algorithms.APSP(g, req.Workers, sched)
		spec.Assignment = assign
		spec.CostModel = model
		if req.Model == "subgraph" {
			core.UseVertexAdapter(&spec)
		}
		res, err := runSpec(spec, h, elasticCtrl)
		if err != nil {
			return nil, err
		}
		sum := summarizeResult(req, res)
		sum.Extra = fmt.Sprintf("distances computed from %d roots", req.Roots)
		return sum, nil
	case "sssp":
		spec := algorithms.SSSP(g, req.Workers, 0)
		if req.Model == "subgraph" {
			spec = algorithms.SSSPSubgraph(g, req.Workers, 0)
		}
		spec.Assignment = assign
		spec.CostModel = model
		res, err := runSpec(spec, h, elasticCtrl)
		if err != nil {
			return nil, err
		}
		return summarizeResult(req, res), nil
	case "wcc":
		spec := algorithms.WCC(g, req.Workers)
		if req.Model == "subgraph" {
			spec = algorithms.WCCSubgraph(g, req.Workers)
		}
		spec.Assignment = assign
		spec.CostModel = model
		res, err := runSpec(spec, h, elasticCtrl)
		if err != nil {
			return nil, err
		}
		var labels []int32
		if req.Model == "subgraph" {
			labels = algorithms.WCCSubgraphLabels(res, g.NumVertices())
		} else {
			labels = algorithms.WCCLabels(res, g.NumVertices())
		}
		comps := map[int32]bool{}
		for _, l := range labels {
			comps[l] = true
		}
		sum := summarizeResult(req, res)
		sum.Extra = fmt.Sprintf("%d connected components", len(comps))
		return sum, nil
	case "lpa":
		spec := algorithms.LPA(g, req.Workers, req.Iterations)
		spec.Assignment = assign
		spec.CostModel = model
		if req.Model == "subgraph" {
			core.UseVertexAdapter(&spec)
		}
		res, err := runSpec(spec, h, elasticCtrl)
		if err != nil {
			return nil, err
		}
		labels := algorithms.LPALabels(res, g.NumVertices())
		comms := map[int32]bool{}
		for _, l := range labels {
			comms[l] = true
		}
		sum := summarizeResult(req, res)
		sum.Extra = fmt.Sprintf("%d communities", len(comms))
		return sum, nil
	}
	return nil, fmt.Errorf("unreachable algorithm %q", req.Algorithm)
}

// summarizeResult condenses a completed JobResult into the status payload.
func summarizeResult[M any](req JobRequest, res *core.JobResult[M]) *Summary {
	var msgs int64
	finalWorkers := req.Workers
	for i := range res.Steps {
		msgs += res.Steps[i].TotalSent()
		if res.Steps[i].Workers > 0 {
			finalWorkers = res.Steps[i].Workers
		}
	}
	return &Summary{
		Supersteps:     res.Supersteps,
		Messages:       msgs,
		SimSeconds:     res.SimSeconds,
		CostDollars:    res.CostDollars,
		WallSeconds:    res.WallSeconds,
		VMSeconds:      res.VMSeconds,
		FinalWorkers:   finalWorkers,
		ScaleEvents:    res.ScaleEvents,
		Preemptions:    res.Preemptions,
		PreemptSeconds: res.PreemptSeconds,
	}
}

// swathScheduler builds the bc/apsp source scheduler the request asked for.
func swathScheduler(g *graph.Graph, req JobRequest, model cloud.CostModel) (core.SwathScheduler, error) {
	sources := core.FirstNSources(g, req.Roots)
	if req.Swath == "none" {
		return core.NewAllAtOnce(sources), nil
	}
	target := model.Spec.MemoryBytes * 6 / 7
	var sizer core.SwathSizer
	switch req.Swath {
	case "adaptive":
		sizer = &core.AdaptiveSizer{Initial: max(2, req.Roots/4), TargetMemoryBytes: target}
	case "sampling":
		sizer = &core.SamplingSizer{SampleSize: max(2, req.Roots/4), Samples: 2, TargetMemoryBytes: target}
	default:
		return nil, fmt.Errorf("unknown swath mode %q", req.Swath)
	}
	var init core.SwathInitiator
	switch {
	case req.Initiate == "seq":
		init = core.SequentialInitiator{}
	case req.Initiate == "dynamic":
		init = core.DynamicPeakInitiator{}
	case strings.HasPrefix(req.Initiate, "static"):
		n, err := strconv.Atoi(strings.TrimPrefix(req.Initiate, "static"))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad initiation %q", req.Initiate)
		}
		init = core.StaticNInitiator(n)
	default:
		return nil, fmt.Errorf("unknown initiation %q", req.Initiate)
	}
	return core.NewSwathRunner(sources, sizer, init), nil
}
