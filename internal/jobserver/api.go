package jobserver

import (
	"fmt"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/partition"
)

// JobRequest is the submission payload.
type JobRequest struct {
	// Algorithm: pagerank | bc | apsp | sssp | wcc | lpa.
	Algorithm string `json:"algorithm"`
	// Graph: built-in dataset name (sd | wg | cp | lj).
	Graph string `json:"graph"`
	// Workers is the partition worker count (default 8).
	Workers int `json:"workers,omitempty"`
	// Partitioner: hash | chunk | metis | ldg (default hash).
	Partitioner string `json:"partitioner,omitempty"`
	// Roots bounds bc/apsp traversal sources (default 25).
	Roots int `json:"roots,omitempty"`
	// Iterations for pagerank/lpa (default 30/10).
	Iterations int `json:"iterations,omitempty"`
	// Model selects the programming model: vertex | subgraph (default
	// vertex). Under subgraph, traversal algorithms (sssp, wcc, bc) run
	// their partition-centric ports — local convergence between barriers,
	// boundary-only messages — and the rest run their vertex programs under
	// the engine's adapter, so results match the vertex model either way.
	Model string `json:"model,omitempty"`
	// Swath: none | adaptive | sampling (bc/apsp; default adaptive).
	Swath string `json:"swath,omitempty"`
	// Initiate: seq | dynamic | staticN (default dynamic).
	Initiate string `json:"initiate,omitempty"`
	// MemoryMiB caps per-worker memory (0 = default spec).
	MemoryMiB int64 `json:"memoryMiB,omitempty"`
	// ElasticHigh enables live elastic scaling: the job starts at Workers
	// and a threshold controller may resize it between Workers and
	// ElasticHigh at any superstep barrier (0 = fixed worker count).
	ElasticHigh int `json:"elasticHigh,omitempty"`
	// ElasticThreshold is the scale-out trigger: fraction of the peak
	// active-vertex count seen so far (default 0.5, the paper's §VIII value).
	ElasticThreshold float64 `json:"elasticThreshold,omitempty"`
	// Tenant is the submitting tenant; admission caps, fleet accounting,
	// and quota billing are tracked per tenant (default "default").
	Tenant string `json:"tenant,omitempty"`
	// Priority orders jobs for scheduling, 0 (lowest, the default) to 9.
	// A queued higher-priority job may preempt a running lower-priority
	// one at a superstep barrier; the preempted job resumes later with
	// bit-identical results.
	Priority int `json:"priority,omitempty"`
}

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	// StatePreempted marks a job suspended at a superstep barrier to make
	// room for a higher-priority one; the scheduler resumes it when the
	// fleet has room again.
	StatePreempted JobState = "preempted"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
)

// jobStates lists every lifecycle state, for metrics enumeration.
var jobStates = []JobState{StateQueued, StateRunning, StatePreempted, StateDone, StateFailed}

// Summary is the completed-job report returned by the status endpoint.
type Summary struct {
	Supersteps  int     `json:"supersteps"`
	Messages    int64   `json:"messages"`
	SimSeconds  float64 `json:"simSeconds"`
	CostDollars float64 `json:"costDollars"`
	WallSeconds float64 `json:"wallSeconds"`
	// VMSeconds is the billed VM time (workers integrated over simulated
	// time, including resize migration and acquisition charges).
	VMSeconds float64 `json:"vmSeconds,omitempty"`
	// FinalWorkers is the worker count at the last superstep; differs from
	// the request's Workers only when live elastic scaling resized the job.
	FinalWorkers int `json:"finalWorkers,omitempty"`
	// ScaleEvents lists the live resizes performed at superstep barriers.
	ScaleEvents []core.ScaleEvent `json:"scaleEvents,omitempty"`
	// Preemptions counts how many times the scheduler suspended this job
	// at a barrier; PreemptSeconds is the billed suspend/resume overhead
	// (kept out of SimSeconds, so the per-superstep timeline matches an
	// uninterrupted run exactly).
	Preemptions    int         `json:"preemptions,omitempty"`
	PreemptSeconds float64     `json:"preemptSeconds,omitempty"`
	TopVertices    []TopVertex `json:"topVertices,omitempty"`
	Extra          string      `json:"extra,omitempty"`
}

// TopVertex is one row of a ranked result.
type TopVertex struct {
	Vertex graph.VertexID `json:"vertex"`
	Score  float64        `json:"score"`
}

// validate normalizes a request in place, filling defaults and rejecting
// out-of-range values.
func validate(req *JobRequest) error {
	switch req.Algorithm {
	case "pagerank", "bc", "apsp", "sssp", "wcc", "lpa":
	default:
		return fmt.Errorf("unknown algorithm %q", req.Algorithm)
	}
	if graph.Dataset(req.Graph) == nil {
		return fmt.Errorf("unknown graph %q (want sd|wg|cp|lj)", req.Graph)
	}
	if req.Workers == 0 {
		req.Workers = 8
	}
	if req.Workers < 1 || req.Workers > 64 {
		return fmt.Errorf("workers %d out of range [1,64]", req.Workers)
	}
	if req.Partitioner == "" {
		req.Partitioner = "hash"
	}
	if partition.ByName(req.Partitioner) == nil {
		return fmt.Errorf("unknown partitioner %q", req.Partitioner)
	}
	if req.Roots <= 0 {
		req.Roots = 25
	}
	if req.Iterations <= 0 {
		if req.Algorithm == "lpa" {
			req.Iterations = 10
		} else {
			req.Iterations = 30
		}
	}
	if req.Model == "" {
		req.Model = "vertex"
	}
	if req.Model != "vertex" && req.Model != "subgraph" {
		return fmt.Errorf("unknown model %q (want vertex|subgraph)", req.Model)
	}
	if req.Swath == "" {
		req.Swath = "adaptive"
	}
	if req.Initiate == "" {
		req.Initiate = "dynamic"
	}
	if req.ElasticHigh != 0 {
		if req.ElasticHigh <= req.Workers || req.ElasticHigh > 64 {
			return fmt.Errorf("elasticHigh %d out of range (%d,64]", req.ElasticHigh, req.Workers)
		}
		if req.ElasticThreshold == 0 {
			req.ElasticThreshold = 0.5
		}
		if req.ElasticThreshold < 0 || req.ElasticThreshold > 1 {
			return fmt.Errorf("elasticThreshold %g out of range [0,1]", req.ElasticThreshold)
		}
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if req.Priority < 0 || req.Priority > 9 {
		return fmt.Errorf("priority %d out of range [0,9]", req.Priority)
	}
	return nil
}

// slotsNeeded is the fleet reservation a request demands: its full elastic
// range, so a mid-job scale-out can never oversubscribe the deployment.
func slotsNeeded(req *JobRequest) int {
	if req.ElasticHigh > req.Workers {
		return req.ElasticHigh
	}
	return req.Workers
}
