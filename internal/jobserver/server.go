// Package jobserver implements the paper's web front end (Fig 1) grown into
// a multi-tenant graph-job service: tenants submit BSP jobs over HTTP and
// the server multiplexes them over one shared simulated VM fleet. A
// priority scheduler admits jobs against per-tenant caps and dollar quotas,
// runs several concurrently, and preempts a running lower-priority job at a
// superstep barrier when a higher-priority one is waiting — the preempted
// job suspends through the engine's live-migration protocol and later
// resumes with bit-identical results. Progress streams to clients over SSE;
// shutdown drains every accepted job before returning.
package jobserver

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pregelnet/internal/cloud"
	"pregelnet/internal/core"
	"pregelnet/internal/observe"
)

// Config sizes the service. Zero values take the listed defaults.
type Config struct {
	// FleetVMs is the shared worker-VM pool every job draws slots from
	// (default 64). A job reserves max(Workers, ElasticHigh) slots while
	// running and frees them while preempted.
	FleetVMs int
	// MaxConcurrent bounds how many jobs execute at once (default 4).
	MaxConcurrent int
	// QueueDepth bounds jobs waiting to start, across all tenants
	// (default 128). Submissions beyond it get 429.
	QueueDepth int
	// TenantCap bounds one tenant's in-flight jobs — queued, running, or
	// preempted (default 8). Submissions beyond it get 429.
	TenantCap int
	// DefaultQuotaDollars is the simulated spend ceiling per tenant
	// (0 = unlimited). A tenant at or over quota gets 429 on submit;
	// already-admitted jobs run to completion.
	DefaultQuotaDollars float64
	// QuotaDollars overrides the default quota for specific tenants.
	QuotaDollars map[string]float64
}

func (c Config) withDefaults() Config {
	if c.FleetVMs == 0 {
		c.FleetVMs = 64
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 128
	}
	if c.TenantCap == 0 {
		c.TenantCap = 8
	}
	return c
}

// JobStatus is the externally visible job record (the polled JSON shape),
// a plain snapshot detached from the server's live scheduling state.
type JobStatus struct {
	ID      int        `json:"id"`
	Request JobRequest `json:"request"`
	State   JobState   `json:"state"`
	Error   string     `json:"error,omitempty"`
	Result  *Summary   `json:"result,omitempty"`
	// Preemptions counts completed barrier suspensions so far (also in
	// the final Result for finished jobs).
	Preemptions int `json:"preemptions,omitempty"`
}

// job is the server's record of one submission. Scheduling fields are
// guarded by Server.mu; preemptFlag is read lock-free at every superstep
// barrier by the job's BarrierPreempt hook.
type job struct {
	ID      int
	Request JobRequest
	State   JobState
	Error   string
	Result  *Summary

	// recorder is the job's flight recorder, attached at submission so the
	// trace endpoint works for queued, running, failed, and finished jobs
	// alike; it survives job failure by construction.
	recorder *observe.Recorder
	// tracer feeds the recorder; handed to the job spec when the job runs.
	tracer *observe.Tracer
	// queues is the running job's control plane, sampled live by /metrics.
	queues *cloud.QueueService
	// events is the job's SSE stream.
	events *eventLog
	// slots is the fleet reservation the job holds while running.
	slots int
	// preemptFlag asks the job to suspend at its next superstep barrier.
	preemptFlag atomic.Bool
	// resumeGranted means the scheduler has re-reserved the preempted
	// job's slots; its goroutine may leave the suspension wait.
	resumeGranted bool
	// resumeSlots is the reservation a preempted job needs to resume; it
	// can differ from the request's (elastic scaling may have resized the
	// job before it was preempted).
	resumeSlots int
	// preemptions counts completed suspensions, for events and metrics.
	preemptions int
}

// statusLocked snapshots the job for JSON encoding; caller holds Server.mu.
func (j *job) statusLocked() JobStatus {
	return JobStatus{ID: j.ID, Request: j.Request, State: j.State,
		Error: j.Error, Result: j.Result, Preemptions: j.preemptions}
}

// Server is the multi-tenant job service.
type Server struct {
	cfg   Config
	fleet *cloud.Fleet
	// metrics is the server-wide registry all jobs' engine instruments
	// accumulate into.
	metrics *observe.Metrics

	mu   sync.Mutex
	cond *sync.Cond // broadcast on every job state change
	// draining rejects new submissions while accepted jobs finish. Checked
	// under mu by admission, so a submit can never race past a Close (the
	// old web role took the admission decision outside its lock and could
	// send on a closed channel).
	draining bool
	jobs     map[int]*job
	order    []int
	nextID   int
	// spend is each tenant's accumulated simulated bill.
	spend map[string]float64
	wg    sync.WaitGroup
}

// New builds a server. The fleet must seat at least one worker.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	fleet, err := cloud.NewFleet(cfg.FleetVMs)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		fleet:   fleet,
		metrics: observe.NewMetrics(),
		jobs:    make(map[int]*job),
		spend:   make(map[string]float64),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Close drains the server: new submissions are rejected with 503 while
// every accepted job — queued, running, or preempted — runs to a terminal
// state. It blocks until the last job finishes.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	// Preempted jobs and queued work still schedule during a drain; only
	// admission stops.
	s.schedule()
	for !s.allTerminalLocked() {
		s.cond.Wait()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) allTerminalLocked() bool {
	for _, j := range s.jobs {
		if j.State != StateDone && j.State != StateFailed {
			return false
		}
	}
	return true
}

// quota returns the tenant's spend ceiling (0 = unlimited).
func (s *Server) quota(tenant string) float64 {
	if q, ok := s.cfg.QuotaDollars[tenant]; ok {
		return q
	}
	return s.cfg.DefaultQuotaDollars
}

// admissionError is a rejected submission with its HTTP status.
type admissionError struct {
	status int
	msg    string
}

func (e *admissionError) Error() string { return e.msg }

// submit admits a validated request, returning the new job's id or an
// admissionError. Everything — draining flag, queue depth, tenant cap,
// quota — is checked under mu, so the decision cannot race with Close or
// with competing submissions.
func (s *Server) submit(req JobRequest) (int, error) {
	if n := slotsNeeded(&req); n > s.fleet.Capacity() {
		return 0, &admissionError{400,
			fmt.Sprintf("job needs %d VMs, fleet has %d", n, s.fleet.Capacity())}
	}
	tracer, rec := observe.NewTraceRecorder(observe.DefaultRecorderCapacity)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0, &admissionError{503, "server is draining"}
	}
	queued, inFlight := 0, 0
	for _, j := range s.jobs {
		switch j.State {
		case StateQueued:
			queued++
		case StateRunning, StatePreempted:
		default:
			continue
		}
		if j.Request.Tenant == req.Tenant {
			inFlight++
		}
	}
	if queued >= s.cfg.QueueDepth {
		return 0, &admissionError{429,
			fmt.Sprintf("submission queue full (%d jobs waiting)", queued)}
	}
	if inFlight >= s.cfg.TenantCap {
		return 0, &admissionError{429,
			fmt.Sprintf("tenant %q has %d jobs in flight (cap %d)", req.Tenant, inFlight, s.cfg.TenantCap)}
	}
	if q := s.quota(req.Tenant); q > 0 && s.spend[req.Tenant] >= q {
		return 0, &admissionError{429,
			fmt.Sprintf("tenant %q over quota ($%.4f of $%.4f spent)", req.Tenant, s.spend[req.Tenant], q)}
	}
	id := s.nextID
	s.nextID++
	j := &job{ID: id, Request: req, State: StateQueued,
		recorder: rec, tracer: tracer, events: newEventLog()}
	s.jobs[id] = j
	s.order = append(s.order, id)
	j.events.append(Event{Type: "state", State: StateQueued}, false)
	s.schedule()
	return id, nil
}

// schedule is the scheduler's single decision pass, called under mu after
// every event that could unblock work: submit, finish, suspension, drain.
// It seats as many waiting jobs as fleet slots and the concurrency cap
// allow, in priority order (FIFO within a priority; a preempted job
// outranks a queued one at equal priority so suspended work finishes
// first). When the best waiting job cannot be seated it may preempt: the
// lowest-priority running job with strictly lower priority is flagged to
// suspend at its next barrier, one victim at a time — each suspension
// re-enters schedule, which converges (flag another victim or seat the
// waiter) without ever suspending more jobs than the waiter needs.
func (s *Server) schedule() {
	running, preempting := 0, false
	for _, j := range s.jobs {
		// A granted-but-not-yet-woken preempted job already holds slots
		// and is about to run; count it, or a second pass would seat one
		// job too many.
		if j.State == StateRunning || (j.State == StatePreempted && j.resumeGranted) {
			running++
			if j.preemptFlag.Load() {
				preempting = true
			}
		}
	}

	// Waiting jobs: queued, plus preempted-and-not-yet-granted.
	var waiting []*job
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State == StateQueued || (j.State == StatePreempted && !j.resumeGranted) {
			waiting = append(waiting, j)
		}
	}
	sort.SliceStable(waiting, func(a, b int) bool {
		ja, jb := waiting[a], waiting[b]
		if ja.Request.Priority != jb.Request.Priority {
			return ja.Request.Priority > jb.Request.Priority
		}
		if (ja.State == StatePreempted) != (jb.State == StatePreempted) {
			return ja.State == StatePreempted
		}
		return ja.ID < jb.ID
	})

	for _, j := range waiting {
		slots := slotsNeeded(&j.Request)
		if j.State == StatePreempted && j.resumeSlots > 0 {
			slots = j.resumeSlots
		}
		if running < s.cfg.MaxConcurrent && s.fleet.TryReserve(j.Request.Tenant, slots) {
			j.slots = slots
			running++
			if j.State == StatePreempted {
				j.resumeGranted = true
				s.cond.Broadcast()
			} else {
				j.State = StateRunning
				s.wg.Add(1)
				go s.runJob(j)
			}
			continue
		}
		// Cannot seat the best waiting job — the concurrency cap or the
		// fleet is full. Either blocker is preemptible: suspending a
		// strictly lower-priority running job frees its seat as well as
		// its slots. Flag at most one victim, then stop scanning, so
		// lower-priority jobs cannot steal the capacity a suspension is
		// about to free (strict priority order, no backfill past a blocked
		// head).
		if !preempting {
			if v := s.preemptVictim(j.Request.Priority); v != nil {
				v.preemptFlag.Store(true)
			}
		}
		break
	}
}

// preemptVictim picks the running job to suspend for a waiter at the given
// priority: the lowest-priority running job whose priority is strictly
// lower (newest submission breaks ties — it has made the least progress).
func (s *Server) preemptVictim(waiterPriority int) *job {
	var victim *job
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State != StateRunning || j.preemptFlag.Load() {
			continue
		}
		if j.Request.Priority >= waiterPriority {
			continue
		}
		if victim == nil || j.Request.Priority < victim.Request.Priority ||
			(j.Request.Priority == victim.Request.Priority && j.ID > victim.ID) {
			victim = j
		}
	}
	return victim
}

// runJob executes one admitted job on its own goroutine, cycling through
// suspend/resume as the scheduler demands, then records the outcome, bills
// the tenant, and frees the job's fleet slots.
func (s *Server) runJob(j *job) {
	defer s.wg.Done()

	queues := cloud.NewQueueService()
	s.mu.Lock()
	j.queues = queues
	req := j.Request
	s.mu.Unlock()
	j.events.append(Event{Type: "state", State: StateRunning}, false)

	summary, err := executeJob(req, &runHooks{
		tracer:  j.tracer,
		metrics: s.metrics,
		queues:  queues,
		barrierPreempt: func(int) bool {
			return j.preemptFlag.Load()
		},
		onStep: func(st core.StepStats) {
			j.events.append(Event{Type: "superstep", Superstep: st.Superstep,
				ActiveVertices: st.ActiveVertices, Messages: st.TotalSent(),
				SimSeconds: st.SimSeconds}, false)
		},
		onSuspend: func(susp *core.Suspension) {
			s.waitForResume(j, susp)
		},
	})

	s.mu.Lock()
	s.fleet.Release(req.Tenant, j.slots)
	j.slots = 0
	if err != nil {
		j.State = StateFailed
		j.Error = err.Error()
	} else {
		j.State = StateDone
		j.Result = summary
		s.spend[req.Tenant] += summary.CostDollars
	}
	s.schedule()
	s.cond.Broadcast()
	s.mu.Unlock()

	if err != nil {
		j.events.append(Event{Type: "error", State: StateFailed, Error: err.Error()}, true)
	} else {
		j.events.append(Event{Type: "result", State: StateDone, Result: summary}, true)
	}
}

// waitForResume parks a just-suspended job: it frees the job's fleet slots,
// lets the scheduler seat whoever the suspension was for, and blocks until
// the scheduler re-reserves slots for this job. Runs on the job's
// goroutine, between two core.Run calls.
func (s *Server) waitForResume(j *job, susp *core.Suspension) {
	s.mu.Lock()
	j.State = StatePreempted
	j.preemptions++
	s.fleet.Release(j.Request.Tenant, j.slots)
	j.slots = 0
	j.preemptFlag.Store(false)
	// The resumed deployment may differ from the original request: live
	// elastic scaling can have resized the job before it was preempted.
	j.resumeSlots = susp.Workers()
	if j.Request.ElasticHigh > j.resumeSlots {
		j.resumeSlots = j.Request.ElasticHigh
	}
	j.events.append(Event{Type: "preempt", State: StatePreempted,
		Superstep: susp.ResumeSuperstep()}, false)
	s.schedule()
	s.cond.Broadcast()
	for !j.resumeGranted {
		s.cond.Wait()
	}
	j.resumeGranted = false
	j.resumeSlots = 0
	j.State = StateRunning
	j.events.append(Event{Type: "resume", State: StateRunning,
		Superstep: susp.ResumeSuperstep()}, false)
	s.mu.Unlock()
}
