package transport

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestBatchWireRoundTrip(t *testing.T) {
	b := &Batch{From: 1, To: 2, Superstep: 7, Count: 3, Payload: []byte{9, 8, 7}}
	var buf bytes.Buffer
	if err := writeBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != b.WireSize() {
		t.Errorf("wire size %d != %d", buf.Len(), b.WireSize())
	}
	got, err := readBatch(&buf, make([]byte, batchHeaderSize))
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 1 || got.To != 2 || got.Superstep != 7 || got.Count != 3 {
		t.Errorf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload, b.Payload) {
		t.Errorf("payload mismatch")
	}
}

func TestBatchWireProperty(t *testing.T) {
	f := func(from, to, step, count int32, payload []byte) bool {
		b := &Batch{From: from & 0xffff, To: to & 0xffff, Superstep: step & 0xffff,
			Count: count & 0xffff, Payload: payload}
		var buf bytes.Buffer
		if err := writeBatch(&buf, b); err != nil {
			return false
		}
		got, err := readBatch(&buf, make([]byte, batchHeaderSize))
		if err != nil {
			return false
		}
		return got.From == b.From && got.To == b.To && got.Superstep == b.Superstep &&
			got.Count == b.Count && bytes.Equal(got.Payload, b.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadBatchTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeBatch(&buf, &Batch{Payload: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-2]
	if _, err := readBatch(bytes.NewReader(data), make([]byte, batchHeaderSize)); err == nil {
		t.Error("expected error on truncated batch")
	}
}

// exerciseNetwork sends batches between all pairs and checks delivery.
func exerciseNetwork(t *testing.T, net Network) {
	t.Helper()
	n := net.NumWorkers()
	var wg sync.WaitGroup
	type recv struct {
		worker int
		batch  *Batch
	}
	received := make(chan recv, n*n)
	// Receivers.
	for w := 0; w < n; w++ {
		ep, err := net.Endpoint(w)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, ep Endpoint) {
			defer wg.Done()
			for i := 0; i < n; i++ { // expect one batch from every worker incl. self? no: n-1 remotes + self-send allowed
				b, err := ep.Recv()
				if err != nil {
					t.Errorf("worker %d recv: %v", w, err)
					return
				}
				received <- recv{w, b}
			}
		}(w, ep)
	}
	// Senders: every worker sends one batch to every worker (incl. itself).
	for w := 0; w < n; w++ {
		ep, _ := net.Endpoint(w)
		for to := 0; to < n; to++ {
			b := &Batch{From: int32(w), To: int32(to), Superstep: 1, Count: 1,
				Payload: []byte(fmt.Sprintf("%d->%d", w, to))}
			if err := ep.Send(b); err != nil {
				t.Fatalf("send %d->%d: %v", w, to, err)
			}
		}
	}
	wg.Wait()
	close(received)
	seen := make(map[string]bool)
	for r := range received {
		if int32(r.worker) != r.batch.To {
			t.Errorf("batch for %d delivered to %d", r.batch.To, r.worker)
		}
		key := string(r.batch.Payload)
		if seen[key] {
			t.Errorf("duplicate %q", key)
		}
		seen[key] = true
	}
	if len(seen) != n*n {
		t.Errorf("delivered %d batches, want %d", len(seen), n*n)
	}
}

func TestChannelNetworkDelivery(t *testing.T) {
	net := NewChannelNetwork(4, 64)
	defer net.Close()
	exerciseNetwork(t, net)
}

func TestTCPNetworkDelivery(t *testing.T) {
	net, err := NewTCPNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	exerciseNetwork(t, net)
}

func TestTCPResetPeersReconnects(t *testing.T) {
	net, err := NewTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)
	for step := int32(0); step < 3; step++ {
		if err := ep0.Send(&Batch{From: 0, To: 1, Superstep: step, Payload: []byte{byte(step)}}); err != nil {
			t.Fatalf("step %d send: %v", step, err)
		}
		b, err := ep1.Recv()
		if err != nil {
			t.Fatalf("step %d recv: %v", step, err)
		}
		if b.Superstep != step {
			t.Errorf("got superstep %d, want %d", b.Superstep, step)
		}
		// Tear down cached connections as the engine does per superstep.
		if err := ep0.ResetPeers(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEndpointCloseUnblocksRecv(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() (Network, error)
	}{
		{"channel", func() (Network, error) { return NewChannelNetwork(2, 4), nil }},
		{"tcp", func() (Network, error) { return NewTCPNetwork(2) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			ep, _ := net.Endpoint(0)
			done := make(chan error, 1)
			go func() {
				_, err := ep.Recv()
				done <- err
			}()
			ep.Close()
			if err := <-done; err != io.EOF {
				t.Errorf("Recv after close = %v, want io.EOF", err)
			}
			net.Close()
		})
	}
}

func TestSendToUnknownWorker(t *testing.T) {
	net := NewChannelNetwork(2, 4)
	defer net.Close()
	ep, _ := net.Endpoint(0)
	if err := ep.Send(&Batch{To: 99}); err == nil {
		t.Error("expected error sending to unknown worker")
	}
	if _, err := net.Endpoint(5); err == nil {
		t.Error("expected error for out-of-range endpoint")
	}
}

func TestChannelCloseDrainsPending(t *testing.T) {
	net := NewChannelNetwork(2, 4)
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)
	if err := ep0.Send(&Batch{From: 0, To: 1, Payload: []byte("pending")}); err != nil {
		t.Fatal(err)
	}
	ep1.Close()
	// A batch already queued must still be retrievable after close.
	b, err := ep1.Recv()
	if err != nil || string(b.Payload) != "pending" {
		t.Errorf("drain after close: %v %v", b, err)
	}
	if _, err := ep1.Recv(); err != io.EOF {
		t.Errorf("second recv = %v, want EOF", err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	net, err := NewTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)
	payload := make([]byte, 8<<20) // 8 MiB batch
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	done := make(chan error, 1)
	go func() {
		done <- ep0.Send(&Batch{From: 0, To: 1, Count: 1, Payload: payload})
	}()
	b, err := ep1.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(b.Payload) != len(payload) {
		t.Fatalf("payload length %d, want %d", len(b.Payload), len(payload))
	}
	for i := 0; i < len(payload); i += 1 << 16 {
		if b.Payload[i] != payload[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
	PutBatch(b)
}

func TestTCPConcurrentSendersToOnePeer(t *testing.T) {
	net, err := NewTCPNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	const perSender = 50
	var wg sync.WaitGroup
	for from := 1; from < 4; from++ {
		ep, _ := net.Endpoint(from)
		wg.Add(1)
		go func(from int, ep Endpoint) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				b := &Batch{From: int32(from), To: 0, Superstep: int32(i), Count: 1,
					Payload: []byte{byte(from), byte(i)}}
				if err := ep.Send(b); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(from, ep)
	}
	ep0, _ := net.Endpoint(0)
	got := map[[2]byte]bool{}
	for i := 0; i < 3*perSender; i++ {
		b, err := ep0.Recv()
		if err != nil {
			t.Fatal(err)
		}
		key := [2]byte{b.Payload[0], b.Payload[1]}
		PutBatch(b)
		if got[key] {
			t.Fatalf("duplicate batch %v", key)
		}
		got[key] = true
	}
	wg.Wait()
	if len(got) != 3*perSender {
		t.Errorf("received %d unique batches, want %d", len(got), 3*perSender)
	}
}

func TestChannelNetworkEndpointReuse(t *testing.T) {
	net := NewChannelNetwork(2, 4)
	defer net.Close()
	a1, _ := net.Endpoint(1)
	a2, _ := net.Endpoint(1)
	if a1 != a2 {
		t.Error("Endpoint should be stable per worker")
	}
	if net.NumWorkers() != 2 {
		t.Errorf("NumWorkers = %d", net.NumWorkers())
	}
}

// countObserver tallies Observer callbacks for tests.
type countObserver struct {
	mu      sync.Mutex
	batches int
	msgs    int
	bytes   int64
	redials int
}

func (o *countObserver) BatchSent(from, to, superstep, msgs int, wireBytes int64) {
	o.mu.Lock()
	o.batches++
	o.msgs += msgs
	o.bytes += wireBytes
	o.mu.Unlock()
}

func (o *countObserver) Reconnect(from, to int) {
	o.mu.Lock()
	o.redials++
	o.mu.Unlock()
}

func TestChannelObserverCountsBatches(t *testing.T) {
	net := NewChannelNetwork(2, 4)
	defer net.Close()
	obs := &countObserver{}
	net.SetObserver(obs)
	ep, _ := net.Endpoint(0)
	b := &Batch{From: 0, To: 1, Superstep: 2, Count: 3, Payload: []byte("abc")}
	if err := ep.Send(b); err != nil {
		t.Fatal(err)
	}
	if obs.batches != 1 || obs.msgs != 3 || obs.bytes != b.WireSize() {
		t.Errorf("observer = %+v", obs)
	}
}

func TestChannelObserverSkipsFaultedSends(t *testing.T) {
	net := NewChannelNetwork(2, 4)
	defer net.Close()
	obs := &countObserver{}
	net.SetObserver(obs)
	net.SetSendFault(func(from, to, superstep int) error {
		return &transientSendError{fmt.Errorf("drop")}
	})
	ep, _ := net.Endpoint(0)
	if err := ep.Send(&Batch{From: 0, To: 1}); err == nil {
		t.Fatal("expected injected failure")
	}
	if obs.batches != 0 {
		t.Error("failed send must not count as a delivered batch")
	}
}

func TestTCPObserverCountsReconnect(t *testing.T) {
	net, err := NewTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	obs := &countObserver{}
	net.SetObserver(obs)
	ep, _ := net.Endpoint(0)
	if err := ep.Send(&Batch{From: 0, To: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	// Kill the cached socket from underneath the sender: the next Send must
	// redial mid-superstep, which is exactly one observed Reconnect.
	tep := ep.(*tcpEndpoint)
	tep.mu.Lock()
	for _, c := range tep.conns {
		c.Close()
	}
	tep.mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for obs.redials == 0 && time.Now().Before(deadline) {
		if err := ep.Send(&Batch{From: 0, To: 1, Payload: []byte("y")}); err != nil {
			t.Fatal(err)
		}
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.redials == 0 {
		t.Error("mid-superstep redial was not observed")
	}
	if obs.batches < 2 {
		t.Errorf("batches = %d, want >= 2", obs.batches)
	}
}
