package transport

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
)

func TestBatchWireEpochSeq(t *testing.T) {
	b := &Batch{From: 1, To: 2, Superstep: 7, Count: 3, Epoch: 4, Seq: 99, Payload: []byte{1}}
	var buf bytes.Buffer
	if err := writeBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := readBatch(&buf, make([]byte, batchHeaderSize))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 4 || got.Seq != 99 {
		t.Errorf("epoch/seq not preserved on the wire: %+v", got)
	}
}

func TestChannelSendFaultInjection(t *testing.T) {
	net := NewChannelNetwork(2, 4)
	defer net.Close()
	injected := errors.New("injected drop")
	var fired atomic.Bool
	net.SetSendFault(func(from, to, superstep int) error {
		if from == 0 && to == 1 && superstep == 5 && !fired.Swap(true) {
			return injected
		}
		return nil
	})
	ep, _ := net.Endpoint(0)
	b := &Batch{From: 0, To: 1, Superstep: 5, Count: 1, Payload: []byte("x")}
	if err := ep.Send(b); !errors.Is(err, injected) {
		t.Fatalf("first send: err = %v, want injected fault", err)
	}
	if err := ep.Send(b); err != nil { // retry succeeds
		t.Fatalf("retry: %v", err)
	}
	dst, _ := net.Endpoint(1)
	got, err := dst.Recv()
	if err != nil || string(got.Payload) != "x" {
		t.Fatalf("recv: %v %+v", err, got)
	}
	// The faulted batch must NOT have been delivered: inbox now empty.
	if len(net.endpoints[1].inbox) != 0 {
		t.Error("faulted batch was delivered anyway")
	}
}

func TestTCPSendFaultForcesRedialThenDelivers(t *testing.T) {
	net, err := NewTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	injected := errors.New("injected conn drop")
	var fired atomic.Bool
	net.SetSendFault(func(from, to, superstep int) error {
		if from == 0 && to == 1 && !fired.Swap(true) {
			return injected
		}
		return nil
	})
	ep, _ := net.Endpoint(0)
	b := &Batch{From: 0, To: 1, Superstep: 2, Count: 1, Seq: 1, Payload: []byte("y")}
	if err := ep.Send(b); !errors.Is(err, injected) {
		t.Fatalf("first send: err = %v, want injected fault", err)
	}
	// The cached connection was torn down; the retry must redial and deliver.
	if err := ep.Send(b); err != nil {
		t.Fatalf("retry after drop: %v", err)
	}
	dst, _ := net.Endpoint(1)
	got, err := dst.Recv()
	if err != nil || string(got.Payload) != "y" || got.Seq != 1 {
		t.Fatalf("recv after redial: %v %+v", err, got)
	}
}

func TestTransientSendErrorClassification(t *testing.T) {
	inner := errors.New("connection reset")
	e := &transientSendError{inner}
	var tr interface{ Transient() bool }
	if !errors.As(e, &tr) || !tr.Transient() {
		t.Error("transientSendError must classify as Transient()")
	}
	if !errors.Is(e, inner) {
		t.Error("transientSendError must unwrap to the socket error")
	}
}
