package transport

import (
	"bytes"
	"fmt"
	"testing"
)

type fakeSpill struct {
	blobs map[string][]byte
	fail  bool
	puts  int
}

func newFakeSpill() *fakeSpill { return &fakeSpill{blobs: make(map[string][]byte)} }

func (f *fakeSpill) Put(name string, data []byte) error {
	if f.fail {
		return fmt.Errorf("spill unavailable")
	}
	f.puts++
	cp := make([]byte, len(data))
	copy(cp, data)
	f.blobs[name] = cp
	return nil
}

func (f *fakeSpill) Get(name string) ([]byte, error) {
	b, ok := f.blobs[name]
	if !ok {
		return nil, fmt.Errorf("no blob %s", name)
	}
	return b, nil
}

func (f *fakeSpill) Delete(name string) error {
	delete(f.blobs, name)
	return nil
}

type replayed struct {
	dest    int
	payload []byte
	count   int
}

func collectReplay(t *testing.T, l *MessageLog, superstep int, want func(int) bool) []replayed {
	t.Helper()
	var got []replayed
	err := l.Replay(superstep, want, func(dest int, payload []byte, count int) error {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		got = append(got, replayed{dest, cp, count})
		return nil
	})
	if err != nil {
		t.Fatalf("replay superstep %d: %v", superstep, err)
	}
	return got
}

func TestMessageLogAppendReplay(t *testing.T) {
	l := NewMessageLog(0, nil, "w0")
	l.Append(0, 1, []byte("alpha"), 2)
	l.Append(0, 2, []byte("beta"), 1)
	l.Append(1, 1, []byte("gamma"), 3)

	got := collectReplay(t, l, 0, func(int) bool { return true })
	if len(got) != 2 || got[0].dest != 1 || string(got[0].payload) != "alpha" || got[0].count != 2 {
		t.Fatalf("superstep 0 replay mismatch: %+v", got)
	}
	// Destination filter.
	got = collectReplay(t, l, 0, func(d int) bool { return d == 2 })
	if len(got) != 1 || got[0].dest != 2 || string(got[0].payload) != "beta" {
		t.Fatalf("filtered replay mismatch: %+v", got)
	}
	// A superstep with no outbound traffic replays cleanly as empty.
	if got := collectReplay(t, l, 7, func(int) bool { return true }); len(got) != 0 {
		t.Fatalf("expected empty replay, got %+v", got)
	}
}

func TestMessageLogAppendCopies(t *testing.T) {
	l := NewMessageLog(0, nil, "w0")
	buf := []byte("original")
	l.Append(0, 1, buf, 1)
	copy(buf, "clobber!")
	got := collectReplay(t, l, 0, func(int) bool { return true })
	if string(got[0].payload) != "original" {
		t.Fatalf("log retained caller's buffer: %q", got[0].payload)
	}
}

func TestMessageLogTruncate(t *testing.T) {
	l := NewMessageLog(0, nil, "w0")
	l.Append(0, 1, []byte("a"), 1)
	l.Append(1, 1, []byte("b"), 1)
	l.Append(2, 1, []byte("c"), 1)
	l.TruncateBelow(2)
	if l.Covers(1) {
		t.Fatal("log claims to cover truncated superstep 1")
	}
	if !l.Covers(2) {
		t.Fatal("log should still cover superstep 2")
	}
	if err := l.Replay(1, func(int) bool { return true }, nil); err == nil {
		t.Fatal("expected error replaying truncated superstep")
	}
	if got := collectReplay(t, l, 2, func(int) bool { return true }); len(got) != 1 || string(got[0].payload) != "c" {
		t.Fatalf("superstep 2 lost by truncation: %+v", got)
	}
	// Appends below the floor are dropped, not resurrected.
	l.Append(0, 1, []byte("stale"), 1)
	if l.Bytes() != 1 {
		t.Fatalf("stale append retained: %d bytes", l.Bytes())
	}
}

func TestMessageLogSpillAndReload(t *testing.T) {
	spill := newFakeSpill()
	l := NewMessageLog(8, spill, "w3")
	big := bytes.Repeat([]byte{0xAB}, 16)
	l.Append(0, 1, big, 4)
	l.Append(1, 2, big, 4) // superstep 0 is now closed and over budget
	if spill.puts == 0 {
		t.Fatal("expected superstep 0 to spill")
	}
	if l.Bytes() > 8+16 {
		t.Fatalf("in-memory bytes not released after spill: %d", l.Bytes())
	}
	got := collectReplay(t, l, 0, func(int) bool { return true })
	if len(got) != 1 || got[0].dest != 1 || got[0].count != 4 || !bytes.Equal(got[0].payload, big) {
		t.Fatalf("spilled replay mismatch: %+v", got)
	}
	// Truncation deletes the spill blob.
	l.TruncateBelow(1)
	if len(spill.blobs) != 0 {
		t.Fatalf("spill blobs leaked after truncation: %v", spill.blobs)
	}
}

func TestMessageLogSpillFailureKeepsMemory(t *testing.T) {
	spill := newFakeSpill()
	spill.fail = true
	l := NewMessageLog(4, spill, "w1")
	l.Append(0, 1, []byte("abcdefgh"), 2)
	l.Append(1, 1, []byte("ijklmnop"), 2)
	// Spill failed; both supersteps must still replay from memory.
	if got := collectReplay(t, l, 0, func(int) bool { return true }); len(got) != 1 || string(got[0].payload) != "abcdefgh" {
		t.Fatalf("replay after failed spill: %+v", got)
	}
}

func TestMessageLogReset(t *testing.T) {
	spill := newFakeSpill()
	l := NewMessageLog(4, spill, "w2")
	l.Append(0, 1, []byte("abcdefgh"), 1)
	l.Append(1, 1, []byte("ijklmnop"), 1)
	l.Reset(1)
	if l.Bytes() != 0 {
		t.Fatalf("bytes after reset: %d", l.Bytes())
	}
	if len(spill.blobs) != 0 {
		t.Fatalf("spill blobs survive reset: %v", spill.blobs)
	}
	if l.Covers(0) {
		t.Fatal("reset log claims to cover pre-floor superstep")
	}
	if err := l.Replay(0, func(int) bool { return true }, nil); err == nil {
		t.Fatal("expected window error after reset")
	}
}
