package transport

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPNetwork is a data plane over real TCP sockets. Each worker runs a
// listener; senders dial peers lazily, cache the connections, and tear them
// down on ResetPeers (the paper re-establishes sockets every superstep to
// avoid idle timeouts on long-running jobs). Incoming batches from all peers
// are funneled into one inbox per worker by per-connection reader
// goroutines — the paper's "receive thread".
type TCPNetwork struct {
	endpoints []*tcpEndpoint
	closeOnce sync.Once
}

// SetSendFault implements FaultInjectable.
func (tn *TCPNetwork) SetSendFault(f FaultFunc) {
	for _, ep := range tn.endpoints {
		ep.faultMu.Lock()
		ep.fault = f
		ep.faultMu.Unlock()
	}
}

// SetObserver implements Observable.
func (tn *TCPNetwork) SetObserver(o Observer) {
	for _, ep := range tn.endpoints {
		ep.faultMu.Lock()
		ep.obs = o
		ep.faultMu.Unlock()
	}
}

// NewTCPNetwork starts listeners for n workers on loopback and returns the
// connected network. Addresses are chosen by the kernel; use Addr to
// retrieve them.
func NewTCPNetwork(n int) (*TCPNetwork, error) {
	tn := &TCPNetwork{endpoints: make([]*tcpEndpoint, n)}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tn.Close()
			return nil, fmt.Errorf("transport: listen for worker %d: %w", i, err)
		}
		ep := &tcpEndpoint{
			id:    i,
			ln:    ln,
			inbox: make(chan *Batch, 1024),
			done:  make(chan struct{}),
			conns: make(map[int]net.Conn),
		}
		tn.endpoints[i] = ep
		addrs[i] = ln.Addr().String()
		go ep.acceptLoop()
	}
	for _, ep := range tn.endpoints {
		ep.peerAddrs = addrs
	}
	return tn, nil
}

// NumWorkers implements Network.
func (tn *TCPNetwork) NumWorkers() int { return len(tn.endpoints) }

// Endpoint implements Network.
func (tn *TCPNetwork) Endpoint(w int) (Endpoint, error) {
	if w < 0 || w >= len(tn.endpoints) {
		return nil, fmt.Errorf("transport: worker %d out of range [0,%d)", w, len(tn.endpoints))
	}
	return tn.endpoints[w], nil
}

// Addr returns the listen address of worker w.
func (tn *TCPNetwork) Addr(w int) string { return tn.endpoints[w].ln.Addr().String() }

// Close implements Network.
func (tn *TCPNetwork) Close() error {
	tn.closeOnce.Do(func() {
		for _, ep := range tn.endpoints {
			if ep != nil {
				ep.Close()
			}
		}
	})
	return nil
}

type tcpEndpoint struct {
	id        int
	ln        net.Listener
	peerAddrs []string
	inbox     chan *Batch
	done      chan struct{}
	closeOnce sync.Once

	mu    sync.Mutex
	conns map[int]net.Conn // cached outgoing connections by peer

	faultMu sync.RWMutex
	fault   FaultFunc
	obs     Observer
}

func (ep *tcpEndpoint) acceptLoop() {
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go ep.readLoop(conn)
	}
}

func (ep *tcpEndpoint) readLoop(conn net.Conn) {
	defer conn.Close()
	var hdr [batchHeaderSize]byte // per-connection scratch: zero allocs per frame
	for {
		b, err := readBatch(conn, hdr[:])
		if err != nil {
			return // peer closed or reset
		}
		select {
		case ep.inbox <- b:
		case <-ep.done:
			// Endpoint closed with a frame in hand: nobody will consume this
			// batch, so recycle its pooled memory here instead of leaking it.
			PutPayload(b.Payload)
			PutBatch(b)
			return
		}
	}
}

// Send writes b to the peer socket, dialing (and redialing once on a broken
// connection) as needed. The engine's sender loop retries Sends, so every
// error out of here must carry its retryability classification.
//
//pregelvet:retrypath
func (ep *tcpEndpoint) Send(b *Batch) error {
	select {
	case <-ep.done:
		return ErrClosed
	default:
	}
	to := int(b.To)
	if to < 0 || to >= len(ep.peerAddrs) {
		//pregelvet:terminal a peer id outside the cluster is a caller bug, never retryable
		return fmt.Errorf("transport: send to unknown worker %d", b.To)
	}
	ep.faultMu.RLock()
	fault, obs := ep.fault, ep.obs
	ep.faultMu.RUnlock()
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if fault != nil {
		if ferr := fault(int(b.From), int(b.To), int(b.Superstep)); ferr != nil {
			// Injected connection fault: the batch is not written and any
			// cached socket to the peer is torn down, so a retry must redial.
			if conn, ok := ep.conns[to]; ok {
				conn.Close()
				delete(ep.conns, to)
			}
			return ferr
		}
	}
	conn, ok := ep.conns[to]
	if !ok {
		var err error
		conn, err = net.Dial("tcp", ep.peerAddrs[to])
		if err != nil {
			return &transientSendError{fmt.Errorf("transport: dial worker %d: %w", to, err)}
		}
		ep.conns[to] = conn
	}
	if err := writeBatch(conn, b); err != nil {
		// Drop the broken connection; one retry with a fresh dial. Receivers
		// dedupe by (From, Seq), so resending a batch whose first write
		// partially succeeded cannot double-deliver.
		conn.Close()
		delete(ep.conns, to)
		conn, derr := net.Dial("tcp", ep.peerAddrs[to])
		if derr != nil {
			return &transientSendError{fmt.Errorf("transport: redial worker %d: %w", to, derr)}
		}
		if obs != nil {
			obs.Reconnect(int(b.From), to)
		}
		ep.conns[to] = conn
		if werr := writeBatch(conn, b); werr != nil {
			return &transientSendError{fmt.Errorf("transport: resend to worker %d: %w", to, werr)}
		}
	}
	if obs != nil {
		obs.BatchSent(int(b.From), to, int(b.Superstep), int(b.Count), b.WireSize())
	}
	return nil
}

// SendCopiesPayload implements SendCopier: Send serializes the payload onto
// the socket, so the caller may recycle the buffer after a successful Send.
func (ep *tcpEndpoint) SendCopiesPayload() bool { return true }

func (ep *tcpEndpoint) Recv() (*Batch, error) {
	select {
	case b := <-ep.inbox:
		return b, nil
	case <-ep.done:
		select {
		case b := <-ep.inbox:
			return b, nil
		default:
			return nil, io.EOF
		}
	}
}

func (ep *tcpEndpoint) ResetPeers() error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for to, conn := range ep.conns {
		conn.Close()
		delete(ep.conns, to)
	}
	return nil
}

func (ep *tcpEndpoint) Close() error {
	ep.closeOnce.Do(func() {
		close(ep.done)
		ep.ln.Close()
		ep.ResetPeers()
	})
	return nil
}
