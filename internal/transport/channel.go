package transport

import (
	"fmt"
	"io"
	"sync"
)

// ChannelNetwork is an in-process data plane: each worker owns a buffered
// inbox channel. It preserves the TCP transport's semantics (opaque
// serialized payloads, per-destination batches) while being fast and
// allocation-light, and is the default for experiments.
type ChannelNetwork struct {
	endpoints []*channelEndpoint
	closeOnce sync.Once

	faultMu sync.RWMutex
	fault   FaultFunc
	obs     Observer
}

// SetSendFault implements FaultInjectable.
func (cn *ChannelNetwork) SetSendFault(f FaultFunc) {
	cn.faultMu.Lock()
	cn.fault = f
	cn.faultMu.Unlock()
}

// SetObserver implements Observable. The channel transport has no sockets,
// so only BatchSent fires (a Reconnect cannot happen in-process).
func (cn *ChannelNetwork) SetObserver(o Observer) {
	cn.faultMu.Lock()
	cn.obs = o
	cn.faultMu.Unlock()
}

func (cn *ChannelNetwork) sendFault() (FaultFunc, Observer) {
	cn.faultMu.RLock()
	defer cn.faultMu.RUnlock()
	return cn.fault, cn.obs
}

// NewChannelNetwork creates a data plane for n workers with the given inbox
// buffer depth per worker.
func NewChannelNetwork(n, buffer int) *ChannelNetwork {
	cn := &ChannelNetwork{endpoints: make([]*channelEndpoint, n)}
	for i := range cn.endpoints {
		cn.endpoints[i] = &channelEndpoint{
			net:   cn,
			id:    i,
			inbox: make(chan *Batch, buffer),
			done:  make(chan struct{}),
		}
	}
	return cn
}

// NumWorkers implements Network.
func (cn *ChannelNetwork) NumWorkers() int { return len(cn.endpoints) }

// Endpoint implements Network.
func (cn *ChannelNetwork) Endpoint(w int) (Endpoint, error) {
	if w < 0 || w >= len(cn.endpoints) {
		return nil, fmt.Errorf("transport: worker %d out of range [0,%d)", w, len(cn.endpoints))
	}
	return cn.endpoints[w], nil
}

// Close implements Network.
func (cn *ChannelNetwork) Close() error {
	cn.closeOnce.Do(func() {
		for _, ep := range cn.endpoints {
			ep.closeOnce.Do(func() { close(ep.done) })
		}
	})
	return nil
}

type channelEndpoint struct {
	net       *ChannelNetwork
	id        int
	inbox     chan *Batch
	done      chan struct{}
	closeOnce sync.Once
}

// Send hands b to the destination inbox by reference. Like the TCP
// endpoint's Send this sits under the engine's retry loop, so errors must
// stay classified.
//
//pregelvet:retrypath
func (ep *channelEndpoint) Send(b *Batch) error {
	if int(b.To) < 0 || int(b.To) >= len(ep.net.endpoints) {
		//pregelvet:terminal a peer id outside the cluster is a caller bug, never retryable
		return fmt.Errorf("transport: send to unknown worker %d", b.To)
	}
	f, obs := ep.net.sendFault()
	if f != nil {
		if err := f(int(b.From), int(b.To), int(b.Superstep)); err != nil {
			return err // injected fault: batch not delivered
		}
	}
	dst := ep.net.endpoints[b.To]
	// Capture observer fields before the handoff: ownership of b (and its
	// pooled payload) transfers to the receiver the moment it lands in the
	// inbox, so touching it afterwards would race with recycling.
	from, to, superstep, count, wire := int(b.From), int(b.To), int(b.Superstep), int(b.Count), b.WireSize()
	select {
	case <-dst.done:
		return ErrClosed
	case dst.inbox <- b:
		if obs != nil {
			obs.BatchSent(from, to, superstep, count, wire)
		}
		return nil
	}
}

func (ep *channelEndpoint) Recv() (*Batch, error) {
	select {
	case b := <-ep.inbox:
		return b, nil
	case <-ep.done:
		// Drain anything already queued before reporting EOF.
		select {
		case b := <-ep.inbox:
			return b, nil
		default:
			return nil, io.EOF
		}
	}
}

func (ep *channelEndpoint) ResetPeers() error { return nil } // nothing cached

func (ep *channelEndpoint) Close() error {
	ep.closeOnce.Do(func() { close(ep.done) })
	return nil
}
