// Package transport moves bulk data-message batches between BSP workers.
//
// The paper's data plane uses Azure TCP endpoints between every pair of
// workers, with serialized messages buffered per destination and sent as
// "bulk" transfers by background threads; sockets are re-established each
// superstep to avoid timeouts on long jobs. This package provides that TCP
// transport (over real sockets) plus an in-process channel transport with
// identical semantics for fast deterministic experiments.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Batch is a bulk transfer of serialized vertex messages from one worker to
// another within one superstep. Payload encoding is owned by the engine; the
// transport treats it as opaque bytes.
type Batch struct {
	From      int32 // sending worker
	To        int32 // receiving worker
	Superstep int32
	Count     int32 // number of vertex messages in Payload
	// Epoch is the sender's recovery epoch (incremented on every checkpoint
	// rollback). Receivers drop batches from stale epochs so in-flight data
	// from an aborted execution cannot pollute a replayed superstep.
	Epoch int32
	// Seq is a per-(sender,receiver) monotonic sequence number. Receivers
	// drop batches whose Seq they have already seen, making retried sends
	// (after a transient fault) safe against duplicate delivery.
	Seq     int32
	Payload []byte
}

// WireSize returns the encoded size of the batch in bytes, used for network
// cost accounting.
func (b *Batch) WireSize() int64 {
	return int64(batchHeaderSize + len(b.Payload))
}

const batchHeaderSize = 4 * 7 // from, to, superstep, count, epoch, seq, payload length

// ErrClosed is returned by endpoints after Close.
var ErrClosed = fmt.Errorf("transport: endpoint closed")

// FaultFunc inspects an outgoing batch and may return a non-nil error to
// inject a data-plane fault: the batch is NOT delivered and Send returns the
// error. Injected errors should be transient (see transientSendError) so the
// engine's retry policy resends the batch.
type FaultFunc func(from, to, superstep int) error

// FaultInjectable is implemented by networks supporting send-fault injection.
type FaultInjectable interface {
	// SetSendFault installs f on every endpoint (nil removes it). It must be
	// called before traffic starts.
	SetSendFault(f FaultFunc)
}

// Observer receives data-plane telemetry: one BatchSent per successfully
// delivered batch and one Reconnect per mid-superstep redial forced by a
// send failure (the routine per-superstep socket re-establishment after
// ResetPeers is not a Reconnect). Implementations must be safe for
// concurrent use; the engine adapts this onto its tracer and metrics.
type Observer interface {
	BatchSent(from, to, superstep, msgs int, wireBytes int64)
	Reconnect(from, to int)
}

// Observable is implemented by networks supporting telemetry observation.
type Observable interface {
	// SetObserver installs o on every endpoint (nil removes it). It must be
	// called before traffic starts.
	SetObserver(o Observer)
}

// transientSendError classifies socket-level send failures (dial/write to a
// live peer) as retryable without importing the cloud package: it satisfies
// the `Transient() bool` interface that cloud.IsTransient recognizes.
type transientSendError struct{ err error }

func (e *transientSendError) Error() string   { return e.err.Error() }
func (e *transientSendError) Unwrap() error   { return e.err }
func (e *transientSendError) Transient() bool { return true }

// Endpoint is one worker's connection to the data plane.
type Endpoint interface {
	// Send delivers a batch to batch.To. It may block for flow control.
	Send(b *Batch) error
	// Recv returns the next incoming batch, blocking until one arrives.
	// Returns io.EOF after Close.
	Recv() (*Batch, error)
	// ResetPeers tears down cached peer connections; the next Send
	// reconnects. The engine calls this at superstep boundaries, mirroring
	// the paper's per-superstep socket re-establishment.
	ResetPeers() error
	// Close shuts the endpoint down and unblocks Recv.
	Close() error
}

// Network is a data plane connecting a fixed set of workers.
type Network interface {
	NumWorkers() int
	// Endpoint returns worker w's endpoint. Each worker must use only its
	// own endpoint.
	Endpoint(w int) (Endpoint, error)
	// Close shuts down all endpoints.
	Close() error
}

// Payload buffer recycling. Batch payloads are the data plane's dominant
// allocation: every outgoing bulk transfer serializes into one and every
// incoming TCP batch deserializes from one, at up to FlushBytes apiece,
// thousands of times per job. The pool turns that churn into reuse. The
// ownership contract: GetPayload hands the caller an exclusive buffer;
// whoever consumes the batch last (the receiver after decoding, or a sender
// whose endpoint copies payloads to the wire — see SendCopier) returns it
// with PutPayload. Returning a buffer that is still referenced elsewhere is
// a use-after-free-style bug, so only clear owners may recycle.

// maxPooledPayload bounds the buffers the pool retains; anything larger
// (oversized one-off transfers) is left to the garbage collector so a single
// huge batch cannot pin memory for the rest of the process.
const maxPooledPayload = 1 << 20

var payloadPool sync.Pool // holds *[]byte with len 0

// GetPayload returns a payload buffer of length n, reusing pooled capacity
// when available.
func GetPayload(n int) []byte {
	if v := payloadPool.Get(); v != nil {
		p := *(v.(*[]byte))
		invariantPayloadGet(p[:cap(p)])
		if cap(p) >= n {
			return p[:n]
		}
	}
	c := n
	if c < 1024 {
		c = 1024
	}
	return make([]byte, n, c)
}

// PutPayload recycles a buffer obtained from GetPayload (or any buffer the
// caller exclusively owns). The buffer must not be used after the call.
func PutPayload(p []byte) {
	if cap(p) == 0 || cap(p) > maxPooledPayload {
		return
	}
	invariantPayloadPut(p[:cap(p)])
	p = p[:0]
	payloadPool.Put(&p)
}

var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// GetBatch returns a zeroed Batch from the pool. Pair with PutBatch at the
// point the batch is fully consumed (same ownership rules as payloads).
func GetBatch() *Batch {
	b := batchPool.Get().(*Batch)
	invariantBatchGet(b)
	return b
}

// PutBatch recycles a batch. The payload is NOT recycled (it may have been
// handed off separately); callers recycle it with PutPayload when they own it.
func PutBatch(b *Batch) {
	invariantBatchPut(b) // double-put check must precede the zeroing below
	*b = Batch{}
	invariantBatchStamp(b)
	batchPool.Put(b)
}

// SendCopier is implemented by endpoints whose Send copies b.Payload to the
// wire before returning (TCP): after a successful Send the caller still owns
// the buffer and may recycle it with PutPayload. Endpoints without this
// capability (the in-process channel transport) hand the payload off to the
// receiver by reference, so only the receiver may recycle it.
type SendCopier interface {
	SendCopiesPayload() bool
}

// coalesceLimit is the largest payload writeBatch copies into its frame
// buffer to ship header+payload as one Write (one syscall). Larger payloads
// amortize a second write fine and would bloat the frame-buffer pool.
const coalesceLimit = 256 << 10

var frameBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4<<10)
	return &b
}}

func putHeader(hdr []byte, b *Batch) {
	binary.LittleEndian.PutUint32(hdr[0:], uint32(b.From))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(b.To))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(b.Superstep))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(b.Count))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(b.Epoch))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(b.Seq))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(b.Payload)))
}

// writeBatch frames and writes a batch to w. Header and payload go out as a
// single Write (one syscall on a socket) via a pooled frame buffer; only
// payloads past coalesceLimit fall back to a second Write.
func writeBatch(w io.Writer, b *Batch) error {
	bufp := frameBufPool.Get().(*[]byte)
	buf := (*bufp)[:batchHeaderSize]
	putHeader(buf, b)
	var err error
	if len(b.Payload) <= coalesceLimit {
		buf = append(buf, b.Payload...)
		_, err = w.Write(buf)
	} else {
		if _, err = w.Write(buf); err == nil {
			_, err = w.Write(b.Payload)
		}
	}
	*bufp = buf[:0]
	frameBufPool.Put(bufp)
	return err
}

// readBatch reads one framed batch from r into hdr (a caller-owned scratch
// buffer of at least batchHeaderSize bytes, reused across calls). The
// returned batch's payload comes from the payload pool; the consumer must
// PutPayload it once decoded.
func readBatch(r io.Reader, hdr []byte) (*Batch, error) {
	hdr = hdr[:batchHeaderSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	b := GetBatch()
	b.From = int32(binary.LittleEndian.Uint32(hdr[0:]))
	b.To = int32(binary.LittleEndian.Uint32(hdr[4:]))
	b.Superstep = int32(binary.LittleEndian.Uint32(hdr[8:]))
	b.Count = int32(binary.LittleEndian.Uint32(hdr[12:]))
	b.Epoch = int32(binary.LittleEndian.Uint32(hdr[16:]))
	b.Seq = int32(binary.LittleEndian.Uint32(hdr[20:]))
	n := binary.LittleEndian.Uint32(hdr[24:])
	if n > 1<<30 {
		PutBatch(b)
		return nil, fmt.Errorf("transport: absurd payload length %d", n)
	}
	if n > 0 {
		b.Payload = GetPayload(int(n))
		if _, err := io.ReadFull(r, b.Payload); err != nil {
			PutPayload(b.Payload)
			b.Payload = nil
			PutBatch(b)
			return nil, err
		}
	}
	return b, nil
}
