// Package transport moves bulk data-message batches between BSP workers.
//
// The paper's data plane uses Azure TCP endpoints between every pair of
// workers, with serialized messages buffered per destination and sent as
// "bulk" transfers by background threads; sockets are re-established each
// superstep to avoid timeouts on long jobs. This package provides that TCP
// transport (over real sockets) plus an in-process channel transport with
// identical semantics for fast deterministic experiments.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Batch is a bulk transfer of serialized vertex messages from one worker to
// another within one superstep. Payload encoding is owned by the engine; the
// transport treats it as opaque bytes.
type Batch struct {
	From      int32 // sending worker
	To        int32 // receiving worker
	Superstep int32
	Count     int32 // number of vertex messages in Payload
	// Epoch is the sender's recovery epoch (incremented on every checkpoint
	// rollback). Receivers drop batches from stale epochs so in-flight data
	// from an aborted execution cannot pollute a replayed superstep.
	Epoch int32
	// Seq is a per-(sender,receiver) monotonic sequence number. Receivers
	// drop batches whose Seq they have already seen, making retried sends
	// (after a transient fault) safe against duplicate delivery.
	Seq     int32
	Payload []byte
}

// WireSize returns the encoded size of the batch in bytes, used for network
// cost accounting.
func (b *Batch) WireSize() int64 {
	return int64(batchHeaderSize + len(b.Payload))
}

const batchHeaderSize = 4 * 7 // from, to, superstep, count, epoch, seq, payload length

// ErrClosed is returned by endpoints after Close.
var ErrClosed = fmt.Errorf("transport: endpoint closed")

// FaultFunc inspects an outgoing batch and may return a non-nil error to
// inject a data-plane fault: the batch is NOT delivered and Send returns the
// error. Injected errors should be transient (see transientSendError) so the
// engine's retry policy resends the batch.
type FaultFunc func(from, to, superstep int) error

// FaultInjectable is implemented by networks supporting send-fault injection.
type FaultInjectable interface {
	// SetSendFault installs f on every endpoint (nil removes it). It must be
	// called before traffic starts.
	SetSendFault(f FaultFunc)
}

// Observer receives data-plane telemetry: one BatchSent per successfully
// delivered batch and one Reconnect per mid-superstep redial forced by a
// send failure (the routine per-superstep socket re-establishment after
// ResetPeers is not a Reconnect). Implementations must be safe for
// concurrent use; the engine adapts this onto its tracer and metrics.
type Observer interface {
	BatchSent(from, to, superstep, msgs int, wireBytes int64)
	Reconnect(from, to int)
}

// Observable is implemented by networks supporting telemetry observation.
type Observable interface {
	// SetObserver installs o on every endpoint (nil removes it). It must be
	// called before traffic starts.
	SetObserver(o Observer)
}

// transientSendError classifies socket-level send failures (dial/write to a
// live peer) as retryable without importing the cloud package: it satisfies
// the `Transient() bool` interface that cloud.IsTransient recognizes.
type transientSendError struct{ err error }

func (e *transientSendError) Error() string   { return e.err.Error() }
func (e *transientSendError) Unwrap() error   { return e.err }
func (e *transientSendError) Transient() bool { return true }

// Endpoint is one worker's connection to the data plane.
type Endpoint interface {
	// Send delivers a batch to batch.To. It may block for flow control.
	Send(b *Batch) error
	// Recv returns the next incoming batch, blocking until one arrives.
	// Returns io.EOF after Close.
	Recv() (*Batch, error)
	// ResetPeers tears down cached peer connections; the next Send
	// reconnects. The engine calls this at superstep boundaries, mirroring
	// the paper's per-superstep socket re-establishment.
	ResetPeers() error
	// Close shuts the endpoint down and unblocks Recv.
	Close() error
}

// Network is a data plane connecting a fixed set of workers.
type Network interface {
	NumWorkers() int
	// Endpoint returns worker w's endpoint. Each worker must use only its
	// own endpoint.
	Endpoint(w int) (Endpoint, error)
	// Close shuts down all endpoints.
	Close() error
}

// writeBatch frames and writes a batch to w.
func writeBatch(w io.Writer, b *Batch) error {
	hdr := make([]byte, batchHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(b.From))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(b.To))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(b.Superstep))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(b.Count))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(b.Epoch))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(b.Seq))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(b.Payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(b.Payload)
	return err
}

// readBatch reads one framed batch from r.
func readBatch(r io.Reader) (*Batch, error) {
	hdr := make([]byte, batchHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	b := &Batch{
		From:      int32(binary.LittleEndian.Uint32(hdr[0:])),
		To:        int32(binary.LittleEndian.Uint32(hdr[4:])),
		Superstep: int32(binary.LittleEndian.Uint32(hdr[8:])),
		Count:     int32(binary.LittleEndian.Uint32(hdr[12:])),
		Epoch:     int32(binary.LittleEndian.Uint32(hdr[16:])),
		Seq:       int32(binary.LittleEndian.Uint32(hdr[20:])),
	}
	n := binary.LittleEndian.Uint32(hdr[24:])
	if n > 1<<30 {
		return nil, fmt.Errorf("transport: absurd payload length %d", n)
	}
	b.Payload = make([]byte, n)
	if _, err := io.ReadFull(r, b.Payload); err != nil {
		return nil, err
	}
	return b, nil
}
