//go:build pregel_invariants

package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
	"unsafe"
)

// Runtime pool invariants, compiled in with -tags pregel_invariants (the
// chaos soak and race CI runs use it). The failure mode these catch —
// returning the same buffer to the pool twice — is otherwise silent: two
// goroutines each Get the "same" allocation and scribble over each other,
// and the corruption surfaces far away as a garbled frame or a wrong
// vertex value.
//
// Detection: on Put, the buffer's base address goes into a tracking set and
// a canary word is written into the (now pool-owned, contents-free) memory;
// on Get both are cleared. A second Put of a tracked address whose canary is
// still intact can only be the same live buffer coming back twice, so it
// panics at the offending call site. The canary guard matters: the pool may
// drop entries under GC pressure and the allocator may hand the address to a
// fresh object, so set membership alone would false-positive on stale
// entries. A fresh object holding the exact canary word at the exact base
// offset is not a realistic coincidence.

// payloadCanary is the 8-byte pattern stamped at the base of pooled payload
// buffers while the pool owns them.
const payloadCanary uint64 = 0xA55A_C0DE_DEAD_50F7

// batchCanary marks a pooled Batch via its Seq field (engine-stamped Seq
// values start at 1 and stay far below this).
const batchCanary int32 = -0x5EADBEE

// maxTracked bounds each tracking set; beyond it new Puts go untracked
// (detection degrades, memory stays bounded).
const maxTracked = 1 << 16

var invMu sync.Mutex
var pooledPayloads = make(map[uintptr]struct{})
var pooledBatches = make(map[uintptr]struct{})

// invariantPayloadGet runs on every pooled buffer leaving the pool, before
// any length check: even a buffer the pool is about to discard as too small
// stops being pool-owned here.
func invariantPayloadGet(p []byte) {
	if cap(p) < 8 {
		return
	}
	base := uintptr(unsafe.Pointer(&p[0]))
	invMu.Lock()
	delete(pooledPayloads, base)
	invMu.Unlock()
	binary.LittleEndian.PutUint64(p[:8], 0)
}

func invariantPayloadPut(p []byte) {
	if cap(p) < 8 {
		return
	}
	p = p[:cap(p)]
	base := uintptr(unsafe.Pointer(&p[0]))
	invMu.Lock()
	_, tracked := pooledPayloads[base]
	if tracked && binary.LittleEndian.Uint64(p[:8]) == payloadCanary {
		invMu.Unlock()
		panic(fmt.Sprintf("transport: double PutPayload of buffer %#x (cap %d): pooled memory returned twice corrupts a concurrent owner", base, cap(p)))
	}
	if len(pooledPayloads) < maxTracked {
		pooledPayloads[base] = struct{}{}
	}
	invMu.Unlock()
	binary.LittleEndian.PutUint64(p[:8], payloadCanary)
}

// invariantBatchGet restores the zeroed contract GetBatch promises: pooled
// batches carry the canary in Seq while pool-owned.
func invariantBatchGet(b *Batch) {
	base := uintptr(unsafe.Pointer(b))
	invMu.Lock()
	delete(pooledBatches, base)
	invMu.Unlock()
	if b.Seq == batchCanary {
		b.Seq = 0
	}
}

// invariantBatchPut runs at the top of PutBatch, before the struct is
// zeroed: a pool-resident batch still carries the canary in Seq at that
// point, so a second Put of the same live pointer is caught here.
func invariantBatchPut(b *Batch) {
	base := uintptr(unsafe.Pointer(b))
	invMu.Lock()
	_, tracked := pooledBatches[base]
	invMu.Unlock()
	if tracked && b.Seq == batchCanary {
		panic(fmt.Sprintf("transport: double PutBatch of %p: pooled batch returned twice corrupts a concurrent owner", b))
	}
}

// invariantBatchStamp runs after the zeroing: it marks the batch as
// pool-owned (tracking set + canary in Seq) for the next Put to test.
func invariantBatchStamp(b *Batch) {
	base := uintptr(unsafe.Pointer(b))
	invMu.Lock()
	if len(pooledBatches) < maxTracked {
		pooledBatches[base] = struct{}{}
	}
	invMu.Unlock()
	b.Seq = batchCanary
}
