//go:build pregel_invariants

package transport

import (
	"strings"
	"testing"
)

// These tests only exist under -tags pregel_invariants; the default build
// compiles the hooks away and double-puts go (deliberately) undetected.

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	f()
}

func TestDoublePutPayloadPanics(t *testing.T) {
	p := GetPayload(256)
	PutPayload(p)
	mustPanic(t, "double PutPayload", func() { PutPayload(p) })
}

func TestDoublePutBatchPanics(t *testing.T) {
	b := GetBatch()
	PutBatch(b)
	mustPanic(t, "double PutBatch", func() { PutBatch(b) })
}

func TestPayloadRoundTripStaysClean(t *testing.T) {
	// Get → Put → Get → Put of the same buffer is the normal lifecycle and
	// must not trip the canary.
	p := GetPayload(64)
	PutPayload(p)
	q := GetPayload(64)
	PutPayload(q)
}

func TestBatchCanaryInvisibleToCallers(t *testing.T) {
	b := GetBatch()
	if b.Seq != 0 {
		t.Fatalf("GetBatch returned Seq=%d, want zeroed batch", b.Seq)
	}
	PutBatch(b)
	c := GetBatch()
	if c.Seq != 0 {
		t.Fatalf("recycled batch has Seq=%d, want zeroed batch", c.Seq)
	}
	PutBatch(c)
}
