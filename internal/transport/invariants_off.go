//go:build !pregel_invariants

package transport

// Default build: the pool's ownership invariants are enforced statically by
// pregelvet (internal/analysis) and the hooks below compile to nothing. The
// pregel_invariants build tag swaps in runtime detection of double-puts —
// see invariants_on.go.

func invariantPayloadGet(p []byte) {}
func invariantPayloadPut(p []byte) {}
func invariantBatchGet(b *Batch)   {}
func invariantBatchPut(b *Batch)   {}
func invariantBatchStamp(b *Batch) {}
