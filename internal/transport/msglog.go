package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// SpillStore persists message-log segments that no longer fit the in-memory
// budget. It is satisfied by a thin adapter over cloud.BlobStore on the
// engine side; transport stays free of a cloud dependency (mirroring the
// transientSendError layering).
type SpillStore interface {
	Put(name string, data []byte) error
	Get(name string) ([]byte, error)
	Delete(name string) error
}

// MessageLog is a sender-side log of outbound data batches, the substrate of
// confined recovery: when a peer rolls back to a checkpoint, the survivors
// replay the logged traffic for the lost supersteps instead of re-executing
// them. Entries are keyed by the superstep that produced them and the
// destination worker.
//
// Ownership contract: Append COPIES the payload into a pooled buffer the log
// owns exclusively, so callers keep their usual ownership of the batch they
// are sending (the log is invisible to the send path's recycling rules).
// Replay hands callbacks a view of log-owned bytes: the callback must copy
// into a fresh GetPayload buffer before building a Batch and must never
// PutPayload the view (the pregelvet msglog analyzer enforces both).
//
// A bounded in-memory window: once retained bytes exceed the budget, whole
// closed supersteps spill to the SpillStore (oldest first) and their pooled
// buffers are recycled. Replay transparently reloads spilled segments.
type MessageLog struct {
	mu     sync.Mutex
	budget int64
	spill  SpillStore
	prefix string // spill blob name prefix (unique per worker)
	steps  map[int]*logStep
	bytes  int64 // retained in-memory payload bytes
	floor  int   // lowest superstep still covered by the log
	newest int   // highest superstep ever appended
}

type logStep struct {
	entries []logEntry
	bytes   int64 // in-memory payload bytes (0 once spilled)
	spilled bool
}

type logEntry struct {
	dest    int32
	count   int32
	payload []byte // log-owned pooled buffer
}

// NewMessageLog creates a log with the given in-memory byte budget. A
// non-positive budget disables spilling pressure (everything stays in
// memory); a nil spill store likewise pins the log in memory. prefix
// namespaces spill blobs (use one per worker).
func NewMessageLog(budgetBytes int64, spill SpillStore, prefix string) *MessageLog {
	return &MessageLog{
		budget: budgetBytes,
		spill:  spill,
		prefix: prefix,
		steps:  make(map[int]*logStep),
	}
}

// Append records one outbound batch payload produced at the given superstep
// for the given destination. The payload is copied; the caller's ownership
// of it is unchanged.
func (l *MessageLog) Append(superstep, dest int, payload []byte, count int) {
	if l == nil {
		return
	}
	cp := GetPayload(len(payload))
	copy(cp, payload)
	l.mu.Lock()
	if superstep < l.floor {
		// Already truncated past this superstep (possible only on stale
		// stragglers); nothing downstream can ever need it.
		l.mu.Unlock()
		PutPayload(cp)
		return
	}
	st := l.steps[superstep]
	if st == nil {
		st = &logStep{}
		l.steps[superstep] = st
	}
	st.entries = append(st.entries, logEntry{dest: int32(dest), count: int32(count), payload: cp})
	st.bytes += int64(len(cp))
	l.bytes += int64(len(cp))
	if superstep > l.newest {
		l.newest = superstep
	}
	l.maybeSpillLocked()
	l.mu.Unlock()
}

// maybeSpillLocked serializes the oldest closed supersteps to the spill
// store while over budget. The newest superstep is still accumulating and
// never spills. Spill failures are tolerated: the segment simply stays in
// memory (over budget) and remains replayable.
func (l *MessageLog) maybeSpillLocked() {
	if l.spill == nil || l.budget <= 0 {
		return
	}
	for l.bytes > l.budget {
		oldest := -1
		for s, st := range l.steps {
			if st.spilled || st.bytes == 0 || s >= l.newest {
				continue
			}
			if oldest < 0 || s < oldest {
				oldest = s
			}
		}
		if oldest < 0 {
			return
		}
		st := l.steps[oldest]
		if err := l.spill.Put(l.spillName(oldest), encodeLogStep(st)); err != nil {
			return
		}
		for _, e := range st.entries {
			PutPayload(e.payload)
		}
		l.bytes -= st.bytes
		st.entries, st.bytes, st.spilled = nil, 0, true
	}
}

func (l *MessageLog) spillName(superstep int) string {
	return fmt.Sprintf("%s-s%08d", l.prefix, superstep)
}

// encodeLogStep flattens a step's entries: per entry a 12-byte header
// (dest, count, payload length) followed by the payload.
func encodeLogStep(st *logStep) []byte {
	n := 0
	for _, e := range st.entries {
		n += 12 + len(e.payload)
	}
	out := make([]byte, 0, n)
	var hdr [12]byte
	for _, e := range st.entries {
		binary.LittleEndian.PutUint32(hdr[0:], uint32(e.dest))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(e.count))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(e.payload)))
		out = append(out, hdr[:]...)
		out = append(out, e.payload...)
	}
	return out
}

// Covers reports whether the log still holds every superstep in
// [from, through] (i.e. none have been truncated). It does not verify spill
// blobs are readable; Replay surfaces that.
func (l *MessageLog) Covers(from int) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return from >= l.floor
}

// Replay invokes send for every logged entry of the given superstep whose
// destination satisfies want, in the order the entries were appended. The
// payload passed to send is log-owned: copy before retaining, never
// PutPayload it. Returns an error if the superstep has been truncated out of
// the window or a spilled segment cannot be reloaded — the caller should
// fall back to global recovery.
func (l *MessageLog) Replay(superstep int, want func(dest int) bool,
	send func(dest int, payload []byte, count int) error) error {
	if l == nil {
		return fmt.Errorf("msglog: no log configured")
	}
	l.mu.Lock()
	if superstep < l.floor {
		l.mu.Unlock()
		return fmt.Errorf("msglog: superstep %d truncated (window floor %d)", superstep, l.floor)
	}
	st := l.steps[superstep]
	spilled := st != nil && st.spilled
	l.mu.Unlock()
	if st == nil {
		return nil // superstep produced no outbound batches
	}
	if spilled {
		data, err := l.spill.Get(l.spillName(superstep))
		if err != nil {
			return fmt.Errorf("msglog: reload spilled superstep %d: %w", superstep, err)
		}
		return replayEncoded(data, want, send)
	}
	// Safe without the lock: closed steps are append-only from other
	// goroutines' perspective only for the newest superstep, and replay is
	// only ever invoked for supersteps the worker has finished.
	for _, e := range st.entries {
		if !want(int(e.dest)) {
			continue
		}
		if err := send(int(e.dest), e.payload, int(e.count)); err != nil {
			return err
		}
	}
	return nil
}

func replayEncoded(data []byte, want func(dest int) bool,
	send func(dest int, payload []byte, count int) error) error {
	for len(data) > 0 {
		if len(data) < 12 {
			return fmt.Errorf("msglog: corrupt spill segment (short header)")
		}
		dest := int(int32(binary.LittleEndian.Uint32(data[0:])))
		count := int(int32(binary.LittleEndian.Uint32(data[4:])))
		n := int(binary.LittleEndian.Uint32(data[8:]))
		data = data[12:]
		if n > len(data) {
			return fmt.Errorf("msglog: corrupt spill segment (truncated payload)")
		}
		if want(dest) {
			if err := send(dest, data[:n], count); err != nil {
				return err
			}
		}
		data = data[n:]
	}
	return nil
}

// TruncateBelow drops every superstep before the given one: pooled buffers
// are recycled and spill blobs deleted (best effort). Called when a
// checkpoint at `superstep` commits — the snapshot includes each worker's
// pending inbox for that superstep, so older traffic can never be replayed.
func (l *MessageLog) TruncateBelow(superstep int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for s, st := range l.steps {
		if s >= superstep {
			continue
		}
		for _, e := range st.entries {
			PutPayload(e.payload)
		}
		l.bytes -= st.bytes
		if st.spilled && l.spill != nil {
			_ = l.spill.Delete(l.spillName(s))
		}
		delete(l.steps, s)
	}
	if superstep > l.floor {
		l.floor = superstep
	}
}

// Reset drops the entire log and re-bases the window floor, used when the
// owning worker itself restores from a checkpoint (its log dies with its
// VM) or at job teardown.
func (l *MessageLog) Reset(floor int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for s, st := range l.steps {
		for _, e := range st.entries {
			PutPayload(e.payload)
		}
		l.bytes -= st.bytes
		if st.spilled && l.spill != nil {
			_ = l.spill.Delete(l.spillName(s))
		}
		delete(l.steps, s)
	}
	l.floor = floor
	if l.newest < floor {
		l.newest = floor
	}
}

// Bytes returns the retained in-memory payload bytes (spilled segments
// excluded), the quantity the pregel_msglog_bytes gauge reports and the
// budget governs.
func (l *MessageLog) Bytes() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}
