package analysis

import (
	"go/ast"
	"go/types"
)

// EpochStamp enforces recovery-epoch stamping: a transport.Batch headed for
// the wire must carry the sender's recovery epoch, or receivers cannot
// reject stale in-flight data after a checkpoint rollback (the silent
// corruption mode the chaos soak exists to catch). Two construction shapes
// are checked in every package except transport itself (the wire layer
// decodes epochs, it does not originate them):
//
//   - composite literals transport.Batch{...} that omit the Epoch field and
//     are never followed by an explicit `.Epoch =` assignment on the same
//     variable in the same function, and
//   - batches built field-by-field from transport.GetBatch() (From/To
//     assigned) that are passed directly to a Send method without an Epoch
//     assignment in between. Handing the batch to an intermediary (the
//     engine's enqueue path, which stamps at enqueue time) is trusted.
//
// Suppress deliberately epoch-free batches (raw transport tools) with
// //pregelvet:ignore epochstamp.
var EpochStamp = &Analyzer{
	Name: "epochstamp",
	Doc:  "batches must be stamped with the recovery epoch before they reach Send",
	Run:  runEpochStamp,
}

func runEpochStamp(pass *Pass) {
	if pkgHasSuffix(pass.Pkg, "transport") {
		return
	}
	info := pass.TypesInfo
	for _, scope := range funcScopes(pass.Files) {
		// Every `x.Epoch = ...` target object in this scope.
		stamped := make(map[types.Object]bool)
		inspectSkipFuncLit(scope.body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return
			}
			for _, lhs := range as.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Epoch" {
					if base, ok := sel.X.(*ast.Ident); ok {
						if obj := objOfIdent(info, base); obj != nil {
							stamped[obj] = true
						}
					}
				}
			}
		})

		inspectSkipFuncLit(scope.body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkBatchLiteral(pass, info, n, stamped, scope)
			case *ast.CallExpr:
				checkUnstampedSend(pass, info, n, stamped)
			}
		})
	}
}

// checkBatchLiteral flags transport.Batch{...} literals missing Epoch.
func checkBatchLiteral(pass *Pass, info *types.Info, lit *ast.CompositeLit, stamped map[types.Object]bool, scope funcScope) {
	tv, ok := info.Types[lit]
	if !ok || !namedIn(tv.Type, "transport", "Batch") {
		return
	}
	if len(lit.Elts) > 0 {
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
			return // positional literal sets every field, Epoch included
		}
	}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Epoch" {
				return
			}
		}
	}
	// A literal assigned to a variable that is later stamped is fine.
	if parents := parentMap(scope.body); true {
		for p := parents[lit]; p != nil; p = parents[p] {
			if as, ok := p.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := objOfIdent(info, id); obj != nil && stamped[obj] {
							return
						}
					}
				}
			}
		}
	}
	pass.Reportf(lit.Pos(),
		"transport.Batch constructed without Epoch: receivers cannot drop this batch after a rollback; stamp the recovery epoch at enqueue time")
}

// checkUnstampedSend flags Send(batchVar) where batchVar came from
// transport.GetBatch() in this scope, was built up (From/To assigned) but
// never Epoch-stamped.
func checkUnstampedSend(pass *Pass, info *types.Info, call *ast.CallExpr, stamped map[types.Object]bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Send" || len(call.Args) != 1 {
		return
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := objOfIdent(info, arg)
	if obj == nil || stamped[obj] {
		return
	}
	if !namedIn(obj.Type(), "transport", "Batch") {
		return
	}
	// Only batches assembled locally are checked; a batch received as a
	// parameter or from a queue was stamped by its producer.
	if !assembledFromGetBatch(pass, info, obj) {
		return
	}
	pass.Reportf(call.Pos(),
		"batch %s is sent without a recovery-epoch stamp; assign Epoch before Send or route through the stamping enqueue path", arg.Name)
}

// assembledFromGetBatch reports whether obj is initialized from
// transport.GetBatch() somewhere in the package (local construction rather
// than pass-through).
func assembledFromGetBatch(pass *Pass, info *types.Info, obj types.Object) bool {
	found := false
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || found {
				return !found
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || objOfIdent(info, id) != obj || i >= len(as.Rhs) {
					continue
				}
				if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
					if isPkgFunc(calleeFunc(info, call), "transport", "GetBatch") {
						found = true
					}
				}
			}
			return true
		})
	}
	return found
}
