package analysis

import (
	"go/ast"
	"strings"
)

// NonDeterminism bans wall-clock and PRNG calls from superstep compute
// paths. Recovery replays supersteps from a checkpoint; a vertex program
// that consults time.Now or math/rand computes different messages on replay
// than it did originally, so the replayed execution diverges from the one
// the checkpoint fenced — the corruption is silent and only surfaces as
// "results differ under faults". Two scopes are compute paths:
//
//   - everything in a package whose import path ends in /algorithms (the
//     vertex program library), and
//   - any method named Compute, ComputePartition, or Combine in any package
//     (the VertexProgram, PartitionProgram, and Combiner contracts —
//     combiners run on the send path of compute and replay with it).
//
// A function that needs randomness deterministically (seeded per vertex and
// superstep) or timing for non-semantic telemetry can opt out with
// //pregelvet:allow nondeterminism <reason> in its doc comment, or per line
// with //pregelvet:ignore nondeterminism.
var NonDeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "no time.Now/math/rand in superstep compute paths (replay determinism)",
	Run:  runNonDeterminism,
}

func runNonDeterminism(pass *Pass) {
	for _, fd := range computePathFuncs(pass) {
		{
			if hasAllow(fd.Doc, "nondeterminism") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				pkgPath := fn.Pkg().Path()
				switch {
				case pkgPath == "time" && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"):
				case pkgPath == "math/rand" || pkgPath == "math/rand/v2" ||
					strings.HasSuffix(pkgPath, "/math/rand"):
				default:
					return true
				}
				pass.Reportf(call.Pos(),
					"%s.%s in a superstep compute path: replayed supersteps diverge after recovery; derive values from (superstep, vertex) state or annotate //pregelvet:allow nondeterminism",
					pkgPath, fn.Name())
				return true
			})
		}
	}
}
