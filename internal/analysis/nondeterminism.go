package analysis

import (
	"go/ast"
	"strings"
)

// NonDeterminism bans wall-clock and PRNG calls from superstep compute
// paths. Recovery replays supersteps from a checkpoint; a vertex program
// that consults time.Now or math/rand computes different messages on replay
// than it did originally, so the replayed execution diverges from the one
// the checkpoint fenced — the corruption is silent and only surfaces as
// "results differ under faults". Two scopes are compute paths:
//
//   - everything in a package whose import path ends in /algorithms (the
//     vertex program library), and
//   - any method named Compute or ComputePartition in any package (the
//     VertexProgram and PartitionProgram contracts).
//
// A function that needs randomness deterministically (seeded per vertex and
// superstep) or timing for non-semantic telemetry can opt out with
// //pregelvet:allow nondeterminism in its doc comment, or per line with
// //pregelvet:ignore nondeterminism.
var NonDeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "no time.Now/math/rand in superstep compute paths (replay determinism)",
	Run:  runNonDeterminism,
}

const allowDirective = "pregelvet:allow nondeterminism"

func runNonDeterminism(pass *Pass) {
	wholePkg := pkgHasSuffix(pass.Pkg, "algorithms")
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !wholePkg && (fd.Recv == nil ||
				(fd.Name.Name != "Compute" && fd.Name.Name != "ComputePartition")) {
				continue
			}
			if hasDirective(fd.Doc, allowDirective) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				pkgPath := fn.Pkg().Path()
				switch {
				case pkgPath == "time" && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"):
				case pkgPath == "math/rand" || pkgPath == "math/rand/v2" ||
					strings.HasSuffix(pkgPath, "/math/rand"):
				default:
					return true
				}
				pass.Reportf(call.Pos(),
					"%s.%s in a superstep compute path: replayed supersteps diverge after recovery; derive values from (superstep, vertex) state or annotate //pregelvet:allow nondeterminism",
					pkgPath, fn.Name())
				return true
			})
		}
	}
}
