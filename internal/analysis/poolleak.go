package analysis

import (
	"go/ast"
	"go/types"
)

// PoolLeak enforces the transport pool's ownership contract: every buffer or
// batch acquired from the pool (transport.GetPayload, transport.GetBatch,
// and batch-producing reads like Endpoint.Recv) must, in the acquiring
// function, either be released (PutPayload/PutBatch) or ownership-
// transferred — passed to another function, sent on a channel, stored into a
// longer-lived structure, or returned. It also flags the two easy ways to
// get the contract wrong:
//
//   - a return statement reachable while an acquired value is still owned
//     and unreleased (the classic missed-Put on an early exit), and
//   - touching a value after handing it back to the pool (retained-after-put
//     aliasing), detected over straight-line statement sequences.
//
// The check is interprocedural through the facts layer (facts.go): a call
// argument is an ownership transfer only when the callee's summary says it
// consumes the value (or when no summary exists — function values, external
// code — which is trusted as before). Passing a pooled value to a helper
// that merely reads it leaves ownership with the caller, so the missing Put
// after the call is flagged; passing it to a helper that releases on some
// paths but drops it on others is flagged at the call site (the caller can
// neither Put nor skip the Put safely). Helpers that return pool-acquired
// memory (GetPayload/GetBatch wrappers, by fact ReturnsPooled) count as
// acquisitions in their callers. Branch-sensitivity remains "different arms
// of the same select/switch/if cannot both have executed". Suppress a
// deliberate violation with //pregelvet:ignore poolleak.
var PoolLeak = &Analyzer{
	Name: "poolleak",
	Doc:  "transport pool buffers must be released or ownership-transferred on every path",
	Run:  runPoolLeak,
}

// isPoolAcquire reports whether call yields pooled transport memory: the
// pool getters themselves, or any transport-package call whose first result
// is a *Batch (framing reads, Endpoint.Recv) — those hand the receiver a
// pooled batch it must consume.
func isPoolAcquire(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if isPkgFunc(fn, "transport", "GetPayload") || isPkgFunc(fn, "transport", "GetBatch") {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return pkgHasSuffix(fn.Pkg(), "transport") && namedIn(sig.Results().At(0).Type(), "transport", "Batch")
}

// isPoolRelease reports whether fn is one of the pool's release entry
// points.
func isPoolRelease(fn *types.Func) bool {
	return isPkgFunc(fn, "transport", "PutPayload") || isPkgFunc(fn, "transport", "PutBatch")
}

// acquisition is one tracked pool acquisition within a function scope.
type acquisition struct {
	call *ast.CallExpr
	obj  types.Object // the local variable holding the pooled value
	err  types.Object // the error twin from `b, err := ...`, or nil
}

func runPoolLeak(pass *Pass) {
	for _, scope := range funcScopes(pass.Files) {
		runPoolLeakScope(pass, scope)
		runRetainedAfterPut(pass, scope)
	}
}

func runPoolLeakScope(pass *Pass, scope funcScope) {
	info := pass.TypesInfo
	facts := setSource{pass.Facts}
	var acqs []acquisition
	inspectSkipFuncLit(scope.body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		if !isPoolAcquire(info, call) {
			// Module-local GetPayload/GetBatch wrappers, known by fact.
			f := facts.factFor(calleeFunc(info, call))
			if f == nil || !f.ReturnsPooled {
				return
			}
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := objOfIdent(info, id)
		if obj == nil {
			return
		}
		a := acquisition{call: call, obj: obj}
		if len(as.Lhs) == 2 { // b, err := ...
			if errID, ok := as.Lhs[1].(*ast.Ident); ok {
				a.err = objOfIdent(info, errID)
			}
		}
		acqs = append(acqs, a)
	})
	if len(acqs) == 0 {
		return
	}

	parents := parentMap(scope.body)
	var returns []*ast.ReturnStmt
	ast.Inspect(scope.body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r)
		}
		return true
	})

	for _, a := range acqs {
		var transfers []*ast.Ident
		for _, use := range usesOf(scope.body, info, a.obj) {
			if use.Pos() <= a.call.End() && use.Pos() >= a.call.Pos() {
				continue
			}
			kind, callee, dropPos := classifyPooledUse(info, use, parents, facts)
			switch kind {
			case useRelease, useTransfer:
				transfers = append(transfers, use)
			case useDropCall:
				// The callee releases the value on some paths but abandons it
				// on others — the cross-function leak an intraprocedural scan
				// cannot see. Count it as a transfer afterwards so the
				// early-exit check does not cascade a second report.
				pass.Reportf(use.Pos(),
					"%s (pooled) is passed to %s, which releases it on some paths but drops it at %s; the caller can neither release nor retain it safely",
					a.obj.Name(), callee.Name(), dropPos)
				transfers = append(transfers, use)
			}
		}
		if len(transfers) == 0 {
			pass.Reportf(a.call.Pos(),
				"%s acquired from the transport pool is never released (PutPayload/PutBatch) or transferred; pooled memory leaks",
				a.obj.Name())
			continue
		}
		// Early-exit check: every return after the acquisition needs a
		// transfer that already happened on its path.
		for _, r := range returns {
			if r.Pos() <= a.call.End() {
				continue
			}
			if returnExempt(r, a, parents, info) {
				continue
			}
			dominated := false
			for _, u := range transfers {
				if u.Pos() < r.Pos() && !branchDiverged(u, r, parents) {
					dominated = true
					break
				}
			}
			if !dominated {
				pass.Reportf(r.Pos(),
					"return while %s (acquired from the transport pool at line %d) is unreleased on this path",
					a.obj.Name(), pass.Fset.Position(a.call.Pos()).Line)
			}
		}
	}
}

// returnExempt reports whether a return statement is excused from the
// early-exit check: it returns the value itself, or it sits in the standard
// `v, err := acquire(); if err != nil { return ... }` guard where the
// convention is that v is nil/empty on error.
func returnExempt(r *ast.ReturnStmt, a acquisition, parents map[ast.Node]ast.Node, info *types.Info) bool {
	returnsValue := false
	ast.Inspect(r, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOfIdent(info, id) == a.obj {
			returnsValue = true
		}
		return true
	})
	if returnsValue {
		return true
	}
	if a.err == nil {
		return false
	}
	for p := parents[r]; p != nil; p = parents[p] {
		if ifStmt, ok := p.(*ast.IfStmt); ok {
			usesErr := false
			ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && objOfIdent(info, id) == a.err {
					usesErr = true
				}
				return true
			})
			if usesErr {
				return true
			}
		}
	}
	return false
}

// containsNode reports whether target is within root.
func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// putKey identifies what a Put call released: a plain variable, or one
// field of a variable (b.Payload).
type putKey struct {
	obj   types.Object
	field string // empty for the whole variable
}

// runRetainedAfterPut scans straight-line statement sequences for uses of a
// value after the statement that returned it to the pool.
func runRetainedAfterPut(pass *Pass, scope funcScope) {
	info := pass.TypesInfo
	stmtLists(scope.body, func(list []ast.Stmt) {
		for i, stmt := range list {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || !isPoolRelease(calleeFunc(info, call)) || len(call.Args) != 1 {
				continue
			}
			key, ok := putKeyOf(info, call.Args[0])
			if !ok {
				continue
			}
			scanAfterPut(pass, info, call, key, list[i+1:])
		}
	})
}

func putKeyOf(info *types.Info, arg ast.Expr) (putKey, bool) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		if obj := objOfIdent(info, e); obj != nil {
			return putKey{obj: obj}, true
		}
	case *ast.SelectorExpr:
		if base, ok := e.X.(*ast.Ident); ok {
			if obj := objOfIdent(info, base); obj != nil {
				return putKey{obj: obj, field: e.Sel.Name}, true
			}
		}
	}
	return putKey{}, false
}

func scanAfterPut(pass *Pass, info *types.Info, put *ast.CallExpr, key putKey, rest []ast.Stmt) {
	fnName := "PutPayload"
	if fn := calleeFunc(info, put); fn != nil {
		fnName = fn.Name()
	}
	for _, stmt := range rest {
		// A reassignment of exactly the released variable/field re-arms it.
		if as, ok := stmt.(*ast.AssignStmt); ok {
			rearmed := false
			for _, lhs := range as.Lhs {
				if k, ok := putKeyOf(info, lhs); ok && k.obj == key.obj &&
					(k.field == key.field || k.field == "") {
					rearmed = true
				}
			}
			if rearmed {
				return
			}
		}
		var bad ast.Node
		ast.Inspect(stmt, func(n ast.Node) bool {
			if bad != nil {
				return false
			}
			if key.field == "" {
				if id, ok := n.(*ast.Ident); ok && objOfIdent(info, id) == key.obj {
					bad = id
				}
				return true
			}
			if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == key.field {
				if base, ok := sel.X.(*ast.Ident); ok && objOfIdent(info, base) == key.obj {
					bad = sel
				}
			}
			return true
		})
		if bad != nil {
			what := key.obj.Name()
			if key.field != "" {
				what += "." + key.field
			}
			pass.Reportf(bad.Pos(),
				"%s is used after %s returned it to the pool (use-after-free once another goroutine reuses the buffer)",
				what, fnName)
			return // one report per put site keeps the signal clean
		}
	}
}
