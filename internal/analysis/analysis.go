// Package analysis implements pregelvet, a suite of static analyzers that
// mechanically enforce this codebase's cross-cutting invariants: the
// transport pool's GetPayload/PutPayload ownership contract, recovery-epoch
// stamping at enqueue time, ErrTransient classification on retry paths, the
// nil-safe observability facade, consistent mutex acquisition order, and
// determinism of replayed superstep compute.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, analysistest-style fixtures) but is built
// entirely on the standard library's go/ast and go/types, with package
// loading driven by `go list -deps -json` and from-source typechecking —
// the build environment pins its dependency set, so the suite must be
// self-contained.
//
// Suppression: a diagnostic is suppressed by a directive comment on the
// flagged line or the line directly above it:
//
//	//pregelvet:ignore <name>[,<name>...] [reason]
//	//pregelvet:ignore all [reason]
//	//lint:ignore pregelvet-<name> [reason]   (staticcheck-style alias)
//
// Individual analyzers document additional, more precise directives
// (//pregelvet:terminal, //pregelvet:retrypath, //pregelvet:allow).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects a Pass (one
// package) and reports diagnostics through it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass)
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass presents one typechecked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts holds the per-function summaries of this package and everything
	// it imports (see facts.go), letting analyzers see through helper calls.
	Facts *FactSet

	diags   *[]Diagnostic
	ignores map[int][]string // file-base-offset line -> suppressed analyzer names
}

// Reportf records a diagnostic at pos unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, name := range p.ignores[lineKey(position.Filename, line)] {
			if name == "all" || name == p.Analyzer.Name {
				return
			}
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// CommentDirectives returns every directive comment (//pregelvet:... or
// //lint:ignore ...) in the pass's files keyed by position, for analyzers
// that define their own directives.
func (p *Pass) CommentDirectives() map[token.Position]string {
	out := make(map[token.Position]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if strings.HasPrefix(text, "pregelvet:") || strings.HasPrefix(text, "lint:ignore") {
					out[p.Fset.Position(c.Pos())] = text
				}
			}
		}
	}
	return out
}

// lineKey folds filename+line into a map key without allocating a struct
// per lookup in the common same-file case.
func lineKey(filename string, line int) int {
	h := 0
	for i := 0; i < len(filename); i++ {
		h = h*131 + int(filename[i])
	}
	return h*1_000_003 + line
}

// collectIgnores scans a file's comments for suppression directives.
func collectIgnores(fset *token.FileSet, f *ast.File, into map[int][]string) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			var names string
			switch {
			case strings.HasPrefix(text, "pregelvet:ignore"):
				names = strings.TrimSpace(strings.TrimPrefix(text, "pregelvet:ignore"))
			case strings.HasPrefix(text, "lint:ignore pregelvet-"):
				names = strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore pregelvet-"))
			default:
				continue
			}
			if i := strings.IndexAny(names, " \t"); i >= 0 {
				names = names[:i] // rest of the line is the human reason
			}
			if names == "" {
				continue
			}
			pos := fset.Position(c.Pos())
			key := lineKey(pos.Filename, pos.Line)
			into[key] = append(into[key], strings.Split(names, ",")...)
		}
	}
}

// checkAllowDirectives reports //pregelvet:allow directives that name one of
// the analyzers being run but carry no reason string. An allow is a standing
// exemption from an engine invariant; the reason is the review trail that
// keeps exemptions honest (and greppable) as the code around them changes.
func checkAllowDirectives(u *Unit, names map[string]bool, diags *[]Diagnostic) {
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "pregelvet:allow") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "pregelvet:allow"))
				name, reason := rest, ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name, reason = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				// An embedded // starts trailing commentary (fixture want
				// annotations), not a reason.
				if i := strings.Index(reason, "//"); i >= 0 {
					reason = strings.TrimSpace(reason[:i])
				}
				if !names[name] || reason != "" {
					continue
				}
				*diags = append(*diags, Diagnostic{
					Pos:      u.Fset.Position(c.Pos()),
					Analyzer: name,
					Message: fmt.Sprintf("bare //pregelvet:allow %s: a reason string is required"+
						" (say what makes this use safe)", name),
				})
			}
		}
	}
}

// hasAllow reports whether a doc comment carries //pregelvet:allow <name>
// (with or without a trailing reason; bare allows are separately flagged by
// checkAllowDirectives).
func hasAllow(doc *ast.CommentGroup, name string) bool {
	return hasDirective(doc, "pregelvet:allow "+name)
}

// All is the full pregelvet suite, in reporting order.
var All = []*Analyzer{
	PoolLeak,
	MsgLog,
	EpochStamp,
	TransientErr,
	TraceNil,
	LockOrder,
	NonDeterminism,
	CtxEscape,
	MapIter,
	BlockingCompute,
	GoroLeak,
}

// ByName returns the analyzers with the given comma-separated names.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
next:
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		for _, a := range All {
			if a.Name == name {
				out = append(out, a)
				continue next
			}
		}
		return nil, fmt.Errorf("unknown analyzer %q", name)
	}
	return out, nil
}

// RunAnalyzers applies each analyzer to each unit and returns all
// diagnostics sorted by file position. facts carries the per-function
// summaries for the units and their dependencies (Loader.Facts for loader
// runs, the merged .vetx sets in vet-tool mode); nil computes facts from the
// units alone, which is correct only when they close over their module-local
// call graph in dependency order.
func RunAnalyzers(units []*Unit, analyzers []*Analyzer, facts *FactSet) []Diagnostic {
	if facts == nil {
		facts = NewFactSet()
		for _, u := range units {
			facts.AddUnit(u)
		}
	}
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	var diags []Diagnostic
	for _, u := range units {
		ignores := make(map[int][]string)
		for _, f := range u.Files {
			collectIgnores(u.Fset, f, ignores)
		}
		checkAllowDirectives(u, names, &diags)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.Info,
				Facts:     facts,
				diags:     &diags,
				ignores:   ignores,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
