package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoIsClean runs the full pregelvet suite over this repository and
// requires zero diagnostics. This is the enforcement hook: the invariants
// the analyzers encode are part of tier-1, and a regression anywhere in the
// module fails `go test ./...` with the exact file:line finding.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	l := fixtureLoader(t)
	units, err := l.Load("./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	// The analyzers key on package-path suffixes, so keep fixtures and their
	// stubs out of the sweep (go list skips testdata, but stay explicit).
	var own []*Unit
	for _, u := range units {
		if filepath.Base(u.Dir) == "testdata" {
			continue
		}
		own = append(own, u)
	}
	if len(own) == 0 {
		t.Fatal("module load returned no packages")
	}
	diags := RunAnalyzers(own, All, l.Facts)
	for _, d := range diags {
		rel := d.Pos.Filename
		if wd, err := os.Getwd(); err == nil {
			if r, err := filepath.Rel(wd, rel); err == nil {
				rel = r
			}
		}
		t.Errorf("%s:%d:%d: %s: %s", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}
