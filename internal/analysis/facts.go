package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Facts layer. PR 4's analyzers were intraprocedural: any helper call was a
// trust boundary (poolleak treated every call argument as an ownership
// transfer; transienterr required a directive on every frame). This file
// adds go/analysis-style exported facts: a per-function summary computed
// once per package, in dependency order, and consulted at call sites by the
// analyzers. In-process runs (the self-test, cmd/pregelvet standalone, the
// fixture harness) accumulate facts in the Loader as packages typecheck; the
// `go vet -vettool` protocol serializes them as JSON into the .vetx facts
// file cmd/go stores alongside export data, so cross-package facts survive
// the one-process-per-package unit-checking model.
//
// Three families of facts are computed:
//
//   - pooled-parameter ownership: for each parameter that could hold pooled
//     transport memory ([]byte payloads, *transport.Batch), whether the
//     function reads it (ownership stays with the caller), consumes it
//     (releases or transfers it on every path), or drops it (releases on
//     some paths only — the caller can neither Put nor not-Put safely);
//   - pooled returns: whether the function's first result is pool-acquired
//     memory the caller now owns (a GetPayload/GetBatch wrapper); and
//   - error minting: whether any return path produces a fresh unwrapped
//     error (errors.New, fmt.Errorf without %w, or transitively a call to a
//     minting function), which transienterr flags on retry paths.

// Pooled-parameter ownership classifications. The zero value (ParamUnknown)
// means "no fact": the parameter is not a poolable type, or the function
// body was not available.
const (
	ParamUnknown  = ""         // no fact computed
	ParamReads    = "reads"    // pure view: never released, stored, or passed on
	ParamConsumes = "consumes" // released or ownership-transferred on every path
	ParamDrops    = "drops"    // released/transferred on some paths, dropped on others
)

// FuncFact is the exported summary of one function or method.
type FuncFact struct {
	// Params classifies each parameter's treatment of pooled memory
	// (ParamReads/ParamConsumes/ParamDrops, "" for non-poolable types).
	// Variadic and multi-name fields expand positionally.
	Params []string `json:"params,omitempty"`
	// DropPos is parallel to Params: for a ParamDrops entry, the position
	// ("file:line") of the exit that abandons the value.
	DropPos []string `json:"drop_pos,omitempty"`
	// ReturnsPooled marks functions whose first result is pool-acquired
	// memory: callers own it and must release or transfer it.
	ReturnsPooled bool `json:"returns_pooled,omitempty"`
	// MintsError marks functions with an error result minted fresh and
	// unwrapped on some return path (no %w, no //pregelvet:terminal).
	MintsError bool `json:"mints_error,omitempty"`
	// MintPos is the position of the first minting return, for diagnostics.
	MintPos string `json:"mint_pos,omitempty"`
}

func (f *FuncFact) paramFact(i int) string {
	if f == nil || i < 0 || i >= len(f.Params) {
		return ParamUnknown
	}
	return f.Params[i]
}

func (f *FuncFact) dropPos(i int) string {
	if f == nil || i < 0 || i >= len(f.DropPos) {
		return ""
	}
	return f.DropPos[i]
}

// A FactSet holds per-function facts keyed by types.Func full name
// (pkgpath.Func or (pkgpath.Recv).Method), the one spelling that is stable
// between from-source loads and export-data loads.
type FactSet struct {
	funcs map[string]*FuncFact

	// inProgress guards mutually recursive fact computation within a
	// package: a cycle falls back to "no fact" (trust the call).
	inProgress map[string]bool
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{
		funcs:      make(map[string]*FuncFact),
		inProgress: make(map[string]bool),
	}
}

// Of returns the fact for fn, or nil when none was computed (external
// function, interface method, or cycle).
func (s *FactSet) Of(fn *types.Func) *FuncFact {
	if s == nil || fn == nil {
		return nil
	}
	return s.funcs[fn.FullName()]
}

// Len reports the number of functions with facts, for tests and telemetry.
func (s *FactSet) Len() int { return len(s.funcs) }

// Encode serializes the fact set as JSON (the .vetx payload).
func (s *FactSet) Encode() ([]byte, error) {
	return json.Marshal(s.funcs)
}

// Merge decodes a serialized fact set (a dependency's .vetx file) into s.
// Empty input — including the zero-length files pre-facts pregelvet wrote —
// merges as nothing.
func (s *FactSet) Merge(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	m := make(map[string]*FuncFact)
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	for k, v := range m {
		s.funcs[k] = v
	}
	return nil
}

// AddUnit computes facts for every function declared in the unit. Units must
// be added in dependency order (the order Loader.Load yields them) so callee
// facts are present when callers are summarized; within the unit, calls into
// not-yet-summarized siblings recurse on demand.
func (s *FactSet) AddUnit(u *Unit) {
	fc := &factComputer{unit: u, set: s, decls: make(map[*types.Func]*ast.FuncDecl)}
	for _, f := range u.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
				fc.decls[fn] = fd
			}
		}
	}
	for fn := range fc.decls {
		fc.factFor(fn)
	}
}

// factComputer summarizes one unit's functions into a FactSet.
type factComputer struct {
	unit  *Unit
	set   *FactSet
	decls map[*types.Func]*ast.FuncDecl
}

// factFor returns fn's fact, computing it on demand when fn is declared in
// this unit. Recursion cycles yield nil (no fact).
func (fc *factComputer) factFor(fn *types.Func) *FuncFact {
	if fn == nil {
		return nil
	}
	key := fn.FullName()
	if f, ok := fc.set.funcs[key]; ok {
		return f
	}
	fd, local := fc.decls[fn]
	if !local || fc.set.inProgress[key] {
		return fc.set.funcs[key]
	}
	fc.set.inProgress[key] = true
	fact := fc.compute(fn, fd)
	delete(fc.set.inProgress, key)
	fc.set.funcs[key] = fact
	return fact
}

func (fc *factComputer) compute(fn *types.Func, fd *ast.FuncDecl) *FuncFact {
	fact := &FuncFact{}
	info := fc.unit.Info
	sig, _ := fn.Type().(*types.Signature)

	// Pooled-parameter ownership.
	params := flattenParamsInfo(info, fd)
	var facts, drops []string
	any := false
	for _, p := range params {
		if p == nil || !isPoolableType(p.Type()) {
			facts = append(facts, ParamUnknown)
			drops = append(drops, "")
			continue
		}
		kind, pos := fc.classifyParam(fd, p)
		facts = append(facts, kind)
		drops = append(drops, pos)
		if kind != ParamUnknown {
			any = true
		}
	}
	if any {
		fact.Params = facts
		fact.DropPos = drops
	}

	// Pooled returns.
	if sig != nil && sig.Results().Len() > 0 && isPoolableType(sig.Results().At(0).Type()) {
		fact.ReturnsPooled = fc.returnsPooled(fd)
	}

	// Error minting.
	if sig != nil && sig.Results().Len() > 0 {
		last := sig.Results().At(sig.Results().Len() - 1)
		if types.Identical(last.Type(), types.Universe.Lookup("error").Type()) {
			fact.MintsError, fact.MintPos = fc.mintsError(fd, sig.Results().Len())
		}
	}
	return fact
}

// flattenParamsInfo expands a declaration's parameter fields positionally
// into their objects (nil for unnamed/underscore parameters), so fact
// indexes line up with call-argument positions.
func flattenParamsInfo(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			v, _ := info.Defs[name].(*types.Var)
			if name.Name == "_" {
				v = nil
			}
			out = append(out, v)
		}
	}
	return out
}

// isPoolableType reports whether t could hold pooled transport memory: a
// byte slice (payload) or a transport.Batch (by pointer or value).
func isPoolableType(t types.Type) bool {
	if namedIn(t, "transport", "Batch") {
		return true
	}
	if slice, ok := t.Underlying().(*types.Slice); ok {
		if basic, ok := slice.Elem().(*types.Basic); ok && basic.Kind() == types.Byte {
			return true
		}
	}
	return false
}

// classifyParam decides how fd treats parameter p were it pooled memory:
// reads (never moves it), consumes (releases or transfers on every path), or
// drops (some exit abandons it). The second result positions the dropping
// exit for diagnostics.
func (fc *factComputer) classifyParam(fd *ast.FuncDecl, p *types.Var) (string, string) {
	info := fc.unit.Info
	uses := usesOf(fd.Body, info, p)
	if len(uses) == 0 {
		return ParamReads, "" // untouched: ownership plainly stays with the caller
	}
	parents := parentMap(fd.Body)
	var moves []*ast.Ident // releases and transfers
	for _, use := range uses {
		kind, _, _ := classifyPooledUse(info, use, parents, fc)
		switch kind {
		case useRelease, useTransfer:
			moves = append(moves, use)
		case useDropCall:
			// Forwarding to a function that drops makes this one a dropper.
			return ParamDrops, fc.unit.Fset.Position(use.Pos()).String()
		}
	}
	if len(moves) == 0 {
		return ParamReads, ""
	}
	// Every exit (explicit returns plus falling off the end) must be
	// dominated by a move.
	var exits []ast.Node
	inspectSkipFuncLit(fd.Body, func(n ast.Node) {
		if r, ok := n.(*ast.ReturnStmt); ok {
			exits = append(exits, r)
		}
	})
	if fallsThrough(fd.Body) {
		exits = append(exits, fallThroughExit{fd.Body})
	}
	for _, exit := range exits {
		if dominatedByMove(exit, moves, parents) {
			continue
		}
		// A return that hands the value back to the caller moves ownership
		// there; classifyPooledUse already counted it as a transfer, and the
		// domination check above accepts it (same position). Anything else
		// is a drop.
		return ParamDrops, fc.unit.Fset.Position(exit.Pos()).String()
	}
	return ParamConsumes, ""
}

// fallThroughExit marks the implicit return at the end of a body whose last
// statement does not terminate.
type fallThroughExit struct{ body *ast.BlockStmt }

func (f fallThroughExit) Pos() token.Pos { return f.body.End() }
func (f fallThroughExit) End() token.Pos { return f.body.End() }

// fallsThrough reports whether control can reach the closing brace of body:
// the last statement is not a return or an obviously terminating statement.
func fallsThrough(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return true
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return false
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return false
			}
		}
	case *ast.ForStmt:
		if last.Cond == nil { // for {} without break analysis: assume no fallthrough
			return false
		}
	}
	return true
}

// dominatedByMove reports whether some move precedes exit without branch
// divergence. A move inside exit itself (return b) counts.
func dominatedByMove(exit ast.Node, moves []*ast.Ident, parents map[ast.Node]ast.Node) bool {
	for _, m := range moves {
		if _, implicit := exit.(fallThroughExit); implicit {
			// Falling off the end is dominated only by an unconditional move.
			if m.Pos() < exit.Pos() && unconditionalIn(m, parents) {
				return true
			}
			continue
		}
		if m.Pos() <= exit.End() && !branchDiverged(m, exit, parents) {
			return true
		}
	}
	return false
}

// unconditionalIn reports whether n executes on every pass through its
// function body: no branch, loop, or closure on its ancestor chain.
func unconditionalIn(n ast.Node, parents map[ast.Node]ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p.(type) {
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
			*ast.CaseClause, *ast.CommClause, *ast.ForStmt, *ast.RangeStmt,
			*ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		}
	}
	return true
}

// returnsPooled reports whether fd returns pool-acquired memory in result
// position 0 on every non-nil return path.
func (fc *factComputer) returnsPooled(fd *ast.FuncDecl) bool {
	info := fc.unit.Info
	// Locals that ever hold a pool acquisition.
	pooled := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) && len(as.Rhs) != 1 {
				continue
			}
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if fc.isAcquireCall(call) && i == 0 {
				if obj := objOfIdent(info, id); obj != nil {
					pooled[obj] = true
				}
			}
			// buf = append(buf, ...) keeps the pooled origin.
			if fn := calleeFunc(info, call); fn == nil {
				if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "append" && len(call.Args) > 0 {
					if src, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if srcObj := objOfIdent(info, src); srcObj != nil && pooled[srcObj] {
							if obj := objOfIdent(info, id); obj != nil {
								pooled[obj] = true
							}
						}
					}
				}
			}
		}
		return true
	})
	sawPooledReturn := false
	clean := true
	inspectSkipFuncLit(fd.Body, func(n ast.Node) {
		r, ok := n.(*ast.ReturnStmt)
		if !ok || len(r.Results) == 0 {
			return
		}
		res := ast.Unparen(r.Results[0])
		switch e := res.(type) {
		case *ast.Ident:
			if e.Name == "nil" {
				return
			}
			if obj := objOfIdent(info, e); obj != nil && pooled[obj] {
				sawPooledReturn = true
				return
			}
		case *ast.CallExpr:
			if fc.isAcquireCall(e) {
				sawPooledReturn = true
				return
			}
		}
		clean = false
	})
	return sawPooledReturn && clean
}

// isAcquireCall reports whether call yields pool-owned memory: the pool
// getters, transport batch reads, or a callee whose fact says ReturnsPooled.
func (fc *factComputer) isAcquireCall(call *ast.CallExpr) bool {
	if isPoolAcquire(fc.unit.Info, call) {
		return true
	}
	fn := calleeFunc(fc.unit.Info, call)
	f := fc.factFor(fn)
	return f != nil && f.ReturnsPooled
}

// mintsError reports whether some return path yields a fresh unwrapped error
// in the final result position, directly or through a call chain.
func (fc *factComputer) mintsError(fd *ast.FuncDecl, nResults int) (bool, string) {
	info := fc.unit.Info
	terminal := directiveLines(fc.unit, terminalDirective)
	minted := false
	var pos string
	inspectSkipFuncLit(fd.Body, func(n ast.Node) {
		if minted {
			return
		}
		r, ok := n.(*ast.ReturnStmt)
		if !ok || len(r.Results) != nResults {
			return
		}
		res := r.Results[nResults-1]
		call, ok := ast.Unparen(res).(*ast.CallExpr)
		if !ok {
			return
		}
		p := fc.unit.Fset.Position(r.Pos())
		if terminal[p.Filename] != nil && (terminal[p.Filename][p.Line] || terminal[p.Filename][p.Line-1]) {
			return
		}
		fn := calleeFunc(info, call)
		switch {
		case isPkgFunc(fn, "errors", "New"):
		case isPkgFunc(fn, "fmt", "Errorf") && !errorfWraps(info, call):
		default:
			if f := fc.factFor(fn); f != nil && f.MintsError {
				break
			}
			return
		}
		minted = true
		pos = fc.unit.Fset.Position(res.Pos()).String()
	})
	return minted, pos
}

// directiveLines maps file -> lines carrying the given directive prefix in
// the unit's files.
func directiveLines(u *Unit, directive string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), directive) {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]bool)
				}
				out[pos.Filename][pos.Line] = true
			}
		}
	}
	return out
}

// factSource is what classifyPooledUse needs to resolve callee facts: the
// in-unit computer during fact computation, or a plain lookup during
// analyzer runs.
type factSource interface {
	factFor(fn *types.Func) *FuncFact
}

// setSource adapts a FactSet (analyzer-run time) to factSource.
type setSource struct{ set *FactSet }

func (s setSource) factFor(fn *types.Func) *FuncFact { return s.set.Of(fn) }

// Use classifications for one identifier occurrence of a pooled value.
type useKind int

const (
	useRead     useKind = iota // value inspected; ownership unchanged
	useTransfer                // ownership moves: stored, sent, returned, or passed to a consumer
	useRelease                 // returned to the pool (PutPayload/PutBatch)
	useDropCall                // passed to a callee that releases on some paths only
)

// classifyPooledUse decides what one use of a pooled value does with its
// ownership, consulting callee facts at call sites. For useDropCall the
// *types.Func is the dropping callee and the string positions the exit in
// the callee that abandons the value.
func classifyPooledUse(info *types.Info, use *ast.Ident, parents map[ast.Node]ast.Node, facts factSource) (useKind, *types.Func, string) {
	child := ast.Node(use)
	for p := parents[use]; p != nil; p = parents[p] {
		switch pn := p.(type) {
		case *ast.CallExpr:
			if pn.Fun == child {
				return useRead, nil, "" // calling a method ON the value moves nothing
			}
			return classifyCallArg(info, pn, child, facts)
		case *ast.SendStmt:
			if pn.Value == child {
				return useTransfer, nil, ""
			}
			return useRead, nil, ""
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.FuncLit:
			return useTransfer, nil, ""
		case *ast.UnaryExpr:
			if pn.Op == token.AND {
				return useTransfer, nil, ""
			}
			return useRead, nil, ""
		case *ast.AssignStmt:
			for _, rhs := range pn.Rhs {
				if containsNode(rhs, child) {
					return useTransfer, nil, "" // aliased or stored; the new holder owns it
				}
			}
			return useRead, nil, ""
		case *ast.SelectorExpr:
			if pn.X == child {
				child = p
				continue // b.Payload passed along still moves b's memory
			}
			return useRead, nil, ""
		case *ast.IndexExpr:
			return useRead, nil, "" // element access inspects, never moves, the buffer
		case *ast.SliceExpr:
			if pn.X == child {
				child = p
				continue // a subslice aliases the same backing memory
			}
			return useRead, nil, ""
		case *ast.StarExpr, *ast.ParenExpr:
			child = p
			continue
		case *ast.BinaryExpr, *ast.RangeStmt, *ast.IfStmt, *ast.ForStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt:
			return useRead, nil, ""
		case ast.Stmt:
			return useRead, nil, ""
		}
		child = p
	}
	return useRead, nil, ""
}

// classifyCallArg classifies a pooled value appearing as a call argument:
// releases and fact-known callees are precise; unknown callees are trusted
// as documented owners (the PR 4 behavior); pure builtins only read.
func classifyCallArg(info *types.Info, call *ast.CallExpr, arg ast.Node, facts factSource) (useKind, *types.Func, string) {
	fn := calleeFunc(info, call)
	if isPoolRelease(fn) {
		return useRelease, fn, ""
	}
	if fn == nil {
		// Builtins read; append aliases its destination; calls through
		// function values are trusted transfers.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "len", "cap", "copy", "clear", "print", "println", "min", "max":
					return useRead, nil, ""
				case "append":
					if len(call.Args) > 0 && containsNode(call.Args[0], arg) {
						return useTransfer, nil, "" // result aliases the destination
					}
					return useRead, nil, "" // appended-from source is copied out
				}
			}
		}
		return useTransfer, nil, ""
	}
	fact := facts.factFor(fn)
	if fact == nil || len(fact.Params) == 0 {
		return useTransfer, fn, "" // no fact: trust, as before
	}
	// Arguments index straight into Params: facts are computed over declared
	// parameters, and method receivers are not call arguments.
	idx := callArgIndex(call, arg)
	if idx < 0 {
		return useTransfer, fn, ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Variadic() && idx >= sig.Params().Len()-1 {
		idx = sig.Params().Len() - 1
	}
	switch fact.paramFact(idx) {
	case ParamReads:
		return useRead, fn, ""
	case ParamConsumes:
		return useTransfer, fn, ""
	case ParamDrops:
		return useDropCall, fn, fact.dropPos(idx)
	}
	return useTransfer, fn, ""
}

// callArgIndex returns which argument position contains arg, or -1.
func callArgIndex(call *ast.CallExpr, arg ast.Node) int {
	for i, a := range call.Args {
		if a == arg || containsNode(a, arg) {
			return i
		}
	}
	return -1
}
