package analysis

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// sharedLoader typechecks the standard library once per test binary; fixture
// and stub packages are registered into the same loader under distinct
// import paths, so the tests stay fast and independent.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			loaderErr = err
			return
		}
		loader = NewLoader(filepath.Join(wd, "..", ".."))
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

func runFixtureTest(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	res, err := RunFixture(fixtureLoader(t), a, filepath.Join("testdata", fixture))
	if err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}
	for _, d := range res.Unexpected {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, m := range res.Missing {
		t.Errorf("missing diagnostic: %s", m)
	}
}

func TestPoolLeak(t *testing.T)     { runFixtureTest(t, PoolLeak, "poolleak") }
func TestMsgLog(t *testing.T)       { runFixtureTest(t, MsgLog, "msglog") }
func TestEpochStamp(t *testing.T)   { runFixtureTest(t, EpochStamp, "epochstamp") }
func TestTransientErr(t *testing.T) { runFixtureTest(t, TransientErr, "transienterr") }
func TestTraceNil(t *testing.T)     { runFixtureTest(t, TraceNil, "tracenil") }

func TestLockOrder(t *testing.T) { runFixtureTest(t, LockOrder, "lockorder") }

func TestCtxEscape(t *testing.T)       { runFixtureTest(t, CtxEscape, "ctxescape") }
func TestMapIter(t *testing.T)         { runFixtureTest(t, MapIter, "mapiter") }
func TestBlockingCompute(t *testing.T) { runFixtureTest(t, BlockingCompute, "blockingcompute") }
func TestGoroLeak(t *testing.T)        { runFixtureTest(t, GoroLeak, "goroleak") }

func TestNonDeterminism(t *testing.T) {
	runFixtureTest(t, NonDeterminism, "nondeterminism")
}

// TestNonDeterminismAlgorithmsPackage exercises the package-suffix rule: the
// fixture loads as "fixture/algorithms", so free functions are fenced too.
func TestNonDeterminismAlgorithmsPackage(t *testing.T) {
	runFixtureTest(t, NonDeterminism, "algorithms")
}

func TestByName(t *testing.T) {
	as, err := ByName("poolleak,lockorder")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0] != PoolLeak || as[1] != LockOrder {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}
