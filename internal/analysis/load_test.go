package analysis

import (
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under a temp dir and returns its
// root, so loader error paths can be exercised against real `go list` runs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadTinyModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.21\n",
		"a.go":   "package tmpmod\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	l := NewLoader(dir)
	units, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 || units[0].ImportPath != "tmpmod" {
		t.Fatalf("units = %v, want exactly tmpmod", units)
	}
	if l.Typed("tmpmod") == nil {
		t.Error("Typed(tmpmod) not cached after Load")
	}
	if l.Typed("no/such/path") != nil {
		t.Error("Typed returned a package for an unloaded path")
	}
	// Module-local packages feed the facts layer in dependency order.
	if l.Facts.Len() == 0 {
		t.Error("Load did not record any facts summaries for the module package")
	}
}

// TestLoadReportsListErrors: `go list -e` surfaces broken packages through
// the Error field rather than a nonzero exit; Load must turn that into an
// error instead of typechecking garbage.
func TestLoadReportsListErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.21\n",
		"a.go":   "package tmpmod\n\nfunc Broken( {\n", // parse error
	})
	if _, err := NewLoader(dir).Load("./..."); err == nil {
		t.Fatal("Load succeeded on a module with a parse-broken package")
	}
}

func TestLoadReportsUnknownPattern(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.21\n",
		"a.go":   "package tmpmod\n",
	})
	if _, err := NewLoader(dir).Load("./nosuchdir"); err == nil {
		t.Fatal("Load succeeded on a pattern matching nothing")
	}
}

// TestImporterFallbacks covers the three resolution paths: unsafe is
// special-cased, cached packages resolve directly, and standard-library
// imports of golang.org/x/... fall back to the vendored copy.
func TestImporterFallbacks(t *testing.T) {
	l := NewLoader(t.TempDir())
	imp := l.Importer()

	if p, err := imp.Import("unsafe"); err != nil || p != types.Unsafe {
		t.Errorf("Import(unsafe) = %v, %v; want types.Unsafe", p, err)
	}

	direct := types.NewPackage("tmp/direct", "direct")
	l.typed["tmp/direct"] = direct
	if p, err := imp.Import("tmp/direct"); err != nil || p != direct {
		t.Errorf("Import(tmp/direct) = %v, %v; want cached package", p, err)
	}

	vendored := types.NewPackage("vendor/golang.org/x/fake", "fake")
	l.typed["vendor/golang.org/x/fake"] = vendored
	if p, err := imp.Import("golang.org/x/fake"); err != nil || p != vendored {
		t.Errorf("Import(golang.org/x/fake) = %v, %v; want vendored fallback", p, err)
	}

	if _, err := imp.Import("never/loaded"); err == nil {
		t.Error("Import(never/loaded) succeeded; want not-loaded error")
	}
}

// TestTypecheckFilesReportsTypeErrors: the fixture harness path must fail
// loudly (with the type error text) rather than hand analyzers a half-typed
// unit.
func TestTypecheckFilesReportsTypeErrors(t *testing.T) {
	l := NewLoader(t.TempDir())
	f, err := parser.ParseFile(l.Fset, "bad/bad.go",
		"package bad\n\nvar x int = \"not an int\"\n",
		parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.TypecheckFiles("bad", []*ast.File{f}); err == nil ||
		!strings.Contains(err.Error(), "bad") {
		t.Fatalf("TypecheckFiles err = %v, want a typechecking error naming the package", err)
	}
}
