package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared AST/type utilities for the analyzers.

// pkgHasSuffix reports whether pkg's import path is exactly suffix or ends
// in "/"+suffix, so analyzers match both the real module packages
// (pregelnet/internal/transport) and test-fixture stubs (.../transport).
func pkgHasSuffix(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// calleeFunc resolves a call expression's static callee (package function or
// method), or nil for calls through function values, builtins, and
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named function/method in a package
// whose path matches pkgSuffix (see pkgHasSuffix).
func isPkgFunc(fn *types.Func, pkgSuffix, name string) bool {
	return fn != nil && fn.Name() == name && pkgHasSuffix(fn.Pkg(), pkgSuffix)
}

// recvNamed reports whether fn is a method whose receiver (after stripping
// pointers) is the named type name in a package matching pkgSuffix.
func recvNamed(fn *types.Func, pkgSuffix, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && namedIn(sig.Recv().Type(), pkgSuffix, name)
}

// namedIn reports whether t (after stripping pointers) is the named type
// name in a package matching pkgSuffix.
func namedIn(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && pkgHasSuffix(obj.Pkg(), pkgSuffix)
}

// funcScope is one function-shaped body: a declaration or a literal.
// Literals are separate scopes — analyses that track state linearly through
// a body (lock sets, pool ownership) must not leak it into closures that
// run at another time.
type funcScope struct {
	name string
	decl *ast.FuncDecl // nil for literals
	body *ast.BlockStmt
}

// funcScopes yields every function body in the files: declarations and all
// function literals, each as its own scope.
func funcScopes(files []*ast.File) []funcScope {
	var scopes []funcScope
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scopes = append(scopes, funcScope{name: fd.Name.Name, decl: fd, body: fd.Body})
			inspectSkipFuncLit(fd.Body, func(n ast.Node) {
				if lit, ok := n.(*ast.FuncLit); ok {
					scopes = append(scopes, funcScope{name: fd.Name.Name + ".func", body: lit.Body})
					collectNestedLits(lit.Body, fd.Name.Name, &scopes)
				}
			})
		}
	}
	return scopes
}

func collectNestedLits(body *ast.BlockStmt, base string, scopes *[]funcScope) {
	inspectSkipFuncLit(body, func(n ast.Node) {
		if lit, ok := n.(*ast.FuncLit); ok {
			*scopes = append(*scopes, funcScope{name: base + ".func", body: lit.Body})
			collectNestedLits(lit.Body, base, scopes)
		}
	})
}

// inspectSkipFuncLit walks body visiting every node except the interiors of
// nested function literals (the literal node itself is visited).
func inspectSkipFuncLit(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n != body {
			if _, ok := n.(*ast.FuncLit); ok {
				visit(n)
				return false
			}
		}
		visit(n)
		return true
	})
}

// parentMap maps each node in root to its parent, for ancestor walks.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// ancestorPath returns the chain of ancestors from n (exclusive) to the
// root, innermost first.
func ancestorPath(n ast.Node, parents map[ast.Node]ast.Node) []ast.Node {
	var path []ast.Node
	for p := parents[n]; p != nil; p = parents[p] {
		path = append(path, p)
	}
	return path
}

// branchDiverged reports whether a and b sit in different arms of the same
// branching statement (select/switch clauses, or the then/else halves of an
// if): execution of one implies the other did not run in that instance.
func branchDiverged(a, b ast.Node, parents map[ast.Node]ast.Node) bool {
	pathA := ancestorPath(a, parents)
	inA := make(map[ast.Node]ast.Node) // ancestor -> child of that ancestor on a's path
	child := a
	for _, anc := range pathA {
		inA[anc] = child
		child = anc
	}
	child = b
	for p := parents[b]; p != nil; p = parents[p] {
		if childA, shared := inA[p]; shared {
			// p is the lowest common ancestor; diverged if it branches and
			// the two paths enter through different children.
			if childA == child {
				return false
			}
			switch p.(type) {
			case *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.IfStmt:
				return true
			case *ast.BlockStmt:
				// Switch and select arms hang off the statement's body block:
				// the LCA of two different clauses is the block, not the
				// switch/select node itself.
				if isBranchClause(childA) && isBranchClause(child) {
					return true
				}
			}
			return false
		}
		child = p
	}
	return false
}

// isBranchClause reports whether n is one arm of a switch or select.
func isBranchClause(n ast.Node) bool {
	switch n.(type) {
	case *ast.CaseClause, *ast.CommClause:
		return true
	}
	return false
}

// stmtLists yields every statement list in body (blocks plus switch/select
// clause bodies) for straight-line sequential scans.
func stmtLists(body *ast.BlockStmt, visit func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			visit(n.List)
		case *ast.CaseClause:
			visit(n.Body)
		case *ast.CommClause:
			visit(n.Body)
		case *ast.FuncLit:
			return false // separate scope
		}
		return true
	})
}

// computePathFuncs yields the function declarations that execute inside a
// superstep, the scope shared by the determinism and barrier-liveness
// analyzers (nondeterminism, mapiter, blockingcompute, goroleak): every
// declaration in an algorithms-suffixed package (the algorithm library),
// plus methods named Compute, ComputePartition, or Combine in any package
// (the VertexProgram, PartitionProgram, and Combiner contracts).
func computePathFuncs(pass *Pass) []*ast.FuncDecl {
	wholePkg := pkgHasSuffix(pass.Pkg, "algorithms")
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if wholePkg {
				out = append(out, fd)
				continue
			}
			if fd.Recv == nil {
				continue
			}
			switch fd.Name.Name {
			case "Compute", "ComputePartition", "Combine":
				out = append(out, fd)
			}
		}
	}
	return out
}

// objOfIdent resolves the object an identifier defines or uses.
func objOfIdent(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// usesOf collects every identifier inside root (excluding nested function
// literals when skipLits) that refers to obj.
func usesOf(root ast.Node, info *types.Info, obj types.Object) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOfIdent(info, id) == obj {
			out = append(out, id)
		}
		return true
	})
	return out
}
