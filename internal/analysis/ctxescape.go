package analysis

import (
	"go/ast"
	"go/types"
)

// CtxEscape enforces the borrow discipline on engine-owned compute state.
// The engine hands vertex programs a core.Context (and partition programs a
// core.PartitionContext) that is valid only for the duration of the call:
// contexts are pooled per worker and re-armed for the next vertex, and the
// views they expose — Messages slices, Neighbors adjacency, Active lists,
// and the payload views MessageLog.Replay passes to its callback — alias
// engine buffers that are recycled as soon as the call returns. A program
// that stashes any of these sees them mutate under it (or corrupts the next
// vertex's state) one superstep later, a bug that only reproduces under
// specific scheduling. Flagged escapes:
//
//   - storing a context or view in a struct field or package-level variable
//     (including through index/composite-literal chains),
//   - sending one on a channel, and
//   - capturing one in a goroutine (go statement), directly or via closure.
//
// Passing a borrow down the call stack, returning it to the caller (whose
// own frame is equally checked), ranging over a view, and reading elements
// are all fine — the value never outlives the compute call. Deliberate
// retention (e.g. a test harness that owns the engine) is opted out with
// //pregelvet:allow ctxescape <reason> on the function, or per line with
// //pregelvet:ignore ctxescape.
var CtxEscape = &Analyzer{
	Name: "ctxescape",
	Doc:  "compute contexts and engine-owned views must not outlive the call that borrowed them",
	Run:  runCtxEscape,
}

// ctxRoot is one tracked borrowed value within a function.
type ctxRoot struct {
	obj  types.Object
	what string // human label for reports
}

func runCtxEscape(pass *Pass) {
	if pkgHasSuffix(pass.Pkg, "core") {
		return // the engine mints the contexts; it owns their lifetime
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasAllow(fd.Doc, "ctxescape") {
				continue
			}
			checkCtxEscape(pass, fd)
		}
	}
}

// isContextType reports whether t is (a pointer to) one of the engine's
// per-call compute contexts.
func isContextType(t types.Type) bool {
	return namedIn(t, "core", "Context") || namedIn(t, "core", "PartitionContext")
}

// isViewCall reports whether call returns an engine-owned view: Messages,
// Neighbors, or Active on a context receiver.
func isViewCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	switch fn.Name() {
	case "Messages", "Neighbors", "Active":
	default:
		return "", false
	}
	if !recvNamedContext(fn) {
		return "", false
	}
	return fn.Name(), true
}

func recvNamedContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && isContextType(sig.Recv().Type())
}

func checkCtxEscape(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var roots []ctxRoot
	seen := make(map[types.Object]bool)
	track := func(obj types.Object, what string) {
		if obj != nil && !seen[obj] {
			seen[obj] = true
			roots = append(roots, ctxRoot{obj: obj, what: what})
		}
	}
	// Contexts: every variable in the declaration (parameters, locals,
	// literal parameters) typed as a compute context.
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := objOfIdent(info, id)
		if v, ok := obj.(*types.Var); ok && isContextType(v.Type()) {
			track(obj, "a compute context")
		}
		return true
	})
	// Views: locals bound from Messages/Neighbors/Active, and the payload
	// parameters of MessageLog.Replay callbacks.
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := isViewCall(info, call)
			if !ok {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					track(objOfIdent(info, id), "a "+name+" view")
				}
			}
		case *ast.CallExpr:
			if !isReplayCall(info, n) {
				return true
			}
			for _, arg := range n.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					for _, p := range payloadParams(info, lit) {
						track(p, "a Replay payload view")
					}
				}
			}
		}
		return true
	})
	if len(roots) == 0 {
		return
	}
	parents := parentMap(fd)
	for _, root := range roots {
		for _, use := range usesOf(fd.Body, info, root.obj) {
			if info.Defs[use] != nil {
				continue // the defining occurrence, not a use
			}
			reportCtxEscape(pass, use, root, parents)
		}
	}
}

// reportCtxEscape walks outward from one use of a borrowed value and flags
// it if the enclosing construct lets the value outlive the compute call.
func reportCtxEscape(pass *Pass, use *ast.Ident, root ctxRoot, parents map[ast.Node]ast.Node) {
	info := pass.TypesInfo
	escape := func(how string) {
		pass.Reportf(use.Pos(),
			"%s (%s, engine-owned and valid only during this call) %s; the engine recycles it after the call, so copy the data instead",
			root.obj.Name(), root.what, how)
	}
	chain := ancestorPath(use, parents)
	child := ast.Node(use)
	inCall := false // the borrow was consumed as a call argument/receiver
	for i := 0; i < len(chain); i++ {
		p := chain[i]
		switch pn := p.(type) {
		case *ast.GoStmt:
			escape("is captured by a goroutine launched here")
			return
		case *ast.DeferStmt:
			return // deferred code runs before the frame returns
		case *ast.CallExpr:
			// append(dst, v...) carries the reference into dst; every other
			// call consumes the borrow (passing it down the stack is fine)
			// and yields an unrelated result.
			if id, ok := ast.Unparen(pn.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					break
				}
			}
			inCall = true
		case *ast.FuncLit:
			// A closure capturing the borrow escapes with it: keep walking to
			// see what happens to the closure.
			inCall = false
		case *ast.KeyValueExpr, *ast.CompositeLit, *ast.UnaryExpr,
			*ast.SliceExpr, *ast.StarExpr, *ast.ParenExpr, *ast.SelectorExpr:
			// Carriers: the enclosing value still references the borrow.
		case *ast.IndexExpr:
			return // element reads copy the element; views hold value types
		case *ast.BinaryExpr:
			return // comparisons/arithmetic yield fresh values
		case *ast.AssignStmt:
			if inCall {
				return // the assigned value is a call result, not the borrow
			}
			rhsIdx := -1
			for j, r := range pn.Rhs {
				if containsNode(r, child) {
					rhsIdx = j
				}
			}
			if rhsIdx < 0 {
				return // use sits on the left-hand side (e.g. reslicing a view)
			}
			targets := pn.Lhs
			if len(pn.Lhs) == len(pn.Rhs) {
				targets = pn.Lhs[rhsIdx : rhsIdx+1]
			}
			for _, lhs := range targets {
				if kind := storeTargetKind(info, lhs); kind != "" {
					escape("is stored in " + kind)
					return
				}
			}
			return
		case *ast.SendStmt:
			if !inCall && containsNode(pn.Value, child) {
				escape("is sent on a channel")
			}
			return
		case ast.Stmt:
			// Expression consumed in place (condition, range, return, ...) —
			// unless the statement sits inside a function literal, in which
			// case the interesting question is what happens to the closure.
			lit := -1
			for j := i + 1; j < len(chain); j++ {
				if _, ok := chain[j].(*ast.FuncLit); ok {
					lit = j
					break
				}
			}
			if lit < 0 {
				return
			}
			i = lit - 1 // loop increment lands on the FuncLit
			child = chain[lit]
			continue
		}
		child = p
	}
}

// storeTargetKind classifies an assignment target that extends lifetime
// beyond the current call: struct fields and package-level variables,
// including through index and dereference chains. Returns "" for locals.
func storeTargetKind(info *types.Info, lhs ast.Expr) string {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				return "a struct field"
			}
			if v, ok := objOfIdent(info, e.Sel).(*types.Var); ok &&
				v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return "a package-level variable"
			}
			return ""
		case *ast.Ident:
			if v, ok := objOfIdent(info, e).(*types.Var); ok &&
				v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return "a package-level variable"
			}
			return ""
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return ""
		}
	}
}
