package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak requires goroutines launched in superstep compute paths to be
// provably joined before the function returns. The barrier certifies that
// all of a superstep's work is done; a goroutine still running when Compute
// returns races the barrier — it can send into a flushed outbox, mutate
// vertex state the checkpointer is serializing, or touch a context the
// engine has re-armed for the next vertex. Accepted join evidence, matched
// by identity (variable, or receiver.field) and position:
//
//   - the goroutine calls Done on a sync.WaitGroup that some statement
//     after the go statement Waits on;
//   - the goroutine sends on (or closes) a channel that is received from
//     (<-ch or range ch) after the go statement;
//   - a non-literal target (go helper(wg) / go helper(ch)) passing a
//     WaitGroup or channel argument with a matching Wait/receive after the
//     go statement — the helper is trusted to Done/send.
//
// Everything else is flagged at the go statement. Fire-and-forget work that
// genuinely may outlive the superstep (it must not touch engine state) is
// opted out with //pregelvet:allow goroleak <reason> on the function, or
// per line with //pregelvet:ignore goroleak.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutines launched in compute paths must be joined before the superstep returns",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	info := pass.TypesInfo
	for _, fd := range computePathFuncs(pass) {
		if hasAllow(fd.Doc, "goroleak") {
			continue
		}
		var gos []*ast.GoStmt
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				gos = append(gos, g)
			}
			return true
		})
		if len(gos) == 0 {
			continue
		}
		joins := collectJoins(info, fd.Body)
		for _, g := range gos {
			if joinedGoroutine(info, g, joins) {
				continue
			}
			pass.Reportf(g.Pos(),
				"goroutine launched in a compute path has no visible join (WaitGroup Done/Wait pair or channel handshake) before return; it races the superstep barrier and the engine's recycled state")
		}
	}
}

// joinPoints records where a body waits: WaitGroup identities with Wait
// positions, and channel identities with receive/range/drain positions.
type joinPoints struct {
	waits map[string][]token.Pos
	recvs map[string][]token.Pos
}

func collectJoins(info *types.Info, body *ast.BlockStmt) joinPoints {
	joins := joinPoints{
		waits: make(map[string][]token.Pos),
		recvs: make(map[string][]token.Pos),
	}
	add := func(m map[string][]token.Pos, key string, pos token.Pos) {
		if key != "" {
			m[key] = append(m[key], pos)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn != nil && fn.Name() == "Wait" && recvNamed(fn, "sync", "WaitGroup") {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					add(joins.waits, exprKey(info, sel.X), n.Pos())
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				add(joins.recvs, exprKey(info, n.X), n.Pos())
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isCh := tv.Type.Underlying().(*types.Chan); isCh {
					add(joins.recvs, exprKey(info, n.X), n.Pos())
				}
			}
		}
		return true
	})
	return joins
}

// joinedGoroutine reports whether g has join evidence: a Done/send/close
// inside the launched call matching a Wait/receive after it, or (for
// non-literal targets) a WaitGroup/channel argument matching one.
func joinedGoroutine(info *types.Info, g *ast.GoStmt, joins joinPoints) bool {
	end := g.End()
	after := func(m map[string][]token.Pos, key string) bool {
		if key == "" {
			return false
		}
		for _, p := range m[key] {
			if p > end {
				return true
			}
		}
		return false
	}
	joined := false
	ast.Inspect(g.Call, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn != nil && fn.Name() == "Done" && recvNamed(fn, "sync", "WaitGroup") {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
					after(joins.waits, exprKey(info, sel.X)) {
					joined = true
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin &&
					after(joins.recvs, exprKey(info, n.Args[0])) {
					joined = true
				}
			}
		case *ast.SendStmt:
			if after(joins.recvs, exprKey(info, n.Chan)) {
				joined = true
			}
		}
		return true
	})
	if joined {
		return true
	}
	if _, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit); isLit {
		return false
	}
	for _, arg := range g.Call.Args {
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		key := exprKey(info, arg)
		if namedIn(tv.Type, "sync", "WaitGroup") && after(joins.waits, key) {
			return true
		}
		if _, isCh := tv.Type.Underlying().(*types.Chan); isCh && after(joins.recvs, key) {
			return true
		}
	}
	return false
}

// exprKey names a join handle for identity matching: a variable by object,
// a selector chain by base object plus field path, through & and *.
// Returns "" for expressions too dynamic to match.
func exprKey(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := objOfIdent(info, e); obj != nil {
			return fmt.Sprintf("%p", obj)
		}
	case *ast.SelectorExpr:
		if base := exprKey(info, e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprKey(info, e.X)
		}
	case *ast.StarExpr:
		return exprKey(info, e.X)
	}
	return ""
}
