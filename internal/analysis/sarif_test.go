package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: "/repo/internal/core/worker.go", Line: 42, Column: 7},
			Analyzer: "poolleak",
			Message:  "b acquired from the transport pool is never released",
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/outside.go", Line: 3, Column: 1},
			Analyzer: "mapiter",
			Message:  "map iteration order reaches message sends",
		},
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleDiags(), "/repo"); err != nil {
		t.Fatal(err)
	}
	var got []JSONDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d diagnostics, want 2", len(got))
	}
	if got[0].File != "internal/core/worker.go" {
		t.Errorf("in-repo path = %q, want relative to base", got[0].File)
	}
	if got[1].File != "/elsewhere/outside.go" {
		t.Errorf("out-of-repo path = %q, want left absolute", got[1].File)
	}
	if got[0].Analyzer != "poolleak" || got[0].Line != 42 || got[0].Column != 7 {
		t.Errorf("got[0] = %+v, want poolleak at 42:7", got[0])
	}
}

// TestWriteJSONEmpty: no findings must serialize as [], never null, so
// scripted consumers can range without a nil check.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil, ""); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("empty run serialized as %q, want []", s)
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleDiags(), All, "/repo"); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version %q schema %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "pregelvet" {
		t.Errorf("driver name %q, want pregelvet", run.Tool.Driver.Name)
	}
	// Every suite analyzer is a rule, found or not, so rule IDs resolve.
	if len(run.Tool.Driver.Rules) != len(All) {
		t.Errorf("got %d rules, want %d (one per analyzer)", len(run.Tool.Driver.Rules), len(All))
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	for _, res := range run.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result rule %q has no matching rule entry", res.RuleID)
		}
		if res.Level != "error" {
			t.Errorf("result level %q, want error", res.Level)
		}
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/worker.go" || loc.Region.StartLine != 42 {
		t.Errorf("location = %+v, want internal/core/worker.go:42", loc)
	}
}
