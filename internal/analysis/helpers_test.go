package analysis

import (
	"go/ast"
	"go/parser"
	"go/types"
	"testing"
)

// typecheckSrc parses and typechecks one import-free source file through a
// fresh loader, returning the unit, so helper tests run against real
// go/types objects without touching the filesystem.
func typecheckSrc(t *testing.T, importPath, src string) *Unit {
	t.Helper()
	l := NewLoader(t.TempDir())
	f, err := parser.ParseFile(l.Fset, importPath+"/src.go", src,
		parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := l.TypecheckFiles(importPath, []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	return unit
}

func TestPkgHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"pregelnet/internal/transport", "transport", true},
		{"transport", "transport", true},
		{"pregelvetstub/transport", "transport", true},
		{"pregelnet/internal/transportx", "transport", false},
		{"pregelnet/internal/xtransport", "transport", false},
		{"pregelnet/internal/core", "transport", false},
	}
	for _, c := range cases {
		pkg := types.NewPackage(c.path, "p")
		if got := pkgHasSuffix(pkg, c.suffix); got != c.want {
			t.Errorf("pkgHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
	if pkgHasSuffix(nil, "transport") {
		t.Error("pkgHasSuffix(nil) = true")
	}
}

const calleeSrc = `package callee

type T struct{}

func (T) Method() {}
func Free()       {}

func drive() {
	Free()
	var t T
	t.Method()
	fv := Free
	fv()
	_ = len("x")
	_ = int64(7)
}
`

// TestCalleeFunc: static callees resolve for package functions and methods;
// function values, builtins, and conversions yield nil.
func TestCalleeFunc(t *testing.T) {
	unit := typecheckSrc(t, "fixture/callee", calleeSrc)
	var names []string
	ast.Inspect(unit.Files[0], func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(unit.Info, call); fn != nil {
			names = append(names, fn.Name())
		} else {
			names = append(names, "<nil>")
		}
		return true
	})
	want := []string{"Free", "Method", "<nil>", "<nil>", "<nil>"}
	if len(names) != len(want) {
		t.Fatalf("saw %d calls %v, want %d", len(names), names, len(want))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("call %d resolved to %s, want %s", i, names[i], want[i])
		}
	}
}

const shapeSrc = `package core

type Context struct{}

func (c *Context) Send()  {}
func (c Context) Halt()   {}
func Standalone()         {}

type prog struct{}

func (p *prog) Compute(c *Context)          {}
func (p *prog) ComputePartition(c *Context) {}
func (p *prog) Combine(a, b int) int        { return a }
func (p *prog) helper()                     {}

func free() {
	f := func() {
		g := func() {}
		g()
	}
	f()
}
`

func TestNamedInAndRecvNamed(t *testing.T) {
	unit := typecheckSrc(t, "fixture/core", shapeSrc)
	scope := unit.Pkg.Scope()
	ctx := scope.Lookup("Context").Type()
	if !namedIn(ctx, "core", "Context") {
		t.Error("namedIn missed the plain named type")
	}
	if !namedIn(types.NewPointer(ctx), "core", "Context") {
		t.Error("namedIn missed the pointer-to-named type")
	}
	if namedIn(ctx, "core", "Other") || namedIn(ctx, "transport", "Context") {
		t.Error("namedIn matched a wrong name or package")
	}

	for _, m := range []string{"Send", "Halt"} {
		fn, _, _ := types.LookupFieldOrMethod(ctx, true, unit.Pkg, m)
		if !recvNamed(fn.(*types.Func), "core", "Context") {
			t.Errorf("recvNamed missed method %s", m)
		}
	}
	standalone := scope.Lookup("Standalone").(*types.Func)
	if recvNamed(standalone, "core", "Context") {
		t.Error("recvNamed matched a receiverless function")
	}
	if !isPkgFunc(standalone, "core", "Standalone") {
		t.Error("isPkgFunc missed a package function")
	}
	if isPkgFunc(standalone, "core", "Other") || isPkgFunc(nil, "core", "Standalone") {
		t.Error("isPkgFunc matched a wrong name or nil func")
	}
}

// TestFuncScopes: every declaration and every (nested) literal is its own
// scope, so linear state machines never leak across closure boundaries.
func TestFuncScopes(t *testing.T) {
	unit := typecheckSrc(t, "fixture/scopes", shapeSrc)
	var decls, lits int
	for _, s := range funcScopes(unit.Files) {
		if s.body == nil {
			t.Fatalf("scope %s has no body", s.name)
		}
		if s.decl != nil {
			decls++
		} else {
			lits++
			if s.name != "free.func" {
				t.Errorf("literal scope named %q, want free.func", s.name)
			}
		}
	}
	if decls != 8 || lits != 2 {
		t.Errorf("funcScopes found %d decls and %d literals, want 8 and 2", decls, lits)
	}
}

// TestComputePathFuncs: in an ordinary package only the Compute /
// ComputePartition / Combine methods are in scope; in an algorithms-suffixed
// package every declaration is.
func TestComputePathFuncs(t *testing.T) {
	for _, tc := range []struct {
		importPath string
		want       map[string]bool
	}{
		{"fixture/core", map[string]bool{
			"Compute": true, "ComputePartition": true, "Combine": true,
		}},
		{"fixture/algorithms", map[string]bool{
			"Send": true, "Halt": true, "Standalone": true, "Compute": true,
			"ComputePartition": true, "Combine": true, "helper": true, "free": true,
		}},
	} {
		unit := typecheckSrc(t, tc.importPath, shapeSrc)
		pass := &Pass{Files: unit.Files, Pkg: unit.Pkg, TypesInfo: unit.Info, Fset: unit.Fset}
		got := map[string]bool{}
		for _, fd := range computePathFuncs(pass) {
			got[fd.Name.Name] = true
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: computePathFuncs = %v, want %v", tc.importPath, got, tc.want)
			continue
		}
		for name := range tc.want {
			if !got[name] {
				t.Errorf("%s: computePathFuncs missed %s", tc.importPath, name)
			}
		}
	}
}

const branchSrc = `package branch

func f(cond bool, ch chan int) {
	a := 0
	if cond {
		a = 1
	} else {
		a = 2
	}
	switch a {
	case 1:
		a = 10
	case 2:
		a = 20
	}
	select {
	case <-ch:
		a = 30
	default:
		a = 40
	}
	a = 50
	a = 60
	_ = a
}
`

// assignTargets returns the AssignStmt writing each literal constant, keyed
// by the constant's text, as stable anchors for ancestry tests.
func assignTargets(f *ast.File) map[string]*ast.AssignStmt {
	out := map[string]*ast.AssignStmt{}
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
			out[lit.Value] = as
		}
		return true
	})
	return out
}

func TestBranchDiverged(t *testing.T) {
	unit := typecheckSrc(t, "fixture/branch", branchSrc)
	f := unit.Files[0]
	parents := parentMap(f)
	at := assignTargets(f)

	diverged := [][2]string{
		{"1", "2"},   // if vs else
		{"10", "20"}, // switch cases
		{"30", "40"}, // select clause vs default
	}
	for _, pair := range diverged {
		if !branchDiverged(at[pair[0]], at[pair[1]], parents) {
			t.Errorf("assignments of %s and %s should diverge", pair[0], pair[1])
		}
	}
	together := [][2]string{
		{"50", "60"}, // same straight-line block
		{"1", "10"},  // sequential statements at different nesting
	}
	for _, pair := range together {
		if branchDiverged(at[pair[0]], at[pair[1]], parents) {
			t.Errorf("assignments of %s and %s should not diverge", pair[0], pair[1])
		}
	}
	// A node diverges from nothing relative to itself.
	if branchDiverged(at["1"], at["1"], parents) {
		t.Error("a node diverged from itself")
	}
}

func TestAncestorPath(t *testing.T) {
	unit := typecheckSrc(t, "fixture/ancestor", branchSrc)
	f := unit.Files[0]
	parents := parentMap(f)
	at := assignTargets(f)

	chain := ancestorPath(at["1"], parents)
	if len(chain) == 0 {
		t.Fatal("empty ancestor chain")
	}
	var sawIf, sawFunc bool
	for _, n := range chain {
		switch n.(type) {
		case *ast.IfStmt:
			sawIf = true
		case *ast.FuncDecl:
			sawFunc = true
		}
	}
	if !sawIf || !sawFunc {
		t.Errorf("chain missing IfStmt (%v) or FuncDecl (%v)", sawIf, sawFunc)
	}
	if chain[len(chain)-1] != f {
		t.Error("chain does not end at the file root")
	}
}

// TestStmtLists: blocks plus switch and select clause bodies all surface,
// and function literals are skipped as separate scopes.
func TestStmtLists(t *testing.T) {
	unit := typecheckSrc(t, "fixture/stmts", branchSrc)
	fd := unit.Files[0].Decls[0].(*ast.FuncDecl)
	var lists int
	stmtLists(fd.Body, func(stmts []ast.Stmt) { lists++ })
	// func body + then + else + switch/select body blocks + 2 case bodies +
	// 2 comm bodies = 9
	if lists != 9 {
		t.Errorf("stmtLists visited %d lists, want 9", lists)
	}
}

func TestUsesOfAndObjOfIdent(t *testing.T) {
	unit := typecheckSrc(t, "fixture/uses", branchSrc)
	fd := unit.Files[0].Decls[0].(*ast.FuncDecl)
	// The defining occurrence of a resolves through Defs, uses through Uses.
	var aObj types.Object
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "a" && aObj == nil {
			aObj = objOfIdent(unit.Info, id)
		}
		return aObj == nil
	})
	if aObj == nil {
		t.Fatal("could not resolve object for a")
	}
	uses := usesOf(fd.Body, unit.Info, aObj)
	// a := 0, eight branch-arm/straight-line writes, switch a, and _ = a.
	if len(uses) != 11 {
		t.Errorf("usesOf found %d occurrences of a, want 11", len(uses))
	}
	for _, id := range uses {
		if id.Name != "a" {
			t.Errorf("usesOf returned identifier %q", id.Name)
		}
	}
}
