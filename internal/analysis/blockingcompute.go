package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BlockingCompute keeps superstep compute paths non-blocking. The BSP
// barrier waits for the slowest vertex: one Compute call that sleeps, does
// raw network or substrate I/O, or parks on an unpaired channel stalls the
// whole superstep across every worker — the pathology the paper's
// stragglers analysis attributes most variance to on shared public-cloud
// tenancy. I/O belongs in the engine's pipelined send/receive layers, not
// in vertex programs. Flagged inside compute paths (see computePathFuncs):
//
//   - time.Sleep,
//   - direct net/* calls and os file I/O,
//   - calls into the cloud substrate package that can touch the network
//     (those returning an error; pure helpers like IsTransient pass),
//   - sync.WaitGroup.Wait with no goroutines launched in the same function
//     (waiting on work you did not start is unbounded), and
//   - channel operations — send, receive, range — in a function that
//     launches no goroutines, unless inside a select with a default clause.
//
// A function that launches its own goroutines is allowed channel/WaitGroup
// joins (goroleak checks they exist); the bound is then the local work it
// spawned. Deliberate blocking is opted out with //pregelvet:allow
// blockingcompute <reason> on the function, or per line with
// //pregelvet:ignore blockingcompute.
var BlockingCompute = &Analyzer{
	Name: "blockingcompute",
	Doc:  "no sleeps, raw I/O, or unpaired channel/WaitGroup blocking in superstep compute paths",
	Run:  runBlockingCompute,
}

func runBlockingCompute(pass *Pass) {
	info := pass.TypesInfo
	for _, fd := range computePathFuncs(pass) {
		if hasAllow(fd.Doc, "blockingcompute") {
			continue
		}
		hasGo := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				hasGo = true
			}
			return true
		})
		parents := parentMap(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkBlockingCall(pass, info, n, hasGo)
			case *ast.SendStmt:
				if !hasGo && !inSelectWithDefault(n, parents) {
					pass.Reportf(n.Pos(),
						"channel send in a compute path with no local goroutines can park the vertex and stall the superstep barrier; move cross-goroutine traffic into the engine's send pipeline")
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !hasGo && !inSelectWithDefault(n, parents) {
					pass.Reportf(n.Pos(),
						"channel receive in a compute path with no local goroutines can park the vertex and stall the superstep barrier; compute inputs arrive via ctx.Messages, not channels")
				}
			case *ast.RangeStmt:
				if hasGo {
					return true
				}
				if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
					if _, isCh := tv.Type.Underlying().(*types.Chan); isCh {
						pass.Reportf(n.Pos(),
							"range over a channel in a compute path blocks until the channel closes, stalling the superstep barrier")
					}
				}
			}
			return true
		})
	}
}

func checkBlockingCall(pass *Pass, info *types.Info, call *ast.CallExpr, hasGo bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	switch {
	case pkg == "time" && fn.Name() == "Sleep":
		pass.Reportf(call.Pos(),
			"time.Sleep in a compute path stalls every worker at the superstep barrier (the BSP bound is the slowest vertex); backoff belongs in the engine's retry layer")
	case fn.Name() == "Wait" && recvNamed(fn, "sync", "WaitGroup"):
		if !hasGo {
			pass.Reportf(call.Pos(),
				"sync.WaitGroup.Wait in a compute path that launches no goroutines waits on work this function did not start; the superstep barrier is unbounded by it")
		}
	case pkg == "net" || strings.HasPrefix(pkg, "net/"):
		pass.Reportf(call.Pos(),
			"raw network I/O (%s.%s) in a compute path blocks the superstep on an unbounded remote; route data through the engine's pipelined transport", pkg, fn.Name())
	case pkg == "os" || pkg == "io/ioutil":
		pass.Reportf(call.Pos(),
			"file I/O (%s.%s) in a compute path blocks the superstep on the disk; graph and message state must come from the engine", pkg, fn.Name())
	case pkgHasSuffix(fn.Pkg(), "cloud") && returnsError(fn):
		pass.Reportf(call.Pos(),
			"cloud substrate call %s.%s in a compute path does network I/O inside the superstep; the engine owns all substrate traffic (blob, queue, retry)", fn.Pkg().Name(), fn.Name())
	}
}

// returnsError reports whether fn's last result is the error interface —
// the shape of the substrate's I/O entry points, as opposed to its pure
// classification helpers.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// inSelectWithDefault reports whether n sits in the comm clause of a select
// that has a default clause (and therefore never blocks).
func inSelectWithDefault(n ast.Node, parents map[ast.Node]ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		sel, ok := p.(*ast.SelectStmt)
		if !ok {
			continue
		}
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				return true
			}
		}
		return false
	}
	return false
}
