package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// Machine-readable diagnostic output: a flat JSON array for scripting, and
// SARIF 2.1.0 for code-scanning UIs (GitHub annotations consume SARIF
// directly). Both shapes relativize file paths against a base directory so
// the output is stable across checkouts.

// JSONDiagnostic is the scripting-friendly shape of one finding.
type JSONDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON emits diags as an indented JSON array. An empty run emits [],
// never null, so consumers can range without a nil check.
func WriteJSON(w io.Writer, diags []Diagnostic, base string) error {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			Analyzer: d.Analyzer,
			File:     relFile(d.Pos.Filename, base),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton — only the fields code-scanning consumers require.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits diags as a SARIF 2.1.0 log. analyzers supplies the rule
// metadata (every suite member, found or not, so rule IDs resolve); base
// relativizes file URIs for in-repo annotation.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer, base string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relFile(d.Pos.Filename, base))},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "pregelvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relFile shortens name to be relative to base when it lies inside it.
func relFile(name, base string) string {
	if base == "" {
		return name
	}
	if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}
