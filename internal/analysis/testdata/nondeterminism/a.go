// Fixture for the nondeterminism analyzer: wall-clock and PRNG calls inside
// Compute methods, which must replay identically across recovery epochs.
package nondeterminism

import (
	"math/rand"
	"time"
)

type vertex struct {
	value float64
	last  time.Time
}

func (v *vertex) Compute(step int) {
	v.last = time.Now()      // want "time.Now"
	v.value = rand.Float64() // want "math/rand.Float64"
}

type elapsedVertex struct {
	start time.Time
}

func (v *elapsedVertex) Compute(step int) float64 {
	return time.Since(v.start).Seconds() // want "time.Since"
}

// seededVertex draws from an explicitly seeded source, which is still
// math/rand and still flagged: determinism requires deriving values from
// (vertex id, superstep), not any PRNG stream shared across goroutines.
type seededVertex struct {
	rng *rand.Rand
}

func (v *seededVertex) Compute(step int) float64 {
	return v.rng.Float64() // want "math/rand"
}

type cleanVertex struct {
	value float64
}

func (v *cleanVertex) Compute(step int) {
	v.value = float64(step) * 0.85
}

type debugClock struct{}

// Compute opts out: a debug-only vertex may sample wall clocks.
//
//pregelvet:allow nondeterminism debug-only vertex, timing is never checkpointed
func (debugClock) Compute(step int) int64 {
	return time.Now().UnixNano()
}

type bareAllowClock struct{}

// Compute carries a bare allow: it still suppresses the analyzer, but the
// missing reason string is itself a diagnostic.
//
//pregelvet:allow nondeterminism // want "bare //pregelvet:allow nondeterminism: a reason string is required"
func (bareAllowClock) Compute(step int) int64 {
	return time.Now().UnixNano()
}

// ComputePartition bodies (the subgraph-centric program contract) are
// compute paths too: a partition program's local fixpoint replays from a
// checkpoint exactly like a vertex program's Compute does.
type partitionProg struct {
	labels []int32
}

func (p *partitionProg) ComputePartition(step int) {
	if rand.Intn(2) == 0 { // want "math/rand.Intn"
		p.labels[0] = int32(time.Now().Unix()) // want "time.Now"
	}
}

type cleanPartitionProg struct {
	labels []int32
}

func (p *cleanPartitionProg) ComputePartition(step int) {
	for i := range p.labels {
		p.labels[i] = int32(step)
	}
}

type timedPartitionProg struct{}

// ComputePartition opts out: telemetry-only partition timing may sample
// wall clocks.
//
//pregelvet:allow nondeterminism telemetry-only timing, excluded from replay equality
func (timedPartitionProg) ComputePartition(step int) int64 {
	_ = step
	return time.Now().UnixNano()
}

// free helpers are not compute paths; only Compute methods are fenced here.
func helperOutsideCompute() time.Time {
	return time.Now()
}
