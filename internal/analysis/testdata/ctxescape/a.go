// Fixture for the ctxescape analyzer: compute contexts and engine-owned
// views (Messages/Neighbors/Active slices, Replay payload views) are borrows
// valid only for the duration of the call; storing, sending, or capturing
// them in a goroutine is flagged.
package ctxescape

import (
	"pregelvetstub/core"
	"pregelvetstub/transport"
)

type vertex struct {
	saved *core.Context[float64]
	nbrs  []core.VertexID
	score float64
}

var globalCtx *core.Context[float64]

// Storing the context itself in a field or global escapes the borrow.
func (v *vertex) Compute(ctx *core.Context[float64]) {
	v.saved = ctx   // want "stored in a struct field"
	globalCtx = ctx // want "stored in a package-level variable"
}

// A view bound from PartitionContext.Messages must not outlive the call.
type partProg struct {
	lastMsgs []float64
	adj      map[core.VertexID][]core.VertexID
}

func (p *partProg) ComputePartition(pc *core.PartitionContext[float64]) {
	msgs := pc.Messages(0)
	p.lastMsgs = msgs // want "Messages view.*stored in a struct field"

	nbrs := pc.Neighbors(7)
	p.adj[7] = nbrs // want "Neighbors view.*stored in a struct field"
}

// Goroutine capture: the engine re-arms the context while the goroutine is
// still running.
func (v *vertex) computeAsync(ctx *core.Context[float64]) {
	go func() {
		ctx.Send(1, 0.5) // want "captured by a goroutine"
	}()
	go leakTo(ctx) // want "captured by a goroutine"
}

func leakTo(ctx *core.Context[float64]) {}

// Sending a view on a channel escapes it to another goroutine's lifetime.
func shipActive(pc *core.PartitionContext[float64], out chan []int32) {
	act := pc.Active()
	out <- act // want "Active view.*sent on a channel"
}

// Clean uses: borrowing down the stack, ranging views, reading elements,
// copying data out, and deferred use all stay within the call.
func (v *vertex) computeClean(ctx *core.Context[float64]) {
	for _, n := range ctx.Neighbors() {
		ctx.Send(n, v.score)
	}
	helper(ctx)
	defer ctx.VoteToHalt()
	nbrs := ctx.Neighbors()
	if len(nbrs) > 0 {
		v.score += float64(nbrs[0])
	}
	// Copying is the sanctioned way to retain borrowed data.
	v.nbrs = append(v.nbrs[:0], ctx.Neighbors()...)
	_ = v.nbrs
}

func helper(ctx *core.Context[float64]) {}

// A Replay payload view is log-owned: capturing it in a goroutine races the
// log's buffer recycling.
func replayEscape(log *transport.MessageLog, ch chan []byte) error {
	return log.Replay(3, func(dest int) bool { return true },
		func(dest int, payload []byte, count int) error {
			go stash(payload) // want "Replay payload view.*captured by a goroutine"
			return nil
		})
}

func stash(p []byte) {}

// Deliberate retention is opted out with a reasoned allow.
type harness struct {
	ctx *core.Context[float64]
}

// Compute retains the context on purpose.
//
//pregelvet:allow ctxescape test harness owns the engine, context cannot be re-armed
func (h *harness) Compute(ctx *core.Context[float64]) {
	h.ctx = ctx
}
