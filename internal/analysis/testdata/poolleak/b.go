// Interprocedural cases: ownership decisions flow through helper summaries
// from the facts layer, across the package boundary to the poolhelpers stub
// and within this package.
package poolleak

import (
	"pregelvetstub/poolhelpers"
	"pregelvetstub/transport"
)

// Passing to a consuming helper transfers ownership: clean.
func consumeHelper() {
	p := transport.GetPayload(64)
	poolhelpers.ConsumeAlways(p)
}

// A read-only helper leaves ownership here: acquiring and only reading
// leaks. PR 4's intraprocedural version trusted every call as a transfer
// and provably missed this.
func readHelperLeaks() {
	p := transport.GetPayload(64) // want "never released"
	_ = poolhelpers.ReadOnly(p)
}

// Read-only helper followed by a real release: clean.
func readHelperThenPut() {
	p := transport.GetPayload(64)
	_ = poolhelpers.ReadOnly(p)
	transport.PutPayload(p)
}

// A helper that releases on some paths but drops on others is flagged at
// the call site: the caller can neither release nor skip the release.
func dropHelper() {
	p := transport.GetPayload(64)
	poolhelpers.DropSometimes(p) // want "releases it on some paths but drops it"
}

// A pool-wrapper acquisition must be released like a direct GetPayload.
func wrapperLeaks() {
	p := poolhelpers.NewBuf(64) // want "never released"
	_ = len(p)
}

func wrapperThenPut() {
	p := poolhelpers.NewBuf(64)
	transport.PutPayload(p)
}

// Same-package helpers get facts too: localDrop mirrors DropSometimes
// within the fixture package itself.
func localDrop(p []byte) {
	if cap(p) == 0 {
		return
	}
	transport.PutPayload(p)
}

func callsLocalDrop() {
	p := transport.GetPayload(32)
	localDrop(p) // want "releases it on some paths but drops it"
}

// Unknown callees (function values) are still trusted as transfers: the
// summary does not exist, so the PR 4 behavior is preserved.
func unknownCallee(sink func([]byte)) {
	p := transport.GetPayload(16)
	sink(p)
}
