// Fixture for the poolleak analyzer: pool acquisitions that leak, escape
// correctly, or touch memory after returning it.
package poolleak

import (
	"pregelvetstub/transport"
)

func leakNever() {
	b := transport.GetBatch() // want "never released"
	b.From = 1
}

func leakPayload() {
	p := transport.GetPayload(64) // want "never released"
	p[0] = 1
}

func okRelease() {
	b := transport.GetBatch()
	b.From = 1
	transport.PutBatch(b)
}

func okTransferCall(send func(*transport.Batch)) {
	b := transport.GetBatch()
	send(b)
}

func okTransferChan(ch chan *transport.Batch) {
	b := transport.GetBatch()
	ch <- b
}

func okTransferStore(out map[int]*transport.Batch) {
	b := transport.GetBatch()
	out[0] = b
}

func okTransferReturn() *transport.Batch {
	b := transport.GetBatch()
	b.From = 2
	return b
}

func earlyReturnLeak(ch chan *transport.Batch, done chan struct{}) {
	for {
		b, err := transport.ReadBatch()
		if err != nil {
			return
		}
		select {
		case ch <- b:
		case <-done:
			return // want "unreleased on this path"
		}
	}
}

func okEarlyReturn(ch chan *transport.Batch, done chan struct{}) {
	for {
		b, err := transport.ReadBatch()
		if err != nil {
			return
		}
		select {
		case ch <- b:
		case <-done:
			transport.PutBatch(b)
			return
		}
	}
}

func retainedAfterPut() int32 {
	b := transport.GetBatch()
	b.From = 7
	transport.PutBatch(b)
	return b.From // want "after PutBatch"
}

func payloadAfterPut() byte {
	p := transport.GetPayload(8)
	transport.PutPayload(p)
	return p[0] // want "after PutPayload"
}

func fieldAfterPut(b *transport.Batch) int {
	transport.PutPayload(b.Payload)
	return len(b.Payload) // want "after PutPayload"
}

func okFieldRearm(b *transport.Batch) {
	transport.PutPayload(b.Payload)
	b.Payload = nil
	transport.PutBatch(b)
}

func okRearm() []byte {
	p := transport.GetPayload(8)
	transport.PutPayload(p)
	p = transport.GetPayload(4)
	return p
}

func okIgnored() {
	b := transport.GetBatch() //pregelvet:ignore poolleak a raw tool may own a batch for its whole lifetime
	b.From = 1
}
