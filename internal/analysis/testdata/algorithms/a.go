// Fixture for the nondeterminism analyzer's package-wide mode: anything in
// an .../algorithms package is a compute path, including free functions.
package algorithms

import "time"

func tieBreak(a, b int64) int64 {
	if a == b {
		return time.Now().UnixNano() // want "time.Now"
	}
	if a < b {
		return a
	}
	return b
}

func deterministicTieBreak(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
