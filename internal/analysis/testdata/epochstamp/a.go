// Fixture for the epochstamp analyzer: batches reaching Send with and
// without a recovery-epoch stamp.
package epochstamp

import "pregelvetstub/transport"

func literalMissing(ep transport.Endpoint) error {
	b := &transport.Batch{From: 1, To: 2} // want "without Epoch"
	return ep.Send(b)
}

func literalStamped(ep transport.Endpoint, epoch int32) error {
	b := &transport.Batch{From: 1, To: 2, Epoch: epoch}
	return ep.Send(b)
}

func literalStampedLater(ep transport.Endpoint, epoch int32) error {
	b := &transport.Batch{From: 1, To: 2}
	b.Epoch = epoch
	return ep.Send(b)
}

func literalPositional(ep transport.Endpoint) error {
	b := &transport.Batch{1, 2, 0, 0, 3, 1, nil}
	return ep.Send(b)
}

func pooledUnstamped(ep transport.Endpoint) error {
	b := transport.GetBatch()
	b.From = 1
	b.To = 2
	return ep.Send(b) // want "without a recovery-epoch stamp"
}

func pooledStamped(ep transport.Endpoint, epoch int32) error {
	b := transport.GetBatch()
	b.From = 1
	b.To = 2
	b.Epoch = epoch
	return ep.Send(b)
}

// pooledHandoff mirrors the engine's enqueue path: handing the batch to an
// intermediary that stamps at enqueue time is the trusted pattern.
func pooledHandoff(enqueue func(*transport.Batch)) {
	b := transport.GetBatch()
	b.From = 1
	enqueue(b)
}

func ignored(ep transport.Endpoint) error {
	b := transport.GetBatch()
	b.From = 1
	return ep.Send(b) //pregelvet:ignore epochstamp raw transport tool, no engine epochs
}
