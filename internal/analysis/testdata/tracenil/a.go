// Fixture for the tracenil analyzer: raw nil comparisons and field access
// on the observability facade.
package tracenil

import "pregelvetstub/observe"

type server struct {
	tracer  *observe.Tracer
	metrics *observe.Metrics
}

func (s *server) handle() {
	if s.tracer != nil { // want "raw nil comparison"
		s.tracer.Emit("span")
	}
	if nil == s.tracer { // want "raw nil comparison"
		return
	}
	if s.metrics == nil { // want "raw nil comparison"
		return
	}
}

func (s *server) facade() {
	if s.tracer.Enabled() {
		s.tracer.Emit("span")
	}
	s.metrics.Counter("requests")
	if s.metrics.Enabled() {
		s.metrics.Counter("enabled")
	}
}

func (s *server) fieldAccess() int {
	return len(s.tracer.Sinks) // want "direct field access"
}

func (s *server) ignored() {
	if s.tracer != nil { //pregelvet:ignore tracenil wiring code compares before choosing a default
		return
	}
}
