// Fixture for the lockorder analyzer: inconsistent acquisition orders,
// nested self-acquisition, and the clean patterns that must stay silent.
package lockorder

import "sync"

type engine struct {
	a sync.Mutex
	b sync.Mutex
}

func (e *engine) abOrder() {
	e.a.Lock()
	e.b.Lock() // want "inconsistent lock order"
	e.b.Unlock()
	e.a.Unlock()
}

func (e *engine) baOrder() {
	e.b.Lock()
	e.a.Lock()
	e.a.Unlock()
	e.b.Unlock()
}

type nested struct {
	mu sync.Mutex
}

func (n *nested) doubleLock() {
	n.mu.Lock()
	n.mu.Lock() // want "self-deadlock"
	n.mu.Unlock()
	n.mu.Unlock()
}

type clean struct {
	x sync.Mutex
	y sync.Mutex
}

func (c *clean) first() {
	c.x.Lock()
	c.y.Lock()
	c.y.Unlock()
	c.x.Unlock()
}

func (c *clean) second() {
	c.x.Lock()
	defer c.x.Unlock()
	c.y.Lock()
	defer c.y.Unlock()
}

// sequential acquisition (no overlap) in the opposite order is fine.
func (c *clean) sequential() {
	c.y.Lock()
	c.y.Unlock()
	c.x.Lock()
	c.x.Unlock()
}

type striped struct {
	locks [4]sync.Mutex
	state sync.RWMutex
}

// aliased stripe locks resolve to one structural identity; taking a stripe
// then the state lock is one consistent order.
func (s *striped) stripeThenState(i int) {
	l := &s.locks[i]
	l.Lock()
	s.state.RLock()
	s.state.RUnlock()
	l.Unlock()
}

// a callback does not inherit its creator's held locks: the literal locking
// s.state is a separate scope, not a state->locks edge... and the
// stripeThenState order above stays the only edge between these locks.
func (s *striped) callbackScope(run func(func())) {
	s.state.RLock()
	defer s.state.RUnlock()
	run(func() {
		s.locks[0].Lock()
		s.locks[0].Unlock()
	})
}
