// Fixture for the mapiter analyzer: map iteration order is random per
// range statement, so compute paths must not let it reach message sends,
// aggregator updates, or floating-point accumulation.
package mapiter

import (
	"sort"

	"pregelvetstub/core"
)

type vertex struct {
	weights map[core.VertexID]float64
	total   float64
}

// Sends in map order: message order feeds combiners and the replay log.
func (v *vertex) Compute(ctx *core.Context[float64]) {
	for dst, w := range v.weights { // want "message sends"
		ctx.Send(dst, w)
	}
}

// Aggregator folds in map order.
type aggVertex struct {
	counts map[string]float64
}

func (v *aggVertex) Compute(ctx *core.Context[float64]) {
	for _, c := range v.counts { // want "aggregator updates"
		ctx.Aggregate("total", c)
	}
}

// Floating-point accumulation is not associative: sum order changes bits.
type accumProg struct {
	pending map[int32]float64
	total   float64
}

func (p *accumProg) ComputePartition(pc *core.PartitionContext[float64]) {
	for _, w := range p.pending { // want "floating-point accumulation"
		p.total += w
	}
}

// Combine methods are compute paths too (combiners run on the send path and
// replay with it); the x = x + w selector spelling is the same accumulation.
type sumCombiner struct {
	pending map[int64]float64
	acc     float64
}

func (c *sumCombiner) Combine(m float64) float64 {
	for _, w := range c.pending { // want "floating-point accumulation"
		c.acc = c.acc + w
	}
	return c.acc + m
}

// The sanctioned idiom: collect keys, sort, range the slice. The key
// collection loop does no order-sensitive work, and the send loop is not a
// map range.
func (v *vertex) computeSorted(ctx *core.Context[float64]) {
	keys := make([]core.VertexID, 0, len(v.weights))
	for dst := range v.weights {
		keys = append(keys, dst)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, dst := range keys {
		ctx.Send(dst, v.weights[dst])
	}
}

// Order-insensitive map work passes: integer counting commutes exactly.
func (v *vertex) countEdges() int {
	n := 0
	for range v.weights {
		n++
	}
	return n
}

// A provably commutative float fold can opt out with a reasoned allow.
type maxVertex struct {
	weights map[core.VertexID]float64
	best    float64
}

// Compute folds with max, which is order-insensitive.
//
//pregelvet:allow mapiter max is commutative and exact, order cannot matter
func (v *maxVertex) Compute(ctx *core.Context[float64]) {
	for dst, w := range v.weights {
		if w > v.best {
			v.best = w
		}
		ctx.Send(dst, v.best)
	}
}

// Outside compute paths, map ranges are unconstrained.
func freeFunc(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}
