// Label-propagation fixtures for the mapiter analyzer: incremental
// repartitioning and community detection both score candidate labels in a
// map keyed by label. Ranging that map while sending or folding float
// affinities bakes iteration order into the result — ties break differently
// run to run, so a resized run stops being replayable. The engine's own
// partitioners avoid maps entirely (dense slices indexed by partition); code
// that does use a label map must drain it through sorted keys.
package mapiter

import (
	"sort"

	"pregelvetstub/core"
)

// lpVertex pushes its current best community label to neighbors. Sending
// while ranging the affinity map means the "current best" a neighbor sees
// mid-scan depends on map order.
type lpVertex struct {
	affinity map[int32]float64
	label    int32
}

func (v *lpVertex) Compute(ctx *core.Context[float64]) {
	best := 0.0
	for l, a := range v.affinity { // want "message sends"
		if a > best {
			best, v.label = a, l
		}
		ctx.Send(core.VertexID(v.label), best)
	}
}

// lpScore folds traffic-weighted neighbor affinities into a float score per
// candidate label: float addition is not associative, so the fold order
// (map order) changes the low bits, and with them any threshold decision.
type lpScore struct {
	perLabel map[int32]float64
	score    float64
}

func (p *lpScore) ComputePartition(pc *core.PartitionContext[float64]) {
	for _, a := range p.perLabel { // want "floating-point accumulation"
		p.score += a * 0.5
	}
}

// The sanctioned spelling, mirroring the incremental partitioner: collect
// the candidate labels, sort them, and scan in that fixed order. Neither
// loop is an order-sensitive map range.
func (v *lpVertex) computeSorted(ctx *core.Context[float64]) {
	labels := make([]int32, 0, len(v.affinity))
	for l := range v.affinity {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	best := 0.0
	for _, l := range labels {
		if a := v.affinity[l]; a > best {
			best, v.label = a, l
		}
	}
	ctx.Send(core.VertexID(v.label), best)
}

// Integer tallies commute exactly; counting labels in map order is fine as
// long as nothing order-sensitive happens in the loop.
func (v *lpVertex) countLabels() int {
	n := 0
	for range v.affinity {
		n++
	}
	return n
}
