// Fixture for the msglog analyzer: Replay callbacks that release or retain
// the log-owned payload view, and the sanctioned copy idiom.
package msglog

import (
	"pregelvetstub/transport"
)

func releaseView(log *transport.MessageLog) error {
	return log.Replay(3, func(dest int) bool { return true },
		func(dest int, payload []byte, count int) error {
			transport.PutPayload(payload) // want "releasing it with PutPayload"
			return nil
		})
}

func retainViewField(log *transport.MessageLog, send func(*transport.Batch) error) error {
	return log.Replay(3, func(dest int) bool { return true },
		func(dest int, payload []byte, count int) error {
			b := transport.GetBatch()
			b.Payload = payload // want "storing it into a Payload field"
			return send(b)
		})
}

func retainViewLiteral(log *transport.MessageLog, send func(*transport.Batch) error) error {
	return log.Replay(3, func(dest int) bool { return true },
		func(dest int, payload []byte, count int) error {
			return send(&transport.Batch{Payload: payload}) // want "Batch literal retaining it"
		})
}

func okCopy(log *transport.MessageLog, send func(*transport.Batch) error) error {
	return log.Replay(3, func(dest int) bool { return true },
		func(dest int, payload []byte, count int) error {
			pl := transport.GetPayload(len(payload))
			pl = append(pl, payload...)
			b := transport.GetBatch()
			b.Payload = pl
			return send(b)
		})
}

func okReadOnly(log *transport.MessageLog, sink func(byte)) error {
	return log.Replay(3, func(dest int) bool { return true },
		func(dest int, payload []byte, count int) error {
			for _, c := range payload {
				sink(c)
			}
			return nil
		})
}
