// Fixture for the goroleak analyzer: goroutines launched in compute paths
// must be provably joined (WaitGroup Done/Wait pair or channel handshake)
// before the superstep returns to the barrier.
package goroleak

import (
	"sync"

	"pregelvetstub/core"
)

type vertex struct {
	score float64
}

// Fire-and-forget: nothing joins the goroutine before return.
func (v *vertex) Compute(ctx *core.Context[float64]) {
	go func() { // want "no visible join"
		v.score++
	}()
}

// WaitGroup join: Done inside the goroutine, Wait after the launch.
type wgVertex struct{}

func (wgVertex) Compute(ctx *core.Context[float64]) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// Channel handshake: the goroutine sends, the function receives after.
type chVertex struct{}

func (chVertex) Compute(ctx *core.Context[float64]) {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// A Wait on a different WaitGroup than the one the goroutine signals is not
// a join.
type wrongWgVertex struct {
	other sync.WaitGroup
}

func (v *wrongWgVertex) Compute(ctx *core.Context[float64]) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "no visible join"
		defer wg.Done()
	}()
	v.other.Wait()
}

// A Wait BEFORE the launch joins nothing: the goroutine outlives it.
type earlyWaitVertex struct{}

func (earlyWaitVertex) Compute(ctx *core.Context[float64]) {
	var wg sync.WaitGroup
	wg.Wait()
	wg.Add(1)
	go func() { // want "no visible join"
		defer wg.Done()
	}()
}

// Non-literal targets: a WaitGroup or channel argument with a matching
// Wait/receive after the launch is trusted as a join.
type helperVertex struct{}

func worker(wg *sync.WaitGroup)  { wg.Done() }
func producer(ch chan<- float64) { ch <- 1 }

func (helperVertex) ComputePartition(pc *core.PartitionContext[float64]) {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()

	ch := make(chan float64, 1)
	go producer(ch)
	_ = <-ch
}

// A non-literal target with no join handle in its arguments is flagged.
func fire() {}

func (helperVertex) Compute(ctx *core.Context[float64]) {
	go fire() // want "no visible join"
}

// Genuine fire-and-forget that touches no engine state is opted out.
type loggerVertex struct{}

// Compute spawns detached telemetry.
//
//pregelvet:allow goroleak telemetry goroutine touches no engine state and may outlive the step
func (loggerVertex) Compute(ctx *core.Context[float64]) {
	go func() {}()
}

// Outside compute paths, goroutine lifetime is unconstrained.
func freeFunc() {
	go func() {}()
}
