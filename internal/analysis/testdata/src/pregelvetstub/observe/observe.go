// Package observe is a fixture stub for the tracenil analyzer: nil-safe
// facade methods plus one exported field (the real package keeps its fields
// unexported precisely so the facade cannot be bypassed; the stub exposes
// one to prove the analyzer would catch it).
package observe

// Tracer mirrors the nil-safe tracer facade.
type Tracer struct {
	Sinks []func()
}

func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) Emit(kind string) {
	if t == nil {
		return
	}
	for _, s := range t.Sinks {
		s()
	}
}

// Metrics mirrors the nil-safe metrics registry facade.
type Metrics struct{}

func (m *Metrics) Enabled() bool { return m != nil }

func (m *Metrics) Counter(name string) int {
	if m == nil {
		return 0
	}
	return len(name)
}
