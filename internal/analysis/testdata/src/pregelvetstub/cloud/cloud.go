// Package cloud is a fixture stub for the transienterr analyzer: the
// transient-error marker and the retry helper whose closures count as retry
// paths.
package cloud

import "errors"

// ErrTransient mirrors the retryable-fault marker.
var ErrTransient = errors.New("cloud: transient error")

// RetryPolicy mirrors the retry helper; function literals passed to Do are
// retry paths.
type RetryPolicy struct {
	MaxAttempts int
}

func (p RetryPolicy) Do(op func() error) error { return op() }

// IsTransient mirrors the pure classifier: no I/O, so blockingcompute lets
// compute paths call it.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// PutBlob mirrors a substrate I/O entry point (error-returning, so
// blockingcompute flags it in compute paths).
func PutBlob(key string, data []byte) error { return nil }
