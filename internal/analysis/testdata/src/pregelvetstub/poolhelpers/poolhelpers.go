// Package poolhelpers is a fixture stub exercising the facts layer
// (internal/analysis/facts.go): helpers with each pooled-ownership summary
// poolleak distinguishes — consumes, reads, drops-on-some-paths, and
// returns-pooled. The fixture package calls these across the package
// boundary, so the facts must survive serialization through the loader.
package poolhelpers

import "pregelvetstub/transport"

// ConsumeAlways releases p on every path: call sites transfer ownership.
func ConsumeAlways(p []byte) {
	transport.PutPayload(p)
}

// ReadOnly only inspects p: ownership stays with the caller, so acquiring
// and only calling this still leaks.
func ReadOnly(p []byte) int {
	n := 0
	for _, b := range p {
		n += int(b)
	}
	return n
}

// DropSometimes releases p only when it is non-empty; the empty-case early
// return abandons it. Callers can neither release (double-free on the full
// path) nor skip the release (leak on the empty path) — the cross-function
// bug an intraprocedural scan cannot see.
func DropSometimes(p []byte) {
	if len(p) == 0 {
		return
	}
	transport.PutPayload(p)
}

// NewBuf wraps the pool getter: ReturnsPooled makes call sites
// acquisitions that must be released like a direct GetPayload.
func NewBuf(n int) []byte {
	buf := transport.GetPayload(n)
	return buf
}
