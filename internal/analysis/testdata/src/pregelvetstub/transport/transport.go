// Package transport is a fixture stub mirroring the shapes pregelvet's
// analyzers key on: the pooled Batch/payload contract and the Endpoint
// surface. Matching is by package-path suffix, so this stub exercises the
// same code paths as the real pregelnet/internal/transport.
package transport

// Batch mirrors the wire batch: Epoch is the recovery-epoch stamp the
// epochstamp analyzer enforces.
type Batch struct {
	From      int32
	To        int32
	Superstep int32
	Count     int32
	Epoch     int32
	Seq       int32
	Payload   []byte
}

func GetPayload(n int) []byte { return make([]byte, n) }
func PutPayload(p []byte)     {}
func GetBatch() *Batch        { return new(Batch) }
func PutBatch(b *Batch)       {}

// Endpoint mirrors the data-plane endpoint surface.
type Endpoint interface {
	Send(b *Batch) error
	Recv() (*Batch, error)
}

// ReadBatch mirrors the framing reader: its first result is a pooled batch
// the caller must consume (poolleak treats it as an acquisition).
func ReadBatch() (*Batch, error) { return GetBatch(), nil }

// MessageLog mirrors the sender-side message log: Replay hands callbacks
// log-owned payload views the msglog analyzer forbids releasing or
// retaining.
type MessageLog struct{}

func (l *MessageLog) Replay(superstep int, want func(dest int) bool,
	send func(dest int, payload []byte, count int) error) error {
	return nil
}
