// Package core is a fixture stub mirroring the compute-context surface the
// ctxescape, mapiter, blockingcompute, and goroleak analyzers key on:
// generic Context/PartitionContext with the Send/Aggregate entry points and
// the engine-owned views (Messages, Neighbors, Active). Matching is by
// package-path suffix and type/method name, so this stub exercises the same
// code paths as the real pregelnet/internal/core.
package core

// VertexID mirrors graph.VertexID for stub self-containment.
type VertexID int64

// Context mirrors the per-vertex compute API handed to VertexProgram.Compute.
type Context[M any] struct {
	msgs      []M
	neighbors []VertexID
}

func (c *Context[M]) Superstep() int                   { return 0 }
func (c *Context[M]) Vertex() VertexID                 { return 0 }
func (c *Context[M]) Neighbors() []VertexID            { return c.neighbors }
func (c *Context[M]) Send(to VertexID, m M)            {}
func (c *Context[M]) SendToNeighbors(m M)              {}
func (c *Context[M]) Aggregate(name string, v float64) {}
func (c *Context[M]) Agg(name string) (float64, bool)  { return 0, false }
func (c *Context[M]) VoteToHalt()                      {}

// PartitionContext mirrors the whole-partition compute API handed to
// PartitionProgram.ComputePartition.
type PartitionContext[M any] struct {
	msgs   [][]M
	active []int32
}

func (pc *PartitionContext[M]) Superstep() int                   { return 0 }
func (pc *PartitionContext[M]) NumLocal() int                    { return 0 }
func (pc *PartitionContext[M]) VertexAt(li int32) VertexID       { return 0 }
func (pc *PartitionContext[M]) Messages(li int32) []M            { return pc.msgs[li] }
func (pc *PartitionContext[M]) Neighbors(v VertexID) []VertexID  { return nil }
func (pc *PartitionContext[M]) Active() []int32                  { return pc.active }
func (pc *PartitionContext[M]) Send(to VertexID, m M)            {}
func (pc *PartitionContext[M]) Aggregate(name string, v float64) {}
func (pc *PartitionContext[M]) VoteToHalt(li int32)              {}
