// Fixture for the blockingcompute analyzer: superstep compute paths must
// not sleep, do raw I/O, or park on unpaired channel/WaitGroup operations —
// the BSP barrier waits for the slowest vertex.
package blockingcompute

import (
	"net"
	"os"
	"sync"
	"time"

	"pregelvetstub/cloud"
	"pregelvetstub/core"
)

type vertex struct {
	score float64
}

func (v *vertex) Compute(ctx *core.Context[float64]) {
	time.Sleep(10 * time.Millisecond) // want "time.Sleep in a compute path"
	ctx.Send(1, v.score)
}

// Raw network and file I/O block the superstep on unbounded externals.
type ioVertex struct{}

func (ioVertex) Compute(ctx *core.Context[float64]) {
	conn, _ := net.Dial("tcp", "example.com:80") // want "raw network I/O"
	_ = conn
	data, _ := os.ReadFile("/tmp/state") // want "file I/O"
	_ = data
}

// Substrate calls belong in the engine's blob/queue/retry layers.
type blobVertex struct{}

func (blobVertex) Compute(ctx *core.Context[float64]) {
	_ = cloud.PutBlob("key", nil) // want "cloud substrate call"
	// Pure classification helpers are not I/O and pass.
	if cloud.IsTransient(nil) {
		ctx.VoteToHalt()
	}
}

// Channel operations with no local goroutines park the vertex on traffic
// this function cannot unblock.
type chanVertex struct {
	in  chan float64
	out chan float64
}

func (v *chanVertex) Compute(ctx *core.Context[float64]) {
	v.out <- 1.0 // want "channel send in a compute path"
	x := <-v.in  // want "channel receive in a compute path"
	_ = x
	for y := range v.in { // want "range over a channel"
		_ = y
	}
}

// A select with a default clause never blocks and passes.
func (v *chanVertex) ComputePartition(pc *core.PartitionContext[float64]) {
	select {
	case x := <-v.in:
		_ = x
	default:
	}
	select {
	case v.out <- 2.0:
	default:
	}
}

// WaitGroup.Wait with no goroutines launched here waits on foreign work.
type wgVertex struct {
	wg sync.WaitGroup
}

func (v *wgVertex) Compute(ctx *core.Context[float64]) {
	v.wg.Wait() // want "launches no goroutines"
}

// A function that launches its own goroutines may join them (goroleak
// checks the join exists); the channel ops and Wait are the join.
type forkVertex struct{}

func (forkVertex) Compute(ctx *core.Context[float64]) {
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(done)
	}()
	wg.Wait()
	<-done
}

// Deliberate blocking is opted out with a reasoned allow.
type debugVertex struct{}

// Compute stalls on purpose.
//
//pregelvet:allow blockingcompute fault-injection fixture, stall is the test
func (debugVertex) Compute(ctx *core.Context[float64]) {
	time.Sleep(time.Second)
}

// Outside compute paths, blocking is unconstrained.
func freeFunc(ch chan int) int {
	time.Sleep(time.Millisecond)
	return <-ch
}
