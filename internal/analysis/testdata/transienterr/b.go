// Call-chain cases: the facts layer summarizes which helpers mint fresh
// unwrapped errors (MintsError, transitive), so retry paths are checked
// through helpers without annotating every frame.
package transienterr

import (
	"fmt"

	"pregelvetstub/cloud"
)

// newOpError mints a fresh unwrapped error: its summary poisons retry-path
// returns that forward its result.
func newOpError(op string) error {
	return fmt.Errorf("op %s failed", op)
}

// wrapCause preserves classification with %w: its summary is clean.
func wrapCause(op string, err error) error {
	return fmt.Errorf("op %s: %w", op, err)
}

// failFast forwards newOpError's result: minting is transitive.
func failFast() error {
	return newOpError("fast")
}

func chainStep() error { return nil }

func retryWithHelpers(p cloud.RetryPolicy) error {
	return p.Do(func() error {
		if err := chainStep(); err != nil {
			return wrapCause("step", err)
		}
		return newOpError("flush") // want "mints a fresh unclassified error"
	})
}

func retryTransitive(p cloud.RetryPolicy) error {
	return p.Do(func() error {
		return failFast() // want "mints a fresh unclassified error"
	})
}

// The terminal directive still declares a chain-minted failure deliberately
// non-retryable.
func retryTerminalChain(p cloud.RetryPolicy) error {
	return p.Do(func() error {
		//pregelvet:terminal malformed config is never retryable
		return newOpError("config")
	})
}
