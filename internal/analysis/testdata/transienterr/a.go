// Fixture for the transienterr analyzer: fresh errors on retry paths must
// wrap their cause or be declared terminal.
package transienterr

import (
	"errors"
	"fmt"

	"pregelvetstub/cloud"
)

//pregelvet:retrypath
func sendAnnotated(fail bool) error {
	if fail {
		return errors.New("socket reset") // want "fresh unclassified error"
	}
	return nil
}

//pregelvet:retrypath
func sendUnwrappedErrorf(to int, fail bool) error {
	if fail {
		return fmt.Errorf("send to %d failed", to) // want "fresh unclassified error"
	}
	return nil
}

//pregelvet:retrypath
func sendWrapped(cause error) error {
	if cause != nil {
		return fmt.Errorf("send: %w", cause)
	}
	return nil
}

//pregelvet:retrypath
func sendFlowThrough(op func() error) error {
	return op()
}

//pregelvet:retrypath
func sendTerminal(to int) error {
	if to < 0 {
		//pregelvet:terminal out-of-range peer is a caller bug, never retryable
		return fmt.Errorf("unknown worker %d", to)
	}
	return nil
}

//pregelvet:retrypath
func sendTransientWrap(fail bool) error {
	if fail {
		return fmt.Errorf("lease lost: %w", cloud.ErrTransient)
	}
	return nil
}

func retryClosure(p cloud.RetryPolicy, op func() error) error {
	return p.Do(func() error {
		if err := op(); err != nil {
			return fmt.Errorf("attempt failed: %v", err) // want "fresh unclassified error"
		}
		return nil
	})
}

func retryClosureClean(p cloud.RetryPolicy, op func() error) error {
	return p.Do(func() error { return op() })
}

func unannotatedIsFree(fail bool) error {
	if fail {
		return errors.New("not a retry path")
	}
	return nil
}
