package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package loading. The analyzers need fully typechecked syntax for every
// package in the module, which golang.org/x/tools/go/packages would normally
// provide; this loader reproduces the minimal subset on the standard
// library: `go list -deps -json` enumerates the import graph in dependency
// order, and each package (standard library included) is typechecked from
// source with go/types. CGO_ENABLED=0 keeps the file sets pure Go. A full
// module load typechecks in a few seconds and needs no network.

// A Unit is one typechecked package ready for analysis.
type Unit struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// A Loader typechecks packages on demand and caches results, so fixture
// tests can seed the standard library once and repo runs can load ./... in
// one shot. Methods are not safe for concurrent use.
type Loader struct {
	// Dir is the directory `go list` runs in (the module root).
	Dir string
	// Fset positions every file loaded through this loader.
	Fset *token.FileSet
	// Facts accumulates per-function summaries (facts.go) for every
	// non-standard package this loader typechecks, in dependency order, so
	// analyzers see callee facts across package boundaries.
	Facts *FactSet

	typed map[string]*types.Package
	// syntax and type info retained for non-standard packages only, so Load
	// can hand them back as units; the standard library keeps just the
	// *types.Package it exports.
	parsedFiles map[string][]*ast.File
	parsedInfo  map[string]*types.Info
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:         dir,
		Fset:        token.NewFileSet(),
		Facts:       NewFactSet(),
		typed:       make(map[string]*types.Package),
		parsedFiles: make(map[string][]*ast.File),
		parsedInfo:  make(map[string]*types.Info),
	}
}

// Typed returns the cached typechecked package for an import path, or nil.
func (l *Loader) Typed(path string) *types.Package { return l.typed[path] }

// Importer returns a types.Importer resolving against the loader's cache,
// including the standard library's vendored import paths.
func (l *Loader) Importer() types.Importer {
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if p, ok := l.typed[path]; ok {
			return p, nil
		}
		// Standard-library packages import their vendored copies of
		// golang.org/x/... by unvendored path.
		if p, ok := l.typed["vendor/"+path]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("package %q not loaded", path)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Load lists patterns with their full dependency graph, typechecks
// everything not already cached, and returns units for the non-standard
// (module-local) packages, in dependency order.
func (l *Loader) Load(patterns ...string) ([]*Unit, error) {
	args := append([]string{"list", "-deps", "-e",
		"-json=ImportPath,Dir,GoFiles,Standard,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var order []*listPackage
	for dec.More() {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		order = append(order, p)
	}
	var units []*Unit
	for _, p := range order {
		if p.ImportPath == "unsafe" {
			continue
		}
		if _, done := l.typed[p.ImportPath]; !done {
			if err := l.typecheck(p); err != nil {
				return nil, err
			}
		}
		if !p.Standard {
			units = append(units, l.unitFor(p))
		}
	}
	return units, nil
}

func (l *Loader) unitFor(p *listPackage) *Unit {
	return &Unit{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       l.Fset,
		Files:      l.parsedFiles[p.ImportPath],
		Pkg:        l.typed[p.ImportPath],
		Info:       l.parsedInfo[p.ImportPath],
	}
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// TypecheckFiles typechecks already-parsed files (positioned in l.Fset) as
// one package under importPath, resolving imports through the loader's
// cache, and registers the result so later packages can import it. Used by
// the fixture test harness for packages that live outside any module
// (testdata stubs and fixtures).
func (l *Loader) TypecheckFiles(importPath string, files []*ast.File) (*Unit, error) {
	var typeErrs []string
	conf := types.Config{
		Importer: l.Importer(),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if len(typeErrs) < 8 {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	info := NewInfo()
	pkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("typechecking %s:\n  %s", importPath, strings.Join(typeErrs, "\n  "))
	}
	l.typed[importPath] = pkg
	unit := &Unit{ImportPath: importPath, Fset: l.Fset, Files: files, Pkg: pkg, Info: info}
	l.Facts.AddUnit(unit)
	return unit, nil
}

func (l *Loader) typecheck(p *listPackage) error {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(p.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parsing %s: %v", p.ImportPath, err)
		}
		files = append(files, f)
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l.Importer(),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if len(typeErrs) < 8 {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	info := NewInfo()
	pkg, _ := conf.Check(p.ImportPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return fmt.Errorf("typechecking %s:\n  %s", p.ImportPath, strings.Join(typeErrs, "\n  "))
	}
	l.typed[p.ImportPath] = pkg
	if !p.Standard {
		l.parsedFiles[p.ImportPath] = files
		l.parsedInfo[p.ImportPath] = info
		// go list -deps yields dependencies first, so callee facts are
		// already present when their callers are summarized here.
		l.Facts.AddUnit(l.unitFor(p))
	}
	return nil
}
