package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// TransientErr enforces error classification on retry paths. The engine's
// fault tolerance hinges on cloud.IsTransient: an error that should have
// been retried but was not rolls a whole job back; an error minted fresh on
// a retry path (errors.New / fmt.Errorf without %w) silently discards the
// transient classification of its cause. Two contexts count as retry paths:
//
//   - function literals passed to cloud.RetryPolicy.Do, and
//   - functions whose doc comment carries //pregelvet:retrypath (the
//     substrate entry points the engine wraps in retries: transport Send,
//     blob and queue operations).
//
// Inside a retry path, a return whose error operand is a fresh unwrapped
// error is flagged unless the return line carries //pregelvet:terminal
// (declaring the failure deliberately non-retryable) or a generic ignore
// directive. The check follows wrapping through call chains via the facts
// layer (facts.go): returning the result of a helper whose summary says it
// mints fresh unwrapped errors on some path (MintsError, computed
// transitively in dependency order) is flagged at the retry-path return, so
// helpers no longer need a //pregelvet:retrypath annotation on every frame.
// Errors that genuinely flow through (identifiers, %w wraps, calls into
// wrapping helpers) are trusted to carry their classification.
var TransientErr = &Analyzer{
	Name: "transienterr",
	Doc:  "retry-path errors must preserve transient classification or be marked terminal",
	Run:  runTransientErr,
}

const (
	retryPathDirective = "pregelvet:retrypath"
	terminalDirective  = "pregelvet:terminal"
)

func runTransientErr(pass *Pass) {
	info := pass.TypesInfo
	terminal := terminalLines(pass)

	check := func(body *ast.BlockStmt) {
		inspectSkipFuncLit(body, func(n ast.Node) {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return
			}
			for _, res := range ret.Results {
				if !isErrorExpr(info, res) {
					continue
				}
				call, ok := ast.Unparen(res).(*ast.CallExpr)
				if !ok {
					continue
				}
				fn := calleeFunc(info, call)
				viaChain := ""
				switch {
				case isPkgFunc(fn, "errors", "New"):
				case isPkgFunc(fn, "fmt", "Errorf") && !errorfWraps(info, call):
				default:
					// Follow the call chain: a helper whose fact says it
					// mints fresh unwrapped errors poisons this return too.
					if f := pass.Facts.Of(fn); f != nil && f.MintsError {
						viaChain = f.MintPos
						break
					}
					continue
				}
				line := pass.Fset.Position(ret.Pos()).Line
				file := pass.Fset.Position(ret.Pos()).Filename
				if terminal[file] != nil && (terminal[file][line] || terminal[file][line-1]) {
					continue
				}
				if viaChain != "" {
					pass.Reportf(res.Pos(),
						"retry path returns an error from %s, which mints a fresh unclassified error at %s: wrap it with %%w here, fix the helper, or mark the return //pregelvet:terminal",
						fn.Name(), viaChain)
					continue
				}
				pass.Reportf(res.Pos(),
					"retry path returns a fresh unclassified error: wrap the cause with %%w so transient classification survives, or mark the return //pregelvet:terminal")
			}
		})
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasDirective(fd.Doc, retryPathDirective) {
				check(fd.Body)
			}
			// Function literals handed straight to RetryPolicy.Do.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Name() != "Do" || !pkgHasSuffix(fn.Pkg(), "cloud") {
					return true
				}
				for _, arg := range call.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						check(lit.Body)
					}
				}
				return true
			})
		}
	}
}

// terminalLines maps file -> lines carrying the terminal directive.
func terminalLines(pass *Pass) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for pos, text := range pass.CommentDirectives() {
		if strings.HasPrefix(text, terminalDirective) {
			if out[pos.Filename] == nil {
				out[pos.Filename] = make(map[int]bool)
			}
			out[pos.Filename][pos.Line] = true
		}
	}
	return out
}

func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), directive) {
			return true
		}
	}
	return false
}

// isErrorExpr reports whether e's static type is the error interface.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Identical(tv.Type, types.Universe.Lookup("error").Type())
}

// errorfWraps reports whether a fmt.Errorf call's constant format string
// contains a %w verb.
func errorfWraps(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return strings.Contains(constant.StringVal(tv.Value), "%w")
}
