package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder detects inconsistent mutex acquisition order inside one package.
// It scans every function linearly, tracking the set of locks held (sync
// Mutex/RWMutex Lock, RLock, Unlock, RUnlock, and deferred unlocks), and
// records an edge A -> B whenever B is acquired while A is held. Two locks
// acquired in both orders anywhere in the package are a latent deadlock the
// scheduler will eventually find — exactly the class of bug a chaos soak
// reproduces once a month and a static graph finds in milliseconds.
//
// Lock identity is structural: the receiver's named type plus the selector
// path with indexes erased (worker.inboxLocks means "some stripe"), so a
// self-edge on a striped lock array is reported only for genuinely nested
// acquisition of the same field. Local *sync.Mutex variables resolve through
// a single `v := &x.field` alias when one exists. Function literals are
// scanned as separate scopes — a callback does not hold its creator's locks.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutexes must be acquired in a consistent order across the package",
	Run:  runLockOrder,
}

// lockEdge is one observed "A held while acquiring B".
type lockEdge struct {
	from, to string
	pos      token.Pos
	fn       string
}

func runLockOrder(pass *Pass) {
	info := pass.TypesInfo
	edges := make(map[[2]string]lockEdge)

	for _, scope := range funcScopes(pass.Files) {
		aliases := lockAliases(info, scope)
		type lockOp struct {
			pos      token.Pos
			id       string
			acquire  bool
			deferred bool
		}
		var ops []lockOp
		deferredCalls := make(map[*ast.CallExpr]bool)
		inspectSkipFuncLit(scope.body, func(n ast.Node) {
			var call *ast.CallExpr
			deferred := false
			switch n := n.(type) {
			case *ast.DeferStmt:
				call, deferred = n.Call, true
				deferredCalls[call] = true
			case *ast.CallExpr:
				if deferredCalls[n] {
					return // already recorded via its DeferStmt
				}
				call = n
			default:
				return
			}
			method, recv := mutexMethod(info, call)
			if method == "" {
				return
			}
			id := lockIdentity(info, recv, aliases, scope.name)
			switch method {
			case "Lock", "RLock":
				ops = append(ops, lockOp{pos: call.Pos(), id: id, acquire: true, deferred: deferred})
			case "Unlock", "RUnlock":
				ops = append(ops, lockOp{pos: call.Pos(), id: id, acquire: false, deferred: deferred})
			}
		})
		sort.Slice(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })

		held := make(map[string]token.Pos)
		var order []string // acquisition order of currently held locks
		for _, op := range ops {
			if !op.acquire {
				if !op.deferred { // deferred unlocks release at return, not here
					delete(held, op.id)
					for i, h := range order {
						if h == op.id {
							order = append(order[:i], order[i+1:]...)
							break
						}
					}
				}
				continue
			}
			for _, h := range order {
				key := [2]string{h, op.id}
				if _, seen := edges[key]; !seen {
					edges[key] = lockEdge{from: h, to: op.id, pos: op.pos, fn: scope.name}
				}
			}
			if _, dup := held[op.id]; !dup {
				held[op.id] = op.pos
				order = append(order, op.id)
			} else {
				// Nested acquisition of the same identity: immediate report.
				pass.Reportf(op.pos, "%s acquired while already held in %s (self-deadlock on a non-reentrant mutex)", op.id, scope.name)
			}
		}
	}

	// Any 2-cycle (or longer, found pairwise through transitive closure of
	// 2-cycles being the dominant real-world case) is an ordering violation.
	reported := make(map[[2]string]bool)
	var keys [][2]string
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i][0]+"\x00"+keys[i][1] < keys[j][0]+"\x00"+keys[j][1]
	})
	for _, k := range keys {
		e := edges[k]
		rev, ok := edges[[2]string{e.to, e.from}]
		if !ok || e.from == e.to {
			continue
		}
		pair := [2]string{e.from, e.to}
		if pair[0] > pair[1] {
			pair[0], pair[1] = pair[1], pair[0]
		}
		if reported[pair] {
			continue
		}
		reported[pair] = true
		pass.Reportf(e.pos,
			"inconsistent lock order: %s -> %s here (in %s), but %s -> %s in %s at %s — pick one order or a deadlock is schedulable",
			e.from, e.to, e.fn, rev.from, rev.to, rev.fn, pass.Fset.Position(rev.pos))
	}
}

// mutexMethod returns the method name and receiver expression when call is
// a sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock.
func mutexMethod(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", nil
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return fn.Name(), sel.X
	}
	return "", nil
}

// lockAliases maps local mutex-pointer variables to the expression they
// alias, through single `v := &expr` / `v := expr` assignments.
func lockAliases(info *types.Info, scope funcScope) map[types.Object]ast.Expr {
	out := make(map[types.Object]ast.Expr)
	inspectSkipFuncLit(scope.body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := objOfIdent(info, id)
			if obj == nil || !isMutexType(obj.Type()) {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
				rhs = u.X
			}
			if _, dup := out[obj]; dup {
				out[obj] = nil // multiple assignments: ambiguous, keep local identity
			} else {
				out[obj] = rhs
			}
		}
	})
	return out
}

func isMutexType(t types.Type) bool {
	return namedIn(t, "sync", "Mutex") || namedIn(t, "sync", "RWMutex")
}

// lockIdentity renders a stable structural name for the locked expression:
// receiver type + field path, indexes erased.
func lockIdentity(info *types.Info, e ast.Expr, aliases map[types.Object]ast.Expr, fnName string) string {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if obj := objOfIdent(info, id); obj != nil {
			if target, ok := aliases[obj]; ok && target != nil {
				return lockIdentity(info, target, nil, fnName)
			}
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name() // package-level mutex
			}
			if !isMutexType(obj.Type()) {
				// Receiver with an embedded mutex: anchor on the struct type.
				return rootTypeName(info, e) + ".Mutex"
			}
			// A local variable with no known alias: identity is scoped to
			// the function so unrelated locals never collide.
			return fnName + ":" + obj.Name()
		}
		return fnName + ":" + id.Name
	}
	var parts []string
	root := e
	for {
		switch cur := ast.Unparen(root).(type) {
		case *ast.SelectorExpr:
			parts = append([]string{cur.Sel.Name}, parts...)
			root = cur.X
		case *ast.IndexExpr:
			root = cur.X // erase the index: any stripe, same identity
		case *ast.StarExpr:
			root = cur.X
		default:
			return rootTypeName(info, root) + "." + strings.Join(parts, ".")
		}
	}
}

// rootTypeName names the type anchoring a lock path (the receiver struct).
func rootTypeName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return fmt.Sprintf("%T", e)
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	for {
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name()
		}
		if sl, ok := t.(*types.Slice); ok {
			t = sl.Elem()
			continue
		}
		if ar, ok := t.(*types.Array); ok {
			t = ar.Elem()
			continue
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		return t.String()
	}
}
