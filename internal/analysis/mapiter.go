package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter certifies determinism of map iteration in superstep compute paths.
// Go randomizes map iteration order per range statement, so a Compute,
// ComputePartition, or Combine body (or anything in an algorithms package)
// that ranges over a map and, inside that loop, sends messages, updates an
// aggregator, or accumulates floating-point state produces run-dependent
// results: message order feeds combiners and float sums are not
// associative, so the recovery replay and the original run diverge
// bit-for-bit even with identical inputs. Flagged: a range over a map whose
// body reaches
//
//   - Context/PartitionContext.Send or SendToNeighbors (message order),
//   - Context/PartitionContext.Aggregate (aggregator fold order), or
//   - a floating-point accumulation (x += v, x = x + v and friends).
//
// The sanctioned idiom is to collect the keys, sort them, and range over
// the sorted slice — that loop is not a map range and passes untouched. A
// loop whose order provably cannot matter (integer max, set union) is opted
// out with //pregelvet:allow mapiter <reason> on the function, or per line
// with //pregelvet:ignore mapiter.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "map iteration order must not influence messages, aggregates, or float accumulation in compute paths",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) {
	info := pass.TypesInfo
	for _, fd := range computePathFuncs(pass) {
		if hasAllow(fd.Doc, "mapiter") {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if what := orderSensitiveWork(info, rs); what != "" {
				pass.Reportf(rs.Pos(),
					"range over a map in a compute path with %s in the body: iteration order changes run to run, so recovery replay diverges; iterate sorted keys, or annotate //pregelvet:allow mapiter with why order cannot matter",
					what)
			}
			return true
		})
	}
}

// orderSensitiveWork scans a map-range body for work whose result depends on
// iteration order, returning a label for the first kind found ("" if none).
func orderSensitiveWork(info *types.Info, rs *ast.RangeStmt) string {
	what := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil || !recvNamedContext(fn) {
				return true
			}
			switch fn.Name() {
			case "Send", "SendToNeighbors":
				what = "message sends"
			case "Aggregate":
				what = "aggregator updates"
			}
		case *ast.AssignStmt:
			if floatAccum(info, n) {
				what = "floating-point accumulation"
			}
		}
		return true
	})
	return what
}

// floatAccum reports whether as accumulates into a float: x += v (and -=,
// *=, /=), or x = x <op> v where x reappears on the right.
func floatAccum(info *types.Info, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return len(as.Lhs) == 1 && isFloatExpr(info, as.Lhs[0])
	case token.ASSIGN:
	default:
		return false
	}
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 || !isFloatExpr(info, as.Lhs[0]) {
		return false
	}
	bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	// The accumulator must reappear on the right: match a plain variable by
	// object, or a one-level selector (s.total) by base object + field name.
	var match func(n ast.Node) bool
	switch lhs := ast.Unparen(as.Lhs[0]).(type) {
	case *ast.Ident:
		obj := objOfIdent(info, lhs)
		if obj == nil {
			return false
		}
		match = func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			return ok && objOfIdent(info, id) == obj
		}
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(lhs.X).(*ast.Ident)
		if !ok {
			return false
		}
		obj := objOfIdent(info, base)
		if obj == nil {
			return false
		}
		match = func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != lhs.Sel.Name {
				return false
			}
			b, ok := ast.Unparen(sel.X).(*ast.Ident)
			return ok && objOfIdent(info, b) == obj
		}
	default:
		return false
	}
	found := false
	ast.Inspect(bin, func(n ast.Node) bool {
		if match(n) {
			found = true
		}
		return !found
	})
	return found
}

// isFloatExpr reports whether e's static type is a floating-point kind.
func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
