package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TraceNil enforces the nil-safe observability facade. Every method on
// *observe.Tracer and *observe.Metrics is a no-op on a nil receiver — that
// is the whole design: instrumented hot paths never branch on "is tracing
// on". Code outside internal/observe therefore must not:
//
//   - compare a tracer or metrics pointer against nil (use Enabled(), or
//     just call through — the facade absorbs nil), or
//   - reach into exported fields of the observe types directly, bypassing
//     the nil guard the methods provide.
//
// Raw nil comparisons are how gaps creep in: a `t != nil` branch copied
// around three call sites becomes a forgotten one at the fourth, and the
// fourth is the one that panics in a traced production run.
var TraceNil = &Analyzer{
	Name: "tracenil",
	Doc:  "tracer/metrics access must go through the nil-safe facade",
	Run:  runTraceNil,
}

func runTraceNil(pass *Pass) {
	if pkgHasSuffix(pass.Pkg, "observe") {
		return
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					other := n.X
					if side == n.X {
						other = n.Y
					}
					if !isNilExpr(info, other) {
						continue
					}
					if name := observeFacadeType(info, side); name != "" {
						pass.Reportf(n.Pos(),
							"raw nil comparison of *observe.%s: use %s.Enabled() — the facade is nil-safe and ad-hoc nil checks drift out of sync",
							name, exprText(side))
					}
				}
			case *ast.SelectorExpr:
				sel, ok := info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				if name := observeFacadeType(info, n.X); name != "" {
					pass.Reportf(n.Pos(),
						"direct field access on observe.%s bypasses the nil-safe facade; add or use a method on the observe type", name)
				}
			}
			return true
		})
	}
}

// observeFacadeType returns "Tracer" or "Metrics" when e's type is (a
// pointer to) one of the observe facade types, else "".
func observeFacadeType(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	for _, name := range [...]string{"Tracer", "Metrics"} {
		if namedIn(tv.Type, "observe", name) {
			return name
		}
	}
	return ""
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// exprText renders a short expression for diagnostics.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	default:
		return "it"
	}
}
