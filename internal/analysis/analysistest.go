package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Fixture harness, modeled on golang.org/x/tools/go/analysis/analysistest:
// each analyzer has a directory of Go files under testdata/<name> whose
// offending lines carry `// want "regexp"` comments. The harness typechecks
// the fixture (resolving stub packages from testdata/src and the standard
// library through the loader), runs the analyzer, and requires an exact
// match between diagnostics and want annotations — a missing diagnostic and
// an unexpected one are both failures, so every analyzer keeps at least one
// firing and one passing case honest.

// stubPrefix marks fixture imports resolved from testdata/src instead of
// the module or standard library.
const stubPrefix = "pregelvetstub/"

// FixtureResult reports the mismatches from one fixture run, empty on
// success. Returned rather than asserted so the _test files stay trivial.
type FixtureResult struct {
	// Unmatched diagnostics: reported but no want comment matched.
	Unexpected []Diagnostic
	// Unmatched wants, as "file:line: pattern".
	Missing []string
}

// RunFixture loads testdata/<fixture>, applies the analyzer, and matches
// diagnostics against want comments. The loader is shared across calls so
// the standard library typechecks once per test binary.
func RunFixture(l *Loader, a *Analyzer, fixtureDir string) (*FixtureResult, error) {
	fixtureFiles, err := parseDir(l, fixtureDir)
	if err != nil {
		return nil, err
	}

	// Resolve imports depth-first: stubs parse from testdata/src (recorded
	// post-order, dependencies first), everything else is standard library.
	var stdPaths []string
	type stub struct {
		path  string
		files []*ast.File
	}
	var stubOrder []stub
	seenStubs := map[string]bool{}
	var resolve func(files []*ast.File) error
	resolve = func(files []*ast.File) error {
		for _, f := range files {
			for _, imp := range f.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				if !strings.HasPrefix(path, stubPrefix) {
					stdPaths = append(stdPaths, path)
					continue
				}
				if seenStubs[path] || l.Typed(path) != nil {
					continue
				}
				seenStubs[path] = true
				stubDir := filepath.Join(filepath.Dir(fixtureDir), "src", filepath.FromSlash(path))
				stubFiles, err := parseDir(l, stubDir)
				if err != nil {
					return fmt.Errorf("stub %s: %w", path, err)
				}
				if err := resolve(stubFiles); err != nil {
					return err
				}
				stubOrder = append(stubOrder, stub{path, stubFiles})
			}
		}
		return nil
	}
	if err := resolve(fixtureFiles); err != nil {
		return nil, err
	}
	if len(stdPaths) > 0 {
		sort.Strings(stdPaths)
		stdPaths = uniq(stdPaths)
		if _, err := l.Load(stdPaths...); err != nil {
			return nil, err
		}
	}
	for _, s := range stubOrder {
		if _, err := l.TypecheckFiles(s.path, s.files); err != nil {
			return nil, err
		}
	}

	unit, err := l.TypecheckFiles("fixture/"+filepath.Base(fixtureDir), fixtureFiles)
	if err != nil {
		return nil, err
	}
	// l.Facts already covers the stubs (TypecheckFiles summarizes each
	// package as it loads) and the fixture itself, so cross-package fact
	// propagation is exercised exactly as in a module run.
	diags := RunAnalyzers([]*Unit{unit}, []*Analyzer{a}, l.Facts)
	return matchWants(l, fixtureFiles, diags)
}

// parseDir parses every .go file in dir into the loader's FileSet.
func parseDir(l *Loader, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

// matchWants pairs diagnostics with want annotations line by line.
func matchWants(l *Loader, files []*ast.File, diags []Diagnostic) (*FixtureResult, error) {
	type wantKey struct {
		file string
		line int
	}
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				for _, quoted := range splitQuoted(m[1]) {
					pattern, err := strconv.Unquote(quoted)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, quoted, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					key := wantKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	res := &FixtureResult{}
	for _, d := range diags {
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[key] {
			if re != nil && re.MatchString(d.Message) {
				wants[key][i] = nil // consume
				matched = true
				break
			}
		}
		if !matched {
			res.Unexpected = append(res.Unexpected, d)
		}
	}
	var keys []wantKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			if re != nil {
				res.Missing = append(res.Missing,
					fmt.Sprintf("%s:%d: expected diagnostic matching %q", k.file, k.line, re))
			}
		}
	}
	return res, nil
}

// splitQuoted extracts the double-quoted segments of a want comment tail.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		rest := s[start+1:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return out
		}
		out = append(out, s[start:start+end+2])
		s = rest[end+1:]
	}
}

func uniq(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
