package analysis

import (
	"go/ast"
	"go/types"
)

// MsgLog enforces the message log's replay ownership contract: the payload a
// MessageLog.Replay callback receives is a view of log-owned memory (live
// entries sit in pooled buffers the log recycles; spilled entries are
// sliced out of a reloaded segment). The callback must copy the bytes it
// forwards and must never hand the view to the transport pool. Flagged:
//
//   - transport.PutPayload(payload) on a Replay-callback parameter — the
//     log still owns that buffer and will double-free or recycle it under a
//     later Append;
//   - storing the parameter directly into a Payload field (b.Payload =
//     payload, or a Batch literal) — the batch outlives the callback, so
//     the send pipeline would release log-owned memory to the pool.
//
// Copying is the sanctioned idiom: append(transport.GetPayload(len(p)),
// p...). Suppress a deliberate violation with //pregelvet:ignore msglog.
var MsgLog = &Analyzer{
	Name: "msglog",
	Doc:  "MessageLog.Replay callbacks receive log-owned payload views and must copy, never release or retain them",
	Run:  runMsgLog,
}

func runMsgLog(pass *Pass) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isReplayCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				for _, param := range payloadParams(info, lit) {
					checkReplayParam(pass, lit, param)
				}
			}
			return true
		})
	}
}

// isReplayCall reports whether call invokes MessageLog.Replay from a
// transport-suffixed package.
func isReplayCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Replay" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedIn(sig.Recv().Type(), "transport", "MessageLog")
}

// payloadParams returns the []byte parameters of a callback literal — the
// log-owned views whose ownership the contract restricts.
func payloadParams(info *types.Info, lit *ast.FuncLit) []types.Object {
	var out []types.Object
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			obj := objOfIdent(info, name)
			if obj == nil {
				continue
			}
			if slice, ok := obj.Type().Underlying().(*types.Slice); ok {
				if basic, ok := slice.Elem().(*types.Basic); ok && basic.Kind() == types.Byte {
					out = append(out, obj)
				}
			}
		}
	}
	return out
}

// checkReplayParam flags each use of the payload parameter that releases it
// to the pool or stores the view into a Payload field.
func checkReplayParam(pass *Pass, lit *ast.FuncLit, param types.Object) {
	info := pass.TypesInfo
	parents := parentMap(lit.Body)
	for _, use := range usesOf(lit.Body, info, param) {
		switch p := parents[use].(type) {
		case *ast.CallExpr:
			if len(p.Args) == 1 && ast.Unparen(p.Args[0]) == ast.Expr(use) &&
				isPkgFunc(calleeFunc(info, p), "transport", "PutPayload") {
				pass.Reportf(use.Pos(),
					"%s is a log-owned view handed to a MessageLog.Replay callback; releasing it with PutPayload corrupts the log (copy the bytes instead)",
					param.Name())
			}
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if ast.Unparen(rhs) != ast.Expr(use) || i >= len(p.Lhs) {
					continue
				}
				if sel, ok := p.Lhs[i].(*ast.SelectorExpr); ok && sel.Sel.Name == "Payload" {
					pass.Reportf(use.Pos(),
						"%s is a log-owned view handed to a MessageLog.Replay callback; storing it into a Payload field retains log memory past the callback (copy into a fresh GetPayload buffer)",
						param.Name())
				}
			}
		case *ast.KeyValueExpr:
			if key, ok := p.Key.(*ast.Ident); ok && key.Name == "Payload" && ast.Unparen(p.Value) == ast.Expr(use) {
				pass.Reportf(use.Pos(),
					"%s is a log-owned view handed to a MessageLog.Replay callback; a Batch literal retaining it outlives the callback (copy into a fresh GetPayload buffer)",
					param.Name())
			}
		}
	}
}
