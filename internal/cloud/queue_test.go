package cloud

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestQueuePutGetDelete(t *testing.T) {
	q := NewQueue("test")
	q.Put([]byte("hello"))
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	msg := q.Get(time.Minute)
	if msg == nil {
		t.Fatal("Get returned nil")
	}
	if string(msg.Body) != "hello" {
		t.Errorf("body = %q", msg.Body)
	}
	if msg.DequeueCount != 1 {
		t.Errorf("dequeue count = %d", msg.DequeueCount)
	}
	// Leased message is invisible.
	if q.Get(time.Minute) != nil {
		t.Error("second Get should return nil while leased")
	}
	if err := q.Delete(msg.ID); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 0 {
		t.Errorf("Len after delete = %d", q.Len())
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue("fifo")
	for i := 0; i < 5; i++ {
		q.Put([]byte{byte(i)})
	}
	for i := 0; i < 5; i++ {
		msg := q.Get(time.Minute)
		if msg == nil || msg.Body[0] != byte(i) {
			t.Fatalf("message %d out of order", i)
		}
		if err := q.Delete(msg.ID); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueueVisibilityTimeout(t *testing.T) {
	q := NewQueue("vis")
	q.Put([]byte("x"))
	msg := q.Get(5 * time.Millisecond)
	if msg == nil {
		t.Fatal("expected message")
	}
	time.Sleep(10 * time.Millisecond)
	// Lease expired: the message is visible again with a higher count.
	msg2 := q.Get(time.Minute)
	if msg2 == nil {
		t.Fatal("message not redelivered after lease expiry")
	}
	if msg2.DequeueCount != 2 {
		t.Errorf("dequeue count = %d, want 2", msg2.DequeueCount)
	}
	// Deleting via the stale first lease now fails.
	if err := q.Delete(msg.ID); err == nil {
		// Note: same ID, so this actually deletes the re-lease. That is
		// Azure-like pop-receipt behaviour simplified to IDs; accept both.
		t.Log("delete with stale lease succeeded (simplified receipt model)")
	}
}

func TestQueueBodyIsCopied(t *testing.T) {
	q := NewQueue("copy")
	body := []byte("abc")
	q.Put(body)
	body[0] = 'X'
	msg := q.Get(time.Minute)
	if string(msg.Body) != "abc" {
		t.Errorf("queue aliased caller's buffer: %q", msg.Body)
	}
}

func TestQueueGetWait(t *testing.T) {
	q := NewQueue("wait")
	start := time.Now()
	go func() {
		time.Sleep(20 * time.Millisecond)
		q.Put([]byte("late"))
	}()
	msg := q.GetWait(time.Minute, time.Second)
	if msg == nil {
		t.Fatal("GetWait timed out")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("GetWait returned too early: %v", elapsed)
	}
}

func TestQueueGetWaitTimeout(t *testing.T) {
	q := NewQueue("timeout")
	if msg := q.GetWait(time.Minute, 10*time.Millisecond); msg != nil {
		t.Error("expected nil on timeout")
	}
}

func TestQueueCloseUnblocks(t *testing.T) {
	q := NewQueue("close")
	done := make(chan bool)
	go func() {
		q.GetWait(time.Minute, 10*time.Second)
		done <- true
	}()
	time.Sleep(5 * time.Millisecond)
	q.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("GetWait did not unblock on Close")
	}
}

func TestQueueDeleteUnknown(t *testing.T) {
	q := NewQueue("unk")
	if err := q.Delete(42); err == nil {
		t.Error("expected error deleting unknown lease")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue("conc")
	const producers, perProducer = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Put([]byte(fmt.Sprintf("%d-%d", p, i)))
			}
		}(p)
	}
	received := make(chan string, producers*perProducer)
	var cg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				msg := q.GetWait(time.Minute, 100*time.Millisecond)
				if msg == nil {
					return
				}
				if err := q.Delete(msg.ID); err != nil {
					t.Error(err)
				}
				received <- string(msg.Body)
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	close(received)
	seen := make(map[string]bool)
	for s := range received {
		if seen[s] {
			t.Errorf("duplicate delivery %q", s)
		}
		seen[s] = true
	}
	if len(seen) != producers*perProducer {
		t.Errorf("received %d unique, want %d", len(seen), producers*perProducer)
	}
}

func TestQueueService(t *testing.T) {
	s := NewQueueService()
	a := s.Queue("a")
	if s.Queue("a") != a {
		t.Error("Queue not memoized")
	}
	if s.Queue("b") == a {
		t.Error("distinct names should give distinct queues")
	}
	s.CloseAll()
	a.Put([]byte("dropped"))
	if a.Len() != 0 {
		t.Error("Put after close should be dropped")
	}
}

func TestQueueDeleteAfterExpiryErrors(t *testing.T) {
	q := NewQueue("expired-del")
	q.Put([]byte("x"))
	msg := q.Get(2 * time.Millisecond)
	if msg == nil {
		t.Fatal("expected message")
	}
	time.Sleep(5 * time.Millisecond)
	// The visibility timeout has passed: the ack must fail and the message
	// must be visible again for another consumer (at-least-once semantics).
	if err := q.Delete(msg.ID); err == nil {
		t.Error("Delete after lease expiry should error")
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1 (message redelivered)", q.Len())
	}
}

func TestQueueGetWaitRedeliversExpiredLease(t *testing.T) {
	q := NewQueue("redeliver")
	q.Put([]byte("x"))
	// Lease with a tiny visibility and never delete it.
	first := q.Get(2 * time.Millisecond)
	if first == nil {
		t.Fatal("expected first lease")
	}
	// A waiting consumer must receive the redelivery once the lease expires.
	second := q.GetWait(time.Minute, 2*time.Second)
	if second == nil {
		t.Fatal("expired lease was not redelivered to waiting consumer")
	}
	if second.DequeueCount != 2 {
		t.Errorf("dequeue count = %d, want 2", second.DequeueCount)
	}
}

func TestQueueStats(t *testing.T) {
	q := NewQueue("stats")
	q.Put([]byte("a"))
	q.Put([]byte("b"))
	time.Sleep(2 * time.Millisecond)
	st := q.Stats()
	if st.Name != "stats" || st.Depth != 2 || st.Leased != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Puts != 2 || st.Gets != 0 {
		t.Errorf("puts/gets = %d/%d", st.Puts, st.Gets)
	}
	if st.OldestAge <= 0 {
		t.Error("oldest age should be positive with visible messages")
	}

	msg := q.Get(time.Minute)
	st = q.Stats()
	if st.Depth != 1 || st.Leased != 1 || st.Gets != 1 {
		t.Errorf("after lease: %+v", st)
	}
	if err := q.Delete(msg.ID); err != nil {
		t.Fatal(err)
	}

	// Expire a lease and confirm it counts as a redelivery.
	q.Get(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	st = q.Stats()
	if st.Redeliveries != 1 {
		t.Errorf("redeliveries = %d, want 1", st.Redeliveries)
	}
	if st.Depth != 1 || st.Leased != 0 {
		t.Errorf("after redelivery: %+v", st)
	}
}

func TestQueueStatsEmptyQueue(t *testing.T) {
	st := NewQueue("empty").Stats()
	if st.Depth != 0 || st.OldestAge != 0 || st.Puts != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestQueueServiceStats(t *testing.T) {
	s := NewQueueService()
	s.Queue("a").Put([]byte("x"))
	s.Queue("b")
	stats := s.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats for %d queues, want 2", len(stats))
	}
	if stats["a"].Depth != 1 || stats["b"].Depth != 0 {
		t.Errorf("stats = %+v", stats)
	}
}
