// Package cloud simulates the public-cloud substrate the paper runs on:
// Azure-style reliable queues (the BSP control plane), a blob store (graph
// staging), a VM fabric with instance specs and pay-per-use cost metering,
// and a deterministic cost model that converts per-superstep resource usage
// into simulated time — including virtual-memory thrash beyond the physical
// memory ceiling and barrier-synchronization overhead that grows with the
// number of workers.
package cloud

import (
	"fmt"
	"sync"
	"time"
)

// QueueMessage is a message leased from a Queue. Azure queue semantics:
// getting a message hides it for a visibility timeout; it must be deleted
// before the timeout or it becomes visible again (at-least-once delivery).
type QueueMessage struct {
	ID           uint64
	Body         []byte
	DequeueCount int

	enqueued    time.Time
	leaseExpiry time.Time
}

// QueueStats is a point-in-time snapshot of one queue's health, the raw
// material for the /metrics depth and age gauges.
type QueueStats struct {
	// Name is the queue's name within its service.
	Name string
	// Depth is the number of currently visible (deliverable) messages.
	Depth int
	// Leased is the number of messages currently hidden by a lease.
	Leased int
	// OldestAge is the age of the oldest visible message (0 when empty) —
	// a growing value means consumers are stalled.
	OldestAge time.Duration
	// Puts and Gets count successful enqueues (including chaos duplicates)
	// and granted leases over the queue's lifetime.
	Puts, Gets uint64
	// Redeliveries counts messages whose visibility timeout lapsed and were
	// returned to the visible set — each one is an at-least-once redelivery
	// the consumer had to dedupe.
	Redeliveries uint64
}

// Queue is a reliable in-memory queue with visibility-timeout semantics,
// mirroring Azure Storage queues which the paper uses for job submission,
// superstep tokens, and barrier check-ins.
type Queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	name    string
	chaos   *Chaos
	nextID  uint64
	visible []*QueueMessage
	leased  map[uint64]*QueueMessage
	closed  bool

	puts, gets, redeliveries uint64
}

// NewQueue creates an empty queue with the given name.
func NewQueue(name string) *Queue {
	q := &Queue{name: name, leased: make(map[uint64]*QueueMessage)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// SetChaos installs a fault injector (nil removes it): Put may enqueue
// duplicates and leases may expire immediately, exercising the at-least-once
// delivery semantics consumers must already tolerate.
func (q *Queue) SetChaos(c *Chaos) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.chaos = c
}

// Put enqueues a message body. The body is copied. Under chaos the message
// may be enqueued twice (at-least-once duplicate delivery).
func (q *Queue) Put(body []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	copies := 1
	if q.chaos.QueueDuplicate(q.name) {
		copies = 2
	}
	now := time.Now()
	for i := 0; i < copies; i++ {
		q.nextID++
		msg := &QueueMessage{ID: q.nextID, Body: append([]byte(nil), body...), enqueued: now}
		q.visible = append(q.visible, msg)
		q.puts++
		q.cond.Signal()
	}
}

// Get leases the next visible message for the given visibility timeout.
// It returns nil immediately if no message is visible (after reclaiming any
// expired leases).
func (q *Queue) Get(visibility time.Duration) *QueueMessage {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reclaimExpiredLocked(time.Now())
	return q.leaseLocked(visibility)
}

// GetWait leases the next visible message, blocking up to maxWait for one to
// arrive. Returns nil on timeout or if the queue is closed. The wait is a
// condition-variable sleep (woken by Put and Close) backed by a timer for
// the earlier of the caller's deadline and the next lease expiry, so expired
// leases are redelivered to waiting consumers without busy-polling.
func (q *Queue) GetWait(visibility, maxWait time.Duration) *QueueMessage {
	deadline := time.Now().Add(maxWait)
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		now := time.Now()
		q.reclaimExpiredLocked(now)
		if msg := q.leaseLocked(visibility); msg != nil {
			return msg
		}
		if q.closed || !now.Before(deadline) {
			return nil
		}
		wake := deadline
		if e, ok := q.earliestLeaseExpiryLocked(); ok && e.Before(wake) {
			wake = e
		}
		// The timer callback takes q.mu before broadcasting; since we hold
		// q.mu until cond.Wait releases it, the wakeup cannot be lost even if
		// the timer fires immediately.
		t := time.AfterFunc(time.Until(wake)+time.Millisecond, func() {
			q.mu.Lock()
			q.cond.Broadcast()
			q.mu.Unlock()
		})
		q.cond.Wait()
		t.Stop()
	}
}

func (q *Queue) leaseLocked(visibility time.Duration) *QueueMessage {
	if len(q.visible) == 0 {
		return nil
	}
	if q.chaos.LeaseExpiresEarly(q.name) {
		// The lease is granted but expires immediately: the next reclaim
		// redelivers the message and the original consumer's Delete fails,
		// as when a real consumer outlives its visibility timeout.
		visibility = 0
	}
	msg := q.visible[0]
	q.visible = q.visible[1:]
	msg.DequeueCount++
	msg.leaseExpiry = time.Now().Add(visibility)
	q.leased[msg.ID] = msg
	q.gets++
	return msg
}

// earliestLeaseExpiryLocked returns the soonest lease expiry, if any lease
// is outstanding.
func (q *Queue) earliestLeaseExpiryLocked() (time.Time, bool) {
	var earliest time.Time
	found := false
	for _, msg := range q.leased {
		if !found || msg.leaseExpiry.Before(earliest) {
			earliest = msg.leaseExpiry
			found = true
		}
	}
	return earliest, found
}

func (q *Queue) reclaimExpiredLocked(now time.Time) {
	for id, msg := range q.leased {
		if now.After(msg.leaseExpiry) {
			delete(q.leased, id)
			q.visible = append(q.visible, msg)
			q.redeliveries++
			q.cond.Signal()
		}
	}
}

// Delete acknowledges a leased message, removing it permanently. Deleting an
// unknown or already-expired lease returns an error, matching the cloud API:
// expired leases are reclaimed first, so acknowledging a message after its
// visibility timeout fails and the message is redelivered to someone else.
func (q *Queue) Delete(id uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reclaimExpiredLocked(time.Now())
	if _, ok := q.leased[id]; !ok {
		return fmt.Errorf("cloud: queue %q: delete of unleased message %d", q.name, id)
	}
	delete(q.leased, id)
	return nil
}

// Len returns the number of currently visible messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reclaimExpiredLocked(time.Now())
	return len(q.visible)
}

// Stats snapshots the queue's current depth, lease count, oldest visible
// message age, and lifetime put/get/redelivery counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now()
	q.reclaimExpiredLocked(now)
	st := QueueStats{
		Name: q.name, Depth: len(q.visible), Leased: len(q.leased),
		Puts: q.puts, Gets: q.gets, Redeliveries: q.redeliveries,
	}
	for _, msg := range q.visible {
		if age := now.Sub(msg.enqueued); age > st.OldestAge {
			st.OldestAge = age
		}
	}
	return st
}

// Close wakes all blocked consumers; subsequent Puts are dropped.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// QueueService is a namespace of queues, like an Azure storage account.
type QueueService struct {
	mu     sync.Mutex
	chaos  *Chaos
	queues map[string]*Queue
}

// NewQueueService creates an empty queue namespace.
func NewQueueService() *QueueService {
	return &QueueService{queues: make(map[string]*Queue)}
}

// SetChaos installs a fault injector on every queue in the namespace,
// including queues created later.
func (s *QueueService) SetChaos(c *Chaos) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chaos = c
	for _, q := range s.queues {
		q.SetChaos(c)
	}
}

// Queue returns the named queue, creating it on first use.
func (s *QueueService) Queue(name string) *Queue {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		q = NewQueue(name)
		q.SetChaos(s.chaos)
		s.queues[name] = q
	}
	return q
}

// Stats snapshots every queue in the namespace, keyed by queue name. Safe to
// call from a metrics scrape while a job is running.
func (s *QueueService) Stats() map[string]QueueStats {
	s.mu.Lock()
	queues := make([]*Queue, 0, len(s.queues))
	for _, q := range s.queues {
		queues = append(queues, q)
	}
	s.mu.Unlock()
	out := make(map[string]QueueStats, len(queues))
	for _, q := range queues {
		out[q.Name()] = q.Stats()
	}
	return out
}

// CloseAll closes every queue in the namespace.
func (s *QueueService) CloseAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, q := range s.queues {
		q.Close()
	}
}
