package cloud

import (
	"fmt"
	"sync"
)

// VMSpec describes a virtual machine instance type. The paper uses Azure
// "large" instances (4 cores at 1.6 GHz, 7 GB RAM, 400 Mbps, $0.48/hr) for
// partition workers and "small" ones (exactly a fourth of each) for the
// manager and web roles.
type VMSpec struct {
	Name string
	// Cores is the number of CPU cores; vertex compute and message
	// serialization parallelize across them.
	Cores int
	// MemoryBytes is the physical memory ceiling. Buffered messages beyond
	// it spill to virtual memory (thrash); far beyond it the cloud fabric
	// restarts the VM (job failure).
	MemoryBytes int64
	// NetworkBps is the per-VM network bandwidth in bytes per second.
	NetworkBps float64
	// ComputeOpsPerSec is per-core compute throughput in abstract vertex
	// operations per second (one op ≈ processing or emitting one message).
	ComputeOpsPerSec float64
	// SerializeBytesPerSec is per-core message (de)serialization throughput.
	// The paper notes framework CPU time for message delivery is comparable
	// to user compute.
	SerializeBytesPerSec float64
	// CostPerHour is the pay-as-you-go price of one instance.
	CostPerHour float64
}

// LargeVM mirrors the paper's Azure large instance (4 cores, 7 GB,
// $0.48/hr). The abstract throughput rates are calibrated so that the
// library's ~100x-scaled dataset analogs exercise the same regimes —
// peak supersteps dominating control-plane overheads, network comparable to
// serialization — that full-size graphs exercise on the real hardware.
// Experiments typically shrink the memory ceiling via WithMemory so scaled
// graphs reproduce the paper's memory pressure.
func LargeVM() VMSpec {
	return VMSpec{
		Name:                 "large",
		Cores:                4,
		MemoryBytes:          7 << 30, // 7 GB
		NetworkBps:           12.5e6,
		ComputeOpsPerSec:     5e5,
		SerializeBytesPerSec: 10e6,
		CostPerHour:          0.48,
	}
}

// SmallVM is exactly a fourth of a large VM, as on Azure.
func SmallVM() VMSpec {
	l := LargeVM()
	return VMSpec{
		Name:                 "small",
		Cores:                l.Cores / 4,
		MemoryBytes:          l.MemoryBytes / 4,
		NetworkBps:           l.NetworkBps / 4,
		ComputeOpsPerSec:     l.ComputeOpsPerSec,
		SerializeBytesPerSec: l.SerializeBytesPerSec,
		CostPerHour:          l.CostPerHour / 4,
	}
}

// WithMemory returns a copy of the spec with the physical memory ceiling
// replaced. Used to scale the memory budget down alongside scaled datasets.
func (s VMSpec) WithMemory(bytes int64) VMSpec {
	s.MemoryBytes = bytes
	return s
}

// VM is an allocated instance in the fabric.
type VM struct {
	ID       int
	Spec     VMSpec
	Restarts int // times the fabric restarted this VM (memory blowout)
}

// Fabric allocates VMs and meters their cost. It mirrors the elasticity of
// a public cloud: instances can be acquired and released at any time and
// cost accrues pro-rata per VM-second of simulated time.
type Fabric struct {
	mu      sync.Mutex
	nextID  int
	running map[int]*VM
	// costSeconds accumulates Σ (instance CostPerHour/3600 · seconds).
	costDollars float64
	vmSeconds   float64
	restarts    int
}

// NewFabric creates an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{running: make(map[int]*VM)}
}

// Acquire allocates n instances of the given spec.
func (f *Fabric) Acquire(spec VMSpec, n int) []*VM {
	f.mu.Lock()
	defer f.mu.Unlock()
	vms := make([]*VM, n)
	for i := range vms {
		vm := &VM{ID: f.nextID, Spec: spec}
		f.nextID++
		f.running[vm.ID] = vm
		vms[i] = vm
	}
	return vms
}

// Release deallocates an instance. Releasing an unknown instance is an error.
func (f *Fabric) Release(vm *VM) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.running[vm.ID]; !ok {
		return fmt.Errorf("cloud: release of unknown VM %d", vm.ID)
	}
	delete(f.running, vm.ID)
	return nil
}

// RecordRestart notes the fabric restarting an instance out from under its
// job (memory blowout or injected chaos). The instance keeps accruing cost
// while it reboots; the job-level consequence — checkpoint rollback — is the
// engine's responsibility.
func (f *Fabric) RecordRestart(vm *VM) {
	f.mu.Lock()
	defer f.mu.Unlock()
	vm.Restarts++
	f.restarts++
}

// Restarts returns the total VM restarts recorded across the fabric.
func (f *Fabric) Restarts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.restarts
}

// NumRunning returns the number of currently allocated instances.
func (f *Fabric) NumRunning() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.running)
}

// Advance charges every running instance for `seconds` of simulated time.
func (f *Fabric) Advance(seconds float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, vm := range f.running {
		f.costDollars += vm.Spec.CostPerHour / 3600 * seconds
		f.vmSeconds += seconds
	}
}

// CostDollars returns the accumulated simulated bill.
func (f *Fabric) CostDollars() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.costDollars
}

// VMSeconds returns the accumulated VM-seconds (the paper's pro-rata
// normalized cost unit in Fig 16).
func (f *Fabric) VMSeconds() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.vmSeconds
}
