package cloud

import (
	"sync"
	"testing"
)

func TestFleetReserveRelease(t *testing.T) {
	f, err := NewFleet(8)
	if err != nil {
		t.Fatal(err)
	}
	if !f.TryReserve("acme", 5) {
		t.Fatal("reserve 5 of 8 refused")
	}
	if f.TryReserve("globex", 4) {
		t.Fatal("reserve 4 with only 3 free succeeded")
	}
	if !f.TryReserve("globex", 3) {
		t.Fatal("reserve 3 of remaining 3 refused")
	}
	if f.InUse() != 8 || f.Free() != 0 {
		t.Fatalf("InUse = %d, Free = %d; want 8, 0", f.InUse(), f.Free())
	}
	usage := f.TenantUsage()
	if usage["acme"] != 5 || usage["globex"] != 3 {
		t.Fatalf("TenantUsage = %v", usage)
	}
	f.Release("acme", 5)
	if f.Free() != 5 {
		t.Fatalf("Free after release = %d, want 5", f.Free())
	}
	if _, ok := f.TenantUsage()["acme"]; ok {
		t.Fatal("tenant with zero slots still listed")
	}
	if got := f.Tenants(); len(got) != 1 || got[0] != "globex" {
		t.Fatalf("Tenants = %v, want [globex]", got)
	}
}

func TestFleetRejectsBadInputs(t *testing.T) {
	if _, err := NewFleet(0); err == nil {
		t.Fatal("NewFleet(0) accepted")
	}
	f, _ := NewFleet(4)
	if f.TryReserve("t", 0) {
		t.Fatal("TryReserve(0) succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	f.Release("t", 1)
}

func TestFleetNeverOversubscribesUnderContention(t *testing.T) {
	const slots = 10
	f, _ := NewFleet(slots)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(tenant byte) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if f.TryReserve(string('a'+tenant), 3) {
					if f.InUse() > slots {
						panic("fleet oversubscribed")
					}
					f.Release(string('a'+tenant), 3)
				}
			}
		}(byte(g))
	}
	wg.Wait()
	if f.InUse() != 0 {
		t.Fatalf("InUse after all releases = %d, want 0", f.InUse())
	}
}
