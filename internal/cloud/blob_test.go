package cloud

import (
	"io"
	"testing"
)

func TestBlobPutGet(t *testing.T) {
	s := NewBlobStore()
	s.Put("graphs", "wg.bin", []byte{1, 2, 3})
	data, err := s.Get("graphs", "wg.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 3 || data[0] != 1 {
		t.Errorf("data = %v", data)
	}
	if n, err := s.Size("graphs", "wg.bin"); err != nil || n != 3 {
		t.Errorf("Size = %d, %v", n, err)
	}
}

func TestBlobGetMissing(t *testing.T) {
	s := NewBlobStore()
	if _, err := s.Get("nope", "x"); err == nil {
		t.Error("expected error for missing container")
	}
	s.Put("c", "a", nil)
	if _, err := s.Get("c", "missing"); err == nil {
		t.Error("expected error for missing blob")
	}
	if _, err := s.Size("c", "missing"); err == nil {
		t.Error("expected Size error for missing blob")
	}
}

func TestBlobIsolation(t *testing.T) {
	s := NewBlobStore()
	buf := []byte{9}
	s.Put("c", "b", buf)
	buf[0] = 0
	data, _ := s.Get("c", "b")
	if data[0] != 9 {
		t.Error("Put aliased caller buffer")
	}
	data[0] = 7
	again, _ := s.Get("c", "b")
	if again[0] != 9 {
		t.Error("Get returned aliased storage")
	}
}

func TestBlobListSorted(t *testing.T) {
	s := NewBlobStore()
	s.Put("c", "zeta", nil)
	s.Put("c", "alpha", nil)
	s.Put("c", "mid", nil)
	names := s.List("c")
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List = %v", names)
		}
	}
	if len(s.List("empty")) != 0 {
		t.Error("List of missing container should be empty")
	}
}

func TestBlobDelete(t *testing.T) {
	s := NewBlobStore()
	s.Put("c", "x", []byte{1})
	if err := s.Delete("c", "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("c", "x"); err == nil {
		t.Error("double delete should fail")
	}
	if err := s.Delete("none", "x"); err == nil {
		t.Error("delete in missing container should fail")
	}
}

func TestBlobOpen(t *testing.T) {
	s := NewBlobStore()
	s.Put("c", "r", []byte("stream"))
	r, err := s.Open("c", "r")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil || string(data) != "stream" {
		t.Errorf("read %q, %v", data, err)
	}
}
