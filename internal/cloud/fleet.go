package cloud

import (
	"fmt"
	"sort"
	"sync"
)

// Fleet is a bounded pool of VM slots shared by every job a deployment
// runs concurrently (paper §III: one cloud deployment hosts the manager,
// the web role, and a fixed pool of worker instances that jobs draw from).
// Each running job reserves as many slots as it has partition workers and
// returns them when it finishes or is preempted; the job-server scheduler
// admits a job only when the fleet can seat it. Reservations are tracked
// per tenant so quota accounting and the /metrics endpoint can report who
// is occupying the deployment.
//
// A Fleet tracks slots, not simulated billing: each job still runs its own
// cloud.Fabric for cost accounting, because simulated time advances
// per-job while real fleets bill per-instance. All methods are safe for
// concurrent use.
type Fleet struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	byTenant map[string]int
}

// NewFleet returns a fleet with the given number of VM slots.
func NewFleet(capacity int) (*Fleet, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("cloud: fleet capacity %d, want >= 1", capacity)
	}
	return &Fleet{capacity: capacity, byTenant: make(map[string]int)}, nil
}

// TryReserve atomically reserves n slots for the tenant, reporting whether
// the fleet had room. It never blocks and never partially reserves.
func (f *Fleet) TryReserve(tenant string, n int) bool {
	if n < 1 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.inUse+n > f.capacity {
		return false
	}
	f.inUse += n
	f.byTenant[tenant] += n
	return true
}

// Release returns n of the tenant's slots to the pool. Releasing more than
// the tenant holds is a caller bug and panics: slot accounting errors
// silently corrupt admission decisions for every tenant.
func (f *Fleet) Release(tenant string, n int) {
	if n < 1 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.byTenant[tenant] < n {
		panic(fmt.Sprintf("cloud: tenant %q releasing %d fleet slots, holds %d", tenant, n, f.byTenant[tenant]))
	}
	f.inUse -= n
	f.byTenant[tenant] -= n
	if f.byTenant[tenant] == 0 {
		delete(f.byTenant, tenant)
	}
}

// Capacity is the total number of VM slots.
func (f *Fleet) Capacity() int { return f.capacity }

// InUse is the number of slots currently reserved.
func (f *Fleet) InUse() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inUse
}

// Free is the number of slots currently available.
func (f *Fleet) Free() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.capacity - f.inUse
}

// TenantUsage returns each tenant's reserved slot count (tenants holding
// zero slots are omitted), as a fresh map the caller may keep.
func (f *Fleet) TenantUsage() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.byTenant))
	for t, n := range f.byTenant {
		out[t] = n
	}
	return out
}

// Tenants returns the tenants currently holding slots, sorted, so metrics
// and status endpoints render deterministically.
func (f *Fleet) Tenants() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.byTenant))
	for t := range f.byTenant {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
