package cloud

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Fault injection — the "imperfect cloud" the paper actually runs on.
//
// Azure queues deliver at least once, blob operations fail transiently, the
// fabric restarts VMs under it, and TCP connections between workers drop.
// A FaultPlan scripts those behaviours deterministically (seeded) so the
// engine's retry/rollback machinery can be exercised in tests the same way a
// real deployment exercises it in production: a run under chaos must produce
// the same results as a failure-free run, just later and at higher simulated
// cost (re-executed supersteps are billed, as on a real cloud).

// ErrTransient marks an injected (or classified) transient cloud error.
// Operations failing with an error wrapping ErrTransient are safe to retry;
// see RetryPolicy.
var ErrTransient = errors.New("cloud: transient error")

// transientError implements both errors.Is(err, ErrTransient) and the
// Transient() classification interface used by IsTransient.
type transientError struct{ msg string }

func (e *transientError) Error() string        { return e.msg }
func (e *transientError) Is(target error) bool { return target == ErrTransient }
func (e *transientError) Transient() bool      { return true }

// VMRestart scripts the cloud fabric restarting one worker's VM at the end
// of the given superstep (one-shot): the worker reports a failure and the
// manager rolls every worker back to the last checkpoint.
type VMRestart struct {
	Worker    int
	Superstep int
}

// ConnDrop scripts the data-plane connection From→To dropping during the
// given superstep (one-shot): the send fails transiently and any cached
// socket is torn down, forcing the sender to reconnect and retry.
type ConnDrop struct {
	From      int
	To        int
	Superstep int
}

// FaultPlan describes the faults a Chaos instance injects. Probabilities are
// per operation in [0,1]; the Max* fields cap how many faults of each kind
// fire over the plan's lifetime (0 = unlimited), which keeps long soaks from
// exhausting bounded retry budgets. The zero plan injects nothing.
type FaultPlan struct {
	// Seed drives all probabilistic draws. Two Chaos instances built from
	// identical plans make identical per-category decision sequences.
	Seed int64

	// BlobErrorProb is the chance a BlobStore Get/Put fails transiently.
	BlobErrorProb float64
	// MaxBlobErrors caps injected blob errors (0 = unlimited).
	MaxBlobErrors int64

	// QueueDuplicateProb is the chance a Queue.Put enqueues the message
	// twice — the at-least-once duplicate a real cloud queue can deliver.
	QueueDuplicateProb float64
	// MaxQueueDuplicates caps injected duplicates (0 = unlimited).
	MaxQueueDuplicates int64

	// LeaseExpiryProb is the chance a queue lease expires immediately
	// instead of after the requested visibility timeout, so the message is
	// redelivered and the original consumer's Delete fails.
	LeaseExpiryProb float64
	// MaxLeaseExpiries caps injected early expiries (0 = unlimited).
	MaxLeaseExpiries int64

	// SendDropProb is the chance a data-plane Send fails transiently (the
	// batch is not delivered; cached connections are dropped).
	SendDropProb float64
	// MaxSendDrops caps injected send drops (0 = unlimited).
	MaxSendDrops int64

	// VMRestarts scripts one-shot worker VM restarts.
	VMRestarts []VMRestart
	// ConnDrops scripts one-shot data-plane connection drops.
	ConnDrops []ConnDrop
	// BlobWriteFails scripts Puts of the named blobs failing transiently,
	// past any retry budget — a VM dying mid-write leaves the blob absent
	// (or torn) no matter how often the writer retries. Exact
	// container/name matches; reads are unaffected.
	BlobWriteFails []BlobWriteFail
	// MaxBlobWriteFails caps the scripted write failures (0 = every Put of
	// a named blob fails forever). Setting it to the writer's retry budget
	// models one torn write: the first attempt exhausts its retries and the
	// rewrite after recovery succeeds.
	MaxBlobWriteFails int64
}

// BlobWriteFail scripts one blob's writes failing persistently; see
// FaultPlan.BlobWriteFails.
type BlobWriteFail struct {
	Container string
	Name      string
}

// Enabled reports whether the plan injects any fault at all.
func (p FaultPlan) Enabled() bool {
	return p.BlobErrorProb > 0 || p.QueueDuplicateProb > 0 || p.LeaseExpiryProb > 0 ||
		p.SendDropProb > 0 || len(p.VMRestarts) > 0 || len(p.ConnDrops) > 0 ||
		len(p.BlobWriteFails) > 0
}

// FaultStats counts the faults a Chaos instance has injected.
type FaultStats struct {
	BlobErrors      int64
	QueueDuplicates int64
	LeaseExpiries   int64
	SendDrops       int64
	VMRestarts      int64
	ConnDrops       int64
}

// Total returns the total number of injected faults.
func (s FaultStats) Total() int64 {
	return s.BlobErrors + s.QueueDuplicates + s.LeaseExpiries +
		s.SendDrops + s.VMRestarts + s.ConnDrops
}

// Chaos is a seeded runtime fault injector the cloud primitives consult.
// Each fault category draws from its own PRNG stream so, e.g., blob traffic
// volume does not perturb queue fault placement. All methods are safe for
// concurrent use.
type Chaos struct {
	plan FaultPlan

	mu       sync.Mutex
	blobRng  *rand.Rand
	queueRng *rand.Rand
	leaseRng *rand.Rand
	sendRng  *rand.Rand
	stats    FaultStats
	observer func(kind, detail string)

	firedRestarts     map[VMRestart]bool
	firedDrops        map[ConnDrop]bool
	scriptedWriteFails int64
}

// NewChaos builds a fault injector from a plan. A nil *Chaos injects
// nothing, so consumers may hold one unconditionally.
func NewChaos(plan FaultPlan) *Chaos {
	return &Chaos{
		plan:          plan,
		blobRng:       rand.New(rand.NewSource(plan.Seed ^ 0x626c6f62)), // "blob"
		queueRng:      rand.New(rand.NewSource(plan.Seed ^ 0x71756575)), // "queu"
		leaseRng:      rand.New(rand.NewSource(plan.Seed ^ 0x6c656173)), // "leas"
		sendRng:       rand.New(rand.NewSource(plan.Seed ^ 0x73656e64)), // "send"
		firedRestarts: make(map[VMRestart]bool),
		firedDrops:    make(map[ConnDrop]bool),
	}
}

// Plan returns the plan this injector was built from.
func (c *Chaos) Plan() FaultPlan { return c.plan }

// SetObserver installs a callback invoked once per injected fault with the
// fault category ("blob_error", "queue_duplicate", "lease_expiry",
// "send_drop", "conn_drop", "vm_restart") and a human-readable detail. This
// is how the engine's tracer sees chaos without cloud depending on it. The
// callback runs under the injector's lock and must not call back into Chaos.
func (c *Chaos) SetObserver(fn func(kind, detail string)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.observer = fn
	c.mu.Unlock()
}

// observeLocked reports one injected fault to the observer, if any.
func (c *Chaos) observeLocked(kind, detail string) {
	if c.observer != nil {
		c.observer(kind, detail)
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (c *Chaos) Stats() FaultStats {
	if c == nil {
		return FaultStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// BlobFault returns a transient error for the given blob operation with
// probability BlobErrorProb, nil otherwise.
func (c *Chaos) BlobFault(op, container, name string) error {
	if c == nil || (c.plan.BlobErrorProb <= 0 && len(c.plan.BlobWriteFails) == 0) {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if op == "put" &&
		(c.plan.MaxBlobWriteFails <= 0 || c.scriptedWriteFails < c.plan.MaxBlobWriteFails) {
		for _, f := range c.plan.BlobWriteFails {
			if f.Container == container && f.Name == name {
				c.scriptedWriteFails++
				c.stats.BlobErrors++
				c.observeLocked("blob_error", fmt.Sprintf("scripted %s %s/%s", op, container, name))
				return &transientError{fmt.Sprintf("cloud: injected persistent blob write failure on %q/%q", container, name)}
			}
		}
	}
	if c.plan.BlobErrorProb <= 0 {
		return nil
	}
	if c.plan.MaxBlobErrors > 0 && c.stats.BlobErrors >= c.plan.MaxBlobErrors {
		return nil
	}
	if c.blobRng.Float64() >= c.plan.BlobErrorProb {
		return nil
	}
	c.stats.BlobErrors++
	c.observeLocked("blob_error", fmt.Sprintf("%s %s/%s", op, container, name))
	return &transientError{fmt.Sprintf("cloud: injected transient blob %s error on %q/%q", op, container, name)}
}

// QueueDuplicate reports whether a Put on the named queue should enqueue the
// message a second time.
func (c *Chaos) QueueDuplicate(queue string) bool {
	if c == nil || c.plan.QueueDuplicateProb <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.plan.MaxQueueDuplicates > 0 && c.stats.QueueDuplicates >= c.plan.MaxQueueDuplicates {
		return false
	}
	if c.queueRng.Float64() >= c.plan.QueueDuplicateProb {
		return false
	}
	c.stats.QueueDuplicates++
	c.observeLocked("queue_duplicate", queue)
	return true
}

// LeaseExpiresEarly reports whether a lease on the named queue should expire
// immediately, forcing redelivery.
func (c *Chaos) LeaseExpiresEarly(queue string) bool {
	if c == nil || c.plan.LeaseExpiryProb <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.plan.MaxLeaseExpiries > 0 && c.stats.LeaseExpiries >= c.plan.MaxLeaseExpiries {
		return false
	}
	if c.leaseRng.Float64() >= c.plan.LeaseExpiryProb {
		return false
	}
	c.stats.LeaseExpiries++
	c.observeLocked("lease_expiry", queue)
	return true
}

// SendFault returns a transient error if the data-plane send from→to during
// the given superstep should fail (scripted ConnDrops fire once; afterwards
// probabilistic drops apply), nil otherwise.
func (c *Chaos) SendFault(from, to, superstep int) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.plan.ConnDrops {
		if d.From == from && d.To == to && d.Superstep == superstep && !c.firedDrops[d] {
			c.firedDrops[d] = true
			c.stats.ConnDrops++
			c.observeLocked("conn_drop", fmt.Sprintf("%d->%d s%d", from, to, superstep))
			return &transientError{fmt.Sprintf("cloud: injected connection drop %d→%d at superstep %d", from, to, superstep)}
		}
	}
	if c.plan.SendDropProb <= 0 {
		return nil
	}
	if c.plan.MaxSendDrops > 0 && c.stats.SendDrops >= c.plan.MaxSendDrops {
		return nil
	}
	if c.sendRng.Float64() >= c.plan.SendDropProb {
		return nil
	}
	c.stats.SendDrops++
	c.observeLocked("send_drop", fmt.Sprintf("%d->%d s%d", from, to, superstep))
	return &transientError{fmt.Sprintf("cloud: injected transient send drop %d→%d at superstep %d", from, to, superstep)}
}

// VMRestartAt returns a non-nil error if the plan scripts the given worker's
// VM restarting at the end of the given superstep (one-shot). The error is
// NOT transient: VM loss is recovered by checkpoint rollback, not retry.
func (c *Chaos) VMRestartAt(worker, superstep int) error {
	if c == nil || len(c.plan.VMRestarts) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.plan.VMRestarts {
		if r.Worker == worker && r.Superstep == superstep && !c.firedRestarts[r] {
			c.firedRestarts[r] = true
			c.stats.VMRestarts++
			c.observeLocked("vm_restart", fmt.Sprintf("worker %d s%d", worker, superstep))
			return fmt.Errorf("cloud: injected fabric restart of worker %d's VM at superstep %d", worker, superstep)
		}
	}
	return nil
}
