package cloud

import (
	"errors"
	"fmt"
)

// The cost model converts per-superstep, per-worker resource usage into
// deterministic simulated time. It reproduces every timing mechanism the
// paper's analysis relies on:
//
//   - superstep time = the *slowest* worker (BSP barrier semantics, §VII);
//   - remote messages cost serialization CPU plus network transfer, local
//     ones do not (the benefit partitioning chases);
//   - message buffers beyond physical memory thrash in virtual memory with
//     a punitive multiplier (§IV), and far beyond it the cloud fabric
//     restarts the seemingly-unresponsive VM (§VI.B: job failure);
//   - the barrier itself costs queue round-trips that grow with the number
//     of workers (§VIII: added synchronization overhead of more workers).

// WorkerStepUsage aggregates one worker's resource usage in one superstep.
type WorkerStepUsage struct {
	// ComputeOps counts abstract vertex-compute operations: vertices
	// computed plus messages processed and emitted.
	ComputeOps int64
	// LocalMessages were delivered in-memory to co-located vertices.
	LocalMessages int64
	// RemoteBytesOut / RemoteBytesIn are serialized bulk-transfer volumes.
	RemoteBytesOut int64
	RemoteBytesIn  int64
	// PeakMemoryBytes is the worker's peak buffered-message + vertex-state
	// footprint during the superstep.
	PeakMemoryBytes int64
	// Peers is the number of remote workers this worker exchanged data
	// with (sockets are re-established each superstep).
	Peers int
}

// Add accumulates u2 into u, keeping the max of peak memories.
func (u *WorkerStepUsage) Add(u2 WorkerStepUsage) {
	u.ComputeOps += u2.ComputeOps
	u.LocalMessages += u2.LocalMessages
	u.RemoteBytesOut += u2.RemoteBytesOut
	u.RemoteBytesIn += u2.RemoteBytesIn
	if u2.PeakMemoryBytes > u.PeakMemoryBytes {
		u.PeakMemoryBytes = u2.PeakMemoryBytes
	}
	if u2.Peers > u.Peers {
		u.Peers = u2.Peers
	}
}

// CostModel parameterizes the simulated-time computation.
type CostModel struct {
	Spec VMSpec
	// QueueLatencySec is one control-plane queue round trip (step token or
	// barrier check-in).
	QueueLatencySec float64
	// BarrierPerWorkerSec is the incremental barrier cost per worker: the
	// manager drains one barrier-queue message per worker per superstep.
	BarrierPerWorkerSec float64
	// ConnectSetupSec is the cost of re-establishing one peer socket at the
	// start of a superstep.
	ConnectSetupSec float64
	// ThrashMaxFactor is the time multiplier when memory reaches the
	// restart limit; the multiplier rises linearly from 1 at the physical
	// ceiling. Virtual-memory paging is punitive: default 8x.
	ThrashMaxFactor float64
	// RestartLimitFactor: peak memory above RestartLimitFactor*physical
	// makes the fabric restart the VM, failing the job.
	RestartLimitFactor float64
	// DiskBuffering models Giraph/Hama-style disk-backed message buffers
	// (paper §IV): buffered messages never overflow memory — no thrash and
	// no fabric restarts — but every superstep's message handling pays a
	// uniform multiplicative disk I/O overhead instead.
	DiskBuffering bool
	// DiskOverheadFactor is that multiplicative overhead (default 3 when
	// DiskBuffering is set and the field is zero).
	DiskOverheadFactor float64
	// VMAcquireSeconds is the simulated provisioning latency of one
	// scale-out during live elastic scaling: the time between asking the
	// fabric for more instances and the new workers being ready, during
	// which every running VM keeps billing. Scaled alongside the other
	// control-plane analogs (real Azure provisioning is minutes against
	// supersteps of tens of seconds).
	VMAcquireSeconds float64
}

// DefaultCostModel returns the model used throughout the experiments:
// control-plane costs scaled alongside the dataset analogs, punitive
// virtual-memory thrash, and the Azure-like 1.6x restart limit.
func DefaultCostModel(spec VMSpec) CostModel {
	return CostModel{
		Spec:                spec,
		QueueLatencySec:     0.002,
		BarrierPerWorkerSec: 0.001,
		ConnectSetupSec:     0.0002,
		ThrashMaxFactor:     8,
		RestartLimitFactor:  1.6,
		VMAcquireSeconds:    0.05,
	}
}

// MigrationSeconds converts one phase of a live resize's state transfer
// into simulated seconds: the `workers` VMs of that layout stream their
// disjoint partition slices through the blob store concurrently, each at
// its own NIC bandwidth, so the phase costs bytes/workers/bandwidth —
// the same per-worker-parallel network model supersteps are priced under.
func (m CostModel) MigrationSeconds(bytes int64, workers int) float64 {
	if bytes <= 0 || workers < 1 || m.Spec.NetworkBps <= 0 {
		return 0
	}
	return float64(bytes) / float64(workers) / m.Spec.NetworkBps
}

// ResizePhases prices one live resize as its two billing phases. The
// write phase is billed to the old layout's VMs: they snapshot their
// vertex state to the blob store, overlapped with provisioning latency on
// scale-out (the new instances boot while the old workers write, and only
// start billing once ready). The read phase is billed to the new layout's
// VMs as they stream the state back in.
func (m CostModel) ResizePhases(fromWorkers, toWorkers int, migratedBytes int64) (writeSec, readSec float64) {
	writeSec = m.MigrationSeconds(migratedBytes, fromWorkers)
	readSec = m.MigrationSeconds(migratedBytes, toWorkers)
	if toWorkers > fromWorkers && m.VMAcquireSeconds > writeSec {
		writeSec = m.VMAcquireSeconds
	}
	return writeSec, readSec
}

// ResizeSeconds is the total wall-clock window one live resize adds to the
// job: write-out (overlapped with any provisioning) plus read-in.
func (m CostModel) ResizeSeconds(fromWorkers, toWorkers int, migratedBytes int64) float64 {
	w, r := m.ResizePhases(fromWorkers, toWorkers, migratedBytes)
	return w + r
}

// ErrMemoryBlowout is returned when a worker's memory footprint exceeds the
// restart limit — the simulated equivalent of the Azure fabric restarting an
// unresponsive, thrashing VM and failing the job.
var ErrMemoryBlowout = errors.New("cloud: worker memory exceeded restart limit (VM restarted by fabric)")

// WorkerSeconds returns the simulated seconds one worker spends actively
// computing and communicating in a superstep (excluding barrier wait), the
// thrash multiplier applied, and ErrMemoryBlowout if the footprint crossed
// the restart limit.
func (m CostModel) WorkerSeconds(u WorkerStepUsage) (seconds, thrash float64, err error) {
	cores := float64(m.Spec.Cores)
	compute := float64(u.ComputeOps) / (m.Spec.ComputeOpsPerSec * cores)
	serialize := float64(u.RemoteBytesOut+u.RemoteBytesIn) / (m.Spec.SerializeBytesPerSec * cores)
	network := maxf(float64(u.RemoteBytesOut), float64(u.RemoteBytesIn)) / m.Spec.NetworkBps
	setup := float64(u.Peers) * m.ConnectSetupSec

	if m.DiskBuffering {
		// Sequential disk I/O for every buffered message: uniform slowdown,
		// immune to memory pressure (the Hadoop-like trade-off the paper
		// abjures for its in-memory design).
		factor := m.DiskOverheadFactor
		if factor <= 0 {
			factor = 3
		}
		return (compute+serialize+network)*factor + setup, 1, nil
	}

	thrash = 1.0
	mem := float64(u.PeakMemoryBytes)
	phys := float64(m.Spec.MemoryBytes)
	if mem > phys {
		limit := m.RestartLimitFactor * phys
		if mem > limit {
			return 0, 0, fmt.Errorf("%w: peak %.0f bytes > limit %.0f", ErrMemoryBlowout, mem, limit)
		}
		// Linear ramp: 1x at the ceiling up to ThrashMaxFactor at the limit.
		frac := (mem - phys) / (limit - phys)
		thrash = 1 + frac*(m.ThrashMaxFactor-1)
	}
	// Thrash multiplies the entire active time: a VM paging against virtual
	// memory stalls its communication threads as much as its compute (the
	// paper observes thrashing workers becoming unresponsive enough for the
	// cloud fabric to restart them). Connection setup is excluded; it
	// happens at the superstep start before buffers fill.
	return (compute+serialize+network)*thrash + setup, thrash, nil
}

// RecoverySeconds prices the duplicated work of one recovery superstep: the
// summed active seconds of every participating worker plus the barrier
// overhead of the participants. Recovery work is duplicated VM time — every
// re-executing or replaying worker bills its seconds on top of the job's
// critical path — so workers add instead of overlapping under the superstep
// max. Workers with a zero usage did not participate (under confined
// recovery only the failed partitions recompute and only senders with
// logged traffic replay) and cost nothing.
func (m CostModel) RecoverySeconds(usages []WorkerStepUsage) (float64, error) {
	total := 0.0
	participants := 0
	for i, u := range usages {
		if u == (WorkerStepUsage{}) {
			continue
		}
		sec, _, err := m.WorkerSeconds(u)
		if err != nil {
			return 0, fmt.Errorf("worker %d: %w", i, err)
		}
		total += sec
		participants++
	}
	if participants == 0 {
		return 0, nil
	}
	return total + m.BarrierSeconds(participants), nil
}

// BarrierSeconds returns the per-superstep synchronization overhead for a
// job with n workers: one step-token round trip plus draining n barrier
// check-ins.
func (m CostModel) BarrierSeconds(n int) float64 {
	return 2*m.QueueLatencySec + float64(n)*m.BarrierPerWorkerSec
}

// SuperstepSeconds combines per-worker usages into the superstep's simulated
// duration (max over workers plus barrier) and returns each worker's active
// seconds alongside. Any worker blowing out memory fails the superstep.
func (m CostModel) SuperstepSeconds(usages []WorkerStepUsage) (total float64, perWorker []float64, err error) {
	perWorker = make([]float64, len(usages))
	maxSec := 0.0
	for i, u := range usages {
		sec, _, werr := m.WorkerSeconds(u)
		if werr != nil {
			return 0, nil, fmt.Errorf("worker %d: %w", i, werr)
		}
		perWorker[i] = sec
		if sec > maxSec {
			maxSec = sec
		}
	}
	return maxSec + m.BarrierSeconds(len(usages)), perWorker, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
