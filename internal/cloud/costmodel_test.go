package cloud

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func testSpec() VMSpec {
	return VMSpec{
		Name:                 "test",
		Cores:                4,
		MemoryBytes:          1000,
		NetworkBps:           1000,
		ComputeOpsPerSec:     1000,
		SerializeBytesPerSec: 1000,
		CostPerHour:          0.48,
	}
}

func TestWorkerSecondsComputeOnly(t *testing.T) {
	m := DefaultCostModel(testSpec())
	sec, thrash, err := m.WorkerSeconds(WorkerStepUsage{ComputeOps: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if thrash != 1 {
		t.Errorf("thrash = %v, want 1", thrash)
	}
	// 4000 ops / (1000 ops/s * 4 cores) = 1s.
	if math.Abs(sec-1.0) > 1e-9 {
		t.Errorf("seconds = %v, want 1.0", sec)
	}
}

func TestWorkerSecondsNetworkAndSerialize(t *testing.T) {
	m := DefaultCostModel(testSpec())
	m.ConnectSetupSec = 0
	u := WorkerStepUsage{RemoteBytesOut: 2000, RemoteBytesIn: 1000}
	sec, _, err := m.WorkerSeconds(u)
	if err != nil {
		t.Fatal(err)
	}
	// serialize: 3000 / (1000*4) = 0.75s; network: max(2000,1000)/1000 = 2s.
	if math.Abs(sec-2.75) > 1e-9 {
		t.Errorf("seconds = %v, want 2.75", sec)
	}
}

func TestWorkerSecondsPeerSetup(t *testing.T) {
	m := DefaultCostModel(testSpec())
	u := WorkerStepUsage{Peers: 7}
	sec, _, err := m.WorkerSeconds(u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sec-7*m.ConnectSetupSec) > 1e-9 {
		t.Errorf("seconds = %v, want %v", sec, 7*m.ConnectSetupSec)
	}
}

func TestThrashRamp(t *testing.T) {
	m := DefaultCostModel(testSpec()) // mem 1000, restart limit 1600, max 8x
	// At the ceiling: no thrash.
	_, thrash, err := m.WorkerSeconds(WorkerStepUsage{ComputeOps: 100, PeakMemoryBytes: 1000})
	if err != nil || thrash != 1 {
		t.Errorf("at ceiling: thrash=%v err=%v", thrash, err)
	}
	// Halfway to the limit: thrash = 1 + 0.5*(8-1) = 4.5.
	_, thrash, err = m.WorkerSeconds(WorkerStepUsage{ComputeOps: 100, PeakMemoryBytes: 1300})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(thrash-4.5) > 1e-9 {
		t.Errorf("thrash = %v, want 4.5", thrash)
	}
	// Thrash multiplies all active time (compute and data movement) but not
	// connection setup.
	sec1, _, _ := m.WorkerSeconds(WorkerStepUsage{ComputeOps: 4000, RemoteBytesOut: 1000})
	sec2, _, _ := m.WorkerSeconds(WorkerStepUsage{ComputeOps: 4000, RemoteBytesOut: 1000, PeakMemoryBytes: 1300})
	if math.Abs(sec2-4.5*sec1) > 1e-9 {
		t.Errorf("thrashed time %v, want %v", sec2, 4.5*sec1)
	}
	s3, _, _ := m.WorkerSeconds(WorkerStepUsage{Peers: 5})
	s4, _, _ := m.WorkerSeconds(WorkerStepUsage{Peers: 5, PeakMemoryBytes: 1300, ComputeOps: 0})
	if math.Abs(s3-s4) > 1e-9 {
		t.Errorf("setup time should not thrash: %v vs %v", s3, s4)
	}
}

func TestMemoryBlowout(t *testing.T) {
	m := DefaultCostModel(testSpec())
	_, _, err := m.WorkerSeconds(WorkerStepUsage{PeakMemoryBytes: 1601})
	if !errors.Is(err, ErrMemoryBlowout) {
		t.Errorf("err = %v, want ErrMemoryBlowout", err)
	}
}

func TestBarrierGrowsWithWorkers(t *testing.T) {
	m := DefaultCostModel(testSpec())
	b4, b8 := m.BarrierSeconds(4), m.BarrierSeconds(8)
	if b8 <= b4 {
		t.Errorf("barrier(8)=%v should exceed barrier(4)=%v", b8, b4)
	}
	if math.Abs((b8-b4)-4*m.BarrierPerWorkerSec) > 1e-12 {
		t.Errorf("barrier delta wrong: %v", b8-b4)
	}
}

func TestSuperstepIsMaxOfWorkers(t *testing.T) {
	m := DefaultCostModel(testSpec())
	usages := []WorkerStepUsage{
		{ComputeOps: 4000}, // 1s
		{ComputeOps: 8000}, // 2s — the straggler defines the superstep
		{ComputeOps: 400},  // 0.1s
	}
	total, per, err := m.SuperstepSeconds(usages)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 + m.BarrierSeconds(3)
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("superstep = %v, want %v", total, want)
	}
	if len(per) != 3 || per[1] < per[0] || per[0] < per[2] {
		t.Errorf("per-worker = %v", per)
	}
}

func TestSuperstepPropagatesBlowout(t *testing.T) {
	m := DefaultCostModel(testSpec())
	_, _, err := m.SuperstepSeconds([]WorkerStepUsage{{}, {PeakMemoryBytes: 99999}})
	if !errors.Is(err, ErrMemoryBlowout) {
		t.Errorf("err = %v", err)
	}
}

func TestUsageAdd(t *testing.T) {
	u := WorkerStepUsage{ComputeOps: 1, PeakMemoryBytes: 10, Peers: 2}
	u.Add(WorkerStepUsage{ComputeOps: 2, LocalMessages: 3, RemoteBytesOut: 4, RemoteBytesIn: 5, PeakMemoryBytes: 7, Peers: 1})
	if u.ComputeOps != 3 || u.LocalMessages != 3 || u.RemoteBytesOut != 4 || u.RemoteBytesIn != 5 {
		t.Errorf("Add sums wrong: %+v", u)
	}
	if u.PeakMemoryBytes != 10 || u.Peers != 2 {
		t.Errorf("Add should keep maxima: %+v", u)
	}
}

// Property: worker time is monotone in every usage dimension (more work
// never takes less simulated time).
func TestWorkerSecondsMonotoneProperty(t *testing.T) {
	m := DefaultCostModel(testSpec())
	f := func(ops, bytesOut uint16, mem uint16) bool {
		base := WorkerStepUsage{ComputeOps: int64(ops), RemoteBytesOut: int64(bytesOut),
			PeakMemoryBytes: int64(mem) % 1500}
		bigger := base
		bigger.ComputeOps += 10
		bigger.RemoteBytesOut += 10
		s1, _, err1 := m.WorkerSeconds(base)
		s2, _, err2 := m.WorkerSeconds(bigger)
		if err1 != nil || err2 != nil {
			return true // blowout region: not comparable
		}
		return s2 >= s1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVMSpecPresets(t *testing.T) {
	l, s := LargeVM(), SmallVM()
	if l.Cores != 4*s.Cores || l.MemoryBytes != 4*s.MemoryBytes {
		t.Error("small VM is not a fourth of large")
	}
	if math.Abs(l.CostPerHour-4*s.CostPerHour) > 1e-9 {
		t.Error("small VM cost is not a fourth of large")
	}
	scaled := l.WithMemory(123)
	if scaled.MemoryBytes != 123 || l.MemoryBytes == 123 {
		t.Error("WithMemory should copy")
	}
}

func TestFabricCostMetering(t *testing.T) {
	f := NewFabric()
	vms := f.Acquire(LargeVM(), 4)
	if f.NumRunning() != 4 {
		t.Fatalf("running = %d", f.NumRunning())
	}
	f.Advance(3600) // 1 hour with 4 large VMs = 4 * $0.48
	if math.Abs(f.CostDollars()-4*0.48) > 1e-9 {
		t.Errorf("cost = %v, want 1.92", f.CostDollars())
	}
	if math.Abs(f.VMSeconds()-4*3600) > 1e-9 {
		t.Errorf("vm-seconds = %v", f.VMSeconds())
	}
	if err := f.Release(vms[0]); err != nil {
		t.Fatal(err)
	}
	if err := f.Release(vms[0]); err == nil {
		t.Error("double release should fail")
	}
	f.Advance(3600)
	if math.Abs(f.CostDollars()-(4*0.48+3*0.48)) > 1e-9 {
		t.Errorf("cost after release = %v", f.CostDollars())
	}
}

func TestDiskBufferingMode(t *testing.T) {
	m := DefaultCostModel(testSpec())
	m.DiskBuffering = true
	// Uniform 3x on active time, no thrash, and immunity to memory blowout.
	sec, thrash, err := m.WorkerSeconds(WorkerStepUsage{ComputeOps: 4000, PeakMemoryBytes: 99999})
	if err != nil {
		t.Fatalf("disk mode must not blow out: %v", err)
	}
	if thrash != 1 {
		t.Errorf("thrash = %v, want 1 in disk mode", thrash)
	}
	if math.Abs(sec-3.0) > 1e-9 { // 1s compute * 3
		t.Errorf("seconds = %v, want 3.0", sec)
	}
	m.DiskOverheadFactor = 5
	sec, _, _ = m.WorkerSeconds(WorkerStepUsage{ComputeOps: 4000})
	if math.Abs(sec-5.0) > 1e-9 {
		t.Errorf("seconds = %v, want 5.0 with factor 5", sec)
	}
}
