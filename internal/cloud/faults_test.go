package cloud

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestChaosDeterministicSequences(t *testing.T) {
	plan := FaultPlan{
		Seed:               42,
		BlobErrorProb:      0.3,
		QueueDuplicateProb: 0.3,
		LeaseExpiryProb:    0.3,
		SendDropProb:       0.3,
	}
	a, b := NewChaos(plan), NewChaos(plan)
	for i := 0; i < 200; i++ {
		if (a.BlobFault("get", "c", "n") == nil) != (b.BlobFault("get", "c", "n") == nil) {
			t.Fatalf("blob decision %d diverged between identical plans", i)
		}
		if a.QueueDuplicate("q") != b.QueueDuplicate("q") {
			t.Fatalf("queue decision %d diverged", i)
		}
		if a.LeaseExpiresEarly("q") != b.LeaseExpiresEarly("q") {
			t.Fatalf("lease decision %d diverged", i)
		}
		if (a.SendFault(0, 1, i) == nil) != (b.SendFault(0, 1, i) == nil) {
			t.Fatalf("send decision %d diverged", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Total() == 0 {
		t.Error("prob 0.3 over 200 draws injected nothing")
	}
}

func TestChaosIndependentStreams(t *testing.T) {
	// Drawing heavily from one category must not change another category's
	// decision sequence (each has its own PRNG stream).
	plan := FaultPlan{Seed: 7, BlobErrorProb: 0.5, QueueDuplicateProb: 0.5}
	a, b := NewChaos(plan), NewChaos(plan)
	for i := 0; i < 500; i++ { // extra blob traffic on a only
		a.BlobFault("get", "c", "n")
	}
	for i := 0; i < 50; i++ {
		if a.QueueDuplicate("q") != b.QueueDuplicate("q") {
			t.Fatalf("queue decision %d perturbed by blob traffic", i)
		}
	}
}

func TestChaosCaps(t *testing.T) {
	c := NewChaos(FaultPlan{
		Seed: 1, BlobErrorProb: 1, MaxBlobErrors: 3,
		QueueDuplicateProb: 1, MaxQueueDuplicates: 2,
		LeaseExpiryProb: 1, MaxLeaseExpiries: 1,
		SendDropProb: 1, MaxSendDrops: 4,
	})
	for i := 0; i < 20; i++ {
		c.BlobFault("put", "c", "n")
		c.QueueDuplicate("q")
		c.LeaseExpiresEarly("q")
		c.SendFault(0, 1, i)
	}
	s := c.Stats()
	if s.BlobErrors != 3 || s.QueueDuplicates != 2 || s.LeaseExpiries != 1 || s.SendDrops != 4 {
		t.Errorf("caps not honoured: %+v", s)
	}
}

func TestChaosScriptedEventsFireOnce(t *testing.T) {
	c := NewChaos(FaultPlan{
		VMRestarts: []VMRestart{{Worker: 1, Superstep: 3}},
		ConnDrops:  []ConnDrop{{From: 0, To: 2, Superstep: 5}},
	})
	if err := c.VMRestartAt(1, 2); err != nil {
		t.Errorf("restart fired at wrong superstep: %v", err)
	}
	if err := c.VMRestartAt(0, 3); err != nil {
		t.Errorf("restart fired for wrong worker: %v", err)
	}
	err := c.VMRestartAt(1, 3)
	if err == nil {
		t.Fatal("scripted restart did not fire")
	}
	if IsTransient(err) {
		t.Error("VM restart must not be classified transient (recovery is rollback, not retry)")
	}
	if c.VMRestartAt(1, 3) != nil {
		t.Error("scripted restart fired twice")
	}

	if c.SendFault(0, 2, 4) != nil {
		t.Error("conn drop fired at wrong superstep")
	}
	derr := c.SendFault(0, 2, 5)
	if derr == nil {
		t.Fatal("scripted conn drop did not fire")
	}
	if !IsTransient(derr) {
		t.Error("conn drop must be transient (recovery is reconnect+retry)")
	}
	if c.SendFault(0, 2, 5) != nil {
		t.Error("scripted conn drop fired twice")
	}
	s := c.Stats()
	if s.VMRestarts != 1 || s.ConnDrops != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestChaosNilSafe(t *testing.T) {
	var c *Chaos
	if c.BlobFault("get", "c", "n") != nil || c.QueueDuplicate("q") ||
		c.LeaseExpiresEarly("q") || c.SendFault(0, 1, 0) != nil ||
		c.VMRestartAt(0, 0) != nil || c.Stats().Total() != 0 {
		t.Error("nil Chaos must inject nothing")
	}
}

func TestFaultPlanEnabled(t *testing.T) {
	if (FaultPlan{}).Enabled() {
		t.Error("zero plan reported enabled")
	}
	if !(FaultPlan{BlobErrorProb: 0.1}).Enabled() ||
		!(FaultPlan{VMRestarts: []VMRestart{{}}}).Enabled() {
		t.Error("non-zero plan reported disabled")
	}
}

type customTransient struct{}

func (customTransient) Error() string   { return "custom" }
func (customTransient) Transient() bool { return true }

func TestIsTransient(t *testing.T) {
	if IsTransient(nil) {
		t.Error("nil is not transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error is not transient")
	}
	if !IsTransient(&transientError{"x"}) {
		t.Error("transientError not recognized")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", ErrTransient)) {
		t.Error("wrapped ErrTransient not recognized")
	}
	// Transport-style classification: Transient() bool anywhere in the chain,
	// without wrapping ErrTransient itself.
	if !IsTransient(fmt.Errorf("outer: %w", customTransient{})) {
		t.Error("Transient() interface in chain not recognized")
	}
}

func TestRetryDoSucceedsAfterTransients(t *testing.T) {
	var sleeps []time.Duration
	p := RetryPolicy{Sleep: func(d time.Duration) { sleeps = append(sleeps, d) }}
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return &transientError{"flaky"}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if len(sleeps) != 2 {
		t.Fatalf("slept %d times, want 2", len(sleeps))
	}
	if sleeps[1] <= sleeps[0]/2 {
		t.Errorf("backoff not growing: %v", sleeps)
	}
}

func TestRetryDoStopsOnPermanentError(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	err := RetryPolicy{Sleep: func(time.Duration) {}}.Do(func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Errorf("err=%v calls=%d, want permanent error after 1 call", err, calls)
	}
}

func TestRetryDoExhaustsAttempts(t *testing.T) {
	retries := 0
	p := RetryPolicy{
		MaxAttempts: 4,
		Sleep:       func(time.Duration) {},
		OnRetry:     func(int, error) { retries++ },
	}
	calls := 0
	err := p.Do(func() error { calls++; return &transientError{"always"} })
	if err == nil || !IsTransient(err) {
		t.Errorf("want last transient error, got %v", err)
	}
	if calls != 4 || retries != 3 {
		t.Errorf("calls=%d retries=%d, want 4/3", calls, retries)
	}
}

func TestRetryBackoffBounded(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	for a := 1; a < 30; a++ {
		d := p.backoff(a)
		if d <= 0 || d > p.MaxDelay {
			t.Fatalf("backoff(%d) = %v outside (0, %v]", a, d, p.MaxDelay)
		}
	}
}

func TestBlobChaosTransientErrors(t *testing.T) {
	s := NewBlobStore()
	s.SetChaos(NewChaos(FaultPlan{Seed: 9, BlobErrorProb: 1, MaxBlobErrors: 2}))
	err := s.Put("c", "n", []byte("v"))
	if err == nil || !IsTransient(err) {
		t.Fatalf("want injected transient put error, got %v", err)
	}
	if _, err := s.Get("c", "n"); err == nil || !IsTransient(err) {
		t.Fatalf("want injected transient get error, got %v", err)
	}
	// Cap reached: operations succeed again and Put really stores the data.
	if err := s.Put("c", "n", []byte("v")); err != nil {
		t.Fatal(err)
	}
	data, err := s.Get("c", "n")
	if err != nil || string(data) != "v" {
		t.Fatalf("data=%q err=%v", data, err)
	}
	// Retry machinery rides over the faults end to end.
	s2 := NewBlobStore()
	s2.SetChaos(NewChaos(FaultPlan{Seed: 9, BlobErrorProb: 1, MaxBlobErrors: 2}))
	p := RetryPolicy{Sleep: func(time.Duration) {}}
	if err := p.Do(func() error { return s2.Put("c", "k", []byte("w")) }); err != nil {
		t.Fatalf("retry did not absorb injected blob faults: %v", err)
	}
}

func TestQueueChaosDuplicateDelivery(t *testing.T) {
	q := NewQueue("dup")
	q.SetChaos(NewChaos(FaultPlan{Seed: 3, QueueDuplicateProb: 1, MaxQueueDuplicates: 1}))
	q.Put([]byte("once"))
	first := q.Get(time.Minute)
	second := q.Get(time.Minute)
	if first == nil || second == nil {
		t.Fatal("duplicate was not enqueued")
	}
	if string(first.Body) != "once" || string(second.Body) != "once" {
		t.Errorf("bodies %q, %q", first.Body, second.Body)
	}
	if q.Get(time.Minute) != nil {
		t.Error("more than one duplicate injected despite cap")
	}
}

func TestQueueChaosEarlyLeaseExpiry(t *testing.T) {
	q := NewQueue("lease")
	q.SetChaos(NewChaos(FaultPlan{Seed: 5, LeaseExpiryProb: 1, MaxLeaseExpiries: 1}))
	q.Put([]byte("x"))
	first := q.Get(time.Hour) // lease injected to expire immediately
	if first == nil {
		t.Fatal("expected message")
	}
	// The original consumer's Delete must fail: its lease already expired.
	// (Check before re-leasing — the simplified receipt model reuses the
	// message ID, so after redelivery the ID names the new, live lease.)
	time.Sleep(time.Millisecond)
	if err := q.Delete(first.ID); err == nil {
		t.Error("Delete on an expired lease should error")
	}
	second := q.GetWait(time.Minute, 2*time.Second)
	if second == nil {
		t.Fatal("early-expired lease was not redelivered")
	}
	if second.DequeueCount != 2 {
		t.Errorf("dequeue count = %d, want 2", second.DequeueCount)
	}
	if err := q.Delete(second.ID); err != nil {
		t.Errorf("Delete on the live re-lease failed: %v", err)
	}
}

func TestChaosObserverSeesInjections(t *testing.T) {
	c := NewChaos(FaultPlan{
		Seed:               7,
		QueueDuplicateProb: 1, MaxQueueDuplicates: 1,
		VMRestarts: []VMRestart{{Worker: 2, Superstep: 3}},
	})
	var mu sync.Mutex
	seen := map[string]int{}
	c.SetObserver(func(kind, detail string) {
		mu.Lock()
		seen[kind]++
		mu.Unlock()
	})
	if !c.QueueDuplicate("step-0") {
		t.Fatal("expected duplicate injection")
	}
	c.QueueDuplicate("step-0") // capped: no injection, no observation
	if err := c.VMRestartAt(2, 3); err == nil {
		t.Fatal("expected scripted restart")
	}
	if seen["queue_duplicate"] != 1 || seen["vm_restart"] != 1 {
		t.Errorf("observed = %v", seen)
	}
	var nilChaos *Chaos
	nilChaos.SetObserver(func(string, string) {}) // must not panic
}
