package cloud

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
)

// BlobStore is an in-memory blob (file) store with named containers,
// mirroring Azure blob storage where the paper stages graph files for
// partition workers to load.
type BlobStore struct {
	mu         sync.RWMutex
	chaos      *Chaos
	containers map[string]map[string][]byte
}

// NewBlobStore creates an empty blob store.
func NewBlobStore() *BlobStore {
	return &BlobStore{containers: make(map[string]map[string][]byte)}
}

// SetChaos installs a fault injector consulted by Get and Put (nil removes
// it). Injected failures are transient (see IsTransient) and leave the store
// unchanged, so callers may retry.
func (s *BlobStore) SetChaos(c *Chaos) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chaos = c
}

// Put stores data under container/name, overwriting any existing blob.
// The data is copied. Put fails only with an injected transient error.
func (s *BlobStore) Put(container, name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.chaos.BlobFault("put", container, name); err != nil {
		return err
	}
	c, ok := s.containers[container]
	if !ok {
		c = make(map[string][]byte)
		s.containers[container] = c
	}
	c[name] = append([]byte(nil), data...)
	return nil
}

// Get returns a copy of the blob's contents.
func (s *BlobStore) Get(container, name string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.chaos.BlobFault("get", container, name); err != nil {
		return nil, err
	}
	c, ok := s.containers[container]
	if !ok {
		return nil, fmt.Errorf("cloud: blob container %q not found", container)
	}
	data, ok := c[name]
	if !ok {
		return nil, fmt.Errorf("cloud: blob %q/%q not found", container, name)
	}
	return append([]byte(nil), data...), nil
}

// Open returns a reader over the blob's contents.
func (s *BlobStore) Open(container, name string) (io.Reader, error) {
	data, err := s.Get(container, name)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(data), nil
}

// Size returns the length of a blob in bytes.
func (s *BlobStore) Size(container, name string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.containers[container]
	if !ok {
		return 0, fmt.Errorf("cloud: blob container %q not found", container)
	}
	data, ok := c[name]
	if !ok {
		return 0, fmt.Errorf("cloud: blob %q/%q not found", container, name)
	}
	return len(data), nil
}

// List returns the blob names in a container in sorted order.
func (s *BlobStore) List(container string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := s.containers[container]
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Delete removes a blob. Deleting a missing blob is an error, matching the
// cloud API.
func (s *BlobStore) Delete(container, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.containers[container]
	if !ok {
		return fmt.Errorf("cloud: blob container %q not found", container)
	}
	if _, ok := c[name]; !ok {
		return fmt.Errorf("cloud: blob %q/%q not found", container, name)
	}
	delete(c, name)
	return nil
}
