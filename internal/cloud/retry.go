package cloud

import (
	"errors"
	"math"
	"time"
)

// Shared retry helper for transient cloud faults: exponential backoff with
// deterministic jitter, bounded attempts. Used by the engine around blob and
// queue operations (checkpoint snapshot/restore) and around data-plane sends
// (reconnect after a dropped peer connection).

// IsTransient reports whether err is safe to retry: it wraps ErrTransient or
// any error in its chain implements `Transient() bool` returning true (the
// transport package classifies socket-level failures that way without
// importing this package).
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	for e := err; e != nil; e = errors.Unwrap(e) {
		if t, ok := e.(interface{ Transient() bool }); ok && t.Transient() {
			return true
		}
	}
	return false
}

// RetryPolicy retries an operation on transient failure with exponential
// backoff and jitter. The zero value is usable and applies the defaults
// documented on each field.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 6). Non-transient errors abort immediately.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 500µs); each
	// subsequent retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 50ms).
	MaxDelay time.Duration
	// Sleep is a test hook replacing time.Sleep.
	Sleep func(time.Duration)
	// OnRetry, if non-nil, is called before each retry with the 1-based
	// number of the attempt that just failed and its error (observability:
	// the engine counts retries into StepStats).
	OnRetry func(attempt int, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 6
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 500 * time.Microsecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 50 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// backoff returns the delay before retry `attempt` (1-based): exponential in
// the attempt number with deterministic jitter in [0.5, 1.0) derived from the
// golden-ratio sequence, so concurrent retriers spread out without shared
// PRNG state (which would make fault interleavings scheduling-dependent).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := float64(p.BaseDelay) * math.Pow(2, float64(attempt-1))
	const phi = 0.6180339887498949
	frac := math.Mod(float64(attempt)*phi, 1.0)
	d *= 0.5 + 0.5*frac
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return time.Duration(d)
}

// Do runs op, retrying transient failures up to MaxAttempts total tries.
// It returns nil as soon as op succeeds, the error unchanged if it is not
// transient, or the last transient error once attempts are exhausted.
func (p RetryPolicy) Do(op func() error) error {
	p = p.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if !IsTransient(err) || attempt >= p.MaxAttempts {
			return err
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		p.Sleep(p.backoff(attempt))
	}
}
