package metrics

import (
	"math"
	"strings"
	"testing"

	"pregelnet/internal/core"
)

func fakeSteps() []core.StepStats {
	return []core.StepStats{
		{Superstep: 0, ActiveVertices: 1, SentLocal: 10, SentRemote: 5,
			PeakMemoryBytes: 100, SimSeconds: 1.0, WorkerSimSeconds: []float64{0.5, 1.0},
			WorkerSent: []int64{10, 5}},
		{Superstep: 1, ActiveVertices: 4, SentLocal: 40, SentRemote: 20,
			PeakMemoryBytes: 400, SimSeconds: 2.0, WorkerSimSeconds: []float64{2.0, 1.0},
			WorkerSent: []int64{40, 20}},
		{Superstep: 2, ActiveVertices: 2, SentLocal: 5, SentRemote: 5,
			PeakMemoryBytes: 50, SimSeconds: 0.5, WorkerSimSeconds: []float64{0.25, 0.25},
			WorkerSent: []int64{5, 5}},
	}
}

func TestSeriesExtraction(t *testing.T) {
	steps := fakeSteps()
	msgs := MessagesPerStep(steps)
	if len(msgs.Values) != 3 || msgs.Values[0] != 15 || msgs.Values[1] != 60 {
		t.Errorf("messages = %v", msgs.Values)
	}
	if r := RemoteMessagesPerStep(steps); r.Values[1] != 20 {
		t.Errorf("remote = %v", r.Values)
	}
	if a := ActivePerStep(steps); a.Values[2] != 2 {
		t.Errorf("active = %v", a.Values)
	}
	if m := PeakMemoryPerStep(steps); m.Values[1] != 400 {
		t.Errorf("memory = %v", m.Values)
	}
	if s := SimTimePerStep(steps); s.Values[2] != 0.5 {
		t.Errorf("sim time = %v", s.Values)
	}
	cum := CumulativeSimTime(steps)
	if cum.Values[0] != 1.0 || cum.Values[1] != 3.0 || cum.Values[2] != 3.5 {
		t.Errorf("cumulative = %v", cum.Values)
	}
	u := UtilizationPerStep(steps)
	if u.Values[0] != 0.75 { // (0.5/1.0 + 1.0/1.0)/2
		t.Errorf("utilization[0] = %v, want 0.75", u.Values[0])
	}
}

func TestComputeBreakdown(t *testing.T) {
	b := ComputeBreakdown(fakeSteps())
	// Mean active: (0.75 + 1.5 + 0.25) = 2.5; total = 3.5; wait = 1.0.
	if b.ActiveSeconds != 2.5 || b.TotalSeconds != 3.5 {
		t.Errorf("breakdown = %+v", b)
	}
	if b.WaitSeconds != 1.0 {
		t.Errorf("wait = %v", b.WaitSeconds)
	}
	if b.Utilization < 0.71 || b.Utilization > 0.72 {
		t.Errorf("utilization = %v", b.Utilization)
	}
}

func TestWorkerMessageMatrix(t *testing.T) {
	ids, matrix := WorkerMessageMatrix(fakeSteps(), 2)
	// The peak 2-step window is steps 0-1 (75 msgs) vs 1-2 (70)... step 0+1
	// = 75, step 1+2 = 70 → window starts at 0.
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("ids = %v", ids)
	}
	if matrix[1][0] != 40 || matrix[1][1] != 20 {
		t.Errorf("matrix = %v", matrix)
	}
	// Window larger than run clamps.
	ids, _ = WorkerMessageMatrix(fakeSteps(), 99)
	if len(ids) != 3 {
		t.Errorf("clamped window = %d", len(ids))
	}
	if ids, _ := WorkerMessageMatrix(nil, 2); ids != nil {
		t.Error("empty steps should give nil")
	}
}

func TestImbalanceRatio(t *testing.T) {
	r := ImbalanceRatio(fakeSteps(), 2)
	// Step 1: max 40, mean 30 → 1.333; step 0: max 10, mean 7.5 → 1.333.
	if r < 1.3 || r > 1.4 {
		t.Errorf("imbalance = %v", r)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "demo", Headers: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.AddRow("3", "4")
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "3") {
		t.Errorf("render output:\n%s", out)
	}
	var csv strings.Builder
	tab.RenderCSV(&csv)
	if !strings.HasPrefix(csv.String(), "a,b\n1,2\n") {
		t.Errorf("csv output: %q", csv.String())
	}
}

func TestSeriesTable(t *testing.T) {
	tab := SeriesTable("t", Series{Name: "x", Values: []float64{1, 2}},
		Series{Name: "y", Values: []float64{3.5}})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "1" || tab.Rows[0][2] != "3.5" {
		t.Errorf("row 0 = %v", tab.Rows[0])
	}
	if tab.Rows[1][2] != "" {
		t.Errorf("short series should pad empty, got %q", tab.Rows[1][2])
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline(Series{Values: []float64{0, 5, 10}})
	if len([]rune(s)) != 3 {
		t.Errorf("sparkline runes = %q", s)
	}
	if Sparkline(Series{}) != "-" {
		t.Error(`empty series should render "-"`)
	}
	// All zeros should not panic or index out of range.
	if z := Sparkline(Series{Values: []float64{0, 0}}); len([]rune(z)) != 2 {
		t.Errorf("zeros = %q", z)
	}
}

func TestSparklineNonFinite(t *testing.T) {
	// NaN/Inf samples render as '-' and are excluded from the scale: the
	// finite samples must still span the block range.
	s := Sparkline(Series{Values: []float64{1, math.NaN(), math.Inf(1), 10, math.Inf(-1)}})
	r := []rune(s)
	if len(r) != 5 {
		t.Fatalf("sparkline = %q", s)
	}
	if r[1] != '-' || r[2] != '-' || r[4] != '-' {
		t.Errorf("non-finite cells = %q, want '-'", s)
	}
	if r[3] != '█' {
		t.Errorf("finite max cell = %q, want full block", string(r[3]))
	}
	// A series that is entirely non-finite must not panic and renders all '-'.
	if all := Sparkline(Series{Values: []float64{math.NaN(), math.Inf(1)}}); all != "--" {
		t.Errorf("all non-finite = %q", all)
	}
}

func TestFormatValueNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := formatValue(v); got != "-" {
			t.Errorf("formatValue(%v) = %q, want -", v, got)
		}
	}
	if got := formatValue(2.5); got != "2.5" {
		t.Errorf("formatValue(2.5) = %q", got)
	}
}

func TestEmptyStepsEdgeCases(t *testing.T) {
	// Every extractor and aggregate must tolerate a run with no supersteps.
	if s := MessagesPerStep(nil); len(s.Values) != 0 {
		t.Errorf("messages = %v", s.Values)
	}
	if b := ComputeBreakdown(nil); b.TotalSeconds != 0 || b.Utilization != 0 {
		t.Errorf("breakdown = %+v", b)
	}
	if r := ImbalanceRatio(nil, 3); r != 0 {
		t.Errorf("imbalance of empty run = %v", r)
	}
	tab := SeriesTable("empty", MessagesPerStep(nil))
	if len(tab.Rows) != 0 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestZeroWorkerSimSeconds(t *testing.T) {
	// A superstep with no per-worker timings (zero-length WorkerSimSeconds)
	// must not divide by zero anywhere.
	steps := []core.StepStats{{Superstep: 0, SimSeconds: 1.0}}
	b := ComputeBreakdown(steps)
	if b.ActiveSeconds != 0 || b.WaitSeconds != 1.0 {
		t.Errorf("breakdown = %+v", b)
	}
	u := UtilizationPerStep(steps)
	if len(u.Values) != 1 || math.IsNaN(u.Values[0]) {
		t.Errorf("utilization = %v", u.Values)
	}
	// And a step with zero-length WorkerSent rows must not break the
	// imbalance statistic.
	if r := ImbalanceRatio(steps, 1); r != 0 {
		t.Errorf("imbalance = %v", r)
	}
}

func TestWindowLargerThanRun(t *testing.T) {
	steps := fakeSteps()
	ids, matrix := WorkerMessageMatrix(steps, len(steps)+10)
	if len(ids) != len(steps) || len(matrix) != len(steps) {
		t.Errorf("window clamp: ids=%v rows=%d", ids, len(matrix))
	}
	if r := ImbalanceRatio(steps, 100); r < 1.3 || r > 1.4 {
		t.Errorf("imbalance over clamped window = %v", r)
	}
}

func TestRenderCSVEmptyTable(t *testing.T) {
	var sb strings.Builder
	(&Table{}).RenderCSV(&sb)
	if sb.Len() != 0 {
		t.Errorf("empty table CSV = %q, want nothing", sb.String())
	}
	// Headers but no rows still writes the header line.
	sb.Reset()
	(&Table{Headers: []string{"a", "b"}}).RenderCSV(&sb)
	if sb.String() != "a,b\n" {
		t.Errorf("header-only CSV = %q", sb.String())
	}
}
