package metrics

import (
	"strings"
	"testing"

	"pregelnet/internal/core"
)

func fakeSteps() []core.StepStats {
	return []core.StepStats{
		{Superstep: 0, ActiveVertices: 1, SentLocal: 10, SentRemote: 5,
			PeakMemoryBytes: 100, SimSeconds: 1.0, WorkerSimSeconds: []float64{0.5, 1.0},
			WorkerSent: []int64{10, 5}},
		{Superstep: 1, ActiveVertices: 4, SentLocal: 40, SentRemote: 20,
			PeakMemoryBytes: 400, SimSeconds: 2.0, WorkerSimSeconds: []float64{2.0, 1.0},
			WorkerSent: []int64{40, 20}},
		{Superstep: 2, ActiveVertices: 2, SentLocal: 5, SentRemote: 5,
			PeakMemoryBytes: 50, SimSeconds: 0.5, WorkerSimSeconds: []float64{0.25, 0.25},
			WorkerSent: []int64{5, 5}},
	}
}

func TestSeriesExtraction(t *testing.T) {
	steps := fakeSteps()
	msgs := MessagesPerStep(steps)
	if len(msgs.Values) != 3 || msgs.Values[0] != 15 || msgs.Values[1] != 60 {
		t.Errorf("messages = %v", msgs.Values)
	}
	if r := RemoteMessagesPerStep(steps); r.Values[1] != 20 {
		t.Errorf("remote = %v", r.Values)
	}
	if a := ActivePerStep(steps); a.Values[2] != 2 {
		t.Errorf("active = %v", a.Values)
	}
	if m := PeakMemoryPerStep(steps); m.Values[1] != 400 {
		t.Errorf("memory = %v", m.Values)
	}
	if s := SimTimePerStep(steps); s.Values[2] != 0.5 {
		t.Errorf("sim time = %v", s.Values)
	}
	cum := CumulativeSimTime(steps)
	if cum.Values[0] != 1.0 || cum.Values[1] != 3.0 || cum.Values[2] != 3.5 {
		t.Errorf("cumulative = %v", cum.Values)
	}
	u := UtilizationPerStep(steps)
	if u.Values[0] != 0.75 { // (0.5/1.0 + 1.0/1.0)/2
		t.Errorf("utilization[0] = %v, want 0.75", u.Values[0])
	}
}

func TestComputeBreakdown(t *testing.T) {
	b := ComputeBreakdown(fakeSteps())
	// Mean active: (0.75 + 1.5 + 0.25) = 2.5; total = 3.5; wait = 1.0.
	if b.ActiveSeconds != 2.5 || b.TotalSeconds != 3.5 {
		t.Errorf("breakdown = %+v", b)
	}
	if b.WaitSeconds != 1.0 {
		t.Errorf("wait = %v", b.WaitSeconds)
	}
	if b.Utilization < 0.71 || b.Utilization > 0.72 {
		t.Errorf("utilization = %v", b.Utilization)
	}
}

func TestWorkerMessageMatrix(t *testing.T) {
	ids, matrix := WorkerMessageMatrix(fakeSteps(), 2)
	// The peak 2-step window is steps 0-1 (75 msgs) vs 1-2 (70)... step 0+1
	// = 75, step 1+2 = 70 → window starts at 0.
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("ids = %v", ids)
	}
	if matrix[1][0] != 40 || matrix[1][1] != 20 {
		t.Errorf("matrix = %v", matrix)
	}
	// Window larger than run clamps.
	ids, _ = WorkerMessageMatrix(fakeSteps(), 99)
	if len(ids) != 3 {
		t.Errorf("clamped window = %d", len(ids))
	}
	if ids, _ := WorkerMessageMatrix(nil, 2); ids != nil {
		t.Error("empty steps should give nil")
	}
}

func TestImbalanceRatio(t *testing.T) {
	r := ImbalanceRatio(fakeSteps(), 2)
	// Step 1: max 40, mean 30 → 1.333; step 0: max 10, mean 7.5 → 1.333.
	if r < 1.3 || r > 1.4 {
		t.Errorf("imbalance = %v", r)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "demo", Headers: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.AddRow("3", "4")
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "3") {
		t.Errorf("render output:\n%s", out)
	}
	var csv strings.Builder
	tab.RenderCSV(&csv)
	if !strings.HasPrefix(csv.String(), "a,b\n1,2\n") {
		t.Errorf("csv output: %q", csv.String())
	}
}

func TestSeriesTable(t *testing.T) {
	tab := SeriesTable("t", Series{Name: "x", Values: []float64{1, 2}},
		Series{Name: "y", Values: []float64{3.5}})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "1" || tab.Rows[0][2] != "3.5" {
		t.Errorf("row 0 = %v", tab.Rows[0])
	}
	if tab.Rows[1][2] != "" {
		t.Errorf("short series should pad empty, got %q", tab.Rows[1][2])
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline(Series{Values: []float64{0, 5, 10}})
	if len([]rune(s)) != 3 {
		t.Errorf("sparkline runes = %q", s)
	}
	if Sparkline(Series{}) != "" {
		t.Error("empty series should render empty")
	}
	// All zeros should not panic or index out of range.
	if z := Sparkline(Series{Values: []float64{0, 0}}); len([]rune(z)) != 2 {
		t.Errorf("zeros = %q", z)
	}
}
