// Package webrole implements the paper's web front end (Fig 1): an HTTP
// service where users submit graph jobs and poll their status while the job
// manager and partition workers execute them. Requests specify the
// algorithm, dataset, worker count, partitioning, and (for traversal
// algorithms) the root count and swath heuristics.
package webrole

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/cloud"
	"pregelnet/internal/core"
	"pregelnet/internal/elastic"
	"pregelnet/internal/graph"
	"pregelnet/internal/observe"
	"pregelnet/internal/partition"
)

// JobRequest is the submission payload.
type JobRequest struct {
	// Algorithm: pagerank | bc | apsp | sssp | wcc | lpa.
	Algorithm string `json:"algorithm"`
	// Graph: built-in dataset name (sd | wg | cp | lj).
	Graph string `json:"graph"`
	// Workers is the partition worker count (default 8).
	Workers int `json:"workers,omitempty"`
	// Partitioner: hash | chunk | metis | ldg (default hash).
	Partitioner string `json:"partitioner,omitempty"`
	// Roots bounds bc/apsp traversal sources (default 25).
	Roots int `json:"roots,omitempty"`
	// Iterations for pagerank/lpa (default 30/10).
	Iterations int `json:"iterations,omitempty"`
	// Swath: none | adaptive | sampling (bc/apsp; default adaptive).
	Swath string `json:"swath,omitempty"`
	// Initiate: seq | dynamic | staticN (default dynamic).
	Initiate string `json:"initiate,omitempty"`
	// MemoryMiB caps per-worker memory (0 = default spec).
	MemoryMiB int64 `json:"memoryMiB,omitempty"`
	// ElasticHigh enables live elastic scaling: the job starts at Workers
	// and a threshold controller may resize it between Workers and
	// ElasticHigh at any superstep barrier (0 = fixed worker count).
	ElasticHigh int `json:"elasticHigh,omitempty"`
	// ElasticThreshold is the scale-out trigger: fraction of the peak
	// active-vertex count seen so far (default 0.5, the paper's §VIII value).
	ElasticThreshold float64 `json:"elasticThreshold,omitempty"`
}

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Summary is the completed-job report returned by the status endpoint.
type Summary struct {
	Supersteps  int     `json:"supersteps"`
	Messages    int64   `json:"messages"`
	SimSeconds  float64 `json:"simSeconds"`
	CostDollars float64 `json:"costDollars"`
	WallSeconds float64 `json:"wallSeconds"`
	// VMSeconds is the billed VM time (workers integrated over simulated
	// time, including resize migration and acquisition charges).
	VMSeconds float64 `json:"vmSeconds,omitempty"`
	// FinalWorkers is the worker count at the last superstep; differs from
	// the request's Workers only when live elastic scaling resized the job.
	FinalWorkers int `json:"finalWorkers,omitempty"`
	// ScaleEvents lists the live resizes performed at superstep barriers.
	ScaleEvents []core.ScaleEvent `json:"scaleEvents,omitempty"`
	TopVertices []TopVertex       `json:"topVertices,omitempty"`
	Extra       string            `json:"extra,omitempty"`
}

// TopVertex is one row of a ranked result.
type TopVertex struct {
	Vertex graph.VertexID `json:"vertex"`
	Score  float64        `json:"score"`
}

// JobStatus is the polled job record.
type JobStatus struct {
	ID      int        `json:"id"`
	Request JobRequest `json:"request"`
	State   JobState   `json:"state"`
	Error   string     `json:"error,omitempty"`
	Result  *Summary   `json:"result,omitempty"`

	// recorder is the job's flight recorder, attached at submission so the
	// trace endpoint works for queued, running, failed, and finished jobs
	// alike; it survives job failure by construction.
	recorder *observe.Recorder
	// tracer feeds the recorder; handed to the job spec when the job runs.
	tracer *observe.Tracer
	// queues is the running job's control plane, sampled live by /metrics.
	queues *cloud.QueueService
}

// Server is the web role. It runs jobs sequentially in the background (one
// BSP job at a time, as a single manager VM would).
type Server struct {
	mu      sync.Mutex
	jobs    map[int]*JobStatus
	order   []int
	nextID  int
	queue   chan int
	wg      sync.WaitGroup
	metrics *observe.Metrics
	running *JobStatus // job currently executing (its queues feed /metrics)
}

// NewServer starts the background job runner.
func NewServer() *Server {
	s := &Server{
		jobs:    make(map[int]*JobStatus),
		queue:   make(chan int, 128),
		metrics: observe.NewMetrics(),
	}
	s.wg.Add(1)
	go s.runLoop()
	return s
}

// Close drains the job queue and stops the runner.
func (s *Server) Close() {
	close(s.queue)
	s.wg.Wait()
}

// Handler returns the HTTP routes:
//
//	POST /jobs             submit a JobRequest, returns {"id": N}
//	GET  /jobs             list all jobs
//	GET  /jobs/{id}        poll one job
//	GET  /jobs/{id}/trace  dump the job's flight recorder (?format=jsonl|chrome)
//	GET  /metrics          Prometheus text exposition
//	GET  /healthz          liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := validate(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tracer, rec := observe.NewTraceRecorder(observe.DefaultRecorderCapacity)
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.jobs[id] = &JobStatus{ID: id, Request: req, State: StateQueued,
		recorder: rec, tracer: tracer}
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.queue <- id
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, `{"id":%d}`+"\n", id)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := make([]*JobStatus, 0, len(s.order))
	for _, id := range s.order {
		cp := *s.jobs[id]
		list = append(list, &cp)
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(list)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	job, ok := s.jobs[id]
	var cp JobStatus
	if ok {
		cp = *job
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&cp)
}

func validate(req *JobRequest) error {
	switch req.Algorithm {
	case "pagerank", "bc", "apsp", "sssp", "wcc", "lpa":
	default:
		return fmt.Errorf("unknown algorithm %q", req.Algorithm)
	}
	if graph.Dataset(req.Graph) == nil {
		return fmt.Errorf("unknown graph %q (want sd|wg|cp|lj)", req.Graph)
	}
	if req.Workers == 0 {
		req.Workers = 8
	}
	if req.Workers < 1 || req.Workers > 64 {
		return fmt.Errorf("workers %d out of range [1,64]", req.Workers)
	}
	if req.Partitioner == "" {
		req.Partitioner = "hash"
	}
	if partition.ByName(req.Partitioner) == nil {
		return fmt.Errorf("unknown partitioner %q", req.Partitioner)
	}
	if req.Roots <= 0 {
		req.Roots = 25
	}
	if req.Iterations <= 0 {
		if req.Algorithm == "lpa" {
			req.Iterations = 10
		} else {
			req.Iterations = 30
		}
	}
	if req.Swath == "" {
		req.Swath = "adaptive"
	}
	if req.Initiate == "" {
		req.Initiate = "dynamic"
	}
	if req.ElasticHigh != 0 {
		if req.ElasticHigh <= req.Workers || req.ElasticHigh > 64 {
			return fmt.Errorf("elasticHigh %d out of range (%d,64]", req.ElasticHigh, req.Workers)
		}
		if req.ElasticThreshold == 0 {
			req.ElasticThreshold = 0.5
		}
		if req.ElasticThreshold < 0 || req.ElasticThreshold > 1 {
			return fmt.Errorf("elasticThreshold %g out of range [0,1]", req.ElasticThreshold)
		}
	}
	return nil
}

func (s *Server) runLoop() {
	defer s.wg.Done()
	for id := range s.queue {
		queues := cloud.NewQueueService()
		s.mu.Lock()
		job := s.jobs[id]
		job.State = StateRunning
		job.queues = queues
		s.running = job
		req := job.Request
		tracer := job.tracer
		s.mu.Unlock()

		summary, err := execute(req, tracer, s.metrics, queues)
		s.mu.Lock()
		if err != nil {
			job.State = StateFailed
			job.Error = err.Error()
		} else {
			job.State = StateDone
			job.Result = summary
		}
		s.running = nil
		s.mu.Unlock()
	}
}

// handleHealthz is the liveness probe: the server answers as long as its
// HTTP listener and mux are alive (jobs run on a separate goroutine).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the Prometheus text exposition. Engine counters and
// histograms accumulate into the server-wide registry as jobs run; queue
// depth, lease, age, and redelivery gauges are sampled at scrape time from
// the currently running job's control plane.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	states := map[JobState]int{}
	for _, job := range s.jobs {
		states[job.State]++
	}
	var queues *cloud.QueueService
	if s.running != nil {
		queues = s.running.queues
	}
	s.mu.Unlock()
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed} {
		s.metrics.Gauge("pregel_jobs", "Jobs by lifecycle state.",
			observe.Label{Name: "state", Value: string(st)}).Set(float64(states[st]))
	}
	if queues != nil {
		for name, qs := range queues.Stats() {
			l := observe.Label{Name: "queue", Value: name}
			s.metrics.Gauge("pregel_queue_depth",
				"Visible messages in the queue.", l).Set(float64(qs.Depth))
			s.metrics.Gauge("pregel_queue_leased",
				"Messages hidden by an outstanding visibility lease.", l).Set(float64(qs.Leased))
			s.metrics.Gauge("pregel_queue_oldest_age_seconds",
				"Age of the oldest visible message.", l).Set(qs.OldestAge.Seconds())
			s.metrics.Gauge("pregel_queue_redeliveries",
				"Messages redelivered after a visibility-timeout expiry.", l).Set(float64(qs.Redeliveries))
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

// handleTrace dumps a job's flight recorder. It works for running jobs (the
// recorder is a concurrent ring buffer) and for failed ones (the ring holds
// the events leading up to the failure). ?format=chrome emits a Chrome
// trace_event file loadable in chrome://tracing or Perfetto; the default is
// one JSON event per line.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	job, ok := s.jobs[id]
	var rec *observe.Recorder
	if ok {
		rec = job.recorder
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	var events []observe.Event
	if rec != nil {
		events = rec.Snapshot()
	}
	switch r.URL.Query().Get("format") {
	case "", "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = observe.WriteJSONL(w, events)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = observe.WriteChromeTrace(w, events)
	default:
		http.Error(w, "unknown format (want jsonl|chrome)", http.StatusBadRequest)
	}
}

// instrument attaches the per-job tracer, the server-wide metrics registry,
// and the job's dedicated queue namespace to a spec before core.Run, and
// wires in the live elastic controller when the request asked for one.
// Resizes need checkpoints to roll back failed migrations, so elastic jobs
// get checkpointing defaulted on.
func instrument[M any](spec *core.JobSpec[M], tracer *observe.Tracer, metrics *observe.Metrics, queues *cloud.QueueService, ctrl core.ElasticController) {
	spec.Tracer = tracer
	spec.Metrics = metrics
	spec.Queues = queues
	if ctrl != nil {
		spec.ElasticController = ctrl
		if spec.CheckpointEvery <= 0 {
			spec.CheckpointEvery = 4
		}
	}
}

func execute(req JobRequest, tracer *observe.Tracer, metrics *observe.Metrics, queues *cloud.QueueService) (*Summary, error) {
	g := graph.Dataset(req.Graph)
	assign := partition.ByName(req.Partitioner).Partition(g, req.Workers)
	model := cloud.DefaultCostModel(cloud.LargeVM())
	if req.MemoryMiB > 0 {
		model.Spec = model.Spec.WithMemory(req.MemoryMiB << 20)
	}

	var elasticCtrl core.ElasticController
	if req.ElasticHigh > 0 {
		ctrl, err := elastic.NewLiveController(req.Workers, req.ElasticHigh,
			elastic.ThresholdPolicy{Fraction: req.ElasticThreshold})
		if err != nil {
			return nil, err
		}
		elasticCtrl = ctrl
	}

	top := func(scores []float64, n int) []TopVertex {
		tv := make([]TopVertex, len(scores))
		for v, s := range scores {
			tv[v] = TopVertex{graph.VertexID(v), s}
		}
		sort.Slice(tv, func(i, j int) bool { return tv[i].Score > tv[j].Score })
		if n > len(tv) {
			n = len(tv)
		}
		return tv[:n]
	}
	summarize := func(steps []core.StepStats, sim, cost, wall float64, sup int, vmSec float64, scales []core.ScaleEvent) *Summary {
		var msgs int64
		finalWorkers := req.Workers
		for i := range steps {
			msgs += steps[i].TotalSent()
			if steps[i].Workers > 0 {
				finalWorkers = steps[i].Workers
			}
		}
		return &Summary{Supersteps: sup, Messages: msgs, SimSeconds: sim,
			CostDollars: cost, WallSeconds: wall, VMSeconds: vmSec,
			FinalWorkers: finalWorkers, ScaleEvents: scales}
	}

	switch req.Algorithm {
	case "pagerank":
		spec := algorithms.PageRank{Iterations: req.Iterations, Damping: 0.85}.Spec(g, req.Workers)
		spec.Assignment = assign
		spec.CostModel = model
		instrument(&spec, tracer, metrics, queues, elasticCtrl)
		res, err := core.Run(spec)
		if err != nil {
			return nil, err
		}
		sum := summarize(res.Steps, res.SimSeconds, res.CostDollars, res.WallSeconds, res.Supersteps, res.VMSeconds, res.ScaleEvents)
		sum.TopVertices = top(algorithms.Ranks(res, g.NumVertices()), 10)
		return sum, nil
	case "bc":
		sched, err := scheduler(g, req, model)
		if err != nil {
			return nil, err
		}
		spec := algorithms.BC(g, req.Workers, sched)
		spec.Assignment = assign
		spec.CostModel = model
		instrument(&spec, tracer, metrics, queues, elasticCtrl)
		res, err := core.Run(spec)
		if err != nil {
			return nil, err
		}
		sum := summarize(res.Steps, res.SimSeconds, res.CostDollars, res.WallSeconds, res.Supersteps, res.VMSeconds, res.ScaleEvents)
		sum.TopVertices = top(algorithms.BCScores(res, g.NumVertices()), 10)
		return sum, nil
	case "apsp":
		sched, err := scheduler(g, req, model)
		if err != nil {
			return nil, err
		}
		spec := algorithms.APSP(g, req.Workers, sched)
		spec.Assignment = assign
		spec.CostModel = model
		instrument(&spec, tracer, metrics, queues, elasticCtrl)
		res, err := core.Run(spec)
		if err != nil {
			return nil, err
		}
		sum := summarize(res.Steps, res.SimSeconds, res.CostDollars, res.WallSeconds, res.Supersteps, res.VMSeconds, res.ScaleEvents)
		sum.Extra = fmt.Sprintf("distances computed from %d roots", req.Roots)
		return sum, nil
	case "sssp":
		spec := algorithms.SSSP(g, req.Workers, 0)
		spec.Assignment = assign
		spec.CostModel = model
		instrument(&spec, tracer, metrics, queues, elasticCtrl)
		res, err := core.Run(spec)
		if err != nil {
			return nil, err
		}
		return summarize(res.Steps, res.SimSeconds, res.CostDollars, res.WallSeconds, res.Supersteps, res.VMSeconds, res.ScaleEvents), nil
	case "wcc":
		spec := algorithms.WCC(g, req.Workers)
		spec.Assignment = assign
		spec.CostModel = model
		instrument(&spec, tracer, metrics, queues, elasticCtrl)
		res, err := core.Run(spec)
		if err != nil {
			return nil, err
		}
		labels := algorithms.WCCLabels(res, g.NumVertices())
		comps := map[int32]bool{}
		for _, l := range labels {
			comps[l] = true
		}
		sum := summarize(res.Steps, res.SimSeconds, res.CostDollars, res.WallSeconds, res.Supersteps, res.VMSeconds, res.ScaleEvents)
		sum.Extra = fmt.Sprintf("%d connected components", len(comps))
		return sum, nil
	case "lpa":
		spec := algorithms.LPA(g, req.Workers, req.Iterations)
		spec.Assignment = assign
		spec.CostModel = model
		instrument(&spec, tracer, metrics, queues, elasticCtrl)
		res, err := core.Run(spec)
		if err != nil {
			return nil, err
		}
		labels := algorithms.LPALabels(res, g.NumVertices())
		comms := map[int32]bool{}
		for _, l := range labels {
			comms[l] = true
		}
		sum := summarize(res.Steps, res.SimSeconds, res.CostDollars, res.WallSeconds, res.Supersteps, res.VMSeconds, res.ScaleEvents)
		sum.Extra = fmt.Sprintf("%d communities", len(comms))
		return sum, nil
	}
	return nil, fmt.Errorf("unreachable algorithm %q", req.Algorithm)
}

func scheduler(g *graph.Graph, req JobRequest, model cloud.CostModel) (core.SwathScheduler, error) {
	sources := core.FirstNSources(g, req.Roots)
	if req.Swath == "none" {
		return core.NewAllAtOnce(sources), nil
	}
	target := model.Spec.MemoryBytes * 6 / 7
	var sizer core.SwathSizer
	switch req.Swath {
	case "adaptive":
		sizer = &core.AdaptiveSizer{Initial: max(2, req.Roots/4), TargetMemoryBytes: target}
	case "sampling":
		sizer = &core.SamplingSizer{SampleSize: max(2, req.Roots/4), Samples: 2, TargetMemoryBytes: target}
	default:
		return nil, fmt.Errorf("unknown swath mode %q", req.Swath)
	}
	var init core.SwathInitiator
	switch {
	case req.Initiate == "seq":
		init = core.SequentialInitiator{}
	case req.Initiate == "dynamic":
		init = core.DynamicPeakInitiator{}
	case strings.HasPrefix(req.Initiate, "static"):
		n, err := strconv.Atoi(strings.TrimPrefix(req.Initiate, "static"))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad initiation %q", req.Initiate)
		}
		init = core.StaticNInitiator(n)
	default:
		return nil, fmt.Errorf("unknown initiation %q", req.Initiate)
	}
	return core.NewSwathRunner(sources, sizer, init), nil
}
