// Package webrole is the paper's original single-job web front end (Fig 1),
// kept as a thin compatibility layer over the multi-tenant job service in
// internal/jobserver. The types are aliases and the server is a jobserver
// configured to run one job at a time, exactly as a single manager VM
// would; new code should use jobserver directly.
package webrole

import (
	"pregelnet/internal/jobserver"
)

// JobRequest is the submission payload.
type JobRequest = jobserver.JobRequest

// JobState is a job's lifecycle phase.
type JobState = jobserver.JobState

// Job lifecycle states.
const (
	StateQueued    = jobserver.StateQueued
	StateRunning   = jobserver.StateRunning
	StatePreempted = jobserver.StatePreempted
	StateDone      = jobserver.StateDone
	StateFailed    = jobserver.StateFailed
)

// Summary is the completed-job report returned by the status endpoint.
type Summary = jobserver.Summary

// TopVertex is one row of a ranked result.
type TopVertex = jobserver.TopVertex

// JobStatus is the polled job record.
type JobStatus = jobserver.JobStatus

// Server is the web role: a job service restricted to one running job.
type Server = jobserver.Server

// NewServer starts a single-job server (sequential execution, as the
// paper's one manager VM provides).
func NewServer() *Server {
	s, err := jobserver.New(jobserver.Config{MaxConcurrent: 1})
	if err != nil {
		// The default config is statically valid; reaching this is a bug.
		panic(err)
	}
	return s
}
