package webrole

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pregelnet/internal/observe"
)

func submit(t *testing.T, ts *httptest.Server, req JobRequest) int {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var out struct{ ID int }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

func await(t *testing.T, ts *httptest.Server, id int) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return &st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job did not finish")
	return nil
}

func TestSubmitAndCompletePageRank(t *testing.T) {
	s := NewServer()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submit(t, ts, JobRequest{Algorithm: "pagerank", Graph: "sd", Workers: 4, Iterations: 10})
	st := await(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if st.Result == nil || st.Result.Supersteps != 11 {
		t.Fatalf("result = %+v", st.Result)
	}
	if len(st.Result.TopVertices) != 10 {
		t.Errorf("top vertices = %d", len(st.Result.TopVertices))
	}
	if st.Result.TopVertices[0].Score < st.Result.TopVertices[9].Score {
		t.Error("top vertices not sorted")
	}
}

func TestSubmitBCWithSwaths(t *testing.T) {
	s := NewServer()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submit(t, ts, JobRequest{
		Algorithm: "bc", Graph: "sd", Workers: 4, Roots: 10,
		Partitioner: "metis", Swath: "adaptive", Initiate: "dynamic",
	})
	st := await(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if st.Result.Messages == 0 || st.Result.SimSeconds <= 0 {
		t.Errorf("result = %+v", st.Result)
	}
}

func TestAllAlgorithmsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("web role full sweep in -short mode")
	}
	s := NewServer()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := map[string]int{}
	for _, algo := range []string{"apsp", "sssp", "wcc", "lpa"} {
		ids[algo] = submit(t, ts, JobRequest{Algorithm: algo, Graph: "sd", Workers: 3, Roots: 8, Iterations: 5})
	}
	for algo, id := range ids {
		st := await(t, ts, id)
		if st.State != StateDone {
			t.Errorf("%s: state=%s err=%s", algo, st.State, st.Error)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	s := NewServer()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []JobRequest{
		{Algorithm: "nope", Graph: "sd"},
		{Algorithm: "pagerank", Graph: "nope"},
		{Algorithm: "pagerank", Graph: "sd", Workers: 1000},
		{Algorithm: "pagerank", Graph: "sd", Partitioner: "nope"},
	}
	for i, req := range cases {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed json: status = %d", resp.StatusCode)
	}
}

func TestListAndNotFound(t *testing.T) {
	s := NewServer()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit(t, ts, JobRequest{Algorithm: "sssp", Graph: "sd", Workers: 2})
	submit(t, ts, JobRequest{Algorithm: "wcc", Graph: "sd", Workers: 2})

	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 2 || list[0].ID != 0 || list[1].ID != 1 {
		t.Errorf("list = %+v", list)
	}

	resp, err = http.Get(ts.URL + "/jobs/999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/jobs/abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status = %d", resp.StatusCode)
	}
}

func TestFailedJobReportsError(t *testing.T) {
	s := NewServer()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// A tiny memory ceiling forces a blowout failure.
	id := submit(t, ts, JobRequest{Algorithm: "bc", Graph: "sd", Workers: 2, Roots: 20,
		Swath: "none", MemoryMiB: 1})
	st := await(t, ts, id)
	if st.State != StateFailed || st.Error == "" {
		t.Errorf("state=%s err=%q, want failed with message", st.State, st.Error)
	}
}

func TestHealthz(t *testing.T) {
	s := NewServer()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := NewServer()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submit(t, ts, JobRequest{Algorithm: "pagerank", Graph: "sd", Workers: 3, Iterations: 5})
	if st := await(t, ts, id); st.State != StateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	exp := string(body)
	for _, frag := range []string{
		"# TYPE pregel_jobs gauge",
		`pregel_jobs{state="done"} 1`,
		"# TYPE pregel_supersteps_total counter",
		"pregel_batches_sent_total",
		"pregel_queue_wait_seconds_bucket",
	} {
		if !strings.Contains(exp, frag) {
			t.Errorf("exposition missing %q:\n%s", frag, exp)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	s := NewServer()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submit(t, ts, JobRequest{Algorithm: "sssp", Graph: "sd", Workers: 2})
	if st := await(t, ts, id); st.State != StateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}

	// Default format: JSONL, one event per line, readable by the exporter's
	// own decoder, including the top-level job span.
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d/trace", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	events, err := observe.ReadJSONL(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading jsonl trace: %v", err)
	}
	jobs := 0
	for _, e := range events {
		if e.Kind == observe.KindJob {
			jobs++
		}
	}
	if len(events) == 0 || jobs != 1 {
		t.Errorf("jsonl trace: %d events, %d job spans", len(events), jobs)
	}

	// Chrome format round-trips through the trace_event decoder.
	resp, err = http.Get(fmt.Sprintf("%s/jobs/%d/trace?format=chrome", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	chromeEvents, err := observe.ReadChromeTrace(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading chrome trace: %v", err)
	}
	if len(chromeEvents) != len(events) {
		t.Errorf("chrome trace has %d events, jsonl has %d", len(chromeEvents), len(events))
	}

	// Unknown format and unknown job are client errors.
	resp, err = http.Get(fmt.Sprintf("%s/jobs/%d/trace?format=bogus", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus format status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/jobs/999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job trace status = %d", resp.StatusCode)
	}
}

func TestElasticJobScalesAndReports(t *testing.T) {
	s := NewServer()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submit(t, ts, JobRequest{
		Algorithm: "bc", Graph: "sd", Workers: 2, Roots: 8,
		Swath: "none", ElasticHigh: 5,
	})
	st := await(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Result.ScaleEvents) == 0 {
		t.Fatalf("no scale events: %+v", st.Result)
	}
	for _, ev := range st.Result.ScaleEvents {
		if ev.FromWorkers == ev.ToWorkers || ev.MigratedBytes <= 0 {
			t.Errorf("bad scale event %+v", ev)
		}
	}
	if st.Result.VMSeconds <= 0 {
		t.Errorf("VMSeconds = %g, want > 0", st.Result.VMSeconds)
	}
	if st.Result.FinalWorkers != 2 && st.Result.FinalWorkers != 5 {
		t.Errorf("FinalWorkers = %d, want 2 or 5", st.Result.FinalWorkers)
	}
	// The defaulted threshold must round-trip into the stored request.
	if st.Request.ElasticThreshold != 0.5 {
		t.Errorf("ElasticThreshold = %g, want defaulted 0.5", st.Request.ElasticThreshold)
	}
}

func TestElasticValidation(t *testing.T) {
	s := NewServer()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []JobRequest{
		{Algorithm: "bc", Graph: "sd", Workers: 4, ElasticHigh: 4},   // high == low
		{Algorithm: "bc", Graph: "sd", Workers: 4, ElasticHigh: 2},   // high < low
		{Algorithm: "bc", Graph: "sd", Workers: 4, ElasticHigh: 100}, // over cap
		{Algorithm: "bc", Graph: "sd", Workers: 2, ElasticHigh: 5, ElasticThreshold: 1.5},
	}
	for i, req := range cases {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
}
