package experiments

import (
	"fmt"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
	"pregelnet/internal/partition"
)

// FigSubgraph measures the subgraph-centric (partition-centric) compute
// mode against the vertex-centric baseline — the GoFFish/Giraph++ claim
// that converging each partition locally between barriers collapses both
// the superstep count (to the partition-hop diameter) and the message
// volume (to boundary traffic only).
//
// Three traversal workloads run under both models on a high-diameter mesh
// and on the web-like WG', each under hash and multilevel (metis)
// partitioning. The interaction is the point: under hash partitioning most
// edges are boundary edges, so there is little "local" to converge and the
// subgraph model mostly wins supersteps; under multilevel partitioning the
// partitions are connected neighborhoods and both supersteps and messages
// collapse. PageRank-style fixed-iteration workloads are excluded by
// construction — every vertex updates every superstep, so partition-local
// convergence has nothing to skip.
func FigSubgraph(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rows, err := subgraphComparisons(cfg)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title: "Vertex-centric vs subgraph-centric: supersteps and message volume",
		Headers: []string{"graph", "partitioner", "workload",
			"steps (vtx)", "steps (sub)", "step ratio",
			"msgs (vtx)", "msgs (sub)", "remote (vtx)", "remote (sub)", "remote ratio",
			"sim-s (vtx)", "sim-s (sub)"},
	}
	for _, r := range rows {
		t.AddRow(r.graph, r.partitioner, r.workload,
			fmt.Sprintf("%d", r.vertex.supersteps), fmt.Sprintf("%d", r.subgraph.supersteps),
			fmtRatio(r.stepRatio()),
			fmt.Sprintf("%d", r.vertex.total), fmt.Sprintf("%d", r.subgraph.total),
			fmt.Sprintf("%d", r.vertex.remote), fmt.Sprintf("%d", r.subgraph.remote),
			fmtRatio(r.remoteRatio()),
			fmtSeconds(r.vertex.simSec), fmtSeconds(r.subgraph.simSec))
	}
	return &Report{
		ID:     "figsubgraph",
		Title:  "Subgraph-centric compute mode (extension)",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"step ratio = vertex supersteps / subgraph supersteps; remote ratio = vertex remote messages / subgraph remote messages (higher = subgraph wins)",
			"results are identical across models: bit-identical for sssp/wcc (integer min fixpoints), ULP-equal for bc (different float association order)",
			"grid-64x64 is the diameter-126 stress case; WG' shows the small-world regime where the superstep win is bounded by the ~6-hop diameter",
			"bc trades volume for barriers: converged (dist, sigma) boundary re-pushes are uncombined, so remote traffic rises while supersteps drop ~4.5x on the mesh — the win is barrier count, not bytes",
		},
	}, nil
}

// modelRun condenses one job run to the quantities the comparison reports.
type modelRun struct {
	supersteps int
	total      int64
	remote     int64
	simSec     float64
}

func summarizeModelRun[M any](res *core.JobResult[M]) modelRun {
	r := modelRun{supersteps: res.Supersteps, simSec: res.SimSeconds}
	for i := range res.Steps {
		r.total += res.Steps[i].TotalSent()
		r.remote += res.Steps[i].SentRemote
	}
	return r
}

// subgraphRow is one (graph, partitioner, workload) comparison.
type subgraphRow struct {
	graph       string
	partitioner string
	workload    string
	vertex      modelRun
	subgraph    modelRun
}

func (r subgraphRow) stepRatio() float64 {
	return float64(r.vertex.supersteps) / float64(r.subgraph.supersteps)
}

func (r subgraphRow) remoteRatio() float64 {
	return float64(r.vertex.remote) / float64(r.subgraph.remote)
}

func runModelPair[M any](vspec, sspec core.JobSpec[M], asn partition.Assignment) (vertex, sub modelRun, err error) {
	vspec.Assignment = asn
	sspec.Assignment = asn
	vres, err := core.Run(vspec)
	if err != nil {
		return vertex, sub, err
	}
	sres, err := core.Run(sspec)
	if err != nil {
		return vertex, sub, err
	}
	return summarizeModelRun(vres), summarizeModelRun(sres), nil
}

func subgraphComparisons(cfg Config) ([]subgraphRow, error) {
	grid := graph.Grid(64, 64)
	grid.SetName("grid-64x64")
	graphs := []*graph.Graph{grid, graph.DatasetWG()}
	partitioners := []partition.Partitioner{partition.Hash{}, partition.NewMultilevel()}
	var rows []subgraphRow
	for _, g := range graphs {
		roots := experimentRoots(g, cfg.rootsFor(g))
		for _, p := range partitioners {
			asn := p.Partition(g, cfg.Workers)
			add := func(workload string, v, s modelRun) {
				rows = append(rows, subgraphRow{
					graph: g.Name(), partitioner: p.Name(), workload: workload,
					vertex: v, subgraph: s,
				})
			}

			v, s, err := runModelPair(
				algorithms.SSSP(g, cfg.Workers, 0),
				algorithms.SSSPSubgraph(g, cfg.Workers, 0), asn)
			if err != nil {
				return nil, fmt.Errorf("sssp on %s/%s: %w", g.Name(), p.Name(), err)
			}
			add("sssp", v, s)

			v, s, err = runModelPair(
				algorithms.WCC(g, cfg.Workers),
				algorithms.WCCSubgraph(g, cfg.Workers), asn)
			if err != nil {
				return nil, fmt.Errorf("wcc on %s/%s: %w", g.Name(), p.Name(), err)
			}
			add("wcc", v, s)

			bv, bs, err := runModelPair(
				algorithms.BC(g, cfg.Workers, core.NewAllAtOnce(roots)),
				algorithms.BCSubgraph(g, cfg.Workers, roots), asn)
			if err != nil {
				return nil, fmt.Errorf("bc on %s/%s: %w", g.Name(), p.Name(), err)
			}
			add("bc", bv, bs)
		}
	}
	return rows, nil
}
