package experiments

import (
	"fmt"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
)

// Fig5 reproduces the memory-usage-over-time comparison for BC on WG': the
// baseline single swath rides at (and beyond) the physical memory ceiling —
// it is spilling to virtual memory — while the heuristics hold usage near
// the 6/7 target. Curves close to the target mean good utilization; curves
// at the ceiling mean thrash.
func Fig5(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	g := graph.DatasetWG()
	env, err := newBCSwathEnvironment(cfg, g)
	if err != nil {
		return nil, err
	}

	type run struct {
		name string
		res  *core.JobResult[bcMsg]
	}
	var runs []run

	base, err := env.runBaseline()
	if err != nil {
		return nil, err
	}
	runs = append(runs, run{"baseline (single swath)", base})

	sampling, err := env.runWith(env.samplingSizer(), core.SequentialInitiator{}, env.workers)
	if err != nil {
		return nil, err
	}
	runs = append(runs, run{"sampling heuristic", sampling})

	adaptive, err := env.runWith(env.adaptiveSizer(), core.SequentialInitiator{}, env.workers)
	if err != nil {
		return nil, err
	}
	runs = append(runs, run{"adaptive heuristic", adaptive})

	t := &metrics.Table{
		Title: fmt.Sprintf("Fig 5: peak worker memory over (simulated) time, BC on %s; phys=%s MiB target=%s MiB",
			g.Name(), fmtBytes(env.physMem), fmtBytes(env.target)),
		Headers: []string{"configuration", "superstep", "elapsed sim-s", "peak mem (MiB)", "vs phys"},
	}
	notes := []string{}
	for _, r := range runs {
		elapsed := metrics.CumulativeSimTime(r.res.Steps)
		mem := metrics.PeakMemoryPerStep(r.res.Steps)
		for i := range r.res.Steps {
			t.AddRow(r.name,
				fmt.Sprintf("%d", r.res.Steps[i].Superstep),
				fmtSeconds(elapsed.Values[i]),
				fmtBytes(int64(mem.Values[i])),
				fmtRatio(mem.Values[i]/float64(env.physMem)))
		}
		notes = append(notes, fmt.Sprintf("%-28s %s (peak %.2fx phys)", r.name+":",
			metrics.Sparkline(mem), float64(r.res.PeakMemory())/float64(env.physMem)))
	}
	notes = append(notes,
		"expected shape: baseline exceeds 1.0x phys (virtual-memory spill); heuristics ride near the 6/7 target without crossing 1.0x")
	return &Report{ID: "fig5", Title: "Memory usage over time", Tables: []*metrics.Table{t}, Notes: notes}, nil
}
