package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
)

// FigConfined measures what a single worker failure costs under the two
// recovery modes. A BC job checkpoints every 3 supersteps and loses one
// worker's VM mid-run; the duplicated work the recovery performs is read
// from the RecoveryEvent the engine records:
//
//   - global rollback re-executes the lost supersteps on EVERY worker, so
//     its duplicated worker-seconds stay roughly constant as workers are
//     added (n workers each redo 1/n of the graph);
//   - confined recovery re-executes them on the failed worker only, while
//     survivors replay logged messages (network cost, no compute), so its
//     duplicated work shrinks as 1/n.
//
// The gap therefore grows with the worker count — the property that makes
// confined recovery the right default on pay-per-use clouds, where every
// re-executed worker-second is billed.
func FigConfined(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title: "Confined vs global recovery: duplicated work for one lost worker (BC, checkpoint every 3, failure at superstep 5)",
		Headers: []string{"graph", "workers", "clean sim-s",
			"recovery-s (global)", "recovery-s (confined)", "global/confined",
			"replayed-MiB", "vm-s (global)", "vm-s (confined)"},
	}
	notes := []string{
		"recovery-s = duplicated worker-seconds of the recovery (summed, not overlapped: every re-executing or replaying worker bills on top of the critical path)",
		"global re-executes the lost supersteps on all n workers; confined re-executes them on the failed worker only while survivors replay logged traffic",
	}
	const failAt = 5
	for _, g := range []*graph.Graph{graph.DatasetWG(), graph.DatasetCP()} {
		roots := experimentRoots(g, cfg.rootsFor(g))
		for _, workers := range []int{cfg.Workers / 2, cfg.Workers, cfg.Workers * 2} {
			clean, err := runBCRecovery(g, workers, roots, "", 0)
			if err != nil {
				return nil, fmt.Errorf("clean run on %s x%d: %w", g.Name(), workers, err)
			}
			global, err := runBCRecovery(g, workers, roots, core.RecoverGlobal, failAt)
			if err != nil {
				return nil, fmt.Errorf("global-recovery run on %s x%d: %w", g.Name(), workers, err)
			}
			confined, err := runBCRecovery(g, workers, roots, core.RecoverConfined, failAt)
			if err != nil {
				return nil, fmt.Errorf("confined-recovery run on %s x%d: %w", g.Name(), workers, err)
			}
			gev, err := soleRecovery(global, false)
			if err != nil {
				return nil, fmt.Errorf("%s x%d: %w", g.Name(), workers, err)
			}
			cev, err := soleRecovery(confined, true)
			if err != nil {
				return nil, fmt.Errorf("%s x%d: %w", g.Name(), workers, err)
			}
			t.AddRow(g.Name(), fmt.Sprintf("%d", workers), fmtSeconds(clean.SimSeconds),
				fmtSeconds(gev.RecoverySeconds), fmtSeconds(cev.RecoverySeconds),
				fmtRatio(gev.RecoverySeconds/cev.RecoverySeconds),
				fmtBytes(cev.ReplayedBytes),
				fmtSeconds(global.VMSeconds), fmtSeconds(confined.VMSeconds))
		}
	}
	return &Report{
		ID:     "figconfined",
		Title:  "Confined vs global recovery cost (extension)",
		Tables: []*metrics.Table{t},
		Notes:  notes,
	}, nil
}

// runBCRecovery runs BC with checkpoints and, when mode is set, a one-shot
// failure of worker 1 at the end of superstep failAt under that recovery
// mode.
func runBCRecovery(g *graph.Graph, workers int, roots []graph.VertexID,
	mode core.RecoveryMode, failAt int) (*core.JobResult[algorithms.BCMsg], error) {
	spec := algorithms.BC(g, workers, core.NewAllAtOnce(roots))
	spec.CostModel = hugeMemoryModel()
	spec.CheckpointEvery = 3
	if mode != "" {
		spec.RecoveryMode = mode
		var fired atomic.Bool
		spec.FailureInjector = func(worker, superstep int) error {
			if worker == 1 && superstep == failAt && !fired.Swap(true) {
				return errors.New("experiment: worker 1's VM lost")
			}
			return nil
		}
	}
	return core.Run(spec)
}

// soleRecovery returns the run's single recovery event and checks it used
// the expected mode.
func soleRecovery(res *core.JobResult[algorithms.BCMsg], confined bool) (core.RecoveryEvent, error) {
	if len(res.RecoveryEvents) != 1 {
		return core.RecoveryEvent{}, fmt.Errorf("recorded %d recovery events, want 1", len(res.RecoveryEvents))
	}
	ev := res.RecoveryEvents[0]
	if ev.Confined != confined {
		return core.RecoveryEvent{}, fmt.Errorf("recovery confined=%v, want %v", ev.Confined, confined)
	}
	return ev, nil
}
