package experiments

import (
	"fmt"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
	"pregelnet/internal/partition"
)

// Fig8 reproduces the partitioning evaluation (§VII): relative simulated
// time for PageRank, BC, and APSP on WG' and CP' partitioned with
// METIS-style multilevel and streaming (LDG), normalized to hash
// partitioning (smaller is better). The paper finds WG improves ~42-50%
// with METIS while CP shows little or no improvement — despite similar edge
// cuts — because BSP's barrier makes per-superstep load imbalance as
// important as total remote traffic.
func Fig8(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	model := hugeMemoryModel() // heuristics off: pure partitioning comparison
	t := &metrics.Table{
		Title:   "Fig 8: relative time vs hash partitioning (smaller is better)",
		Headers: []string{"graph", "app", "strategy", "sim-s", "relative to hash", "% remote msgs"},
	}
	partitioners := []partition.Partitioner{
		partition.Hash{},
		partition.NewMultilevel(),
		partition.NewLDG(partition.DefaultSlack),
	}
	for _, g := range []*graph.Graph{graph.DatasetWG(), graph.DatasetCP()} {
		roots := experimentRoots(g, cfg.rootsFor(g))
		for _, app := range []string{"PageRank", "BC", "APSP"} {
			var hashTime float64
			for _, p := range partitioners {
				assign := p.Partition(g, cfg.Workers)
				var sim float64
				var remoteFrac float64
				switch app {
				case "PageRank":
					spec := algorithms.PageRank{Iterations: cfg.PageRankIterations, Damping: 0.85}.Spec(g, cfg.Workers)
					spec.CostModel = model
					spec.Assignment = assign
					spec.Tracer = cfg.Tracer
					res, err := core.Run(spec)
					if err != nil {
						return nil, err
					}
					sim, remoteFrac = res.SimSeconds, remoteFraction(res.Steps)
				case "BC":
					res, err := runBC(g, cfg.Workers, core.NewAllAtOnce(roots), model, assign, cfg.Tracer)
					if err != nil {
						return nil, err
					}
					sim, remoteFrac = res.SimSeconds, remoteFraction(res.Steps)
				case "APSP":
					spec := algorithms.APSP(g, cfg.Workers, core.NewAllAtOnce(roots))
					spec.CostModel = model
					spec.Assignment = assign
					spec.Tracer = cfg.Tracer
					res, err := core.Run(spec)
					if err != nil {
						return nil, err
					}
					sim, remoteFrac = res.SimSeconds, remoteFraction(res.Steps)
				}
				if p.Name() == "hash" {
					hashTime = sim
				}
				t.AddRow(g.Name(), app, p.Name(), fmtSeconds(sim),
					fmtRatio(sim/hashTime), fmt.Sprintf("%.0f%%", 100*remoteFrac))
			}
		}
	}
	return &Report{
		ID:    "fig8",
		Title: "Partitioning relative time",
		Notes: []string{
			"expected shape: WG' improves substantially under METIS (paper: 42-50%) and less under streaming (24-35%)",
			"expected shape: CP' improves much less despite similar edge cut — barrier-amplified load imbalance (see fig9_12/fig10_14)",
			"swath heuristics are off for a clean comparison, as in the paper's Fig 8 runs",
		},
		Tables: []*metrics.Table{t},
	}, nil
}

func remoteFraction(steps []core.StepStats) float64 {
	var local, remote int64
	for i := range steps {
		local += steps[i].SentLocal
		remote += steps[i].SentRemote
	}
	if local+remote == 0 {
		return 0
	}
	return float64(remote) / float64(local+remote)
}
