package experiments

import (
	"errors"
	"fmt"

	"pregelnet/internal/cloud"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
)

// Fig6 reproduces the swath *initiation* heuristic evaluation (§VI.C): with
// swath sizes fixed (the adaptive sizer), compare when the next swath starts
// — strictly sequentially (baseline), every N supersteps (static-N), or on
// the dynamic message-traffic peak detector. Overlapping swath executions
// flattens resource usage and removes synchronization overhead; the paper
// reports up to 24% speedup for the dynamic heuristic on WG, with the best
// static N being graph-dependent (N=4 best for CP, N=6 for WG) — exactly
// the guesswork the dynamic heuristic eliminates.
func Fig6(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title: "Fig 6: speedup of initiation heuristics vs sequential initiation (taller is better)",
		Headers: []string{"graph", "initiation", "sim-s", "speedup vs sequential",
			"supersteps", "peak mem/phys"},
	}
	notes := []string{}
	for _, g := range []*graph.Graph{graph.DatasetWG(), graph.DatasetCP()} {
		env, err := newBCSwathEnvironment(cfg, g)
		if err != nil {
			return nil, err
		}
		sizer := env.adaptiveSizer()
		seq, err := env.runWith(sizer, core.SequentialInitiator{}, env.workers)
		if err != nil {
			return nil, fmt.Errorf("sequential on %s: %w", g.Name(), err)
		}
		add := func(name string, res *core.JobResult[bcMsg], err error) error {
			if errors.Is(err, cloud.ErrMemoryBlowout) {
				// Initiating too soon stacked swath peaks past the restart
				// limit: the fabric killed the worker — the failure mode the
				// paper warns about for aggressive static-N.
				t.AddRow(g.Name(), name, "failed", "-", "-", ">1.60 (VM restarted)")
				return nil
			}
			if err != nil {
				return err
			}
			t.AddRow(g.Name(), name, fmtSeconds(res.SimSeconds),
				fmtRatio(seq.SimSeconds/res.SimSeconds),
				fmt.Sprintf("%d", res.Supersteps),
				fmtRatio(float64(res.PeakMemory())/float64(env.physMem)))
			return nil
		}
		if err := add("sequential (baseline)", seq, nil); err != nil {
			return nil, err
		}
		for _, n := range []int{2, 4, 6, 8} {
			res, err := env.runWith(env.adaptiveSizer(), core.StaticNInitiator(n), env.workers)
			if err := add(fmt.Sprintf("static-%d", n), res, err); err != nil {
				return nil, fmt.Errorf("static-%d on %s: %w", n, g.Name(), err)
			}
		}
		dyn, err := env.runWith(env.adaptiveSizer(), core.DynamicPeakInitiator{}, env.workers)
		if err := add("dynamic (peak detection)", dyn, err); err != nil {
			return nil, fmt.Errorf("dynamic on %s: %w", g.Name(), err)
		}
		notes = append(notes, fmt.Sprintf("%s: sequential took %d supersteps; overlap reduces cumulative supersteps and barrier overhead", g.Name(), seq.Supersteps))
	}
	notes = append(notes,
		"expected shape: overlapping beats sequential; best static N is graph-dependent; dynamic approaches the best static without hand tuning",
		"static-N with N below the traversal ramp can overshoot memory and lose its advantage (the paper's 'exacerbating resource demand')")
	return &Report{ID: "fig6", Title: "Swath initiation heuristics", Tables: []*metrics.Table{t}, Notes: notes}, nil
}
