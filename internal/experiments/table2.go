package experiments

import (
	"fmt"

	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
	"pregelnet/internal/partition"
)

// Table2 reproduces the in-text partition-quality comparison (§VII): the
// percentage of remote (cut) edges for hash, METIS-style multilevel, and
// streaming (LDG) partitioning into 8 parts of WG and CP. The paper reports
// 87/18/35% for WG and 86/17/65% for CP.
func Table2(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	k := cfg.Workers
	t := &metrics.Table{
		Title:   fmt.Sprintf("Partition quality, k=%d (%% remote edges; paper: WG 87/18/35, CP 86/17/65)", k),
		Headers: []string{"graph", "strategy", "% remote edges", "balance (max/ideal)"},
	}
	partitioners := []partition.Partitioner{
		partition.Hash{},
		partition.NewMultilevel(),
		partition.NewLDG(partition.DefaultSlack),
	}
	for _, g := range []*graph.Graph{graph.DatasetWG(), graph.DatasetCP()} {
		for _, p := range partitioners {
			q, err := partition.Evaluate(g, p.Partition(g, k), k, p.Name())
			if err != nil {
				return nil, err
			}
			t.AddRow(g.Name(), p.Name(),
				fmt.Sprintf("%.0f%%", 100*q.CutFraction),
				fmt.Sprintf("%.3f", q.Balance))
		}
	}
	return &Report{
		ID:     "table2",
		Title:  "Partition quality",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"expected ordering: metis < ldg < hash cut fraction on both graphs",
		},
	}, nil
}
