package experiments

import (
	"fmt"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
)

// Fig3 reproduces the message-waveform comparison on WG': the average
// number of messages transferred per worker in each superstep, for one
// static swath of seven vertices of BC and APSP (triangle waveforms that
// ramp to a peak near the average shortest-path length, then drain) and for
// PageRank over the whole graph (a flat line). The paper measures ~637k
// avg messages/worker/superstep for PageRank and peaks of 4.7M (BC) and
// 3M (APSP) for the single swath.
func Fig3(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	g := graph.DatasetWG()
	model := hugeMemoryModel()
	const swathSize = 7 // the paper's "single swath of seven vertices"
	roots := algorithms.Sources(g, swathSize)

	bcRes, err := runBC(g, cfg.Workers, core.NewAllAtOnce(roots), model, nil, cfg.Tracer)
	if err != nil {
		return nil, err
	}
	apspSpec := algorithms.APSP(g, cfg.Workers, core.NewAllAtOnce(roots))
	apspSpec.CostModel = model
	apspSpec.Tracer = cfg.Tracer
	apspRes, err := core.Run(apspSpec)
	if err != nil {
		return nil, err
	}
	prSpec := algorithms.PageRank{Iterations: cfg.PageRankIterations, Damping: 0.85}.Spec(g, cfg.Workers)
	prSpec.CostModel = model
	prSpec.Tracer = cfg.Tracer
	prRes, err := core.Run(prSpec)
	if err != nil {
		return nil, err
	}

	perWorker := func(steps []core.StepStats) metrics.Series {
		s := metrics.MessagesPerStep(steps)
		for i := range s.Values {
			s.Values[i] /= float64(cfg.Workers)
		}
		return s
	}
	bc := perWorker(bcRes.Steps)
	bc.Name = "BC (1 swath of 7)"
	apsp := perWorker(apspRes.Steps)
	apsp.Name = "APSP (1 swath of 7)"
	pr := perWorker(prRes.Steps)
	pr.Name = "PageRank (all vertices)"

	table := metrics.SeriesTable(
		fmt.Sprintf("Fig 3: avg messages per worker per superstep, %s, %d workers", g.Name(), cfg.Workers),
		bc, apsp, pr)

	return &Report{
		ID:    "fig3",
		Title: "Message waveforms",
		Notes: []string{
			"BC:        " + metrics.Sparkline(bc),
			"APSP:      " + metrics.Sparkline(apsp),
			"PageRank:  " + metrics.Sparkline(pr),
			"expected shape: PageRank flat; BC and APSP triangle waves with BC peaking higher (backward pass)",
		},
		Tables: []*metrics.Table{table},
	}, nil
}
