package experiments

import (
	"fmt"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
)

// Fig2 reproduces the application-runtime comparison: total (simulated) time
// for PageRank, BC, and APSP on WG' and CP' with 8 workers, plus PageRank on
// LJ'. As in the paper, BC and APSP are run over a sampled root subset and
// extrapolated to all |V| roots (BC traverses the whole graph from each
// root, so per-root cost is stable); PageRank runs to completion. The paper
// observes BC/APSP ~4 orders of magnitude slower than PageRank on the full
// datasets; on the ~100x-smaller analogs the expected gap is ~|V|/:factor
// smaller but still orders of magnitude.
func Fig2(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	model := hugeMemoryModel()
	t := &metrics.Table{
		Title: "Fig 2: total time (simulated seconds, log-scale quantity)",
		Headers: []string{"graph", "app", "sampled roots", "sampled sim-s",
			"extrapolated sim-s (all |V| roots)", "supersteps", "messages"},
	}

	for _, g := range []*graph.Graph{graph.DatasetWG(), graph.DatasetCP()} {
		roots := experimentRoots(g, cfg.rootsFor(g))
		scale := float64(g.NumVertices()) / float64(len(roots))

		// PageRank runs to completion (30 iterations).
		prSpec := algorithms.PageRank{Iterations: cfg.PageRankIterations, Damping: 0.85}.Spec(g, cfg.Workers)
		prSpec.CostModel = model
		prSpec.Tracer = cfg.Tracer
		pr, err := core.Run(prSpec)
		if err != nil {
			return nil, err
		}
		t.AddRow(g.Name(), "PageRank", "-", fmtSeconds(pr.SimSeconds), fmtSeconds(pr.SimSeconds),
			fmt.Sprintf("%d", pr.Supersteps), fmt.Sprintf("%d", pr.TotalMessages()))

		// BC, sampled + extrapolated. Swaths keep memory bounded as in the
		// real runs; sequential initiation for a clean per-root cost.
		bcRes, err := runBC(g, cfg.Workers,
			core.NewSwathRunner(roots, core.StaticSizer(initialProbeSize(len(roots))), core.SequentialInitiator{}),
			model, nil, cfg.Tracer)
		if err != nil {
			return nil, err
		}
		t.AddRow(g.Name(), "BC", fmt.Sprintf("%d", len(roots)), fmtSeconds(bcRes.SimSeconds),
			fmtSeconds(bcRes.SimSeconds*scale),
			fmt.Sprintf("%d", bcRes.Supersteps), fmt.Sprintf("%d", bcRes.TotalMessages()))

		// APSP, sampled + extrapolated.
		apspSpec := algorithms.APSP(g, cfg.Workers,
			core.NewSwathRunner(roots, core.StaticSizer(initialProbeSize(len(roots))), core.SequentialInitiator{}))
		apspSpec.CostModel = model
		apspSpec.Tracer = cfg.Tracer
		apspRes, err := core.Run(apspSpec)
		if err != nil {
			return nil, err
		}
		t.AddRow(g.Name(), "APSP", fmt.Sprintf("%d", len(roots)), fmtSeconds(apspRes.SimSeconds),
			fmtSeconds(apspRes.SimSeconds*scale),
			fmt.Sprintf("%d", apspRes.Supersteps), fmt.Sprintf("%d", apspRes.TotalMessages()))
	}

	// LJ' runs PageRank only: BC/APSP did not fit worker memory in the
	// paper, and the same holds proportionally here.
	lj := graph.DatasetLJ()
	prSpec := algorithms.PageRank{Iterations: cfg.PageRankIterations, Damping: 0.85}.Spec(lj, cfg.Workers)
	prSpec.CostModel = model
	prSpec.Tracer = cfg.Tracer
	pr, err := core.Run(prSpec)
	if err != nil {
		return nil, err
	}
	t.AddRow(lj.Name(), "PageRank", "-", fmtSeconds(pr.SimSeconds), fmtSeconds(pr.SimSeconds),
		fmt.Sprintf("%d", pr.Supersteps), fmt.Sprintf("%d", pr.TotalMessages()))

	return &Report{
		ID:    "fig2",
		Title: "Application runtimes",
		Notes: []string{
			"expected shape: BC > APSP >> PageRank by orders of magnitude after extrapolation",
			"paper: 4 orders of magnitude on full-size graphs; scaled analogs give |V|-proportional smaller gaps",
		},
		Tables: []*metrics.Table{t},
	}, nil
}
