package experiments

import (
	"fmt"

	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
)

// Table1 reproduces the dataset-properties table: vertex and edge counts and
// the 90% effective diameter of each (scaled) dataset analog, with the
// paper's original values alongside for comparison.
func Table1(cfg Config) (*Report, error) {
	paper := map[string][3]string{
		graph.NameSD: {"82,168", "948,464", "4.7"},
		graph.NameWG: {"875,713", "5,105,039", "8.1"},
		graph.NameCP: {"3,774,768", "16,518,948", "9.4"},
		graph.NameLJ: {"4,847,571", "68,993,773", "6.5"},
	}
	t := &metrics.Table{
		Title: "Table 1: evaluation datasets (scaled analogs vs paper originals)",
		Headers: []string{"graph", "vertices", "edges", "90% eff. diameter",
			"avg degree", "max degree", "paper V", "paper E", "paper diam"},
	}
	for _, g := range graph.AllDatasets() {
		st := graph.ComputeStats(g, 16, 1234)
		p := paper[g.Name()]
		t.AddRow(g.Name(),
			fmt.Sprintf("%d", st.Vertices),
			fmt.Sprintf("%d", st.Edges),
			fmt.Sprintf("%.1f", st.EffectiveDiameter),
			fmt.Sprintf("%.1f", st.AvgDegree),
			fmt.Sprintf("%d", st.MaxDegree),
			p[0], p[1], p[2])
	}
	return &Report{
		ID:    "table1",
		Title: "Dataset properties",
		Notes: []string{
			"datasets are deterministic synthetic analogs ~50-150x smaller than the SNAP originals",
			"small-world shape preserved: short effective diameter, heavy-tailed degrees (SD'/WG'/LJ'), mesh locality (CP')",
		},
		Tables: []*metrics.Table{t},
	}, nil
}
