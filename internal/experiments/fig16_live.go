package experiments

import (
	"fmt"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/cloud"
	"pregelnet/internal/core"
	"pregelnet/internal/elastic"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
	"pregelnet/internal/partition"
)

// Fig16Live re-runs the paper's Fig 16 comparison with the engine's live
// elastic controller instead of the offline projection: fixed-low and
// fixed-high BC runs are measured as before, and the "dynamic" row is an
// actual run that starts at the low count and lets the threshold policy
// resize the job at superstep barriers — paying real provisioning latency
// and vertex-state migration along the way. The projection (fig16) ignores
// those overheads; this experiment shows the dynamic policy still
// approaches fixed-high time at below fixed-high VM-seconds once they are
// charged.
func Fig16Live(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title: "Fig 16 (live): measured elastic scaling, normalized to the low-count run (smaller is better)",
		Headers: []string{"graph", "policy", "sim-s", "rel. time", "vm-seconds", "rel. cost",
			"resizes", "migrated-MiB"},
	}
	t2 := &metrics.Table{
		Title: "Fig 16 (live) resize strategies: same small-delta events (N-1 <-> N workers, LDG layout), incremental delta vs hash full reshuffle",
		Headers: []string{"graph", "strategy", "resizes", "moved-vx", "migrated-MiB",
			"resize-s", "vm-seconds", "cut-before", "cut-after"},
	}
	notes := []string{}
	for _, g := range []*graph.Graph{graph.DatasetWG(), graph.DatasetCP()} {
		roots := experimentRoots(g, cfg.rootsFor(g))
		swathSize := initialProbeSize(len(roots)) * 2
		mkSched := func() core.SwathScheduler {
			return core.NewSwathRunner(roots, core.StaticSizer(swathSize), core.StaticNInitiator(6))
		}

		// Same memory calibration as the offline profile: the ceiling lets
		// the high count fit while the low count thrashes in its peak
		// supersteps, so scaling out at peaks buys real time.
		probe, err := runBC(g, cfg.Workers, mkSched(), hugeMemoryModel(), nil, cfg.Tracer)
		if err != nil {
			return nil, err
		}
		model := scaledModel(int64(1.7 * float64(probe.PeakMemory())))
		lowW, highW := cfg.Workers/2, cfg.Workers

		// All three runs checkpoint at the same cadence: the elastic run
		// needs checkpoints to roll back failed migrations, so the fixed
		// baselines carry the same fault-tolerance overhead.
		low, err := runBCElastic(g, lowW, mkSched(), model, nil, cfg)
		if err != nil {
			return nil, fmt.Errorf("low-count run on %s: %w", g.Name(), err)
		}
		high, err := runBCElastic(g, highW, mkSched(), model, nil, cfg)
		if err != nil {
			return nil, fmt.Errorf("high-count run on %s: %w", g.Name(), err)
		}
		ctrl, err := elastic.NewLiveController(lowW, highW, elastic.ThresholdPolicy{Fraction: 0.5})
		if err != nil {
			return nil, err
		}
		live, err := runBCElastic(g, lowW, mkSched(), model, ctrl, cfg)
		if err != nil {
			return nil, fmt.Errorf("live elastic run on %s: %w", g.Name(), err)
		}

		var migrated int64
		for _, ev := range live.ScaleEvents {
			migrated += ev.MigratedBytes
		}
		addRow := func(policy string, res *core.JobResult[algorithms.BCMsg], resizes int, mig int64) {
			t.AddRow(g.Name(), policy,
				fmtSeconds(res.SimSeconds), fmtRatio(res.SimSeconds/low.SimSeconds),
				fmtSeconds(res.VMSeconds), fmtRatio(res.VMSeconds/low.VMSeconds),
				fmt.Sprintf("%d", resizes), fmt.Sprintf("%.2f", float64(mig)/(1<<20)))
		}
		addRow(fmt.Sprintf("fixed-%dw", lowW), low, 0, 0)
		addRow(fmt.Sprintf("fixed-%dw", highW), high, 0, 0)
		addRow("live-dynamic-50%", live, len(live.ScaleEvents), migrated)

		if len(live.ScaleEvents) == 0 {
			notes = append(notes, fmt.Sprintf("%s: WARNING — the live controller never resized", g.Name()))
		} else {
			notes = append(notes, fmt.Sprintf(
				"%s: %d live resizes; dynamic %.2fx fixed-%dw time at %.2fx its VM-seconds (incl. provisioning + migration)",
				g.Name(), len(live.ScaleEvents),
				live.SimSeconds/high.SimSeconds, highW, live.VMSeconds/high.VMSeconds))
		}

		// Resize-strategy comparison: drive the same small-delta N-1 <-> N
		// events (the common elastic case — one VM joining or leaving) from
		// an LDG layout and bill incremental delta repartitioning against a
		// hash full reshuffle. Both runs see identical barrier decisions, so
		// the migrated bytes and resize-window seconds are apples to apples.
		dLow, dHigh := cfg.Workers-1, cfg.Workers
		layout := partition.NewLDG(partition.DefaultSlack).Partition(g, dLow)
		mkCtrl := func() (core.ElasticController, error) {
			return elastic.NewLiveController(dLow, dHigh, elastic.ThresholdPolicy{Fraction: 0.5})
		}
		var strat struct{ inc, hash resizeStats }
		for _, s := range []struct {
			name   string
			repart partition.Partitioner
			out    *resizeStats
		}{
			{"incremental", partition.NewIncremental(), &strat.inc},
			{"hash(full)", partition.Hash{}, &strat.hash},
		} {
			ctrl, err := mkCtrl()
			if err != nil {
				return nil, err
			}
			res, err := runBCElasticLayout(g, dLow, mkSched(), model, ctrl, cfg, layout, s.repart)
			if err != nil {
				return nil, fmt.Errorf("%s resize run on %s: %w", s.name, g.Name(), err)
			}
			*s.out = summarizeResizes(res.ScaleEvents)
			s.out.vmSeconds = res.VMSeconds
			t2.AddRow(g.Name(), s.name, fmt.Sprintf("%d", s.out.resizes),
				fmt.Sprintf("%d", s.out.movedVertices),
				fmt.Sprintf("%.2f", float64(s.out.migratedBytes)/(1<<20)),
				fmtSeconds(s.out.resizeSeconds), fmtSeconds(res.VMSeconds),
				fmt.Sprintf("%.1f%%", 100*s.out.cutBefore), fmt.Sprintf("%.1f%%", 100*s.out.cutAfter))
		}
		switch {
		case strat.hash.resizes == 0 || strat.inc.resizes != strat.hash.resizes:
			notes = append(notes, fmt.Sprintf("%s: WARNING — strategy runs diverged (%d vs %d resizes)",
				g.Name(), strat.inc.resizes, strat.hash.resizes))
		default:
			notes = append(notes, fmt.Sprintf(
				"%s: incremental migrated %.1f%% of hash's bytes over %d identical events; resize windows %.2fs vs %.2fs; post-resize cut %.1f%% vs pre-resize %.1f%% (hash reshuffle lands at %.1f%%)",
				g.Name(), 100*float64(strat.inc.migratedBytes)/float64(strat.hash.migratedBytes),
				strat.inc.resizes, strat.inc.resizeSeconds, strat.hash.resizeSeconds,
				100*strat.inc.cutAfter, 100*strat.inc.cutBefore, 100*strat.hash.cutAfter))
		}
	}
	notes = append(notes,
		"expected shape: live-dynamic approaches the fixed-high time at below fixed-high VM-seconds, even after paying real scale-out/in overheads the fig16 projection ignores",
		"expected shape: on N-1 <-> N events the incremental delta migrates a small fraction of the hash reshuffle's bytes (min-move is ~1/N of the graph vs ~(N-1)/N), shortens the resize window, and keeps the LDG cut instead of collapsing it to ~(N-1)/N remote")
	return &Report{ID: "fig16live", Title: "Elastic scaling, live controller", Tables: []*metrics.Table{t, t2}, Notes: notes}, nil
}

// resizeStats aggregates the ScaleEvents of one elastic run.
type resizeStats struct {
	resizes       int
	movedVertices int
	migratedBytes int64
	resizeSeconds float64
	vmSeconds     float64
	cutBefore     float64 // cut fraction before the first resize
	cutAfter      float64 // cut fraction after the last resize
}

func summarizeResizes(evs []core.ScaleEvent) resizeStats {
	s := resizeStats{resizes: len(evs)}
	for i, ev := range evs {
		s.movedVertices += ev.MovedVertices
		s.migratedBytes += ev.MigratedBytes
		s.resizeSeconds += ev.SimSeconds
		if i == 0 {
			s.cutBefore = ev.CutBefore
		}
		s.cutAfter = ev.CutAfter
	}
	return s
}

// runBCElastic runs BC with a live elastic controller wired into the spec
// (checkpointing on, so failed migrations can roll back).
func runBCElastic(g *graph.Graph, workers int, sched core.SwathScheduler,
	model cloud.CostModel, ctrl core.ElasticController, cfg Config) (*core.JobResult[algorithms.BCMsg], error) {
	return runBCElasticLayout(g, workers, sched, model, ctrl, cfg, nil, nil)
}

// runBCElasticLayout is runBCElastic with an explicit initial assignment and
// resize repartitioner (either may be nil for the engine defaults).
func runBCElasticLayout(g *graph.Graph, workers int, sched core.SwathScheduler,
	model cloud.CostModel, ctrl core.ElasticController, cfg Config,
	assign partition.Assignment, repart partition.Partitioner) (*core.JobResult[algorithms.BCMsg], error) {
	spec := algorithms.BC(g, workers, sched)
	spec.CostModel = model
	spec.Tracer = cfg.Tracer
	spec.ElasticController = ctrl
	spec.CheckpointEvery = 4
	if assign != nil {
		spec.Assignment = append(partition.Assignment(nil), assign...)
	}
	spec.Repartitioner = repart
	return core.Run(spec)
}
