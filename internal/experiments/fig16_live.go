package experiments

import (
	"fmt"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/cloud"
	"pregelnet/internal/core"
	"pregelnet/internal/elastic"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
)

// Fig16Live re-runs the paper's Fig 16 comparison with the engine's live
// elastic controller instead of the offline projection: fixed-low and
// fixed-high BC runs are measured as before, and the "dynamic" row is an
// actual run that starts at the low count and lets the threshold policy
// resize the job at superstep barriers — paying real provisioning latency
// and vertex-state migration along the way. The projection (fig16) ignores
// those overheads; this experiment shows the dynamic policy still
// approaches fixed-high time at below fixed-high VM-seconds once they are
// charged.
func Fig16Live(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title: "Fig 16 (live): measured elastic scaling, normalized to the low-count run (smaller is better)",
		Headers: []string{"graph", "policy", "sim-s", "rel. time", "vm-seconds", "rel. cost",
			"resizes", "migrated-MiB"},
	}
	notes := []string{}
	for _, g := range []*graph.Graph{graph.DatasetWG(), graph.DatasetCP()} {
		roots := experimentRoots(g, cfg.rootsFor(g))
		swathSize := initialProbeSize(len(roots)) * 2
		mkSched := func() core.SwathScheduler {
			return core.NewSwathRunner(roots, core.StaticSizer(swathSize), core.StaticNInitiator(6))
		}

		// Same memory calibration as the offline profile: the ceiling lets
		// the high count fit while the low count thrashes in its peak
		// supersteps, so scaling out at peaks buys real time.
		probe, err := runBC(g, cfg.Workers, mkSched(), hugeMemoryModel(), nil, cfg.Tracer)
		if err != nil {
			return nil, err
		}
		model := scaledModel(int64(1.7 * float64(probe.PeakMemory())))
		lowW, highW := cfg.Workers/2, cfg.Workers

		// All three runs checkpoint at the same cadence: the elastic run
		// needs checkpoints to roll back failed migrations, so the fixed
		// baselines carry the same fault-tolerance overhead.
		low, err := runBCElastic(g, lowW, mkSched(), model, nil, cfg)
		if err != nil {
			return nil, fmt.Errorf("low-count run on %s: %w", g.Name(), err)
		}
		high, err := runBCElastic(g, highW, mkSched(), model, nil, cfg)
		if err != nil {
			return nil, fmt.Errorf("high-count run on %s: %w", g.Name(), err)
		}
		ctrl, err := elastic.NewLiveController(lowW, highW, elastic.ThresholdPolicy{Fraction: 0.5})
		if err != nil {
			return nil, err
		}
		live, err := runBCElastic(g, lowW, mkSched(), model, ctrl, cfg)
		if err != nil {
			return nil, fmt.Errorf("live elastic run on %s: %w", g.Name(), err)
		}

		var migrated int64
		for _, ev := range live.ScaleEvents {
			migrated += ev.MigratedBytes
		}
		addRow := func(policy string, res *core.JobResult[algorithms.BCMsg], resizes int, mig int64) {
			t.AddRow(g.Name(), policy,
				fmtSeconds(res.SimSeconds), fmtRatio(res.SimSeconds/low.SimSeconds),
				fmtSeconds(res.VMSeconds), fmtRatio(res.VMSeconds/low.VMSeconds),
				fmt.Sprintf("%d", resizes), fmt.Sprintf("%.2f", float64(mig)/(1<<20)))
		}
		addRow(fmt.Sprintf("fixed-%dw", lowW), low, 0, 0)
		addRow(fmt.Sprintf("fixed-%dw", highW), high, 0, 0)
		addRow("live-dynamic-50%", live, len(live.ScaleEvents), migrated)

		if len(live.ScaleEvents) == 0 {
			notes = append(notes, fmt.Sprintf("%s: WARNING — the live controller never resized", g.Name()))
		} else {
			notes = append(notes, fmt.Sprintf(
				"%s: %d live resizes; dynamic %.2fx fixed-%dw time at %.2fx its VM-seconds (incl. provisioning + migration)",
				g.Name(), len(live.ScaleEvents),
				live.SimSeconds/high.SimSeconds, highW, live.VMSeconds/high.VMSeconds))
		}
	}
	notes = append(notes,
		"expected shape: live-dynamic approaches the fixed-high time at below fixed-high VM-seconds, even after paying real scale-out/in overheads the fig16 projection ignores")
	return &Report{ID: "fig16live", Title: "Elastic scaling, live controller", Tables: []*metrics.Table{t}, Notes: notes}, nil
}

// runBCElastic runs BC with a live elastic controller wired into the spec
// (checkpointing on, so failed migrations can roll back).
func runBCElastic(g *graph.Graph, workers int, sched core.SwathScheduler,
	model cloud.CostModel, ctrl core.ElasticController, cfg Config) (*core.JobResult[algorithms.BCMsg], error) {
	spec := algorithms.BC(g, workers, sched)
	spec.CostModel = model
	spec.Tracer = cfg.Tracer
	spec.ElasticController = ctrl
	spec.CheckpointEvery = 4
	return core.Run(spec)
}
