// Package experiments regenerates every table and figure of the paper's
// evaluation on the scaled synthetic datasets (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results).
//
// Each experiment returns a Report of plain-text tables. Absolute numbers
// are in simulated seconds from the deterministic cost model; the claims
// under reproduction are the *shapes*: who wins, by what factor, and where
// the crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/cloud"
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
	"pregelnet/internal/observe"
	"pregelnet/internal/partition"
)

// Config controls experiment scale. The zero value is usable via
// DefaultConfig.
type Config struct {
	// Workers is the standard worker count (the paper uses 8).
	Workers int
	// RootsWG / RootsCP are the sampled BC/APSP root counts for the WG' and
	// CP' graphs. The paper samples 75 and 50 on the full datasets; the
	// defaults here are scaled with the graphs. The swath experiments use
	// these as the baseline "largest successful swath" totals too (the
	// paper's were 40 and 25).
	RootsWG int
	RootsCP int
	// PageRankIterations matches the paper's 30.
	PageRankIterations int
	// Tracer, when set, records structured engine events (superstep,
	// barrier, compute, swath spans) for every run an experiment performs;
	// cmd/experiments -trace wires it to a flight recorder and dumps a
	// Chrome trace_event file. Nil costs nothing.
	Tracer *observe.Tracer
}

// DefaultConfig returns the standard experiment scale.
func DefaultConfig() Config {
	return Config{Workers: 8, RootsWG: 28, RootsCP: 20, PageRankIterations: 30}
}

// QuickConfig returns a reduced scale for benchmarks and smoke tests.
func QuickConfig() Config {
	return Config{Workers: 8, RootsWG: 10, RootsCP: 8, PageRankIterations: 10}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.RootsWG <= 0 {
		c.RootsWG = d.RootsWG
	}
	if c.RootsCP <= 0 {
		c.RootsCP = d.RootsCP
	}
	if c.PageRankIterations <= 0 {
		c.PageRankIterations = d.PageRankIterations
	}
	return c
}

// experimentRoots returns the sampled BC/APSP root set for a dataset.
// WG' takes the lowest vertex IDs — like Google's arbitrary web-page IDs,
// these land at random positions in the graph. CP' mirrors cit-Patents,
// whose IDs are chronological patent numbers: consecutive IDs are
// temporally clustered in the citation graph, so its root set is a
// BFS ball around one vertex. This locality is what concentrates traversal
// activity in a few METIS partitions (§VII's CP load imbalance).
func experimentRoots(g *graph.Graph, n int) []graph.VertexID {
	if g.Name() != graph.NameCP {
		return algorithms.Sources(g, n)
	}
	dist := graph.BFS(g, 0)
	ball := make([]graph.VertexID, 0, n)
	for radius := int32(0); len(ball) < n; radius++ {
		for v := range dist {
			if dist[v] == radius && len(ball) < n {
				ball = append(ball, graph.VertexID(v))
			}
		}
	}
	return ball
}

// rootsFor returns the sampled root count for a dataset.
func (c Config) rootsFor(g *graph.Graph) int {
	switch g.Name() {
	case graph.NameCP:
		return c.RootsCP
	default:
		return c.RootsWG
	}
}

// Report is an experiment's rendered result.
type Report struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Notes  []string
}

// Render writes the report as text.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Title)
	for _, note := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", note)
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
	}
	for _, t := range r.Tables {
		t.Render(w)
		fmt.Fprintln(w)
	}
}

// Experiment is a registered paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Report, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Dataset properties (Table 1)", Table1},
		{"table2", "Partition quality: % remote edges (in-text table)", Table2},
		{"fig2", "Total time for PageRank, BC, APSP (Fig 2)", Fig2},
		{"fig3", "Messages per superstep waveforms (Fig 3)", Fig3},
		{"fig4", "Swath size heuristic speedups (Fig 4)", Fig4},
		{"fig5", "Memory usage over time (Fig 5)", Fig5},
		{"fig6", "Swath initiation heuristic speedups (Fig 6)", Fig6},
		{"fig7", "Message transfers over time by initiation heuristic (Fig 7)", Fig7},
		{"fig8", "Partitioning: relative time vs hash (Fig 8)", Fig8},
		{"fig9_12", "Compute vs barrier-wait breakdown and utilization (Figs 9, 12)", Fig9And12},
		{"fig10_14", "Per-worker messages in peak supersteps (Figs 10, 11, 13, 14)", Fig10Through14},
		{"fig15", "Per-superstep 8v4 speedup and active vertices (Fig 15)", Fig15},
		{"fig16", "Elastic scaling: time and cost projections (Fig 16)", Fig16},
		{"fig16live", "Elastic scaling: live resize at superstep barriers (Fig 16, measured)", Fig16Live},
		{"figconfined", "Confined vs global recovery: duplicated work on worker failure (extension)", FigConfined},
		{"figsubgraph", "Subgraph-centric vs vertex-centric compute mode (extension)", FigSubgraph},
		{"ext_buffering", "Extension: disk vs memory buffering under pressure", ExtBuffering},
		{"ext_partitioners", "Extension: partitioner sweep across datasets and k", ExtPartitioners},
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}

// ---- shared machinery ----

// bcMsg is a local alias for the BC wire message type.
type bcMsg = algorithms.BCMsg

// scaledModel returns the experiment cost model with the given physical
// memory ceiling and an extra-punitive thrash factor (paper §IV:
// virtual-memory paging is worse than disk-based buffering due to its
// random access pattern).
func scaledModel(mem int64) cloud.CostModel {
	m := cloud.DefaultCostModel(cloud.LargeVM().WithMemory(mem))
	m.ThrashMaxFactor = 12
	return m
}

// hugeMemoryModel returns the experiment cost model with an effectively
// unlimited memory ceiling (for calibration probes and memory-insensitive
// experiments).
func hugeMemoryModel() cloud.CostModel {
	return scaledModel(1 << 50)
}

// runBC runs betweenness centrality and fails loudly on engine errors.
func runBC(g *graph.Graph, workers int, sched core.SwathScheduler,
	model cloud.CostModel, assign partition.Assignment, tr *observe.Tracer) (*core.JobResult[algorithms.BCMsg], error) {
	spec := algorithms.BC(g, workers, sched)
	spec.CostModel = model
	spec.Assignment = assign
	spec.Tracer = tr
	return core.Run(spec)
}

// calibrateBCMemory probes the peak per-worker memory of a single
// all-at-once swath of `roots` sources, with no ceiling. Experiments derive
// their physical memory ceilings from this, mirroring how the paper's
// baseline is "the largest swath size we could successfully complete".
func calibrateBCMemory(g *graph.Graph, workers, roots int) (int64, error) {
	res, err := runBC(g, workers, core.NewAllAtOnce(experimentRoots(g, roots)), hugeMemoryModel(), nil, nil)
	if err != nil {
		return 0, err
	}
	return res.PeakMemory(), nil
}

// bcSwathEnvironment is the calibrated setup shared by the swath experiments
// (Figs 4-7): a memory ceiling chosen so the baseline single swath of
// `roots` sources spills into virtual memory (thrash) but still completes —
// the paper's §VI.B baseline — and the 6/7 target the heuristics aim for.
type bcSwathEnvironment struct {
	g        *graph.Graph
	workers  int
	roots    []graph.VertexID
	physMem  int64
	target   int64
	model    cloud.CostModel
	peakFull int64 // probe peak of the full single swath
	tracer   *observe.Tracer
}

func newBCSwathEnvironment(cfg Config, g *graph.Graph) (*bcSwathEnvironment, error) {
	roots := cfg.rootsFor(g)
	peak, err := calibrateBCMemory(g, cfg.Workers, roots)
	if err != nil {
		return nil, fmt.Errorf("calibration on %s: %w", g.Name(), err)
	}
	// The baseline swath peaks at ~1.45x the physical ceiling: deep in
	// virtual-memory territory but under the 1.6x restart limit (paper:
	// "allowing them to spill to virtual memory").
	phys := int64(float64(peak) / 1.45)
	env := &bcSwathEnvironment{
		g:        g,
		workers:  cfg.Workers,
		roots:    experimentRoots(g, roots),
		physMem:  phys,
		target:   phys * 6 / 7, // the paper's 6 GB target on 7 GB VMs
		model:    scaledModel(phys),
		peakFull: peak,
		tracer:   cfg.Tracer,
	}
	return env, nil
}

// runBaseline executes the paper's baseline: the whole root set as one
// swath, spilling into virtual memory.
func (env *bcSwathEnvironment) runBaseline() (*core.JobResult[algorithms.BCMsg], error) {
	return runBC(env.g, env.workers, core.NewAllAtOnce(env.roots), env.model, nil, env.tracer)
}

// runWith executes the root set under a sizer+initiator pair.
func (env *bcSwathEnvironment) runWith(sizer core.SwathSizer, init core.SwathInitiator,
	workers int) (*core.JobResult[algorithms.BCMsg], error) {
	return runBC(env.g, workers, core.NewSwathRunner(env.roots, sizer, init), env.model, nil, env.tracer)
}

func (env *bcSwathEnvironment) adaptiveSizer() core.SwathSizer {
	return &core.AdaptiveSizer{Initial: initialProbeSize(len(env.roots)), TargetMemoryBytes: env.target}
}

func (env *bcSwathEnvironment) samplingSizer() core.SwathSizer {
	return &core.SamplingSizer{
		SampleSize:        initialProbeSize(len(env.roots)),
		Samples:           2,
		TargetMemoryBytes: env.target,
	}
}

func initialProbeSize(totalRoots int) int {
	s := totalRoots / 4
	if s < 2 {
		s = 2
	}
	return s
}

// fmtSeconds renders simulated seconds compactly.
func fmtSeconds(s float64) string { return fmt.Sprintf("%.2f", s) }

// fmtRatio renders a ratio/speedup.
func fmtRatio(r float64) string { return fmt.Sprintf("%.2f", r) }

// fmtBytes renders byte counts in MiB for readability.
func fmtBytes(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }

// sortedKeys returns map keys in sorted order for deterministic tables.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
