package experiments

import (
	"fmt"

	"pregelnet/internal/core"
	"pregelnet/internal/elastic"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
)

// elasticProfile builds the 4-vs-8-worker superstep-aligned profile for BC
// on a dataset, with swath heuristics off in favour of fixed swath sizes and
// initiation intervals (§VIII: "to provide a fair and focused comparison").
// The memory ceiling is calibrated so peak supersteps thrash at 4 workers
// but fit at 8 — the mechanism behind the paper's observed super-linear
// speedup spikes.
func elasticProfile(cfg Config, g *graph.Graph) (*elastic.Profile, error) {
	roots := experimentRoots(g, cfg.rootsFor(g))
	swathSize := initialProbeSize(len(roots)) * 2
	interval := 6 // fixed initiation interval
	mkSched := func() core.SwathScheduler {
		return core.NewSwathRunner(roots, core.StaticSizer(swathSize), core.StaticNInitiator(interval))
	}

	// Probe with 8 workers and no ceiling to find the peak footprint.
	probe, err := runBC(g, cfg.Workers, mkSched(), hugeMemoryModel(), nil, cfg.Tracer)
	if err != nil {
		return nil, err
	}
	// At 4 workers each holds ~2x the messages; a ceiling of 1.7x the
	// 8-worker peak lets 8 workers fit while 4 workers spill past the
	// ceiling only in their peak supersteps (~1.2x, inside the restart
	// limit) — the oscillation Fig 15 shows.
	model := scaledModel(int64(1.7 * float64(probe.PeakMemory())))

	low, err := runBC(g, cfg.Workers/2, mkSched(), model, nil, cfg.Tracer)
	if err != nil {
		return nil, fmt.Errorf("4-worker run on %s: %w", g.Name(), err)
	}
	high, err := runBC(g, cfg.Workers, mkSched(), model, nil, cfg.Tracer)
	if err != nil {
		return nil, fmt.Errorf("8-worker run on %s: %w", g.Name(), err)
	}
	return elastic.NewProfile(cfg.Workers/2, low.Steps, cfg.Workers, high.Steps)
}

// Fig15 reproduces the per-superstep speedup profile: the speedup of 8
// workers over 4 at each superstep (bottom) against the number of active
// vertices (top). The paper finds super-linear (>2x) spikes correlated with
// active-vertex peaks and sub-linear (even <1x) speedup in the troughs.
func Fig15(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	var tables []*metrics.Table
	notes := []string{}
	for _, g := range []*graph.Graph{graph.DatasetWG(), graph.DatasetCP()} {
		p, err := elasticProfile(cfg, g)
		if err != nil {
			return nil, err
		}
		speedup := metrics.Series{Name: "speedup 8w vs 4w", Values: p.SpeedupPerStep()}
		active := metrics.Series{Name: "active vertices"}
		for _, a := range p.ActivePerStep() {
			active.Values = append(active.Values, float64(a))
		}
		t := metrics.SeriesTable(
			fmt.Sprintf("Fig 15: per-superstep speedup and active vertices, BC on %s", g.Name()),
			active, speedup)
		tables = append(tables, t)

		super, sub := 0, 0
		for _, s := range speedup.Values {
			if s > 2 {
				super++
			}
			if s > 0 && s < 1 {
				sub++
			}
		}
		notes = append(notes, fmt.Sprintf("%s: %d superlinear (>2x) supersteps, %d slowdown (<1x) supersteps; active %s | speedup %s",
			g.Name(), super, sub, metrics.Sparkline(active), metrics.Sparkline(speedup)))
	}
	notes = append(notes, "expected shape: superlinear spikes at active-vertex peaks (memory pressure relief), sub-linear troughs (barrier overhead of 8 workers)")
	return &Report{ID: "fig15", Title: "Elastic speedup profile", Tables: tables, Notes: notes}, nil
}

// Fig16 reproduces the elastic-scaling projection: estimated BC time under
// fixed 4-worker, fixed 8-worker, dynamic (scale to 8 when >50% of peak
// vertices are active), and oracle scaling, normalized to the 4-worker run,
// with pro-rata VM-second cost on the secondary axis. The paper finds the
// dynamic policy achieves ~8-worker performance at ~4-worker (or lower)
// cost, close to the oracle.
func Fig16(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title: "Fig 16: elastic scaling projections, normalized to 4 workers (smaller is better)",
		Headers: []string{"graph", "policy", "sim-s", "rel. time", "vm-seconds", "rel. cost",
			"supersteps@8w", "scale changes"},
	}
	notes := []string{}
	for _, g := range []*graph.Graph{graph.DatasetWG(), graph.DatasetCP()} {
		p, err := elasticProfile(cfg, g)
		if err != nil {
			return nil, err
		}
		for _, est := range elastic.CompareAll(p) {
			t.AddRow(g.Name(), est.Policy,
				fmtSeconds(est.Seconds), fmtRatio(est.RelTime4),
				fmtSeconds(est.VMSeconds), fmtRatio(est.RelCost4),
				fmt.Sprintf("%d", est.StepsAtHigh), fmt.Sprintf("%d", est.ScaleChanges))
		}
		notes = append(notes, fmt.Sprintf("%s: projections ignore scale-out/in overheads, as the paper's do", g.Name()))
	}
	notes = append(notes,
		"expected shape: dynamic ~matches fixed-8 time at ~fixed-4 (or lower) cost; oracle is the lower bound")
	return &Report{ID: "fig16", Title: "Elastic scaling model", Tables: []*metrics.Table{t}, Notes: notes}, nil
}
