package experiments

import (
	"fmt"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
	"pregelnet/internal/partition"
)

// Fig9And12 reproduces the runtime breakdowns (Figs 9 and 12): BC on WG'
// and CP' under each partitioning, split into compute+I/O time versus
// barrier-wait time, with the VM utilization percentage. The paper's
// counter-intuitive finding: hash has the *highest* utilization but also
// the highest total time; METIS inverts both.
func Fig9And12(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	model := hugeMemoryModel()
	t := &metrics.Table{
		Title: "Figs 9 & 12: BC time breakdown by partitioning",
		Headers: []string{"graph", "strategy", "compute+I/O sim-s", "barrier-wait sim-s",
			"total sim-s", "utilization %"},
	}
	partitioners := []partition.Partitioner{
		partition.Hash{}, partition.NewMultilevel(), partition.NewLDG(partition.DefaultSlack),
	}
	for _, g := range []*graph.Graph{graph.DatasetWG(), graph.DatasetCP()} {
		roots := experimentRoots(g, cfg.rootsFor(g))
		for _, p := range partitioners {
			res, err := runBC(g, cfg.Workers, core.NewAllAtOnce(roots), model, p.Partition(g, cfg.Workers), cfg.Tracer)
			if err != nil {
				return nil, err
			}
			b := metrics.ComputeBreakdown(res.Steps)
			t.AddRow(g.Name(), p.Name(),
				fmtSeconds(b.ActiveSeconds), fmtSeconds(b.WaitSeconds),
				fmtSeconds(b.TotalSeconds), fmt.Sprintf("%.0f%%", 100*b.Utilization))
		}
	}
	return &Report{
		ID:    "fig9_12",
		Title: "Time breakdown and utilization",
		Notes: []string{
			"expected shape: hash has the highest utilization AND the highest total time; metis the inverse",
		},
		Tables: []*metrics.Table{t},
	}, nil
}

// Fig10Through14 reproduces the per-worker message distributions in the
// peak supersteps of BC (Figs 10, 11, 13, 14): hash spreads messages almost
// uniformly across workers, while METIS concentrates traversal activity in
// a few partitions — much more severely on CP' (the paper observes one
// worker emitting 2x the messages of another in superstep 9), which is why
// good partitioning fails to speed CP up under BSP's barrier.
func Fig10Through14(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	model := hugeMemoryModel()
	const window = 4 // the paper plots the four peak supersteps
	var tables []*metrics.Table
	notes := []string{}
	for _, g := range []*graph.Graph{graph.DatasetWG(), graph.DatasetCP()} {
		roots := experimentRoots(g, cfg.rootsFor(g))
		for _, p := range []partition.Partitioner{partition.Hash{}, partition.NewMultilevel()} {
			res, err := runBC(g, cfg.Workers, core.NewAllAtOnce(roots), model, p.Partition(g, cfg.Workers), cfg.Tracer)
			if err != nil {
				return nil, err
			}
			ids, matrix := metrics.WorkerMessageMatrix(res.Steps, window)
			t := &metrics.Table{
				Title:   fmt.Sprintf("BC on %s, %s partitioning: messages per worker in peak supersteps", g.Name(), p.Name()),
				Headers: []string{"superstep"},
			}
			for w := 0; w < cfg.Workers; w++ {
				t.Headers = append(t.Headers, fmt.Sprintf("W%d", w))
			}
			t.Headers = append(t.Headers, "max/mean")
			for i, row := range matrix {
				cells := []string{fmt.Sprintf("%d", ids[i])}
				var max, sum int64
				for _, v := range row {
					cells = append(cells, fmt.Sprintf("%d", v))
					sum += v
					if v > max {
						max = v
					}
				}
				ratio := 0.0
				if sum > 0 {
					ratio = float64(max) / (float64(sum) / float64(len(row)))
				}
				cells = append(cells, fmtRatio(ratio))
				t.AddRow(cells...)
			}
			tables = append(tables, t)
			notes = append(notes, fmt.Sprintf("%s/%s: peak-window imbalance (max/mean) = %.2f",
				g.Name(), p.Name(), metrics.ImbalanceRatio(res.Steps, window)))
		}
	}
	notes = append(notes,
		"expected shape: hash ~uniform (ratio near 1); metis imbalanced, worst on CP' (paper: up to 2x)")
	return &Report{ID: "fig10_14", Title: "Per-worker message imbalance", Tables: tables, Notes: notes}, nil
}
