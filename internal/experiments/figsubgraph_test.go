package experiments

import (
	"testing"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/graph"
	"pregelnet/internal/partition"
)

// TestSubgraphModelReductionClaim pins the headline claim of figsubgraph:
// on a high-diameter mesh under multilevel partitioning, partition-local
// convergence cuts supersteps by at least 3x and remote message volume by at
// least 2x on a traversal workload (WCC here; measured ~25x and ~23x).
func TestSubgraphModelReductionClaim(t *testing.T) {
	grid := graph.Grid(64, 64)
	const workers = 8
	asn := partition.NewMultilevel().Partition(grid, workers)
	v, s, err := runModelPair(
		algorithms.WCC(grid, workers),
		algorithms.WCCSubgraph(grid, workers), asn)
	if err != nil {
		t.Fatal(err)
	}
	row := subgraphRow{vertex: v, subgraph: s}
	if r := row.stepRatio(); r < 3 {
		t.Errorf("superstep reduction %.2fx (vtx %d, sub %d), want >= 3x",
			r, v.supersteps, s.supersteps)
	}
	if r := row.remoteRatio(); r < 2 {
		t.Errorf("remote message reduction %.2fx (vtx %d, sub %d), want >= 2x",
			r, v.remote, s.remote)
	}
}
