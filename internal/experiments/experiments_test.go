package experiments

import (
	"strings"
	"testing"

	"pregelnet/internal/core"
	"pregelnet/internal/elastic"
	"pregelnet/internal/graph"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers != 8 || c.RootsWG <= 0 || c.RootsCP <= 0 || c.PageRankIterations != 30 {
		t.Errorf("defaults = %+v", c)
	}
	if c.rootsFor(graph.DatasetCP()) != c.RootsCP {
		t.Error("rootsFor CP wrong")
	}
	if c.rootsFor(graph.DatasetWG()) != c.RootsWG {
		t.Error("rootsFor WG wrong")
	}
}

func TestByID(t *testing.T) {
	if ByID("fig4") == nil || ByID("nope") != nil {
		t.Error("ByID lookup broken")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

// TestSwathEnvironmentShapes verifies the central claim of Fig 4/5 at quick
// scale: the single-swath baseline spills past physical memory and thrashes,
// the adaptive heuristic stays under the ceiling and is substantially
// faster at the same provisioning level.
func TestSwathEnvironmentShapes(t *testing.T) {
	cfg := QuickConfig()
	env, err := newBCSwathEnvironment(cfg, graph.DatasetWG())
	if err != nil {
		t.Fatal(err)
	}
	base, err := env.runBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if base.PeakMemory() <= env.physMem {
		t.Errorf("baseline peak %d should exceed phys %d (spill)", base.PeakMemory(), env.physMem)
	}
	adaptive, err := env.runWith(env.adaptiveSizer(), core.SequentialInitiator{}, env.workers)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.PeakMemory() > env.physMem {
		t.Errorf("adaptive peak %d exceeded phys %d", adaptive.PeakMemory(), env.physMem)
	}
	speedup := base.SimSeconds / adaptive.SimSeconds
	if speedup < 1.3 {
		t.Errorf("adaptive speedup = %.2f, want > 1.3 (paper: up to 3.5 at full scale)", speedup)
	}
	t.Logf("baseline %.1fs (%.2fx phys), adaptive %.1fs (%.2fx phys): speedup %.2fx",
		base.SimSeconds, float64(base.PeakMemory())/float64(env.physMem),
		adaptive.SimSeconds, float64(adaptive.PeakMemory())/float64(env.physMem), speedup)
}

// TestElasticProfileShapes verifies Fig 15/16's mechanism at quick scale:
// superlinear speedup spikes exist, and the dynamic policy beats fixed-4 on
// time without exceeding its cost by much.
func TestElasticProfileShapes(t *testing.T) {
	cfg := QuickConfig()
	p, err := elasticProfile(cfg, graph.DatasetWG())
	if err != nil {
		t.Fatal(err)
	}
	superlinear := 0
	for _, s := range p.SpeedupPerStep() {
		if s > 2 {
			superlinear++
		}
	}
	if superlinear == 0 {
		t.Error("no superlinear supersteps observed")
	}
	dynamic := elastic.Evaluate(p, elastic.ThresholdPolicy{Fraction: 0.5})
	if dynamic.RelTime4 >= 1 {
		t.Errorf("dynamic policy rel time = %.2f, want < 1", dynamic.RelTime4)
	}
	t.Logf("superlinear steps: %d/%d; dynamic relTime=%.2f relCost=%.2f",
		superlinear, p.Steps(), dynamic.RelTime4, dynamic.RelCost4)
}

// TestAllExperimentsQuick runs every registered experiment at quick scale
// and checks that reports render.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavy; skipped in -short mode")
	}
	cfg := QuickConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			var sb strings.Builder
			rep.Render(&sb)
			if len(sb.String()) < 100 {
				t.Errorf("%s: suspiciously short report:\n%s", e.ID, sb.String())
			}
			if len(rep.Tables) == 0 {
				t.Errorf("%s: no tables", e.ID)
			}
		})
	}
}
