package experiments

import (
	"testing"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
)

// TestDebugElasticSteps prints per-step timing/memory for the 4- and
// 8-worker elastic runs to guide cost-model calibration. Skipped unless run
// explicitly with -run TestDebugElasticSteps.
func TestDebugElasticSteps(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	cfg := QuickConfig()
	g := graph.DatasetWG()
	roots := algorithms.Sources(g, cfg.rootsFor(g))
	swathSize := initialProbeSize(len(roots)) * 2
	mkSched := func() core.SwathScheduler {
		return core.NewSwathRunner(roots, core.StaticSizer(swathSize), core.StaticNInitiator(6))
	}
	probe, err := runBC(g, cfg.Workers, mkSched(), hugeMemoryModel(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	phys := int64(1.5 * float64(probe.PeakMemory()))
	t.Logf("probe peak=%d phys=%d", probe.PeakMemory(), phys)
	model := scaledModel(phys)
	low, err := runBC(g, cfg.Workers/2, mkSched(), model, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	high, err := runBC(g, cfg.Workers, mkSched(), model, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(low.Steps) && i < len(high.Steps); i++ {
		l, h := low.Steps[i], high.Steps[i]
		t.Logf("step %2d: active=%6d msgs=%8d mem4=%5.2fx mem8=%5.2fx t4=%7.4f t8=%7.4f speedup=%5.2f",
			i, l.ActiveVertices, l.TotalSent(),
			float64(l.PeakMemoryBytes)/float64(phys), float64(h.PeakMemoryBytes)/float64(phys),
			l.SimSeconds, h.SimSeconds, l.SimSeconds/h.SimSeconds)
	}
}
