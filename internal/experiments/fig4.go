package experiments

import (
	"fmt"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
)

// Fig4 reproduces the swath *size* heuristic evaluation (§VI.B): BC on WG'
// and CP' where the baseline runs the paper's "largest successful single
// swath" (it spills deep into virtual memory and thrashes, but completes),
// against the sampling and adaptive sizing heuristics which split the same
// total roots into memory-fitting swaths. The paper reports ~2.5-3x speedup
// for sampling and up to 3.5x for adaptive on 8 workers, and the adaptive
// heuristic on just 4 workers finishing in roughly two-thirds of the
// 8-worker baseline's time.
func Fig4(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title: "Fig 4: speedup of swath size heuristics vs single-swath baseline (taller is better)",
		Headers: []string{"graph", "configuration", "workers", "sim-s", "speedup vs baseline-8w",
			"peak mem (MiB)", "phys mem (MiB)", "supersteps"},
	}
	notes := []string{}
	for _, g := range []*graph.Graph{graph.DatasetWG(), graph.DatasetCP()} {
		env, err := newBCSwathEnvironment(cfg, g)
		if err != nil {
			return nil, err
		}
		base, err := env.runBaseline()
		if err != nil {
			return nil, fmt.Errorf("baseline on %s: %w", g.Name(), err)
		}
		addRow := func(name string, workers int, res *core.JobResult[bcMsg]) {
			t.AddRow(g.Name(), name, fmt.Sprintf("%d", workers),
				fmtSeconds(res.SimSeconds),
				fmtRatio(base.SimSeconds/res.SimSeconds),
				fmtBytes(res.PeakMemory()), fmtBytes(env.physMem),
				fmt.Sprintf("%d", res.Supersteps))
		}
		addRow(fmt.Sprintf("baseline: single swath of %d (spills)", len(env.roots)), env.workers, base)

		sampling, err := env.runWith(env.samplingSizer(), core.SequentialInitiator{}, env.workers)
		if err != nil {
			return nil, fmt.Errorf("sampling on %s: %w", g.Name(), err)
		}
		addRow("sampling heuristic", env.workers, sampling)

		adaptive, err := env.runWith(env.adaptiveSizer(), core.SequentialInitiator{}, env.workers)
		if err != nil {
			return nil, fmt.Errorf("adaptive on %s: %w", g.Name(), err)
		}
		addRow("adaptive heuristic", env.workers, adaptive)

		adaptive4, err := env.runWith(env.adaptiveSizer(), core.SequentialInitiator{}, env.workers/2)
		if err != nil {
			return nil, fmt.Errorf("adaptive-4w on %s: %w", g.Name(), err)
		}
		addRow("adaptive heuristic", env.workers/2, adaptive4)

		notes = append(notes, fmt.Sprintf("%s: baseline thrashes at %.2fx physical memory; heuristics stay under the %.0f%% target",
			g.Name(), float64(base.PeakMemory())/float64(env.physMem), 100*float64(env.target)/float64(env.physMem)))
	}
	notes = append(notes,
		"expected shape: sampling ~2.5-3x, adaptive up to ~3.5x on 8 workers; adaptive on 4 workers still beats the 8-worker baseline (paper: ~2/3 of its time)")
	return &Report{ID: "fig4", Title: "Swath size heuristics", Tables: []*metrics.Table{t}, Notes: notes}, nil
}
