package experiments

import (
	"fmt"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
	"pregelnet/internal/partition"
)

// Extension experiments beyond the paper's figures: quantified versions of
// two design discussions in §II and §IV.

// ExtBuffering quantifies §IV's buffering argument: BC under memory pressure
// with (a) in-memory buffering and the plain single swath — spills into
// virtual memory and thrashes; (b) in-memory buffering with the adaptive
// swath heuristic — the paper's design; (c) Giraph/Hama-style disk-backed
// buffering — immune to memory pressure but uniformly slower. The paper
// "abjures disk-based buffering since it uniformly adds a multiplicative
// overhead", betting that swaths keep in-memory viable; this experiment
// shows the bet paying off.
func ExtBuffering(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title:   "Buffering strategies for BC under memory pressure (smaller is better)",
		Headers: []string{"graph", "strategy", "sim-s", "vs best", "peak mem/phys", "supersteps"},
	}
	notes := []string{}
	for _, g := range []*graph.Graph{graph.DatasetWG(), graph.DatasetCP()} {
		env, err := newBCSwathEnvironment(cfg, g)
		if err != nil {
			return nil, err
		}
		type row struct {
			name string
			res  *core.JobResult[bcMsg]
		}
		var rows []row

		base, err := env.runBaseline()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{"memory, single swath (thrashes)", base})

		adaptive, err := env.runWith(env.adaptiveSizer(), core.DynamicPeakInitiator{}, env.workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{"memory, adaptive swaths (paper)", adaptive})

		diskModel := env.model
		diskModel.DiskBuffering = true
		disk, err := runBC(env.g, env.workers, core.NewAllAtOnce(env.roots), diskModel, nil, env.tracer)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{"disk-backed buffers (Giraph/Hama-like)", disk})

		best := rows[0].res.SimSeconds
		for _, r := range rows {
			if r.res.SimSeconds < best {
				best = r.res.SimSeconds
			}
		}
		for _, r := range rows {
			t.AddRow(g.Name(), r.name, fmtSeconds(r.res.SimSeconds),
				fmtRatio(r.res.SimSeconds/best),
				fmtRatio(float64(r.res.PeakMemory())/float64(env.physMem)),
				fmt.Sprintf("%d", r.res.Supersteps))
		}
		notes = append(notes, fmt.Sprintf("%s: disk mode never exceeds physical memory but pays a uniform 3x I/O overhead", g.Name()))
	}
	notes = append(notes, "expected shape: memory+swaths < disk < memory-thrashing")
	return &Report{ID: "ext_buffering", Title: "Buffering strategies", Tables: []*metrics.Table{t}, Notes: notes}, nil
}

// ExtPartitioners sweeps every partitioner over every dataset analog at
// several worker counts — the broader version of the paper's in-text quality
// table, adding chunk and Fennel.
func ExtPartitioners(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title:   "Partitioner sweep: % remote edges (balance in parentheses)",
		Headers: []string{"graph", "k", "hash", "chunk", "ldg", "fennel", "metis"},
	}
	partitioners := []partition.Partitioner{
		partition.Hash{}, partition.Chunk{},
		partition.NewLDG(partition.DefaultSlack), partition.NewFennel(),
		partition.NewMultilevel(),
	}
	for _, g := range graph.AllDatasets() {
		for _, k := range []int{4, 8, 16} {
			row := []string{g.Name(), fmt.Sprintf("%d", k)}
			for _, p := range partitioners {
				q, err := partition.Evaluate(g, p.Partition(g, k), k, p.Name())
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.0f%% (%.2f)", 100*q.CutFraction, q.Balance))
			}
			t.AddRow(row...)
		}
	}
	return &Report{
		ID:     "ext_partitioners",
		Title:  "Partitioner sweep",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"expected shape: metis lowest cut everywhere; fennel/ldg between metis and hash; chunk only helps when IDs encode locality (they are shuffled here, so it matches hash)",
		},
	}, nil
}
