package experiments

import (
	"fmt"
	"math"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/metrics"
)

// Fig7 reproduces the message-transfer timelines behind Fig 6 for BC on WG':
// sequential initiation shows message traffic repeatedly peaking and falling
// to zero (idle resources between swaths), static-N holds a flatter, higher
// sustained rate, and dynamic sits in between — flatter is better.
func Fig7(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	g := graph.DatasetWG()
	env, err := newBCSwathEnvironment(cfg, g)
	if err != nil {
		return nil, err
	}

	type run struct {
		name string
		res  *core.JobResult[bcMsg]
	}
	var runs []run
	seq, err := env.runWith(env.adaptiveSizer(), core.SequentialInitiator{}, env.workers)
	if err != nil {
		return nil, err
	}
	runs = append(runs, run{"sequential", seq})
	for _, n := range []int{4, 6} {
		res, err := env.runWith(env.adaptiveSizer(), core.StaticNInitiator(n), env.workers)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run{fmt.Sprintf("static-%d", n), res})
	}
	dyn, err := env.runWith(env.adaptiveSizer(), core.DynamicPeakInitiator{}, env.workers)
	if err != nil {
		return nil, err
	}
	runs = append(runs, run{"dynamic", dyn})

	var series []metrics.Series
	notes := []string{}
	for _, r := range runs {
		s := metrics.MessagesPerStep(r.res.Steps)
		s.Name = r.name
		series = append(series, s)
		// Flatness statistic: coefficient of variation of non-trailing
		// message counts (lower = flatter = better utilization).
		notes = append(notes, fmt.Sprintf("%-12s %s (cv=%.2f, %d supersteps)",
			r.name+":", metrics.Sparkline(s), coefficientOfVariation(s.Values), len(s.Values)))
	}
	t := metrics.SeriesTable(
		fmt.Sprintf("Fig 7: messages per superstep by initiation heuristic, BC on %s", g.Name()), series...)
	notes = append(notes, "expected shape: sequential repeatedly drops to ~0 between swaths; overlapped heuristics sustain higher flatter traffic")
	return &Report{ID: "fig7", Title: "Initiation timelines", Tables: []*metrics.Table{t}, Notes: notes}, nil
}

func coefficientOfVariation(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(vals))) / mean
}
