package partition

import (
	"fmt"
	"sort"

	"pregelnet/internal/graph"
)

// Incremental repartitioning (Spinner, Martella et al.): when the worker set
// changes, a running job should not throw its layout away and reshuffle from
// scratch. Instead the previous assignment seeds a label-propagation pass —
// each vertex's current owner is its label — and only the minimum set of
// vertices needed to satisfy the balance constraint changes label. Vertices
// that must move pick their new partition with the LDG placement rule from
// streaming.go, optionally weighted by observed per-vertex message traffic so
// chatty vertices gravitate toward the partitions they talk to most.

// RepartitionerFrom is implemented by partitioners that can adapt an existing
// assignment to a new partition count incrementally, instead of recomputing a
// layout from scratch. traffic, when non-nil, holds per-vertex received
// message counts observed during the run (len == g.NumVertices()); it is a
// heuristic affinity signal only and never affects which vertices are
// *eligible* to move.
type RepartitionerFrom interface {
	Partitioner
	// PartitionFrom returns an assignment for k partitions in which every
	// vertex whose previous partition survives (prev[v] in [0,k)) keeps it
	// unless it must move to restore balance. Vertices whose previous
	// partition does not survive are placed greedily.
	PartitionFrom(g *graph.Graph, prev Assignment, k int, traffic []int64) (Assignment, error)
}

// IncrementalSlack is the default balance slack for incremental
// repartitioning. It is looser than LDG's DefaultSlack because every unit of
// slack saved here is paid for in migrated vertices: capacity slack·n/k
// bounds the imbalance while letting retained vertices stay put.
const IncrementalSlack = 1.10

// Incremental adapts a previous assignment to a new partition count, moving
// only (a) vertices whose old partition index no longer exists and (b) the
// minimum number of vertices needed to bring every partition under the
// capacity slack·n/k. Fresh jobs (no previous assignment) fall back to the
// Seeder for the initial layout.
type Incremental struct {
	// Slack bounds partition size at slack·n/k (IncrementalSlack if <= 1).
	Slack float64
	// Seeder produces the initial assignment when there is no previous one.
	// Defaults to LDG with the standard slack.
	Seeder Partitioner
}

// NewIncremental returns an incremental repartitioner with the default slack
// and an LDG seeder.
func NewIncremental() *Incremental {
	return &Incremental{Slack: IncrementalSlack, Seeder: NewLDG(DefaultSlack)}
}

// Name implements Partitioner.
func (inc *Incremental) Name() string { return "incremental" }

// Partition implements Partitioner by delegating to the Seeder: with no
// previous assignment there is nothing to be incremental about.
func (inc *Incremental) Partition(g *graph.Graph, k int) Assignment {
	s := inc.Seeder
	if s == nil {
		s = NewLDG(DefaultSlack)
	}
	return s.Partition(g, k)
}

// capacity returns the integer per-partition capacity. It is at least
// ceil(n/k) so that k partitions can always hold all n vertices — without
// that floor a tight slack could make the rebalance loop unsatisfiable.
func (inc *Incremental) capacity(n, k int) int {
	slack := inc.Slack
	if slack <= 1 {
		slack = IncrementalSlack
	}
	c := int(slack * float64(n) / float64(k))
	if ceil := (n + k - 1) / k; c < ceil {
		c = ceil
	}
	return c
}

// PartitionFrom implements RepartitionerFrom. The algorithm is deterministic:
// all iteration is in vertex-ID order and every tie breaks toward the smaller
// partition size, then the lower partition index, then the lower vertex ID.
func (inc *Incremental) PartitionFrom(g *graph.Graph, prev Assignment, k int,
	traffic []int64) (Assignment, error) {
	n := g.NumVertices()
	if len(prev) != n {
		return nil, fmt.Errorf("partition: previous assignment covers %d vertices, graph has %d", len(prev), n)
	}
	if k < 1 {
		return nil, fmt.Errorf("partition: k = %d, want >= 1", k)
	}
	capInt := inc.capacity(n, k)
	weight := trafficWeights(traffic, n)

	// Seed from the previous labels. Vertices whose partition index no longer
	// exists (scale-in) or was never valid become orphans to place greedily.
	a := make(Assignment, n)
	sizes := make([]int, k)
	orphans := make([]graph.VertexID, 0)
	for v := range prev {
		if p := prev[v]; p >= 0 && int(p) < k {
			a[v] = p
			sizes[p]++
		} else {
			a[v] = -1
			orphans = append(orphans, graph.VertexID(v))
		}
	}

	// affinity fills aff[p] with the (traffic-weighted) number of v's
	// neighbors currently assigned to p.
	aff := make([]float64, k)
	affinity := func(v graph.VertexID) {
		for p := range aff {
			aff[p] = 0
		}
		for _, u := range g.Neighbors(v) {
			if p := a[u]; p >= 0 {
				w := 1.0
				if weight != nil {
					w = weight[u]
				}
				aff[p] += w
			}
		}
	}

	// Phase 1 — place orphans with the LDG rule over the seeded layout:
	// maximize affinity(p) · (1 − size(p)/C), skipping full partitions. Some
	// partition is always below capInt while any vertex is unplaced, because
	// k·capInt >= n.
	for _, v := range orphans {
		affinity(v)
		best, bestScore := -1, -1.0
		for p := 0; p < k; p++ {
			if sizes[p] >= capInt {
				continue
			}
			score := aff[p] * (1 - float64(sizes[p])/float64(capInt))
			if score > bestScore ||
				(score == bestScore && (best < 0 || sizes[p] < sizes[best])) {
				best, bestScore = p, score
			}
		}
		if best < 0 {
			// Unreachable while k·capInt >= n; keep the LDG fallback anyway.
			best = 0
			for p := 1; p < k; p++ {
				if sizes[p] < sizes[best] {
					best = p
				}
			}
		}
		a[v] = int32(best)
		sizes[best]++
	}

	// Phase 2 — shed overflow. A retained partition can exceed capacity when
	// k shrank the ideal size under it (scale-out) or the previous layout was
	// already imbalanced. Evict exactly size−capInt vertices per overfull
	// partition, choosing the ones that lose the least locally: highest
	// (affinity to best other partition − affinity to home).
	for p := 0; p < k; p++ {
		if sizes[p] > capInt {
			inc.shed(g, a, sizes, p, capInt, affinity, aff)
		}
	}
	return a, nil
}

// shedCandidate is one vertex eligible to leave an overfull partition.
type shedCandidate struct {
	v    graph.VertexID
	gain float64   // affinity to its best alternative minus affinity to home
	aff  []float64 // per-partition affinity snapshot, for target selection
}

// shed evicts sizes[from]−capInt vertices from an overfull partition into
// underfull ones, preferring vertices whose neighborhoods already live
// elsewhere. Targets are re-checked against capacity as moves land, so a
// popular destination filling up redirects later evictions deterministically.
func (inc *Incremental) shed(g *graph.Graph, a Assignment, sizes []int,
	from, capInt int, affinity func(graph.VertexID), aff []float64) {
	need := sizes[from] - capInt
	cands := make([]shedCandidate, 0, sizes[from])
	for v := 0; v < len(a); v++ {
		if int(a[v]) != from {
			continue
		}
		vid := graph.VertexID(v)
		affinity(vid)
		row := make([]float64, len(aff))
		copy(row, aff)
		bestOther := -1.0
		for p, w := range row {
			if p != from && w > bestOther {
				bestOther = w
			}
		}
		cands = append(cands, shedCandidate{v: vid, gain: bestOther - row[from], aff: row})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gain != cands[j].gain {
			return cands[i].gain > cands[j].gain
		}
		return cands[i].v < cands[j].v
	})
	for _, c := range cands {
		if need == 0 {
			break
		}
		// Best currently-underfull target by affinity; ties toward the
		// smaller partition, then the lower index.
		best := -1
		for p := range c.aff {
			if p == from || sizes[p] >= capInt {
				continue
			}
			if best < 0 || c.aff[p] > c.aff[best] ||
				(c.aff[p] == c.aff[best] && sizes[p] < sizes[best]) {
				best = p
			}
		}
		if best < 0 {
			// Every other partition is at capacity: the remaining overflow is
			// within the ceil(n/k) floor's rounding and can stay.
			break
		}
		a[c.v] = int32(best)
		sizes[best]++
		sizes[from]--
		need--
	}
}

// trafficWeights converts raw per-vertex message counts into multiplicative
// edge weights >= 1: w(v) = 1 + traffic(v)/mean. A nil or mismatched slice
// (or one with no observed traffic) yields nil, meaning unweighted.
func trafficWeights(traffic []int64, n int) []float64 {
	if len(traffic) != n || n == 0 {
		return nil
	}
	var total int64
	for _, t := range traffic {
		total += t
	}
	if total <= 0 {
		return nil
	}
	mean := float64(total) / float64(n)
	w := make([]float64, n)
	for v, t := range traffic {
		w[v] = 1 + float64(t)/mean
	}
	return w
}

// MovedVertices counts the vertices whose owner differs between two
// assignments of the same length.
func MovedVertices(oldA, newA Assignment) int {
	moved := 0
	for v := range oldA {
		if v < len(newA) && oldA[v] != newA[v] {
			moved++
		}
	}
	return moved
}

// CutFraction returns the fraction of directed edges whose endpoints are in
// different partitions, 0 for an empty or mismatched assignment.
func CutFraction(g *graph.Graph, a Assignment) float64 {
	if len(a) != g.NumVertices() || g.NumEdges() == 0 {
		return 0
	}
	cut := 0
	g.ForEachEdge(func(u, v graph.VertexID) {
		if a[u] != a[v] {
			cut++
		}
	})
	return float64(cut) / float64(g.NumEdges())
}
