// Package partition assigns graph vertices to BSP workers.
//
// The paper compares three strategies (Section VII): hashing vertex IDs
// (the Pregel default), METIS-style multilevel in-place partitioning, and
// the streaming linear-weighted deterministic greedy partitioner of
// Stanton & Kliot. This package implements all three from scratch, plus
// quality metrics (edge-cut fraction, balance) used to reproduce the
// paper's in-text partition-quality table and Fig 8.
package partition

import (
	"fmt"

	"pregelnet/internal/graph"
)

// Assignment maps each vertex to a partition in [0, k).
type Assignment []int32

// NumPartitions returns 1 + the largest partition index present (0 for an
// empty assignment).
func (a Assignment) NumPartitions() int {
	maxP := int32(-1)
	for _, p := range a {
		if p > maxP {
			maxP = p
		}
	}
	return int(maxP + 1)
}

// Sizes returns the number of vertices per partition. Entries outside
// [0, k) are skipped rather than indexed — Validate is the place that
// reports them as errors.
func (a Assignment) Sizes(k int) []int {
	sizes := make([]int, k)
	for _, p := range a {
		if p >= 0 && int(p) < k {
			sizes[p]++
		}
	}
	return sizes
}

// Validate checks that every vertex is assigned to a partition in [0, k).
func (a Assignment) Validate(k int) error {
	for v, p := range a {
		if p < 0 || int(p) >= k {
			return fmt.Errorf("partition: vertex %d assigned to %d, want [0,%d)", v, p, k)
		}
	}
	return nil
}

// Partitioner produces a k-way assignment of a graph's vertices.
type Partitioner interface {
	// Name identifies the strategy in reports ("hash", "metis", "ldg", ...).
	Name() string
	// Partition assigns every vertex of g to one of k partitions.
	Partition(g *graph.Graph, k int) Assignment
}

// Hash is the Pregel default: partition = vertexID mod k. It spreads load
// uniformly but ignores structure, cutting the vast majority of edges
// (≈ (k-1)/k of them).
type Hash struct{}

// Name implements Partitioner.
func (Hash) Name() string { return "hash" }

// Partition implements Partitioner.
func (Hash) Partition(g *graph.Graph, k int) Assignment {
	a := make(Assignment, g.NumVertices())
	for v := range a {
		a[v] = int32(v % k)
	}
	return a
}

// Chunk assigns contiguous ID ranges to partitions. For generators with
// spatial ID locality (e.g. Watts-Strogatz) this is a surprisingly strong
// baseline; for hashed or shuffled IDs it behaves like random.
type Chunk struct{}

// Name implements Partitioner.
func (Chunk) Name() string { return "chunk" }

// Partition implements Partitioner.
func (Chunk) Partition(g *graph.Graph, k int) Assignment {
	n := g.NumVertices()
	a := make(Assignment, n)
	if n == 0 {
		return a
	}
	per := (n + k - 1) / k
	for v := range a {
		p := v / per
		if p >= k {
			p = k - 1
		}
		a[v] = int32(p)
	}
	return a
}

// Quality summarizes an assignment, mirroring the paper's reported
// "% remote edges" and the balance constraint METIS optimizes under.
type Quality struct {
	Strategy    string
	K           int
	EdgeCut     int     // directed edges whose endpoints differ
	CutFraction float64 // EdgeCut / total directed edges ("% remote edges")
	Balance     float64 // max partition size / ideal size (1.0 = perfect)
	Sizes       []int
}

// Evaluate measures the quality of an assignment. The assignment is
// validated before any metric touches it, so a vertex assigned outside
// [0, k) is a diagnosable error, not an index panic.
func Evaluate(g *graph.Graph, a Assignment, k int, strategy string) (Quality, error) {
	if k < 1 {
		return Quality{}, fmt.Errorf("partition: k = %d, want >= 1", k)
	}
	if len(a) != g.NumVertices() {
		return Quality{}, fmt.Errorf("partition: assignment covers %d vertices, graph has %d", len(a), g.NumVertices())
	}
	if err := a.Validate(k); err != nil {
		return Quality{}, err
	}
	q := Quality{Strategy: strategy, K: k, Sizes: a.Sizes(k)}
	cut := 0
	g.ForEachEdge(func(u, v graph.VertexID) {
		if a[u] != a[v] {
			cut++
		}
	})
	q.EdgeCut = cut
	if g.NumEdges() > 0 {
		q.CutFraction = float64(cut) / float64(g.NumEdges())
	}
	maxSize := 0
	for _, s := range q.Sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	if g.NumVertices() > 0 {
		ideal := float64(g.NumVertices()) / float64(k)
		q.Balance = float64(maxSize) / ideal
	}
	return q, nil
}

// ByName returns the partitioner registered under name, or nil. Recognized:
// "hash", "chunk", "ldg", "fennel", "metis" (and "multilevel"),
// "incremental" (and "spinner").
func ByName(name string) Partitioner {
	switch name {
	case "hash":
		return Hash{}
	case "chunk":
		return Chunk{}
	case "ldg", "streaming":
		return NewLDG(DefaultSlack)
	case "fennel":
		return NewFennel()
	case "metis", "multilevel":
		return NewMultilevel()
	case "incremental", "spinner":
		return NewIncremental()
	}
	return nil
}
