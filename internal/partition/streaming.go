package partition

import (
	"math"

	"pregelnet/internal/graph"
)

// Streaming partitioning (Stanton & Kliot, MSR-TR-2011-121): vertices arrive
// one at a time with their adjacency lists and are assigned immediately using
// only the assignments made so far. The paper uses the best heuristic from
// that work — linear-weighted deterministic greedy (LDG) — as its "Streaming"
// strategy.

// DefaultSlack is the capacity slack factor for LDG: each partition may hold
// up to slack * n/k vertices.
const DefaultSlack = 1.05

// LDG implements linear (weighted) deterministic greedy streaming
// partitioning: vertex v goes to the partition maximizing
//
//	|N(v) ∩ P_i| * (1 - |P_i| / C)
//
// where C is the per-partition capacity. Ties break toward the least-loaded
// partition, then the lowest index (deterministic).
type LDG struct {
	slack float64
	order StreamOrder
}

// StreamOrder determines the order vertices are streamed in.
type StreamOrder int

const (
	// OrderID streams vertices in increasing ID order (the natural file
	// order the paper's loader sees).
	OrderID StreamOrder = iota
	// OrderBFS streams vertices in breadth-first order from vertex 0,
	// appending unreached vertices in ID order. BFS order generally improves
	// streaming quality since neighbors arrive near each other.
	OrderBFS
)

// NewLDG returns an LDG partitioner with the given capacity slack
// (use DefaultSlack for the paper's configuration), streaming in ID order.
func NewLDG(slack float64) *LDG {
	return &LDG{slack: slack, order: OrderID}
}

// NewLDGWithOrder returns an LDG partitioner with a specific stream order.
func NewLDGWithOrder(slack float64, order StreamOrder) *LDG {
	return &LDG{slack: slack, order: order}
}

// Name implements Partitioner.
func (l *LDG) Name() string { return "ldg" }

// Partition implements Partitioner.
func (l *LDG) Partition(g *graph.Graph, k int) Assignment {
	n := g.NumVertices()
	a := make(Assignment, n)
	for i := range a {
		a[i] = -1
	}
	capacity := l.slack * float64(n) / float64(k)
	if capacity < 1 {
		capacity = 1
	}
	sizes := make([]int, k)
	neighborCount := make([]int, k)

	assign := func(v graph.VertexID) {
		for i := range neighborCount {
			neighborCount[i] = 0
		}
		for _, u := range g.Neighbors(v) {
			if p := a[u]; p >= 0 {
				neighborCount[p]++
			}
		}
		best, bestScore := 0, -1.0
		for p := 0; p < k; p++ {
			if float64(sizes[p]) >= capacity {
				continue
			}
			score := float64(neighborCount[p]) * (1 - float64(sizes[p])/capacity)
			if score > bestScore ||
				(score == bestScore && sizes[p] < sizes[best]) {
				best, bestScore = p, score
			}
		}
		if bestScore < 0 {
			// All partitions at capacity (possible with tight slack): fall
			// back to the least loaded.
			for p := 1; p < k; p++ {
				if sizes[p] < sizes[best] {
					best = p
				}
			}
		}
		a[v] = int32(best)
		sizes[best]++
	}

	for _, v := range l.streamOrder(g) {
		assign(v)
	}
	return a
}

// Fennel implements the Fennel streaming partitioner (Tsourakakis et al.):
// vertex v goes to the partition maximizing |N(v) ∩ P_i| − α·γ·|P_i|^(γ−1),
// an interpolation between edge-cut and balance objectives. Included as the
// natural successor to LDG for comparison studies.
type Fennel struct {
	// Gamma is the balance exponent (1.5 is the paper's default).
	Gamma float64
	// Slack bounds partition size at slack·n/k like LDG.
	Slack float64
}

// NewFennel returns a Fennel partitioner with standard parameters.
func NewFennel() *Fennel { return &Fennel{Gamma: 1.5, Slack: 1.1} }

// Name implements Partitioner.
func (f *Fennel) Name() string { return "fennel" }

// Partition implements Partitioner.
func (f *Fennel) Partition(g *graph.Graph, k int) Assignment {
	n := g.NumVertices()
	a := make(Assignment, n)
	for i := range a {
		a[i] = -1
	}
	if n == 0 {
		return a
	}
	m := float64(g.NumEdges()) / 2
	gamma := f.Gamma
	if gamma <= 1 {
		gamma = 1.5
	}
	alpha := m * math.Pow(float64(k), gamma-1) / math.Pow(float64(n), gamma)
	if alpha <= 0 {
		alpha = 1
	}
	capacity := f.Slack * float64(n) / float64(k)
	if capacity < 1 {
		capacity = 1
	}
	sizes := make([]int, k)
	neighborCount := make([]int, k)
	for v := 0; v < n; v++ {
		for i := range neighborCount {
			neighborCount[i] = 0
		}
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if p := a[u]; p >= 0 {
				neighborCount[p]++
			}
		}
		best, bestScore := -1, math.Inf(-1)
		for p := 0; p < k; p++ {
			if float64(sizes[p]) >= capacity {
				continue
			}
			score := float64(neighborCount[p]) - alpha*gamma*math.Pow(float64(sizes[p]), gamma-1)
			if score > bestScore || (score == bestScore && sizes[p] < sizes[best]) {
				best, bestScore = p, score
			}
		}
		if best < 0 {
			// All partitions at capacity: fall back to the least loaded.
			best = 0
			for p := 1; p < k; p++ {
				if sizes[p] < sizes[best] {
					best = p
				}
			}
		}
		a[v] = int32(best)
		sizes[best]++
	}
	return a
}

func (l *LDG) streamOrder(g *graph.Graph) []graph.VertexID {
	n := g.NumVertices()
	order := make([]graph.VertexID, 0, n)
	if l.order == OrderID {
		for v := 0; v < n; v++ {
			order = append(order, graph.VertexID(v))
		}
		return order
	}
	// BFS order from vertex 0, then any unreached vertices by ID.
	seen := make([]bool, n)
	queue := make([]graph.VertexID, 0, n)
	push := func(v graph.VertexID) {
		if !seen[v] {
			seen[v] = true
			queue = append(queue, v)
		}
	}
	if n > 0 {
		push(0)
	}
	for i := 0; i < len(queue); i++ {
		u := queue[i]
		order = append(order, u)
		for _, v := range g.Neighbors(u) {
			push(v)
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			order = append(order, graph.VertexID(v))
		}
	}
	return order
}
