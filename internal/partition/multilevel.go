package partition

import (
	"math/rand"
	"sort"

	"pregelnet/internal/graph"
)

// Multilevel implements a METIS-style multilevel k-way partitioner
// (Karypis & Kumar): the graph is repeatedly coarsened by heavy-edge
// matching, the coarsest graph is partitioned by greedy region growing, and
// the assignment is projected back level by level with boundary
// Kernighan–Lin/FM refinement at each step. It produces the low edge-cut,
// locally-clustered partitions whose BSP load-imbalance behaviour Section
// VII of the paper analyzes.
type Multilevel struct {
	// Seed drives the matching and region-growing orders. Fixed by default
	// so partitions are reproducible.
	Seed int64
	// BalanceTolerance is the allowed max-partition overweight factor
	// (METIS default is ~1.03; we use a slightly looser 1.05).
	BalanceTolerance float64
	// CoarsenTo stops coarsening when the graph has at most this many
	// vertices per partition.
	CoarsenTo int
	// RefinePasses bounds the boundary refinement passes per level.
	RefinePasses int
}

// NewMultilevel returns a Multilevel partitioner with METIS-like defaults.
func NewMultilevel() *Multilevel {
	return &Multilevel{Seed: 1, BalanceTolerance: 1.05, CoarsenTo: 30, RefinePasses: 8}
}

// Name implements Partitioner.
func (m *Multilevel) Name() string { return "metis" }

// wgraph is a weighted graph used during coarsening. Vertex weights count
// how many original vertices a coarse vertex represents; edge weights count
// collapsed parallel edges.
type wgraph struct {
	vwgt    []int64
	offsets []int64
	adj     []graph.VertexID
	ewgt    []int64
}

func (w *wgraph) n() int { return len(w.vwgt) }

func (w *wgraph) neighbors(v graph.VertexID) ([]graph.VertexID, []int64) {
	return w.adj[w.offsets[v]:w.offsets[v+1]], w.ewgt[w.offsets[v]:w.offsets[v+1]]
}

func (w *wgraph) totalVWgt() int64 {
	var t int64
	for _, x := range w.vwgt {
		t += x
	}
	return t
}

func fromGraph(g *graph.Graph) *wgraph {
	n := g.NumVertices()
	w := &wgraph{
		vwgt:    make([]int64, n),
		offsets: make([]int64, n+1),
		adj:     make([]graph.VertexID, g.NumEdges()),
		ewgt:    make([]int64, g.NumEdges()),
	}
	for v := 0; v < n; v++ {
		w.vwgt[v] = 1
	}
	idx := 0
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if u == graph.VertexID(v) {
				continue // self loops are irrelevant to cuts
			}
			w.adj[idx] = u
			w.ewgt[idx] = 1
			idx++
		}
		w.offsets[v+1] = int64(idx)
	}
	w.adj = w.adj[:idx]
	w.ewgt = w.ewgt[:idx]
	return w
}

// Partition implements Partitioner.
func (m *Multilevel) Partition(g *graph.Graph, k int) Assignment {
	n := g.NumVertices()
	if k <= 1 || n == 0 {
		return make(Assignment, n)
	}
	rng := rand.New(rand.NewSource(m.Seed))

	// Coarsening phase: build a hierarchy of graphs and vertex maps.
	levels := []*wgraph{fromGraph(g)}
	var maps [][]graph.VertexID // maps[i][v] = coarse vertex of v at level i+1
	target := m.CoarsenTo * k
	if target < 64 {
		target = 64
	}
	for {
		cur := levels[len(levels)-1]
		if cur.n() <= target {
			break
		}
		maxVWgt := cur.totalVWgt() / int64(4*k)
		if maxVWgt < 1 {
			maxVWgt = 1
		}
		coarse, vmap := coarsen(cur, rng, maxVWgt)
		if coarse.n() >= cur.n()*95/100 {
			break // matching stalled (e.g. star graphs); stop coarsening
		}
		levels = append(levels, coarse)
		maps = append(maps, vmap)
	}

	// Initial partitioning on the coarsest graph.
	coarsest := levels[len(levels)-1]
	assign := growRegions(coarsest, k, rng)
	refine(coarsest, assign, k, m.BalanceTolerance, m.RefinePasses)

	// Uncoarsening: project and refine level by level.
	for i := len(levels) - 2; i >= 0; i-- {
		fine := levels[i]
		vmap := maps[i]
		fineAssign := make(Assignment, fine.n())
		for v := range fineAssign {
			fineAssign[v] = assign[vmap[v]]
		}
		assign = fineAssign
		refine(fine, assign, k, m.BalanceTolerance, m.RefinePasses)
	}
	return assign
}

// coarsen performs one level of heavy-edge matching and contracts matched
// pairs into coarse vertices. Matches that would create a coarse vertex
// heavier than maxVWgt are skipped — without this cap, hub vertices in
// power-law graphs absorb so much weight that no balanced initial partition
// exists at the coarsest level.
func coarsen(w *wgraph, rng *rand.Rand, maxVWgt int64) (*wgraph, []graph.VertexID) {
	n := w.n()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	coarseCount := 0
	vmap := make([]graph.VertexID, n)
	for _, vi := range order {
		v := graph.VertexID(vi)
		if match[v] >= 0 {
			continue
		}
		// Find the unmatched neighbor with the heaviest connecting edge
		// whose combined weight stays under the cap.
		bestU := int32(-1)
		var bestW int64 = -1
		nbrs, wts := w.neighbors(v)
		for j, u := range nbrs {
			if match[u] < 0 && u != v && wts[j] > bestW && w.vwgt[v]+w.vwgt[u] <= maxVWgt {
				bestU, bestW = int32(u), wts[j]
			}
		}
		if bestU >= 0 {
			match[v] = bestU
			match[bestU] = int32(v)
			vmap[v] = graph.VertexID(coarseCount)
			vmap[bestU] = graph.VertexID(coarseCount)
		} else {
			match[v] = int32(v)
			vmap[v] = graph.VertexID(coarseCount)
		}
		coarseCount++
	}

	// Build the contracted graph: union adjacency with edge-weight sums.
	coarse := &wgraph{
		vwgt:    make([]int64, coarseCount),
		offsets: make([]int64, coarseCount+1),
	}
	for v := 0; v < n; v++ {
		coarse.vwgt[vmap[v]] += w.vwgt[v]
	}
	type cedge struct {
		u, v graph.VertexID
		w    int64
	}
	edges := make([]cedge, 0, len(w.adj))
	for v := 0; v < n; v++ {
		cv := vmap[v]
		nbrs, wts := w.neighbors(graph.VertexID(v))
		for j, u := range nbrs {
			cu := vmap[u]
			if cu != cv {
				edges = append(edges, cedge{cv, cu, wts[j]})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	for i := 0; i < len(edges); {
		j := i
		var sum int64
		for j < len(edges) && edges[j].u == edges[i].u && edges[j].v == edges[i].v {
			sum += edges[j].w
			j++
		}
		coarse.adj = append(coarse.adj, edges[i].v)
		coarse.ewgt = append(coarse.ewgt, sum)
		coarse.offsets[edges[i].u+1] = int64(len(coarse.adj))
		i = j
	}
	for i := 1; i <= coarseCount; i++ {
		if coarse.offsets[i] == 0 {
			coarse.offsets[i] = coarse.offsets[i-1]
		}
	}
	return coarse, vmap
}

// growRegions produces an initial k-way assignment by greedy BFS region
// growing: each region grows from an unassigned seed until it reaches the
// ideal weight, preferring frontier vertices with the strongest connection
// to the region.
func growRegions(w *wgraph, k int, rng *rand.Rand) Assignment {
	n := w.n()
	assign := make(Assignment, n)
	for i := range assign {
		assign[i] = -1
	}
	ideal := float64(w.totalVWgt()) / float64(k)
	order := rng.Perm(n)
	next := 0
	for p := 0; p < k-1; p++ {
		// Seed: first unassigned vertex in the random order.
		seed := -1
		for next < n {
			if assign[order[next]] < 0 {
				seed = order[next]
				break
			}
			next++
		}
		if seed < 0 {
			break
		}
		var weight int64
		frontier := []graph.VertexID{graph.VertexID(seed)}
		assign[seed] = int32(p)
		weight += w.vwgt[seed]
		for len(frontier) > 0 && float64(weight) < ideal {
			v := frontier[0]
			frontier = frontier[1:]
			nbrs, _ := w.neighbors(v)
			for _, u := range nbrs {
				if assign[u] < 0 && float64(weight) < ideal {
					assign[u] = int32(p)
					weight += w.vwgt[u]
					frontier = append(frontier, u)
				}
			}
		}
		// If the region ran out of frontier before reaching ideal weight
		// (disconnected graph), grab arbitrary unassigned vertices.
		for i := 0; i < n && float64(weight) < ideal; i++ {
			if assign[order[i]] < 0 {
				assign[order[i]] = int32(p)
				weight += w.vwgt[order[i]]
			}
		}
	}
	for v := 0; v < n; v++ {
		if assign[v] < 0 {
			assign[v] = int32(k - 1)
		}
	}
	return assign
}

// rebalance moves vertices out of overweight partitions into underweight
// ones, preferring moves that lose the least edge weight. Returns the number
// of vertices moved.
func rebalance(w *wgraph, assign Assignment, k int, weights []int64, maxWeight int64, conn []int64) int {
	over := false
	for p := 0; p < k; p++ {
		if weights[p] > maxWeight {
			over = true
		}
	}
	if !over {
		return 0
	}
	moved := 0
	for v := 0; v < w.n(); v++ {
		home := assign[v]
		if weights[home] <= maxWeight {
			continue
		}
		nbrs, wts := w.neighbors(graph.VertexID(v))
		for i := range conn {
			conn[i] = 0
		}
		for j, u := range nbrs {
			conn[assign[u]] += wts[j]
		}
		// Pick the connected (or any) partition with the most room.
		bestP := int32(-1)
		var bestScore int64 = -1 << 62
		for p := int32(0); p < int32(k); p++ {
			if p == home || weights[p]+w.vwgt[v] > maxWeight {
				continue
			}
			score := conn[p] - conn[home] // edge-weight change; may be negative
			if score > bestScore {
				bestP, bestScore = p, score
			}
		}
		if bestP >= 0 {
			weights[home] -= w.vwgt[v]
			weights[bestP] += w.vwgt[v]
			assign[v] = bestP
			moved++
			if weights[home] <= maxWeight {
				continue
			}
		}
	}
	return moved
}

// refine runs greedy boundary Kernighan–Lin/FM passes: boundary vertices
// move to the neighboring partition with the highest positive gain
// (external minus internal edge weight) subject to the balance constraint.
func refine(w *wgraph, assign Assignment, k int, tolerance float64, passes int) {
	n := w.n()
	weights := make([]int64, k)
	for v := 0; v < n; v++ {
		weights[assign[v]] += w.vwgt[v]
	}
	maxWeight := int64(tolerance * float64(w.totalVWgt()) / float64(k))
	if maxWeight < 1 {
		maxWeight = 1
	}
	conn := make([]int64, k) // connection weight from v to each partition
	// Balance-restoring pass: while any partition exceeds the tolerance,
	// move boundary vertices out of it toward the least-damaging neighbor
	// partition even at zero or negative gain.
	for pass := 0; pass < passes; pass++ {
		moved := rebalance(w, assign, k, weights, maxWeight, conn)
		if moved == 0 {
			break
		}
	}
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < n; v++ {
			home := assign[v]
			nbrs, wts := w.neighbors(graph.VertexID(v))
			if len(nbrs) == 0 {
				continue
			}
			for i := range conn {
				conn[i] = 0
			}
			boundary := false
			for j, u := range nbrs {
				conn[assign[u]] += wts[j]
				if assign[u] != home {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			bestP := home
			bestGain := int64(0)
			for p := int32(0); p < int32(k); p++ {
				if p == home || conn[p] == 0 {
					continue
				}
				if weights[p]+w.vwgt[v] > maxWeight {
					continue
				}
				gain := conn[p] - conn[home]
				if gain > bestGain || (gain == bestGain && gain > 0 && weights[p] < weights[bestP]) {
					bestP, bestGain = p, gain
				}
			}
			if bestP != home && bestGain > 0 {
				weights[home] -= w.vwgt[v]
				weights[bestP] += w.vwgt[v]
				assign[v] = bestP
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
