package partition

import (
	"testing"

	"pregelnet/internal/graph"
)

func TestIncrementalFreshDelegatesToSeeder(t *testing.T) {
	g := graph.WattsStrogatz(2000, 6, 0.05, 3)
	inc := NewIncremental()
	a := inc.Partition(g, 8)
	ldg := NewLDG(DefaultSlack).Partition(g, 8)
	for v := range a {
		if a[v] != ldg[v] {
			t.Fatalf("fresh incremental layout differs from LDG at vertex %d", v)
		}
	}
}

func TestIncrementalScaleInMovesOnlyOrphans(t *testing.T) {
	g := graph.WattsStrogatz(2000, 6, 0.05, 3)
	inc := NewIncremental()
	prev := NewLDG(DefaultSlack).Partition(g, 8)
	a, err := inc.PartitionFrom(g, prev, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(7); err != nil {
		t.Fatal(err)
	}
	// Scale-in 8 -> 7: partition 7's vertices are orphans (~1/8 of the
	// graph); everyone else keeps its owner unless balance forces a move.
	// With slack 1.10 the retained partitions have headroom, so nothing but
	// the orphans should move.
	moved := MovedVertices(prev, a)
	orphans := 0
	for _, p := range prev {
		if p == 7 {
			orphans++
		}
	}
	if moved != orphans {
		t.Errorf("moved %d vertices, want exactly the %d orphans", moved, orphans)
	}
	for v := range prev {
		if prev[v] != 7 && a[v] != prev[v] {
			t.Errorf("retained vertex %d moved %d -> %d", v, prev[v], a[v])
		}
	}
	capInt := inc.capacity(g.NumVertices(), 7)
	for p, s := range a.Sizes(7) {
		if s > capInt {
			t.Errorf("partition %d has %d vertices, capacity %d", p, s, capInt)
		}
	}
}

func TestIncrementalScaleOutMovesMinimum(t *testing.T) {
	g := graph.WattsStrogatz(2000, 6, 0.05, 3)
	inc := NewIncremental()
	prev := NewLDG(DefaultSlack).Partition(g, 7)
	a, err := inc.PartitionFrom(g, prev, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(8); err != nil {
		t.Fatal(err)
	}
	// Scale-out 7 -> 8: no orphans; only the overflow above the new capacity
	// moves (into the empty partition 7). The minimum movement is
	// sum over partitions of max(0, size - cap).
	capInt := inc.capacity(g.NumVertices(), 8)
	want := 0
	for _, s := range prev.Sizes(7) {
		if s > capInt {
			want += s - capInt
		}
	}
	moved := MovedVertices(prev, a)
	if moved != want {
		t.Errorf("moved %d vertices, want the minimum %d", moved, want)
	}
	// A hash reshuffle on the same event moves nearly everything.
	hashMoved := MovedVertices(prev, Hash{}.Partition(g, 8))
	if moved*4 > hashMoved {
		t.Errorf("incremental moved %d, hash %d: want <= 25%%", moved, hashMoved)
	}
	for p, s := range a.Sizes(8) {
		if s > capInt {
			t.Errorf("partition %d has %d vertices, capacity %d", p, s, capInt)
		}
	}
}

func TestIncrementalPreservesCut(t *testing.T) {
	g := graph.WattsStrogatz(2000, 6, 0.05, 3)
	inc := NewIncremental()
	prev := NewLDG(DefaultSlack).Partition(g, 8)
	prevCut := CutFraction(g, prev)
	a, err := inc.PartitionFrom(g, prev, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	incCut := CutFraction(g, a)
	hashCut := CutFraction(g, Hash{}.Partition(g, 7))
	t.Logf("cut: prev=%.3f incremental=%.3f hash=%.3f", prevCut, incCut, hashCut)
	// The adapted layout keeps most of the structure the seed found: far
	// better than a hash reshuffle and within a modest factor of the
	// pre-resize cut.
	if incCut >= hashCut {
		t.Errorf("incremental cut %.3f not better than hash %.3f", incCut, hashCut)
	}
	if incCut > prevCut+0.15 {
		t.Errorf("incremental cut %.3f degraded too far from %.3f", incCut, prevCut)
	}
}

func TestIncrementalDeterministic(t *testing.T) {
	g := graph.DatasetSD()
	traffic := make([]int64, g.NumVertices())
	for v := range traffic {
		traffic[v] = int64(v % 17)
	}
	inc := NewIncremental()
	prev := NewLDG(DefaultSlack).Partition(g, 5)
	a1, err := inc.PartitionFrom(g, prev, 4, traffic)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := inc.PartitionFrom(g, prev, 4, traffic)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a1 {
		if a1[v] != a2[v] {
			t.Fatalf("nondeterministic at vertex %d: %d vs %d", v, a1[v], a2[v])
		}
	}
}

func TestIncrementalTrafficWeightingValid(t *testing.T) {
	g := graph.Community(2000, 16, 4, 0.9, 5)
	inc := NewIncremental()
	prev := NewLDG(DefaultSlack).Partition(g, 8)
	// Skew traffic heavily toward the low-ID half; the layout must stay
	// valid and balanced regardless of the weighting.
	traffic := make([]int64, g.NumVertices())
	for v := 0; v < len(traffic)/2; v++ {
		traffic[v] = 100
	}
	a, err := inc.PartitionFrom(g, prev, 6, traffic)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(6); err != nil {
		t.Fatal(err)
	}
	capInt := inc.capacity(g.NumVertices(), 6)
	for p, s := range a.Sizes(6) {
		if s > capInt {
			t.Errorf("partition %d has %d vertices, capacity %d", p, s, capInt)
		}
	}
}

func TestIncrementalPrevMismatch(t *testing.T) {
	g := graph.Ring(10)
	inc := NewIncremental()
	if _, err := inc.PartitionFrom(g, make(Assignment, 5), 2, nil); err == nil {
		t.Error("expected an error for a mismatched previous assignment")
	}
	if _, err := inc.PartitionFrom(g, make(Assignment, 10), 0, nil); err == nil {
		t.Error("expected an error for k = 0")
	}
}

func TestIncrementalK1AndEmpty(t *testing.T) {
	g := graph.Ring(10)
	inc := NewIncremental()
	prev := Hash{}.Partition(g, 4)
	a, err := inc.PartitionFrom(g, prev, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a {
		if p != 0 {
			t.Fatal("k=1 must assign everything to partition 0")
		}
	}
	empty := graph.NewBuilder(0).Build()
	if a, err := inc.PartitionFrom(empty, Assignment{}, 4, nil); err != nil || len(a) != 0 {
		t.Fatalf("empty graph: a=%v err=%v", a, err)
	}
}

func TestEvaluateRejectsBadAssignments(t *testing.T) {
	g := graph.Ring(10)
	bad := make(Assignment, 10)
	bad[3] = 42
	if _, err := Evaluate(g, bad, 4, "bad"); err == nil {
		t.Error("expected an error for an out-of-range partition index")
	}
	bad[3] = -1
	if _, err := Evaluate(g, bad, 4, "bad"); err == nil {
		t.Error("expected an error for a negative partition index")
	}
	if _, err := Evaluate(g, make(Assignment, 4), 4, "short"); err == nil {
		t.Error("expected an error for a short assignment")
	}
	if _, err := Evaluate(g, make(Assignment, 10), 0, "k0"); err == nil {
		t.Error("expected an error for k = 0")
	}
}

func TestSizesDefensive(t *testing.T) {
	a := Assignment{0, 1, 99, -1, 1}
	sizes := a.Sizes(2) // must not panic on out-of-range entries
	if sizes[0] != 1 || sizes[1] != 2 {
		t.Errorf("Sizes = %v, want [1 2]", sizes)
	}
}

func TestTrafficWeights(t *testing.T) {
	if trafficWeights(nil, 4) != nil {
		t.Error("nil traffic should give nil weights")
	}
	if trafficWeights(make([]int64, 3), 4) != nil {
		t.Error("mismatched traffic should give nil weights")
	}
	if trafficWeights(make([]int64, 4), 4) != nil {
		t.Error("all-zero traffic should give nil weights")
	}
	w := trafficWeights([]int64{0, 2, 4, 2}, 4)
	if w == nil || w[0] != 1 || w[2] <= w[1] {
		t.Errorf("weights = %v", w)
	}
}
