package partition

import (
	"testing"
	"testing/quick"

	"pregelnet/internal/graph"
)

// mustEval evaluates an assignment, failing the test on a validation error.
func mustEval(t *testing.T, g *graph.Graph, a Assignment, k int, strategy string) Quality {
	t.Helper()
	q, err := Evaluate(g, a, k, strategy)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestHash(t *testing.T) {
	g := graph.Ring(10)
	a := Hash{}.Partition(g, 4)
	if err := a.Validate(4); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10; v++ {
		if a[v] != int32(v%4) {
			t.Errorf("vertex %d -> %d, want %d", v, a[v], v%4)
		}
	}
}

func TestChunk(t *testing.T) {
	g := graph.Ring(10)
	a := Chunk{}.Partition(g, 3)
	if err := a.Validate(3); err != nil {
		t.Fatal(err)
	}
	// ceil(10/3)=4: [0..3]->0, [4..7]->1, [8..9]->2
	if a[0] != 0 || a[3] != 0 || a[4] != 1 || a[8] != 2 {
		t.Errorf("chunk assignment wrong: %v", a)
	}
}

func TestChunkEmpty(t *testing.T) {
	a := Chunk{}.Partition(graph.NewBuilder(0).Build(), 3)
	if len(a) != 0 {
		t.Fatal("expected empty assignment")
	}
}

func TestAssignmentHelpers(t *testing.T) {
	a := Assignment{0, 1, 1, 2}
	if a.NumPartitions() != 3 {
		t.Errorf("NumPartitions = %d", a.NumPartitions())
	}
	sizes := a.Sizes(3)
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 1 {
		t.Errorf("Sizes = %v", sizes)
	}
	if err := a.Validate(3); err != nil {
		t.Error(err)
	}
	if err := a.Validate(2); err == nil {
		t.Error("expected Validate(2) to fail")
	}
}

func TestEvaluateRingChunk(t *testing.T) {
	// A ring of 12 in 4 chunks cuts exactly 4 undirected edges = 8 directed.
	g := graph.Ring(12)
	a := Chunk{}.Partition(g, 4)
	q := mustEval(t, g, a, 4, "chunk")
	if q.EdgeCut != 8 {
		t.Errorf("edge cut = %d, want 8", q.EdgeCut)
	}
	if q.Balance != 1.0 {
		t.Errorf("balance = %v, want 1.0", q.Balance)
	}
}

func TestEvaluateHashCutsNearlyEverything(t *testing.T) {
	g := graph.DatasetSD()
	k := 8
	q := mustEval(t, g, Hash{}.Partition(g, k), k, "hash")
	// Expect ~ (k-1)/k = 87.5% cut, as the paper reports ~87%.
	if q.CutFraction < 0.80 || q.CutFraction > 0.95 {
		t.Errorf("hash cut fraction = %.2f, want ~0.875", q.CutFraction)
	}
}

func TestLDGBeatsHashOnLocalGraph(t *testing.T) {
	g := graph.WattsStrogatz(2000, 6, 0.05, 3)
	k := 8
	hashQ := mustEval(t, g, Hash{}.Partition(g, k), k, "hash")
	ldg := NewLDG(DefaultSlack)
	a := ldg.Partition(g, k)
	if err := a.Validate(k); err != nil {
		t.Fatal(err)
	}
	q := mustEval(t, g, a, k, "ldg")
	if q.CutFraction >= hashQ.CutFraction {
		t.Errorf("LDG cut %.3f not better than hash %.3f", q.CutFraction, hashQ.CutFraction)
	}
	if q.Balance > 1.2 {
		t.Errorf("LDG balance %.3f too skewed", q.Balance)
	}
}

func TestLDGCapacityRespected(t *testing.T) {
	g := graph.Star(100)
	k := 4
	a := NewLDG(1.0).Partition(g, k)
	sizes := a.Sizes(k)
	for p, s := range sizes {
		if s > 26 { // ceil(100/4) + rounding
			t.Errorf("partition %d has %d vertices, exceeds capacity", p, s)
		}
	}
}

func TestLDGBFSOrder(t *testing.T) {
	g := graph.WattsStrogatz(1000, 6, 0.05, 3)
	k := 4
	a := NewLDGWithOrder(DefaultSlack, OrderBFS).Partition(g, k)
	if err := a.Validate(k); err != nil {
		t.Fatal(err)
	}
	q := mustEval(t, g, a, k, "ldg-bfs")
	hashQ := mustEval(t, g, Hash{}.Partition(g, k), k, "hash")
	if q.CutFraction >= hashQ.CutFraction {
		t.Errorf("LDG-BFS cut %.3f not better than hash %.3f", q.CutFraction, hashQ.CutFraction)
	}
}

func TestMultilevelRing(t *testing.T) {
	// The optimal 4-way cut of a ring is 4 undirected edges; multilevel
	// should get close (allow 2x).
	g := graph.Ring(256)
	m := NewMultilevel()
	a := m.Partition(g, 4)
	if err := a.Validate(4); err != nil {
		t.Fatal(err)
	}
	q := mustEval(t, g, a, 4, "metis")
	if q.EdgeCut > 16 {
		t.Errorf("ring 4-way cut = %d directed edges, want <= 16", q.EdgeCut)
	}
	if q.Balance > 1.2 {
		t.Errorf("balance = %.3f", q.Balance)
	}
}

func TestMultilevelGrid(t *testing.T) {
	g := graph.Grid(32, 32)
	m := NewMultilevel()
	k := 4
	a := m.Partition(g, k)
	q := mustEval(t, g, a, k, "metis")
	// Optimal 4-way cut of a 32x32 grid is ~64 undirected edges (two
	// straight cuts); accept up to 3x.
	if q.EdgeCut > 3*2*64 {
		t.Errorf("grid cut = %d directed edges, want near-optimal", q.EdgeCut)
	}
	if q.Balance > 1.15 {
		t.Errorf("balance = %.3f", q.Balance)
	}
}

func TestMultilevelBeatsLDGAndHash(t *testing.T) {
	g := graph.DatasetCP()
	k := 8
	hashQ := mustEval(t, g, Hash{}.Partition(g, k), k, "hash")
	ldgQ := mustEval(t, g, NewLDG(DefaultSlack).Partition(g, k), k, "ldg")
	metisQ := mustEval(t, g, NewMultilevel().Partition(g, k), k, "metis")
	t.Logf("CP': hash=%.2f ldg=%.2f metis=%.2f", hashQ.CutFraction, ldgQ.CutFraction, metisQ.CutFraction)
	if !(metisQ.CutFraction < ldgQ.CutFraction && ldgQ.CutFraction < hashQ.CutFraction) {
		t.Errorf("expected metis < ldg < hash cut ordering, got %.2f %.2f %.2f",
			metisQ.CutFraction, ldgQ.CutFraction, hashQ.CutFraction)
	}
	// Paper reports METIS ~17-18% remote edges; ours should be well under 40%.
	if metisQ.CutFraction > 0.4 {
		t.Errorf("metis cut fraction %.2f too high", metisQ.CutFraction)
	}
}

func TestMultilevelK1AndEmpty(t *testing.T) {
	g := graph.Ring(10)
	a := NewMultilevel().Partition(g, 1)
	for _, p := range a {
		if p != 0 {
			t.Fatal("k=1 must assign everything to partition 0")
		}
	}
	empty := NewMultilevel().Partition(graph.NewBuilder(0).Build(), 4)
	if len(empty) != 0 {
		t.Fatal("empty graph should give empty assignment")
	}
}

func TestMultilevelStarDoesNotStall(t *testing.T) {
	// Star graphs defeat heavy-edge matching (everything matches the hub);
	// the partitioner must still terminate and produce a valid assignment.
	g := graph.Star(500)
	a := NewMultilevel().Partition(g, 4)
	if err := a.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	g := graph.DatasetSD()
	a1 := NewMultilevel().Partition(g, 8)
	a2 := NewMultilevel().Partition(g, 8)
	for v := range a1 {
		if a1[v] != a2[v] {
			t.Fatalf("nondeterministic at vertex %d", v)
		}
	}
}

func TestFennelBeatsHashOnCommunityGraph(t *testing.T) {
	g := graph.Community(2000, 16, 4, 0.9, 5)
	k := 8
	hashQ := mustEval(t, g, Hash{}.Partition(g, k), k, "hash")
	a := NewFennel().Partition(g, k)
	if err := a.Validate(k); err != nil {
		t.Fatal(err)
	}
	q := mustEval(t, g, a, k, "fennel")
	if q.CutFraction >= hashQ.CutFraction {
		t.Errorf("fennel cut %.3f not better than hash %.3f", q.CutFraction, hashQ.CutFraction)
	}
	if q.Balance > 1.25 {
		t.Errorf("fennel balance %.3f too skewed", q.Balance)
	}
}

func TestFennelEmptyAndTiny(t *testing.T) {
	if got := NewFennel().Partition(graph.NewBuilder(0).Build(), 4); len(got) != 0 {
		t.Error("empty graph should give empty assignment")
	}
	a := NewFennel().Partition(graph.Ring(3), 8)
	if err := a.Validate(8); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"hash", "chunk", "ldg", "metis", "multilevel", "streaming", "fennel"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("bogus") != nil {
		t.Error("ByName(bogus) should be nil")
	}
}

// Property: every partitioner produces a complete valid assignment on random
// graphs, with every partition in range.
func TestPartitionersValidProperty(t *testing.T) {
	partitioners := []Partitioner{Hash{}, Chunk{}, NewLDG(DefaultSlack), NewMultilevel()}
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%7) + 2
		g := graph.ErdosRenyi(80, 160, seed)
		for _, p := range partitioners {
			a := p.Partition(g, k)
			if len(a) != g.NumVertices() {
				return false
			}
			if a.Validate(k) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: evaluated sizes always sum to the vertex count.
func TestEvaluateSizesSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.ErdosRenyi(60, 120, seed)
		a := NewLDG(DefaultSlack).Partition(g, 5)
		q := mustEval(t, g, a, 5, "ldg")
		total := 0
		for _, s := range q.Sizes {
			total += s
		}
		return total == g.NumVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: multilevel respects its balance tolerance on community graphs
// of varied shapes.
func TestMultilevelBalanceProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%6) + 2
		g := graph.Community(600, 6, 3, 0.8, seed)
		m := NewMultilevel()
		q := mustEval(t, g, m.Partition(g, k), k, "metis")
		// Tolerance 1.05 plus slack for integer rounding on small parts.
		return q.Balance <= m.BalanceTolerance+0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
