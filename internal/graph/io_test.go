package graph

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	input := `# comment line
# another
0	1
1 2
5 0
`
	g, err := ReadEdgeList(strings.NewReader(input), false)
	if err != nil {
		t.Fatal(err)
	}
	// IDs 0,1,2,5 are renumbered densely in first-appearance order: 0,1,2,3.
	if g.NumVertices() != 4 {
		t.Fatalf("vertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge(3, 0) { // 5->0 renumbered to 3->0
		t.Error("missing renumbered edge 5->0")
	}
}

func TestReadEdgeListUndirected(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected read missing reverse edge")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0\n"), false); err == nil {
		t.Error("expected error for single-field line")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n"), false); err == nil {
		t.Error("expected error for non-numeric id")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := ErdosRenyi(50, 120, 4)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d -> %d/%d",
			g.NumVertices(), g.NumEdges(), g2.NumVertices(), g2.NumEdges())
	}
	// The reader renumbers vertices in first-appearance order, so compare the
	// isomorphism-invariant sorted degree sequence rather than raw edges.
	degrees := func(g *Graph) []int {
		ds := make([]int, g.NumVertices())
		for v := range ds {
			ds[v] = g.OutDegree(VertexID(v))
		}
		sort.Ints(ds)
		return ds
	}
	d1, d2 := degrees(g), degrees(g2)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("degree sequence mismatch at %d: %d vs %d", i, d1[i], d2[i])
		}
	}
}

func TestEdgeListRoundTripExact(t *testing.T) {
	// Path's edge iteration interns IDs in identity order, so the round trip
	// is exact edge-for-edge.
	g := Path(6)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	g.ForEachEdge(func(u, v VertexID) {
		if !g2.HasEdge(u, v) {
			t.Errorf("lost edge (%d,%d)", u, v)
		}
	})
}

func TestBinaryRoundTrip(t *testing.T) {
	g := BarabasiAlbert(200, 3, 6)
	g.SetName("test-graph")
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name() != "test-graph" {
		t.Errorf("name = %q", g2.Name())
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip changed size")
	}
	g.ForEachEdge(func(u, v VertexID) {
		if !g2.HasEdge(u, v) {
			t.Errorf("lost edge (%d,%d)", u, v)
		}
	})
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Error("expected bad-magic error")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	g := Ring(10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("expected error for truncated input")
	}
}
