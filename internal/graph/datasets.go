package graph

import "sync"

// This file defines the four scaled synthetic analogs of the paper's SNAP
// datasets (Table 1). Real traces are proprietary-scale downloads; the
// analogs are deterministic generators chosen so that the *structural
// properties that drive the paper's results* are preserved:
//
//   - SD' (SlashDot analog): Barabási–Albert preferential attachment.
//     Dense social graph, heavy-tailed degrees, very short diameter (~4).
//   - WG' (web-Google analog): preferential attachment with planted
//     communities. Hub-based power-law web structure with host locality;
//     BFS frontiers spread across partitions fast.
//   - CP' (cit-Patents analog): temporally banded citation graph. Each
//     vertex cites a recent window of earlier vertices, so BFS frontiers
//     advance as contiguous bands that stay spatially concentrated — which
//     is exactly what produces the METIS load imbalance the paper reports
//     for CP (Figs 12-14).
//   - LJ' (LiveJournal analog): larger, denser RMAT. Used only for PageRank
//     in Fig 2, as BC/APSP did not fit worker memory in the paper either.
//
// All are symmetrized, restricted to their largest connected component, and
// ID-shuffled (real dataset IDs carry no generator locality) so
// every BC root reaches the full graph, matching how the paper uses the
// datasets (unweighted, undirected BC).

// Dataset names used throughout the experiment harness.
const (
	NameSD = "SD'"
	NameWG = "WG'"
	NameCP = "CP'"
	NameLJ = "LJ'"
)

var datasetCache sync.Map // name -> *Graph

func cached(name string, build func() *Graph) *Graph {
	if g, ok := datasetCache.Load(name); ok {
		return g.(*Graph)
	}
	g := build()
	g.SetName(name)
	actual, _ := datasetCache.LoadOrStore(name, g)
	return actual.(*Graph)
}

// DatasetSD returns the SlashDot analog (~2k vertices, ~12k edges).
func DatasetSD() *Graph {
	return cached(NameSD, func() *Graph {
		g := BarabasiAlbert(2048, 6, 42)
		lcc, _ := LargestComponentSubgraph(g)
		return lcc.ShuffleIDs(101)
	})
}

// DatasetWG returns the web-Google analog (~13k vertices, ~52k edges):
// power-law hubs with planted host-level community structure, so that — as
// with the real web graph — low-cut partitions exist for METIS to find.
func DatasetWG() *Graph {
	return cached(NameWG, func() *Graph {
		g := Community(13000, 64, 4, 0.85, 7)
		lcc, _ := LargestComponentSubgraph(g)
		return lcc.ShuffleIDs(102)
	})
}

// DatasetCP returns the cit-Patents analog (~32k vertices, ~131k edges):
// a temporally banded citation graph (chronological IDs citing a recent
// window) with a longer effective diameter, no hubs, and band-contiguous
// BFS frontiers.
func DatasetCP() *Graph {
	return cached(NameCP, func() *Graph {
		g := CitationBand(32768, 4, 1500, 0.02, 11)
		lcc, _ := LargestComponentSubgraph(g)
		return lcc.ShuffleIDs(103)
	})
}

// DatasetLJ returns the LiveJournal analog (~30k vertices, ~400k edges).
func DatasetLJ() *Graph {
	return cached(NameLJ, func() *Graph {
		g := RMAT(15, 14, 0.57, 0.19, 0.19, 0.05, 23)
		lcc, _ := LargestComponentSubgraph(g)
		return lcc.ShuffleIDs(104)
	})
}

// Dataset returns a dataset analog by name (NameSD, NameWG, NameCP, NameLJ),
// or nil if the name is unknown.
func Dataset(name string) *Graph {
	switch name {
	case NameSD, "sd", "SD":
		return DatasetSD()
	case NameWG, "wg", "WG":
		return DatasetWG()
	case NameCP, "cp", "CP":
		return DatasetCP()
	case NameLJ, "lj", "LJ":
		return DatasetLJ()
	}
	return nil
}

// AllDatasets returns the four analogs in the paper's Table 1 order.
func AllDatasets() []*Graph {
	return []*Graph{DatasetSD(), DatasetWG(), DatasetCP(), DatasetLJ()}
}
