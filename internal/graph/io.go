package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the edge-list text format used by SNAP (the paper's
// dataset source) and a compact binary format for the blob store.

// ReadEdgeList parses a SNAP-style edge list: one "src<ws>dst" pair per
// line, '#' lines are comments. Vertex IDs may be sparse; they are densely
// renumbered in first-appearance order. If undirected is true each edge is
// added in both directions.
func ReadEdgeList(r io.Reader, undirected bool) (*Graph, error) {
	type rawEdge struct{ u, v int64 }
	var raw []rawEdge
	idMap := make(map[int64]VertexID)
	intern := func(x int64) VertexID {
		if id, ok := idMap[x]; ok {
			return id
		}
		id := VertexID(len(idMap))
		idMap[x] = id
		return id
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source id: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target id: %v", lineNo, err)
		}
		raw = append(raw, rawEdge{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	// Intern IDs in a deterministic pass.
	for _, e := range raw {
		intern(e.u)
		intern(e.v)
	}
	b := NewBuilder(len(idMap))
	for _, e := range raw {
		u, v := idMap[e.u], idMap[e.v]
		if undirected {
			b.AddUndirected(u, v)
		} else {
			b.Add(u, v)
		}
	}
	return b.Build(), nil
}

// WriteEdgeList writes the graph as a SNAP-style edge list with a header
// comment. Every directed edge is written once.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s  vertices=%d directed-edges=%d\n", g.Name(), g.NumVertices(), g.NumEdges())
	var err error
	g.ForEachEdge(func(u, v VertexID) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d\t%d\n", u, v)
		}
	})
	if err != nil {
		return fmt.Errorf("graph: writing edge list: %w", err)
	}
	return bw.Flush()
}

const binaryMagic = 0x50474252 // "PGBR"

// WriteBinary serializes the graph in the compact CSR binary format used to
// stage graphs in the blob store.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 4+4+8+8)
	binary.LittleEndian.PutUint32(hdr[0:], binaryMagic)
	name := g.Name()
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(name)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, off := range g.offsets {
		binary.LittleEndian.PutUint64(buf, uint64(off))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	for _, v := range g.adj {
		binary.LittleEndian.PutUint32(buf[:4], uint32(v))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 4+4+8+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic in binary graph")
	}
	nameLen := binary.LittleEndian.Uint32(hdr[4:])
	n := int(binary.LittleEndian.Uint64(hdr[8:]))
	m := int(binary.LittleEndian.Uint64(hdr[16:]))
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("graph: reading name: %w", err)
	}
	offsets := make([]int64, n+1)
	buf := make([]byte, 8)
	for i := range offsets {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("graph: reading offsets: %w", err)
		}
		offsets[i] = int64(binary.LittleEndian.Uint64(buf))
	}
	adj := make([]VertexID, m)
	for i := range adj {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("graph: reading adjacency: %w", err)
		}
		adj[i] = VertexID(binary.LittleEndian.Uint32(buf[:4]))
	}
	g := &Graph{name: string(nameBuf), offsets: offsets, adj: adj}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
