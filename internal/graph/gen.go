package graph

import (
	"math/rand"
)

// This file implements deterministic synthetic graph generators. The paper
// evaluates on four SNAP datasets with small-world structure (short effective
// diameter, heavy-tailed degrees). Public traces are substituted by these
// generators; see datasets.go for the scaled analogs and DESIGN.md for the
// substitution rationale.

// ErdosRenyi generates G(n, m): n vertices and m undirected edges chosen
// uniformly at random without duplicates or self-loops.
func ErdosRenyi(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	seen := make(map[[2]VertexID]bool, m)
	for len(seen) < m {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]VertexID{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddUndirected(u, v)
	}
	g := b.Build()
	g.SetName("erdos-renyi")
	return g
}

// WattsStrogatz generates a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbors (k must be even), with each
// edge rewired to a random target with probability beta. Low beta yields
// high clustering and a moderately larger diameter, mimicking mesh-like
// networks such as citation graphs.
func WattsStrogatz(n, k int, beta float64, seed int64) *Graph {
	if k%2 != 0 {
		panic("graph: WattsStrogatz requires even k")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if rng.Float64() < beta {
				// Rewire to a uniformly random non-self target.
				for {
					w := rng.Intn(n)
					if w != u {
						v = w
						break
					}
				}
			}
			b.AddUndirected(VertexID(u), VertexID(v))
		}
	}
	g := b.Build()
	g.SetName("watts-strogatz")
	return g
}

// BarabasiAlbert generates a scale-free graph by preferential attachment:
// each new vertex attaches m undirected edges to existing vertices with
// probability proportional to their degree. Produces power-law degrees and a
// short effective diameter — the "supernode" structure that drives the
// near-exponential message ramp-up the paper observes for BC traversals.
func BarabasiAlbert(n, m int, seed int64) *Graph {
	if n <= m {
		panic("graph: BarabasiAlbert requires n > m")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	// Repeated-endpoints list: picking a uniform element is equivalent to
	// degree-proportional sampling.
	targets := make([]VertexID, 0, 2*n*m)
	// Seed clique of m+1 vertices.
	for u := 0; u <= m; u++ {
		for v := 0; v < u; v++ {
			b.AddUndirected(VertexID(u), VertexID(v))
			targets = append(targets, VertexID(u), VertexID(v))
		}
	}
	chosen := make(map[VertexID]bool, m)
	for u := m + 1; u < n; u++ {
		clear(chosen)
		for len(chosen) < m {
			v := targets[rng.Intn(len(targets))]
			if v != VertexID(u) {
				chosen[v] = true
			}
		}
		for v := range chosen {
			b.AddUndirected(VertexID(u), v)
			targets = append(targets, VertexID(u), v)
		}
	}
	g := b.Build()
	g.SetName("barabasi-albert")
	return g
}

// RMAT generates a Kronecker-style power-law graph with 2^scale vertices and
// approximately edgeFactor * 2^scale undirected edges. The quadrant
// probabilities (a, b, c, d) must sum to 1; skewed values (e.g. the Graph500
// defaults 0.57/0.19/0.19/0.05) yield heavy-tailed degree distributions
// resembling web and social graphs.
func RMAT(scale uint, edgeFactor int, a, b, c, d float64, seed int64) *Graph {
	if sum := a + b + c + d; sum < 0.999 || sum > 1.001 {
		panic("graph: RMAT quadrant probabilities must sum to 1")
	}
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < int(scale); bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		bld.AddUndirected(VertexID(u), VertexID(v))
	}
	g := bld.Build()
	g.SetName("rmat")
	return g
}

// Community generates a power-law graph with planted community structure:
// vertices are split into contiguous communities; each new vertex attaches m
// undirected edges by preferential attachment, choosing targets inside its
// own community with probability pIntra and globally otherwise. Web graphs
// combine exactly these two traits — heavy-tailed degrees (page hubs) and
// strong locality (host/site communities) — which is what makes them respond
// to intelligent partitioning.
func Community(n, communities, m int, pIntra float64, seed int64) *Graph {
	if communities < 1 || n < communities*(m+1) {
		panic("graph: Community requires communities >= 1 and n >= communities*(m+1)")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	perCommunity := n / communities
	commOf := func(v int) int {
		c := v / perCommunity
		if c >= communities {
			c = communities - 1
		}
		return c
	}
	// Degree-proportional sampling via repeated-endpoint lists.
	local := make([][]VertexID, communities)
	var global []VertexID
	addEdge := func(u, v VertexID) {
		b.AddUndirected(u, v)
		local[commOf(int(u))] = append(local[commOf(int(u))], u)
		local[commOf(int(v))] = append(local[commOf(int(v))], v)
		global = append(global, u, v)
	}
	for v := 0; v < n; v++ {
		c := commOf(v)
		// Seed each community with a link to its first member.
		if len(local[c]) == 0 {
			if v == 0 {
				continue
			}
			// First member of a new community: link to the global structure
			// so the graph stays connected.
			if len(global) == 0 {
				addEdge(VertexID(v), VertexID(rng.Intn(v)))
			} else {
				addEdge(VertexID(v), global[rng.Intn(len(global))])
			}
			continue
		}
		chosen := make(map[VertexID]bool, m)
		for attempts := 0; len(chosen) < m && attempts < 20*m; attempts++ {
			var t VertexID
			if rng.Float64() < pIntra || len(global) == 0 {
				t = local[c][rng.Intn(len(local[c]))]
			} else {
				t = global[rng.Intn(len(global))]
			}
			if t != VertexID(v) && !chosen[t] {
				chosen[t] = true
				addEdge(VertexID(v), t)
			}
		}
	}
	g := b.Build()
	g.SetName("community")
	return g
}

// CitationBand models citation networks such as cit-Patents: vertex IDs are
// chronological, and each new vertex cites m earlier vertices drawn mostly
// from a recent window of size `window`, with probability pFar of citing an
// arbitrary older vertex. The result is a temporally banded graph: BFS
// frontiers advance as contiguous bands (≈`window` wide per superstep), the
// property that concentrates BSP traversal activity into few partitions
// under locality-preserving partitioning (paper §VII, CP).
func CitationBand(n, m, window int, pFar float64, seed int64) *Graph {
	if window < 1 || m < 1 {
		panic("graph: CitationBand requires m >= 1 and window >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	chosen := make(map[int]bool, m)
	for v := 1; v < n; v++ {
		cites := m
		if cites > v {
			cites = v
		}
		clear(chosen)
		for attempts := 0; len(chosen) < cites && attempts < 20*m; attempts++ {
			var t int
			if rng.Float64() < pFar {
				t = rng.Intn(v)
			} else {
				lo := v - window
				if lo < 0 {
					lo = 0
				}
				t = lo + rng.Intn(v-lo)
			}
			if !chosen[t] {
				chosen[t] = true
				b.AddUndirected(VertexID(v), VertexID(t))
			}
		}
	}
	g := b.Build()
	g.SetName("citation-band")
	return g
}

// Ring generates a cycle of n vertices (each vertex has degree 2). Useful in
// tests as the extreme high-diameter case.
func Ring(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		b.AddUndirected(VertexID(u), VertexID((u+1)%n))
	}
	g := b.Build()
	g.SetName("ring")
	return g
}

// Grid generates an rows x cols 2D mesh with 4-neighbor connectivity.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) VertexID { return VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddUndirected(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddUndirected(id(r, c), id(r+1, c))
			}
		}
	}
	g := b.Build()
	g.SetName("grid")
	return g
}

// Star generates a star: vertex 0 connected to all others.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddUndirected(0, VertexID(v))
	}
	g := b.Build()
	g.SetName("star")
	return g
}

// Complete generates the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddUndirected(VertexID(u), VertexID(v))
		}
	}
	g := b.Build()
	g.SetName("complete")
	return g
}

// BinaryTree generates a complete binary tree with n vertices; vertex 0 is
// the root and vertex i has parent (i-1)/2.
func BinaryTree(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddUndirected(VertexID(v), VertexID((v-1)/2))
	}
	g := b.Build()
	g.SetName("binary-tree")
	return g
}

// Path generates a path graph of n vertices.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u+1 < n; u++ {
		b.AddUndirected(VertexID(u), VertexID(u+1))
	}
	g := b.Build()
	g.SetName("path")
	return g
}
