package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBFSPath(t *testing.T) {
	g := Path(5)
	dist := BFS(g, 0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddUndirected(0, 1)
	b.AddUndirected(2, 3)
	g := b.Build()
	dist := BFS(g, 0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Errorf("unreachable vertices should be -1, got %v", dist)
	}
}

func TestBFSRing(t *testing.T) {
	g := Ring(8)
	dist := BFS(g, 0)
	want := []int32{0, 1, 2, 3, 4, 3, 2, 1}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddUndirected(0, 1)
	b.AddUndirected(1, 2)
	b.AddUndirected(3, 4)
	g := b.Build()
	c := Components(g)
	if c.Count != 3 {
		t.Fatalf("components = %d, want 3", c.Count)
	}
	if c.LargestSize != 3 {
		t.Errorf("largest = %d, want 3", c.LargestSize)
	}
	if c.Labels[0] != c.Labels[2] || c.Labels[3] != c.Labels[4] || c.Labels[0] == c.Labels[3] {
		t.Errorf("labels wrong: %v", c.Labels)
	}
}

func TestLargestComponentSubgraph(t *testing.T) {
	b := NewBuilder(7)
	b.AddUndirected(0, 1)
	b.AddUndirected(1, 2)
	b.AddUndirected(2, 3) // component of size 4
	b.AddUndirected(5, 6) // component of size 2
	g := b.Build()
	sub, mapping := LargestComponentSubgraph(g)
	if sub.NumVertices() != 4 {
		t.Fatalf("subgraph vertices = %d, want 4", sub.NumVertices())
	}
	if len(mapping) != 4 {
		t.Fatalf("mapping len = %d", len(mapping))
	}
	if c := Components(sub); c.Count != 1 {
		t.Error("subgraph not connected")
	}
	// Edge (1,2) must survive under the mapping.
	found := false
	sub.ForEachEdge(func(u, v VertexID) {
		if mapping[u] == 1 && mapping[v] == 2 {
			found = true
		}
	})
	if !found {
		t.Error("edge (1,2) lost in extraction")
	}
}

func TestEffectiveDiameterRing(t *testing.T) {
	// On a ring of 20, pairwise distances are 1..10; the 90th percentile is 9.
	eff, avg := effectiveDiameter(Ring(20), 20, 1)
	if eff < 8 || eff > 10 {
		t.Errorf("ring effective diameter = %.2f, want ~9", eff)
	}
	// Mean distance on an even ring of n=20: sum(1..9)*2+10 over 19 pairs = 5.26.
	if math.Abs(avg-5.26) > 0.1 {
		t.Errorf("ring avg path = %.2f, want ~5.26", avg)
	}
}

func TestEffectiveDiameterComplete(t *testing.T) {
	eff, avg := effectiveDiameter(Complete(10), 10, 1)
	if eff > 1 || avg != 1 {
		t.Errorf("complete graph eff=%v avg=%v, want <=1 and 1", eff, avg)
	}
}

func TestComputeStatsStar(t *testing.T) {
	st := ComputeStats(Star(11), 11, 1)
	if st.Vertices != 11 || st.Edges != 10 {
		t.Fatalf("V=%d E=%d", st.Vertices, st.Edges)
	}
	if st.Components != 1 {
		t.Errorf("components = %d", st.Components)
	}
	if st.MaxDegree != 10 {
		t.Errorf("max degree = %d", st.MaxDegree)
	}
	// Leaf-leaf distance is 2; 90% of pairs are leaf-leaf so eff diam ~2.
	if st.EffectiveDiameter < 1 || st.EffectiveDiameter > 2 {
		t.Errorf("eff diameter = %.2f, want in [1,2]", st.EffectiveDiameter)
	}
}

func TestClusteringComplete(t *testing.T) {
	// Every vertex of K5 has all neighbors interconnected: coefficient 1.
	if c := SampledClustering(Complete(5), 100, 1); math.Abs(c-1) > 1e-9 {
		t.Errorf("K5 clustering = %v, want 1", c)
	}
	// A star has no triangles: coefficient 0.
	if c := SampledClustering(Star(10), 100, 1); c != 0 {
		t.Errorf("star clustering = %v, want 0", c)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram(Star(5))
	if h[4] != 1 || h[1] != 4 {
		t.Errorf("histogram = %v", h)
	}
}

func TestTopDegreeVertices(t *testing.T) {
	top := TopDegreeVertices(Star(6), 2)
	if len(top) != 2 || top[0] != 0 {
		t.Errorf("top = %v, want center first", top)
	}
	all := TopDegreeVertices(Star(3), 10)
	if len(all) != 3 {
		t.Errorf("clamped top length = %d, want 3", len(all))
	}
}

func TestPowerLawExponentBA(t *testing.T) {
	g := BarabasiAlbert(3000, 4, 77)
	alpha := DegreePowerLawExponent(g, 4)
	// BA graphs have alpha ~ 3 in theory; accept the usual finite-size band.
	if alpha < 1.8 || alpha > 4.5 {
		t.Errorf("BA power-law exponent = %.2f, outside [1.8, 4.5]", alpha)
	}
}

// Property: BFS distances obey the triangle-ish frontier invariant — every
// edge (u,v) has |dist(u)-dist(v)| <= 1 when both are reachable.
func TestBFSFrontierProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := ErdosRenyi(60, 120, seed)
		dist := BFS(g, 0)
		ok := true
		g.ForEachEdge(func(u, v VertexID) {
			du, dv := dist[u], dist[v]
			if du >= 0 && dv >= 0 && (du-dv > 1 || dv-du > 1) {
				ok = false
			}
			// A reachable vertex adjacent to an unreachable one is impossible
			// in an undirected graph.
			if du >= 0 && dv < 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
