package graph

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.Add(0, 1)
	b.Add(0, 2)
	b.Add(1, 2)
	b.Add(3, 0)
	g := b.Build()
	if got := g.NumVertices(); got != 4 {
		t.Fatalf("NumVertices = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Fatalf("NumEdges = %d, want 4", got)
	}
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.OutDegree(2); got != 0 {
		t.Errorf("OutDegree(2) = %d, want 0", got)
	}
	if !g.HasEdge(3, 0) || g.HasEdge(0, 3) {
		t.Errorf("HasEdge wrong: want 3->0 only")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(3)
	for i := 0; i < 5; i++ {
		b.Add(0, 1)
	}
	b.Add(1, 2)
	g := b.Build()
	if got := g.NumEdges(); got != 2 {
		t.Fatalf("NumEdges = %d, want 2 after dedup", got)
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).Add(0, 5)
}

func TestAddUndirected(t *testing.T) {
	b := NewBuilder(3)
	b.AddUndirected(0, 1)
	b.AddUndirected(2, 2) // self loop stored once
	g := b.Build()
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected edge missing a direction")
	}
	if got := g.OutDegree(2); got != 1 {
		t.Errorf("self loop degree = %d, want 1", got)
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.Add(0, 4)
	b.Add(0, 1)
	b.Add(0, 3)
	g := b.Build()
	nbrs := g.Neighbors(0)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("neighbors not sorted: %v", nbrs)
		}
	}
}

func TestTranspose(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 1)
	b.Add(0, 2)
	b.Add(1, 2)
	g := b.Build()
	tr := g.Transpose()
	if !tr.HasEdge(1, 0) || !tr.HasEdge(2, 0) || !tr.HasEdge(2, 1) {
		t.Error("transpose missing edges")
	}
	if tr.NumEdges() != g.NumEdges() {
		t.Errorf("transpose edge count %d != %d", tr.NumEdges(), g.NumEdges())
	}
	// Transposing twice recovers the original edge set.
	trtr := tr.Transpose()
	g.ForEachEdge(func(u, v VertexID) {
		if !trtr.HasEdge(u, v) {
			t.Errorf("double transpose lost edge (%d,%d)", u, v)
		}
	})
}

func TestSymmetrize(t *testing.T) {
	b := NewBuilder(4)
	b.Add(0, 1)
	b.Add(2, 2) // self loop should be dropped
	b.Add(3, 1)
	g := b.Build().Symmetrize()
	if !g.HasEdge(1, 0) || !g.HasEdge(1, 3) {
		t.Error("symmetrize missing reverse edges")
	}
	if g.HasEdge(2, 2) {
		t.Error("symmetrize kept self loop")
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
}

func TestFromAdjacency(t *testing.T) {
	g := FromAdjacency([][]VertexID{{1, 2}, {0}, {}})
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestForEachEdgeCount(t *testing.T) {
	g := Ring(10)
	count := 0
	g.ForEachEdge(func(u, v VertexID) { count++ })
	if count != g.NumEdges() {
		t.Errorf("ForEachEdge visited %d, want %d", count, g.NumEdges())
	}
}

// Property: for any set of edges the built graph is valid, deduplicated and
// sorted, and HasEdge agrees with the input set.
func TestBuildProperties(t *testing.T) {
	f := func(pairs []uint16) bool {
		const n = 64
		b := NewBuilder(n)
		want := make(map[[2]VertexID]bool)
		for _, p := range pairs {
			u := VertexID(p>>8) % n
			v := VertexID(p&0xff) % n
			b.Add(u, v)
			want[[2]VertexID{u, v}] = true
		}
		g := b.Build()
		if err := g.Validate(); err != nil {
			return false
		}
		if g.NumEdges() != len(want) {
			return false
		}
		for e := range want {
			if !g.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transpose preserves edge count and reverses every edge.
func TestTransposeProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		const n = 32
		b := NewBuilder(n)
		for _, p := range pairs {
			b.Add(VertexID(p>>8)%n, VertexID(p&0xff)%n)
		}
		g := b.Build()
		tr := g.Transpose()
		if tr.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.ForEachEdge(func(u, v VertexID) {
			if !tr.HasEdge(v, u) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxAndAvgDegree(t *testing.T) {
	g := Star(5) // center has degree 4, leaves degree 1
	if got := g.MaxDegree(); got != 4 {
		t.Errorf("MaxDegree = %d, want 4", got)
	}
	want := float64(g.NumEdges()) / 5
	if got := g.AvgDegree(); got != want {
		t.Errorf("AvgDegree = %v, want %v", got, want)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph not empty")
	}
	if g.AvgDegree() != 0 {
		t.Error("AvgDegree of empty graph should be 0")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestWeightedGraph(t *testing.T) {
	g := Ring(6)
	if _, err := NewWeighted(g, make([]float32, 3)); err == nil {
		t.Error("expected length-mismatch error")
	}
	u := UniformWeights(g)
	if u.Weight(0, 1) != 1 || u.Weight(0, 3) != -1 {
		t.Errorf("uniform weights wrong: %v %v", u.Weight(0, 1), u.Weight(0, 3))
	}
	if len(u.EdgeWeights(0)) != 2 {
		t.Errorf("edge weights len = %d", len(u.EdgeWeights(0)))
	}
}

func TestRandomWeightsSymmetric(t *testing.T) {
	g := ErdosRenyi(80, 200, 5)
	w := RandomWeights(g, 1, 10, 3)
	g.ForEachEdge(func(u, v VertexID) {
		wf, wb := w.Weight(u, v), w.Weight(v, u)
		if wf != wb {
			t.Fatalf("asymmetric weight (%d,%d): %v vs %v", u, v, wf, wb)
		}
		if wf < 1 || wf >= 10 {
			t.Fatalf("weight %v out of range", wf)
		}
	})
	// Deterministic.
	w2 := RandomWeights(g, 1, 10, 3)
	if w.Weight(0, g.Neighbors(0)[0]) != w2.Weight(0, g.Neighbors(0)[0]) {
		t.Error("random weights not deterministic")
	}
}

func TestDijkstraReference(t *testing.T) {
	// Weighted path 0 -1.0- 1 -2.0- 2: dist = [0, 1, 3].
	b := NewBuilder(3)
	b.AddUndirected(0, 1)
	b.AddUndirected(1, 2)
	g := b.Build()
	// adjacency: 0:[1], 1:[0,2], 2:[1]
	w, err := NewWeighted(g, []float32{1, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	dist := w.DijkstraReference(0)
	if dist[0] != 0 || dist[1] != 1 || dist[2] != 3 {
		t.Errorf("dist = %v", dist)
	}
}

func TestShuffleIDsPreservesStructure(t *testing.T) {
	g := ErdosRenyi(100, 250, 7)
	s := g.ShuffleIDs(42)
	if s.NumVertices() != g.NumVertices() || s.NumEdges() != g.NumEdges() {
		t.Fatal("shuffle changed size")
	}
	// Degree sequences match.
	degs := func(g *Graph) []int {
		d := make([]int, g.NumVertices())
		for v := range d {
			d[v] = g.OutDegree(VertexID(v))
		}
		sort.Ints(d)
		return d
	}
	a, b := degs(g), degs(s)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("degree sequence changed")
		}
	}
	// Component structure matches.
	if Components(g).Count != Components(s).Count {
		t.Error("component count changed")
	}
	// Deterministic; different seeds differ.
	s2 := g.ShuffleIDs(42)
	same := true
	s.ForEachEdge(func(u, v VertexID) {
		if !s2.HasEdge(u, v) {
			same = false
		}
	})
	if !same {
		t.Error("same-seed shuffle not deterministic")
	}
	s3 := g.ShuffleIDs(43)
	diff := false
	s.ForEachEdge(func(u, v VertexID) {
		if !s3.HasEdge(u, v) {
			diff = true
		}
	})
	if !diff {
		t.Error("different-seed shuffles identical (vanishingly unlikely)")
	}
}
