package graph

import (
	"testing"
)

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumVertices() != 100 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 600 {
		t.Fatalf("directed edges = %d, want 600", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 100, 7)
	b := ErdosRenyi(50, 100, 7)
	same := true
	a.ForEachEdge(func(u, v VertexID) {
		if !b.HasEdge(u, v) {
			same = false
		}
	})
	if !same || a.NumEdges() != b.NumEdges() {
		t.Error("same seed produced different graphs")
	}
	c := ErdosRenyi(50, 100, 8)
	diff := false
	a.ForEachEdge(func(u, v VertexID) {
		if !c.HasEdge(u, v) {
			diff = true
		}
	})
	if !diff {
		t.Error("different seeds produced identical graphs (vanishingly unlikely)")
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 4, 0.1, 3)
	if g.NumVertices() != 200 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Each vertex initiates k/2 = 2 edges; after symmetrization and dedup the
	// directed edge count is close to n*k (rewiring can collide).
	if g.NumEdges() < 700 || g.NumEdges() > 800 {
		t.Errorf("directed edges = %d, want ~800", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWattsStrogatzOddKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd k")
		}
	}()
	WattsStrogatz(10, 3, 0.1, 1)
}

func TestWattsStrogatzZeroBetaIsLattice(t *testing.T) {
	g := WattsStrogatz(20, 4, 0, 1)
	for v := 0; v < 20; v++ {
		if d := g.OutDegree(VertexID(v)); d != 4 {
			t.Fatalf("vertex %d degree = %d, want 4 in pure lattice", v, d)
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, 9)
	if g.NumVertices() != 500 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Preferential attachment must produce hubs: max degree far above mean.
	if g.MaxDegree() < 3*int(g.AvgDegree()) {
		t.Errorf("max degree %d not hub-like vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
	// Connected by construction.
	if c := Components(g); c.Count != 1 {
		t.Errorf("BA graph has %d components, want 1", c.Count)
	}
}

func TestBarabasiAlbertRequiresNGreaterThanM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= m")
		}
	}()
	BarabasiAlbert(3, 3, 1)
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8, 0.57, 0.19, 0.19, 0.05, 5)
	if g.NumVertices() != 1024 {
		t.Fatalf("vertices = %d, want 1024", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Skewed quadrants must produce heavy-tailed degrees.
	if g.MaxDegree() < 4*int(g.AvgDegree()) {
		t.Errorf("max degree %d vs avg %.1f: not heavy-tailed", g.MaxDegree(), g.AvgDegree())
	}
}

func TestRMATBadProbabilitiesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for probabilities not summing to 1")
		}
	}()
	RMAT(4, 2, 0.5, 0.1, 0.1, 0.1, 1)
}

func TestCommunity(t *testing.T) {
	g := Community(1000, 10, 3, 0.9, 4)
	if g.NumVertices() != 1000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Strong intra-community preference: most edges stay within the 100-wide
	// community blocks.
	intra, total := 0, 0
	g.ForEachEdge(func(u, v VertexID) {
		total++
		if int(u)/100 == int(v)/100 {
			intra++
		}
	})
	if frac := float64(intra) / float64(total); frac < 0.7 {
		t.Errorf("intra-community fraction = %.2f, want > 0.7", frac)
	}
	// Preferential attachment inside communities still produces local hubs.
	if g.MaxDegree() < 2*int(g.AvgDegree()) {
		t.Errorf("max degree %d vs avg %.1f: no hubs", g.MaxDegree(), g.AvgDegree())
	}
}

func TestCommunityPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n too small")
		}
	}()
	Community(10, 5, 3, 0.9, 1)
}

func TestCitationBand(t *testing.T) {
	g := CitationBand(2000, 3, 100, 0.02, 9)
	if g.NumVertices() != 2000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Bandedness: the vast majority of edges span < window.
	short, total := 0, 0
	g.ForEachEdge(func(u, v VertexID) {
		total++
		d := int(u) - int(v)
		if d < 0 {
			d = -d
		}
		if d <= 100 {
			short++
		}
	})
	if frac := float64(short) / float64(total); frac < 0.9 {
		t.Errorf("banded fraction = %.2f, want > 0.9", frac)
	}
	// Chronology: every vertex's citations point to earlier vertices only,
	// so the undirected graph is connected through time.
	if c := Components(g); c.Count != 1 {
		t.Errorf("citation band has %d components", c.Count)
	}
}

func TestCitationBandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero window")
		}
	}()
	CitationBand(10, 2, 0, 0, 1)
}

func TestRingGridStar(t *testing.T) {
	ring := Ring(6)
	if ring.NumEdges() != 12 {
		t.Errorf("ring edges = %d, want 12", ring.NumEdges())
	}
	for v := 0; v < 6; v++ {
		if ring.OutDegree(VertexID(v)) != 2 {
			t.Errorf("ring vertex %d degree != 2", v)
		}
	}
	grid := Grid(3, 4)
	if grid.NumVertices() != 12 {
		t.Errorf("grid vertices = %d", grid.NumVertices())
	}
	// 3x4 grid: horizontal 3*3=9, vertical 2*4=8 undirected edges.
	if grid.NumEdges() != 2*(9+8) {
		t.Errorf("grid edges = %d, want 34", grid.NumEdges())
	}
	star := Star(10)
	if star.OutDegree(0) != 9 {
		t.Errorf("star center degree = %d", star.OutDegree(0))
	}
}

func TestCompleteAndTreeAndPath(t *testing.T) {
	k := Complete(5)
	if k.NumEdges() != 20 {
		t.Errorf("K5 directed edges = %d, want 20", k.NumEdges())
	}
	tr := BinaryTree(7)
	if tr.NumEdges() != 12 {
		t.Errorf("tree edges = %d, want 12", tr.NumEdges())
	}
	if c := Components(tr); c.Count != 1 {
		t.Error("tree not connected")
	}
	p := Path(4)
	if p.NumEdges() != 6 {
		t.Errorf("path edges = %d, want 6", p.NumEdges())
	}
}

func TestDatasetsSmallWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	for _, g := range AllDatasets() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if c := Components(g); c.Count != 1 {
				t.Fatalf("dataset %s has %d components, want connected", g.Name(), c.Count)
			}
			st := ComputeStats(g, 8, 99)
			if st.EffectiveDiameter < 2.5 || st.EffectiveDiameter > 25 {
				t.Errorf("%s effective diameter %.1f outside small-world band", g.Name(), st.EffectiveDiameter)
			}
			t.Logf("%s: V=%d E=%d effDiam=%.1f avgDeg=%.1f maxDeg=%d",
				st.Name, st.Vertices, st.Edges, st.EffectiveDiameter, st.AvgDegree, st.MaxDegree)
		})
	}
}

func TestDatasetLookup(t *testing.T) {
	if Dataset("nope") != nil {
		t.Error("unknown dataset should be nil")
	}
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	if Dataset("wg") != DatasetWG() {
		t.Error("Dataset(wg) should return cached WG'")
	}
}
