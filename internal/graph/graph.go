// Package graph provides the in-memory graph representation used by the BSP
// engine, along with loaders, synthetic generators, and structural metrics.
//
// Graphs are stored in compressed sparse row (CSR) form: a single offsets
// array and a single adjacency array. This matches the access pattern of
// vertex-centric processing (iterate a vertex's out-edges) and keeps memory
// within a small constant factor of the edge count.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// VertexID identifies a vertex. IDs are dense: a graph with N vertices uses
// IDs 0..N-1.
type VertexID uint32

// Graph is an immutable directed graph in CSR form. Undirected graphs are
// represented by storing each edge in both directions (see Builder.AddUndirected
// and Symmetrize).
type Graph struct {
	name    string
	offsets []int64    // len = NumVertices()+1
	adj     []VertexID // len = NumEdges()
}

// Name returns the human-readable dataset name ("" if unset).
func (g *Graph) Name() string { return g.name }

// SetName sets the dataset name used in reports.
func (g *Graph) SetName(name string) { g.name = name }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of directed edges (an undirected edge stored in
// both directions counts twice).
func (g *Graph) NumEdges() int { return len(g.adj) }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the out-neighbors of v. The returned slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// ForEachEdge calls fn for every directed edge (u, v). Iteration is in
// vertex order, then adjacency order.
func (g *Graph) ForEachEdge(fn func(u, v VertexID)) {
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(VertexID(u)) {
			fn(VertexID(u), v)
		}
	}
}

// HasEdge reports whether the directed edge (u, v) exists. The adjacency list
// of u must be sorted, which holds for graphs produced by Builder.
func (g *Graph) HasEdge(u, v VertexID) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// MaxDegree returns the largest out-degree in the graph (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumVertices())
}

// Transpose returns the graph with every edge reversed.
func (g *Graph) Transpose() *Graph {
	n := g.NumVertices()
	inDeg := make([]int64, n+1)
	for _, v := range g.adj {
		inDeg[v+1]++
	}
	offsets := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		offsets[i] = offsets[i-1] + inDeg[i]
	}
	adj := make([]VertexID, len(g.adj))
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	g.ForEachEdge(func(u, v VertexID) {
		adj[cursor[v]] = u
		cursor[v]++
	})
	t := &Graph{name: g.name + "-transpose", offsets: offsets, adj: adj}
	t.sortAdjacency()
	return t
}

// Symmetrize returns the undirected version of the graph: for every edge
// (u,v) both (u,v) and (v,u) are present exactly once, and self-loops are
// dropped. This mirrors the paper's treatment of the SNAP datasets as
// unweighted, undirected graphs for BC.
func (g *Graph) Symmetrize() *Graph {
	b := NewBuilder(g.NumVertices())
	g.ForEachEdge(func(u, v VertexID) {
		if u != v {
			b.AddUndirected(u, v)
		}
	})
	s := b.Build()
	s.name = g.name
	return s
}

// ShuffleIDs returns a copy of the graph with vertex IDs permuted by the
// seeded permutation. Generator IDs often carry spatial locality (e.g. a
// Watts–Strogatz ring is laid out consecutively); real-world dataset IDs do
// not, so dataset analogs are shuffled to avoid giving ID-order-based
// partitioners an unrealistic advantage.
func (g *Graph) ShuffleIDs(seed int64) *Graph {
	n := g.NumVertices()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	b := NewBuilder(n)
	g.ForEachEdge(func(u, v VertexID) {
		b.Add(VertexID(perm[u]), VertexID(perm[v]))
	})
	s := b.Build()
	s.name = g.name
	return s
}

func (g *Graph) sortAdjacency() {
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.adj[g.offsets[v]:g.offsets[v+1]]
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	}
}

// Validate checks structural invariants and returns an error describing the
// first violation found, or nil.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.offsets) == 0 || g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets must start at 0")
	}
	for i := 1; i <= n; i++ {
		if g.offsets[i] < g.offsets[i-1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", i-1)
		}
	}
	if g.offsets[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: final offset %d != adjacency length %d", g.offsets[n], len(g.adj))
	}
	for _, v := range g.adj {
		if int(v) >= n {
			return fmt.Errorf("graph: edge target %d out of range (n=%d)", v, n)
		}
	}
	return nil
}

// Builder accumulates edges and produces a CSR Graph. Duplicate edges are
// merged. The zero value is not usable; call NewBuilder.
type Builder struct {
	n     int
	edges []edge
}

type edge struct{ u, v VertexID }

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// Add records the directed edge (u, v). Panics if either endpoint is out of
// range, since that is always a programming error in a generator or loader.
func (b *Builder) Add(u, v VertexID) {
	if int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", u, v, b.n))
	}
	b.edges = append(b.edges, edge{u, v})
}

// AddUndirected records the edge in both directions.
func (b *Builder) AddUndirected(u, v VertexID) {
	b.Add(u, v)
	if u != v {
		b.Add(v, u)
	}
}

// NumPendingEdges returns the number of directed edges recorded so far,
// before deduplication.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the CSR graph, sorting adjacency lists and dropping
// duplicate edges. The Builder may be reused afterwards (it is reset).
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].u != b.edges[j].u {
			return b.edges[i].u < b.edges[j].u
		}
		return b.edges[i].v < b.edges[j].v
	})
	// Deduplicate in place.
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			dedup = append(dedup, e)
		}
	}
	offsets := make([]int64, b.n+1)
	for _, e := range dedup {
		offsets[e.u+1]++
	}
	for i := 1; i <= b.n; i++ {
		offsets[i] += offsets[i-1]
	}
	adj := make([]VertexID, len(dedup))
	for i, e := range dedup {
		adj[i] = e.v
	}
	g := &Graph{offsets: offsets, adj: adj}
	b.edges = nil
	return g
}

// FromAdjacency builds a graph directly from per-vertex adjacency lists.
// Lists are copied, sorted and deduplicated.
func FromAdjacency(lists [][]VertexID) *Graph {
	b := NewBuilder(len(lists))
	for u, nbrs := range lists {
		for _, v := range nbrs {
			b.Add(VertexID(u), v)
		}
	}
	return b.Build()
}
