package graph

import (
	"fmt"
	"math/rand"
)

// Weighted pairs a graph with per-edge weights aligned to the adjacency
// array, for weighted algorithms (the canonical Pregel example is weighted
// single-source shortest paths).
type Weighted struct {
	*Graph
	weights []float32 // weights[i] belongs to adj[i]
}

// NewWeighted attaches weights to a graph. The slice must have exactly one
// entry per directed edge, in adjacency order.
func NewWeighted(g *Graph, weights []float32) (*Weighted, error) {
	if len(weights) != g.NumEdges() {
		return nil, fmt.Errorf("graph: %d weights for %d edges", len(weights), g.NumEdges())
	}
	return &Weighted{Graph: g, weights: weights}, nil
}

// UniformWeights returns g with every edge weighted 1 (so weighted
// algorithms degrade to their unweighted counterparts).
func UniformWeights(g *Graph) *Weighted {
	w := make([]float32, g.NumEdges())
	for i := range w {
		w[i] = 1
	}
	wg, _ := NewWeighted(g, w)
	return wg
}

// RandomWeights returns g with symmetric random edge weights in [min, max):
// the weight of (u,v) equals the weight of (v,u), as required for undirected
// shortest paths. Deterministic for a fixed seed.
func RandomWeights(g *Graph, min, max float32, seed int64) *Weighted {
	if max < min {
		min, max = max, min
	}
	rng := rand.New(rand.NewSource(seed))
	w := make([]float32, g.NumEdges())
	for u := 0; u < g.NumVertices(); u++ {
		nbrs := g.Neighbors(VertexID(u))
		base := g.offsets[u]
		for i, v := range nbrs {
			if VertexID(u) < v || !g.HasEdge(v, VertexID(u)) {
				w[base+int64(i)] = min + rng.Float32()*(max-min)
			}
		}
	}
	// Mirror weights onto the reverse edges.
	for u := 0; u < g.NumVertices(); u++ {
		nbrs := g.Neighbors(VertexID(u))
		base := g.offsets[u]
		for i, v := range nbrs {
			if VertexID(u) < v {
				continue
			}
			// Find (v,u) and copy its weight.
			rn := g.Neighbors(v)
			rbase := g.offsets[v]
			lo, hi := 0, len(rn)
			for lo < hi {
				mid := (lo + hi) / 2
				if rn[mid] < VertexID(u) {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(rn) && rn[lo] == VertexID(u) {
				w[base+int64(i)] = w[rbase+int64(lo)]
			}
		}
	}
	wg, _ := NewWeighted(g, w)
	return wg
}

// EdgeWeights returns the weights of v's out-edges, aligned with Neighbors.
// The slice aliases internal storage and must not be modified.
func (w *Weighted) EdgeWeights(v VertexID) []float32 {
	return w.weights[w.offsets[v]:w.offsets[v+1]]
}

// Weight returns the weight of edge (u, v), or -1 if absent.
func (w *Weighted) Weight(u, v VertexID) float32 {
	nbrs := w.Neighbors(u)
	base := w.offsets[u]
	for i, x := range nbrs {
		if x == v {
			return w.weights[base+int64(i)]
		}
	}
	return -1
}

// DijkstraReference computes exact weighted shortest-path distances from src
// (sequential; used to validate the BSP program). Unreachable = +Inf.
func (w *Weighted) DijkstraReference(src VertexID) []float64 {
	n := w.NumVertices()
	const inf = 1e308
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	visited := make([]bool, n)
	// O(n^2) scan-based Dijkstra: simple and fine at test scale.
	for iter := 0; iter < n; iter++ {
		best, bestD := -1, inf
		for v := 0; v < n; v++ {
			if !visited[v] && dist[v] < bestD {
				best, bestD = v, dist[v]
			}
		}
		if best < 0 {
			break
		}
		visited[best] = true
		nbrs := w.Neighbors(VertexID(best))
		wts := w.EdgeWeights(VertexID(best))
		for i, u := range nbrs {
			if d := bestD + float64(wts[i]); d < dist[u] {
				dist[u] = d
			}
		}
	}
	return dist
}
