package graph

import (
	"math"
	"math/rand"
	"sort"
)

// This file computes the structural statistics reported in Table 1 of the
// paper (vertex/edge counts, 90% effective diameter) plus supporting
// metrics used to validate that the synthetic analogs are small-world.

// BFS computes unweighted shortest-path distances from src. Unreachable
// vertices have distance -1.
func BFS(g *Graph, src VertexID) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []VertexID{src}
	for len(frontier) > 0 {
		var next []VertexID
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// Stats summarizes a dataset, mirroring the columns of the paper's Table 1.
type Stats struct {
	Name              string
	Vertices          int
	Edges             int // undirected edge count (directed count / 2)
	AvgDegree         float64
	MaxDegree         int
	EffectiveDiameter float64 // 90th-percentile pairwise distance (sampled)
	AvgPathLength     float64 // mean pairwise distance (sampled)
	Clustering        float64 // mean local clustering coefficient (sampled)
	Components        int
	LargestComponent  int
}

// ComputeStats measures g, sampling `samples` BFS sources and clustering
// probes with the given seed. It is deterministic for fixed inputs.
func ComputeStats(g *Graph, samples int, seed int64) Stats {
	s := Stats{
		Name:      g.Name(),
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges() / 2,
		AvgDegree: g.AvgDegree(),
		MaxDegree: g.MaxDegree(),
	}
	comp := Components(g)
	s.Components = comp.Count
	s.LargestComponent = comp.LargestSize
	s.EffectiveDiameter, s.AvgPathLength = effectiveDiameter(g, samples, seed)
	s.Clustering = SampledClustering(g, samples*4, seed+1)
	return s
}

// effectiveDiameter estimates the 90% effective diameter: the (interpolated)
// distance d such that 90% of connected vertex pairs are within d hops. This
// is the statistic SNAP reports and the paper's Table 1 lists.
func effectiveDiameter(g *Graph, samples int, seed int64) (eff90, avg float64) {
	n := g.NumVertices()
	if n == 0 {
		return 0, 0
	}
	if samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(seed))
	// Histogram of distances over sampled single-source BFS runs.
	var hist []int64
	var total, weighted int64
	perm := rng.Perm(n)
	for i := 0; i < samples; i++ {
		dist := BFS(g, VertexID(perm[i]))
		for _, d := range dist {
			if d <= 0 {
				continue // unreachable or self
			}
			for int(d) >= len(hist) {
				hist = append(hist, 0)
			}
			hist[d]++
			total++
			weighted += int64(d)
		}
	}
	if total == 0 {
		return 0, 0
	}
	avg = float64(weighted) / float64(total)
	target := 0.9 * float64(total)
	var cum int64
	for d := 1; d < len(hist); d++ {
		prev := cum
		cum += hist[d]
		if float64(cum) >= target {
			// Linear interpolation within this distance bucket, as SNAP does.
			frac := (target - float64(prev)) / float64(hist[d])
			return float64(d-1) + frac, avg
		}
	}
	return float64(len(hist) - 1), avg
}

// SampledClustering estimates the mean local clustering coefficient over up
// to `samples` random vertices with degree >= 2.
func SampledClustering(g *Graph, samples int, seed int64) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	sum, count := 0.0, 0
	for i := 0; i < samples*4 && count < samples; i++ {
		v := VertexID(rng.Intn(n))
		nbrs := g.Neighbors(v)
		d := len(nbrs)
		if d < 2 {
			continue
		}
		links := 0
		for a := 0; a < d; a++ {
			for b := a + 1; b < d; b++ {
				if g.HasEdge(nbrs[a], nbrs[b]) {
					links++
				}
			}
		}
		sum += 2 * float64(links) / float64(d*(d-1))
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// ComponentInfo describes the weakly connected components of a graph.
type ComponentInfo struct {
	Count       int
	LargestSize int
	Labels      []int32 // component label per vertex
}

// Components computes connected components treating edges as undirected
// (the engine's graphs are symmetrized already, so this is exact for them).
func Components(g *Graph) ComponentInfo {
	n := g.NumVertices()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	count, largest := 0, 0
	var stack []VertexID
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		size := 0
		stack = append(stack[:0], VertexID(s))
		labels[s] = int32(count)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, v := range g.Neighbors(u) {
				if labels[v] < 0 {
					labels[v] = int32(count)
					stack = append(stack, v)
				}
			}
		}
		if size > largest {
			largest = size
		}
		count++
	}
	return ComponentInfo{Count: count, LargestSize: largest, Labels: labels}
}

// LargestComponentSubgraph extracts the largest weakly connected component
// and returns it with densely renumbered vertex IDs, plus the mapping from
// new IDs to original IDs. Experiments run on the giant component so that
// every BC root reaches the whole graph, as in the SNAP datasets.
func LargestComponentSubgraph(g *Graph) (*Graph, []VertexID) {
	info := Components(g)
	// Find the label of the largest component.
	sizes := make(map[int32]int)
	for _, l := range info.Labels {
		sizes[l]++
	}
	var best int32
	bestSize := -1
	for l, sz := range sizes {
		if sz > bestSize || (sz == bestSize && l < best) {
			best, bestSize = l, sz
		}
	}
	oldToNew := make(map[VertexID]VertexID, bestSize)
	newToOld := make([]VertexID, 0, bestSize)
	for v := 0; v < g.NumVertices(); v++ {
		if info.Labels[v] == best {
			oldToNew[VertexID(v)] = VertexID(len(newToOld))
			newToOld = append(newToOld, VertexID(v))
		}
	}
	b := NewBuilder(bestSize)
	g.ForEachEdge(func(u, v VertexID) {
		nu, ok1 := oldToNew[u]
		nv, ok2 := oldToNew[v]
		if ok1 && ok2 {
			b.Add(nu, nv)
		}
	})
	sub := b.Build()
	sub.SetName(g.Name())
	return sub, newToOld
}

// DegreeHistogram returns counts of vertices per out-degree.
func DegreeHistogram(g *Graph) map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.NumVertices(); v++ {
		h[g.OutDegree(VertexID(v))]++
	}
	return h
}

// DegreePowerLawExponent fits a power-law exponent to the degree
// distribution via the discrete maximum-likelihood estimator over degrees
// >= dmin. Small-world social/web graphs typically fit alpha in [1.5, 3.5].
func DegreePowerLawExponent(g *Graph, dmin int) float64 {
	var sum float64
	var count int
	for v := 0; v < g.NumVertices(); v++ {
		d := g.OutDegree(VertexID(v))
		if d >= dmin {
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
			count++
		}
	}
	if count == 0 || sum == 0 {
		return 0
	}
	return 1 + float64(count)/sum
}

// TopDegreeVertices returns the k highest-degree vertices in descending
// degree order (ties by ascending ID). These are the "supernodes" that cause
// the message ramp-up in traversal algorithms.
func TopDegreeVertices(g *Graph, k int) []VertexID {
	n := g.NumVertices()
	ids := make([]VertexID, n)
	for i := range ids {
		ids[i] = VertexID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.OutDegree(ids[i]), g.OutDegree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	if k > n {
		k = n
	}
	return ids[:k]
}
