package bench

import (
	"testing"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/partition"
)

// Programming-model benchmarks: the same traversal under the vertex-centric
// and subgraph-centric execution paths, on a high-diameter graph with
// multilevel (locality-preserving) partitioning — the regime where
// partition-local convergence pays. Tracked in the perf-trajectory artifact
// so the subgraph path's superstep and allocation behavior is gated like
// every other engine surface.

// benchModelGraph is shared by the model/* benches: a 64x64 grid has
// diameter 126 so vertex-centric traversals need >120 supersteps while the
// subgraph path needs roughly the partition-hop diameter.
func benchModelGraph() *graph.Graph { return graph.Grid(64, 64) }

func runModelBench[M any](b *testing.B, mk func(g *graph.Graph) core.JobSpec[M]) {
	g := benchModelGraph()
	asn := partition.NewMultilevel().Partition(g, 4)
	b.ReportAllocs()
	b.ResetTimer()
	var steps int
	for i := 0; i < b.N; i++ {
		spec := mk(g)
		spec.Assignment = asn
		res, err := core.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Supersteps
	}
	b.ReportMetric(float64(steps), "supersteps/op")
}

func benchSSSPVertexMetis(b *testing.B) {
	runModelBench(b, func(g *graph.Graph) core.JobSpec[uint32] {
		return algorithms.SSSP(g, 4, 0)
	})
}

func benchSSSPSubgraphMetis(b *testing.B) {
	runModelBench(b, func(g *graph.Graph) core.JobSpec[uint32] {
		return algorithms.SSSPSubgraph(g, 4, 0)
	})
}

func benchWCCVertexMetis(b *testing.B) {
	runModelBench(b, func(g *graph.Graph) core.JobSpec[uint32] {
		return algorithms.WCC(g, 4)
	})
}

func benchWCCSubgraphMetis(b *testing.B) {
	runModelBench(b, func(g *graph.Graph) core.JobSpec[uint32] {
		return algorithms.WCCSubgraph(g, 4)
	})
}
