// Package bench defines the engine's allocation-counting benchmark suite as
// plain functions over *testing.B, shared between the repo's `go test -bench`
// harness and the cmd/bench runner that emits BENCH_PR3.json. Keeping both
// entry points on one set of definitions means CI smoke runs and the
// perf-trajectory artifact can never drift apart.
//
// The suite deliberately uses only the stable engine surface (JobSpec, Run,
// the transports) so the same benchmark code compiles against any revision:
// before/after comparisons measure the engine, not the benchmark.
package bench

import (
	"testing"

	"pregelnet/internal/algorithms"
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/transport"
)

// Def is one named benchmark.
type Def struct {
	Name string
	F    func(b *testing.B)
}

// Result is one benchmark outcome in BENCH_PR3.json.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Defs returns the benchmark suite. Each op is one full job run (or one
// batch round-trip for the transport micro-benchmarks); superstep-normalized
// numbers are derived from the "supersteps/op" extra metric.
func Defs() []Def {
	return []Def{
		{"superstep/pagerank-channel", benchPageRankChannel},
		{"superstep/bc-channel", benchBCChannel},
		{"model/sssp-vertex-metis", benchSSSPVertexMetis},
		{"model/sssp-subgraph-metis", benchSSSPSubgraphMetis},
		{"model/wcc-vertex-metis", benchWCCVertexMetis},
		{"model/wcc-subgraph-metis", benchWCCSubgraphMetis},
		{"e2e/pagerank-tcp", benchPageRankTCP},
		{"e2e/bc-tcp", benchBCTCP},
		{"transport/tcp-batch-roundtrip", benchTCPBatchRoundTrip},
		{"transport/channel-batch-roundtrip", benchChannelBatchRoundTrip},
	}
}

// Run executes every benchmark with testing.Benchmark, taking `samples`
// independent measurements and keeping the fastest (minimum wall time per
// op — the standard estimator for the noise-free cost, since scheduler and
// cache interference only ever add time). Allocation counts are stable
// across samples; ns/op is what the repetition de-noises.
func Run(samples int) []Result {
	if samples < 1 {
		samples = 1
	}
	defs := Defs()
	out := make([]Result, 0, len(defs))
	for _, d := range defs {
		r := testing.Benchmark(d.F)
		for s := 1; s < samples; s++ {
			if c := testing.Benchmark(d.F); c.N > 0 &&
				float64(c.T.Nanoseconds())/float64(c.N) < float64(r.T.Nanoseconds())/float64(r.N) {
				r = c
			}
		}
		res := Result{
			Name:        d.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		// Normalize whole-job benches to per-superstep numbers so the
		// perf trajectory tracks the unit the engine optimizes.
		if steps, ok := r.Extra["supersteps/op"]; ok && steps > 0 {
			res.Metrics["ns/superstep"] = res.NsPerOp / steps
			res.Metrics["bytes/superstep"] = float64(res.BytesPerOp) / steps
			res.Metrics["allocs/superstep"] = float64(res.AllocsPerOp) / steps
		}
		out = append(out, res)
	}
	return out
}

// benchPageRankChannel measures a full PageRank job on SD' over the
// in-process channel transport: the pure engine superstep hot path
// (compute, combine, encode, deliver) without socket costs.
func benchPageRankChannel(b *testing.B) {
	g := graph.DatasetSD()
	b.ReportAllocs()
	b.ResetTimer()
	var steps int
	for i := 0; i < b.N; i++ {
		res, err := core.Run(algorithms.PageRank{Iterations: 10, Damping: 0.85}.Spec(g, 4))
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Supersteps
	}
	b.ReportMetric(float64(steps), "supersteps/op")
}

// benchBCChannel measures a full BC job (8 roots, all at once) on SD' over
// the channel transport: the message-heavy workload with per-root state.
func benchBCChannel(b *testing.B) {
	g := graph.DatasetSD()
	roots := core.FirstNSources(g, 8)
	b.ReportAllocs()
	b.ResetTimer()
	var steps int
	for i := 0; i < b.N; i++ {
		res, err := core.Run(algorithms.BC(g, 4, core.NewAllAtOnce(roots)))
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Supersteps
	}
	b.ReportMetric(float64(steps), "supersteps/op")
}

// benchPageRankTCP measures the end-to-end PageRank job over real loopback
// TCP sockets — the configuration the paper's data plane targets.
func benchPageRankTCP(b *testing.B) {
	g := graph.DatasetSD()
	b.ReportAllocs()
	b.ResetTimer()
	var steps int
	for i := 0; i < b.N; i++ {
		net, err := transport.NewTCPNetwork(4)
		if err != nil {
			b.Fatal(err)
		}
		spec := algorithms.PageRank{Iterations: 10, Damping: 0.85}.Spec(g, 4)
		spec.Network = net
		res, err := core.Run(spec)
		net.Close()
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Supersteps
	}
	b.ReportMetric(float64(steps), "supersteps/op")
}

// benchBCTCP measures the end-to-end BC job over TCP.
func benchBCTCP(b *testing.B) {
	g := graph.DatasetSD()
	roots := core.FirstNSources(g, 8)
	b.ReportAllocs()
	b.ResetTimer()
	var steps int
	for i := 0; i < b.N; i++ {
		net, err := transport.NewTCPNetwork(4)
		if err != nil {
			b.Fatal(err)
		}
		spec := algorithms.BC(g, 4, core.NewAllAtOnce(roots))
		spec.Network = net
		res, err := core.Run(spec)
		net.Close()
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Supersteps
	}
	b.ReportMetric(float64(steps), "supersteps/op")
}

// benchBatchRoundTrip pushes 4 KiB batches through a 2-worker network and
// waits for each on the receive side: framing, syscall, and per-batch
// allocation costs in isolation.
func benchBatchRoundTrip(b *testing.B, network transport.Network, cleanup func()) {
	defer cleanup()
	sender, err := network.Endpoint(0)
	if err != nil {
		b.Fatal(err)
	}
	receiver, err := network.Endpoint(1)
	if err != nil {
		b.Fatal(err)
	}
	const payloadSize = 4 << 10
	recvd := make(chan int64, 256)
	go func() {
		for {
			batch, err := receiver.Recv()
			if err != nil {
				close(recvd)
				return
			}
			size := batch.WireSize()
			transport.PutBatch(batch)
			recvd <- size
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := make([]byte, payloadSize)
		//pregelvet:ignore epochstamp raw wire benchmark, no recovery epochs in play
		err := sender.Send(&transport.Batch{
			From: 0, To: 1, Superstep: int32(i), Count: 64, Seq: int32(i + 1),
			Payload: payload,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := <-recvd; !ok {
			b.Fatal("receiver closed early")
		}
	}
	b.SetBytes(payloadSize)
}

func benchTCPBatchRoundTrip(b *testing.B) {
	net, err := transport.NewTCPNetwork(2)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchRoundTrip(b, net, func() { net.Close() })
}

func benchChannelBatchRoundTrip(b *testing.B) {
	net := transport.NewChannelNetwork(2, 256)
	benchBatchRoundTrip(b, net, func() { net.Close() })
}
