package bench

import "testing"

func baseResults() []Result {
	return []Result{
		{Name: "superstep/pagerank-channel", NsPerOp: 1000, BytesPerOp: 4096, AllocsPerOp: 100},
		{Name: "e2e/bc-tcp", NsPerOp: 5000, BytesPerOp: 1 << 20, AllocsPerOp: 700},
	}
}

func TestCompareCleanRunPasses(t *testing.T) {
	cur := []Result{
		{Name: "superstep/pagerank-channel", NsPerOp: 1050, BytesPerOp: 4300, AllocsPerOp: 100}, // +5% ns, +5% bytes: within budget
		{Name: "e2e/bc-tcp", NsPerOp: 4000, BytesPerOp: 1 << 19, AllocsPerOp: 650},              // improvement
		{Name: "model/sssp-subgraph-metis", NsPerOp: 9999, AllocsPerOp: 9999},                   // new: ignored
	}
	if regs := Compare(baseResults(), cur, 0.10); len(regs) != 0 {
		t.Fatalf("clean run flagged: %v", regs)
	}
}

// TestCompareFlagsInjectedRegression is the CI gate's own self-test: a
// synthetic +50% ns/op and +20% allocs/op regression must be reported.
func TestCompareFlagsInjectedRegression(t *testing.T) {
	cur := []Result{
		{Name: "superstep/pagerank-channel", NsPerOp: 1500, AllocsPerOp: 100}, // +50% ns/op
		{Name: "e2e/bc-tcp", NsPerOp: 5000, AllocsPerOp: 840},                 // +20% allocs/op
	}
	regs := Compare(baseResults(), cur, 0.10)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %v, want 2", len(regs), regs)
	}
	if regs[0].Name != "superstep/pagerank-channel" || regs[0].Metric != "ns/op" {
		t.Errorf("regs[0] = %v, want pagerank ns/op", regs[0])
	}
	if regs[1].Name != "e2e/bc-tcp" || regs[1].Metric != "allocs/op" {
		t.Errorf("regs[1] = %v, want bc allocs/op", regs[1])
	}
	if regs[0].Frac < 0.49 || regs[0].Frac > 0.51 {
		t.Errorf("regs[0].Frac = %v, want ~0.5", regs[0].Frac)
	}
}

// TestCompareFlagsBytesRegression: heap growth alone — ns/op and allocs/op
// flat, bytes/op +25% (a pooled buffer silently falling out of reuse) —
// must trip the gate.
func TestCompareFlagsBytesRegression(t *testing.T) {
	cur := []Result{
		{Name: "superstep/pagerank-channel", NsPerOp: 1000, BytesPerOp: 5120, AllocsPerOp: 100},
		{Name: "e2e/bc-tcp", NsPerOp: 5000, BytesPerOp: 1 << 20, AllocsPerOp: 700},
	}
	regs := Compare(baseResults(), cur, 0.10)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions %v, want 1", len(regs), regs)
	}
	if regs[0].Name != "superstep/pagerank-channel" || regs[0].Metric != "bytes/op" {
		t.Errorf("regs[0] = %v, want pagerank bytes/op", regs[0])
	}
	if regs[0].Frac < 0.24 || regs[0].Frac > 0.26 {
		t.Errorf("regs[0].Frac = %v, want ~0.25", regs[0].Frac)
	}
}

func TestCompareIgnoresRetiredAndMissingBaselines(t *testing.T) {
	// Baseline has a benchmark the current run dropped, and vice versa:
	// neither direction is a regression.
	base := []Result{{Name: "retired/bench", NsPerOp: 10, AllocsPerOp: 1}}
	cur := []Result{{Name: "brand/new", NsPerOp: 1e9, AllocsPerOp: 1 << 30}}
	if regs := Compare(base, cur, 0.10); len(regs) != 0 {
		t.Fatalf("unmatched names flagged: %v", regs)
	}
}

// TestCompareAllowances: an allowance raises one metric's gate to its own
// ceiling without loosening anything else, and growth past the ceiling is
// still flagged.
func TestCompareAllowances(t *testing.T) {
	cur := []Result{
		{Name: "superstep/pagerank-channel", NsPerOp: 1000, BytesPerOp: 4096, AllocsPerOp: 145}, // +45% allocs
		{Name: "e2e/bc-tcp", NsPerOp: 5000, BytesPerOp: 1 << 20, AllocsPerOp: 1200},             // +71% allocs
	}
	allow := []Allowance{
		{Name: "superstep/pagerank-channel", Metric: "allocs/op", MaxFrac: 0.55},
		{Name: "e2e/bc-tcp", Metric: "allocs/op", MaxFrac: 0.55},
	}
	regs := Compare(baseResults(), cur, 0.10, allow...)
	if len(regs) != 1 || regs[0].Name != "e2e/bc-tcp" || regs[0].Metric != "allocs/op" {
		t.Fatalf("regs = %v, want only the past-ceiling bc-tcp allocs/op", regs)
	}
	// Without the allowances both are flagged.
	if regs := Compare(baseResults(), cur, 0.10); len(regs) != 2 {
		t.Fatalf("unallowed regs = %v, want 2", regs)
	}
	// The allowance is scoped to its metric: an ns/op regression on the same
	// benchmark still gates at the default threshold.
	cur[0].NsPerOp = 1300
	if regs := Compare(baseResults(), cur, 0.10, allow...); len(regs) != 2 {
		t.Fatalf("regs = %v, want ns/op still gated at 10%%", regs)
	}
}

func TestParseAllowance(t *testing.T) {
	a, err := ParseAllowance("superstep/bc-channel:allocs/op:0.55")
	if err != nil || a.Name != "superstep/bc-channel" || a.Metric != "allocs/op" || a.MaxFrac != 0.55 {
		t.Fatalf("a = %+v, err = %v", a, err)
	}
	for _, bad := range []string{"", "x:allocs/op", "x:widgets/op:0.5", "x:ns/op:-1", "x:ns/op:zero"} {
		if _, err := ParseAllowance(bad); err == nil {
			t.Errorf("ParseAllowance(%q) accepted", bad)
		}
	}
}
