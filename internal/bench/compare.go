package bench

import "fmt"

// Regression is one benchmark metric that got worse than the allowed
// fraction between a baseline run and the current run.
type Regression struct {
	Name   string  `json:"name"`   // benchmark name
	Metric string  `json:"metric"` // "ns/op" or "allocs/op"
	Base   float64 `json:"base"`
	Cur    float64 `json:"cur"`
	Frac   float64 `json:"frac"` // relative growth, e.g. 0.25 = +25%
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.0f -> %.0f (+%.1f%%)",
		r.Name, r.Metric, r.Base, r.Cur, 100*r.Frac)
}

// Compare flags every benchmark whose ns/op, bytes/op, or allocs/op grew by
// more than frac (e.g. 0.10 = 10%) relative to the baseline. Benchmarks
// present on only one side are ignored — adding or retiring a benchmark is
// not a regression. Improvements are never flagged. The bytes/op gate
// exists because a pooled buffer that silently stops being reused shows up
// as heap growth long before it moves ns/op on a quiet machine.
func Compare(base, cur []Result, frac float64) []Regression {
	byName := make(map[string]Result, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}
	var regs []Regression
	for _, c := range cur {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+frac) {
			regs = append(regs, Regression{
				Name: c.Name, Metric: "ns/op",
				Base: b.NsPerOp, Cur: c.NsPerOp,
				Frac: c.NsPerOp/b.NsPerOp - 1,
			})
		}
		if b.BytesPerOp > 0 && float64(c.BytesPerOp) > float64(b.BytesPerOp)*(1+frac) {
			regs = append(regs, Regression{
				Name: c.Name, Metric: "bytes/op",
				Base: float64(b.BytesPerOp), Cur: float64(c.BytesPerOp),
				Frac: float64(c.BytesPerOp)/float64(b.BytesPerOp) - 1,
			})
		}
		if b.AllocsPerOp > 0 && float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+frac) {
			regs = append(regs, Regression{
				Name: c.Name, Metric: "allocs/op",
				Base: float64(b.AllocsPerOp), Cur: float64(c.AllocsPerOp),
				Frac: float64(c.AllocsPerOp)/float64(b.AllocsPerOp) - 1,
			})
		}
	}
	return regs
}
