package bench

import (
	"fmt"
	"strconv"
	"strings"
)

// Regression is one benchmark metric that got worse than the allowed
// fraction between a baseline run and the current run.
type Regression struct {
	Name   string  `json:"name"`   // benchmark name
	Metric string  `json:"metric"` // "ns/op" or "allocs/op"
	Base   float64 `json:"base"`
	Cur    float64 `json:"cur"`
	Frac   float64 `json:"frac"` // relative growth, e.g. 0.25 = +25%
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.0f -> %.0f (+%.1f%%)",
		r.Name, r.Metric, r.Base, r.Cur, 100*r.Frac)
}

// Allowance raises the threshold for one benchmark metric to MaxFrac: a
// known, accepted cost (e.g. a correctness fix that trades allocations for
// determinism) recorded against a baseline frozen before the trade. An
// allowance never silences unbounded growth — the metric is still gated,
// just at its own documented ceiling.
type Allowance struct {
	Name    string  // exact benchmark name
	Metric  string  // "ns/op", "bytes/op", or "allocs/op"
	MaxFrac float64 // allowed relative growth for this metric
}

// ParseAllowance parses "name:metric:maxfrac" (benchmark names contain "/"
// but never ":", so the split is unambiguous).
func ParseAllowance(s string) (Allowance, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Allowance{}, fmt.Errorf("allowance %q: want name:metric:maxfrac", s)
	}
	switch parts[1] {
	case "ns/op", "bytes/op", "allocs/op":
	default:
		return Allowance{}, fmt.Errorf("allowance %q: unknown metric %q", s, parts[1])
	}
	frac, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || frac <= 0 {
		return Allowance{}, fmt.Errorf("allowance %q: bad maxfrac %q", s, parts[2])
	}
	return Allowance{Name: parts[0], Metric: parts[1], MaxFrac: frac}, nil
}

// Compare flags every benchmark whose ns/op, bytes/op, or allocs/op grew by
// more than frac (e.g. 0.10 = 10%) relative to the baseline. Benchmarks
// present on only one side are ignored — adding or retiring a benchmark is
// not a regression. Improvements are never flagged. The bytes/op gate
// exists because a pooled buffer that silently stops being reused shows up
// as heap growth long before it moves ns/op on a quiet machine. Allowances
// raise the threshold for individually named metrics.
func Compare(base, cur []Result, frac float64, allowances ...Allowance) []Regression {
	byName := make(map[string]Result, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}
	limit := func(name, metric string) float64 {
		for _, a := range allowances {
			if a.Name == name && a.Metric == metric {
				return a.MaxFrac
			}
		}
		return frac
	}
	var regs []Regression
	for _, c := range cur {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+limit(c.Name, "ns/op")) {
			regs = append(regs, Regression{
				Name: c.Name, Metric: "ns/op",
				Base: b.NsPerOp, Cur: c.NsPerOp,
				Frac: c.NsPerOp/b.NsPerOp - 1,
			})
		}
		if b.BytesPerOp > 0 && float64(c.BytesPerOp) > float64(b.BytesPerOp)*(1+limit(c.Name, "bytes/op")) {
			regs = append(regs, Regression{
				Name: c.Name, Metric: "bytes/op",
				Base: float64(b.BytesPerOp), Cur: float64(c.BytesPerOp),
				Frac: float64(c.BytesPerOp)/float64(b.BytesPerOp) - 1,
			})
		}
		if b.AllocsPerOp > 0 && float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+limit(c.Name, "allocs/op")) {
			regs = append(regs, Regression{
				Name: c.Name, Metric: "allocs/op",
				Base: float64(b.AllocsPerOp), Cur: float64(c.AllocsPerOp),
				Frac: float64(c.AllocsPerOp)/float64(b.AllocsPerOp) - 1,
			})
		}
	}
	return regs
}
