// Package algorithms provides the vertex programs evaluated in the paper —
// PageRank (the uniform-message baseline), betweenness-centrality (the
// message-intensive stress case, Brandes' algorithm), and all-pairs shortest
// paths — plus single-source shortest path, weakly connected components, and
// label-propagation community detection (the "CD" class the paper names).
//
// Each algorithm exposes a Spec builder returning a core.JobSpec and a
// result extractor that merges per-worker program state into global arrays.
package algorithms

import (
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
)

// mergeFloat64 gathers a per-local-vertex float64 column from every worker
// program into one global array.
func mergeFloat64[M any](res *core.JobResult[M], n int, column func(prog core.VertexProgram[M]) []float64) []float64 {
	out := make([]float64, n)
	for w, prog := range res.Programs {
		col := column(prog)
		for li, v := range res.Owned[w] {
			out[v] = col[li]
		}
	}
	return out
}

// mergeInt32 gathers a per-local-vertex int32 column from every worker.
func mergeInt32[M any](res *core.JobResult[M], n int, column func(prog core.VertexProgram[M]) []int32) []int32 {
	out := make([]int32, n)
	for w, prog := range res.Programs {
		col := column(prog)
		for li, v := range res.Owned[w] {
			out[v] = col[li]
		}
	}
	return out
}

// Sources returns the n lowest-ID vertices, the conventional root subset for
// sampled BC/APSP experiments (the paper samples 50-75 roots per graph).
func Sources(g *graph.Graph, n int) []graph.VertexID {
	return core.FirstNSources(g, n)
}
