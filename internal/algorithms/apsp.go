package algorithms

import (
	"encoding/binary"
	"sync/atomic"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
)

// All-pairs shortest paths (unweighted): a multi-source BFS where each
// injected root floods its distance wave through the graph. Like BC it has
// the triangle-waveform message profile of Fig 3, but no backward phase, so
// its peak is lower (the paper measures 3M vs BC's 4.7M for one WG swath).
// The result state grows with roots × reachable vertices — the reason the
// paper could not fit LJ in worker memory for APSP.

// APSPMsg carries a root id and the distance the receiver should adopt.
type APSPMsg struct {
	Root uint32
	Dist uint32
}

// APSPCodec encodes APSPMsg in 8 bytes.
type APSPCodec struct{}

// Append implements core.Codec.
func (APSPCodec) Append(buf []byte, m APSPMsg) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:], m.Root)
	binary.LittleEndian.PutUint32(b[4:], m.Dist)
	return append(buf, b[:]...)
}

// Decode implements core.Codec.
func (APSPCodec) Decode(data []byte) (APSPMsg, int) {
	return APSPMsg{
		Root: binary.LittleEndian.Uint32(data[0:]),
		Dist: binary.LittleEndian.Uint32(data[4:]),
	}, 8
}

// Size implements core.Codec.
func (APSPCodec) Size(APSPMsg) int { return 8 }

type apspProgram struct {
	dists      []map[uint32]int32
	stateBytes atomic.Int64
}

// APSP builds the all-pairs-shortest-paths job over the scheduler's roots.
func APSP(g *graph.Graph, workers int, scheduler core.SwathScheduler) core.JobSpec[APSPMsg] {
	return core.JobSpec[APSPMsg]{
		Graph:      g,
		NumWorkers: workers,
		Codec:      APSPCodec{},
		Scheduler:  scheduler,
		NewProgram: func(_ int, _ *graph.Graph, owned []graph.VertexID) core.VertexProgram[APSPMsg] {
			return &apspProgram{dists: make([]map[uint32]int32, len(owned))}
		},
	}
}

// Compute implements core.VertexProgram.
func (p *apspProgram) Compute(ctx *core.Context[APSPMsg], msgs []APSPMsg) {
	li := ctx.LocalIndex()
	dists := p.dists[li]
	record := func(root uint32, d int32) bool {
		if dists == nil {
			dists = make(map[uint32]int32)
			p.dists[li] = dists
		}
		if _, ok := dists[root]; ok {
			return false // BFS: first arrival is shortest
		}
		dists[root] = d
		p.stateBytes.Add(16)
		return true
	}
	if ctx.IsInjected() {
		if record(uint32(ctx.Vertex()), 0) {
			ctx.SendToNeighbors(APSPMsg{Root: uint32(ctx.Vertex()), Dist: 1})
		}
	}
	for _, m := range msgs {
		if record(m.Root, int32(m.Dist)) {
			ctx.SendToNeighbors(APSPMsg{Root: m.Root, Dist: m.Dist + 1})
		}
	}
	ctx.VoteToHalt()
}

// StateBytes implements core.StateReporter.
func (p *apspProgram) StateBytes() int64 { return p.stateBytes.Load() }

// APSPDistances extracts the distance table: result[i][v] is the distance
// from roots[i] to vertex v (-1 when unreached).
func APSPDistances(res *core.JobResult[APSPMsg], n int, roots []graph.VertexID) [][]int32 {
	rootIdx := make(map[uint32]int, len(roots))
	for i, r := range roots {
		rootIdx[uint32(r)] = i
	}
	out := make([][]int32, len(roots))
	for i := range out {
		out[i] = make([]int32, n)
		for v := range out[i] {
			out[i][v] = -1
		}
	}
	for w, prog := range res.Programs {
		p := prog.(*apspProgram)
		for li, v := range res.Owned[w] {
			for root, d := range p.dists[li] {
				if i, ok := rootIdx[root]; ok {
					out[i][v] = d
				}
			}
		}
	}
	return out
}
