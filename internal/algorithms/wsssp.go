package algorithms

import (
	"encoding/binary"
	"math"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
)

// Weighted single-source shortest paths — the canonical Pregel example
// program: a vertex relaxes its distance on every incoming message and, when
// improved, sends dist + w(v,u) to each neighbor; a min combiner collapses
// same-destination relaxations. This is Bellman-Ford in BSP form and
// converges in at most |V| supersteps (far fewer in practice).

// WSSSPCodec encodes float64 tentative distances.
type WSSSPCodec struct{}

// Append implements core.Codec.
func (WSSSPCodec) Append(buf []byte, m float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(m))
	return append(buf, b[:]...)
}

// Decode implements core.Codec.
func (WSSSPCodec) Decode(data []byte) (float64, int) {
	return math.Float64frombits(binary.LittleEndian.Uint64(data)), 8
}

// Size implements core.Codec.
func (WSSSPCodec) Size(float64) int { return 8 }

// MinFloat64Combiner keeps the smallest tentative distance per destination.
type MinFloat64Combiner struct{}

// Combine implements core.Combiner.
func (MinFloat64Combiner) Combine(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

type wssspProgram struct {
	wg   *graph.Weighted
	dist []float64
}

// WeightedSSSP builds the weighted shortest-path job from src.
func WeightedSSSP(wg *graph.Weighted, workers int, src graph.VertexID) core.JobSpec[float64] {
	return core.JobSpec[float64]{
		Graph:      wg.Graph,
		NumWorkers: workers,
		Codec:      WSSSPCodec{},
		Combiner:   MinFloat64Combiner{},
		Scheduler:  core.NewAllAtOnce([]graph.VertexID{src}),
		NewProgram: func(_ int, _ *graph.Graph, owned []graph.VertexID) core.VertexProgram[float64] {
			p := &wssspProgram{wg: wg, dist: make([]float64, len(owned))}
			for i := range p.dist {
				p.dist[i] = math.Inf(1)
			}
			return p
		},
	}
}

// Compute implements core.VertexProgram.
func (p *wssspProgram) Compute(ctx *core.Context[float64], msgs []float64) {
	li := ctx.LocalIndex()
	best := math.Inf(1)
	if ctx.IsInjected() {
		best = 0
	}
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if best < p.dist[li] {
		p.dist[li] = best
		nbrs := ctx.Neighbors()
		wts := p.wg.EdgeWeights(ctx.Vertex())
		for i, u := range nbrs {
			ctx.Send(u, best+float64(wts[i]))
		}
	}
	ctx.VoteToHalt()
}

// StateBytes implements core.StateReporter.
func (p *wssspProgram) StateBytes() int64 { return int64(8 * len(p.dist)) }

// WeightedDistances extracts the final distances (+Inf = unreachable).
func WeightedDistances(res *core.JobResult[float64], n int) []float64 {
	return mergeFloat64(res, n, func(prog core.VertexProgram[float64]) []float64 {
		return prog.(*wssspProgram).dist
	})
}
