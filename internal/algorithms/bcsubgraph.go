package algorithms

import (
	"sort"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
)

// Subgraph-centric betweenness centrality. Where the vertex-centric bcProgram
// advances every root's BFS one level per superstep (supersteps ~ 2x the
// vertex-hop diameter), this port runs Brandes' two sweeps as *asynchronous
// relaxations* driven to local convergence inside each partition, so only
// boundary crossings cost a barrier:
//
//   forward  — (dist, sigma) relaxation: dist is a monotone min over
//              predecessors' dist+1, sigma the sum of shortest-path
//              predecessors' sigmas. Predecessor contributions are kept in a
//              list keyed (and sorted) by sender id with replace-not-add
//              semantics, so re-pushes after a sender's own sigma improves
//              update in place and sums stay deterministic.
//   backward — dependency relaxation down the recorded predecessor lists:
//              each reached vertex holds successor contributions
//              (1+delta_w)/sigma_w, again keyed by sender, so delta
//              converges to Brandes' dependency even though values arrive
//              and improve out of level order.
//
// Global phase transitions ride the aggregator plane (the only legal place
// for cross-superstep control state under the recovery contract — the
// manager logs and replays aggregates across rollbacks and resumes):
// every worker contributes its change count to "bcs/fwd" each forward
// superstep (zero included, so presence marks the phase), and the first
// superstep that observes Agg("bcs/fwd") == 0 starts the backward sweep;
// "bcs/back" repeats the pattern, and Agg("bcs/back") == 0 folds delta into
// the scores and halts. A sentinel (local index 0 on every worker) stays
// active through message-free convergence supersteps so the engine's halt
// detector does not end the job between phases.
//
// Scores are deterministic across runs, worker counts, and transports (all
// float accumulation iterates id-sorted lists), but only ULP-close to the
// vertex-centric implementation, which sums in message arrival order.

// bcsContrib is one neighbor's contribution, keyed by its vertex id.
// Forward: val is the sender's sigma. Backward: val is (1+delta)/sigma.
type bcsContrib struct {
	id  uint32
	val float64
}

// bcsState is one vertex's per-root traversal state.
type bcsState struct {
	dist  int32
	sigma float64
	delta float64
	fwd   []bcsContrib // shortest-path predecessors, sorted by id
	back  []bcsContrib // successor dependencies, sorted by id
}

const bcsStateBaseBytes = 88 // struct + map entry overhead; contribs add 16 each

// bcsItem is a worklist entry in the per-superstep fixpoint.
type bcsItem struct {
	root uint32
	li   int32
}

type bcSubgraph struct {
	scores     []float64
	states     []map[uint32]*bcsState
	stateBytes int64 // single-threaded program: no atomics needed

	// Per-superstep scratch, reused to keep the fixpoint allocation-free.
	// work is consumed as a FIFO queue with inWork deduplicating entries:
	// LIFO label-correcting re-relaxes (dist, sigma) in pathological order on
	// large connected partitions (exponential corrections on the metis
	// partitions of a mesh), while FIFO stays close to level order.
	work   []bcsItem
	inWork map[bcsItem]struct{}
	dirty  []bcsItem // vertices whose converged values must cross the boundary
	inSet  map[bcsItem]struct{}
	roots  []uint32 // sorted-key scratch for deterministic map iteration
}

// BCSubgraph builds the subgraph-centric betweenness-centrality job over the
// given roots. All roots traverse concurrently (the phase machine is global,
// so swath scheduling does not apply; partition-local convergence already
// provides the superstep compression swaths approximate).
func BCSubgraph(g *graph.Graph, workers int, roots []graph.VertexID) core.JobSpec[BCMsg] {
	return core.JobSpec[BCMsg]{
		Graph:      g,
		NumWorkers: workers,
		Codec:      BCCodec{},
		Scheduler:  core.NewAllAtOnce(roots),
		NewPartitionProgram: func(_ int, _ *graph.Graph, owned []graph.VertexID) core.PartitionProgram[BCMsg] {
			return &bcSubgraph{
				scores: make([]float64, len(owned)),
				states: make([]map[uint32]*bcsState, len(owned)),
				inWork: make(map[bcsItem]struct{}),
				inSet:  make(map[bcsItem]struct{}),
			}
		},
	}
}

// ComputePartition implements core.PartitionProgram. The phase is derived
// from the previous superstep's aggregates alone (recovery contract).
func (p *bcSubgraph) ComputePartition(pc *core.PartitionContext[BCMsg]) {
	fwd, fwdOk := pc.Agg("bcs/fwd")
	back, backOk := pc.Agg("bcs/back")
	switch {
	case backOk && back == 0:
		p.finish(pc)
		return // terminal: no sentinel, job halts at this barrier
	case backOk || (fwdOk && fwd == 0):
		p.backward(pc, !backOk)
	default:
		p.forward(pc)
	}
	if pc.NumLocal() > 0 {
		pc.Activate(0)
	}
}

func (p *bcSubgraph) state(li int32) map[uint32]*bcsState {
	if p.states[li] == nil {
		p.states[li] = make(map[uint32]*bcsState)
	}
	return p.states[li]
}

func (p *bcSubgraph) push(it bcsItem) {
	if _, ok := p.inWork[it]; !ok {
		p.inWork[it] = struct{}{}
		p.work = append(p.work, it)
	}
}

func (p *bcSubgraph) markDirty(it bcsItem) {
	if _, ok := p.inSet[it]; !ok {
		p.inSet[it] = struct{}{}
		p.dirty = append(p.dirty, it)
	}
}

func (p *bcSubgraph) resetScratch() {
	p.work = p.work[:0]
	clear(p.inWork)
	p.dirty = p.dirty[:0]
	clear(p.inSet)
}

// upsert inserts or replaces (id, val) in an id-sorted contribution list and
// reports whether the list changed. The returned slice replaces the input.
func upsert(list []bcsContrib, id uint32, val float64) ([]bcsContrib, bool) {
	i := sort.Search(len(list), func(k int) bool { return list[k].id >= id })
	if i < len(list) && list[i].id == id {
		if list[i].val == val {
			return list, false
		}
		list[i].val = val
		return list, true
	}
	list = append(list, bcsContrib{})
	copy(list[i+1:], list[i:])
	list[i] = bcsContrib{id: id, val: val}
	return list, true
}

// contribSum reduces an id-sorted contribution list; iteration order is the
// id order, making the float sum deterministic.
func contribSum(list []bcsContrib) float64 {
	var s float64
	for i := range list {
		s += list[i].val
	}
	return s
}

// applyForward merges one forward offer (pred `from` proposes distance nd
// with path count sg) into li's state for root, returning whether the state
// changed. dist is monotone non-increasing, so a smaller offer resets the
// predecessor list and an equal offer upserts; larger offers are stale.
func (p *bcSubgraph) applyForward(li int32, root uint32, nd int32, from uint32, sg float64) bool {
	states := p.state(li)
	st := states[root]
	if st == nil {
		st = &bcsState{dist: nd, sigma: sg, fwd: []bcsContrib{{id: from, val: sg}}}
		states[root] = st
		p.stateBytes += bcsStateBaseBytes + 16
		return true
	}
	switch {
	case nd < st.dist:
		p.stateBytes -= int64(16 * len(st.fwd))
		st.dist = nd
		st.fwd = append(st.fwd[:0], bcsContrib{id: from, val: sg})
		st.sigma = sg
		p.stateBytes += 16
		return true
	case nd == st.dist:
		list, changed := upsert(st.fwd, from, sg)
		if !changed {
			return false
		}
		if len(list) > len(st.fwd) {
			p.stateBytes += 16
		}
		st.fwd = list
		st.sigma = contribSum(st.fwd)
		return true
	default:
		return false
	}
}

func (p *bcSubgraph) forward(pc *core.PartitionContext[BCMsg]) {
	p.resetScratch()
	var changes, ops int64

	for _, li := range pc.Active() {
		if pc.Injected(li) {
			self := uint32(pc.VertexAt(li))
			if states := p.state(li); states[self] == nil {
				states[self] = &bcsState{dist: 0, sigma: 1}
				p.stateBytes += bcsStateBaseBytes
				changes++
				p.push(bcsItem{self, li})
				p.markDirty(bcsItem{self, li})
			}
		}
		for _, m := range pc.Messages(li) {
			if m.Kind != bcForward {
				continue
			}
			ops++
			if p.applyForward(li, m.Root, int32(m.Aux), m.From, m.Value) {
				changes++
				p.push(bcsItem{m.Root, li})
				p.markDirty(bcsItem{m.Root, li})
			}
		}
	}

	// Local fixpoint: relax (dist, sigma) over the partition's own edges
	// until nothing improves. FIFO consumption with dedup keeps relaxation
	// near level order; entries re-read current state at pop time, so a
	// queued-then-improved entry is processed once with its final values.
	for head := 0; head < len(p.work); head++ {
		it := p.work[head]
		delete(p.inWork, it)
		st := p.states[it.li][it.root]
		v := pc.VertexAt(it.li)
		nd, sg := st.dist+1, st.sigma
		for _, u := range pc.Neighbors(v) {
			ops++
			lu := pc.LocalIndex(u)
			if lu < 0 {
				continue
			}
			if p.applyForward(lu, it.root, nd, uint32(v), sg) {
				changes++
				p.push(bcsItem{it.root, lu})
				p.markDirty(bcsItem{it.root, lu})
			}
		}
	}

	// Boundary push: converged (dist, sigma) of every changed vertex goes to
	// its remote out-neighbors. Receivers treat repeats as no-op upserts.
	for _, it := range p.dirty {
		st := p.states[it.li][it.root]
		v := pc.VertexAt(it.li)
		msg := BCMsg{Root: it.root, Kind: bcForward, From: uint32(v), Aux: uint32(st.dist + 1), Value: st.sigma}
		for _, u := range pc.Neighbors(v) {
			if !pc.IsLocal(u) {
				pc.Send(u, msg)
			}
		}
	}

	pc.Aggregate("bcs/fwd", float64(changes))
	pc.AddComputeOps(ops)
	pc.VoteAllToHalt()
}

// applyBack merges one dependency contribution from successor `from` into
// li's state for root, returning whether delta changed (only then does the
// vertex's own contribution to its predecessors change).
func (p *bcSubgraph) applyBack(li int32, root, from uint32, val float64) bool {
	st := p.states[li][root]
	if st == nil {
		return false
	}
	list, changed := upsert(st.back, from, val)
	if !changed {
		return false
	}
	if len(list) > len(st.back) {
		p.stateBytes += 16
	}
	st.back = list
	delta := st.sigma * contribSum(st.back)
	if delta == st.delta {
		return false
	}
	st.delta = delta
	return true
}

// sortedRoots fills p.roots with li's root keys in ascending order, keeping
// every map iteration in this file deterministic.
func (p *bcSubgraph) sortedRoots(li int32) []uint32 {
	p.roots = p.roots[:0]
	for root := range p.states[li] {
		p.roots = append(p.roots, root)
	}
	sort.Slice(p.roots, func(a, b int) bool { return p.roots[a] < p.roots[b] })
	return p.roots
}

func (p *bcSubgraph) backward(pc *core.PartitionContext[BCMsg], firstPush bool) {
	p.resetScratch()
	var changes, ops int64

	if firstPush {
		// Backward-start: the forward sweep just converged globally, so every
		// reached vertex announces its initial dependency (delta = 0) to its
		// predecessors. Counting each state as a change keeps "bcs/back"
		// nonzero whenever any traversal reached anything.
		for li := range p.states {
			for _, root := range p.sortedRoots(int32(li)) {
				changes++
				it := bcsItem{root, int32(li)}
				p.push(it)
				p.markDirty(it)
			}
		}
	} else {
		for _, li := range pc.Active() {
			for _, m := range pc.Messages(li) {
				if m.Kind != bcBackward {
					continue
				}
				ops++
				if p.applyBack(li, m.Root, m.From, m.Value) {
					changes++
					p.push(bcsItem{m.Root, li})
					p.markDirty(bcsItem{m.Root, li})
				}
			}
		}
	}

	// Local fixpoint: dependency propagation up the recorded predecessor
	// lists (a DAG — predecessors have strictly smaller dist — so this
	// converges even though deltas improve out of level order).
	for head := 0; head < len(p.work); head++ {
		it := p.work[head]
		delete(p.inWork, it)
		st := p.states[it.li][it.root]
		c := (1 + st.delta) / st.sigma
		v := uint32(pc.VertexAt(it.li))
		for _, pr := range st.fwd {
			ops++
			lu := pc.LocalIndex(graph.VertexID(pr.id))
			if lu < 0 {
				continue
			}
			if p.applyBack(lu, it.root, v, c) {
				changes++
				p.push(bcsItem{it.root, lu})
				p.markDirty(bcsItem{it.root, lu})
			}
		}
	}

	// Boundary push: converged dependency values go to remote predecessors.
	for _, it := range p.dirty {
		st := p.states[it.li][it.root]
		c := (1 + st.delta) / st.sigma
		v := uint32(pc.VertexAt(it.li))
		for _, pr := range st.fwd {
			u := graph.VertexID(pr.id)
			if !pc.IsLocal(u) {
				pc.Send(u, BCMsg{Root: it.root, Kind: bcBackward, From: v, Value: c})
			}
		}
	}

	pc.Aggregate("bcs/back", float64(changes))
	pc.AddComputeOps(ops)
	pc.VoteAllToHalt()
}

// finish folds converged dependencies into the centrality scores (roots
// excluded, matching Brandes) and frees all traversal state.
func (p *bcSubgraph) finish(pc *core.PartitionContext[BCMsg]) {
	for li := range p.states {
		for _, root := range p.sortedRoots(int32(li)) {
			if st := p.states[li][root]; st.dist > 0 {
				p.scores[li] += st.delta
			}
		}
		p.states[li] = nil
	}
	p.stateBytes = 0
	pc.VoteAllToHalt()
}

// StateBytes implements core.StateReporter.
func (p *bcSubgraph) StateBytes() int64 {
	return p.stateBytes + int64(8*len(p.scores))
}

// BCSubgraphScores extracts the accumulated centrality scores.
func BCSubgraphScores(res *core.JobResult[BCMsg], n int) []float64 {
	return mergeSubFloat64(res, n, func(prog core.PartitionProgram[BCMsg]) []float64 {
		return prog.(*bcSubgraph).scores
	})
}
