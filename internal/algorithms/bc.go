package algorithms

import (
	"encoding/binary"
	"math"
	"sort"
	"sync/atomic"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
)

// Betweenness centrality via Brandes' algorithm (the paper's stress case,
// §II.B): a breadth-first traversal rooted at every source counts shortest
// paths (sigma) on the way down, then walks back up the BFS tree
// accumulating dependency scores (delta). On BSP each traversal level is one
// superstep, so a root at injection step t evolves:
//
//	t+d   : vertices at distance d receive forward messages from all their
//	        predecessors at once, fix sigma and dist, record predecessors,
//	        ack each predecessor, and forward to neighbors;
//	t+d+2 : acks from every successor have arrived, so the successor count
//	        is final; a vertex with zero successors (leaf) fires its
//	        backward contribution immediately;
//	later : when backward contributions from all successors have arrived,
//	        the vertex adds sigma_v * (1+delta_w)/sigma_w per successor w,
//	        accumulates delta into its centrality score, fires to its own
//	        predecessors, and frees the per-root state.
//
// Messages are O(|E|) per root in each direction, producing the triangle
// waveform of Fig 3 and the O(|V||E|) total the paper's swath heuristics
// exist to manage. Scores count ordered pairs (s,t), as Brandes' algorithm
// does before the optional halving for undirected graphs.

// BC message kinds.
const (
	bcForward  uint8 = iota // carries sender's sigma; Aux = receiver distance
	bcAck                   // notifies a predecessor it has a successor
	bcBackward              // carries (1+delta_w)/sigma_w
)

// BCMsg is the wire message for betweenness centrality.
type BCMsg struct {
	Root  uint32
	Kind  uint8
	From  uint32  // forward: sender vertex
	Aux   uint32  // forward: distance the receiver should adopt
	Value float64 // forward: sigma; backward: (1+delta)/sigma
}

// BCCodec encodes BCMsg in 21 bytes.
type BCCodec struct{}

// Append implements core.Codec.
func (BCCodec) Append(buf []byte, m BCMsg) []byte {
	var b [21]byte
	binary.LittleEndian.PutUint32(b[0:], m.Root)
	b[4] = m.Kind
	binary.LittleEndian.PutUint32(b[5:], m.From)
	binary.LittleEndian.PutUint32(b[9:], m.Aux)
	binary.LittleEndian.PutUint64(b[13:], math.Float64bits(m.Value))
	return append(buf, b[:]...)
}

// Decode implements core.Codec.
func (BCCodec) Decode(data []byte) (BCMsg, int) {
	return BCMsg{
		Root:  binary.LittleEndian.Uint32(data[0:]),
		Kind:  data[4],
		From:  binary.LittleEndian.Uint32(data[5:]),
		Aux:   binary.LittleEndian.Uint32(data[9:]),
		Value: math.Float64frombits(binary.LittleEndian.Uint64(data[13:])),
	}, 21
}

// Size implements core.Codec.
func (BCCodec) Size(BCMsg) int { return 21 }

// bcRootState is one vertex's state for one in-flight traversal.
type bcRootState struct {
	dist       int32
	discovered int32 // superstep of discovery
	sigma      float64
	delta      float64
	preds      []uint32
	succ       int32
	back       int32
	bytes      int64 // accounted size, subtracted on free
}

const bcStateBaseBytes = 72

type bcProgram struct {
	scores     []float64
	states     []map[uint32]*bcRootState
	stateBytes atomic.Int64
}

// BC builds the betweenness-centrality job over the given source roots.
// Swath scheduling is supplied by the caller: pass core.NewAllAtOnce(roots)
// for the single-swath baseline or a core.SwathRunner for the heuristics.
func BC(g *graph.Graph, workers int, scheduler core.SwathScheduler) core.JobSpec[BCMsg] {
	return core.JobSpec[BCMsg]{
		Graph:      g,
		NumWorkers: workers,
		Codec:      BCCodec{},
		Scheduler:  scheduler,
		NewProgram: func(_ int, _ *graph.Graph, owned []graph.VertexID) core.VertexProgram[BCMsg] {
			return &bcProgram{
				scores: make([]float64, len(owned)),
				states: make([]map[uint32]*bcRootState, len(owned)),
			}
		},
	}
}

// Compute implements core.VertexProgram.
func (p *bcProgram) Compute(ctx *core.Context[BCMsg], msgs []BCMsg) {
	li := ctx.LocalIndex()
	states := p.states[li]
	self := uint32(ctx.Vertex())
	step := int32(ctx.Superstep())

	ensure := func() map[uint32]*bcRootState {
		if states == nil {
			states = make(map[uint32]*bcRootState)
			p.states[li] = states
		}
		return states
	}
	newState := func(root uint32, dist int32) *bcRootState {
		st := &bcRootState{dist: dist, discovered: step, bytes: bcStateBaseBytes}
		ensure()[root] = st
		p.stateBytes.Add(bcStateBaseBytes)
		return st
	}

	// Injection: this vertex becomes the root of a new traversal.
	if ctx.IsInjected() {
		if _, exists := states[self]; !exists {
			st := newState(self, 0)
			st.sigma = 1
		}
	}

	for i := range msgs {
		m := &msgs[i]
		switch m.Kind {
		case bcForward:
			st := states[m.Root]
			if st == nil {
				st = newState(m.Root, int32(m.Aux))
			}
			// Accept only messages for our own BFS level; anything else is a
			// cross or back edge discovered late.
			if int32(m.Aux) == st.dist && st.discovered == step {
				st.sigma += m.Value
				st.preds = append(st.preds, m.From)
				st.bytes += 8
				p.stateBytes.Add(8)
				ctx.Send(graph.VertexID(m.From), BCMsg{Root: m.Root, Kind: bcAck})
			}
		case bcAck:
			if st := states[m.Root]; st != nil {
				st.succ++
			}
		case bcBackward:
			if st := states[m.Root]; st != nil {
				st.delta += st.sigma * m.Value
				st.back++
			}
		}
	}

	// Drain the per-root state in sorted root order: map iteration order
	// varies run to run, and both loops below send messages and accumulate
	// floating-point scores, so replay after recovery must walk the roots
	// in the same order the original run did.
	roots := make([]uint32, 0, len(states))
	for root := range states {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })

	// Newly discovered traversals forward their sigma down the tree.
	for _, root := range roots {
		st := states[root]
		if st.discovered == step {
			fwd := BCMsg{Root: root, Kind: bcForward, From: self, Aux: uint32(st.dist + 1), Value: st.sigma}
			ctx.SendToNeighbors(fwd)
		}
	}

	// Fire completed traversals: successor count is final two supersteps
	// after discovery, and every successor has contributed back.
	for _, root := range roots {
		st := states[root]
		if step >= st.discovered+2 && st.back == st.succ {
			if st.dist > 0 {
				p.scores[li] += st.delta
				contribution := (1 + st.delta) / st.sigma
				for _, pred := range st.preds {
					ctx.Send(graph.VertexID(pred), BCMsg{Root: root, Kind: bcBackward, Value: contribution})
				}
			} else {
				// The root finished: the whole traversal is complete.
				ctx.Aggregate("bc/rootsDone", 1)
			}
			p.stateBytes.Add(-st.bytes)
			delete(states, root)
		}
	}

	if len(states) == 0 {
		ctx.VoteToHalt()
	}
}

// StateBytes implements core.StateReporter.
func (p *bcProgram) StateBytes() int64 {
	return p.stateBytes.Load() + int64(8*len(p.scores))
}

// BCScores extracts the accumulated centrality scores.
func BCScores(res *core.JobResult[BCMsg], n int) []float64 {
	return mergeFloat64(res, n, func(prog core.VertexProgram[BCMsg]) []float64 {
		return prog.(*bcProgram).scores
	})
}

// BCSequential is the reference Brandes implementation (unweighted), scoring
// ordered pairs from the given roots only. Used to validate the BSP version
// and to extrapolate full-graph results the way the paper samples roots.
func BCSequential(g *graph.Graph, roots []graph.VertexID) []float64 {
	n := g.NumVertices()
	scores := make([]float64, n)
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]graph.VertexID, n)
	order := make([]graph.VertexID, 0, n)
	for _, s := range roots {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		dist[s] = 0
		sigma[s] = 1
		queue := []graph.VertexID{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, w := range g.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				scores[w] += delta[w]
			}
		}
	}
	return scores
}
