package algorithms

import (
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
)

// DiameterEstimate is the result of a sampled multi-source BFS sweep — the
// BSP equivalent of the SNAP statistic the paper's Table 1 reports.
type DiameterEstimate struct {
	// Max is the largest hop distance observed from any sampled root.
	Max int32
	// Effective90 is the interpolated 90th-percentile pairwise distance.
	Effective90 float64
	// AvgPath is the mean pairwise distance over sampled pairs.
	AvgPath float64
	// Samples is the number of BFS roots actually used.
	Samples int
}

// EstimateDiameter runs a multi-source BFS (the APSP vertex program) from
// `samples` roots on the BSP engine and derives diameter statistics.
func EstimateDiameter(g *graph.Graph, workers, samples int) (*DiameterEstimate, error) {
	if samples <= 0 || samples > g.NumVertices() {
		samples = g.NumVertices()
	}
	roots := Sources(g, samples)
	// Swathed execution keeps the message peak bounded for large samples.
	sched := core.NewSwathRunner(roots, core.StaticSizer(maxInt(1, samples/4)), core.DynamicPeakInitiator{})
	res, err := core.Run(APSP(g, workers, sched))
	if err != nil {
		return nil, err
	}
	dist := APSPDistances(res, g.NumVertices(), roots)
	est := &DiameterEstimate{Samples: len(roots)}
	var hist []int64
	var total, weighted int64
	for i := range dist {
		for _, d := range dist[i] {
			if d <= 0 {
				continue
			}
			if d > est.Max {
				est.Max = d
			}
			for int(d) >= len(hist) {
				hist = append(hist, 0)
			}
			hist[d]++
			total++
			weighted += int64(d)
		}
	}
	if total == 0 {
		return est, nil
	}
	est.AvgPath = float64(weighted) / float64(total)
	target := 0.9 * float64(total)
	var cum int64
	for d := 1; d < len(hist); d++ {
		prev := cum
		cum += hist[d]
		if float64(cum) >= target {
			frac := (target - float64(prev)) / float64(hist[d])
			est.Effective90 = float64(d-1) + frac
			break
		}
	}
	return est, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
