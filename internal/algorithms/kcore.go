package algorithms

import (
	"encoding/binary"
	"sort"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
)

// k-core decomposition on BSP (Montresor, De Pellegrini, Miorandi: locality
// based distributed k-core): every vertex maintains a coreness estimate,
// initially its degree, and repeatedly lowers it to the largest k such that
// at least k neighbors claim an estimate ≥ k (an h-index over neighbor
// estimates). Estimates only decrease, so the fixpoint — reached in a few
// supersteps on small-world graphs — is the exact coreness.

// KCoreMsg announces the sender's current coreness estimate.
type KCoreMsg struct {
	From uint32
	Est  uint32
}

// KCoreCodec encodes KCoreMsg in 8 bytes.
type KCoreCodec struct{}

// Append implements core.Codec.
func (KCoreCodec) Append(buf []byte, m KCoreMsg) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:], m.From)
	binary.LittleEndian.PutUint32(b[4:], m.Est)
	return append(buf, b[:]...)
}

// Decode implements core.Codec.
func (KCoreCodec) Decode(data []byte) (KCoreMsg, int) {
	return KCoreMsg{
		From: binary.LittleEndian.Uint32(data[0:]),
		Est:  binary.LittleEndian.Uint32(data[4:]),
	}, 8
}

// Size implements core.Codec.
func (KCoreCodec) Size(KCoreMsg) int { return 8 }

type kcoreProgram struct {
	est      []uint32            // current estimate per local vertex
	nbrEst   []map[uint32]uint32 // latest neighbor estimates
	nbrCount []int
}

// KCore builds the coreness-decomposition job.
func KCore(g *graph.Graph, workers int) core.JobSpec[KCoreMsg] {
	return core.JobSpec[KCoreMsg]{
		Graph:      g,
		NumWorkers: workers,
		Codec:      KCoreCodec{},
		NewProgram: func(_ int, gg *graph.Graph, owned []graph.VertexID) core.VertexProgram[KCoreMsg] {
			p := &kcoreProgram{
				est:      make([]uint32, len(owned)),
				nbrEst:   make([]map[uint32]uint32, len(owned)),
				nbrCount: make([]int, len(owned)),
			}
			for li, v := range owned {
				p.est[li] = uint32(gg.OutDegree(v))
				p.nbrCount[li] = gg.OutDegree(v)
			}
			return p
		},
		ActivateAll: true,
	}
}

// Compute implements core.VertexProgram.
func (p *kcoreProgram) Compute(ctx *core.Context[KCoreMsg], msgs []KCoreMsg) {
	li := ctx.LocalIndex()
	if ctx.Superstep() == 0 {
		// Broadcast the initial degree estimate.
		ctx.SendToNeighbors(KCoreMsg{From: uint32(ctx.Vertex()), Est: p.est[li]})
		ctx.VoteToHalt()
		return
	}
	if p.nbrEst[li] == nil {
		p.nbrEst[li] = make(map[uint32]uint32, p.nbrCount[li])
	}
	for _, m := range msgs {
		if prev, ok := p.nbrEst[li][m.From]; !ok || m.Est < prev {
			p.nbrEst[li][m.From] = m.Est
		}
	}
	// Recompute the h-index bound: largest k with >= k neighbors at >= k.
	// Unreported neighbors are assumed at their upper bound (they have not
	// lowered below our current view), approximated by our own estimate.
	ests := make([]uint32, 0, p.nbrCount[li])
	for _, u := range ctx.Neighbors() {
		if e, ok := p.nbrEst[li][uint32(u)]; ok {
			ests = append(ests, e)
		} else {
			ests = append(ests, p.est[li])
		}
	}
	sort.Slice(ests, func(i, j int) bool { return ests[i] > ests[j] })
	var h uint32
	for i, e := range ests {
		k := uint32(i + 1)
		if e >= k {
			h = k
		} else {
			break
		}
	}
	if h < p.est[li] {
		p.est[li] = h
		ctx.SendToNeighbors(KCoreMsg{From: uint32(ctx.Vertex()), Est: h})
	}
	ctx.VoteToHalt()
}

// StateBytes implements core.StateReporter.
func (p *kcoreProgram) StateBytes() int64 {
	var total int64
	for li := range p.nbrEst {
		total += 4 + int64(16*len(p.nbrEst[li]))
	}
	return total
}

// Coreness extracts each vertex's core number.
func Coreness(res *core.JobResult[KCoreMsg], n int) []uint32 {
	out := make([]uint32, n)
	for w, prog := range res.Programs {
		p := prog.(*kcoreProgram)
		for li, v := range res.Owned[w] {
			out[v] = p.est[li]
		}
	}
	return out
}

// CorenessSequential is the reference peeling implementation.
func CorenessSequential(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.VertexID(v))
	}
	coreNum := make([]uint32, n)
	removed := make([]bool, n)
	// Peel vertices in increasing degree order (bucket queue).
	type entry struct{ v, d int }
	order := make([]entry, n)
	for v := 0; v < n; v++ {
		order[v] = entry{v, deg[v]}
	}
	for peeled := 0; peeled < n; peeled++ {
		// Find the minimum-degree unremoved vertex (O(n^2) total; fine for
		// test-scale reference use).
		best, bestDeg := -1, 1<<30
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		removed[best] = true
		coreNum[best] = uint32(bestDeg)
		if peeled > 0 {
			// Coreness is the running max of removal degrees.
			prev := order[peeled-1].v
			if coreNum[best] < coreNum[prev] {
				coreNum[best] = coreNum[prev]
			}
		}
		order[peeled] = entry{best, bestDeg}
		for _, u := range g.Neighbors(graph.VertexID(best)) {
			if !removed[u] && deg[u] > 0 {
				deg[u]--
			}
		}
	}
	return coreNum
}
