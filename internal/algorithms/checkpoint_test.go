package algorithms

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"pregelnet/internal/cloud"
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
)

// chaos returns a FailureInjector that kills one worker once.
func chaos(worker, superstep int) (func(int, int) error, *atomic.Bool) {
	var fired atomic.Bool
	return func(w, s int) error {
		if w == worker && s == superstep && !fired.Swap(true) {
			return errors.New("chaos: injected VM failure")
		}
		return nil
	}, &fired
}

func TestBCSurvivesWorkerFailure(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 55)
	roots := Sources(g, 20)
	spec := BC(g, 4, core.NewAllAtOnce(roots))
	spec.CheckpointEvery = 3
	spec.CheckpointStore = cloud.NewBlobStore()
	inject, fired := chaos(1, 7)
	spec.FailureInjector = inject
	res, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !fired.Load() {
		t.Fatal("chaos never fired; pick an earlier superstep")
	}
	if res.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", res.Recoveries)
	}
	got := BCScores(res, g.NumVertices())
	want := BCSequential(g, roots)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-6*(1+math.Abs(want[v])) {
			t.Fatalf("vertex %d: BC %v, want %v after recovery", v, got[v], want[v])
		}
	}
}

func TestPageRankSurvivesWorkerFailure(t *testing.T) {
	g := graph.ErdosRenyi(200, 800, 66)
	pr := PageRank{Iterations: 20, Damping: 0.85}
	spec := pr.Spec(g, 4)
	spec.CheckpointEvery = 4
	spec.CheckpointStore = cloud.NewBlobStore()
	inject, fired := chaos(2, 9)
	spec.FailureInjector = inject
	res, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !fired.Load() || res.Recoveries != 1 {
		t.Fatalf("fired=%v recoveries=%d", fired.Load(), res.Recoveries)
	}
	got := Ranks(res, g.NumVertices())
	want := PageRankSequential(g, pr.Iterations, pr.Damping)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("vertex %d: rank %v, want %v after recovery", v, got[v], want[v])
		}
	}
}

func TestAPSPSurvivesWorkerFailure(t *testing.T) {
	g := graph.ErdosRenyi(150, 450, 77)
	roots := Sources(g, 12)
	spec := APSP(g, 3, core.NewSwathRunner(roots, core.StaticSizer(4), core.StaticNInitiator(2)))
	spec.CheckpointEvery = 2
	spec.CheckpointStore = cloud.NewBlobStore()
	inject, fired := chaos(0, 5)
	spec.FailureInjector = inject
	res, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !fired.Load() || res.Recoveries != 1 {
		t.Fatalf("fired=%v recoveries=%d", fired.Load(), res.Recoveries)
	}
	got := APSPDistances(res, g.NumVertices(), roots)
	for i, r := range roots {
		want := graph.BFS(g, r)
		for v := range want {
			if got[i][v] != want[v] {
				t.Fatalf("root %d vertex %d: %d, want %d after recovery", r, v, got[i][v], want[v])
			}
		}
	}
}

func TestWCCAndLPASurviveWorkerFailure(t *testing.T) {
	g := graph.ErdosRenyi(200, 220, 88)
	spec := WCC(g, 3)
	spec.CheckpointEvery = 2
	spec.CheckpointStore = cloud.NewBlobStore()
	inject, _ := chaos(1, 3)
	spec.FailureInjector = inject
	res, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	labels := WCCLabels(res, g.NumVertices())
	ref := graph.Components(g)
	for v := 1; v < g.NumVertices(); v++ {
		if (ref.Labels[v] == ref.Labels[0]) != (labels[v] == labels[0]) {
			t.Fatalf("component mismatch at %d after recovery", v)
		}
	}

	lpa := LPA(g, 3, 8)
	lpa.CheckpointEvery = 2
	lpa.CheckpointStore = cloud.NewBlobStore()
	inject2, _ := chaos(0, 4)
	lpa.FailureInjector = inject2
	res2, err := core.Run(lpa)
	if err != nil {
		t.Fatal(err)
	}
	if len(LPALabels(res2, g.NumVertices())) != g.NumVertices() {
		t.Fatal("lpa labels missing")
	}
}
