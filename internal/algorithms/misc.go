package algorithms

import (
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
)

// Single-source shortest path, weakly connected components, and
// label-propagation community detection: the lighter vertex programs
// rounding out the framework's application suite (the paper names community
// detection alongside BC and APSP as the high-complexity class; SSSP and
// WCC are the standard Pregel warm-ups).

type ssspProgram struct {
	dist []int32
}

// SSSP builds a single-source shortest-path job from src (unweighted,
// hop-count distances) using a min combiner.
func SSSP(g *graph.Graph, workers int, src graph.VertexID) core.JobSpec[uint32] {
	return core.JobSpec[uint32]{
		Graph:      g,
		NumWorkers: workers,
		Codec:      core.Uint32Codec{},
		Combiner:   core.MinUint32Combiner{},
		Scheduler:  core.NewAllAtOnce([]graph.VertexID{src}),
		NewProgram: func(_ int, _ *graph.Graph, owned []graph.VertexID) core.VertexProgram[uint32] {
			p := &ssspProgram{dist: make([]int32, len(owned))}
			for i := range p.dist {
				p.dist[i] = -1
			}
			return p
		},
	}
}

// Compute implements core.VertexProgram.
func (p *ssspProgram) Compute(ctx *core.Context[uint32], msgs []uint32) {
	best := int32(-1)
	if ctx.IsInjected() {
		best = 0
	}
	for _, m := range msgs {
		if best < 0 || int32(m) < best {
			best = int32(m)
		}
	}
	li := ctx.LocalIndex()
	if best >= 0 && (p.dist[li] < 0 || best < p.dist[li]) {
		p.dist[li] = best
		ctx.SendToNeighbors(uint32(best + 1))
	}
	ctx.VoteToHalt()
}

// StateBytes implements core.StateReporter.
func (p *ssspProgram) StateBytes() int64 { return int64(4 * len(p.dist)) }

// SSSPDistances extracts hop distances (-1 = unreachable).
func SSSPDistances(res *core.JobResult[uint32], n int) []int32 {
	return mergeInt32(res, n, func(prog core.VertexProgram[uint32]) []int32 {
		return prog.(*ssspProgram).dist
	})
}

type wccProgram struct {
	label []int32
}

// WCC builds a weakly-connected-components job: every vertex floods the
// minimum vertex id it has seen; at convergence each component is labeled by
// its smallest member.
func WCC(g *graph.Graph, workers int) core.JobSpec[uint32] {
	return core.JobSpec[uint32]{
		Graph:       g,
		NumWorkers:  workers,
		Codec:       core.Uint32Codec{},
		Combiner:    core.MinUint32Combiner{},
		ActivateAll: true,
		NewProgram: func(_ int, _ *graph.Graph, owned []graph.VertexID) core.VertexProgram[uint32] {
			p := &wccProgram{label: make([]int32, len(owned))}
			for i := range p.label {
				p.label[i] = -1
			}
			return p
		},
	}
}

// Compute implements core.VertexProgram.
func (p *wccProgram) Compute(ctx *core.Context[uint32], msgs []uint32) {
	li := ctx.LocalIndex()
	best := p.label[li]
	if ctx.Superstep() == 0 {
		best = int32(ctx.Vertex())
	}
	for _, m := range msgs {
		if int32(m) < best {
			best = int32(m)
		}
	}
	if best != p.label[li] {
		p.label[li] = best
		ctx.SendToNeighbors(uint32(best))
	}
	ctx.VoteToHalt()
}

// StateBytes implements core.StateReporter.
func (p *wccProgram) StateBytes() int64 { return int64(4 * len(p.label)) }

// WCCLabels extracts component labels (the minimum vertex id per component).
func WCCLabels(res *core.JobResult[uint32], n int) []int32 {
	return mergeInt32(res, n, func(prog core.VertexProgram[uint32]) []int32 {
		return prog.(*wccProgram).label
	})
}

type lpaProgram struct {
	rounds int
	label  []int32
}

// LPA builds a label-propagation community-detection job: each vertex
// repeatedly adopts the most frequent label among its neighbors (ties break
// toward the smaller label, making the run deterministic), for a fixed
// number of rounds.
func LPA(g *graph.Graph, workers, rounds int) core.JobSpec[uint32] {
	return core.JobSpec[uint32]{
		Graph:       g,
		NumWorkers:  workers,
		Codec:       core.Uint32Codec{},
		ActivateAll: true,
		NewProgram: func(_ int, _ *graph.Graph, owned []graph.VertexID) core.VertexProgram[uint32] {
			return &lpaProgram{rounds: rounds, label: make([]int32, len(owned))}
		},
	}
}

// Compute implements core.VertexProgram.
func (p *lpaProgram) Compute(ctx *core.Context[uint32], msgs []uint32) {
	li := ctx.LocalIndex()
	if ctx.Superstep() == 0 {
		p.label[li] = int32(ctx.Vertex())
	} else {
		counts := make(map[uint32]int, len(msgs))
		for _, m := range msgs {
			counts[m]++
		}
		best, bestCount := uint32(p.label[li]), 0
		for label, c := range counts {
			if c > bestCount || (c == bestCount && label < best) {
				best, bestCount = label, c
			}
		}
		p.label[li] = int32(best)
	}
	if ctx.Superstep() < p.rounds {
		ctx.SendToNeighbors(uint32(p.label[li]))
	} else {
		ctx.VoteToHalt()
	}
}

// StateBytes implements core.StateReporter.
func (p *lpaProgram) StateBytes() int64 { return int64(4 * len(p.label)) }

// LPALabels extracts community labels.
func LPALabels(res *core.JobResult[uint32], n int) []int32 {
	return mergeInt32(res, n, func(prog core.VertexProgram[uint32]) []int32 {
		return prog.(*lpaProgram).label
	})
}
