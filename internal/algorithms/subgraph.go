package algorithms

import (
	"math"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
)

// Subgraph-centric (partition-centric) ports of the traversal algorithms.
// Each program runs a sequential worklist fixpoint over its whole partition
// between barriers — the GoFFish/Giraph++ model — so supersteps scale with
// the partition-hop diameter of the graph instead of its vertex-hop
// diameter, and only boundary edges generate network messages.
//
// Result contracts vs the vertex-centric programs:
//
//   - SSSP, WCC, weighted SSSP: bit-identical. Their state is the unique
//     fixpoint of a min relaxation (integer hop counts, integer labels, and
//     per-path left-associated float sums reduced by exact min), which is
//     independent of relaxation order.
//   - BC: deterministic across runs and transports (all float accumulation
//     iterates contribution lists kept sorted by vertex id), but only
//     ULP-equal to the vertex-centric implementation, whose per-superstep
//     sums follow message arrival order.

// ssspSubgraph is the partition-centric unweighted SSSP/BFS program: each
// superstep seeds a worklist from boundary messages (and the injected
// source) and runs hop-count relaxation to local convergence.
type ssspSubgraph struct {
	dist    []int32
	queue   []int32 // worklist scratch, reused across supersteps
	changed sparseMark
}

// SSSPSubgraph builds the subgraph-centric single-source shortest-path job
// from src. Results are bit-identical to SSSP.
func SSSPSubgraph(g *graph.Graph, workers int, src graph.VertexID) core.JobSpec[uint32] {
	return core.JobSpec[uint32]{
		Graph:      g,
		NumWorkers: workers,
		Codec:      core.Uint32Codec{},
		Combiner:   core.MinUint32Combiner{},
		Scheduler:  core.NewAllAtOnce([]graph.VertexID{src}),
		NewPartitionProgram: func(_ int, _ *graph.Graph, owned []graph.VertexID) core.PartitionProgram[uint32] {
			p := &ssspSubgraph{dist: make([]int32, len(owned))}
			for i := range p.dist {
				p.dist[i] = -1
			}
			p.changed.init(len(owned))
			return p
		},
	}
}

// ComputePartition implements core.PartitionProgram.
func (p *ssspSubgraph) ComputePartition(pc *core.PartitionContext[uint32]) {
	work := p.queue[:0]
	p.changed.reset()
	for _, li := range pc.Active() {
		best := int32(-1)
		if pc.Injected(li) {
			best = 0
		}
		for _, m := range pc.Messages(li) {
			if best < 0 || int32(m) < best {
				best = int32(m)
			}
		}
		if best >= 0 && (p.dist[li] < 0 || best < p.dist[li]) {
			p.dist[li] = best
			work = append(work, li)
			p.changed.mark(li)
		}
	}
	// Local fixpoint: hop-count relaxation over the partition's own edges.
	// FIFO consumption keeps the relaxation in level order (LIFO re-settles
	// vertices many times on large connected partitions).
	var ops int64
	for head := 0; head < len(work); head++ {
		li := work[head]
		nd := p.dist[li] + 1
		for _, u := range pc.Neighbors(pc.VertexAt(li)) {
			ops++
			lu := pc.LocalIndex(u)
			if lu < 0 {
				continue
			}
			if p.dist[lu] < 0 || nd < p.dist[lu] {
				p.dist[lu] = nd
				work = append(work, lu)
				p.changed.mark(lu)
			}
		}
	}
	// Boundary push: every improved vertex offers its converged distance to
	// its remote out-neighbors; the min combiner collapses per destination.
	for _, li := range p.changed.list {
		d := uint32(p.dist[li]) + 1
		for _, u := range pc.Neighbors(pc.VertexAt(li)) {
			if !pc.IsLocal(u) {
				pc.Send(u, d)
			}
		}
	}
	p.queue = work
	pc.AddComputeOps(ops)
	pc.VoteAllToHalt()
}

// StateBytes implements core.StateReporter.
func (p *ssspSubgraph) StateBytes() int64 { return int64(4 * len(p.dist)) }

// SSSPSubgraphDistances extracts hop distances (-1 = unreachable).
func SSSPSubgraphDistances(res *core.JobResult[uint32], n int) []int32 {
	return mergeSubInt32(res, n, func(prog core.PartitionProgram[uint32]) []int32 {
		return prog.(*ssspSubgraph).dist
	})
}

// wccSubgraph is the partition-centric weakly-connected-components program:
// min-label flooding run to local convergence each superstep.
type wccSubgraph struct {
	label   []int32
	queue   []int32
	changed sparseMark
}

// WCCSubgraph builds the subgraph-centric connected-components job. Results
// are bit-identical to WCC (labels propagate along out-edges in both).
func WCCSubgraph(g *graph.Graph, workers int) core.JobSpec[uint32] {
	return core.JobSpec[uint32]{
		Graph:       g,
		NumWorkers:  workers,
		Codec:       core.Uint32Codec{},
		Combiner:    core.MinUint32Combiner{},
		ActivateAll: true,
		NewPartitionProgram: func(_ int, _ *graph.Graph, owned []graph.VertexID) core.PartitionProgram[uint32] {
			p := &wccSubgraph{label: make([]int32, len(owned))}
			for i := range p.label {
				p.label[i] = -1
			}
			p.changed.init(len(owned))
			return p
		},
	}
}

// ComputePartition implements core.PartitionProgram.
func (p *wccSubgraph) ComputePartition(pc *core.PartitionContext[uint32]) {
	work := p.queue[:0]
	p.changed.reset()
	if pc.Superstep() == 0 {
		for _, li := range pc.Active() {
			p.label[li] = int32(pc.VertexAt(li))
			work = append(work, li)
			p.changed.mark(li)
		}
	} else {
		for _, li := range pc.Active() {
			best := p.label[li]
			for _, m := range pc.Messages(li) {
				if int32(m) < best {
					best = int32(m)
				}
			}
			if best != p.label[li] {
				p.label[li] = best
				work = append(work, li)
				p.changed.mark(li)
			}
		}
	}
	var ops int64
	for head := 0; head < len(work); head++ { // FIFO: see ssspSubgraph
		li := work[head]
		l := p.label[li]
		for _, u := range pc.Neighbors(pc.VertexAt(li)) {
			ops++
			lu := pc.LocalIndex(u)
			if lu < 0 {
				continue
			}
			if l < p.label[lu] {
				p.label[lu] = l
				work = append(work, lu)
				p.changed.mark(lu)
			}
		}
	}
	for _, li := range p.changed.list {
		l := uint32(p.label[li])
		for _, u := range pc.Neighbors(pc.VertexAt(li)) {
			if !pc.IsLocal(u) {
				pc.Send(u, l)
			}
		}
	}
	p.queue = work
	pc.AddComputeOps(ops)
	pc.VoteAllToHalt()
}

// StateBytes implements core.StateReporter.
func (p *wccSubgraph) StateBytes() int64 { return int64(4 * len(p.label)) }

// WCCSubgraphLabels extracts component labels.
func WCCSubgraphLabels(res *core.JobResult[uint32], n int) []int32 {
	return mergeSubInt32(res, n, func(prog core.PartitionProgram[uint32]) []int32 {
		return prog.(*wccSubgraph).label
	})
}

// wssspSubgraph is the partition-centric weighted SSSP: Dijkstra-flavored
// worklist relaxation to local convergence (plain worklist, no heap — the
// fixpoint is the same and the engine re-relaxes across supersteps anyway).
type wssspSubgraph struct {
	wg      *graph.Weighted
	dist    []float64
	queue   []int32
	changed sparseMark
}

// WeightedSSSPSubgraph builds the subgraph-centric weighted shortest-path
// job from src. Results are bit-identical to WeightedSSSP: every candidate
// distance is the left-associated sum along one path, and exact min
// reduction over that candidate set is order-independent.
func WeightedSSSPSubgraph(wg *graph.Weighted, workers int, src graph.VertexID) core.JobSpec[float64] {
	return core.JobSpec[float64]{
		Graph:      wg.Graph,
		NumWorkers: workers,
		Codec:      WSSSPCodec{},
		Combiner:   MinFloat64Combiner{},
		Scheduler:  core.NewAllAtOnce([]graph.VertexID{src}),
		NewPartitionProgram: func(_ int, _ *graph.Graph, owned []graph.VertexID) core.PartitionProgram[float64] {
			p := &wssspSubgraph{wg: wg, dist: make([]float64, len(owned))}
			for i := range p.dist {
				p.dist[i] = math.Inf(1)
			}
			p.changed.init(len(owned))
			return p
		},
	}
}

// ComputePartition implements core.PartitionProgram.
func (p *wssspSubgraph) ComputePartition(pc *core.PartitionContext[float64]) {
	work := p.queue[:0]
	p.changed.reset()
	for _, li := range pc.Active() {
		best := math.Inf(1)
		if pc.Injected(li) {
			best = 0
		}
		for _, m := range pc.Messages(li) {
			if m < best {
				best = m
			}
		}
		if best < p.dist[li] {
			p.dist[li] = best
			work = append(work, li)
			p.changed.mark(li)
		}
	}
	var ops int64
	for head := 0; head < len(work); head++ { // FIFO: see ssspSubgraph
		li := work[head]
		d := p.dist[li]
		v := pc.VertexAt(li)
		nbrs := pc.Neighbors(v)
		wts := p.wg.EdgeWeights(v)
		for i, u := range nbrs {
			ops++
			lu := pc.LocalIndex(u)
			if lu < 0 {
				continue
			}
			if nd := d + float64(wts[i]); nd < p.dist[lu] {
				p.dist[lu] = nd
				work = append(work, lu)
				p.changed.mark(lu)
			}
		}
	}
	for _, li := range p.changed.list {
		d := p.dist[li]
		v := pc.VertexAt(li)
		nbrs := pc.Neighbors(v)
		wts := p.wg.EdgeWeights(v)
		for i, u := range nbrs {
			if !pc.IsLocal(u) {
				pc.Send(u, d+float64(wts[i]))
			}
		}
	}
	p.queue = work
	pc.AddComputeOps(ops)
	pc.VoteAllToHalt()
}

// StateBytes implements core.StateReporter.
func (p *wssspSubgraph) StateBytes() int64 { return int64(8 * len(p.dist)) }

// WeightedSubgraphDistances extracts final distances (+Inf = unreachable).
func WeightedSubgraphDistances(res *core.JobResult[float64], n int) []float64 {
	return mergeSubFloat64(res, n, func(prog core.PartitionProgram[float64]) []float64 {
		return prog.(*wssspSubgraph).dist
	})
}

// sparseMark is a dedup set over local vertex indices: O(1) mark with a
// reusable membership slice plus an iteration list in mark order.
type sparseMark struct {
	in   []bool
	list []int32
}

func (s *sparseMark) init(n int) { s.in = make([]bool, n) }

func (s *sparseMark) reset() {
	for _, li := range s.list {
		s.in[li] = false
	}
	s.list = s.list[:0]
}

func (s *sparseMark) mark(li int32) {
	if !s.in[li] {
		s.in[li] = true
		s.list = append(s.list, li)
	}
}

// mergeSubInt32 gathers a per-local-vertex int32 column from every worker's
// partition program into one global array.
func mergeSubInt32[M any](res *core.JobResult[M], n int, column func(core.PartitionProgram[M]) []int32) []int32 {
	out := make([]int32, n)
	for w, prog := range res.PartitionPrograms {
		col := column(prog)
		for li, v := range res.Owned[w] {
			out[v] = col[li]
		}
	}
	return out
}

// mergeSubFloat64 is mergeSubInt32 for float64 columns.
func mergeSubFloat64[M any](res *core.JobResult[M], n int, column func(core.PartitionProgram[M]) []float64) []float64 {
	out := make([]float64, n)
	for w, prog := range res.PartitionPrograms {
		col := column(prog)
		for li, v := range res.Owned[w] {
			out[v] = col[li]
		}
	}
	return out
}
