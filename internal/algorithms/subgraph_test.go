package algorithms

import (
	"math"
	"testing"

	"pregelnet/internal/cloud"
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/partition"
	"pregelnet/internal/transport"
)

// Equality tests for the subgraph-centric ports: SSSP, WCC, and weighted
// SSSP must be bit-identical to their vertex-centric counterparts (their
// state is an order-independent min fixpoint), over both the channel and
// TCP transports and under both hash and multilevel partitioning. BC is
// deterministic but accumulates floats in a different (id-sorted) order
// than the vertex program, so it is compared with an ULP-scale tolerance.

// subgraphHarness runs spec under the named transport and partitioner.
func subgraphHarness[M any](t *testing.T, spec core.JobSpec[M], transportName string, part partition.Partitioner, workers int) *core.JobResult[M] {
	t.Helper()
	if transportName == "tcp" {
		net, err := transport.NewTCPNetwork(workers)
		if err != nil {
			t.Fatal(err)
		}
		spec.Network = net
		defer net.Close()
	}
	if part != nil {
		spec.Assignment = part.Partition(spec.Graph, workers)
	}
	res, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func eachTransportAndPartitioner(t *testing.T, f func(t *testing.T, transportName string, part partition.Partitioner)) {
	for _, tr := range []string{"channel", "tcp"} {
		for _, p := range []partition.Partitioner{partition.Hash{}, partition.NewMultilevel()} {
			t.Run(tr+"/"+p.Name(), func(t *testing.T) { f(t, tr, p) })
		}
	}
}

func TestSubgraphSSSPBitIdentical(t *testing.T) {
	g := graph.ErdosRenyi(300, 900, 29)
	want := graph.BFS(g, 3)
	eachTransportAndPartitioner(t, func(t *testing.T, tr string, p partition.Partitioner) {
		res := subgraphHarness(t, SSSPSubgraph(g, 4, 3), tr, p, 4)
		got := SSSPSubgraphDistances(res, g.NumVertices())
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("vertex %d: dist %d, want %d", v, got[v], want[v])
			}
		}
	})
}

func TestSubgraphWCCBitIdentical(t *testing.T) {
	g := graph.ErdosRenyi(300, 320, 31) // sparse: many components
	vres, err := core.Run(WCC(g, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := WCCLabels(vres, g.NumVertices())
	eachTransportAndPartitioner(t, func(t *testing.T, tr string, p partition.Partitioner) {
		res := subgraphHarness(t, WCCSubgraph(g, 4), tr, p, 4)
		got := WCCSubgraphLabels(res, g.NumVertices())
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("vertex %d: label %d, want %d", v, got[v], want[v])
			}
		}
	})
}

func TestSubgraphWeightedSSSPBitIdentical(t *testing.T) {
	g := graph.ErdosRenyi(250, 750, 23)
	wg := graph.RandomWeights(g, 1, 5, 7)
	vres, err := core.Run(WeightedSSSP(wg, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	want := WeightedDistances(vres, g.NumVertices())
	eachTransportAndPartitioner(t, func(t *testing.T, tr string, p partition.Partitioner) {
		res := subgraphHarness(t, WeightedSSSPSubgraph(wg, 4, 0), tr, p, 4)
		got := WeightedSubgraphDistances(res, g.NumVertices())
		for v := range want {
			// Bit-identical: exact min over per-path left-associated sums.
			if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
				t.Fatalf("vertex %d: dist %v, want %v (not bit-identical)", v, got[v], want[v])
			}
		}
	})
}

func checkBCSubgraphMatches(t *testing.T, g *graph.Graph, workers int, roots []graph.VertexID, tr string, p partition.Partitioner) *core.JobResult[BCMsg] {
	t.Helper()
	res := subgraphHarness(t, BCSubgraph(g, workers, roots), tr, p, workers)
	got := BCSubgraphScores(res, g.NumVertices())
	want := BCSequential(g, roots)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
			t.Fatalf("vertex %d: BC %v, want %v", v, got[v], want[v])
		}
	}
	return res
}

func TestSubgraphBCMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name    string
		g       *graph.Graph
		workers int
		nroots  int
	}{
		{"path", graph.Path(9), 3, 9},
		{"star", graph.Star(8), 3, 8},
		{"ring", graph.Ring(4), 2, 4}, // two equal shortest paths: sigma must split credit
		{"ba", graph.BarabasiAlbert(200, 3, 21), 4, 25},
	} {
		t.Run(tc.name, func(t *testing.T) {
			roots := Sources(tc.g, tc.nroots)
			checkBCSubgraphMatches(t, tc.g, tc.workers, roots, "channel", partition.Hash{})
		})
	}
}

func TestSubgraphBCRandomGraphAllRoots(t *testing.T) {
	g := graph.ErdosRenyi(120, 360, 13)
	lcc, _ := graph.LargestComponentSubgraph(g)
	roots := Sources(lcc, lcc.NumVertices())
	eachTransportAndPartitioner(t, func(t *testing.T, tr string, p partition.Partitioner) {
		checkBCSubgraphMatches(t, lcc, 4, roots, tr, p)
	})
}

func TestSubgraphBCMatchesVertexCentric(t *testing.T) {
	// The two models accumulate floats in different orders, so agreement is
	// ULP-scale, not bit-exact (documented in DESIGN.md).
	g := graph.BarabasiAlbert(150, 3, 41)
	roots := Sources(g, 20)
	vres, err := core.Run(BC(g, 4, core.NewAllAtOnce(roots)))
	if err != nil {
		t.Fatal(err)
	}
	want := BCScores(vres, g.NumVertices())
	res := subgraphHarness(t, BCSubgraph(g, 4, roots), "channel", partition.NewMultilevel(), 4)
	got := BCSubgraphScores(res, g.NumVertices())
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
			t.Fatalf("vertex %d: subgraph %v vs vertex %v", v, got[v], want[v])
		}
	}
}

func TestSubgraphBCDeterministicAcrossTransports(t *testing.T) {
	// Unlike the vertex program (whose sums follow message arrival order),
	// the subgraph port sorts all contribution lists by vertex id, so scores
	// must be BIT-identical across transports and partitioners.
	g := graph.BarabasiAlbert(180, 3, 55)
	roots := Sources(g, 20)
	var base []float64
	eachTransportAndPartitioner(t, func(t *testing.T, tr string, p partition.Partitioner) {
		res := subgraphHarness(t, BCSubgraph(g, 4, roots), tr, p, 4)
		got := BCSubgraphScores(res, g.NumVertices())
		if base == nil {
			base = got
			return
		}
		for v := range base {
			if math.Float64bits(got[v]) != math.Float64bits(base[v]) {
				t.Fatalf("vertex %d: %v vs %v (not bit-identical)", v, got[v], base[v])
			}
		}
	})
}

func TestSubgraphSuperstepAndMessageReduction(t *testing.T) {
	// The tentpole claim, in miniature: on a high-diameter graph under
	// multilevel partitioning, partition-local convergence must cut
	// supersteps by >=3x and remote message volume by >=2x vs vertex-centric.
	g := graph.Path(512)
	ml := partition.NewMultilevel()

	vspec := SSSP(g, 4, 0)
	vspec.Assignment = ml.Partition(g, 4)
	vres, err := core.Run(vspec)
	if err != nil {
		t.Fatal(err)
	}
	sres := subgraphHarness(t, SSSPSubgraph(g, 4, 0), "channel", ml, 4)

	got := SSSPSubgraphDistances(sres, g.NumVertices())
	want := graph.BFS(g, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: dist %d, want %d", v, got[v], want[v])
		}
	}
	if 3*sres.Supersteps > vres.Supersteps {
		t.Errorf("supersteps: subgraph %d vs vertex %d, want >=3x reduction", sres.Supersteps, vres.Supersteps)
	}

	// Message volume needs a workload where the vertex model re-floods
	// boundary edges as values improve superstep after superstep: min-label
	// WCC on a ring. (On the path SSSP above each boundary edge is crossed
	// once in either model, so message counts tie.)
	rg := graph.Ring(256)
	wv := WCC(rg, 4)
	wv.Assignment = ml.Partition(rg, 4)
	wvres, err := core.Run(wv)
	if err != nil {
		t.Fatal(err)
	}
	wsres := subgraphHarness(t, WCCSubgraph(rg, 4), "channel", ml, 4)
	sumRemote := func(res *core.JobResult[uint32]) (n int64) {
		for _, s := range res.Steps {
			n += s.SentRemote
		}
		return n
	}
	if 3*wsres.Supersteps > wvres.Supersteps {
		t.Errorf("WCC supersteps: subgraph %d vs vertex %d, want >=3x reduction", wsres.Supersteps, wvres.Supersteps)
	}
	if vr, sr := sumRemote(wvres), sumRemote(wsres); sr*2 > vr {
		t.Errorf("WCC remote messages: subgraph %d vs vertex %d, want >=2x reduction", sr, vr)
	}
}

// TestChaosSoakSubgraphTCP drives the hardest subgraph program (BC, with
// its aggregate-driven phase machine and per-root partition state) over the
// real TCP transport under a seeded fault plan — duplicated control
// messages, transient blob errors, and a scripted VM restart recovered via
// confined recovery — and requires the scores to be bit-identical to a
// clean run (the subgraph port is fully deterministic).
func TestChaosSoakSubgraphTCP(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 77)
	roots := Sources(g, 15)

	clean := subgraphHarness(t, BCSubgraph(g, 4, roots), "channel", partition.NewMultilevel(), 4)
	want := BCSubgraphScores(clean, g.NumVertices())

	spec := BCSubgraph(g, 4, roots)
	spec.Assignment = partition.NewMultilevel().Partition(g, 4)
	spec.CheckpointEvery = 2
	spec.CheckpointStore = cloud.NewBlobStore()
	spec.Chaos = cloud.NewChaos(cloud.FaultPlan{
		Seed:               4242,
		BlobErrorProb:      1,
		MaxBlobErrors:      3,
		QueueDuplicateProb: 1,
		VMRestarts:         []cloud.VMRestart{{Worker: 1, Superstep: 3}},
	})
	net, err := transport.NewTCPNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	spec.Network = net

	res, err := core.Run(spec)
	if err != nil {
		t.Fatalf("chaos soak failed: %v", err)
	}
	got := BCSubgraphScores(res, g.NumVertices())
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("vertex %d: %v, want %v (recovery changed the result)", v, got[v], want[v])
		}
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want >= 1 (scripted VM restart)", res.Recoveries)
	}
	if res.VMRestarts != 1 {
		t.Errorf("VMRestarts = %d, want 1", res.VMRestarts)
	}
	if res.DuplicatesDropped == 0 {
		t.Error("DuplicatesDropped = 0, want > 0 (every control message was duplicated)")
	}
}
