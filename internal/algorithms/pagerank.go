package algorithms

import (
	"pregelnet/internal/core"
	"pregelnet/internal/graph"
)

// PageRank is the paper's uniform-communication baseline: every superstep,
// every vertex passes one message along every out-edge, giving the flat
// message profile of Fig 3 and predictable resource usage.
type PageRank struct {
	// Iterations is the number of rank-update rounds (the paper runs 30).
	Iterations int
	// Damping is the damping factor (0.85 standard).
	Damping float64
}

// DefaultPageRank returns the paper's configuration: 30 iterations, 0.85.
func DefaultPageRank() PageRank {
	return PageRank{Iterations: 30, Damping: 0.85}
}

type pageRankProgram struct {
	cfg   PageRank
	ranks []float64
	n     float64
}

// Spec builds the BSP job for PageRank on g with the given worker count.
// Callers may override Assignment, CostModel, etc. before running.
func (pr PageRank) Spec(g *graph.Graph, workers int) core.JobSpec[float64] {
	return core.JobSpec[float64]{
		Graph:      g,
		NumWorkers: workers,
		Codec:      core.Float64Codec{},
		Combiner:   core.SumCombiner{},
		NewProgram: func(_ int, gg *graph.Graph, owned []graph.VertexID) core.VertexProgram[float64] {
			return &pageRankProgram{cfg: pr, ranks: make([]float64, len(owned)), n: float64(gg.NumVertices())}
		},
		ActivateAll: true,
	}
}

// Compute implements core.VertexProgram.
func (p *pageRankProgram) Compute(ctx *core.Context[float64], msgs []float64) {
	li := ctx.LocalIndex()
	if ctx.Superstep() == 0 {
		p.ranks[li] = 1 / p.n
	} else {
		var sum float64
		for _, m := range msgs {
			sum += m
		}
		p.ranks[li] = (1-p.cfg.Damping)/p.n + p.cfg.Damping*sum
	}
	if ctx.Superstep() < p.cfg.Iterations {
		if d := ctx.Degree(); d > 0 {
			ctx.SendToNeighbors(p.ranks[li] / float64(d))
		}
	} else {
		ctx.VoteToHalt()
	}
}

// StateBytes implements core.StateReporter.
func (p *pageRankProgram) StateBytes() int64 { return int64(8 * len(p.ranks)) }

// Ranks extracts the final global rank vector.
func Ranks(res *core.JobResult[float64], n int) []float64 {
	return mergeFloat64(res, n, func(prog core.VertexProgram[float64]) []float64 {
		return prog.(*pageRankProgram).ranks
	})
}

// PageRankSequential is the single-machine reference implementation used to
// validate the BSP version.
func PageRankSequential(g *graph.Graph, iterations int, damping float64) []float64 {
	n := g.NumVertices()
	ranks := make([]float64, n)
	next := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		base := (1 - damping) / float64(n)
		for i := range next {
			next[i] = base
		}
		for v := 0; v < n; v++ {
			d := g.OutDegree(graph.VertexID(v))
			if d == 0 {
				continue
			}
			share := damping * ranks[v] / float64(d)
			for _, u := range g.Neighbors(graph.VertexID(v)) {
				next[u] += share
			}
		}
		ranks, next = next, ranks
	}
	return ranks
}
