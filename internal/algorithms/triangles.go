package algorithms

import (
	"encoding/binary"
	"sort"
	"sync/atomic"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
)

// Triangle counting on BSP with the classic degree-ordered two-superstep
// exchange: in superstep 0 every vertex v sends, to each neighbor u with
// u > v, the subset of v's neighbors greater than u; in superstep 1 each
// receiver intersects the candidate list with its own adjacency. Every
// triangle {v < u < w} is counted exactly once, at u.

// TriMsg carries candidate third-vertices for triangle closure.
type TriMsg struct {
	Candidates []uint32
}

// TriCodec encodes a TriMsg as a count-prefixed uint32 list.
type TriCodec struct{}

// Append implements core.Codec.
func (TriCodec) Append(buf []byte, m TriMsg) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(m.Candidates)))
	buf = append(buf, b[:]...)
	for _, c := range m.Candidates {
		binary.LittleEndian.PutUint32(b[:], c)
		buf = append(buf, b[:]...)
	}
	return buf
}

// Decode implements core.Codec.
func (TriCodec) Decode(data []byte) (TriMsg, int) {
	n := int(binary.LittleEndian.Uint32(data))
	m := TriMsg{Candidates: make([]uint32, n)}
	off := 4
	for i := 0; i < n; i++ {
		m.Candidates[i] = binary.LittleEndian.Uint32(data[off:])
		off += 4
	}
	return m, off
}

// Size implements core.Codec.
func (TriCodec) Size(m TriMsg) int { return 4 + 4*len(m.Candidates) }

type triangleProgram struct {
	g     *graph.Graph
	count atomic.Int64
}

// Triangles builds the triangle-counting job.
func Triangles(g *graph.Graph, workers int) core.JobSpec[TriMsg] {
	prog := &triangleProgram{g: g}
	return core.JobSpec[TriMsg]{
		Graph:      g,
		NumWorkers: workers,
		Codec:      TriCodec{},
		// One shared program instance: the counter is atomic and vertices
		// never share other state.
		NewProgram: func(int, *graph.Graph, []graph.VertexID) core.VertexProgram[TriMsg] {
			return prog
		},
		ActivateAll: true,
	}
}

// Compute implements core.VertexProgram.
func (p *triangleProgram) Compute(ctx *core.Context[TriMsg], msgs []TriMsg) {
	self := uint32(ctx.Vertex())
	switch ctx.Superstep() {
	case 0:
		nbrs := ctx.Neighbors()
		// Neighbors are sorted: for each u > v, candidates are w > u.
		for i, u := range nbrs {
			if uint32(u) <= self {
				continue
			}
			var cands []uint32
			for _, w := range nbrs[i+1:] {
				if uint32(w) > uint32(u) {
					cands = append(cands, uint32(w))
				}
			}
			if len(cands) > 0 {
				ctx.Send(u, TriMsg{Candidates: cands})
			}
		}
	case 1:
		nbrs := ctx.Neighbors()
		var found int64
		for _, m := range msgs {
			for _, c := range m.Candidates {
				idx := sort.Search(len(nbrs), func(i int) bool { return uint32(nbrs[i]) >= c })
				if idx < len(nbrs) && uint32(nbrs[idx]) == c {
					found++
				}
			}
		}
		if found > 0 {
			p.count.Add(found)
			ctx.Aggregate("triangles", float64(found))
		}
	}
	ctx.VoteToHalt()
}

// TriangleCount extracts the global triangle count.
func TriangleCount(res *core.JobResult[TriMsg]) int64 {
	// All per-worker Programs alias the same instance.
	return res.Programs[0].(*triangleProgram).count.Load()
}

// TrianglesSequential is the reference implementation (ordered
// intersection).
func TrianglesSequential(g *graph.Graph) int64 {
	var count int64
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(graph.VertexID(v))
		for i, u := range nbrs {
			if int(u) <= v {
				continue
			}
			for _, w := range nbrs[i+1:] {
				if w > u && g.HasEdge(u, w) {
					count++
				}
			}
		}
	}
	return count
}
