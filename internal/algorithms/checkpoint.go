package algorithms

import (
	"bufio"
	"encoding/binary"
	"io"
	"math"

	"pregelnet/internal/core"
)

// Checkpoint and migration support for every built-in vertex program. Each
// program serializes per vertex (core.Migratable: SnapshotVertex /
// RestoreVertex, used by live elastic resizes to repartition state onto a
// new worker layout), and the whole-partition Snapshot/Restore pair
// (core.Checkpointable, used by fault recovery) is the concatenation of the
// per-vertex records — one format, two granularities.

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func writeF64(w io.Writer, v float64) error { return writeU64(w, math.Float64bits(v)) }

func readF64(r io.Reader) (float64, error) {
	u, err := readU64(r)
	return math.Float64frombits(u), err
}

// snapshotAll loops a per-vertex writer over the partition through one
// buffered writer; restoreAll is its inverse.
func snapshotAll(w io.Writer, n int, vertex func(li int32, w io.Writer) error) error {
	bw := bufio.NewWriter(w)
	for li := 0; li < n; li++ {
		if err := vertex(int32(li), bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func restoreAll(r io.Reader, n int, vertex func(li int32, r io.Reader) error) error {
	br := bufio.NewReader(r)
	for li := 0; li < n; li++ {
		if err := vertex(int32(li), br); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotVertex implements core.Migratable.
func (p *pageRankProgram) SnapshotVertex(li int32, w io.Writer) error {
	return writeF64(w, p.ranks[li])
}

// RestoreVertex implements core.Migratable.
func (p *pageRankProgram) RestoreVertex(li int32, r io.Reader) error {
	v, err := readF64(r)
	if err != nil {
		return err
	}
	p.ranks[li] = v
	return nil
}

// Snapshot implements core.Checkpointable.
func (p *pageRankProgram) Snapshot(w io.Writer) error {
	return snapshotAll(w, len(p.ranks), p.SnapshotVertex)
}

// Restore implements core.Checkpointable.
func (p *pageRankProgram) Restore(r io.Reader) error {
	return restoreAll(r, len(p.ranks), p.RestoreVertex)
}

// SnapshotVertex implements core.Migratable.
func (p *ssspProgram) SnapshotVertex(li int32, w io.Writer) error {
	return writeU64(w, uint64(uint32(p.dist[li])))
}

// RestoreVertex implements core.Migratable.
func (p *ssspProgram) RestoreVertex(li int32, r io.Reader) error {
	v, err := readU64(r)
	if err != nil {
		return err
	}
	p.dist[li] = int32(uint32(v))
	return nil
}

// Snapshot implements core.Checkpointable.
func (p *ssspProgram) Snapshot(w io.Writer) error {
	return snapshotAll(w, len(p.dist), p.SnapshotVertex)
}

// Restore implements core.Checkpointable.
func (p *ssspProgram) Restore(r io.Reader) error {
	return restoreAll(r, len(p.dist), p.RestoreVertex)
}

// SnapshotVertex implements core.Migratable.
func (p *wccProgram) SnapshotVertex(li int32, w io.Writer) error {
	return writeU64(w, uint64(uint32(p.label[li])))
}

// RestoreVertex implements core.Migratable.
func (p *wccProgram) RestoreVertex(li int32, r io.Reader) error {
	v, err := readU64(r)
	if err != nil {
		return err
	}
	p.label[li] = int32(uint32(v))
	return nil
}

// Snapshot implements core.Checkpointable.
func (p *wccProgram) Snapshot(w io.Writer) error {
	return snapshotAll(w, len(p.label), p.SnapshotVertex)
}

// Restore implements core.Checkpointable.
func (p *wccProgram) Restore(r io.Reader) error {
	return restoreAll(r, len(p.label), p.RestoreVertex)
}

// SnapshotVertex implements core.Migratable.
func (p *lpaProgram) SnapshotVertex(li int32, w io.Writer) error {
	return writeU64(w, uint64(uint32(p.label[li])))
}

// RestoreVertex implements core.Migratable.
func (p *lpaProgram) RestoreVertex(li int32, r io.Reader) error {
	v, err := readU64(r)
	if err != nil {
		return err
	}
	p.label[li] = int32(uint32(v))
	return nil
}

// Snapshot implements core.Checkpointable.
func (p *lpaProgram) Snapshot(w io.Writer) error {
	return snapshotAll(w, len(p.label), p.SnapshotVertex)
}

// Restore implements core.Checkpointable.
func (p *lpaProgram) Restore(r io.Reader) error {
	return restoreAll(r, len(p.label), p.RestoreVertex)
}

// SnapshotVertex implements core.Migratable.
func (p *apspProgram) SnapshotVertex(li int32, w io.Writer) error {
	dists := p.dists[li]
	if err := writeU64(w, uint64(len(dists))); err != nil {
		return err
	}
	for root, d := range dists {
		if err := writeU64(w, uint64(root)); err != nil {
			return err
		}
		if err := writeU64(w, uint64(uint32(d))); err != nil {
			return err
		}
	}
	return nil
}

// RestoreVertex implements core.Migratable. The vertex's previous state (if
// any) is replaced and the program's state-byte meter adjusted accordingly.
func (p *apspProgram) RestoreVertex(li int32, r io.Reader) error {
	n, err := readU64(r)
	if err != nil {
		return err
	}
	if old := p.dists[li]; old != nil {
		p.stateBytes.Add(-int64(16 * len(old)))
	}
	if n == 0 {
		p.dists[li] = nil
		return nil
	}
	m := make(map[uint32]int32, n)
	for j := uint64(0); j < n; j++ {
		root, err := readU64(r)
		if err != nil {
			return err
		}
		d, err := readU64(r)
		if err != nil {
			return err
		}
		m[uint32(root)] = int32(uint32(d))
	}
	p.dists[li] = m
	p.stateBytes.Add(int64(16 * n))
	return nil
}

// Snapshot implements core.Checkpointable.
func (p *apspProgram) Snapshot(w io.Writer) error {
	return snapshotAll(w, len(p.dists), p.SnapshotVertex)
}

// Restore implements core.Checkpointable.
func (p *apspProgram) Restore(r io.Reader) error {
	p.stateBytes.Store(0)
	for li := range p.dists {
		p.dists[li] = nil
	}
	return restoreAll(r, len(p.dists), p.RestoreVertex)
}

// SnapshotVertex implements core.Migratable. BC's per-vertex traversal
// state (distance, sigma, delta, predecessor lists, ack/backward counters)
// is fully serialized so an in-flight multi-root computation can resume.
func (p *bcProgram) SnapshotVertex(li int32, w io.Writer) error {
	if err := writeF64(w, p.scores[li]); err != nil {
		return err
	}
	states := p.states[li]
	if err := writeU64(w, uint64(len(states))); err != nil {
		return err
	}
	for root, st := range states {
		if err := writeU64(w, uint64(root)); err != nil {
			return err
		}
		for _, v := range []uint64{uint64(uint32(st.dist)), uint64(uint32(st.discovered)),
			uint64(uint32(st.succ)), uint64(uint32(st.back))} {
			if err := writeU64(w, v); err != nil {
				return err
			}
		}
		if err := writeF64(w, st.sigma); err != nil {
			return err
		}
		if err := writeF64(w, st.delta); err != nil {
			return err
		}
		if err := writeU64(w, uint64(len(st.preds))); err != nil {
			return err
		}
		for _, pred := range st.preds {
			if err := writeU64(w, uint64(pred)); err != nil {
				return err
			}
		}
	}
	return nil
}

// RestoreVertex implements core.Migratable.
func (p *bcProgram) RestoreVertex(li int32, r io.Reader) error {
	score, err := readF64(r)
	if err != nil {
		return err
	}
	p.scores[li] = score
	n, err := readU64(r)
	if err != nil {
		return err
	}
	if old := p.states[li]; old != nil {
		for _, st := range old {
			p.stateBytes.Add(-st.bytes)
		}
	}
	if n == 0 {
		p.states[li] = nil
		return nil
	}
	states := make(map[uint32]*bcRootState, n)
	for j := uint64(0); j < n; j++ {
		root, err := readU64(r)
		if err != nil {
			return err
		}
		var ints [4]uint64
		for k := range ints {
			if ints[k], err = readU64(r); err != nil {
				return err
			}
		}
		sigma, err := readF64(r)
		if err != nil {
			return err
		}
		delta, err := readF64(r)
		if err != nil {
			return err
		}
		nPreds, err := readU64(r)
		if err != nil {
			return err
		}
		st := &bcRootState{
			dist:       int32(uint32(ints[0])),
			discovered: int32(uint32(ints[1])),
			succ:       int32(uint32(ints[2])),
			back:       int32(uint32(ints[3])),
			sigma:      sigma,
			delta:      delta,
			preds:      make([]uint32, nPreds),
			bytes:      bcStateBaseBytes + int64(8*nPreds),
		}
		for k := range st.preds {
			pred, err := readU64(r)
			if err != nil {
				return err
			}
			st.preds[k] = uint32(pred)
		}
		states[uint32(root)] = st
		p.stateBytes.Add(st.bytes)
	}
	p.states[li] = states
	return nil
}

// Snapshot implements core.Checkpointable.
func (p *bcProgram) Snapshot(w io.Writer) error {
	return snapshotAll(w, len(p.scores), p.SnapshotVertex)
}

// Restore implements core.Checkpointable.
func (p *bcProgram) Restore(r io.Reader) error {
	p.stateBytes.Store(0)
	for li := range p.states {
		p.states[li] = nil
	}
	return restoreAll(r, len(p.scores), p.RestoreVertex)
}

// Compile-time checks that every program stays migratable (which embeds
// Checkpointable).
var (
	_ core.Migratable = (*pageRankProgram)(nil)
	_ core.Migratable = (*ssspProgram)(nil)
	_ core.Migratable = (*wccProgram)(nil)
	_ core.Migratable = (*lpaProgram)(nil)
	_ core.Migratable = (*apspProgram)(nil)
	_ core.Migratable = (*bcProgram)(nil)
)
