package algorithms

import (
	"bufio"
	"encoding/binary"
	"io"
	"math"

	"pregelnet/internal/core"
)

// Checkpoint support (core.Checkpointable) for every built-in vertex
// program, enabling the engine's fault recovery for real workloads.

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func writeF64(w io.Writer, v float64) error { return writeU64(w, math.Float64bits(v)) }

func readF64(r io.Reader) (float64, error) {
	u, err := readU64(r)
	return math.Float64frombits(u), err
}

// Snapshot implements core.Checkpointable.
func (p *pageRankProgram) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range p.ranks {
		if err := writeF64(bw, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Restore implements core.Checkpointable.
func (p *pageRankProgram) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	for i := range p.ranks {
		v, err := readF64(br)
		if err != nil {
			return err
		}
		p.ranks[i] = v
	}
	return nil
}

// Snapshot implements core.Checkpointable.
func (p *ssspProgram) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, d := range p.dist {
		if err := writeU64(bw, uint64(uint32(d))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Restore implements core.Checkpointable.
func (p *ssspProgram) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	for i := range p.dist {
		v, err := readU64(br)
		if err != nil {
			return err
		}
		p.dist[i] = int32(uint32(v))
	}
	return nil
}

// Snapshot implements core.Checkpointable.
func (p *wccProgram) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, l := range p.label {
		if err := writeU64(bw, uint64(uint32(l))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Restore implements core.Checkpointable.
func (p *wccProgram) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	for i := range p.label {
		v, err := readU64(br)
		if err != nil {
			return err
		}
		p.label[i] = int32(uint32(v))
	}
	return nil
}

// Snapshot implements core.Checkpointable.
func (p *lpaProgram) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, l := range p.label {
		if err := writeU64(bw, uint64(uint32(l))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Restore implements core.Checkpointable.
func (p *lpaProgram) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	for i := range p.label {
		v, err := readU64(br)
		if err != nil {
			return err
		}
		p.label[i] = int32(uint32(v))
	}
	return nil
}

// Snapshot implements core.Checkpointable.
func (p *apspProgram) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, dists := range p.dists {
		if err := writeU64(bw, uint64(len(dists))); err != nil {
			return err
		}
		for root, d := range dists {
			if err := writeU64(bw, uint64(root)); err != nil {
				return err
			}
			if err := writeU64(bw, uint64(uint32(d))); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Restore implements core.Checkpointable.
func (p *apspProgram) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	p.stateBytes.Store(0)
	for li := range p.dists {
		n, err := readU64(br)
		if err != nil {
			return err
		}
		if n == 0 {
			p.dists[li] = nil
			continue
		}
		m := make(map[uint32]int32, n)
		for j := uint64(0); j < n; j++ {
			root, err := readU64(br)
			if err != nil {
				return err
			}
			d, err := readU64(br)
			if err != nil {
				return err
			}
			m[uint32(root)] = int32(uint32(d))
		}
		p.dists[li] = m
		p.stateBytes.Add(int64(16 * n))
	}
	return nil
}

// Snapshot implements core.Checkpointable. BC's per-vertex traversal state
// (distance, sigma, delta, predecessor lists, ack/backward counters) is
// fully serialized so an in-flight multi-root computation can resume.
func (p *bcProgram) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for li := range p.scores {
		if err := writeF64(bw, p.scores[li]); err != nil {
			return err
		}
		states := p.states[li]
		if err := writeU64(bw, uint64(len(states))); err != nil {
			return err
		}
		for root, st := range states {
			if err := writeU64(bw, uint64(root)); err != nil {
				return err
			}
			for _, v := range []uint64{uint64(uint32(st.dist)), uint64(uint32(st.discovered)),
				uint64(uint32(st.succ)), uint64(uint32(st.back))} {
				if err := writeU64(bw, v); err != nil {
					return err
				}
			}
			if err := writeF64(bw, st.sigma); err != nil {
				return err
			}
			if err := writeF64(bw, st.delta); err != nil {
				return err
			}
			if err := writeU64(bw, uint64(len(st.preds))); err != nil {
				return err
			}
			for _, pred := range st.preds {
				if err := writeU64(bw, uint64(pred)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Restore implements core.Checkpointable.
func (p *bcProgram) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	p.stateBytes.Store(0)
	for li := range p.scores {
		score, err := readF64(br)
		if err != nil {
			return err
		}
		p.scores[li] = score
		n, err := readU64(br)
		if err != nil {
			return err
		}
		if n == 0 {
			p.states[li] = nil
			continue
		}
		states := make(map[uint32]*bcRootState, n)
		for j := uint64(0); j < n; j++ {
			root, err := readU64(br)
			if err != nil {
				return err
			}
			var ints [4]uint64
			for k := range ints {
				if ints[k], err = readU64(br); err != nil {
					return err
				}
			}
			sigma, err := readF64(br)
			if err != nil {
				return err
			}
			delta, err := readF64(br)
			if err != nil {
				return err
			}
			nPreds, err := readU64(br)
			if err != nil {
				return err
			}
			st := &bcRootState{
				dist:       int32(uint32(ints[0])),
				discovered: int32(uint32(ints[1])),
				succ:       int32(uint32(ints[2])),
				back:       int32(uint32(ints[3])),
				sigma:      sigma,
				delta:      delta,
				preds:      make([]uint32, nPreds),
				bytes:      bcStateBaseBytes + int64(8*nPreds),
			}
			for k := range st.preds {
				pred, err := readU64(br)
				if err != nil {
					return err
				}
				st.preds[k] = uint32(pred)
			}
			states[uint32(root)] = st
			p.stateBytes.Add(st.bytes)
		}
		p.states[li] = states
	}
	return nil
}

// Compile-time checks that every program stays Checkpointable.
var (
	_ core.Checkpointable = (*pageRankProgram)(nil)
	_ core.Checkpointable = (*ssspProgram)(nil)
	_ core.Checkpointable = (*wccProgram)(nil)
	_ core.Checkpointable = (*lpaProgram)(nil)
	_ core.Checkpointable = (*apspProgram)(nil)
	_ core.Checkpointable = (*bcProgram)(nil)
)
