package algorithms

import (
	"math"
	"testing"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
	"pregelnet/internal/partition"
)

func TestPageRankMatchesSequential(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, 5)
	pr := DefaultPageRank()
	res, err := core.Run(pr.Spec(g, 4))
	if err != nil {
		t.Fatal(err)
	}
	got := Ranks(res, g.NumVertices())
	want := PageRankSequential(g, pr.Iterations, pr.Damping)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("vertex %d: rank %v, want %v", v, got[v], want[v])
		}
	}
	// Ranks of a connected graph sum to ~1.
	var sum float64
	for _, r := range got {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %v, want 1", sum)
	}
}

func TestPageRankRunsExactIterations(t *testing.T) {
	g := graph.Ring(20)
	res, err := core.Run(PageRank{Iterations: 10, Damping: 0.85}.Spec(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Supersteps = iterations + final halt step.
	if res.Supersteps != 11 {
		t.Errorf("supersteps = %d, want 11", res.Supersteps)
	}
}

func TestPageRankUniformMessageProfile(t *testing.T) {
	// The paper's Fig 3: PageRank sends a constant number of messages per
	// superstep (one per edge without a combiner; fewer but still constant
	// with the sum combiner merging same-destination shares).
	g := graph.ErdosRenyi(200, 600, 8)
	plain := PageRank{Iterations: 8, Damping: 0.85}.Spec(g, 4)
	plain.Combiner = nil
	resPlain, err := core.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got := resPlain.Steps[i].TotalSent(); got != int64(g.NumEdges()) {
			t.Errorf("plain step %d sent %d, want %d", i, got, g.NumEdges())
		}
	}
	combined, err := core.Run(PageRank{Iterations: 8, Damping: 0.85}.Spec(g, 4))
	if err != nil {
		t.Fatal(err)
	}
	first := combined.Steps[0].TotalSent()
	if first > int64(g.NumEdges()) {
		t.Errorf("combined sends %d exceed edge count %d", first, g.NumEdges())
	}
	for i := 1; i < 8; i++ {
		if got := combined.Steps[i].TotalSent(); got != first {
			t.Errorf("combined step %d sent %d, want constant %d", i, got, first)
		}
	}
}

func checkBCMatches(t *testing.T, g *graph.Graph, workers int, roots []graph.VertexID, sched core.SwathScheduler) *core.JobResult[BCMsg] {
	t.Helper()
	res, err := core.Run(BC(g, workers, sched))
	if err != nil {
		t.Fatal(err)
	}
	got := BCScores(res, g.NumVertices())
	want := BCSequential(g, roots)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-6*(1+math.Abs(want[v])) {
			t.Fatalf("vertex %d: BC %v, want %v", v, got[v], want[v])
		}
	}
	return res
}

func TestBCPathGraph(t *testing.T) {
	// On a path 0-1-2-3-4 with all roots, vertex 2 lies on 8 ordered pairs...
	// validated against the sequential reference.
	g := graph.Path(5)
	roots := Sources(g, 5)
	checkBCMatches(t, g, 2, roots, core.NewAllAtOnce(roots))
}

func TestBCStarGraph(t *testing.T) {
	// Star: center lies on every leaf-leaf shortest path.
	g := graph.Star(8)
	roots := Sources(g, 8)
	res := checkBCMatches(t, g, 3, roots, core.NewAllAtOnce(roots))
	scores := BCScores(res, g.NumVertices())
	// Ordered leaf pairs: 7*6 = 42, all through the center.
	if math.Abs(scores[0]-42) > 1e-9 {
		t.Errorf("center score = %v, want 42", scores[0])
	}
	for v := 1; v < 8; v++ {
		if scores[v] != 0 {
			t.Errorf("leaf %d score = %v, want 0", v, scores[v])
		}
	}
}

func TestBCMultipleShortestPaths(t *testing.T) {
	// A 4-cycle has two equal shortest paths between opposite corners;
	// sigma accounting must split credit.
	g := graph.Ring(4)
	roots := Sources(g, 4)
	res := checkBCMatches(t, g, 2, roots, core.NewAllAtOnce(roots))
	scores := BCScores(res, g.NumVertices())
	// By symmetry every vertex gets the same score: each opposite pair
	// contributes 0.5 per path × 2 paths... reference checks exactness;
	// here check symmetry.
	for v := 1; v < 4; v++ {
		if math.Abs(scores[v]-scores[0]) > 1e-9 {
			t.Errorf("asymmetric scores: %v", scores)
		}
	}
}

func TestBCRandomGraphAllRoots(t *testing.T) {
	g := graph.ErdosRenyi(120, 360, 13)
	lcc, _ := graph.LargestComponentSubgraph(g)
	roots := Sources(lcc, lcc.NumVertices())
	checkBCMatches(t, lcc, 4, roots, core.NewAllAtOnce(roots))
}

func TestBCSubsetRoots(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 21)
	roots := Sources(g, 25)
	checkBCMatches(t, g, 4, roots, core.NewAllAtOnce(roots))
}

func TestBCWithSwathScheduling(t *testing.T) {
	// Swath-scheduled BC must produce identical scores to all-at-once.
	g := graph.BarabasiAlbert(150, 3, 33)
	roots := Sources(g, 30)
	for _, tc := range []struct {
		name  string
		sched core.SwathScheduler
	}{
		{"sequential", core.NewSwathRunner(roots, core.StaticSizer(7), core.SequentialInitiator{})},
		{"static2", core.NewSwathRunner(roots, core.StaticSizer(7), core.StaticNInitiator(2))},
		{"dynamic", core.NewSwathRunner(roots, core.StaticSizer(7), core.DynamicPeakInitiator{})},
		{"adaptive-size", core.NewSwathRunner(roots,
			&core.AdaptiveSizer{Initial: 4, TargetMemoryBytes: 1 << 20}, core.SequentialInitiator{})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			checkBCMatches(t, g, 4, roots, tc.sched)
		})
	}
}

func TestBCTriangleWaveform(t *testing.T) {
	// Fig 3: one BC swath ramps messages up to a peak then back down.
	g := graph.DatasetSD()
	roots := Sources(g, 7) // the paper's Fig 3 uses a swath of seven
	res, err := core.Run(BC(g, 4, core.NewAllAtOnce(roots)))
	if err != nil {
		t.Fatal(err)
	}
	var peakStep, peak int64 = 0, 0
	for _, s := range res.Steps {
		if s.TotalSent() > peak {
			peak = s.TotalSent()
			peakStep = int64(s.Superstep)
		}
	}
	if peakStep == 0 || peakStep == int64(len(res.Steps)-1) {
		t.Errorf("peak at boundary step %d: not a triangle wave", peakStep)
	}
	if peak < int64(g.NumEdges()) {
		t.Errorf("peak %d below edge count %d: traversal did not saturate", peak, g.NumEdges())
	}
}

func TestAPSPMatchesBFS(t *testing.T) {
	g := graph.ErdosRenyi(150, 450, 17)
	roots := Sources(g, 20)
	res, err := core.Run(APSP(g, 4, core.NewAllAtOnce(roots)))
	if err != nil {
		t.Fatal(err)
	}
	got := APSPDistances(res, g.NumVertices(), roots)
	for i, r := range roots {
		want := graph.BFS(g, r)
		for v := range want {
			if got[i][v] != want[v] {
				t.Fatalf("root %d vertex %d: dist %d, want %d", r, v, got[i][v], want[v])
			}
		}
	}
}

func TestAPSPWithSwaths(t *testing.T) {
	g := graph.BarabasiAlbert(120, 3, 3)
	roots := Sources(g, 12)
	sched := core.NewSwathRunner(roots, core.StaticSizer(4), core.DynamicPeakInitiator{})
	res, err := core.Run(APSP(g, 3, sched))
	if err != nil {
		t.Fatal(err)
	}
	got := APSPDistances(res, g.NumVertices(), roots)
	for i, r := range roots {
		want := graph.BFS(g, r)
		for v := range want {
			if got[i][v] != want[v] {
				t.Fatalf("root %d vertex %d: dist %d, want %d", r, v, got[i][v], want[v])
			}
		}
	}
}

func TestSSSP(t *testing.T) {
	g := graph.ErdosRenyi(200, 500, 29)
	res, err := core.Run(SSSP(g, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	got := SSSPDistances(res, g.NumVertices())
	want := graph.BFS(g, 3)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: %d, want %d", v, got[v], want[v])
		}
	}
}

func TestWCC(t *testing.T) {
	b := graph.NewBuilder(9)
	b.AddUndirected(0, 1)
	b.AddUndirected(1, 2)
	b.AddUndirected(4, 5)
	b.AddUndirected(5, 6)
	b.AddUndirected(7, 8)
	g := b.Build()
	res, err := core.Run(WCC(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	labels := WCCLabels(res, 9)
	want := []int32{0, 0, 0, 3, 4, 4, 4, 7, 7}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestWCCMatchesReference(t *testing.T) {
	g := graph.ErdosRenyi(300, 310, 31) // sparse: many components
	res, err := core.Run(WCC(g, 4))
	if err != nil {
		t.Fatal(err)
	}
	labels := WCCLabels(res, g.NumVertices())
	ref := graph.Components(g)
	// Same partition: two vertices share a label iff they share a component.
	for v := 1; v < g.NumVertices(); v++ {
		sameRef := ref.Labels[v] == ref.Labels[0]
		sameGot := labels[v] == labels[0]
		if sameRef != sameGot {
			t.Fatalf("vertex %d: component grouping mismatch", v)
		}
	}
}

func TestLPAConvergesOnCliques(t *testing.T) {
	// Two cliques joined by one edge: LPA should give each clique one label.
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddUndirected(graph.VertexID(i), graph.VertexID(j))
			b.AddUndirected(graph.VertexID(i+5), graph.VertexID(j+5))
		}
	}
	b.AddUndirected(0, 5)
	g := b.Build()
	res, err := core.Run(LPA(g, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	labels := LPALabels(res, 10)
	for v := 1; v < 5; v++ {
		if labels[v] != labels[1] {
			t.Errorf("clique 1 not uniform: %v", labels)
		}
	}
	for v := 6; v < 10; v++ {
		if labels[v] != labels[6] {
			t.Errorf("clique 2 not uniform: %v", labels)
		}
	}
}

func TestBCIndependentOfPartitioning(t *testing.T) {
	// Scores must be identical whichever partitioner routes the messages.
	g := graph.BarabasiAlbert(150, 3, 41)
	roots := Sources(g, 20)
	want := BCSequential(g, roots)
	for _, p := range []partition.Partitioner{partition.Hash{}, partition.Chunk{}, partition.NewMultilevel()} {
		spec := BC(g, 4, core.NewAllAtOnce(roots))
		spec.Assignment = p.Partition(g, 4)
		res, err := core.Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		got := BCScores(res, g.NumVertices())
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-6*(1+math.Abs(want[v])) {
				t.Fatalf("%s: vertex %d: %v, want %v", p.Name(), v, got[v], want[v])
			}
		}
	}
}

func TestBCCodecRoundTrip(t *testing.T) {
	m := BCMsg{Root: 7, Kind: bcBackward, From: 9, Aux: 3, Value: 2.5}
	buf := BCCodec{}.Append(nil, m)
	if want := (BCCodec{}).Size(m); len(buf) != want {
		t.Fatalf("encoded %d bytes, Size says %d", len(buf), want)
	}
	got, n := BCCodec{}.Decode(buf)
	if n != len(buf) || got != m {
		t.Errorf("round trip: %+v (%d), want %+v", got, n, m)
	}
}

func TestAPSPCodecRoundTrip(t *testing.T) {
	m := APSPMsg{Root: 123456, Dist: 42}
	buf := APSPCodec{}.Append(nil, m)
	got, n := APSPCodec{}.Decode(buf)
	if n != 8 || got != m {
		t.Errorf("round trip: %+v (%d)", got, n)
	}
}
