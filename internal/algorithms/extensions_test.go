package algorithms

import (
	"math"
	"testing"

	"pregelnet/internal/core"
	"pregelnet/internal/graph"
)

func TestTrianglesMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"complete-6", graph.Complete(6)}, // C(6,3)=20 triangles
		{"ring", graph.Ring(12)},          // 0 triangles
		{"ba", graph.BarabasiAlbert(300, 4, 5)},
		{"er", graph.ErdosRenyi(200, 800, 6)},
		{"community", graph.Community(400, 4, 4, 0.9, 7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := core.Run(Triangles(tc.g, 4))
			if err != nil {
				t.Fatal(err)
			}
			got := TriangleCount(res)
			want := TrianglesSequential(tc.g)
			if got != want {
				t.Fatalf("triangles = %d, want %d", got, want)
			}
			// The aggregator agrees with the atomic counter.
			var agg float64
			for _, s := range res.Steps {
				if v, ok := s.Aggregates["triangles"]; ok {
					agg += v
				}
			}
			if int64(agg) != want {
				t.Errorf("aggregate = %v, want %d", agg, want)
			}
		})
	}
}

func TestTrianglesKnownCounts(t *testing.T) {
	res, err := core.Run(Triangles(graph.Complete(5), 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := TriangleCount(res); got != 10 {
		t.Errorf("K5 triangles = %d, want 10", got)
	}
	res2, err := core.Run(Triangles(graph.Star(10), 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := TriangleCount(res2); got != 0 {
		t.Errorf("star triangles = %d, want 0", got)
	}
}

func TestKCoreMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ring", graph.Ring(16)},        // all coreness 2
		{"star", graph.Star(12)},        // all coreness 1
		{"complete", graph.Complete(7)}, // all coreness 6
		{"ba", graph.BarabasiAlbert(250, 3, 9)},
		{"er", graph.ErdosRenyi(150, 450, 11)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := core.Run(KCore(tc.g, 4))
			if err != nil {
				t.Fatal(err)
			}
			got := Coreness(res, tc.g.NumVertices())
			want := CorenessSequential(tc.g)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("vertex %d: coreness %d, want %d", v, got[v], want[v])
				}
			}
		})
	}
}

func TestKCoreKnownValues(t *testing.T) {
	// A triangle with a dangling two-vertex tail: triangle vertices have
	// coreness 2, tail vertices peel away at 1.
	b := graph.NewBuilder(5)
	b.AddUndirected(0, 1)
	b.AddUndirected(1, 2)
	b.AddUndirected(2, 0) // triangle
	b.AddUndirected(2, 3)
	b.AddUndirected(3, 4) // tail
	g := b.Build()
	res, err := core.Run(KCore(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	got := Coreness(res, 5)
	want := []uint32{2, 2, 2, 1, 1}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("coreness = %v, want %v", got, want)
		}
	}
}

func TestEstimateDiameter(t *testing.T) {
	// Exact on a ring with full sampling: max distance = n/2.
	est, err := EstimateDiameter(graph.Ring(20), 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if est.Max != 10 {
		t.Errorf("ring max distance = %d, want 10", est.Max)
	}
	if est.Effective90 < 8 || est.Effective90 > 10 {
		t.Errorf("ring eff90 = %.2f, want ~9", est.Effective90)
	}
	// Consistent with the sequential estimator on a random graph.
	g := graph.BarabasiAlbert(500, 3, 13)
	est2, err := EstimateDiameter(g, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	ref := graph.ComputeStats(g, 32, 99)
	if math.Abs(est2.Effective90-ref.EffectiveDiameter) > 1.5 {
		t.Errorf("eff90 %.2f vs sequential %.2f", est2.Effective90, ref.EffectiveDiameter)
	}
	if est2.AvgPath <= 1 || est2.Samples != 32 {
		t.Errorf("estimate = %+v", est2)
	}
}

func TestWeightedSSSPMatchesDijkstra(t *testing.T) {
	g := graph.ErdosRenyi(200, 600, 23)
	wg := graph.RandomWeights(g, 1, 5, 7)
	res, err := core.Run(WeightedSSSP(wg, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	got := WeightedDistances(res, g.NumVertices())
	want := wg.DijkstraReference(0)
	for v := range want {
		if want[v] > 1e300 {
			if !math.IsInf(got[v], 1) {
				t.Fatalf("vertex %d should be unreachable, got %v", v, got[v])
			}
			continue
		}
		if math.Abs(got[v]-want[v]) > 1e-6 {
			t.Fatalf("vertex %d: dist %v, want %v", v, got[v], want[v])
		}
	}
}

func TestWeightedSSSPUniformEqualsBFS(t *testing.T) {
	g := graph.BarabasiAlbert(150, 3, 9)
	wg := graph.UniformWeights(g)
	res, err := core.Run(WeightedSSSP(wg, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	got := WeightedDistances(res, g.NumVertices())
	ref := graph.BFS(g, 2)
	for v := range ref {
		if ref[v] >= 0 && math.Abs(got[v]-float64(ref[v])) > 1e-9 {
			t.Fatalf("vertex %d: %v vs BFS %d", v, got[v], ref[v])
		}
	}
}
