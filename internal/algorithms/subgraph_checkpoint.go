package algorithms

import (
	"io"

	"pregelnet/internal/core"
)

// Checkpoint and migration support for the subgraph-centric programs, in the
// same per-vertex format family as the vertex programs (checkpoint.go): the
// whole-partition pair is the concatenation of per-vertex records. All maps
// serialize in sorted-root order and contribution lists are stored (and
// restored) in their id-sorted order, so a restore is bit-identical — the
// property confined recovery and elastic migration rely on when they replay
// supersteps against restored partition-local state.

// SnapshotVertex implements core.Migratable.
func (p *ssspSubgraph) SnapshotVertex(li int32, w io.Writer) error {
	return writeU64(w, uint64(uint32(p.dist[li])))
}

// RestoreVertex implements core.Migratable.
func (p *ssspSubgraph) RestoreVertex(li int32, r io.Reader) error {
	v, err := readU64(r)
	if err != nil {
		return err
	}
	p.dist[li] = int32(uint32(v))
	return nil
}

// Snapshot implements core.Checkpointable.
func (p *ssspSubgraph) Snapshot(w io.Writer) error {
	return snapshotAll(w, len(p.dist), p.SnapshotVertex)
}

// Restore implements core.Checkpointable.
func (p *ssspSubgraph) Restore(r io.Reader) error {
	return restoreAll(r, len(p.dist), p.RestoreVertex)
}

// SnapshotVertex implements core.Migratable.
func (p *wccSubgraph) SnapshotVertex(li int32, w io.Writer) error {
	return writeU64(w, uint64(uint32(p.label[li])))
}

// RestoreVertex implements core.Migratable.
func (p *wccSubgraph) RestoreVertex(li int32, r io.Reader) error {
	v, err := readU64(r)
	if err != nil {
		return err
	}
	p.label[li] = int32(uint32(v))
	return nil
}

// Snapshot implements core.Checkpointable.
func (p *wccSubgraph) Snapshot(w io.Writer) error {
	return snapshotAll(w, len(p.label), p.SnapshotVertex)
}

// Restore implements core.Checkpointable.
func (p *wccSubgraph) Restore(r io.Reader) error {
	return restoreAll(r, len(p.label), p.RestoreVertex)
}

// SnapshotVertex implements core.Migratable.
func (p *wssspSubgraph) SnapshotVertex(li int32, w io.Writer) error {
	return writeF64(w, p.dist[li])
}

// RestoreVertex implements core.Migratable.
func (p *wssspSubgraph) RestoreVertex(li int32, r io.Reader) error {
	v, err := readF64(r)
	if err != nil {
		return err
	}
	p.dist[li] = v
	return nil
}

// Snapshot implements core.Checkpointable.
func (p *wssspSubgraph) Snapshot(w io.Writer) error {
	return snapshotAll(w, len(p.dist), p.SnapshotVertex)
}

// Restore implements core.Checkpointable.
func (p *wssspSubgraph) Restore(r io.Reader) error {
	return restoreAll(r, len(p.dist), p.RestoreVertex)
}

func writeContribs(w io.Writer, list []bcsContrib) error {
	if err := writeU64(w, uint64(len(list))); err != nil {
		return err
	}
	for _, c := range list {
		if err := writeU64(w, uint64(c.id)); err != nil {
			return err
		}
		if err := writeF64(w, c.val); err != nil {
			return err
		}
	}
	return nil
}

func readContribs(r io.Reader) ([]bcsContrib, error) {
	n, err := readU64(r)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	list := make([]bcsContrib, n)
	for i := range list {
		id, err := readU64(r)
		if err != nil {
			return nil, err
		}
		val, err := readF64(r)
		if err != nil {
			return nil, err
		}
		list[i] = bcsContrib{id: uint32(id), val: val}
	}
	return list, nil
}

// SnapshotVertex implements core.Migratable. Root states serialize in
// ascending root order, contribution lists in their id-sorted order.
func (p *bcSubgraph) SnapshotVertex(li int32, w io.Writer) error {
	if err := writeF64(w, p.scores[li]); err != nil {
		return err
	}
	states := p.states[li]
	if err := writeU64(w, uint64(len(states))); err != nil {
		return err
	}
	for _, root := range p.sortedRoots(li) {
		st := states[root]
		if err := writeU64(w, uint64(root)); err != nil {
			return err
		}
		if err := writeU64(w, uint64(uint32(st.dist))); err != nil {
			return err
		}
		if err := writeF64(w, st.sigma); err != nil {
			return err
		}
		if err := writeF64(w, st.delta); err != nil {
			return err
		}
		if err := writeContribs(w, st.fwd); err != nil {
			return err
		}
		if err := writeContribs(w, st.back); err != nil {
			return err
		}
	}
	return nil
}

// RestoreVertex implements core.Migratable.
func (p *bcSubgraph) RestoreVertex(li int32, r io.Reader) error {
	score, err := readF64(r)
	if err != nil {
		return err
	}
	p.scores[li] = score
	n, err := readU64(r)
	if err != nil {
		return err
	}
	if old := p.states[li]; old != nil {
		for _, st := range old {
			p.stateBytes -= bcsStateBaseBytes + int64(16*(len(st.fwd)+len(st.back)))
		}
	}
	if n == 0 {
		p.states[li] = nil
		return nil
	}
	states := make(map[uint32]*bcsState, n)
	for j := uint64(0); j < n; j++ {
		root, err := readU64(r)
		if err != nil {
			return err
		}
		dist, err := readU64(r)
		if err != nil {
			return err
		}
		sigma, err := readF64(r)
		if err != nil {
			return err
		}
		delta, err := readF64(r)
		if err != nil {
			return err
		}
		fwd, err := readContribs(r)
		if err != nil {
			return err
		}
		back, err := readContribs(r)
		if err != nil {
			return err
		}
		states[uint32(root)] = &bcsState{
			dist:  int32(uint32(dist)),
			sigma: sigma,
			delta: delta,
			fwd:   fwd,
			back:  back,
		}
		p.stateBytes += bcsStateBaseBytes + int64(16*(len(fwd)+len(back)))
	}
	p.states[li] = states
	return nil
}

// Snapshot implements core.Checkpointable.
func (p *bcSubgraph) Snapshot(w io.Writer) error {
	return snapshotAll(w, len(p.scores), p.SnapshotVertex)
}

// Restore implements core.Checkpointable.
func (p *bcSubgraph) Restore(r io.Reader) error {
	p.stateBytes = 0
	for li := range p.states {
		p.states[li] = nil
	}
	return restoreAll(r, len(p.scores), p.RestoreVertex)
}

// Compile-time checks that every subgraph program stays migratable.
var (
	_ core.Migratable = (*ssspSubgraph)(nil)
	_ core.Migratable = (*wccSubgraph)(nil)
	_ core.Migratable = (*wssspSubgraph)(nil)
	_ core.Migratable = (*bcSubgraph)(nil)
)
