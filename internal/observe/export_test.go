package observe

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

// fixtureEvents is a small trace exercising spans, instants, attrs of all
// three types, the manager track, and negative supersteps.
func fixtureEvents() []Event {
	return []Event{
		{Seq: 1, Kind: KindJob, Worker: ManagerWorker, Superstep: -1,
			Start: 0, Dur: 5 * time.Millisecond,
			Attrs: []Attr{Str("algo", "bc"), Int("workers", 4)}},
		{Seq: 2, Kind: KindSuperstep, Worker: ManagerWorker, Superstep: 0,
			Start: 10 * time.Microsecond, Dur: 1500 * time.Microsecond,
			Attrs: []Attr{Int("active", 100)}},
		{Seq: 3, Kind: KindFault, Worker: 2, Superstep: 3,
			Start: 42 * time.Microsecond,
			Attrs: []Attr{Str("fault", "queue_duplicate")}},
		{Seq: 4, Kind: KindCompute, Worker: 1, Superstep: 3,
			Start: 77 * time.Microsecond, Dur: 99 * time.Microsecond,
			Attrs: []Attr{Float("ratio", 1.25)}},
	}
}

func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, fixtureEvents()); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`{"seq":1,"kind":"job","worker":-1,"superstep":-1,"startNs":0,"durNs":5000000,"attrs":{"algo":"bc","workers":4}}`,
		`{"seq":2,"kind":"superstep","worker":-1,"superstep":0,"startNs":10000,"durNs":1500000,"attrs":{"active":100}}`,
		`{"seq":3,"kind":"fault","worker":2,"superstep":3,"startNs":42000,"attrs":{"fault":"queue_duplicate"}}`,
		`{"seq":4,"kind":"compute","worker":1,"superstep":3,"startNs":77000,"durNs":99000,"attrs":{"ratio":1.25}}`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := fixtureEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, events)
	}
}

func TestJSONLSinkStreams(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(sink)
	tr.Emit(KindRetry, 0, 1, Str("err", "transient"))
	sp := tr.Start(KindCheckpoint, 3, 4)
	sp.End(Int("bytes", 1024))
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("streamed %d events, want 2", len(events))
	}
	if events[0].Kind != KindRetry || events[1].Kind != KindCheckpoint {
		t.Errorf("kinds = %s, %s", events[0].Kind, events[1].Kind)
	}
	if events[1].Dur <= 0 {
		t.Error("span event lost its duration")
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	events := fixtureEvents()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	// Sanity: the file should open in chrome://tracing — complete events use
	// phase X, instants use phase i with thread scope.
	s := buf.String()
	for _, frag := range []string{`"displayTimeUnit":"ms"`, `"ph":"X"`, `"ph":"i"`, `"s":"t"`, `"pid":1`} {
		if !strings.Contains(s, frag) {
			t.Errorf("chrome trace missing %s", frag)
		}
	}
	got, err := ReadChromeTrace(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, events)
	}
}

func TestChromeTraceTIDMapping(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: KindSuperstep, Worker: ManagerWorker, Superstep: 0, Dur: time.Millisecond},
		{Seq: 2, Kind: KindCompute, Worker: 3, Superstep: 0, Dur: time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"tid":0`) {
		t.Error("manager should render on tid 0")
	}
	if !strings.Contains(s, `"tid":4`) {
		t.Error("worker 3 should render on tid 4")
	}
}

func TestChromeTraceSkipsForeignPhases(t *testing.T) {
	in := `{"traceEvents":[
		{"name":"meta","ph":"M","pid":1,"tid":0},
		{"name":"compute","cat":"compute","ph":"X","pid":1,"tid":1,"ts":1,"dur":2,"args":{"seq":7,"superstep":2}}
	]}`
	got, err := ReadChromeTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d events, want 1 (metadata skipped)", len(got))
	}
	e := got[0]
	if e.Seq != 7 || e.Superstep != 2 || e.Worker != 0 || e.Kind != KindCompute {
		t.Errorf("event = %+v", e)
	}
	if e.Start != time.Microsecond || e.Dur != 2*time.Microsecond {
		t.Errorf("times = %v/%v", e.Start, e.Dur)
	}
}

func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.Counter("pregel_retries_total", "Transient-fault retries.",
		Label{"worker", "0"}).Add(3)
	m.Counter("pregel_retries_total", "Transient-fault retries.",
		Label{"worker", "1"}).Inc()
	g := m.Gauge("pregel_queue_depth", "Visible messages per queue.",
		Label{"queue", "barrier"})
	g.Set(4)
	g.Add(-1)
	h := m.Histogram("pregel_barrier_seconds", "Barrier collect latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	want := strings.Join([]string{
		"# HELP pregel_barrier_seconds Barrier collect latency.",
		"# TYPE pregel_barrier_seconds histogram",
		`pregel_barrier_seconds_bucket{le="0.01"} 1`,
		`pregel_barrier_seconds_bucket{le="0.1"} 2`,
		`pregel_barrier_seconds_bucket{le="+Inf"} 3`,
		"pregel_barrier_seconds_sum 5.055",
		"pregel_barrier_seconds_count 3",
		"# HELP pregel_queue_depth Visible messages per queue.",
		"# TYPE pregel_queue_depth gauge",
		`pregel_queue_depth{queue="barrier"} 3`,
		"# HELP pregel_retries_total Transient-fault retries.",
		"# TYPE pregel_retries_total counter",
		`pregel_retries_total{worker="0"} 3`,
		`pregel_retries_total{worker="1"} 1`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestMetricsHistogramLabelMerge(t *testing.T) {
	m := NewMetrics()
	m.Histogram("lat", "", []float64{1}, Label{"class", "step"}).Observe(0.5)
	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `lat_bucket{class="step",le="1"} 1`) {
		t.Errorf("le label not merged into signature:\n%s", buf.String())
	}
}

func TestMetricsSameHandleReturned(t *testing.T) {
	m := NewMetrics()
	a := m.Counter("c", "", Label{"x", "1"})
	b := m.Counter("c", "", Label{"x", "1"})
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("handles not shared")
	}
}

func TestMetricsTypeClashPanics(t *testing.T) {
	m := NewMetrics()
	m.Counter("clash", "")
	defer func() {
		if recover() == nil {
			t.Error("type clash did not panic")
		}
	}()
	m.Gauge("clash", "")
}

func TestNilMetricsAreInert(t *testing.T) {
	var m *Metrics
	m.Counter("c", "").Inc()
	m.Gauge("g", "").Set(2)
	m.Histogram("h", "", nil).Observe(1)
	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	if buf.Len() != 0 {
		t.Errorf("nil registry exposed %q", buf.String())
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	m := NewMetrics()
	m.Gauge("weird", "").Set(0)
	cases := map[float64]string{
		0: "0", 1.5: "1.5", -2: "-2",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(float64(1e21)); got != "1e+21" {
		t.Errorf("formatFloat(1e21) = %q", got)
	}
}
