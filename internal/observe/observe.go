// Package observe is the engine's observability subsystem: a low-overhead
// structured event tracer with typed spans (supersteps, barrier waits, swath
// decisions, checkpoint/restore, retries, injected faults, transport
// flushes), a bounded ring-buffer flight recorder that survives job failure,
// exporters for JSONL and the Chrome trace_event format (open dumps in
// chrome://tracing or Perfetto), and a Prometheus-style metrics registry for
// live exposition over HTTP.
//
// Everything is nil-safe: a nil *Tracer or *Metrics disables the subsystem
// at (near) zero cost, so the engine instruments unconditionally and callers
// opt in by setting JobSpec.Tracer / JobSpec.Metrics.
package observe

import (
	"sync"
	"time"
)

// Kind is the event taxonomy. Each kind maps to one engine phase or
// substrate action; exporters use it as the trace category.
type Kind string

// Event kinds emitted by the instrumented engine.
const (
	// KindJob spans a whole job: Run entry to exit.
	KindJob Kind = "job"
	// KindSuperstep spans one manager-side superstep: token send to barrier
	// completion and pricing.
	KindSuperstep Kind = "superstep"
	// KindCompute spans one worker's compute+flush phase of a superstep.
	KindCompute Kind = "compute"
	// KindBarrierWait spans a worker waiting for peer sentinels (BSP barrier
	// condition 2: all messages delivered).
	KindBarrierWait Kind = "barrier_wait"
	// KindBarrierCollect spans the manager collecting worker check-ins.
	KindBarrierCollect Kind = "barrier_collect"
	// KindSwath marks a swath scheduler decision: how many sources were
	// injected before a superstep.
	KindSwath Kind = "swath"
	// KindCheckpoint spans a worker snapshotting state to the blob store.
	KindCheckpoint Kind = "checkpoint"
	// KindRestore spans a worker rolling back to a checkpoint.
	KindRestore Kind = "restore"
	// KindRollback spans the manager-side recovery: restore tokens out to
	// all acks in.
	KindRollback Kind = "rollback"
	// KindRetry marks one transient-fault retry attempt (blob, queue, or
	// transport operation).
	KindRetry Kind = "retry"
	// KindFault marks a fault injected by the chaos layer.
	KindFault Kind = "fault"
	// KindVMRestart marks a fabric-initiated VM restart.
	KindVMRestart Kind = "vm_restart"
	// KindFlush marks one bulk-transfer batch leaving a worker.
	KindFlush Kind = "flush"
	// KindReconnect marks a data-plane reconnect after a send failure.
	KindReconnect Kind = "reconnect"
	// KindQueueWait spans a blocking control-plane queue Get.
	KindQueueWait Kind = "queue_wait"
	// KindSendStall spans a compute goroutine blocked enqueueing a batch onto
	// a full per-destination outbox (data-plane backpressure).
	KindSendStall Kind = "send_stall"
	// KindScaleOut spans a live elastic scale-out at a superstep barrier:
	// migrate tokens out through the last worker's migration ack.
	KindScaleOut Kind = "scale_out"
	// KindScaleIn spans a live elastic scale-in at a superstep barrier.
	KindScaleIn Kind = "scale_in"
	// KindMigrate spans one worker writing its migration blob during a live
	// resize.
	KindMigrate Kind = "migrate"
	// KindRepartition marks the layout decision of a live resize: the
	// strategy used (incremental delta vs. full reshuffle), the vertices
	// whose owner changed, and the billed moved bytes.
	KindRepartition Kind = "repartition"
	// KindOutboxFlush spans a worker's end-of-superstep flush-and-drain of
	// all per-destination outboxes (sentinel broadcast included).
	KindOutboxFlush Kind = "outbox_flush"
	// KindReplay spans one survivor replaying its logged outbound batches for
	// one superstep into the recovering workers during confined recovery.
	KindReplay Kind = "replay"
	// KindPreempt spans a barrier preemption: migrate tokens out through the
	// last worker's migration ack, after which the segment halts and the job
	// suspends for a later bit-identical resume.
	KindPreempt Kind = "preempt"
)

// ManagerWorker is the Worker value for manager/job-level events.
const ManagerWorker = -1

// attrKind discriminates the Attr union.
type attrKind uint8

const (
	attrInt attrKind = iota
	attrStr
	attrFloat
)

// Attr is one typed key/value attribute on an event. The value is an inline
// union (no interface boxing) so building attributes does not allocate
// beyond the slice that carries them.
type Attr struct {
	Key  string
	kind attrKind
	i    int64
	f    float64
	s    string
}

// Int returns an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: attrInt, i: v} }

// Str returns a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: attrStr, s: v} }

// Float returns a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: attrFloat, f: v} }

// Value returns the attribute's value as int64, string, or float64.
func (a Attr) Value() any {
	switch a.kind {
	case attrStr:
		return a.s
	case attrFloat:
		return a.f
	default:
		return a.i
	}
}

// Event is one trace record. Instant events have Dur == 0; spans carry the
// measured duration. Start is relative to the tracer's epoch so traces are
// self-contained and diffable.
type Event struct {
	// Seq is a tracer-wide monotonic sequence number (1-based): the total
	// order in which events were committed, independent of clock resolution.
	Seq uint64
	// Kind is the event's type in the taxonomy above.
	Kind Kind
	// Worker is the emitting worker ID, or ManagerWorker (-1) for
	// manager/job-level events.
	Worker int
	// Superstep is the superstep the event belongs to (-1 if none).
	Superstep int
	// Start is the event start time relative to the tracer epoch.
	Start time.Duration
	// Dur is the span duration (0 for instant events).
	Dur time.Duration
	// Attrs are optional typed attributes.
	Attrs []Attr
}

// Attr returns the value of the named attribute and whether it exists.
func (e *Event) Attr(key string) (any, bool) {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value(), true
		}
	}
	return nil, false
}

// Sink receives committed events. Sinks are invoked under the tracer's lock
// in sequence order, so implementations need no internal synchronization
// against other events from the same tracer.
type Sink interface {
	Write(e Event)
}

// Tracer assigns sequence numbers and timestamps to events and fans them out
// to its sinks. All methods are safe for concurrent use, and all methods on
// a nil *Tracer are no-ops, so instrumented code never branches on "is
// tracing on" — the zero value of an un-traced JobSpec costs nothing.
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	seq   uint64
	sinks []Sink
}

// NewTracer creates a tracer fanning out to the given sinks. The epoch (the
// zero point of every event's Start) is the creation time.
func NewTracer(sinks ...Sink) *Tracer {
	return &Tracer{epoch: time.Now(), sinks: sinks}
}

// NewTraceRecorder is the common wiring: a tracer backed by a flight
// recorder of the given capacity (see Recorder).
func NewTraceRecorder(capacity int) (*Tracer, *Recorder) {
	rec := NewRecorder(capacity)
	return NewTracer(rec), rec
}

// Enabled reports whether events will actually be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit commits an instant event.
func (t *Tracer) Emit(kind Kind, worker, superstep int, attrs ...Attr) {
	if t == nil {
		return
	}
	t.commit(Event{Kind: kind, Worker: worker, Superstep: superstep,
		Start: time.Since(t.epoch), Attrs: attrs})
}

// Start opens a span. The returned Span is a value (no allocation); call
// End to commit it. On a nil tracer the span is inert.
func (t *Tracer) Start(kind Kind, worker, superstep int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, kind: kind, worker: worker, superstep: superstep, start: time.Now()}
}

func (t *Tracer) commit(e Event) {
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	for _, s := range t.sinks {
		s.Write(e)
	}
	t.mu.Unlock()
}

// Span is an open trace span returned by Tracer.Start. The zero value (from
// a nil tracer) is inert.
type Span struct {
	t         *Tracer
	kind      Kind
	worker    int
	superstep int
	start     time.Time
}

// End commits the span with its measured duration and any final attributes.
// End on an inert span is a no-op.
func (s Span) End(attrs ...Attr) {
	if s.t == nil {
		return
	}
	s.t.commit(Event{Kind: s.kind, Worker: s.worker, Superstep: s.superstep,
		Start: s.start.Sub(s.t.epoch), Dur: time.Since(s.start), Attrs: attrs})
}

// Active reports whether the span will record on End.
func (s Span) Active() bool { return s.t != nil }
