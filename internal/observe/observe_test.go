package observe

import (
	"sync"
	"testing"
	"time"
)

// collectSink buffers events for assertions.
type collectSink struct{ events []Event }

func (c *collectSink) Write(e Event) { c.events = append(c.events, e) }

func TestTracerSequencesAndTimestamps(t *testing.T) {
	sink := &collectSink{}
	tr := NewTracer(sink)
	tr.Emit(KindSwath, ManagerWorker, 0, Int("injected", 5))
	sp := tr.Start(KindSuperstep, ManagerWorker, 0)
	time.Sleep(time.Millisecond)
	sp.End(Int("sent", 42))
	tr.Emit(KindRetry, 2, 1, Str("err", "boom"), Int("attempt", 3))

	if len(sink.events) != 3 {
		t.Fatalf("events = %d, want 3", len(sink.events))
	}
	for i, e := range sink.events {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d", i, e.Seq)
		}
	}
	if sink.events[0].Dur != 0 {
		t.Error("instant event has nonzero duration")
	}
	span := sink.events[1]
	if span.Kind != KindSuperstep || span.Dur < time.Millisecond {
		t.Errorf("span = %+v, want superstep with dur >= 1ms", span)
	}
	if v, ok := span.Attr("sent"); !ok || v.(int64) != 42 {
		t.Errorf("span attr sent = %v, %v", v, ok)
	}
	retry := sink.events[2]
	if retry.Worker != 2 || retry.Superstep != 1 {
		t.Errorf("retry event coords = %d/%d", retry.Worker, retry.Superstep)
	}
	if v, _ := retry.Attr("err"); v != "boom" {
		t.Errorf("retry err attr = %v", v)
	}
	if _, ok := retry.Attr("missing"); ok {
		t.Error("missing attr reported present")
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Emit(KindFault, 0, 0, Str("x", "y")) // must not panic
	sp := tr.Start(KindCompute, 1, 2)
	if sp.Active() {
		t.Error("span from nil tracer reports active")
	}
	sp.End(Int("a", 1))
}

func TestTracerConcurrentEmitters(t *testing.T) {
	sink := &collectSink{}
	tr := NewTracer(sink)
	var wg sync.WaitGroup
	const n, per = 8, 100
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(KindFlush, w, i, Int("bytes", int64(i)))
			}
		}(w)
	}
	wg.Wait()
	if len(sink.events) != n*per {
		t.Fatalf("events = %d, want %d", len(sink.events), n*per)
	}
	seen := make(map[uint64]bool, n*per)
	for _, e := range sink.events {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec := NewRecorder(4)
	tr := NewTracer(rec)
	for i := 0; i < 10; i++ {
		tr.Emit(KindSuperstep, ManagerWorker, i)
	}
	if rec.Len() != 4 {
		t.Fatalf("len = %d, want 4", rec.Len())
	}
	if rec.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", rec.Dropped())
	}
	snap := rec.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot = %d events", len(snap))
	}
	for i, e := range snap {
		if e.Superstep != i+6 {
			t.Errorf("snapshot[%d].Superstep = %d, want %d (oldest-first)", i, e.Superstep, i+6)
		}
	}
	tail := rec.Tail(2)
	if len(tail) != 2 || tail[1].Superstep != 9 {
		t.Errorf("tail = %+v", tail)
	}
	if got := rec.Tail(99); len(got) != 4 {
		t.Errorf("oversized tail = %d events", len(got))
	}
}

func TestRecorderPartialFill(t *testing.T) {
	rec := NewRecorder(100)
	tr := NewTracer(rec)
	tr.Emit(KindJob, ManagerWorker, -1)
	tr.Emit(KindSuperstep, ManagerWorker, 0)
	if rec.Len() != 2 || rec.Dropped() != 0 {
		t.Fatalf("len/dropped = %d/%d", rec.Len(), rec.Dropped())
	}
	snap := rec.Snapshot()
	if len(snap) != 2 || snap[0].Kind != KindJob {
		t.Errorf("snapshot = %+v", snap)
	}
	if NewRecorder(0).buf == nil {
		t.Error("capacity <= 0 should fall back to the default")
	}
}

// BenchmarkSpanDisabled measures the per-span cost with tracing off — the
// engine's hot paths pay this on every superstep, so it must be a couple of
// nil checks and no allocation.
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(KindCompute, 0, i)
		sp.End()
	}
}

// BenchmarkSpanRecorded measures the enabled path into a flight recorder.
func BenchmarkSpanRecorded(b *testing.B) {
	tr, _ := NewTraceRecorder(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(KindCompute, 0, i)
		sp.End(Int("sent", int64(i)))
	}
}
