package observe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Exporters: JSONL (one self-describing event per line, greppable and
// streamable) and the Chrome trace_event format (open the file directly in
// chrome://tracing or https://ui.perfetto.dev). Both formats round-trip
// through their readers, which the exporter tests rely on.

// jsonEvent is the wire form of an Event for the JSONL format.
type jsonEvent struct {
	Seq       uint64         `json:"seq"`
	Kind      Kind           `json:"kind"`
	Worker    int            `json:"worker"`
	Superstep int            `json:"superstep"`
	StartNs   int64          `json:"startNs"`
	DurNs     int64          `json:"durNs,omitempty"`
	Attrs     map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// attrsFromMap rebuilds typed attrs from decoded JSON, sorted by key so the
// result is deterministic (JSON objects are unordered).
func attrsFromMap(m map[string]any) ([]Attr, error) {
	if len(m) == 0 {
		return nil, nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	attrs := make([]Attr, 0, len(keys))
	for _, k := range keys {
		switch v := m[k].(type) {
		case string:
			attrs = append(attrs, Str(k, v))
		case json.Number:
			if i, err := v.Int64(); err == nil {
				attrs = append(attrs, Int(k, i))
			} else if f, err := v.Float64(); err == nil {
				attrs = append(attrs, Float(k, f))
			} else {
				return nil, fmt.Errorf("observe: attr %q: bad number %q", k, v)
			}
		case float64:
			if v == math.Trunc(v) && math.Abs(v) < 1e15 {
				attrs = append(attrs, Int(k, int64(v)))
			} else {
				attrs = append(attrs, Float(k, v))
			}
		default:
			return nil, fmt.Errorf("observe: attr %q: unsupported type %T", k, v)
		}
	}
	return attrs, nil
}

// WriteJSONL writes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		e := &events[i]
		if err := enc.Encode(jsonEvent{
			Seq: e.Seq, Kind: e.Kind, Worker: e.Worker, Superstep: e.Superstep,
			StartNs: int64(e.Start), DurNs: int64(e.Dur), Attrs: attrMap(e.Attrs),
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace back into events.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var out []Event
	for {
		var je struct {
			Seq       uint64         `json:"seq"`
			Kind      Kind           `json:"kind"`
			Worker    int            `json:"worker"`
			Superstep int            `json:"superstep"`
			StartNs   int64          `json:"startNs"`
			DurNs     int64          `json:"durNs"`
			Attrs     map[string]any `json:"attrs"`
		}
		if err := dec.Decode(&je); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("observe: jsonl event %d: %w", len(out), err)
		}
		attrs, err := attrsFromMap(je.Attrs)
		if err != nil {
			return nil, err
		}
		out = append(out, Event{
			Seq: je.Seq, Kind: je.Kind, Worker: je.Worker, Superstep: je.Superstep,
			Start: time.Duration(je.StartNs), Dur: time.Duration(je.DurNs), Attrs: attrs,
		})
	}
}

// JSONLSink streams every committed event to w as it happens — attach it to
// a tracer alongside the flight recorder when a full (unbounded) trace file
// is wanted. Write errors are remembered and reported by Err; a tracing
// failure must never fail the traced job.
type JSONLSink struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink creates a streaming JSONL sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// Write implements Sink (called under the tracer's lock).
func (s *JSONLSink) Write(e Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(jsonEvent{
		Seq: e.Seq, Kind: e.Kind, Worker: e.Worker, Superstep: e.Superstep,
		StartNs: int64(e.Start), DurNs: int64(e.Dur), Attrs: attrMap(e.Attrs),
	})
}

// Flush drains buffered lines to the underlying writer.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }

// chromeEvent is one entry of the Chrome trace_event format's traceEvents
// array. Timestamps are microseconds (fractional for sub-µs precision).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// chromeTID maps a worker ID to a Chrome thread ID: tid 0 is the manager
// track, tid w+1 is worker w's track.
func chromeTID(worker int) int { return worker + 1 }

// WriteChromeTrace writes events in the Chrome trace_event JSON format.
// Spans become complete ("X") events and instants become instant ("i")
// events; the manager renders as tid 0 and worker w as tid w+1, so a run
// opens in chrome://tracing or Perfetto as one swimlane per worker with
// superstep/barrier/checkpoint spans nested naturally.
func WriteChromeTrace(w io.Writer, events []Event) error {
	trace := chromeTrace{DisplayTimeUnit: "ms",
		TraceEvents: make([]chromeEvent, 0, len(events))}
	for i := range events {
		e := &events[i]
		args := attrMap(e.Attrs)
		if args == nil {
			args = make(map[string]any, 2)
		}
		args["seq"] = e.Seq
		args["superstep"] = e.Superstep
		ce := chromeEvent{
			Name: string(e.Kind), Cat: string(e.Kind),
			PID: 1, TID: chromeTID(e.Worker),
			TS:   float64(e.Start) / float64(time.Microsecond),
			Args: args,
		}
		if e.Dur > 0 {
			ce.Phase = "X"
			ce.Dur = float64(e.Dur) / float64(time.Microsecond)
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		trace.TraceEvents = append(trace.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&trace)
}

// ReadChromeTrace parses a Chrome trace_event file produced by
// WriteChromeTrace back into events (timestamps round to the nearest
// nanosecond). Events from other producers are accepted as long as they
// carry the "X" or "i" phase.
func ReadChromeTrace(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var trace struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TID   int            `json:"tid"`
			TS    json.Number    `json:"ts"`
			Dur   json.Number    `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := dec.Decode(&trace); err != nil {
		return nil, fmt.Errorf("observe: chrome trace: %w", err)
	}
	micros := func(n json.Number) (time.Duration, error) {
		if n == "" {
			return 0, nil
		}
		f, err := n.Float64()
		if err != nil {
			return 0, err
		}
		return time.Duration(math.Round(f * float64(time.Microsecond))), nil
	}
	out := make([]Event, 0, len(trace.TraceEvents))
	for i, ce := range trace.TraceEvents {
		if ce.Phase != "X" && ce.Phase != "i" {
			continue
		}
		start, err := micros(ce.TS)
		if err != nil {
			return nil, fmt.Errorf("observe: chrome event %d: bad ts: %w", i, err)
		}
		dur, err := micros(ce.Dur)
		if err != nil {
			return nil, fmt.Errorf("observe: chrome event %d: bad dur: %w", i, err)
		}
		e := Event{
			Kind: Kind(ce.Cat), Worker: ce.TID - 1, Superstep: -1,
			Start: start, Dur: dur,
		}
		args := ce.Args
		if v, ok := args["seq"]; ok {
			if n, ok := v.(json.Number); ok {
				if s, err := n.Int64(); err == nil {
					e.Seq = uint64(s)
				}
			}
			delete(args, "seq")
		}
		if v, ok := args["superstep"]; ok {
			if n, ok := v.(json.Number); ok {
				if s, err := n.Int64(); err == nil {
					e.Superstep = int(s)
				}
			}
			delete(args, "superstep")
		}
		attrs, err := attrsFromMap(args)
		if err != nil {
			return nil, fmt.Errorf("observe: chrome event %d: %w", i, err)
		}
		e.Attrs = attrs
		out = append(out, e)
	}
	return out, nil
}
