package observe

import "sync"

// Recorder is the flight recorder: a bounded ring buffer of the most recent
// trace events. Because it lives outside the job (the caller owns it and
// hands the tracer to JobSpec), its contents survive job failure — after a
// rollback, a barrier timeout, or an aborted run, the tail holds the events
// leading up to the problem, like a crashed aircraft's black box.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dropped uint64
}

// DefaultRecorderCapacity is the flight-recorder size used when callers do
// not choose one: enough for thousands of supersteps of manager events plus
// the hot tail of worker events.
const DefaultRecorderCapacity = 8192

// NewRecorder creates a recorder keeping the most recent `capacity` events
// (DefaultRecorderCapacity if capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Write implements Sink. When the ring is full the oldest event is evicted
// and counted into Dropped.
func (r *Recorder) Write(e Event) {
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len returns the number of events currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Dropped returns how many events were evicted to make room.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot returns the recorded events oldest-first. It is safe to call
// while the job is still running (the returned slice is a copy).
func (r *Recorder) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Tail returns the most recent n events oldest-first (all of them if fewer
// are held) — the forensic view printed after a failure.
func (r *Recorder) Tail(n int) []Event {
	events := r.Snapshot()
	if n < len(events) {
		events = events[len(events)-n:]
	}
	return events
}
