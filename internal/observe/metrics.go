package observe

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a minimal Prometheus-compatible registry: counters, gauges, and
// histograms with labels, rendered in the text exposition format for a
// GET /metrics endpoint. Handles are get-or-create (the same name+labels
// returns the same instrument) and cheap enough to update from the engine's
// per-superstep paths.
//
// Nil-safety mirrors Tracer: every method on a nil *Metrics returns a
// usable-but-unregistered instrument, so instrumented code can cache handles
// once at job start and update them unconditionally.
type Metrics struct {
	mu       sync.Mutex
	families map[string]*family
}

// Label is one metric label pair.
type Label struct{ Name, Value string }

// family is all series of one metric name.
type family struct {
	name, help, typ string
	series          map[string]instrument // key = rendered label signature
}

type instrument interface {
	// expose writes the series lines for the given family name and label
	// signature (already formatted as `{a="b",...}` or "").
	expose(w io.Writer, name, sig string)
}

// DefLatencyBuckets are histogram buckets suited to the engine's queue and
// barrier latencies: 10µs to 10s, decades.
var DefLatencyBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{families: make(map[string]*family)}
}

// signature renders labels canonically (sorted by name).
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Enabled reports whether observations will actually be recorded, mirroring
// Tracer.Enabled: callers gate optional wiring on the facade instead of
// comparing the pointer to nil themselves.
func (m *Metrics) Enabled() bool { return m != nil }

// get returns the instrument for name+labels, creating it with mk on first
// use. A type clash (same name registered with a different metric type)
// panics: it is a programming error that would corrupt the exposition.
func (m *Metrics) get(name, help, typ string, labels []Label, mk func() instrument) instrument {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]instrument)}
		m.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("observe: metric %q registered as %s and %s", name, f.typ, typ))
	}
	sig := signature(labels)
	inst, ok := f.series[sig]
	if !ok {
		inst = mk()
		f.series[sig] = inst
	}
	return inst
}

// Counter returns the counter for name+labels (creating it on first use).
func (m *Metrics) Counter(name, help string, labels ...Label) *Counter {
	if m == nil {
		return &Counter{}
	}
	return m.get(name, help, "counter", labels, func() instrument { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for name+labels (creating it on first use).
func (m *Metrics) Gauge(name, help string, labels ...Label) *Gauge {
	if m == nil {
		return &Gauge{}
	}
	return m.get(name, help, "gauge", labels, func() instrument { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram for name+labels (creating it on first
// use with the given bucket upper bounds; nil means DefLatencyBuckets).
func (m *Metrics) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	if m == nil {
		return newHistogram(buckets)
	}
	return m.get(name, help, "histogram", labels, func() instrument {
		return newHistogram(buckets)
	}).(*Histogram)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, families and series in sorted order so output is deterministic.
func (m *Metrics) WritePrometheus(w io.Writer) {
	if m == nil {
		return
	}
	m.mu.Lock()
	names := make([]string, 0, len(m.families))
	for n := range m.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := m.families[n]
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		sigs := make([]string, 0, len(f.series))
		for s := range f.series {
			sigs = append(sigs, s)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			f.series[sig].expose(w, f.name, sig)
		}
	}
	m.mu.Unlock()
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) expose(w io.Writer, name, sig string) {
	fmt.Fprintf(w, "%s%s %d\n", name, sig, c.v.Load())
}

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) expose(w io.Writer, name, sig string) {
	fmt.Fprintf(w, "%s%s %s\n", name, sig, formatFloat(g.Value()))
}

// Histogram is a cumulative-bucket distribution metric.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // per-bucket (non-cumulative); +Inf bucket is implicit
	inf    uint64
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.count++
	h.sum += v
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.inf++
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

func (h *Histogram) expose(w io.Writer, name, sig string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Bucket lines need the le label merged into the signature.
	merge := func(le string) string {
		if sig == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return sig[:len(sig)-1] + fmt.Sprintf(",le=%q", le) + "}"
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, merge(formatFloat(b)), cum)
	}
	cum += h.inf
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, merge("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, sig, formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, sig, h.count)
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trippable representation; NaN/Inf spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}
