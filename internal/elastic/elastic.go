// Package elastic implements the paper's analysis of elastic cloud scaling
// (§VIII): BC's per-superstep resource demand oscillates, so peak supersteps
// benefit super-linearly from extra workers (less memory pressure and
// contention) while trough supersteps are dominated by barrier overhead that
// *grows* with worker count. The paper extrapolates from 4- and 8-worker
// runs, aligned superstep by superstep (the worker count does not change the
// superstep count), and evaluates scaling policies against fixed
// deployments on both runtime and pro-rata VM-second cost.
package elastic

import (
	"fmt"

	"pregelnet/internal/core"
)

// Profile pairs two runs of the same job at different fixed worker counts,
// aligned by superstep.
type Profile struct {
	WorkersLow  int
	WorkersHigh int
	Low         []core.StepStats // per-superstep stats at WorkersLow
	High        []core.StepStats // per-superstep stats at WorkersHigh

	// MaxActive memoization: maxActiveN entries of Low have been folded into
	// maxActive. Incremental so a growing live profile stays O(1) amortized
	// per superstep (recomputing the peak per superstep made policy
	// evaluation O(steps²)).
	maxActive  int64
	maxActiveN int
}

// NewProfile validates and builds a profile. The runs must have executed the
// same schedule; small tail differences are tolerated by truncating to the
// shorter run.
func NewProfile(workersLow int, low []core.StepStats, workersHigh int, high []core.StepStats) (*Profile, error) {
	if workersLow >= workersHigh {
		return nil, fmt.Errorf("elastic: low worker count %d must be < high %d", workersLow, workersHigh)
	}
	if len(low) == 0 || len(high) == 0 {
		return nil, fmt.Errorf("elastic: empty runs")
	}
	n := len(low)
	if len(high) < n {
		n = len(high)
	}
	return &Profile{
		WorkersLow:  workersLow,
		WorkersHigh: workersHigh,
		Low:         low[:n],
		High:        high[:n],
	}, nil
}

// Steps returns the aligned superstep count.
func (p *Profile) Steps() int { return len(p.Low) }

// SpeedupPerStep returns t_low/t_high per superstep — Fig 15 (bottom).
// Values above WorkersHigh/WorkersLow are super-linear.
func (p *Profile) SpeedupPerStep() []float64 {
	out := make([]float64, p.Steps())
	for i := range out {
		if p.High[i].SimSeconds > 0 {
			out[i] = p.Low[i].SimSeconds / p.High[i].SimSeconds
		}
	}
	return out
}

// ActivePerStep returns active vertices per superstep (Fig 15 top); the two
// runs agree on this by construction, so the low run's values are used.
func (p *Profile) ActivePerStep() []int64 {
	out := make([]int64, p.Steps())
	for i := range out {
		out[i] = p.Low[i].ActiveVertices
	}
	return out
}

// MaxActive returns the peak active-vertex count across the run. The peak is
// folded incrementally: entries already scanned are never rescanned, so
// per-superstep policy consults stay O(1) amortized even though live
// profiles grow as the job runs.
func (p *Profile) MaxActive() int64 {
	for ; p.maxActiveN < len(p.Low); p.maxActiveN++ {
		if a := p.Low[p.maxActiveN].ActiveVertices; a > p.maxActive {
			p.maxActive = a
		}
	}
	return p.maxActive
}

// ClampWorkers snaps a policy's worker choice onto the profile's two real
// deployments: anything above the low count means "run high", everything
// else means "run low". A buggy policy can therefore shift a superstep
// between the two measured columns but can never be billed for a worker
// count that was not actually profiled.
func (p *Profile) ClampWorkers(w int) int {
	if w > p.WorkersLow {
		return p.WorkersHigh
	}
	return p.WorkersLow
}

// Policy chooses a worker count for each superstep.
type Policy interface {
	Name() string
	// Workers returns the worker count for superstep i of the profile.
	Workers(p *Profile, i int) int
}

// FixedPolicy always uses the same count (must be the profile's low or high).
type FixedPolicy int

// Name implements Policy.
func (f FixedPolicy) Name() string { return fmt.Sprintf("fixed-%d", int(f)) }

// Workers implements Policy.
func (f FixedPolicy) Workers(*Profile, int) int { return int(f) }

// ThresholdPolicy is the paper's dynamic heuristic: scale out to the high
// worker count when the superstep's active vertices exceed Fraction of the
// run's peak, scale in otherwise (the paper uses 50%).
type ThresholdPolicy struct {
	Fraction float64
}

// Name implements Policy.
func (t ThresholdPolicy) Name() string { return fmt.Sprintf("dynamic-%.0f%%", t.Fraction*100) }

// Workers implements Policy.
func (t ThresholdPolicy) Workers(p *Profile, i int) int {
	if float64(p.Low[i].ActiveVertices) > t.Fraction*float64(p.MaxActive()) {
		return p.WorkersHigh
	}
	return p.WorkersLow
}

// OraclePolicy picks whichever count is faster for each superstep — the
// paper's ideal-scaling upper bound.
type OraclePolicy struct{}

// Name implements Policy.
func (OraclePolicy) Name() string { return "oracle" }

// Workers implements Policy.
func (OraclePolicy) Workers(p *Profile, i int) int {
	if p.High[i].SimSeconds < p.Low[i].SimSeconds {
		return p.WorkersHigh
	}
	return p.WorkersLow
}

// Estimate is the projected outcome of running the job under a policy.
type Estimate struct {
	Policy       string
	Seconds      float64 // projected runtime
	VMSeconds    float64 // pro-rata cost: Σ workers × step seconds
	StepsAtHigh  int     // supersteps run with the high worker count
	ScaleChanges int     // number of scale-out/in transitions
	RelTime4     float64 // Seconds normalized to the fixed low-count run
	RelCost4     float64 // VMSeconds normalized to the fixed low-count run
}

// Evaluate projects a policy over the profile. Like the paper's analysis it
// does not charge scaling overheads (ScaleChanges is reported so a reader
// can judge how much overhead would matter). Policy outputs are clamped to
// the two profiled deployments — without the clamp, a policy returning any
// other count would silently be timed as the low run while being billed
// w × sec VM-seconds, an estimate for a deployment that never ran.
func Evaluate(p *Profile, policy Policy) Estimate {
	est := Estimate{Policy: policy.Name()}
	prevWorkers := -1
	for i := 0; i < p.Steps(); i++ {
		w := p.ClampWorkers(policy.Workers(p, i))
		var sec float64
		if w == p.WorkersHigh {
			sec = p.High[i].SimSeconds
			est.StepsAtHigh++
		} else {
			sec = p.Low[i].SimSeconds
		}
		est.Seconds += sec
		est.VMSeconds += float64(w) * sec
		if prevWorkers >= 0 && w != prevWorkers {
			est.ScaleChanges++
		}
		prevWorkers = w
	}
	base := Evaluate4Base(p)
	if base.Seconds > 0 {
		est.RelTime4 = est.Seconds / base.Seconds
		est.RelCost4 = est.VMSeconds / base.VMSeconds
	}
	return est
}

// Evaluate4Base returns the fixed low-worker-count baseline totals.
func Evaluate4Base(p *Profile) Estimate {
	var est Estimate
	est.Policy = FixedPolicy(p.WorkersLow).Name()
	for i := 0; i < p.Steps(); i++ {
		est.Seconds += p.Low[i].SimSeconds
		est.VMSeconds += float64(p.WorkersLow) * p.Low[i].SimSeconds
	}
	est.RelTime4, est.RelCost4 = 1, 1
	return est
}

// CompareAll evaluates the paper's four scenarios (fixed low, fixed high,
// dynamic 50%, oracle) — the bar groups of Fig 16.
func CompareAll(p *Profile) []Estimate {
	return []Estimate{
		Evaluate(p, FixedPolicy(p.WorkersLow)),
		Evaluate(p, FixedPolicy(p.WorkersHigh)),
		Evaluate(p, ThresholdPolicy{Fraction: 0.5}),
		Evaluate(p, OraclePolicy{}),
	}
}
