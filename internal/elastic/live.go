package elastic

import (
	"fmt"

	"pregelnet/internal/core"
)

// LiveController adapts an offline scaling Policy to the engine's live
// core.ElasticController interface: instead of replaying a recorded
// 4-vs-8-worker profile, it grows a profile superstep by superstep from the
// stats the manager hands it at each barrier and asks the policy where the
// *next* superstep should run. This turns the paper's §VIII what-if
// projection into an actual deployment decision.
//
// The live profile has a single measured column — the run itself — so both
// Profile columns alias the live stats. Activity-driven policies
// (ThresholdPolicy: scale out when active vertices exceed a fraction of the
// peak seen so far) work unchanged; time-comparing policies (OraclePolicy)
// degenerate to the low count because both columns carry identical timings,
// and need a recorded profile instead.
//
// After a checkpoint rollback the engine re-runs supersteps and consults
// the controller again, so replayed supersteps append duplicate entries to
// the live profile. That is harmless for threshold decisions: the policy
// only reads the latest entry and the running peak, and a maximum is
// unaffected by duplicates.
type LiveController struct {
	p      *Profile
	policy Policy
	// consults counts Workers calls; decisions counts returns that differed
	// from the current count (for reporting/tests).
	consults  int
	decisions int
	// reshufflePeriod > 0 makes every nth resize a full reshuffle instead of
	// a delta migration (see FullReshuffle).
	reshufflePeriod int
}

// NewLiveController returns a live controller that chooses between the low
// and high worker counts with the given policy. The job should start at one
// of the two counts; anything else is treated as "low" by the first
// decision's clamp.
func NewLiveController(low, high int, policy Policy) (*LiveController, error) {
	if low < 1 {
		return nil, fmt.Errorf("elastic: low worker count %d must be >= 1", low)
	}
	if low >= high {
		return nil, fmt.Errorf("elastic: low worker count %d must be < high %d", low, high)
	}
	if policy == nil {
		return nil, fmt.Errorf("elastic: nil policy")
	}
	return &LiveController{
		p:      &Profile{WorkersLow: low, WorkersHigh: high},
		policy: policy,
	}, nil
}

// Workers implements core.ElasticController: fold the just-completed
// superstep's stats into the live profile and return the policy's (clamped)
// choice for the next superstep.
func (c *LiveController) Workers(prev *core.StepStats, current int) int {
	if prev == nil {
		return current
	}
	c.consults++
	c.p.Low = append(c.p.Low, *prev)
	c.p.High = append(c.p.High, *prev)
	w := c.p.ClampWorkers(c.policy.Workers(c.p, c.p.Steps()-1))
	if w != current {
		c.decisions++
	}
	return w
}

// SetReshufflePeriod makes every nth resize a full from-scratch reshuffle
// instead of an incremental delta migration. Delta migrations preserve each
// vertex's owner, so many in a row can slowly drift the layout away from
// what a fresh partitioning would produce; a periodic reshuffle resets that
// drift at full migration cost. 0 (the default) never reshuffles.
func (c *LiveController) SetReshufflePeriod(n int) { c.reshufflePeriod = n }

// FullReshuffle implements core.ReshuffleDecider: resizes are delta
// migrations except every reshufflePeriod-th event (1-indexed), which
// recomputes the layout from scratch.
func (c *LiveController) FullReshuffle(fromWorkers, toWorkers, eventIndex int) bool {
	if c.reshufflePeriod <= 0 {
		return false
	}
	return (eventIndex+1)%c.reshufflePeriod == 0
}

// Profile returns the profile accumulated so far (both columns alias the
// live run's stats). Useful for post-run reporting.
func (c *LiveController) Profile() *Profile { return c.p }

// Consults returns how many barrier decisions the controller made and how
// many asked for a different worker count than the one running.
func (c *LiveController) Consults() (total, changed int) {
	return c.consults, c.decisions
}

var (
	_ core.ElasticController = (*LiveController)(nil)
	_ core.ReshuffleDecider  = (*LiveController)(nil)
)
