package elastic

import (
	"math"
	"testing"

	"pregelnet/internal/core"
)

// fakeProfile builds a profile with a peak in the middle: the high-worker
// run is much faster at the peak (superlinear) and slightly slower in the
// troughs (barrier overhead), mirroring Fig 15.
func fakeProfile(t *testing.T) *Profile {
	t.Helper()
	low := []core.StepStats{
		{ActiveVertices: 10, SimSeconds: 1.0},
		{ActiveVertices: 100, SimSeconds: 10.0},
		{ActiveVertices: 10, SimSeconds: 1.0},
	}
	high := []core.StepStats{
		{ActiveVertices: 10, SimSeconds: 1.2},
		{ActiveVertices: 100, SimSeconds: 3.0},
		{ActiveVertices: 10, SimSeconds: 1.2},
	}
	p, err := NewProfile(4, low, 8, high)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProfileValidation(t *testing.T) {
	steps := []core.StepStats{{SimSeconds: 1}}
	if _, err := NewProfile(8, steps, 4, steps); err == nil {
		t.Error("expected error for low >= high")
	}
	if _, err := NewProfile(4, nil, 8, steps); err == nil {
		t.Error("expected error for empty run")
	}
	long := []core.StepStats{{SimSeconds: 1}, {SimSeconds: 2}}
	p, err := NewProfile(4, long, 8, steps)
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps() != 1 {
		t.Errorf("steps = %d, want truncation to 1", p.Steps())
	}
}

func TestSpeedupPerStep(t *testing.T) {
	p := fakeProfile(t)
	sp := p.SpeedupPerStep()
	if math.Abs(sp[1]-10.0/3.0) > 1e-9 {
		t.Errorf("peak speedup = %v", sp[1])
	}
	if sp[0] >= 1 {
		t.Errorf("trough speedup = %v, want < 1 (slowdown)", sp[0])
	}
	// Peak speedup is super-linear (> 8/4 = 2).
	if sp[1] <= 2 {
		t.Errorf("peak speedup %v not superlinear", sp[1])
	}
}

func TestThresholdPolicy(t *testing.T) {
	p := fakeProfile(t)
	pol := ThresholdPolicy{Fraction: 0.5}
	if pol.Workers(p, 0) != 4 || pol.Workers(p, 1) != 8 || pol.Workers(p, 2) != 4 {
		t.Errorf("threshold policy chose %d,%d,%d", pol.Workers(p, 0), pol.Workers(p, 1), pol.Workers(p, 2))
	}
}

func TestOraclePolicy(t *testing.T) {
	p := fakeProfile(t)
	pol := OraclePolicy{}
	if pol.Workers(p, 0) != 4 || pol.Workers(p, 1) != 8 {
		t.Error("oracle picked wrong counts")
	}
}

func TestEvaluateDynamicBeatsFixed(t *testing.T) {
	p := fakeProfile(t)
	fixed4 := Evaluate(p, FixedPolicy(4))
	fixed8 := Evaluate(p, FixedPolicy(8))
	dynamic := Evaluate(p, ThresholdPolicy{Fraction: 0.5})
	oracle := Evaluate(p, OraclePolicy{})

	// Dynamic: 1.0 + 3.0 + 1.0 = 5.0s; fixed4 = 12s; fixed8 = 5.4s.
	if math.Abs(dynamic.Seconds-5.0) > 1e-9 {
		t.Errorf("dynamic seconds = %v", dynamic.Seconds)
	}
	if dynamic.Seconds >= fixed8.Seconds || dynamic.Seconds >= fixed4.Seconds {
		t.Error("dynamic should beat both fixed deployments here")
	}
	// Cost: dynamic = 4+24+4 = 32 VMs; fixed8 = 43.2; fixed4 = 48.
	if dynamic.VMSeconds >= fixed8.VMSeconds || dynamic.VMSeconds >= fixed4.VMSeconds {
		t.Errorf("dynamic cost %v should be cheapest (fixed4=%v fixed8=%v)",
			dynamic.VMSeconds, fixed4.VMSeconds, fixed8.VMSeconds)
	}
	// Oracle is a lower bound on time among policies using these two counts.
	if oracle.Seconds > dynamic.Seconds+1e-9 {
		t.Error("oracle slower than dynamic")
	}
	if dynamic.StepsAtHigh != 1 || dynamic.ScaleChanges != 2 {
		t.Errorf("dynamic ran %d high steps, %d changes", dynamic.StepsAtHigh, dynamic.ScaleChanges)
	}
	// Normalizations are relative to fixed-4.
	if math.Abs(fixed4.RelTime4-1) > 1e-9 || math.Abs(fixed4.RelCost4-1) > 1e-9 {
		t.Errorf("fixed4 normalization: %+v", fixed4)
	}
	if dynamic.RelTime4 >= 1 || dynamic.RelCost4 >= 1 {
		t.Errorf("dynamic normalized: time=%v cost=%v", dynamic.RelTime4, dynamic.RelCost4)
	}
}

func TestCompareAll(t *testing.T) {
	p := fakeProfile(t)
	all := CompareAll(p)
	if len(all) != 4 {
		t.Fatalf("len = %d", len(all))
	}
	names := []string{"fixed-4", "fixed-8", "dynamic-50%", "oracle"}
	for i, want := range names {
		if all[i].Policy != want {
			t.Errorf("policy %d = %q, want %q", i, all[i].Policy, want)
		}
	}
}

func TestMaxActive(t *testing.T) {
	p := fakeProfile(t)
	if p.MaxActive() != 100 {
		t.Errorf("max active = %d", p.MaxActive())
	}
}

func TestMaxActiveMemoized(t *testing.T) {
	// Regression: MaxActive used to rescan the whole run on every call,
	// making per-superstep policy consults O(steps²). Scanned entries are
	// now folded once — mutating one afterwards must not change the peak —
	// while entries appended to a live (growing) profile still fold in.
	p := fakeProfile(t)
	if p.MaxActive() != 100 {
		t.Fatalf("max active = %d", p.MaxActive())
	}
	p.Low[1].ActiveVertices = 5
	if got := p.MaxActive(); got != 100 {
		t.Errorf("memoized peak changed to %d after mutating a scanned entry", got)
	}
	p.Low = append(p.Low, core.StepStats{ActiveVertices: 250})
	if got := p.MaxActive(); got != 250 {
		t.Errorf("appended entry not folded in: peak = %d, want 250", got)
	}
}

// bogusPolicy returns a fixed worker count that may match neither profiled
// deployment — the kind of policy bug Evaluate must not turn into an
// impossible estimate.
type bogusPolicy int

func (b bogusPolicy) Name() string              { return "bogus" }
func (b bogusPolicy) Workers(*Profile, int) int { return int(b) }

func TestEvaluateClampsBogusPolicyOutputs(t *testing.T) {
	// Regression: a policy output outside {low, high} used to be timed as
	// the low run while billed w × sec VM-seconds — an estimate for a
	// deployment that never ran. Outputs are clamped onto the profiled
	// deployments instead.
	p := fakeProfile(t)
	fixed4 := Evaluate(p, FixedPolicy(4))
	fixed8 := Evaluate(p, FixedPolicy(8))

	over := Evaluate(p, bogusPolicy(17)) // > high → billed and timed as high
	if math.Abs(over.Seconds-fixed8.Seconds) > 1e-12 || math.Abs(over.VMSeconds-fixed8.VMSeconds) > 1e-12 {
		t.Errorf("bogus(17): %+v, want the fixed-8 estimate %+v", over, fixed8)
	}
	under := Evaluate(p, bogusPolicy(0)) // < low → billed and timed as low
	if math.Abs(under.Seconds-fixed4.Seconds) > 1e-12 || math.Abs(under.VMSeconds-fixed4.VMSeconds) > 1e-12 {
		t.Errorf("bogus(0): %+v, want the fixed-4 estimate %+v", under, fixed4)
	}
	mid := Evaluate(p, bogusPolicy(6)) // between: exceeds low → treated as high
	if math.Abs(mid.VMSeconds-fixed8.VMSeconds) > 1e-12 {
		t.Errorf("bogus(6): VMSeconds %v, want fixed-8's %v", mid.VMSeconds, fixed8.VMSeconds)
	}
}

func TestClampWorkers(t *testing.T) {
	p := &Profile{WorkersLow: 4, WorkersHigh: 8}
	for _, tc := range []struct{ in, want int }{
		{-1, 4}, {0, 4}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {17, 8},
	} {
		if got := p.ClampWorkers(tc.in); got != tc.want {
			t.Errorf("ClampWorkers(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
