package core

import "pregelnet/internal/cloud"

// msglogContainer holds spilled message-log segments. Blobs are named by the
// owning worker's prefix plus superstep, so segments from different workers
// and elastic segments never collide.
const msglogContainer = "msglog"

// blobSpill adapts the cloud blob store to transport.SpillStore so the
// message log can overflow its in-memory budget without transport importing
// cloud. Put and Get retry transient faults under the worker's policy (spill
// retries count into the worker's retry stats); Delete is best-effort at the
// call sites, so it goes straight through.
type blobSpill struct {
	store *cloud.BlobStore
	retry *cloud.RetryPolicy
}

func (s *blobSpill) Put(name string, data []byte) error {
	return s.retry.Do(func() error { return s.store.Put(msglogContainer, name, data) })
}

func (s *blobSpill) Get(name string) ([]byte, error) {
	var data []byte
	err := s.retry.Do(func() error {
		var e error
		data, e = s.store.Get(msglogContainer, name)
		return e
	})
	return data, err
}

func (s *blobSpill) Delete(name string) error {
	return s.store.Delete(msglogContainer, name)
}
