package core

import (
	"encoding/json"

	"pregelnet/internal/cloud"
	"pregelnet/internal/observe"
	"pregelnet/internal/partition"
)

// Barrier preemption (the multi-tenant job server's scheduling primitive,
// built on the live-resize machinery of the elastic runtime). A preemptible
// job consults JobSpec.BarrierPreempt after every completed superstep
// barrier — the same consistent BSP cut the elastic controller uses — and
// when the hook fires the engine runs the migrate protocol unchanged: every
// worker writes a vertex-granular migration blob of the state it would
// carry into the next superstep, the segment halts, the VMs are released,
// and Run returns a JobResult whose Suspended field holds everything needed
// to continue. Passing that Suspension back via JobSpec.Resume re-acquires
// VMs, adopts the migrated state under a fresh epoch and fresh control
// queues, and resumes at exactly the suspended superstep, so a preempted
// job's computed results are bit-identical to an uninterrupted run.

// Suspension is the opaque resumable state of a preempted job: the manager
// state that survives segment boundaries plus the layout and blob-store
// handle needed to adopt the migration blobs. It is produced by Run when
// JobSpec.BarrierPreempt fires and consumed by a later Run via
// JobSpec.Resume. A Suspension is single-use and not safe for concurrent
// resumes; the caller that keeps the job's JobSpec (same Scheduler,
// ElasticController, and Queues instances) must hand the SAME spec back
// with Resume set.
type Suspension struct {
	js            *jobState
	segment       int
	workers       int
	assignment    partition.Assignment
	resumeStep    int
	migratedBytes int64
	store         *cloud.BlobStore
	// Cumulative billing and timing through the suspension, carried so the
	// final JobResult reports whole-job totals across every run segment.
	wallSeconds float64
	costDollars float64
	vmSeconds   float64
	vmRestarts  int
}

// ResumeSuperstep is the superstep the job will execute next when resumed.
func (s *Suspension) ResumeSuperstep() int { return s.resumeStep }

// Workers is the worker count the job was suspended at (and resumes at).
func (s *Suspension) Workers() int { return s.workers }

// MigratedBytes is the vertex-state volume written out at suspension.
func (s *Suspension) MigratedBytes() int64 { return s.migratedBytes }

// CompletedSupersteps is the number of supersteps committed before the
// suspension.
func (s *Suspension) CompletedSupersteps() int { return len(s.js.steps) }

// maybeSuspend consults the preemption hook with the superstep the job
// would execute next. When the hook fires it runs the migrate protocol
// (identical to a live resize's state write-out) and halts the segment,
// handing Run a suspend request. A failed migration is absorbed exactly
// like a failed resize — checkpoint rollback when possible — and the job
// keeps running; the hook is consulted again at the next barrier.
func (m *manager[M]) maybeSuspend(js *jobState) (*resizeRequest, error) {
	prev := js.prev
	// Don't suspend a job that is about to halt: the next loop iteration
	// would finish it for free, and a suspension would strand a completed
	// job in the preempted state.
	if prev.ActiveAfter == 0 && prev.TotalSent() == 0 &&
		(m.spec.Scheduler == nil || m.spec.Scheduler.Done()) {
		return nil, nil
	}
	if !m.spec.BarrierPreempt(js.superstep) {
		return nil, nil
	}
	resume := js.superstep
	span := m.ins.tracer.Start(observe.KindPreempt, observe.ManagerWorker, resume)
	body, merr := json.Marshal(stepToken{Migrate: true, Superstep: resume})
	if merr != nil {
		span.End(observe.Str("err", merr.Error()))
		return nil, merr
	}
	for w := 0; w < m.spec.NumWorkers; w++ {
		m.stepQs[w].Put(body)
	}
	perWorker, err := m.collectMigrateAcks(resume, js.epoch)
	if err != nil {
		if span.Active() {
			span.End(observe.Str("err", err.Error()))
		}
		// The write-out failed (e.g. a VM restart scripted for the resume
		// superstep): recover like any worker failure and keep running.
		if rerr := m.rollback(js, resume, nil, err); rerr != nil {
			return nil, rerr
		}
		return nil, nil
	}
	var migrated int64
	for _, b := range perWorker {
		migrated += b
	}
	m.ins.preempts.Inc()
	if span.Active() {
		span.End(observe.Int("superstep", int64(resume)),
			observe.Int("bytes", migrated))
	}
	// Every worker's state is safely in the blob store; end the segment.
	m.halt()
	return &resizeRequest{
		fromWorkers:   m.spec.NumWorkers,
		toWorkers:     m.spec.NumWorkers,
		resumeStep:    resume,
		migratedBytes: migrated,
		suspend:       true,
	}, nil
}
