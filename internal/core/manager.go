package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"pregelnet/internal/cloud"
	"pregelnet/internal/graph"
	"pregelnet/internal/observe"
)

// manager coordinates supersteps: it posts step tokens to per-worker step
// queues, waits for all workers to check in at the barrier queue, reduces
// aggregators, asks the swath scheduler what to inject next, prices the
// superstep with the cost model, and decides when to halt (paper §III).
type manager[M any] struct {
	spec     *JobSpec[M]
	stepQs   []*cloud.Queue
	barrierQ *cloud.Queue
	fabric   *cloud.Fabric
	aggOps   map[string]AggOp
	ins      *jobInstruments
	// dupsDropped counts duplicate/stale control-plane messages tolerated
	// (at-least-once queue delivery makes them normal, not errors).
	dupsDropped int64
}

func (m *manager[M]) aggOp(name string) AggOp {
	if op, ok := m.aggOps[name]; ok {
		return op
	}
	for pat, op := range m.aggOps {
		if strings.HasSuffix(pat, "*") && strings.HasPrefix(name, pat[:len(pat)-1]) {
			return op
		}
	}
	return AggSum
}

// runError marks an error that aborts the whole job; the manager still
// shuts workers down cleanly.
type runError struct {
	Superstep int
	Err       error
}

func (e *runError) Error() string {
	return fmt.Sprintf("core: superstep %d: %v", e.Superstep, e.Err)
}

func (e *runError) Unwrap() error { return e.Err }

// run drives the job forward from js until completion, a fatal error, or a
// live resize decision. On resize it returns the request; Run migrates
// state, rebuilds the worker set, and re-enters run (through a fresh
// manager) with the same jobState. The returned timeline lives in js.steps
// and may include re-executed supersteps after recoveries.
func (m *manager[M]) run(js *jobState) (*resizeRequest, error) {
	if m.ins == nil {
		m.ins = newJobInstruments(nil, nil)
	}
	tracer := m.ins.tracer
	for {
		superstep := js.superstep
		if superstep >= m.spec.MaxSupersteps {
			m.halt()
			return nil, &runError{superstep, fmt.Errorf("exceeded MaxSupersteps=%d", m.spec.MaxSupersteps)}
		}
		// Ask the scheduler what to inject before this superstep — unless
		// this superstep is a post-recovery replay, which reuses the log.
		var injections []graph.VertexID
		if superstep <= js.scheduledThrough {
			injections = js.injectionLog[superstep]
			js.prevAggs = js.aggLog[superstep]
		} else {
			if m.spec.Scheduler != nil {
				injections = m.spec.Scheduler.NextSources(js.prev)
				tracer.Emit(observe.KindSwath, observe.ManagerWorker, superstep,
					observe.Int("injected", int64(len(injections))))
			}
			js.injectionLog[superstep] = injections
			js.aggLog[superstep] = js.prevAggs
			js.scheduledThrough = superstep
		}
		// Halt detection: nothing active, nothing in flight, nothing left to
		// inject. At superstep 0 there must be some source of activation.
		if superstep == 0 {
			if !m.spec.ActivateAll && len(injections) == 0 && m.spec.Scheduler == nil {
				m.halt()
				return nil, &runError{0, fmt.Errorf("no initial activation: set ActivateAll or a Scheduler")}
			}
		} else if len(injections) == 0 &&
			js.prev.ActiveAfter == 0 && js.prev.TotalSent() == 0 &&
			(m.spec.Scheduler == nil || m.spec.Scheduler.Done()) {
			m.halt()
			return nil, nil
		}

		checkpoint := m.spec.CheckpointEvery > 0 &&
			(superstep%m.spec.CheckpointEvery == 0 || js.forceCheckpoint)

		m.ins.supersteps.Inc()
		stepSpan := tracer.Start(observe.KindSuperstep, observe.ManagerWorker, superstep)

		// Route injections to their owning workers and send step tokens.
		perWorker := make([][]graph.VertexID, m.spec.NumWorkers)
		for _, v := range injections {
			wID := m.spec.Assignment[v]
			perWorker[wID] = append(perWorker[wID], v)
		}
		for w := 0; w < m.spec.NumWorkers; w++ {
			tok := stepToken{Superstep: superstep, Injections: perWorker[w],
				Aggregates: js.prevAggs, Checkpoint: checkpoint}
			body, merr := json.Marshal(tok)
			if merr != nil {
				m.halt()
				return nil, &runError{superstep, merr}
			}
			m.stepQs[w].Put(body)
		}

		// Collect one barrier check-in per worker. Worker failures (chaos
		// injection or anything the worker reports) trigger rollback.
		stats, cerr := m.collectBarrier(superstep)
		if cerr != nil {
			if stepSpan.Active() {
				stepSpan.End(observe.Str("err", cerr.Error()))
			}
			if rerr := m.rollback(js, superstep, cerr); rerr != nil {
				m.halt()
				return nil, &runError{superstep, rerr}
			}
			continue
		}
		if checkpoint {
			js.lastCheckpoint = superstep
			js.forceCheckpoint = false
		}
		stats.Injected = len(injections)

		// Price the superstep and advance the pay-per-use meter. A memory
		// blowout here is the fabric restarting a thrashing VM — also
		// recoverable when checkpoints exist.
		usages := make([]cloud.WorkerStepUsage, m.spec.NumWorkers)
		for w := 0; w < m.spec.NumWorkers; w++ {
			usages[w] = cloud.WorkerStepUsage{
				ComputeOps:      stats.ComputeOpsPerWorker[w],
				LocalMessages:   0,
				RemoteBytesOut:  stats.BytesOutPerWorker[w],
				RemoteBytesIn:   stats.BytesInPerWorker[w],
				PeakMemoryBytes: stats.WorkerMemory[w],
				Peers:           stats.PeersPerWorker[w],
			}
		}
		simTotal, perWorkerSec, serr := m.spec.CostModel.SuperstepSeconds(usages)
		if serr != nil {
			if stepSpan.Active() {
				stepSpan.End(observe.Str("err", serr.Error()))
			}
			if rerr := m.rollback(js, superstep, serr); rerr != nil {
				m.halt()
				return nil, &runError{superstep, rerr}
			}
			continue
		}
		stats.SimSeconds = simTotal
		stats.WorkerSimSeconds = perWorkerSec
		stats.BarrierSimSeconds = m.spec.CostModel.BarrierSeconds(m.spec.NumWorkers)
		m.fabric.Advance(simTotal)
		if stepSpan.Active() {
			stepSpan.End(
				observe.Int("active", stats.ActiveVertices),
				observe.Int("sent", stats.TotalSent()),
				observe.Int("injected", int64(stats.Injected)),
				observe.Int("retries", stats.Retries),
				observe.Float("sim_seconds", simTotal))
		}

		stats.Aggregates = stats.aggPartial
		js.prevAggs = stats.aggPartial
		if js.prevAggs == nil {
			js.prevAggs = map[string]float64{}
		}
		// GPS-style master compute: global logic over the reduced
		// aggregators, optionally mutating what gets broadcast.
		if m.spec.MasterCompute != nil {
			if hookErr := m.spec.MasterCompute(superstep, js.prevAggs); hookErr != nil {
				js.steps = append(js.steps, stats.StepStats)
				m.halt()
				if errors.Is(hookErr, ErrHaltJob) {
					return nil, nil
				}
				return nil, &runError{superstep, hookErr}
			}
		}
		js.steps = append(js.steps, stats.StepStats)
		js.statsBySuperstep[superstep] = stats.StepStats
		js.prev = &js.steps[len(js.steps)-1]
		js.superstep = superstep + 1

		// Live elastic consult: with the barrier complete and the superstep
		// priced, ask the controller whether the next superstep should run
		// at a different worker count.
		if m.spec.ElasticController != nil {
			req, elErr := m.maybeResize(js)
			if elErr != nil {
				m.halt()
				return nil, &runError{superstep, elErr}
			}
			if req != nil {
				return req, nil
			}
		}
	}
}

// rollback rolls every worker back to the last checkpoint and rewinds the
// jobState cursor for replay. Returns the (possibly wrapped) cause when
// recovery is impossible or fails.
func (m *manager[M]) rollback(js *jobState, superstep int, cause error) error {
	if m.spec.CheckpointEvery <= 0 || js.lastCheckpoint < 0 {
		return cause
	}
	if js.recoveries >= m.spec.MaxRecoveries {
		return fmt.Errorf("giving up after %d recoveries: %w", js.recoveries, cause)
	}
	js.recoveries++
	// Bump the job-wide data-plane epoch (shared with live resizes, so it
	// is strictly monotonic across rollbacks and rebuilds alike): workers
	// adopt it for outgoing batches and use it to drop duplicate deliveries
	// of this restore token.
	js.epoch++
	target := js.lastCheckpoint
	m.ins.rollbacks.Inc()
	span := m.ins.tracer.Start(observe.KindRollback, observe.ManagerWorker, superstep)
	defer func() {
		if span.Active() {
			span.End(observe.Int("target", int64(target)),
				observe.Int("recovery", int64(js.recoveries)),
				observe.Str("cause", cause.Error()))
		}
	}()
	for w := 0; w < m.spec.NumWorkers; w++ {
		body, merr := json.Marshal(stepToken{RestoreTo: &target, Epoch: js.epoch})
		if merr != nil {
			return merr
		}
		m.stepQs[w].Put(body)
	}
	if aerr := m.collectRestoreAcks(target); aerr != nil {
		return fmt.Errorf("recovery to superstep %d failed: %w (original: %v)", target, aerr, cause)
	}
	js.superstep = target
	js.prev = restorePrev(js.statsBySuperstep, target)
	return nil
}

// maybeResize consults the elastic controller with the just-completed
// superstep's stats. When the (clamped) target differs from the current
// worker count it runs the barrier-resize protocol: migrate tokens to
// every worker, one migration ack each, then halt the segment and hand the
// resize request to Run. A failed migration (e.g. a VM restart scripted
// mid-resize) is absorbed by ordinary checkpoint rollback — the segment
// continues at the old count and the controller is asked again at the next
// barrier.
func (m *manager[M]) maybeResize(js *jobState) (*resizeRequest, error) {
	prev := js.prev
	// Don't resize a job that is about to halt: the next loop iteration
	// would stop before running a superstep at the new count, paying
	// migration for nothing.
	if prev.ActiveAfter == 0 && prev.TotalSent() == 0 &&
		(m.spec.Scheduler == nil || m.spec.Scheduler.Done()) {
		return nil, nil
	}
	target := clampWorkerTarget(
		m.spec.ElasticController.Workers(prev, m.spec.NumWorkers),
		m.spec.Graph.NumVertices())
	if target == m.spec.NumWorkers {
		return nil, nil
	}
	resume := js.superstep
	kind := observe.KindScaleOut
	counter := m.ins.scaleOuts
	if target < m.spec.NumWorkers {
		kind = observe.KindScaleIn
		counter = m.ins.scaleIns
	}
	span := m.ins.tracer.Start(kind, observe.ManagerWorker, resume)
	body, merr := json.Marshal(stepToken{Migrate: true, Superstep: resume})
	if merr != nil {
		span.End(observe.Str("err", merr.Error()))
		return nil, merr
	}
	for w := 0; w < m.spec.NumWorkers; w++ {
		m.stepQs[w].Put(body)
	}
	migrated, err := m.collectMigrateAcks(resume)
	if err != nil {
		if span.Active() {
			span.End(observe.Str("err", err.Error()))
		}
		// The migration failed: recover like any worker failure and stay at
		// the current count.
		if rerr := m.rollback(js, resume, err); rerr != nil {
			return nil, rerr
		}
		return nil, nil
	}
	counter.Inc()
	if span.Active() {
		span.End(observe.Int("from", int64(m.spec.NumWorkers)),
			observe.Int("to", int64(target)),
			observe.Int("bytes", migrated))
	}
	// Every worker's state is safely in the blob store; end the segment.
	m.halt()
	return &resizeRequest{
		fromWorkers:   m.spec.NumWorkers,
		toWorkers:     target,
		resumeStep:    resume,
		migratedBytes: migrated,
	}, nil
}

// collectMigrateAcks waits for every worker to confirm writing its
// migration blob for the resume superstep, returning the total bytes
// written. Stale superstep check-ins and duplicated acks are drained and
// ignored, mirroring collectRestoreAcks.
func (m *manager[M]) collectMigrateAcks(resume int) (int64, error) {
	n := m.spec.NumWorkers
	seen := make([]bool, n)
	var total int64
	deadline := time.Now().Add(m.spec.BarrierTimeout)
	for got := 0; got < n; {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return 0, fmt.Errorf("timeout waiting for migration acks (%d/%d)", got, n)
		}
		lease := m.barrierQ.GetWait(m.spec.QueueVisibility, remaining)
		if lease == nil {
			return 0, fmt.Errorf("timeout waiting for migration acks (%d/%d)", got, n)
		}
		var msg barrierMsg
		err := json.Unmarshal(lease.Body, &msg)
		_ = m.barrierQ.Delete(lease.ID)
		if err != nil {
			return 0, fmt.Errorf("bad migration ack: %v", err)
		}
		if msg.Worker < 0 || msg.Worker >= n {
			return 0, fmt.Errorf("migration ack from unknown worker %d", msg.Worker)
		}
		if !msg.Migrated || msg.Superstep != resume || seen[msg.Worker] {
			// Stale check-ins from the just-completed execution, restore
			// acks from an earlier recovery, or duplicated migration acks:
			// at-least-once leftovers, drained and ignored.
			m.dupsDropped++
			continue
		}
		if msg.Err != "" {
			return 0, fmt.Errorf("worker %d migration failed: %s", msg.Worker, msg.Err)
		}
		seen[msg.Worker] = true
		got++
		total += msg.MigratedBytes
	}
	return total, nil
}

// restorePrev returns the stats preceding the checkpointed superstep, for
// halt checks during replay (nil when rolling back to superstep 0).
func restorePrev(bySuper map[int]StepStats, checkpoint int) *StepStats {
	if checkpoint <= 0 {
		return nil
	}
	if s, ok := bySuper[checkpoint-1]; ok {
		return &s
	}
	return nil
}

// collectRestoreAcks waits for every worker to confirm a rollback. The
// barrier queue may still hold duplicates and stale check-ins from the
// aborted execution (at-least-once delivery, straggler check-ins arriving
// after the rollback decision); those are drained and ignored — only a
// restore ack for the wrong target, a failed restore, or running out of time
// fails the recovery.
func (m *manager[M]) collectRestoreAcks(target int) error {
	n := m.spec.NumWorkers
	seen := make([]bool, n)
	deadline := time.Now().Add(m.spec.BarrierTimeout)
	for got := 0; got < n; {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("timeout waiting for restore acks (%d/%d)", got, n)
		}
		lease := m.barrierQ.GetWait(m.spec.QueueVisibility, remaining)
		if lease == nil {
			return fmt.Errorf("timeout waiting for restore acks (%d/%d)", got, n)
		}
		var msg barrierMsg
		err := json.Unmarshal(lease.Body, &msg)
		_ = m.barrierQ.Delete(lease.ID)
		if err != nil {
			return fmt.Errorf("bad restore ack: %v", err)
		}
		if msg.Worker < 0 || msg.Worker >= n {
			return fmt.Errorf("restore ack from unknown worker %d", msg.Worker)
		}
		if !msg.Restored {
			// A stale superstep check-in from the aborted execution (e.g. a
			// straggler that finished after the rollback decision). Ignore.
			m.dupsDropped++
			continue
		}
		if msg.Superstep != target || seen[msg.Worker] {
			// Duplicate ack (redelivered message) or ack for an older
			// recovery. Ignore.
			m.dupsDropped++
			continue
		}
		if msg.Err != "" {
			return fmt.Errorf("worker %d: %s", msg.Worker, msg.Err)
		}
		seen[msg.Worker] = true
		got++
	}
	return nil
}

// collected extends StepStats with manager-internal per-worker columns.
type collected struct {
	StepStats
	ComputeOpsPerWorker []int64
	BytesOutPerWorker   []int64
	BytesInPerWorker    []int64
	PeersPerWorker      []int
	aggPartial          map[string]float64
}

func (m *manager[M]) collectBarrier(superstep int) (collected, error) {
	span := m.ins.tracer.Start(observe.KindBarrierCollect, observe.ManagerWorker, superstep)
	defer span.End()
	n := m.spec.NumWorkers
	c := collected{
		StepStats: StepStats{
			Superstep:    superstep,
			Workers:      n,
			WorkerSent:   make([]int64, n),
			WorkerMemory: make([]int64, n),
			WorkerActive: make([]int64, n),
		},
		ComputeOpsPerWorker: make([]int64, n),
		BytesOutPerWorker:   make([]int64, n),
		BytesInPerWorker:    make([]int64, n),
		PeersPerWorker:      make([]int, n),
	}
	seen := make([]bool, n)
	var workerErr error
	// Straggler detection: the whole barrier must complete within
	// BarrierTimeout. A worker that misses the deadline is treated as failed
	// — the caller rolls back to the last checkpoint — instead of blocking
	// the job on an open-ended wait.
	deadline := time.Now().Add(m.spec.BarrierTimeout)
	for got := 0; got < n; {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return c, fmt.Errorf("barrier timeout: straggler at superstep %d (%d/%d checked in within %v)",
				superstep, got, n, m.spec.BarrierTimeout)
		}
		waitStart := time.Now()
		lease := m.barrierQ.GetWait(m.spec.QueueVisibility, remaining)
		m.ins.barrier.Observe(time.Since(waitStart).Seconds())
		if lease == nil {
			return c, fmt.Errorf("barrier timeout: straggler at superstep %d (%d/%d checked in within %v)",
				superstep, got, n, m.spec.BarrierTimeout)
		}
		var msg barrierMsg
		err := json.Unmarshal(lease.Body, &msg)
		_ = m.barrierQ.Delete(lease.ID)
		if err != nil {
			return c, fmt.Errorf("bad barrier message: %v", err)
		}
		if msg.Worker < 0 || msg.Worker >= n {
			return c, fmt.Errorf("barrier message from unknown worker %d", msg.Worker)
		}
		if msg.Restored || msg.Migrated || msg.Superstep != superstep || seen[msg.Worker] {
			// At-least-once control plane: duplicate check-ins (redelivered
			// barrier messages), stale check-ins from an aborted pre-rollback
			// execution, late restore acks, and migration acks from a resize
			// attempt that was rolled back are all expected under faults.
			// Dedupe by (worker, superstep) and drop the rest.
			m.dupsDropped++
			c.DuplicatesDropped++
			continue
		}
		seen[msg.Worker] = true
		got++
		c.Retries += msg.Retries
		if msg.Err != "" {
			// Keep draining the remaining check-ins so the queue is clean
			// for a recovery attempt, then report the failure.
			if workerErr == nil {
				workerErr = fmt.Errorf("worker %d failed: %s", msg.Worker, msg.Err)
			}
			continue
		}
		w := msg.Worker
		c.ActiveVertices += msg.Active
		c.ActiveAfter += msg.ActiveAfter
		c.SentLocal += msg.SentLocal
		c.SentRemote += msg.SentRemote
		c.RemoteBytes += msg.BytesOut
		c.ComputeOps += msg.ComputeOps
		c.WorkerSent[w] = msg.SentLocal + msg.SentRemote
		c.WorkerMemory[w] = msg.PeakMemory
		c.WorkerActive[w] = msg.Active
		if msg.PeakMemory > c.PeakMemoryBytes {
			c.PeakMemoryBytes = msg.PeakMemory
		}
		c.ComputeOpsPerWorker[w] = msg.ComputeOps
		c.BytesOutPerWorker[w] = msg.BytesOut
		c.BytesInPerWorker[w] = msg.BytesIn
		c.PeersPerWorker[w] = msg.Peers
		for name, v := range msg.Aggregates {
			if c.aggPartial == nil {
				c.aggPartial = make(map[string]float64)
			}
			if prevV, ok := c.aggPartial[name]; ok {
				c.aggPartial[name] = m.aggOp(name).combine(prevV, v)
			} else {
				c.aggPartial[name] = v
			}
		}
	}
	return c, workerErr
}

// halt sends halt tokens so every worker exits cleanly.
func (m *manager[M]) halt() {
	body, _ := json.Marshal(stepToken{Halt: true})
	for _, q := range m.stepQs {
		q.Put(body)
	}
}
