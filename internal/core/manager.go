package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"pregelnet/internal/cloud"
	"pregelnet/internal/graph"
	"pregelnet/internal/observe"
)

// manager coordinates supersteps: it posts step tokens to per-worker step
// queues, waits for all workers to check in at the barrier queue, reduces
// aggregators, asks the swath scheduler what to inject next, prices the
// superstep with the cost model, and decides when to halt (paper §III).
type manager[M any] struct {
	spec     *JobSpec[M]
	stepQs   []*cloud.Queue
	barrierQ *cloud.Queue
	fabric   *cloud.Fabric
	aggOps   map[string]AggOp
	ins      *jobInstruments
	// dupsDropped counts duplicate/stale control-plane messages tolerated
	// (at-least-once queue delivery makes them normal, not errors).
	dupsDropped int64
}

func (m *manager[M]) aggOp(name string) AggOp {
	if op, ok := m.aggOps[name]; ok {
		return op
	}
	for pat, op := range m.aggOps {
		if strings.HasSuffix(pat, "*") && strings.HasPrefix(name, pat[:len(pat)-1]) {
			return op
		}
	}
	return AggSum
}

// runError marks an error that aborts the whole job; the manager still
// shuts workers down cleanly.
type runError struct {
	Superstep int
	Err       error
}

func (e *runError) Error() string {
	return fmt.Sprintf("core: superstep %d: %v", e.Superstep, e.Err)
}

func (e *runError) Unwrap() error { return e.Err }

// run drives the job forward from js until completion, a fatal error, or a
// live resize decision. On resize it returns the request; Run migrates
// state, rebuilds the worker set, and re-enters run (through a fresh
// manager) with the same jobState. The returned timeline lives in js.steps
// and may include re-executed supersteps after recoveries.
func (m *manager[M]) run(js *jobState) (*resizeRequest, error) {
	if m.ins == nil {
		m.ins = newJobInstruments(nil, nil)
	}
	tracer := m.ins.tracer
	for {
		superstep := js.superstep
		if superstep >= m.spec.MaxSupersteps {
			m.halt()
			return nil, &runError{superstep, fmt.Errorf("exceeded MaxSupersteps=%d", m.spec.MaxSupersteps)}
		}
		// Ask the scheduler what to inject before this superstep — unless
		// this superstep is a post-recovery replay, which reuses the log.
		var injections []graph.VertexID
		if superstep <= js.scheduledThrough {
			injections = js.injectionLog[superstep]
			js.prevAggs = js.aggLog[superstep]
		} else {
			if m.spec.Scheduler != nil {
				injections = m.spec.Scheduler.NextSources(js.prev)
				tracer.Emit(observe.KindSwath, observe.ManagerWorker, superstep,
					observe.Int("injected", int64(len(injections))))
			}
			js.injectionLog[superstep] = injections
			js.aggLog[superstep] = js.prevAggs
			js.scheduledThrough = superstep
		}
		// Halt detection: nothing active, nothing in flight, nothing left to
		// inject. At superstep 0 there must be some source of activation.
		if superstep == 0 {
			if !m.spec.ActivateAll && len(injections) == 0 && m.spec.Scheduler == nil {
				m.halt()
				return nil, &runError{0, fmt.Errorf("no initial activation: set ActivateAll or a Scheduler")}
			}
		} else if len(injections) == 0 &&
			js.prev.ActiveAfter == 0 && js.prev.TotalSent() == 0 &&
			(m.spec.Scheduler == nil || m.spec.Scheduler.Done()) {
			m.halt()
			return nil, nil
		}

		checkpoint := m.spec.CheckpointEvery > 0 &&
			(superstep%m.spec.CheckpointEvery == 0 || js.forceCheckpoint)
		if checkpoint {
			m.noteCkptAttempt(js, superstep)
		}

		m.ins.supersteps.Inc()
		stepSpan := tracer.Start(observe.KindSuperstep, observe.ManagerWorker, superstep)

		// Route injections to their owning workers and send step tokens.
		perWorker := make([][]graph.VertexID, m.spec.NumWorkers)
		for _, v := range injections {
			wID := m.spec.Assignment[v]
			perWorker[wID] = append(perWorker[wID], v)
		}
		for w := 0; w < m.spec.NumWorkers; w++ {
			tok := stepToken{Superstep: superstep, Injections: perWorker[w],
				Aggregates: js.prevAggs, Checkpoint: checkpoint,
				LastCkpt: js.lastCheckpoint}
			body, merr := json.Marshal(tok)
			if merr != nil {
				m.halt()
				return nil, &runError{superstep, merr}
			}
			m.stepQs[w].Put(body)
		}

		// Collect one barrier check-in per worker. Worker failures (chaos
		// injection or anything the worker reports) trigger recovery:
		// confined when only the failed workers need rewinding, a global
		// rollback otherwise. A successful confined recovery leaves `stats`
		// holding the superstep's merged statistics, so execution falls
		// through to commit the barrier as if it had never failed.
		stats, cerr := m.collectBarrier(superstep, js.epoch)
		if cerr != nil {
			if !m.confinedRecover(js, superstep, checkpoint, &stats, cerr) {
				if stepSpan.Active() {
					stepSpan.End(observe.Str("err", cerr.Error()))
				}
				if rerr := m.rollback(js, superstep, stats.failedWorkers, cerr); rerr != nil {
					m.halt()
					return nil, &runError{superstep, rerr}
				}
				continue
			}
		}
		if checkpoint {
			m.gcCheckpoints(js, superstep)
			js.lastCheckpoint = superstep
			js.forceCheckpoint = false
		}
		stats.Injected = len(injections)

		// Price the superstep and advance the pay-per-use meter. A memory
		// blowout here is the fabric restarting a thrashing VM — also
		// recoverable when checkpoints exist.
		usages := make([]cloud.WorkerStepUsage, m.spec.NumWorkers)
		for w := 0; w < m.spec.NumWorkers; w++ {
			usages[w] = cloud.WorkerStepUsage{
				ComputeOps:      stats.ComputeOpsPerWorker[w],
				LocalMessages:   0,
				RemoteBytesOut:  stats.BytesOutPerWorker[w],
				RemoteBytesIn:   stats.BytesInPerWorker[w],
				PeakMemoryBytes: stats.WorkerMemory[w],
				Peers:           stats.PeersPerWorker[w],
			}
		}
		simTotal, perWorkerSec, serr := m.spec.CostModel.SuperstepSeconds(usages)
		if serr != nil {
			if stepSpan.Active() {
				stepSpan.End(observe.Str("err", serr.Error()))
			}
			if rerr := m.rollback(js, superstep, nil, serr); rerr != nil {
				m.halt()
				return nil, &runError{superstep, rerr}
			}
			continue
		}
		stats.SimSeconds = simTotal
		stats.WorkerSimSeconds = perWorkerSec
		stats.BarrierSimSeconds = m.spec.CostModel.BarrierSeconds(m.spec.NumWorkers)
		m.fabric.Advance(simTotal)
		m.accrueOpenRecoveries(js, superstep, simTotal, usages)
		if stepSpan.Active() {
			stepSpan.End(
				observe.Int("active", stats.ActiveVertices),
				observe.Int("sent", stats.TotalSent()),
				observe.Int("injected", int64(stats.Injected)),
				observe.Int("retries", stats.Retries),
				observe.Float("sim_seconds", simTotal))
		}

		stats.Aggregates = stats.aggPartial
		js.prevAggs = stats.aggPartial
		if js.prevAggs == nil {
			js.prevAggs = map[string]float64{}
		}
		// GPS-style master compute: global logic over the reduced
		// aggregators, optionally mutating what gets broadcast.
		if m.spec.MasterCompute != nil {
			if hookErr := m.spec.MasterCompute(superstep, js.prevAggs); hookErr != nil {
				js.steps = append(js.steps, stats.StepStats)
				m.halt()
				if errors.Is(hookErr, ErrHaltJob) {
					return nil, nil
				}
				return nil, &runError{superstep, hookErr}
			}
		}
		js.steps = append(js.steps, stats.StepStats)
		js.statsBySuperstep[superstep] = stats.StepStats
		js.prev = &js.steps[len(js.steps)-1]
		js.superstep = superstep + 1
		if m.spec.OnStep != nil {
			m.spec.OnStep(stats.StepStats)
		}

		// Live elastic consult: with the barrier complete and the superstep
		// priced, ask the controller whether the next superstep should run
		// at a different worker count.
		if m.spec.ElasticController != nil {
			req, elErr := m.maybeResize(js)
			if elErr != nil {
				m.halt()
				return nil, &runError{superstep, elErr}
			}
			if req != nil {
				return req, nil
			}
		}
		// Preemption consult: same consistent BSP cut, after any resize
		// decision (a barrier that resized starts the next segment; the
		// preemption hook is asked again at that segment's first barrier).
		if m.spec.BarrierPreempt != nil {
			req, perr := m.maybeSuspend(js)
			if perr != nil {
				m.halt()
				return nil, &runError{superstep, perr}
			}
			if req != nil {
				return req, nil
			}
		}
	}
}

// rollback rolls every worker back to the last checkpoint and rewinds the
// jobState cursor for replay — the global recovery path, used when confined
// recovery is disabled, inapplicable (too many failures, no live survivor
// state to replay from), or failed partway. failed names the workers whose
// failure triggered it (nil when the cause is not worker-attributable, e.g.
// a pricing error). Returns the (possibly wrapped) cause when recovery is
// impossible or fails.
func (m *manager[M]) rollback(js *jobState, superstep int, failed []int, cause error) error {
	if m.spec.CheckpointEvery <= 0 || js.lastCheckpoint < 0 {
		return cause
	}
	if js.recoveries >= m.spec.MaxRecoveries {
		return fmt.Errorf("giving up after %d recoveries: %w", js.recoveries, cause)
	}
	js.recoveries++
	// Bump the job-wide data-plane epoch (shared with live resizes, so it
	// is strictly monotonic across rollbacks and rebuilds alike): workers
	// adopt it for outgoing batches and use it to drop duplicate deliveries
	// of this restore token.
	js.epoch++
	target := js.lastCheckpoint
	m.ins.rollbacks.Inc()
	span := m.ins.tracer.Start(observe.KindRollback, observe.ManagerWorker, superstep)
	defer func() {
		if span.Active() {
			span.End(observe.Str("mode", "global"),
				observe.Int("target", int64(target)),
				observe.Int("recovery", int64(js.recoveries)),
				observe.Str("cause", cause.Error()))
		}
	}()
	everyone := make([]bool, m.spec.NumWorkers)
	for i := range everyone {
		everyone[i] = true
	}
	for w := 0; w < m.spec.NumWorkers; w++ {
		body, merr := json.Marshal(stepToken{RestoreTo: &target, Epoch: js.epoch})
		if merr != nil {
			return merr
		}
		m.stepQs[w].Put(body)
	}
	if aerr := m.collectRestoreAcks(target, js.epoch, everyone); aerr != nil {
		return fmt.Errorf("recovery to superstep %d failed: %w (original: %v)", target, aerr, cause)
	}
	// Record the recovery and leave it open: the main loop accrues each
	// re-executed superstep's duplicated cost into the event until the
	// cursor passes the failure point again.
	js.recoveryEvents = append(js.recoveryEvents, RecoveryEvent{
		AtSuperstep:   superstep,
		Checkpoint:    target,
		Confined:      false,
		FailedWorkers: append([]int(nil), failed...),
	})
	js.openRecoveries = append(js.openRecoveries, len(js.recoveryEvents)-1)
	js.superstep = target
	js.prev = restorePrev(js.statsBySuperstep, target)
	return nil
}

// confinedRecover attempts Pregel-style confined recovery for a failed
// barrier at superstep: only the workers in stats.failedWorkers restore
// from the last checkpoint and re-execute the lost supersteps; every
// survivor keeps its live state and replays its logged outbound messages
// into the failed set. Returns true when the recovery completed — stats
// then holds the superstep's merged statistics (survivors' originals plus
// the failed workers' re-executions) and the caller commits the barrier as
// if it had succeeded. Returns false when confined recovery is not
// applicable or failed partway; falling back to a global rollback is safe
// at any point because the fallback restores everyone under a fresh epoch.
func (m *manager[M]) confinedRecover(js *jobState, superstep int, ckpt bool, stats *collected, cause error) bool {
	failed := stats.failedWorkers
	if m.spec.RecoveryMode != RecoverConfined ||
		m.spec.CheckpointEvery <= 0 || js.lastCheckpoint < 0 ||
		len(failed) == 0 || len(failed) > m.spec.ConfinedMaxFailed ||
		len(failed) >= m.spec.NumWorkers ||
		js.recoveries >= m.spec.MaxRecoveries {
		return false
	}
	js.recoveries++
	js.epoch++
	target := js.lastCheckpoint
	m.ins.rollbacks.Inc()
	m.ins.confined.Inc()
	ev := RecoveryEvent{
		AtSuperstep:   superstep,
		Checkpoint:    target,
		Confined:      true,
		FailedWorkers: append([]int(nil), failed...),
	}
	span := m.ins.tracer.Start(observe.KindRollback, observe.ManagerWorker, superstep)
	err := m.runConfined(js, superstep, ckpt, stats, &ev)
	if span.Active() {
		attrs := []observe.Attr{
			observe.Str("mode", "confined"),
			observe.Int("target", int64(target)),
			observe.Int("recovery", int64(js.recoveries)),
			observe.Int("failed", int64(len(failed))),
			observe.Str("cause", cause.Error()),
		}
		if err != nil {
			attrs = append(attrs, observe.Str("err", err.Error()))
		}
		span.End(attrs...)
	}
	if err != nil {
		return false
	}
	// Replay rounds span [checkpoint, failure] inclusive: the failed workers
	// re-executed every one of them.
	ev.ReplaySupersteps = superstep - target + 1
	js.recoveryEvents = append(js.recoveryEvents, ev)
	return true
}

// runConfined drives the confined-recovery protocol: restore tokens to the
// failed workers only, then one replay round per lost superstep in which
// the failed workers re-execute (suppressing deliveries to survivors, whose
// inboxes already hold this traffic) and the survivors re-send their logged
// outbound batches into the failed set. Replay rounds before the failure
// superstep are priced and advance the fabric clock (wall-clock the job
// would not have spent without the failure); the final round overlaps the
// failed barrier the caller re-commits, so only its duplicated work accrues
// to the event. Any error aborts the attempt — survivors were never rolled
// back, so the caller's global fallback remains sound.
func (m *manager[M]) runConfined(js *jobState, superstep int, ckpt bool, stats *collected, ev *RecoveryEvent) error {
	n := m.spec.NumWorkers
	target := ev.Checkpoint
	failedSet := make([]bool, n)
	for _, w := range ev.FailedWorkers {
		failedSet[w] = true
	}
	for _, w := range ev.FailedWorkers {
		body, merr := json.Marshal(stepToken{RestoreTo: &target, Epoch: js.epoch})
		if merr != nil {
			return merr
		}
		m.stepQs[w].Put(body)
	}
	if err := m.collectRestoreAcks(target, js.epoch, failedSet); err != nil {
		return err
	}
	for s := target; s <= superstep; s++ {
		// Re-route the recorded scheduler decisions for the failed workers;
		// survivors already consumed theirs in the original execution.
		perWorker := make([][]graph.VertexID, n)
		for _, v := range js.injectionLog[s] {
			wID := m.spec.Assignment[v]
			if failedSet[wID] {
				perWorker[wID] = append(perWorker[wID], v)
			}
		}
		for w := 0; w < n; w++ {
			tok := stepToken{
				Superstep: s, Replay: true, Failed: ev.FailedWorkers,
				Epoch: js.epoch, LastCkpt: target,
				// Only the failure superstep's checkpoint needs rewriting (a
				// snapshot at `target` already exists, and no checkpoint
				// committed in between — `target` would have moved); survivors'
				// snapshots for it were written before they checked in cleanly.
				Checkpoint: ckpt && s == superstep && failedSet[w],
			}
			if failedSet[w] {
				tok.Injections = perWorker[w]
				tok.Aggregates = js.aggLog[s]
			}
			body, merr := json.Marshal(tok)
			if merr != nil {
				return merr
			}
			m.stepQs[w].Put(body)
		}
		m.ins.supersteps.Inc()
		replaySpan := m.ins.tracer.Start(observe.KindSuperstep, observe.ManagerWorker, s)
		final := stats
		if s < superstep {
			final = nil
		}
		usages, err := m.collectReplay(s, js.epoch, failedSet, ev, final)
		if err != nil {
			if replaySpan.Active() {
				replaySpan.End(observe.Str("mode", "replay"), observe.Str("err", err.Error()))
			}
			return err
		}
		rec, rerr := m.spec.CostModel.RecoverySeconds(usages)
		if rerr != nil {
			if replaySpan.Active() {
				replaySpan.End(observe.Str("mode", "replay"), observe.Str("err", rerr.Error()))
			}
			return rerr
		}
		ev.RecoverySeconds += rec
		if s < superstep {
			total, _, serr := m.spec.CostModel.SuperstepSeconds(usages)
			if serr != nil {
				if replaySpan.Active() {
					replaySpan.End(observe.Str("mode", "replay"), observe.Str("err", serr.Error()))
				}
				return serr
			}
			m.fabric.Advance(total)
			ev.SimSeconds += total
		}
		if replaySpan.Active() {
			replaySpan.End(
				observe.Str("mode", "replay"),
				observe.Int("replayed_msgs", ev.ReplayedMsgs),
				observe.Float("recovery_seconds", rec))
		}
	}
	return nil
}

// collectReplay collects one replay round's n check-ins: a full
// re-execution check-in from each failed worker and a Replayed ack
// (carrying replayed message/byte counts) from each survivor, all under the
// recovery epoch. It returns the round's per-worker usage — failed workers'
// full usage, survivors' replay traffic only — and, when final is non-nil
// (the failure superstep itself), merges the failed workers' fresh
// statistics into it alongside the survivors' originals.
func (m *manager[M]) collectReplay(s, epoch int, failedSet []bool, ev *RecoveryEvent, final *collected) ([]cloud.WorkerStepUsage, error) {
	n := m.spec.NumWorkers
	usages := make([]cloud.WorkerStepUsage, n)
	seen := make([]bool, n)
	deadline := time.Now().Add(m.spec.BarrierTimeout)
	for got := 0; got < n; {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("replay superstep %d: timeout (%d/%d checked in): missing workers %v",
				s, got, n, missingWorkers(nil, seen))
		}
		lease := m.barrierQ.GetWait(m.spec.QueueVisibility, remaining)
		if lease == nil {
			return nil, fmt.Errorf("replay superstep %d: timeout (%d/%d checked in): missing workers %v",
				s, got, n, missingWorkers(nil, seen))
		}
		var msg barrierMsg
		err := json.Unmarshal(lease.Body, &msg)
		_ = m.barrierQ.Delete(lease.ID)
		if err != nil {
			return nil, fmt.Errorf("bad replay check-in: %v", err)
		}
		if msg.Worker < 0 || msg.Worker >= n {
			return nil, fmt.Errorf("replay check-in from unknown worker %d", msg.Worker)
		}
		// A failed worker checks in with full re-execution stats (Replayed
		// false); a survivor with a Replayed ack. Anything else — stale
		// pre-recovery check-ins, redelivered acks from earlier rounds,
		// re-acks for duplicated replay tokens — is at-least-once leftover.
		if msg.Superstep != s || msg.Epoch != epoch || seen[msg.Worker] ||
			msg.Restored || msg.Migrated || msg.Replayed == failedSet[msg.Worker] {
			m.dupsDropped++
			continue
		}
		if msg.Err != "" {
			return nil, fmt.Errorf("worker %d: %s", msg.Worker, msg.Err)
		}
		seen[msg.Worker] = true
		got++
		w := msg.Worker
		if failedSet[w] {
			usages[w] = cloud.WorkerStepUsage{
				ComputeOps:      msg.ComputeOps,
				RemoteBytesOut:  msg.BytesOut,
				RemoteBytesIn:   msg.BytesIn,
				PeakMemoryBytes: msg.PeakMemory,
				Peers:           msg.Peers,
			}
			if final != nil {
				final.Retries += msg.Retries
				m.mergeCheckIn(final, msg)
			}
		} else {
			ev.ReplayedMsgs += msg.SentRemote
			ev.ReplayedBytes += msg.BytesOut
			if msg.BytesOut > 0 {
				usages[w] = cloud.WorkerStepUsage{
					RemoteBytesOut: msg.BytesOut,
					Peers:          len(ev.FailedWorkers),
				}
			}
		}
	}
	return usages, nil
}

// accrueOpenRecoveries charges a re-executed superstep to every global
// recovery still replaying past its failure point. Confined recoveries
// never appear here — their replay rounds are priced inside runConfined —
// but a global rollback re-runs everything through the main loop, so its
// duplicated cost is collected as the cursor passes back over
// [checkpoint, failure].
func (m *manager[M]) accrueOpenRecoveries(js *jobState, superstep int, simTotal float64, usages []cloud.WorkerStepUsage) {
	if len(js.openRecoveries) == 0 {
		return
	}
	rec, err := m.spec.CostModel.RecoverySeconds(usages)
	if err != nil {
		rec = 0 // unreachable: SuperstepSeconds already priced these usages
	}
	kept := js.openRecoveries[:0]
	for _, idx := range js.openRecoveries {
		ev := &js.recoveryEvents[idx]
		if superstep <= ev.AtSuperstep {
			ev.RecoverySeconds += rec
			ev.SimSeconds += simTotal
			ev.ReplaySupersteps++
		}
		if superstep < ev.AtSuperstep {
			kept = append(kept, idx)
		}
	}
	js.openRecoveries = kept
}

// noteCkptAttempt records that checkpoint blobs for superstep may now exist
// under the current worker count, so a later commit can garbage-collect
// them if they end up superseded (e.g. the attempt's barrier fails and the
// job recovers past it, orphaning partial snapshots).
func (m *manager[M]) noteCkptAttempt(js *jobState, superstep int) {
	for _, g := range js.ckptGens {
		if g.step == superstep && g.workers == m.spec.NumWorkers {
			return
		}
	}
	js.ckptGens = append(js.ckptGens, ckptGen{step: superstep, workers: m.spec.NumWorkers})
}

// gcCheckpoints deletes every checkpoint generation superseded by the one
// just committed at superstep: once that barrier has succeeded, older
// snapshots (and orphaned partial attempts) can never be restored again.
// GC runs only at commit time, so a torn write of the NEW checkpoint can
// never strand the job — the previous complete generation survives until
// its successor is fully durable.
func (m *manager[M]) gcCheckpoints(js *jobState, superstep int) {
	if m.spec.CheckpointStore != nil {
		for _, g := range js.ckptGens {
			if g.step == superstep && g.workers == m.spec.NumWorkers {
				continue
			}
			for w := 0; w < g.workers; w++ {
				// Best-effort: a missing blob (torn write, never attempted by a
				// failed worker) is already gone.
				_ = m.spec.CheckpointStore.Delete(checkpointContainer, checkpointBlob(g.step, w))
			}
		}
	}
	js.ckptGens = js.ckptGens[:0]
	js.ckptGens = append(js.ckptGens, ckptGen{step: superstep, workers: m.spec.NumWorkers})
}

// missingWorkers lists the wanted workers not yet seen (want nil = all).
func missingWorkers(want, seen []bool) []int {
	missing := []int{}
	for w := range seen {
		if (want == nil || want[w]) && !seen[w] {
			missing = append(missing, w)
		}
	}
	return missing
}

// maybeResize consults the elastic controller with the just-completed
// superstep's stats. When the (clamped) target differs from the current
// worker count it runs the barrier-resize protocol: migrate tokens to
// every worker, one migration ack each, then halt the segment and hand the
// resize request to Run. A failed migration (e.g. a VM restart scripted
// mid-resize) is absorbed by ordinary checkpoint rollback — the segment
// continues at the old count and the controller is asked again at the next
// barrier.
func (m *manager[M]) maybeResize(js *jobState) (*resizeRequest, error) {
	prev := js.prev
	// Don't resize a job that is about to halt: the next loop iteration
	// would stop before running a superstep at the new count, paying
	// migration for nothing.
	if prev.ActiveAfter == 0 && prev.TotalSent() == 0 &&
		(m.spec.Scheduler == nil || m.spec.Scheduler.Done()) {
		return nil, nil
	}
	target := clampWorkerTarget(
		m.spec.ElasticController.Workers(prev, m.spec.NumWorkers),
		m.spec.Graph.NumVertices())
	if target == m.spec.NumWorkers {
		return nil, nil
	}
	resume := js.superstep
	kind := observe.KindScaleOut
	counter := m.ins.scaleOuts
	if target < m.spec.NumWorkers {
		kind = observe.KindScaleIn
		counter = m.ins.scaleIns
	}
	span := m.ins.tracer.Start(kind, observe.ManagerWorker, resume)
	body, merr := json.Marshal(stepToken{Migrate: true, Superstep: resume})
	if merr != nil {
		span.End(observe.Str("err", merr.Error()))
		return nil, merr
	}
	for w := 0; w < m.spec.NumWorkers; w++ {
		m.stepQs[w].Put(body)
	}
	perWorker, err := m.collectMigrateAcks(resume, js.epoch)
	if err != nil {
		if span.Active() {
			span.End(observe.Str("err", err.Error()))
		}
		// The migration failed: recover like any worker failure and stay at
		// the current count.
		if rerr := m.rollback(js, resume, nil, err); rerr != nil {
			return nil, rerr
		}
		return nil, nil
	}
	var migrated int64
	for _, b := range perWorker {
		migrated += b
	}
	counter.Inc()
	if span.Active() {
		span.End(observe.Int("from", int64(m.spec.NumWorkers)),
			observe.Int("to", int64(target)),
			observe.Int("bytes", migrated))
	}
	// Every worker's state is safely in the blob store; end the segment.
	m.halt()
	return &resizeRequest{
		fromWorkers:       m.spec.NumWorkers,
		toWorkers:         target,
		resumeStep:        resume,
		migratedBytes:     migrated,
		migratedPerWorker: perWorker,
	}, nil
}

// collectMigrateAcks waits for every worker to confirm writing its
// migration blob for the resume superstep, returning the per-worker bytes
// written (indexed by worker; movedStateBytes prices the cross-owner share
// from these). Stale superstep check-ins, acks from an abandoned resize
// attempt before a recovery (wrong epoch), and duplicated acks are drained
// and ignored, mirroring collectRestoreAcks. The deadline comes from
// JobSpec.MigrateAckTimeout and the timeout error names the silent workers.
func (m *manager[M]) collectMigrateAcks(resume, epoch int) ([]int64, error) {
	n := m.spec.NumWorkers
	seen := make([]bool, n)
	perWorker := make([]int64, n)
	deadline := time.Now().Add(m.spec.MigrateAckTimeout)
	for got := 0; got < n; {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("timeout waiting for migration acks (%d/%d): missing workers %v",
				got, n, missingWorkers(nil, seen))
		}
		lease := m.barrierQ.GetWait(m.spec.QueueVisibility, remaining)
		if lease == nil {
			return nil, fmt.Errorf("timeout waiting for migration acks (%d/%d): missing workers %v",
				got, n, missingWorkers(nil, seen))
		}
		var msg barrierMsg
		err := json.Unmarshal(lease.Body, &msg)
		_ = m.barrierQ.Delete(lease.ID)
		if err != nil {
			return nil, fmt.Errorf("bad migration ack: %v", err)
		}
		if msg.Worker < 0 || msg.Worker >= n {
			return nil, fmt.Errorf("migration ack from unknown worker %d", msg.Worker)
		}
		if !msg.Migrated || msg.Superstep != resume || msg.Epoch != epoch || seen[msg.Worker] {
			// Stale check-ins from the just-completed execution, restore
			// acks from an earlier recovery, or duplicated migration acks:
			// at-least-once leftovers, drained and ignored.
			m.dupsDropped++
			continue
		}
		if msg.Err != "" {
			return nil, fmt.Errorf("worker %d migration failed: %s", msg.Worker, msg.Err)
		}
		seen[msg.Worker] = true
		got++
		perWorker[msg.Worker] = msg.MigratedBytes
	}
	return perWorker, nil
}

// restorePrev returns the stats preceding the checkpointed superstep, for
// halt checks during replay (nil when rolling back to superstep 0).
func restorePrev(bySuper map[int]StepStats, checkpoint int) *StepStats {
	if checkpoint <= 0 {
		return nil
	}
	if s, ok := bySuper[checkpoint-1]; ok {
		return &s
	}
	return nil
}

// collectRestoreAcks waits for each wanted worker to confirm a rollback to
// target under the given recovery epoch. The barrier queue may still hold
// duplicates and stale check-ins from the aborted execution (at-least-once
// delivery, straggler check-ins arriving after the rollback decision) and
// acks from earlier recoveries to the same target; all of those fail the
// epoch filter and are drained silently. Only a failed restore or running
// out of time (JobSpec.RestoreAckTimeout) fails the recovery; the timeout
// error names the workers that never acked.
func (m *manager[M]) collectRestoreAcks(target, epoch int, want []bool) error {
	n := 0
	for _, w := range want {
		if w {
			n++
		}
	}
	seen := make([]bool, len(want))
	deadline := time.Now().Add(m.spec.RestoreAckTimeout)
	for got := 0; got < n; {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("timeout waiting for restore acks (%d/%d): missing workers %v",
				got, n, missingWorkers(want, seen))
		}
		lease := m.barrierQ.GetWait(m.spec.QueueVisibility, remaining)
		if lease == nil {
			return fmt.Errorf("timeout waiting for restore acks (%d/%d): missing workers %v",
				got, n, missingWorkers(want, seen))
		}
		var msg barrierMsg
		err := json.Unmarshal(lease.Body, &msg)
		_ = m.barrierQ.Delete(lease.ID)
		if err != nil {
			return fmt.Errorf("bad restore ack: %v", err)
		}
		if msg.Worker < 0 || msg.Worker >= len(want) {
			return fmt.Errorf("restore ack from unknown worker %d", msg.Worker)
		}
		if !msg.Restored || msg.Superstep != target || msg.Epoch != epoch ||
			!want[msg.Worker] || seen[msg.Worker] {
			// Stale superstep check-ins from the aborted execution, duplicated
			// acks, and acks from an older recovery: ignore.
			m.dupsDropped++
			continue
		}
		if msg.Err != "" {
			return fmt.Errorf("worker %d: %s", msg.Worker, msg.Err)
		}
		seen[msg.Worker] = true
		got++
	}
	return nil
}

// collected extends StepStats with manager-internal per-worker columns.
type collected struct {
	StepStats
	ComputeOpsPerWorker []int64
	BytesOutPerWorker   []int64
	BytesInPerWorker    []int64
	PeersPerWorker      []int
	aggPartial          map[string]float64
	// failedWorkers lists the workers that reported an error or never
	// checked in before the barrier deadline, ascending — the candidate set
	// for confined recovery.
	failedWorkers []int
}

func (m *manager[M]) collectBarrier(superstep, epoch int) (collected, error) {
	span := m.ins.tracer.Start(observe.KindBarrierCollect, observe.ManagerWorker, superstep)
	defer span.End()
	n := m.spec.NumWorkers
	c := collected{
		StepStats: StepStats{
			Superstep:    superstep,
			Workers:      n,
			WorkerSent:   make([]int64, n),
			WorkerMemory: make([]int64, n),
			WorkerActive: make([]int64, n),
		},
		ComputeOpsPerWorker: make([]int64, n),
		BytesOutPerWorker:   make([]int64, n),
		BytesInPerWorker:    make([]int64, n),
		PeersPerWorker:      make([]int, n),
	}
	seen := make([]bool, n)
	var workerErr error
	// Straggler detection: the whole barrier must complete within
	// BarrierTimeout. A worker that misses the deadline is treated as failed
	// — the caller rolls back to the last checkpoint — instead of blocking
	// the job on an open-ended wait.
	deadline := time.Now().Add(m.spec.BarrierTimeout)
	for got := 0; got < n; {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			c.failedWorkers = append(c.failedWorkers, missingWorkers(nil, seen)...)
			sort.Ints(c.failedWorkers)
			return c, fmt.Errorf("barrier timeout: straggler at superstep %d (%d/%d checked in within %v)",
				superstep, got, n, m.spec.BarrierTimeout)
		}
		waitStart := time.Now()
		lease := m.barrierQ.GetWait(m.spec.QueueVisibility, remaining)
		m.ins.barrier.Observe(time.Since(waitStart).Seconds())
		if lease == nil {
			c.failedWorkers = append(c.failedWorkers, missingWorkers(nil, seen)...)
			sort.Ints(c.failedWorkers)
			return c, fmt.Errorf("barrier timeout: straggler at superstep %d (%d/%d checked in within %v)",
				superstep, got, n, m.spec.BarrierTimeout)
		}
		var msg barrierMsg
		err := json.Unmarshal(lease.Body, &msg)
		_ = m.barrierQ.Delete(lease.ID)
		if err != nil {
			return c, fmt.Errorf("bad barrier message: %v", err)
		}
		if msg.Worker < 0 || msg.Worker >= n {
			return c, fmt.Errorf("barrier message from unknown worker %d", msg.Worker)
		}
		if msg.Restored || msg.Migrated || msg.Replayed ||
			msg.Superstep != superstep || msg.Epoch != epoch || seen[msg.Worker] {
			// At-least-once control plane: duplicate check-ins (redelivered
			// barrier messages), stale check-ins from an aborted pre-recovery
			// execution or epoch, late restore/replay acks, and migration
			// acks from a resize attempt that was rolled back are all
			// expected under faults. Dedupe by (worker, superstep, epoch)
			// and drop the rest.
			m.dupsDropped++
			c.DuplicatesDropped++
			continue
		}
		seen[msg.Worker] = true
		got++
		c.Retries += msg.Retries
		if msg.Err != "" {
			// Keep draining the remaining check-ins so the queue is clean
			// for a recovery attempt, then report the failure.
			if workerErr == nil {
				workerErr = fmt.Errorf("worker %d failed: %s", msg.Worker, msg.Err)
			}
			c.failedWorkers = append(c.failedWorkers, msg.Worker)
			continue
		}
		m.mergeCheckIn(&c, msg)
	}
	sort.Ints(c.failedWorkers)
	return c, workerErr
}

// mergeCheckIn folds one clean worker check-in into the collected superstep
// statistics. Used at normal barriers and again during confined recovery,
// when a recovered worker's re-executed check-in stands in for the failed
// original (re-execution is deterministic, so the merged totals match what
// a failure-free superstep would have produced).
func (m *manager[M]) mergeCheckIn(c *collected, msg barrierMsg) {
	w := msg.Worker
	c.ActiveVertices += msg.Active
	c.ActiveAfter += msg.ActiveAfter
	c.SentLocal += msg.SentLocal
	c.SentRemote += msg.SentRemote
	c.RemoteBytes += msg.BytesOut
	c.ComputeOps += msg.ComputeOps
	c.WorkerSent[w] = msg.SentLocal + msg.SentRemote
	c.WorkerMemory[w] = msg.PeakMemory
	c.WorkerActive[w] = msg.Active
	if msg.PeakMemory > c.PeakMemoryBytes {
		c.PeakMemoryBytes = msg.PeakMemory
	}
	c.ComputeOpsPerWorker[w] = msg.ComputeOps
	c.BytesOutPerWorker[w] = msg.BytesOut
	c.BytesInPerWorker[w] = msg.BytesIn
	c.PeersPerWorker[w] = msg.Peers
	for name, v := range msg.Aggregates {
		if c.aggPartial == nil {
			c.aggPartial = make(map[string]float64)
		}
		if prevV, ok := c.aggPartial[name]; ok {
			c.aggPartial[name] = m.aggOp(name).combine(prevV, v)
		} else {
			c.aggPartial[name] = v
		}
	}
}

// halt sends halt tokens so every worker exits cleanly.
func (m *manager[M]) halt() {
	body, _ := json.Marshal(stepToken{Halt: true})
	for _, q := range m.stepQs {
		q.Put(body)
	}
}
