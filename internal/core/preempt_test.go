package core

import (
	"sync/atomic"
	"testing"

	"pregelnet/internal/graph"
)

// preemptOnceAt returns a BarrierPreempt hook that fires exactly once, when
// the job is about to execute the given superstep.
func preemptOnceAt(superstep int) func(int) bool {
	var fired atomic.Bool
	return func(next int) bool {
		if next == superstep && fired.CompareAndSwap(false, true) {
			return true
		}
		return false
	}
}

// runToCompletion drives a preemptible spec through as many suspend/resume
// cycles as the hook causes, returning the final result and the number of
// suspensions observed.
func runToCompletion(t *testing.T, spec JobSpec[uint32]) (*JobResult[uint32], int) {
	t.Helper()
	suspensions := 0
	for {
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("run (after %d suspensions): %v", suspensions, err)
		}
		if res.Suspended == nil {
			return res, suspensions
		}
		suspensions++
		if suspensions > 100 {
			t.Fatal("job never completed: suspended more than 100 times")
		}
		spec.Resume = res.Suspended
	}
}

func TestPreemptResumeBitIdentical(t *testing.T) {
	g := graph.ErdosRenyi(300, 900, 7)

	base, err := Run(elasticBFSSpec(g, 4, 0))
	if err != nil {
		t.Fatal(err)
	}

	spec := elasticBFSSpec(g, 4, 0)
	spec.BarrierPreempt = preemptOnceAt(3)
	first, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Suspended == nil {
		t.Fatal("job was not suspended")
	}
	if first.Supersteps != 3 {
		t.Fatalf("Supersteps at suspension = %d, want 3", first.Supersteps)
	}
	if got := first.Suspended.ResumeSuperstep(); got != 3 {
		t.Fatalf("ResumeSuperstep = %d, want 3", got)
	}
	if first.Preemptions != 1 || first.PreemptSeconds <= 0 {
		t.Fatalf("Preemptions = %d, PreemptSeconds = %v; want 1 and > 0",
			first.Preemptions, first.PreemptSeconds)
	}
	if first.Suspended.MigratedBytes() <= 0 {
		t.Fatalf("MigratedBytes = %d, want > 0", first.Suspended.MigratedBytes())
	}

	spec.Resume = first.Suspended
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Suspended != nil {
		t.Fatal("resumed job suspended again; hook should fire once")
	}

	// The computed answer and the per-superstep timeline must be
	// bit-identical to the uninterrupted run: same distances, same step
	// count, same message counts and simulated durations per superstep.
	// The preemption overhead is reported separately (PreemptSeconds) and
	// must not leak into SimSeconds.
	want := graph.BFS(g, 0)
	got := migDistances(res, g.NumVertices())
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: dist %d after preempt+resume, want %d", v, got[v], want[v])
		}
	}
	if len(res.Steps) != len(base.Steps) {
		t.Fatalf("timeline has %d supersteps, want %d", len(res.Steps), len(base.Steps))
	}
	for i := range base.Steps {
		b, r := base.Steps[i], res.Steps[i]
		if r.Superstep != b.Superstep || r.Workers != b.Workers ||
			r.TotalSent() != b.TotalSent() || r.ActiveVertices != b.ActiveVertices ||
			r.SimSeconds != b.SimSeconds {
			t.Fatalf("superstep %d diverged: got %+v, want %+v", i, r, b)
		}
	}
	if res.SimSeconds != base.SimSeconds {
		t.Errorf("SimSeconds = %v, want %v (preemption overhead must stay out of SimSeconds)",
			res.SimSeconds, base.SimSeconds)
	}
	if res.Preemptions != 1 || res.PreemptSeconds <= 0 {
		t.Errorf("final Preemptions = %d, PreemptSeconds = %v; want 1 and > 0",
			res.Preemptions, res.PreemptSeconds)
	}
	// The platform still bills the suspension: write-out, read-in, and a
	// second provisioning round all cost VM time and dollars.
	if res.VMSeconds <= base.VMSeconds {
		t.Errorf("VMSeconds = %v, want > %v (suspension overhead must be billed)",
			res.VMSeconds, base.VMSeconds)
	}
	if res.CostDollars <= base.CostDollars {
		t.Errorf("CostDollars = %v, want > %v", res.CostDollars, base.CostDollars)
	}
}

func TestPreemptEveryBarrierStillCompletes(t *testing.T) {
	g := graph.ErdosRenyi(200, 600, 13)

	base, err := Run(elasticBFSSpec(g, 3, 0))
	if err != nil {
		t.Fatal(err)
	}

	// A hook that always fires suspends the job at every barrier — except
	// the last one, where the about-to-halt guard lets the job finish
	// instead of stranding a completed job in the preempted state.
	spec := elasticBFSSpec(g, 3, 0)
	spec.BarrierPreempt = func(int) bool { return true }
	res, suspensions := runToCompletion(t, spec)

	if suspensions == 0 {
		t.Fatal("expected at least one suspension")
	}
	if res.Preemptions != suspensions {
		t.Errorf("Preemptions = %d, want %d (must accumulate across resumes)",
			res.Preemptions, suspensions)
	}
	want := graph.BFS(g, 0)
	got := migDistances(res, g.NumVertices())
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: dist %d, want %d", v, got[v], want[v])
		}
	}
	if len(res.Steps) != len(base.Steps) {
		t.Fatalf("timeline has %d supersteps, want %d", len(res.Steps), len(base.Steps))
	}
	if res.SimSeconds != base.SimSeconds {
		t.Errorf("SimSeconds = %v, want %v", res.SimSeconds, base.SimSeconds)
	}
}

func TestPreemptRequiresMigratableProgram(t *testing.T) {
	g := graph.Ring(16)
	spec := bfsSpec(g, 2, 0) // plain BFS program: not Migratable
	spec.BarrierPreempt = func(int) bool { return false }
	if _, err := Run(spec); err == nil {
		t.Fatal("Run accepted BarrierPreempt with a non-Migratable program")
	}
}
