package core

import (
	"fmt"

	"pregelnet/internal/graph"
	"pregelnet/internal/partition"
)

// Live elastic scaling (paper §VIII made operational). The offline analysis
// in internal/elastic extrapolates scaling policies over recorded profiles;
// the machinery here lets a policy act while the job runs: at each barrier
// the manager consults an ElasticController with the just-completed
// superstep's stats, and when the controller asks for a different worker
// count the engine migrates vertex state through the blob store, rebuilds
// the data plane for the new count under a fresh epoch, and resumes the
// job exactly where it left off. Each stretch of supersteps executed at one
// worker count is a "segment"; segments get their own control queues so
// stale (possibly duplicated) tokens from a torn-down segment can never
// reach its successor.

// ElasticController decides the worker count for the next superstep. It is
// consulted by the manager after every completed barrier — never while a
// superstep is in flight, so a resize always happens at a consistent BSP
// cut. Returning the current count (or any value the engine clamps back to
// it) keeps the deployment unchanged. Implementations may keep state; the
// manager calls Workers from a single goroutine.
//
// Live scaling requires the vertex program to implement Migratable and, if
// a custom Network is supplied, a NetworkFactory to rebuild it.
type ElasticController interface {
	Workers(prev *StepStats, current int) int
}

// ElasticControllerFunc adapts a function to the ElasticController
// interface.
type ElasticControllerFunc func(prev *StepStats, current int) int

// Workers implements ElasticController.
func (f ElasticControllerFunc) Workers(prev *StepStats, current int) int {
	return f(prev, current)
}

// ScaleEvent records one live resize performed at a superstep barrier.
type ScaleEvent struct {
	// Superstep is the first superstep executed at the new worker count.
	Superstep   int `json:"superstep"`
	FromWorkers int `json:"fromWorkers"`
	ToWorkers   int `json:"toWorkers"`
	// MigratedBytes is the vertex-state volume that changed owners in the
	// resize — the share of the snapshot that crossed the network rather
	// than restoring from a surviving worker's memory.
	MigratedBytes int64 `json:"migratedBytes"`
	// SimSeconds is the simulated resize overhead added to the job's wall
	// clock: state write-out (overlapped with provisioning latency on
	// scale-out) plus read-in on the new layout.
	SimSeconds float64 `json:"simSeconds"`
	// Strategy names the repartitioner that produced the new layout
	// ("incremental", or "<name>(full)" for a from-scratch reshuffle), so a
	// silent fallback to a structure-blind layout is visible in summaries.
	Strategy string `json:"strategy,omitempty"`
	// MovedVertices counts the vertices whose owner changed.
	MovedVertices int `json:"movedVertices,omitempty"`
	// CutBefore / CutAfter are the edge-cut fractions of the old and new
	// assignments — the partition-quality cost (or recovery) of this resize.
	CutBefore float64 `json:"cutBefore,omitempty"`
	CutAfter  float64 `json:"cutAfter,omitempty"`
}

// ReshuffleDecider is optionally implemented by an ElasticController to pick,
// per resize, between a delta migration (adapt the previous assignment, move
// only what balance requires) and a full reshuffle (recompute the layout from
// scratch). It is consulted only when the job's Repartitioner supports
// incremental mode; eventIndex is the number of resizes already performed.
// Controllers that do not implement it get delta migrations for every event.
type ReshuffleDecider interface {
	FullReshuffle(fromWorkers, toWorkers, eventIndex int) bool
}

// resizeRequest is the manager's instruction to Run: the migration blobs
// for resumeStep are written, the old workers have been halted, tear the
// segment down and start the next one at toWorkers.
type resizeRequest struct {
	fromWorkers   int
	toWorkers     int
	resumeStep    int
	migratedBytes int64
	// migratedPerWorker holds each old worker's migration-blob size, so the
	// billed cross-owner share can be priced per partition instead of
	// assuming uniform per-vertex state size.
	migratedPerWorker []int64
	// traffic is the per-vertex received-message counts loaded from the old
	// segment's traffic blobs: the affinity signal for incremental
	// repartitioning, and the seed for the next segment's counters.
	traffic []int64
	// suspend marks a barrier preemption rather than a resize: the migration
	// blobs are written and the segment is halted, but instead of rebuilding
	// the workers Run releases the VMs and returns a Suspension for a later
	// resume (JobSpec.BarrierPreempt / JobSpec.Resume).
	suspend bool
}

// jobState is the manager state that survives segment boundaries: the
// superstep cursor, the scheduler replay logs, checkpoint bookkeeping, and
// the accumulated timeline. One jobState spans the whole job; each segment
// gets a fresh manager (new queues, new worker count) that resumes from it.
type jobState struct {
	steps []StepStats
	// recoveries counts checkpoint rollbacks (bounded by MaxRecoveries).
	recoveries int
	// epoch is the data-plane generation stamped on outgoing batches. It is
	// bumped by every rollback AND every live resize, so receivers in the
	// new generation drop anything stamped in an old one. Strictly
	// monotonic; never reused.
	epoch int
	// superstep is the next superstep to execute.
	superstep int
	prev      *StepStats
	prevAggs  map[string]float64
	// Scheduler replay logs: the scheduler is consulted exactly once per
	// superstep number; rollback replay and post-resize segments reuse the
	// recorded decisions so scheduler state stays consistent.
	injectionLog     map[int][]graph.VertexID
	aggLog           map[int]map[string]float64
	statsBySuperstep map[int]StepStats
	scheduledThrough int
	lastCheckpoint   int
	// forceCheckpoint makes the next superstep checkpoint regardless of the
	// CheckpointEvery phase. Set after a resize: checkpoints taken under the
	// old partition layout are useless to the new workers, so the resumed
	// segment must establish a fresh recovery point immediately.
	forceCheckpoint bool
	scaleEvents     []ScaleEvent
	// recoveryEvents records every recovery (confined or global) in order.
	// Indices in openRecoveries mark global rollbacks still re-executing:
	// the main loop accrues each re-executed superstep's cost into them
	// until the superstep cursor passes the failure point again.
	recoveryEvents []RecoveryEvent
	openRecoveries []int
	// preemptions / preemptSeconds account barrier preemptions across the
	// job's run segments: how many times it was suspended and the simulated
	// state write-out + read-in overhead the platform charged for them. The
	// overhead is reported separately from the job's own SimSeconds so a
	// preempted job's per-superstep timeline stays bit-identical to an
	// uninterrupted run.
	preemptions    int
	preemptSeconds float64
	// ckptGens tracks checkpoint generations whose blobs may exist in the
	// store (committed or attempted); committing a new generation deletes
	// every superseded one. A generation is (superstep, worker count) — the
	// count can differ across elastic segments.
	ckptGens []ckptGen
}

// ckptGen identifies one checkpoint generation's blob set.
type ckptGen struct {
	step    int
	workers int
}

func newJobState() *jobState {
	return &jobState{
		prevAggs:         map[string]float64{},
		injectionLog:     make(map[int][]graph.VertexID),
		aggLog:           make(map[int]map[string]float64),
		statsBySuperstep: make(map[int]StepStats),
		scheduledThrough: -1,
		lastCheckpoint:   -1,
	}
}

// stepQueueName names worker w's control queue in the given segment.
// Segment 0 keeps the historical name so single-segment jobs (no elastic
// controller) are wire-compatible with earlier releases and their tests.
func stepQueueName(segment, worker int) string {
	if segment == 0 {
		return fmt.Sprintf("step-%d", worker)
	}
	return fmt.Sprintf("step-g%d-%d", segment, worker)
}

// barrierQueueName names the barrier queue in the given segment. Fresh
// per segment so straggler check-ins, duplicated halt-era acks, and other
// at-least-once leftovers from a torn-down segment cannot poison the next
// one's barrier accounting.
func barrierQueueName(segment int) string {
	if segment == 0 {
		return "barrier"
	}
	return fmt.Sprintf("barrier-g%d", segment)
}

// clampWorkerTarget bounds a controller's output to a usable deployment:
// at least one worker, and never more workers than vertices.
func clampWorkerTarget(target, numVertices int) int {
	if target < 1 {
		target = 1
	}
	if numVertices > 0 && target > numVertices {
		target = numVertices
	}
	return target
}

// movedStateBytes computes the share of a resize's migrated vertex state
// that actually changes owners between the old and new assignments.
// Vertices retained by a surviving worker restore from its local memory;
// only the cross-owner share streams over the network and is billed.
//
// perWorker holds each old worker's actual migration-blob size from the
// resize window: partition w's moved share is priced at its own measured
// per-vertex rate perWorker[w]/|w|, so a partition holding heavyweight state
// (long adjacency-derived snapshots, deep per-root maps) bills more per moved
// vertex than a lightweight one. With no usable per-worker sizes the job-wide
// uniform estimate total·moved/n is used instead.
func movedStateBytes(total int64, perWorker []int64, oldA, newA partition.Assignment) int64 {
	n := len(oldA)
	if n == 0 || len(newA) != n {
		return total
	}
	moved := 0
	for v := 0; v < n; v++ {
		if oldA[v] != newA[v] {
			moved++
		}
	}
	k := len(perWorker)
	if k > 0 {
		counts := make([]int64, k)
		movedIn := make([]int64, k)
		usable := true
		for v := 0; v < n; v++ {
			w := int(oldA[v])
			if w < 0 || w >= k {
				usable = false
				break
			}
			counts[w]++
			if oldA[v] != newA[v] {
				movedIn[w]++
			}
		}
		if usable {
			var bytes int64
			for w := 0; w < k; w++ {
				if counts[w] > 0 {
					bytes += perWorker[w] * movedIn[w] / counts[w]
				}
			}
			return bytes
		}
	}
	return total * int64(moved) / int64(n)
}
