//go:build pregel_invariants

package core

import (
	"fmt"

	"pregelnet/internal/transport"
)

// Runtime receive-path invariants, compiled in with -tags pregel_invariants.
// They assert the two properties the ordered-stream machinery exists to
// provide, so a regression (or a faulty transport) fails loudly at the
// receive site instead of corrupting a superstep barrier:
//
//   - exactly-once sentinels: a sender's barrier sentinel for a given
//     (epoch, superstep) is processed at most once — a duplicate means dedup
//     let a retried frame through, which would release a barrier early;
//   - stream monotonicity: after processing seq N, nothing ≤ N may still be
//     held pending — a violation means a frame would be processed twice or
//     dropped.
//
// State is touched only by the worker's single receive goroutine, so there
// is no locking. Unsequenced sentinels (Seq 0, raw transport users) are
// outside the ordering contract and are not tracked.

type sentinelKey struct {
	from  int32
	step  int32
	epoch int32
}

type recvInvariants struct {
	seen map[sentinelKey]struct{}
}

func (inv *recvInvariants) noteSentinel(b *transport.Batch) {
	if b.Seq == 0 {
		return
	}
	k := sentinelKey{from: b.From, step: b.Superstep, epoch: b.Epoch}
	if inv.seen == nil {
		inv.seen = make(map[sentinelKey]struct{})
	}
	if _, dup := inv.seen[k]; dup {
		panic(fmt.Sprintf("core: duplicate sentinel from worker %d for superstep %d (epoch %d): a retried frame slipped past stream dedup and would release a barrier early",
			b.From, b.Superstep, b.Epoch))
	}
	inv.seen[k] = struct{}{}
}

func (inv *recvInvariants) checkStream(from, next int32, pending map[int32]*transport.Batch) {
	for seq := range pending {
		if seq <= next {
			panic(fmt.Sprintf("core: receive stream from worker %d holds pending seq %d with next=%d: the gap-fill drain went backwards",
				from, seq, next))
		}
	}
}
