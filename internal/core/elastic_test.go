package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"sync/atomic"
	"testing"

	"pregelnet/internal/cloud"
	"pregelnet/internal/graph"
	"pregelnet/internal/observe"
	"pregelnet/internal/partition"
	"pregelnet/internal/transport"
)

// migBFSProgram extends the checkpointable test BFS program with the
// per-vertex snapshot/restore hooks live migration needs.
type migBFSProgram struct {
	ckptBFSProgram
}

func newMigBFSProgram(_ int, _ *graph.Graph, owned []graph.VertexID) VertexProgram[uint32] {
	p := &migBFSProgram{ckptBFSProgram{bfsProgram{dist: make([]int32, len(owned))}}}
	for i := range p.dist {
		p.dist[i] = -1
	}
	return p
}

func (p *migBFSProgram) SnapshotVertex(li int32, w io.Writer) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(p.dist[li]))
	_, err := w.Write(b[:])
	return err
}

func (p *migBFSProgram) RestoreVertex(li int32, r io.Reader) error {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	p.dist[li] = int32(binary.LittleEndian.Uint32(b[:]))
	return nil
}

var _ Migratable = (*migBFSProgram)(nil)

func migDistances(res *JobResult[uint32], n int) []int32 {
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	for w, prog := range res.Programs {
		p := prog.(*migBFSProgram)
		for li, v := range res.Owned[w] {
			dist[v] = p.dist[li]
		}
	}
	return dist
}

func elasticBFSSpec(g *graph.Graph, workers int, src graph.VertexID) JobSpec[uint32] {
	spec := bfsSpec(g, workers, src)
	spec.NewProgram = newMigBFSProgram
	spec.CheckpointEvery = 2
	spec.CheckpointStore = cloud.NewBlobStore()
	return spec
}

// stepAtController switches to `to` workers once the given superstep has
// completed, and holds the count there.
func stepAtController(superstep, to int) ElasticController {
	return ElasticControllerFunc(func(prev *StepStats, current int) int {
		if prev != nil && prev.Superstep >= superstep {
			return to
		}
		return current
	})
}

func TestLiveScaleOutPreservesResults(t *testing.T) {
	g := graph.ErdosRenyi(300, 900, 5)
	want := graph.BFS(g, 0)

	spec := elasticBFSSpec(g, 2, 0)
	spec.ElasticController = stepAtController(1, 5)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := migDistances(res, g.NumVertices())
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: dist %d after scale-out, want %d", v, got[v], want[v])
		}
	}
	if len(res.ScaleEvents) != 1 {
		t.Fatalf("ScaleEvents = %+v, want exactly one", res.ScaleEvents)
	}
	ev := res.ScaleEvents[0]
	if ev.FromWorkers != 2 || ev.ToWorkers != 5 {
		t.Errorf("scale event %+v, want 2 -> 5", ev)
	}
	if ev.MigratedBytes <= 0 {
		t.Errorf("MigratedBytes = %d, want > 0", ev.MigratedBytes)
	}
	if ev.SimSeconds <= 0 {
		t.Errorf("SimSeconds = %v, want > 0 (provisioning + migration must be billed)", ev.SimSeconds)
	}
	// The timeline must show the worker count actually changing.
	var low, high bool
	for _, s := range res.Steps {
		switch s.Workers {
		case 2:
			low = true
		case 5:
			high = true
		default:
			t.Fatalf("superstep %d ran at %d workers, want 2 or 5", s.Superstep, s.Workers)
		}
	}
	if !low || !high {
		t.Errorf("timeline did not span both worker counts (low=%v high=%v)", low, high)
	}
}

func TestLiveScaleInPreservesResults(t *testing.T) {
	g := graph.ErdosRenyi(250, 800, 11)
	want := graph.BFS(g, 0)

	spec := elasticBFSSpec(g, 6, 0)
	spec.ElasticController = stepAtController(1, 2)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := migDistances(res, g.NumVertices())
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: dist %d after scale-in, want %d", v, got[v], want[v])
		}
	}
	if len(res.ScaleEvents) != 1 || res.ScaleEvents[0].ToWorkers != 2 {
		t.Fatalf("ScaleEvents = %+v, want one 6 -> 2 event", res.ScaleEvents)
	}
}

func TestLiveResizeOscillation(t *testing.T) {
	// Scale out and back in within one job: two events, exact results.
	g := graph.ErdosRenyi(200, 700, 23)
	want := graph.BFS(g, 0)

	spec := elasticBFSSpec(g, 2, 0)
	spec.ElasticController = ElasticControllerFunc(func(prev *StepStats, current int) int {
		if prev == nil {
			return current
		}
		switch {
		case prev.Superstep < 1:
			return 2
		case prev.Superstep < 3:
			return 4
		default:
			return 2
		}
	})
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := migDistances(res, g.NumVertices())
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: dist %d, want %d", v, got[v], want[v])
		}
	}
	if len(res.ScaleEvents) != 2 {
		t.Fatalf("ScaleEvents = %+v, want out + in", res.ScaleEvents)
	}
	if res.ScaleEvents[0].ToWorkers != 4 || res.ScaleEvents[1].ToWorkers != 2 {
		t.Errorf("ScaleEvents = %+v, want 2->4 then 4->2", res.ScaleEvents)
	}
}

func TestLiveResizeEmitsSpansAndMetrics(t *testing.T) {
	g := graph.ErdosRenyi(200, 600, 7)
	spec := elasticBFSSpec(g, 2, 0)
	spec.ElasticController = stepAtController(1, 4)
	tracer, rec := observe.NewTraceRecorder(1 << 14)
	spec.Tracer = tracer
	m := observe.NewMetrics()
	spec.Metrics = m
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	byKind := map[observe.Kind]int{}
	for _, e := range rec.Snapshot() {
		byKind[e.Kind]++
	}
	if byKind[observe.KindScaleOut] == 0 {
		t.Error("no scale_out span recorded")
	}
	if byKind[observe.KindMigrate] == 0 {
		t.Error("no migrate spans recorded")
	}
	outs := m.Counter("pregel_scale_events_total", "Live elastic scale events by direction.",
		observe.Label{Name: "direction", Value: "out"}).Value()
	if outs != 1 {
		t.Errorf("pregel_scale_events_total{direction=out} = %v, want 1", outs)
	}
}

func TestLiveResizeControllerClamped(t *testing.T) {
	// A buggy controller returning 0 or a count beyond the vertex count must
	// be clamped, not crash the engine or produce an impossible deployment.
	g := graph.Ring(24)
	want := graph.BFS(g, 0)

	spec := elasticBFSSpec(g, 2, 0)
	var asked atomic.Bool
	spec.ElasticController = ElasticControllerFunc(func(prev *StepStats, current int) int {
		if asked.Swap(true) {
			return -7 // clamp to 1
		}
		return 1 << 20 // clamp to NumVertices
	})
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := migDistances(res, g.NumVertices())
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: dist %d, want %d", v, got[v], want[v])
		}
	}
	for _, ev := range res.ScaleEvents {
		if ev.ToWorkers < 1 || ev.ToWorkers > g.NumVertices() {
			t.Errorf("scale event to %d workers escaped the clamp", ev.ToWorkers)
		}
	}
}

func TestLiveResizeRequiresMigratableProgram(t *testing.T) {
	g := graph.Ring(16)
	spec := ckptSpec(g, 2, 0) // Checkpointable but not Migratable
	spec.ElasticController = stepAtController(0, 4)
	_, err := Run(spec)
	if err == nil || !strings.Contains(err.Error(), "Migratable") {
		t.Errorf("err = %v, want Migratable requirement error", err)
	}
}

func TestLiveResizeWithCustomNetworkRequiresFactory(t *testing.T) {
	g := graph.Ring(16)
	spec := elasticBFSSpec(g, 2, 0)
	spec.Network = transport.NewChannelNetwork(2, 64)
	spec.ElasticController = stepAtController(0, 4)
	_, err := Run(spec)
	if err == nil || !strings.Contains(err.Error(), "NetworkFactory") {
		t.Errorf("err = %v, want NetworkFactory requirement error", err)
	}
}

func TestLiveResizeSurvivesFaultDuringMigration(t *testing.T) {
	// A VM restart scripted for the exact superstep the resize resumes at
	// fires inside the migrate handler: the resize attempt must be absorbed
	// by ordinary checkpoint rollback, the job continues at the old count,
	// and a later consult performs the resize. Results stay exact.
	g := graph.ErdosRenyi(250, 800, 31)
	want := graph.BFS(g, 0)

	spec := elasticBFSSpec(g, 2, 0)
	spec.ElasticController = stepAtController(2, 4)
	var strikes atomic.Int32
	spec.FailureInjector = func(worker, superstep int) error {
		// Superstep 3 is the first resume point stepAtController(2, …) can
		// produce; strike once there so the first migration attempt fails.
		if worker == 1 && superstep == 3 && strikes.Add(1) == 1 {
			return errors.New("chaos: VM lost mid-migration")
		}
		return nil
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := migDistances(res, g.NumVertices())
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: dist %d, want %d", v, got[v], want[v])
		}
	}
	if res.Recoveries < 1 {
		t.Errorf("recoveries = %d, want >= 1 (failed migration must roll back)", res.Recoveries)
	}
	if len(res.ScaleEvents) == 0 {
		t.Error("no scale events: the resize must eventually succeed after the rollback")
	}
	for _, s := range res.Steps {
		if s.Workers != 2 && s.Workers != 4 {
			t.Errorf("superstep %d at %d workers, want 2 or 4", s.Superstep, s.Workers)
		}
	}
}

// TestMigrationBlobRoundTrip exercises the vertex-granular blob format
// directly: corrupt blobs must be rejected with a useful error rather than
// silently mis-restoring state.
func TestMigrationBlobCorruptionDetected(t *testing.T) {
	g := graph.Ring(8)
	spec := elasticBFSSpec(g, 2, 0)
	s, err := spec.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	// A blob claiming one vertex but truncated mid-record.
	var buf bytes.Buffer
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], 1)
	buf.Write(b8[:]) // count = 1
	binary.LittleEndian.PutUint64(b8[:], 3)
	buf.Write(b8[:]) // global id = 3, then nothing
	owned := [][]graph.VertexID{{0, 2, 4, 6}, {1, 3, 5, 7}}
	idx := make([][]int32, 2)
	for w := range idx {
		idx[w] = make([]int32, 8)
		for v := range idx[w] {
			idx[w][v] = -1
		}
		for li, v := range owned[w] {
			idx[w][int(v)] = int32(li)
		}
	}
	net := transport.NewChannelNetwork(2, 64)
	defer net.Close()
	ins := newJobInstruments(nil, nil)
	workers := make([]*worker[uint32], 2)
	for w := range workers {
		ep, err := net.Endpoint(w)
		if err != nil {
			t.Fatal(err)
		}
		workers[w] = newWorker(&s, w, owned[w], idx[w], ep, nil, ins)
	}
	if err := adoptMigrationBlob(workers, buf.Bytes()); err == nil {
		t.Fatal("truncated migration blob accepted")
	}
}

func TestMovedStateBytesPerPartition(t *testing.T) {
	// Worker 0 holds 1000 bytes over 2 vertices (500 each); worker 1 holds
	// 100 bytes over 2 vertices (50 each). Moving one vertex out of worker 0
	// must bill 500, not the uniform estimate.
	oldA := partition.Assignment{0, 0, 1, 1}
	perWorker := []int64{1000, 100}
	if got := movedStateBytes(1100, perWorker, oldA, partition.Assignment{1, 0, 1, 1}); got != 500 {
		t.Errorf("one vertex from the heavy worker billed %d bytes, want 500", got)
	}
	if got := movedStateBytes(1100, perWorker, oldA, partition.Assignment{1, 0, 0, 1}); got != 550 {
		t.Errorf("one vertex from each worker billed %d bytes, want 550", got)
	}
	if got := movedStateBytes(1100, perWorker, oldA, oldA); got != 0 {
		t.Errorf("no movement billed %d bytes, want 0", got)
	}
}

func TestMovedStateBytesFallsBackToUniform(t *testing.T) {
	oldA := partition.Assignment{0, 0, 1, 1}
	newA := partition.Assignment{1, 0, 0, 1} // 2 of 4 moved
	if got := movedStateBytes(2000, nil, oldA, newA); got != 1000 {
		t.Errorf("nil perWorker billed %d bytes, want uniform 1000", got)
	}
	// An out-of-range entry in the old assignment makes per-partition
	// weighting unusable; fall back rather than panic or drop the charge.
	bad := partition.Assignment{0, 5, 1, 1} // 3 of 4 differ from newA
	if got := movedStateBytes(2000, []int64{1000, 100}, bad, newA); got != 2000*3/4 {
		t.Errorf("out-of-range oldA billed %d bytes, want uniform fallback", got)
	}
	// Mismatched assignment lengths: charge the conservative total.
	if got := movedStateBytes(2000, nil, oldA, partition.Assignment{0}); got != 2000 {
		t.Errorf("mismatched lengths billed %d bytes, want the full total", got)
	}
}

func TestResizeRecordsStrategyAndCut(t *testing.T) {
	// The default repartitioner is incremental: a resize must record the
	// strategy, the delta size, and the cut on both sides of the event.
	g := graph.ErdosRenyi(300, 900, 5)
	spec := elasticBFSSpec(g, 2, 0)
	spec.ElasticController = stepAtController(1, 3)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ScaleEvents) != 1 {
		t.Fatalf("ScaleEvents = %+v, want exactly one", res.ScaleEvents)
	}
	ev := res.ScaleEvents[0]
	if ev.Strategy != "incremental" {
		t.Errorf("Strategy = %q, want incremental (the default)", ev.Strategy)
	}
	if ev.MovedVertices <= 0 || ev.MovedVertices >= g.NumVertices() {
		t.Errorf("MovedVertices = %d, want a proper delta of %d vertices", ev.MovedVertices, g.NumVertices())
	}
	if ev.CutBefore < 0 || ev.CutBefore > 1 || ev.CutAfter < 0 || ev.CutAfter > 1 {
		t.Errorf("cut out of range: before=%v after=%v", ev.CutBefore, ev.CutAfter)
	}

	// An explicit full-reshuffle repartitioner is tagged as such.
	spec2 := elasticBFSSpec(g, 2, 0)
	spec2.ElasticController = stepAtController(1, 3)
	spec2.Repartitioner = partition.Hash{}
	res2, err := Run(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.ScaleEvents) != 1 || res2.ScaleEvents[0].Strategy != "hash(full)" {
		t.Errorf("ScaleEvents = %+v, want one hash(full) event", res2.ScaleEvents)
	}
}

// reshuffleAlways wraps a controller and forces a full reshuffle on every
// resize, exercising the ReshuffleDecider hook.
type reshuffleAlways struct{ ElasticController }

func (reshuffleAlways) FullReshuffle(fromWorkers, toWorkers, eventIndex int) bool { return true }

func TestReshuffleDeciderForcesFull(t *testing.T) {
	g := graph.ErdosRenyi(300, 900, 5)
	want := graph.BFS(g, 0)
	spec := elasticBFSSpec(g, 2, 0)
	spec.ElasticController = reshuffleAlways{stepAtController(1, 3)}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := migDistances(res, g.NumVertices())
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: dist %d after forced reshuffle, want %d", v, got[v], want[v])
		}
	}
	if len(res.ScaleEvents) != 1 {
		t.Fatalf("ScaleEvents = %+v, want exactly one", res.ScaleEvents)
	}
	if got := res.ScaleEvents[0].Strategy; got != "incremental(full)" {
		t.Errorf("Strategy = %q, want incremental(full) when the decider forces a reshuffle", got)
	}
}
