package core

import (
	"pregelnet/internal/graph"
)

// Swath scheduling (paper §IV): instead of starting all |V| traversals at
// once — which buffers O(|V||E|) messages and blows past physical memory —
// computation is initiated for a subset ("swath") of source vertices at a
// time. Two families of heuristics control it:
//
//   - Swath *size* heuristics decide how many sources form a swath so that
//     peak-superstep messages fit in physical memory: a static size, a
//     sampling heuristic (run small probe swaths, extrapolate), and an
//     adaptive heuristic (linear interpolation on the previous swath's peak
//     memory).
//   - Swath *initiation* heuristics decide when to start the next swath:
//     sequentially (after the previous fully drains), every N supersteps
//     (static-N), or dynamically when the message traffic shows a phase
//     change — an increase followed by a decrease (the traversal peak has
//     passed).

// SwathScheduler is consulted by the job manager before every superstep.
type SwathScheduler interface {
	// NextSources returns the vertices to inject (activate) before the
	// upcoming superstep. prev is the just-completed superstep's stats, or
	// nil before superstep 0. Returning an empty slice injects nothing.
	NextSources(prev *StepStats) []graph.VertexID
	// Done reports whether every source has been injected.
	Done() bool
}

// AllAtOnce injects every source at superstep 0 — the original Pregel model
// (and the paper's single-swath baseline when given a subset of sources).
type AllAtOnce struct {
	sources  []graph.VertexID
	injected bool
}

// NewAllAtOnce returns a scheduler that injects all sources at superstep 0.
func NewAllAtOnce(sources []graph.VertexID) *AllAtOnce {
	return &AllAtOnce{sources: sources}
}

// NextSources implements SwathScheduler.
func (a *AllAtOnce) NextSources(prev *StepStats) []graph.VertexID {
	if a.injected {
		return nil
	}
	a.injected = true
	return a.sources
}

// Done implements SwathScheduler.
func (a *AllAtOnce) Done() bool { return a.injected }

// SwathObservation records one completed swath window: the number of sources
// injected and the peak worker memory observed between that injection and
// the next.
type SwathObservation struct {
	Size       int
	PeakMemory int64
	Supersteps int
}

// SwathSizer chooses the size of the next swath from the completed
// observations.
type SwathSizer interface {
	NextSize(history []SwathObservation) int
}

// SwathInitiator decides when to start the next swath. The runner always
// initiates when the system has fully quiesced, regardless of the
// initiator, so jobs cannot stall.
type SwathInitiator interface {
	// ShouldInitiate is consulted after each superstep. stepsSinceInject is
	// the number of supersteps completed since the last injection;
	// msgWindow holds total messages sent in each of those supersteps.
	ShouldInitiate(stepsSinceInject int, prev *StepStats, msgWindow []int64) bool
}

// SwathRunner composes a sizer and an initiator into a SwathScheduler over
// a fixed list of source vertices.
type SwathRunner struct {
	sources   []graph.VertexID
	next      int
	sizer     SwathSizer
	initiator SwathInitiator

	history       []SwathObservation
	msgWindow     []int64
	peakMemWindow int64
	stepsSince    int
	lastSize      int
}

// NewSwathRunner returns a scheduler that injects `sources` in swaths sized
// by `sizer`, initiated by `initiator`.
func NewSwathRunner(sources []graph.VertexID, sizer SwathSizer, initiator SwathInitiator) *SwathRunner {
	return &SwathRunner{sources: sources, sizer: sizer, initiator: initiator}
}

// History returns the completed swath observations (for tests and reports).
func (r *SwathRunner) History() []SwathObservation { return r.history }

// NextSources implements SwathScheduler.
func (r *SwathRunner) NextSources(prev *StepStats) []graph.VertexID {
	if prev != nil {
		r.stepsSince++
		r.msgWindow = append(r.msgWindow, prev.TotalSent())
		if prev.PeakMemoryBytes > r.peakMemWindow {
			r.peakMemWindow = prev.PeakMemoryBytes
		}
	}
	if r.next >= len(r.sources) {
		// All sources injected: once the final swath drains, flush its
		// pending observation so History() covers every swath (without this
		// the last window's size/peak-memory would be silently dropped from
		// reports and sizer feedback).
		if prev != nil && prev.ActiveVertices == 0 && prev.TotalSent() == 0 {
			r.flushObservation()
		}
		return nil
	}
	if prev == nil {
		return r.inject() // first swath at superstep 0
	}
	quiesced := prev.ActiveVertices == 0 && prev.TotalSent() == 0
	if quiesced || r.initiator.ShouldInitiate(r.stepsSince, prev, r.msgWindow) {
		return r.inject()
	}
	return nil
}

// flushObservation records the in-flight swath's window into history and
// resets the window accumulators. No-op when no swath is pending.
func (r *SwathRunner) flushObservation() {
	if r.lastSize == 0 {
		return
	}
	r.history = append(r.history, SwathObservation{
		Size:       r.lastSize,
		PeakMemory: r.peakMemWindow,
		Supersteps: r.stepsSince,
	})
	r.lastSize = 0
	r.peakMemWindow = 0
	r.stepsSince = 0
	r.msgWindow = r.msgWindow[:0]
}

func (r *SwathRunner) inject() []graph.VertexID {
	r.flushObservation()
	size := r.sizer.NextSize(r.history)
	if size < 1 {
		size = 1
	}
	if size > len(r.sources)-r.next {
		size = len(r.sources) - r.next
	}
	swath := r.sources[r.next : r.next+size]
	r.next += size
	r.lastSize = size
	r.peakMemWindow = 0
	r.stepsSince = 0
	r.msgWindow = r.msgWindow[:0]
	return swath
}

// Done implements SwathScheduler.
func (r *SwathRunner) Done() bool { return r.next >= len(r.sources) }

// StaticSizer always returns a fixed swath size.
type StaticSizer int

// NextSize implements SwathSizer.
func (s StaticSizer) NextSize([]SwathObservation) int { return int(s) }

// AdaptiveSizer implements the paper's adaptive heuristic: the next swath
// size is the previous size linearly scaled by target/observed peak memory,
// so memory usage converges toward (but stays under) the target.
type AdaptiveSizer struct {
	// Initial is the first swath's size (a small safe probe).
	Initial int
	// TargetMemoryBytes is the per-worker memory ceiling to aim for (the
	// paper uses 6 GB against 7 GB physical). Zero or negative means "no
	// target": the sizer keeps the previous swath's size instead of scaling
	// it (a zero target must not collapse every swath to size 1).
	TargetMemoryBytes int64
	// MaxGrowth bounds the growth factor per adjustment (default 2.0) so a
	// low-memory observation cannot trigger a catastrophic overshoot.
	MaxGrowth float64
	// MaxSize caps the swath size (0 = unlimited).
	MaxSize int
}

// NextSize implements SwathSizer.
func (a *AdaptiveSizer) NextSize(history []SwathObservation) int {
	if len(history) == 0 {
		if a.Initial < 1 {
			return 1
		}
		return a.Initial
	}
	last := history[len(history)-1]
	size := last.Size
	if a.TargetMemoryBytes > 0 && last.PeakMemory > 0 {
		scaled := float64(size) * float64(a.TargetMemoryBytes) / float64(last.PeakMemory)
		growth := a.MaxGrowth
		if growth <= 0 {
			growth = 2.0
		}
		if scaled > float64(size)*growth {
			scaled = float64(size) * growth
		}
		size = int(scaled)
	}
	if size < 1 {
		size = 1
	}
	if a.MaxSize > 0 && size > a.MaxSize {
		size = a.MaxSize
	}
	return size
}

// SamplingSizer implements the paper's sampling heuristic: run a few small
// probe swaths while monitoring peak memory, then extrapolate a single
// static size for the rest of the computation.
type SamplingSizer struct {
	// SampleSize is the size of each probe swath.
	SampleSize int
	// Samples is how many probe swaths to run before extrapolating.
	Samples int
	// TargetMemoryBytes is the per-worker memory ceiling to aim for.
	TargetMemoryBytes int64
	// MaxSize caps the extrapolated size (0 = unlimited).
	MaxSize int

	extrapolated int
}

// NextSize implements SwathSizer.
func (s *SamplingSizer) NextSize(history []SwathObservation) int {
	if len(history) < s.Samples {
		if s.SampleSize < 1 {
			return 1
		}
		return s.SampleSize
	}
	if s.extrapolated == 0 {
		var peak int64
		for _, obs := range history[:s.Samples] {
			if obs.PeakMemory > peak {
				peak = obs.PeakMemory
			}
		}
		size := s.SampleSize
		if peak > 0 {
			size = int(float64(s.SampleSize) * float64(s.TargetMemoryBytes) / float64(peak))
		}
		if size < 1 {
			size = 1
		}
		if s.MaxSize > 0 && size > s.MaxSize {
			size = s.MaxSize
		}
		s.extrapolated = size
	}
	return s.extrapolated
}

// SequentialInitiator only starts the next swath when the previous has fully
// drained (the paper's baseline initiation).
type SequentialInitiator struct{}

// ShouldInitiate implements SwathInitiator.
func (SequentialInitiator) ShouldInitiate(_ int, prev *StepStats, _ []int64) bool {
	return prev.ActiveVertices == 0 && prev.TotalSent() == 0
}

// StaticNInitiator starts a new swath every N supersteps (the paper's
// Static-N). Performance depends on how N compares to the graph's average
// shortest-path length.
type StaticNInitiator int

// ShouldInitiate implements SwathInitiator.
func (n StaticNInitiator) ShouldInitiate(stepsSinceInject int, _ *StepStats, _ []int64) bool {
	return stepsSinceInject >= int(n)
}

// DynamicPeakInitiator starts a new swath when it detects a phase change in
// message traffic — an increase followed by a decrease — meaning the
// previous swath's traversal peak has passed (the paper's dynamic
// heuristic for BC's triangle-waveform message profile).
type DynamicPeakInitiator struct{}

// ShouldInitiate implements SwathInitiator.
func (DynamicPeakInitiator) ShouldInitiate(_ int, _ *StepStats, msgWindow []int64) bool {
	if len(msgWindow) < 2 {
		return false
	}
	last, prev := msgWindow[len(msgWindow)-1], msgWindow[len(msgWindow)-2]
	if last >= prev {
		return false // still rising or flat
	}
	// Confirm traffic actually rose earlier in this swath window.
	for i := 1; i < len(msgWindow)-1; i++ {
		if msgWindow[i] > msgWindow[i-1] {
			return true
		}
	}
	return false
}

// FirstNSources returns the first n vertex IDs (the conventional source set
// for swath experiments over a vertex subset, as the paper samples roots).
func FirstNSources(g *graph.Graph, n int) []graph.VertexID {
	if n > g.NumVertices() {
		n = g.NumVertices()
	}
	sources := make([]graph.VertexID, n)
	for i := range sources {
		sources[i] = graph.VertexID(i)
	}
	return sources
}
