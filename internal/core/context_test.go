package core

import (
	"sync"
	"testing"

	"pregelnet/internal/graph"
)

// TestContextAccessors verifies every Context accessor from inside Compute.
func TestContextAccessors(t *testing.T) {
	g := graph.Star(9) // vertex 0: degree 8; leaves: degree 1
	var mu sync.Mutex
	checked := map[graph.VertexID]bool{}
	spec := JobSpec[uint32]{
		Graph:      g,
		NumWorkers: 3,
		Codec:      Uint32Codec{},
		NewProgram: func(workerID int, _ *graph.Graph, owned []graph.VertexID) VertexProgram[uint32] {
			return computeFunc[uint32](func(ctx *Context[uint32], msgs []uint32) {
				mu.Lock()
				defer mu.Unlock()
				v := ctx.Vertex()
				checked[v] = true
				if ctx.NumVertices() != 9 {
					t.Errorf("NumVertices = %d", ctx.NumVertices())
				}
				if ctx.NumWorkers() != 3 {
					t.Errorf("NumWorkers = %d", ctx.NumWorkers())
				}
				if ctx.WorkerID() != workerID {
					t.Errorf("WorkerID = %d, want %d", ctx.WorkerID(), workerID)
				}
				if int(v)%3 != workerID {
					t.Errorf("vertex %d on worker %d with hash partitioning", v, workerID)
				}
				wantDeg := 1
				if v == 0 {
					wantDeg = 8
				}
				if ctx.Degree() != wantDeg {
					t.Errorf("vertex %d degree = %d, want %d", v, ctx.Degree(), wantDeg)
				}
				if len(ctx.Neighbors()) != wantDeg {
					t.Errorf("vertex %d neighbors = %d", v, len(ctx.Neighbors()))
				}
				if ctx.Superstep() != 0 {
					t.Errorf("superstep = %d", ctx.Superstep())
				}
				if li := ctx.LocalIndex(); li < 0 || li >= 3 {
					t.Errorf("local index %d out of range for 9 vertices / 3 workers", li)
				}
				if _, ok := ctx.Agg("never-set"); ok {
					t.Error("Agg of unknown name should report !ok")
				}
				ctx.VoteToHalt()
			})
		},
		ActivateAll: true,
	}
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	if len(checked) != 9 {
		t.Errorf("computed %d vertices, want 9", len(checked))
	}
}

// TestSendToArbitraryVertex checks messaging beyond graph edges (Pregel
// permits sending to any vertex id).
func TestSendToArbitraryVertex(t *testing.T) {
	g := graph.Ring(12)
	var hits [12]bool
	var mu sync.Mutex
	spec := JobSpec[uint32]{
		Graph:      g,
		NumWorkers: 4,
		Codec:      Uint32Codec{},
		NewProgram: func(int, *graph.Graph, []graph.VertexID) VertexProgram[uint32] {
			return computeFunc[uint32](func(ctx *Context[uint32], msgs []uint32) {
				switch ctx.Superstep() {
				case 0:
					// Everyone messages vertex (v+6)%12 — the antipode, never
					// a graph neighbor.
					ctx.Send(graph.VertexID((int(ctx.Vertex())+6)%12), uint32(ctx.Vertex()))
					ctx.VoteToHalt()
				case 1:
					if len(msgs) != 1 || int(msgs[0]) != (int(ctx.Vertex())+6)%12 {
						t.Errorf("vertex %d got %v", ctx.Vertex(), msgs)
					}
					mu.Lock()
					hits[ctx.Vertex()] = true
					mu.Unlock()
					ctx.VoteToHalt()
				}
			})
		},
		ActivateAll: true,
	}
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	for v, hit := range hits {
		if !hit {
			t.Errorf("vertex %d never received its antipode message", v)
		}
	}
}

// TestSingleWorkerJob exercises the no-peer path (no sentinels, no remote
// messages at all).
func TestSingleWorkerJob(t *testing.T) {
	g := graph.ErdosRenyi(100, 300, 31)
	res, err := Run(bfsSpec(g, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	checkBFSMatches(t, g, res, 0)
	for _, s := range res.Steps {
		if s.SentRemote != 0 || s.RemoteBytes != 0 {
			t.Fatalf("single worker sent remote traffic: %+v", s)
		}
	}
}

// TestManyWorkersFewVertices: more workers than active vertices must not
// deadlock or misroute.
func TestManyWorkersFewVertices(t *testing.T) {
	g := graph.Path(5)
	res, err := Run(bfsSpec(g, 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	checkBFSMatches(t, g, res, 2)
}

// TestVertexStaysActiveWithoutHalt: a program that never votes keeps its
// vertex computing every superstep until MaxSupersteps; with a master
// compute halting at step 3 the job ends cleanly.
func TestVertexStaysActiveWithoutHalt(t *testing.T) {
	g := graph.Ring(6)
	var computes [6]int
	var mu sync.Mutex
	spec := JobSpec[uint32]{
		Graph:      g,
		NumWorkers: 2,
		Codec:      Uint32Codec{},
		NewProgram: func(int, *graph.Graph, []graph.VertexID) VertexProgram[uint32] {
			return computeFunc[uint32](func(ctx *Context[uint32], _ []uint32) {
				mu.Lock()
				computes[ctx.Vertex()]++
				mu.Unlock()
				// no VoteToHalt: stays active
			})
		},
		ActivateAll: true,
		MasterCompute: func(superstep int, _ map[string]float64) error {
			if superstep == 3 {
				return ErrHaltJob
			}
			return nil
		},
	}
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	for v, c := range computes {
		if c != 4 {
			t.Errorf("vertex %d computed %d times, want 4", v, c)
		}
	}
}
