package core

import (
	"strconv"

	"pregelnet/internal/observe"
	"pregelnet/internal/transport"
)

// Observability glue: core is where the leaf observe package meets the
// substrate layers that cannot depend on it. The engine adapts the transport
// Observer and the chaos fault callback onto the job's tracer and metrics,
// and caches metric handles once at job start so hot paths never touch the
// registry.

// jobInstruments bundles the metric handles one run updates. Handles from a
// nil *observe.Metrics are unregistered but fully usable, so instrumented
// code updates them unconditionally.
type jobInstruments struct {
	tracer  *observe.Tracer
	metrics *observe.Metrics // for per-worker series created at worker start

	retries      *observe.Counter
	batches      *observe.Counter
	batchBytes   *observe.Counter
	reconnects   *observe.Counter
	faults       func(kind string) *observe.Counter
	rollbacks    *observe.Counter
	supersteps   *observe.Counter
	stepWait     *observe.Histogram // worker waiting on its step queue
	barrier      *observe.Histogram // manager collecting one barrier
	outboxStalls *observe.Counter   // enqueues that found the outbox full
	outboxStall  *observe.Histogram // time compute spent blocked on a full outbox
	scaleOuts    *observe.Counter   // live elastic scale-out resizes
	scaleIns     *observe.Counter   // live elastic scale-in resizes
	movedBytes   *observe.Counter   // vertex-state bytes that changed owners in resizes
	preempts     *observe.Counter   // barrier preemptions (suspend for resume)
	workersGauge *observe.Gauge     // current worker count (moves at resizes)
	confined     *observe.Counter   // recoveries handled confined (failed workers only)
}

// msglogBytesGauge returns the per-worker gauge tracking the sender-side
// message log's in-memory footprint, sampled at each superstep.
func (ins *jobInstruments) msglogBytesGauge(worker int) *observe.Gauge {
	return ins.metrics.Gauge("pregel_msglog_bytes",
		"In-memory bytes retained by a worker's sender-side message log (spilled segments excluded).",
		observe.Label{Name: "worker", Value: strconv.Itoa(worker)})
}

// outboxDepthGauge returns the per-worker gauge tracking queued batches
// across that worker's outboxes, sampled at each flush.
func (ins *jobInstruments) outboxDepthGauge(worker int) *observe.Gauge {
	return ins.metrics.Gauge("pregel_outbox_depth",
		"Batches queued in a worker's per-destination outboxes at flush time.",
		observe.Label{Name: "worker", Value: strconv.Itoa(worker)})
}

func newJobInstruments(tracer *observe.Tracer, m *observe.Metrics) *jobInstruments {
	return &jobInstruments{
		tracer:  tracer,
		metrics: m,
		outboxStalls: m.Counter("pregel_outbox_stalls_total",
			"Batch enqueues that found a per-destination outbox full (compute blocked on the network)."),
		outboxStall: m.Histogram("pregel_outbox_stall_seconds",
			"Time compute goroutines spent blocked enqueueing onto a full outbox.", nil),
		retries: m.Counter("pregel_retries_total",
			"Transient-fault retries across blob, queue, and transport operations."),
		batches: m.Counter("pregel_batches_sent_total",
			"Data-plane batches delivered (excluding sentinels)."),
		batchBytes: m.Counter("pregel_batch_bytes_total",
			"Serialized data-plane bytes delivered."),
		reconnects: m.Counter("pregel_reconnects_total",
			"Mid-superstep data-plane redials forced by send failures."),
		faults: func(kind string) *observe.Counter {
			return m.Counter("pregel_faults_injected_total",
				"Faults injected by the chaos plan, by kind.",
				observe.Label{Name: "kind", Value: kind})
		},
		rollbacks: m.Counter("pregel_rollbacks_total",
			"Checkpoint rollbacks performed by the manager."),
		confined: m.Counter("pregel_recovery_confined_total",
			"Recoveries handled confined: only the failed workers restored and re-executed."),
		supersteps: m.Counter("pregel_supersteps_total",
			"Superstep executions, including post-recovery replays."),
		stepWait: m.Histogram("pregel_queue_wait_seconds",
			"Control-plane queue wait latency by queue class.", nil,
			observe.Label{Name: "queue", Value: "step"}),
		barrier: m.Histogram("pregel_queue_wait_seconds",
			"Control-plane queue wait latency by queue class.", nil,
			observe.Label{Name: "queue", Value: "barrier"}),
		scaleOuts: m.Counter("pregel_scale_events_total",
			"Live elastic resizes performed at superstep barriers, by direction.",
			observe.Label{Name: "direction", Value: "out"}),
		scaleIns: m.Counter("pregel_scale_events_total",
			"Live elastic resizes performed at superstep barriers, by direction.",
			observe.Label{Name: "direction", Value: "in"}),
		movedBytes: m.Counter("pregel_resize_moved_bytes_total",
			"Vertex-state bytes that changed owners across live resizes (the billed migration traffic)."),
		preempts: m.Counter("pregel_preemptions_total",
			"Barrier preemptions: jobs suspended at a superstep barrier for a later resume."),
		workersGauge: m.Gauge("pregel_workers",
			"Partition workers currently deployed (changes under live elastic scaling)."),
	}
}

// transportObserver adapts transport telemetry onto the tracer and metrics.
// BatchSent is the data plane's hottest callback, so tracing is gated on a
// cached enabled flag and sentinel batches (msgs <= 0) never produce events.
type transportObserver struct {
	ins *jobInstruments
}

func (o *transportObserver) BatchSent(from, to, superstep, msgs int, wireBytes int64) {
	o.ins.batches.Inc()
	o.ins.batchBytes.Add(wireBytes)
	if msgs > 0 && o.ins.tracer.Enabled() {
		o.ins.tracer.Emit(observe.KindFlush, from, superstep,
			observe.Int("to", int64(to)), observe.Int("msgs", int64(msgs)),
			observe.Int("bytes", wireBytes))
	}
}

func (o *transportObserver) Reconnect(from, to int) {
	o.ins.reconnects.Inc()
	o.ins.tracer.Emit(observe.KindReconnect, from, -1, observe.Int("to", int64(to)))
}

var _ transport.Observer = (*transportObserver)(nil)

// chaosObserver returns the callback Chaos invokes per injected fault.
func chaosObserver(ins *jobInstruments) func(kind, detail string) {
	return func(kind, detail string) {
		ins.faults(kind).Inc()
		ins.tracer.Emit(observe.KindFault, observe.ManagerWorker, -1,
			observe.Str("fault", kind), observe.Str("detail", detail))
	}
}
