package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pregelnet/internal/cloud"
	"pregelnet/internal/graph"
	"pregelnet/internal/observe"
	"pregelnet/internal/partition"
	"pregelnet/internal/transport"
)

const (
	inboxStripes = 64
	// queueMaxWait bounds a worker's idle wait for the next step token. The
	// manager closes the queues at job teardown, which unblocks waiters
	// immediately; this is only a backstop against an orphaned worker.
	queueMaxWait = 10 * time.Minute
)

// stepToken is the manager→worker control message starting one superstep.
type stepToken struct {
	Superstep  int                `json:"s"`
	Halt       bool               `json:"halt,omitempty"`
	Injections []graph.VertexID   `json:"inj,omitempty"`
	Aggregates map[string]float64 `json:"agg,omitempty"`
	// Checkpoint asks the worker to snapshot its state before computing.
	Checkpoint bool `json:"ckpt,omitempty"`
	// RestoreTo, when non-nil, asks the worker to roll back to the snapshot
	// taken before the given superstep instead of computing.
	RestoreTo *int `json:"restore,omitempty"`
	// Epoch is the generation of a restore token: the job-wide data-plane
	// epoch, bumped by every rollback and every live resize (strictly
	// monotonic, starting at 1 for the first rollback). Workers adopt it as
	// their batch epoch and skip restore tokens for an epoch they have
	// already reached, so at-least-once token delivery (duplicates,
	// re-leases arriving after replay started) cannot roll state back
	// mid-job.
	Epoch int `json:"epoch,omitempty"`
	// Migrate asks the worker to write a vertex-granular migration blob of
	// the state it would carry into Superstep (the live-resize protocol),
	// ack it on the barrier queue, and keep serving tokens. The worker
	// neither computes nor mutates state, so the request is idempotent
	// under duplicate delivery.
	Migrate bool `json:"mig,omitempty"`
	// Replay marks a confined-recovery replay superstep: workers listed in
	// Failed re-execute it (having restored from the checkpoint), everyone
	// else replays its logged outbound batches into the failed set and
	// suppresses compute.
	Replay bool  `json:"replay,omitempty"`
	Failed []int `json:"failed,omitempty"`
	// LastCkpt is the most recent committed checkpoint superstep; workers
	// truncate their sender-side message logs below it (traffic older than
	// the checkpoint can never be replayed).
	LastCkpt int `json:"lc,omitempty"`
}

// barrierMsg is the worker→manager check-in ending one superstep. It carries
// the per-worker statistics the manager needs for halt detection, swath
// heuristics, cost modelling, and the paper's per-worker plots.
type barrierMsg struct {
	Worker      int                `json:"w"`
	Superstep   int                `json:"s"`
	Active      int64              `json:"active"`
	ActiveAfter int64              `json:"after"`
	SentLocal   int64              `json:"sl"`
	SentRemote  int64              `json:"sr"`
	RecvRemote  int64              `json:"rr"`
	BytesOut    int64              `json:"bo"`
	BytesIn     int64              `json:"bi"`
	PeakMemory  int64              `json:"mem"`
	ComputeOps  int64              `json:"ops"`
	Peers       int                `json:"peers"`
	Aggregates  map[string]float64 `json:"agg,omitempty"`
	Retries     int64              `json:"rt,omitempty"`
	Err         string             `json:"err,omitempty"`
	Restored    bool               `json:"restored,omitempty"`
	// Migrated marks this check-in as a live-resize migration ack for
	// Superstep; MigratedBytes is the blob size written (for the resize
	// cost model).
	Migrated      bool  `json:"migrated,omitempty"`
	MigratedBytes int64 `json:"migbytes,omitempty"`
	// Replayed marks a confined-recovery replay ack from a survivor;
	// SentRemote and BytesOut then carry the replayed message/byte counts.
	Replayed bool `json:"replayed,omitempty"`
	// Epoch is the worker's recovery epoch when it checked in. The manager
	// drops check-ins from stale epochs, so a redelivered message from an
	// aborted pre-recovery execution can never satisfy (or fail) a barrier
	// being re-collected after the rollback.
	Epoch int `json:"epoch,omitempty"`
}

// outboxItem is one unit of sender work: a batch to ship (epoch stamped at
// enqueue, sequence stamped by the sender), and/or a flush request. When ack
// is non-nil the sender, after shipping the batch (if any), replies with the
// first send error accumulated since the previous flush and resets it.
type outboxItem struct {
	batch *transport.Batch
	ack   chan error
}

// outbox is one destination's bounded send queue. Exactly one sender
// goroutine drains it, which is what makes sender-side sequence stamping
// race-free: the per-destination sequence has a single writer.
type outbox struct {
	ch  chan outboxItem
	ack chan error // reusable flush ack (one flush in flight at a time)
}

// recvStream is one sender's receive-side ordering state. Per-connection TCP
// ordering is not per-*pair* ordering: redials (every superstep via
// ResetPeers, plus retry-after-failure) give the receiver several reader
// goroutines funneling into one inbox, so a fresh connection's frames can
// overtake the tail of a drained one. Batches are therefore processed
// strictly in sequence order per sender — duplicates (Seq already processed)
// are dropped, reordered frames are held in pending until the gap fills.
// Streams are scoped to the recovery epoch: rollback abandons the old stream
// entirely (senders restart at Seq 1), so a batch lost past retries in the
// aborted execution cannot stall replay.
type recvStream struct {
	epoch   int32
	next    int32 // next sequence to process (all below it are done)
	pending map[int32]*transport.Batch
}

type worker[M any] struct {
	id         int
	numWorkers int
	g          *graph.Graph
	assign     partition.Assignment
	codec      Codec[M]
	combiner   Combiner[M]
	flushBytes int
	aggOps     map[string]AggOp
	parallel   int

	owned         []graph.VertexID
	globalToLocal []int32
	halted        []bool
	// Exactly one of program (vertex-centric) and partProg (subgraph-
	// centric) is non-nil, per the JobSpec; everything below the compute
	// phase — data plane, combiners, aggregators, checkpointing, recovery,
	// migration — is shared between the two models.
	program  VertexProgram[M]
	partProg PartitionProgram[M]

	// Inboxes. With a combiner every vertex's pending messages collapse to a
	// single combined slot, so the engine keeps one message + one present
	// flag per vertex (no per-vertex slice churn). Without a combiner it
	// keeps per-vertex slices whose backing arrays are recycled through
	// striped free lists.
	inboxCur      [][]M
	inboxNext     [][]M
	inboxOneCur   []M
	inboxOneNext  []M
	inboxHasCur   []bool
	inboxHasNext  []bool
	msgFree       [inboxStripes][][]M // recycled []M backing arrays, by stripe
	inboxCurBytes int64
	inboxNextByts atomic.Int64
	inboxLocks    [inboxStripes]sync.Mutex
	// vertexTraffic counts messages delivered to each owned vertex across the
	// whole segment (local sends and remote receives alike — deliverLocal is
	// the one point every delivery funnels through). It is the per-vertex
	// affinity signal incremental repartitioning weighs edges by; a heuristic
	// only, never consulted by the compute path. Guarded by the same stripe
	// locks as the inboxes; read at migrate time, after the sentinel wait's
	// happens-before edge, so no extra synchronization is needed.
	vertexTraffic []int64

	endpoint transport.Endpoint
	stepQ    *cloud.Queue
	barrierQ *cloud.Queue

	// Async data plane (paper §III background send threads): one bounded
	// outbox + sender goroutine per remote destination. Compute goroutines
	// enqueue encoded batches and never block on the network unless the
	// outbox is full (backpressure). sendCopies records whether the endpoint
	// copies payloads to the wire (TCP) — then the sender recycles the
	// buffer after a successful Send; otherwise (in-process handoff) the
	// receiver owns it.
	outboxes   []*outbox
	sendCopies bool

	// msglog is the sender-side message log backing confined recovery: every
	// data batch enqueued is copied into it, keyed by (superstep, dest), so
	// this worker can replay a failed peer's lost inputs without recomputing.
	// Nil when confined recovery is disabled.
	msglog *transport.MessageLog
	// replayFailed, non-nil only while re-executing a superstep during
	// confined recovery, marks the workers being recovered: sends to anyone
	// else (a survivor that kept its state) are logged but not delivered,
	// and sentinels go only to the failed set. Set before compute goroutines
	// start and cleared after the superstep completes, so no lock is needed.
	replayFailed []bool
	// replayEpoch/replayHandled dedupe replay tokens: re-sending logged
	// batches for an already-handled (epoch, superstep) would double-deliver
	// (fresh sequence numbers defeat receive-side dedup), so duplicates are
	// only re-acked.
	replayEpoch   int32
	replayHandled int

	ckptStore  *cloud.BlobStore
	failInject func(worker, superstep int) error

	tracer *observe.Tracer
	ins    *jobInstruments

	// Robustness state (chaos substrate).
	retry          cloud.RetryPolicy // retries transient faults; counts into statRetries
	visibility     time.Duration     // control-plane lease visibility
	barrierTimeout time.Duration     // sentinel-wait deadline (straggler bound)
	doneThrough    int               // highest superstep executed; duplicate step tokens ≤ this are skipped
	epoch          atomic.Int32      // recovery epoch stamped on outgoing batches at enqueue
	recvStreams    []recvStream      // per-sender ordered dedup state (receive goroutine only)
	recvInv        recvInvariants    // receive-path assertions; empty unless built with pregel_invariants
	statRetries    atomic.Int64

	superstep int
	prevAggs  map[string]float64

	// Injection set for the current superstep, as a reusable bitset guarded
	// by hasInjected (most supersteps inject nothing, so the hot-path check
	// is a single bool).
	injectedBits []uint64
	hasInjected  bool

	// Reused per-superstep scratch.
	activeBuf []int32
	slots     []*Context[M] // per-compute-slot contexts, reused across supersteps

	aggMu    sync.Mutex
	stepAggs map[string]float64

	// Per-step counters (reset at step start). Receiver-side counters are
	// atomics because the receive goroutine updates them concurrently.
	statSentLocal  atomic.Int64
	statSentRemote atomic.Int64
	statBytesOut   atomic.Int64
	statComputeOps atomic.Int64
	peersContacted []atomic.Bool

	// Receive-side counters are keyed by the batch's superstep: a fast peer
	// can deliver step-s batches before this worker has even started step s,
	// so a per-step reset would race (and make BytesIn nondeterministic).
	recvMu    sync.Mutex
	recvMsgs  map[int]int64
	recvBytes map[int]int64

	// Sentinel tracking: peers that finished sending for a given superstep.
	sentinelMu   sync.Mutex
	sentinelCond *sync.Cond
	sentinels    map[int]int
}

func newWorker[M any](spec *JobSpec[M], id int, owned []graph.VertexID,
	globalToLocal []int32, ep transport.Endpoint, aggOps map[string]AggOp,
	ins *jobInstruments) *worker[M] {
	w := &worker[M]{
		id:             id,
		numWorkers:     spec.NumWorkers,
		g:              spec.Graph,
		assign:         spec.Assignment,
		codec:          spec.Codec,
		combiner:       spec.Combiner,
		flushBytes:     spec.FlushBytes,
		aggOps:         aggOps,
		parallel:       spec.ComputeParallelism,
		owned:          owned,
		globalToLocal:  globalToLocal,
		halted:         make([]bool, len(owned)),
		endpoint:       ep,
		stepQ:          spec.Queues.Queue(stepQueueName(spec.segment, id)),
		barrierQ:       spec.Queues.Queue(barrierQueueName(spec.segment)),
		peersContacted: make([]atomic.Bool, spec.NumWorkers),
		sentinels:      make(map[int]int),
		recvMsgs:       make(map[int]int64),
		recvBytes:      make(map[int]int64),
		visibility:     spec.QueueVisibility,
		barrierTimeout: spec.BarrierTimeout,
		doneThrough:    -1,
		recvStreams:    make([]recvStream, spec.NumWorkers),
		injectedBits:   make([]uint64, (len(owned)+63)/64),
		vertexTraffic:  make([]int64, len(owned)),
	}
	for i := range w.recvStreams {
		w.recvStreams[i].next = 1 // senders stamp from 1 within each epoch
	}
	if w.combiner != nil {
		w.inboxOneCur = make([]M, len(owned))
		w.inboxOneNext = make([]M, len(owned))
		w.inboxHasCur = make([]bool, len(owned))
		w.inboxHasNext = make([]bool, len(owned))
	} else {
		w.inboxCur = make([][]M, len(owned))
		w.inboxNext = make([][]M, len(owned))
	}
	w.outboxes = make([]*outbox, spec.NumWorkers)
	for dest := range w.outboxes {
		if dest == id {
			continue
		}
		w.outboxes[dest] = &outbox{
			ch:  make(chan outboxItem, spec.OutboxDepth),
			ack: make(chan error, 1),
		}
	}
	if sc, ok := ep.(transport.SendCopier); ok {
		w.sendCopies = sc.SendCopiesPayload()
	}
	w.sentinelCond = sync.NewCond(&w.sentinelMu)
	w.ckptStore = spec.CheckpointStore
	w.failInject = spec.FailureInjector
	w.replayHandled = -1
	if ins == nil {
		ins = newJobInstruments(nil, nil)
	}
	w.tracer = spec.Tracer
	w.ins = ins
	w.retry = spec.Retry
	userOnRetry := spec.Retry.OnRetry
	w.retry.OnRetry = func(attempt int, err error) {
		w.statRetries.Add(1)
		w.ins.retries.Inc()
		if w.tracer.Enabled() {
			w.tracer.Emit(observe.KindRetry, w.id, w.superstep,
				observe.Int("attempt", int64(attempt)), observe.Str("err", err.Error()))
		}
		if userOnRetry != nil {
			userOnRetry(attempt, err)
		}
	}
	for i := range w.halted {
		w.halted[i] = !spec.ActivateAll
	}
	if spec.RecoveryMode == RecoverConfined && spec.CheckpointEvery > 0 && spec.CheckpointStore != nil {
		w.msglog = transport.NewMessageLog(spec.MsgLogBudgetBytes,
			&blobSpill{store: spec.CheckpointStore, retry: &w.retry},
			fmt.Sprintf("seg%02d-w%04d", spec.segment, id))
	}
	if spec.NewPartitionProgram != nil {
		w.partProg = spec.NewPartitionProgram(id, spec.Graph, owned)
	} else {
		w.program = spec.NewProgram(id, spec.Graph, owned)
	}
	return w
}

func (w *worker[M]) aggOp(name string) AggOp {
	if op, ok := w.aggOps[name]; ok {
		return op
	}
	for pat, op := range w.aggOps {
		if strings.HasSuffix(pat, "*") && strings.HasPrefix(name, pat[:len(pat)-1]) {
			return op
		}
	}
	return AggSum
}

// run executes the worker loop until a halt token arrives or an error makes
// progress impossible. It always reports via the barrier queue so the
// manager never deadlocks.
func (w *worker[M]) run() {
	go w.receiveLoop()
	for dest, ob := range w.outboxes {
		if ob != nil {
			go w.senderLoop(dest, ob)
		}
	}
	defer w.closeOutboxes()
	for {
		waitSpan := w.tracer.Start(observe.KindQueueWait, w.id, w.doneThrough+1)
		waitStart := time.Now()
		lease := w.stepQ.GetWait(w.visibility, queueMaxWait)
		w.ins.stepWait.Observe(time.Since(waitStart).Seconds())
		waitSpan.End()
		if lease == nil {
			return // queues closed: job torn down
		}
		var tok stepToken
		err := json.Unmarshal(lease.Body, &tok)
		_ = w.stepQ.Delete(lease.ID) // may fail if the lease expired; dedupe below absorbs redelivery
		if err != nil {
			w.checkIn(barrierMsg{Worker: w.id, Err: fmt.Sprintf("bad step token: %v", err)})
			return
		}
		if tok.Halt {
			// Release the message log (pooled buffers and spill blobs) before
			// exiting: a segment teardown or job end must not leak either.
			w.msglog.Reset(0)
			w.endpoint.Close()
			return
		}
		if tok.RestoreTo != nil {
			if int32(tok.Epoch) <= w.epoch.Load() {
				// Duplicate restore token (queue duplicate or expired lease
				// redelivered after replay began) for a rollback this worker
				// already performed: restoring again would silently revert
				// state mid-job, so it is dropped.
				continue
			}
			// The ack carries the token's epoch explicitly (checkIn preserves
			// it): on a FAILED restore the worker never adopted the new epoch,
			// but the manager's restore-ack collector filters on it.
			msg := barrierMsg{Worker: w.id, Superstep: *tok.RestoreTo, Restored: true, Epoch: tok.Epoch}
			if err := w.restore(w.ckptStore, *tok.RestoreTo, int32(tok.Epoch)); err != nil {
				msg.Err = err.Error()
			} else {
				// Replayed supersteps start at RestoreTo; tokens for them must
				// execute even though they were executed before the rollback.
				w.doneThrough = *tok.RestoreTo - 1
			}
			w.checkIn(msg)
			continue
		}
		if tok.Migrate {
			// Live resize: snapshot the partition, vertex by vertex, for the
			// new layout. The chaos hook is consulted first — a VM restart
			// scripted for the resume superstep kills the migration, which
			// the manager absorbs by rolling back to the last checkpoint and
			// retrying the resize at a later barrier.
			msg := barrierMsg{Worker: w.id, Superstep: tok.Superstep, Migrated: true}
			if w.failInject != nil {
				if err := w.failInject(w.id, tok.Superstep); err != nil {
					msg.Err = err.Error()
					w.checkIn(msg)
					continue
				}
			}
			n, err := w.writeMigration(w.ckptStore, tok.Superstep)
			if err != nil {
				msg.Err = err.Error()
			} else {
				msg.MigratedBytes = n
			}
			w.checkIn(msg)
			continue
		}
		if tok.Replay {
			w.handleReplay(&tok)
			continue
		}
		if tok.Superstep <= w.doneThrough {
			// Duplicate delivery of a step token already executed (queue
			// at-least-once semantics: a re-leased or duplicated message).
			// Re-executing would double-send messages and double check in, so
			// the duplicate is acknowledged and dropped.
			continue
		}
		w.runSuperstep(&tok)
		w.doneThrough = tok.Superstep
	}
}

// handleReplay executes one confined-recovery replay superstep. A worker in
// the token's failed set re-executes the superstep (it restored from the
// checkpoint, so its state is rewound), with deliveries to survivors
// suppressed; everyone else keeps its live state and replays the superstep's
// logged outbound batches into the failed set only. Either way the worker
// checks in on the barrier queue, and a handled (epoch, superstep) is only
// re-acked on duplicate delivery.
func (w *worker[M]) handleReplay(tok *stepToken) {
	if int32(tok.Epoch) < w.epoch.Load() {
		// Leftover token from a confined attempt that was abandoned for a
		// global rollback (or any older recovery): replaying it now would
		// stamp current-epoch batches with another epoch's traffic. Drop it;
		// no collector is waiting on this epoch anymore.
		return
	}
	if int32(tok.Epoch) == w.replayEpoch && tok.Superstep <= w.replayHandled {
		w.checkIn(barrierMsg{Worker: w.id, Superstep: tok.Superstep, Replayed: true})
		return
	}
	failed := make([]bool, w.numWorkers)
	amFailed := false
	for _, f := range tok.Failed {
		if f >= 0 && f < len(failed) {
			failed[f] = true
			if f == w.id {
				amFailed = true
			}
		}
	}
	if amFailed {
		// Recovering worker: re-execute. doneThrough was rewound by the
		// restore, so the ordinary superstep path runs; replayFailed gates
		// deliveries (survivors already hold this superstep's traffic) and
		// scopes the sentinel broadcast to the failed set.
		w.replayFailed = failed
		w.runSuperstep(tok)
		w.replayFailed = nil
		w.doneThrough = tok.Superstep
		w.replayEpoch, w.replayHandled = int32(tok.Epoch), tok.Superstep
		return
	}
	// Survivor: adopt the recovery epoch on the first replay token (after
	// quiescing senders, so no pre-recovery batch is stamped with the new
	// epoch), then re-send the logged batches for this superstep.
	if int32(tok.Epoch) > w.epoch.Load() {
		w.drainOutboxes()
		w.epoch.Store(int32(tok.Epoch))
	}
	span := w.tracer.Start(observe.KindReplay, w.id, tok.Superstep)
	msg := barrierMsg{Worker: w.id, Superstep: tok.Superstep, Replayed: true}
	var replayMsgs, replayBytes int64
	err := w.msglog.Replay(tok.Superstep,
		func(dest int) bool { return failed[dest] && dest != w.id },
		func(dest int, payload []byte, count int) error {
			// The payload is log-owned: copy into a fresh pooled buffer the
			// send pipeline may recycle, and never PutPayload the original.
			cp := transport.GetPayload(len(payload))
			copy(cp, payload)
			b := transport.GetBatch()
			b.From = int32(w.id)
			b.To = int32(dest)
			b.Superstep = int32(tok.Superstep)
			b.Count = int32(count)
			b.Epoch = w.epoch.Load()
			b.Payload = cp
			replayMsgs += int64(count)
			replayBytes += b.WireSize()
			// Enqueue directly (not enqueueBatch): replayed traffic must not
			// be re-appended to the log. Blocking is fine — the sender drains.
			w.outboxes[dest].ch <- outboxItem{batch: b}
			return nil
		})
	if err == nil {
		err = w.flushTo(failed, tok.Superstep)
	}
	if err != nil {
		// A truncated log window or an undeliverable replay: report it so the
		// manager falls back to global rollback.
		msg.Err = err.Error()
	} else {
		msg.SentRemote = replayMsgs
		msg.BytesOut = replayBytes
	}
	if span.Active() {
		span.End(observe.Int("msgs", replayMsgs), observe.Int("bytes", replayBytes))
	}
	w.replayEpoch, w.replayHandled = int32(tok.Epoch), tok.Superstep
	w.checkIn(msg)
}

// flushTo flushes the outboxes of the given destinations and fences each
// with a sentinel for the superstep, returning the first send error. The
// scoped counterpart of broadcastSentinels, used by survivors during replay
// (a sentinel to a non-recovering peer would pollute its barrier counts).
func (w *worker[M]) flushTo(targets []bool, superstep int) error {
	epoch := w.epoch.Load()
	for dest, ob := range w.outboxes {
		if ob == nil || !targets[dest] {
			continue
		}
		b := transport.GetBatch()
		b.From = int32(w.id)
		b.To = int32(dest)
		b.Superstep = int32(superstep)
		b.Count = -1
		b.Epoch = epoch
		ob.ch <- outboxItem{batch: b, ack: ob.ack}
	}
	var firstErr error
	for dest, ob := range w.outboxes {
		if ob == nil || !targets[dest] {
			continue
		}
		if err := <-ob.ack; err != nil && firstErr == nil {
			firstErr = fmt.Errorf("replay flush to worker %d: %w", dest, err)
		}
	}
	return firstErr
}

func (w *worker[M]) runSuperstep(tok *stepToken) {
	w.superstep = tok.Superstep
	w.prevAggs = tok.Aggregates
	w.resetStepCounters()
	// A committed checkpoint retires everything the message log holds below
	// it: those supersteps' traffic is recoverable from the snapshot, never
	// from replay.
	if w.msglog != nil {
		w.msglog.TruncateBelow(tok.LastCkpt)
	}
	if tok.Checkpoint {
		if err := w.snapshot(w.ckptStore); err != nil {
			w.checkIn(barrierMsg{Worker: w.id, Superstep: w.superstep, Err: err.Error()})
			return
		}
	}
	// Re-establish peer sockets each superstep (paper §III: avoids socket
	// timeouts on long-running jobs).
	if err := w.endpoint.ResetPeers(); err != nil {
		w.checkIn(barrierMsg{Worker: w.id, Superstep: w.superstep, Err: err.Error()})
		return
	}

	// Determine the active set: vertices with pending messages, vertices
	// that did not vote to halt, and scheduler injections. The injection set
	// is a reusable bitset; the active list a reusable slice.
	if w.hasInjected {
		clear(w.injectedBits)
	}
	w.hasInjected = len(tok.Injections) > 0
	for _, v := range tok.Injections {
		li := w.globalToLocal[v]
		if li < 0 {
			w.checkIn(barrierMsg{Worker: w.id, Superstep: w.superstep,
				Err: fmt.Sprintf("injection %d not owned by worker %d", v, w.id)})
			return
		}
		w.injectedBits[li>>6] |= 1 << uint(li&63)
	}
	active := w.activeBuf[:0]
	for i := range w.owned {
		li := int32(i)
		if w.pendingMsgs(li) || !w.halted[li] || w.injectedThisStep(li) {
			active = append(active, li)
		}
	}
	w.activeBuf = active

	// Compute phase. Vertex-centric programs run in parallel across cores;
	// subgraph-centric programs run one sequential pass over the whole
	// partition (their local fixpoint IS the parallel work, amortized across
	// supersteps). The partition program is invoked every superstep, active
	// set or not: phase machines driven by aggregates need to observe a
	// convergence superstep in which no vertex received a message.
	computeSpan := w.tracer.Start(observe.KindCompute, w.id, w.superstep)
	if w.partProg != nil {
		w.computePartition(active)
	} else {
		var wg sync.WaitGroup
		p := w.parallel
		if p > len(active) && len(active) > 0 {
			p = len(active)
		}
		if p < 1 {
			p = 1
		}
		for slot := 0; slot < p; slot++ {
			lo := len(active) * slot / p
			hi := len(active) * (slot + 1) / p
			ctx := w.slotContext(slot)
			wg.Add(1)
			go func(ctx *Context[M], vertices []int32) {
				defer wg.Done()
				w.computeSlice(ctx, vertices)
			}(ctx, active[lo:hi])
		}
		wg.Wait()
	}
	if computeSpan.Active() {
		computeSpan.End(
			observe.Int("active", int64(len(active))),
			observe.Int("sent", w.statSentLocal.Load()+w.statSentRemote.Load()),
			observe.Int("bytes_out", w.statBytesOut.Load()))
	}

	// All compute done: flush the outboxes (queued batches, then a sentinel
	// per peer) and wait until every peer's data for this superstep has
	// arrived (BSP barrier condition 2: all messages delivered). A send that
	// failed past retries anywhere this superstep surfaces here. The sentinel
	// wait is bounded: a peer that never delivers (dropped connection past
	// retries, stalled VM) must not hang this worker forever — the timeout
	// surfaces as a failure the manager recovers from by rollback.
	if err := w.broadcastSentinels(); err != nil {
		w.checkIn(barrierMsg{Worker: w.id, Superstep: w.superstep, Err: err.Error()})
		return
	}
	barrierSpan := w.tracer.Start(observe.KindBarrierWait, w.id, w.superstep)
	if err := w.awaitSentinels(); err != nil {
		barrierSpan.End()
		w.checkIn(barrierMsg{Worker: w.id, Superstep: w.superstep, Err: err.Error()})
		return
	}
	barrierSpan.End()

	// Memory accounting: messages held for this step + messages buffered for
	// the next + program state (paper §IV: buffered messages dominate).
	peakMem := w.inboxCurBytes + w.inboxNextByts.Load() + w.programStateBytes()

	// Swap inboxes for the next superstep.
	w.swapInboxes()

	var activeAfter int64
	for i := range w.halted {
		if !w.halted[i] {
			activeAfter++
		}
	}
	peers := 0
	for i := range w.peersContacted {
		if w.peersContacted[i].Load() {
			peers++
		}
	}
	// All step-s batches have arrived (sentinels seen), so these totals are
	// complete and deterministic.
	w.recvMu.Lock()
	recvMsgs := w.recvMsgs[w.superstep]
	recvBytes := w.recvBytes[w.superstep]
	delete(w.recvMsgs, w.superstep)
	delete(w.recvBytes, w.superstep)
	w.recvMu.Unlock()
	if w.msglog != nil {
		w.ins.msglogBytesGauge(w.id).Set(float64(w.msglog.Bytes()))
	}
	// Chaos hook: simulate this worker's VM failing after the superstep's
	// work (all messages delivered, so peers are in a consistent state).
	if w.failInject != nil {
		if err := w.failInject(w.id, w.superstep); err != nil {
			w.checkIn(barrierMsg{Worker: w.id, Superstep: w.superstep, Err: err.Error()})
			return
		}
	}
	w.checkIn(barrierMsg{
		Worker:      w.id,
		Superstep:   w.superstep,
		Active:      int64(len(active)),
		ActiveAfter: activeAfter,
		SentLocal:   w.statSentLocal.Load(),
		SentRemote:  w.statSentRemote.Load(),
		RecvRemote:  recvMsgs,
		BytesOut:    w.statBytesOut.Load(),
		BytesIn:     recvBytes,
		PeakMemory:  peakMem,
		ComputeOps:  w.statComputeOps.Load(),
		Peers:       peers,
		Aggregates:  w.drainAggs(),
		Retries:     w.statRetries.Swap(0),
	})
}

// pendingMsgs reports whether local vertex li has messages for this step.
func (w *worker[M]) pendingMsgs(li int32) bool {
	if w.combiner != nil {
		return w.inboxHasCur[li]
	}
	return len(w.inboxCur[li]) > 0
}

// swapInboxes rotates next-step inboxes into place and clears the buffers
// that will receive the following step's messages, reusing every backing
// array.
func (w *worker[M]) swapInboxes() {
	if w.combiner != nil {
		w.inboxOneCur, w.inboxOneNext = w.inboxOneNext, w.inboxOneCur
		w.inboxHasCur, w.inboxHasNext = w.inboxHasNext, w.inboxHasCur
		clear(w.inboxOneNext) // zero values: no stale references survive
		clear(w.inboxHasNext)
	} else {
		for i := range w.inboxCur {
			w.inboxCur[i] = nil
		}
		w.inboxCur, w.inboxNext = w.inboxNext, w.inboxCur
	}
	w.inboxCurBytes = w.inboxNextByts.Load()
	w.inboxNextByts.Store(0)
}

// slotContext returns the reusable Context for a compute slot, reset for the
// current superstep. Contexts, their staging buffers, and their combine maps
// persist across supersteps so the compute hot path allocates only when a
// buffer genuinely grows.
func (w *worker[M]) slotContext(slot int) *Context[M] {
	for len(w.slots) <= slot {
		w.slots = append(w.slots, nil)
	}
	ctx := w.slots[slot]
	if ctx == nil {
		ctx = &Context[M]{
			w:            w,
			outRemoteBuf: make([][]byte, w.numWorkers),
			outRemoteCnt: make([]int32, w.numWorkers),
			aggs:         make(map[string]float64),
		}
		if w.combiner != nil {
			ctx.combineStage = make([]map[graph.VertexID]M, w.numWorkers)
		}
		w.slots[slot] = ctx
	}
	ctx.superstep = w.superstep
	ctx.computeOps = 0
	ctx.sentLocal = 0
	ctx.sentRemote = 0
	ctx.remoteBytesOut = 0
	clear(ctx.aggs)
	return ctx
}

// computeSlice runs the user program over a contiguous slice of active
// local vertices using one reusable Context, then flushes its remote
// buffers into the outboxes.
func (w *worker[M]) computeSlice(ctx *Context[M], vertices []int32) {
	combined := w.combiner != nil
	for _, li := range vertices {
		var msgs []M
		if combined {
			if w.inboxHasCur[li] {
				msgs = w.inboxOneCur[li : li+1 : li+1]
			}
		} else {
			msgs = w.inboxCur[li]
			w.inboxCur[li] = nil
		}
		ctx.vertex = w.owned[li]
		ctx.local = li
		ctx.injected = w.injectedThisStep(li)
		ctx.halted = false
		ctx.computeOps += int64(1 + len(msgs))
		w.program.Compute(ctx, msgs)
		w.halted[li] = ctx.halted
		if !combined && msgs != nil {
			w.recycleMsgs(li, msgs)
		}
	}
	w.finishSlot(ctx)
}

// finishSlot is the compute epilogue shared by both models: flush the slot's
// combiner stages into wire buffers, enqueue all staged batches, and merge
// the per-slot counters and aggregator contributions.
func (w *worker[M]) finishSlot(ctx *Context[M]) {
	if ctx.combineStage != nil {
		for dest, stage := range ctx.combineStage {
			if len(stage) == 0 {
				continue
			}
			for to, m := range stage {
				ctx.encodeRemote(dest, to, m)
			}
			clear(stage) // keep the map, drop the entries
		}
	}
	for dest := range ctx.outRemoteBuf {
		if len(ctx.outRemoteBuf[dest]) > 0 {
			w.flushSlotBuffer(ctx, dest)
		}
	}
	w.statComputeOps.Add(ctx.computeOps)
	w.statSentLocal.Add(ctx.sentLocal)
	w.statSentRemote.Add(ctx.sentRemote)
	w.statBytesOut.Add(ctx.remoteBytesOut)
	w.mergeAggs(ctx.aggs)
}

// recycleMsgs returns a consumed inbox slice's backing array to its stripe's
// free list for reuse by deliverLocal.
func (w *worker[M]) recycleMsgs(li int32, msgs []M) {
	clear(msgs) // drop message contents so pooled arrays pin no memory
	stripe := int(li) % inboxStripes
	lock := &w.inboxLocks[stripe]
	lock.Lock()
	w.msgFree[stripe] = append(w.msgFree[stripe], msgs[:0])
	lock.Unlock()
}

// injectedThisStep tests the superstep's injection bitset; the common no-
// injection superstep short-circuits on a single bool.
func (w *worker[M]) injectedThisStep(li int32) bool {
	return w.hasInjected && w.injectedBits[li>>6]&(1<<uint(li&63)) != 0
}

// deliverLocal appends a message to a co-located vertex's next-step inbox.
// Called concurrently from compute goroutines and the receive loop.
func (w *worker[M]) deliverLocal(li int32, m M, size int64) {
	stripe := int(li) % inboxStripes
	lock := &w.inboxLocks[stripe]
	lock.Lock()
	w.vertexTraffic[li]++
	if w.combiner != nil {
		if w.inboxHasNext[li] {
			w.inboxOneNext[li] = w.combiner.Combine(w.inboxOneNext[li], m)
		} else {
			w.inboxOneNext[li] = m
			w.inboxHasNext[li] = true
			w.inboxNextByts.Add(size)
		}
		lock.Unlock()
		return
	}
	next := w.inboxNext[li]
	if next == nil {
		if fl := w.msgFree[stripe]; len(fl) > 0 {
			next = fl[len(fl)-1]
			w.msgFree[stripe] = fl[:len(fl)-1]
		}
	}
	w.inboxNext[li] = append(next, m)
	w.inboxNextByts.Add(size)
	lock.Unlock()
}

// flushSlotBuffer hands a slot's staged batch for one destination to that
// destination's outbox. Enqueueing cannot fail — send errors surface at the
// superstep's flush-and-drain (broadcastSentinels) — but it can block when
// the outbox is full, which is the data plane's backpressure.
func (w *worker[M]) flushSlotBuffer(c *Context[M], dest int) {
	buf := c.outRemoteBuf[dest]
	if len(buf) == 0 {
		return
	}
	b := transport.GetBatch()
	b.From = int32(w.id)
	b.To = int32(dest)
	b.Superstep = int32(w.superstep)
	b.Count = c.outRemoteCnt[dest]
	b.Payload = buf
	c.outRemoteBuf[dest] = nil
	c.outRemoteCnt[dest] = 0
	c.remoteBytesOut += b.WireSize()
	w.peersContacted[dest].Store(true)
	w.enqueueBatch(b)
}

// enqueueBatch stamps a batch with the worker's recovery epoch and queues it
// on the destination's outbox. The fast path is a non-blocking channel send;
// when the outbox is full the stall is measured and traced before blocking
// (backpressure on compute is a signal worth seeing).
func (w *worker[M]) enqueueBatch(b *transport.Batch) {
	b.Epoch = w.epoch.Load()
	// Log the batch for confined recovery (Append copies; ownership of b and
	// its payload is unchanged). Logging happens even for deliveries
	// suppressed below, so a recovering worker's rebuilt log stays complete
	// enough to survive a second failure.
	w.msglog.Append(int(b.Superstep), int(b.To), b.Payload, int(b.Count))
	if w.replayFailed != nil && !w.replayFailed[b.To] {
		// Confined-recovery re-execution: the destination is a survivor that
		// already processed this superstep's traffic in the original
		// execution; delivering again would double-count messages.
		w.releaseUnsent(b)
		return
	}
	ob := w.outboxes[b.To]
	select {
	case ob.ch <- outboxItem{batch: b}:
		return
	default:
	}
	w.ins.outboxStalls.Inc()
	stallSpan := w.tracer.Start(observe.KindSendStall, w.id, w.superstep)
	to := int64(b.To) // b's ownership transfers on the send below
	start := time.Now()
	ob.ch <- outboxItem{batch: b}
	w.ins.outboxStall.Observe(time.Since(start).Seconds())
	if stallSpan.Active() {
		stallSpan.End(observe.Int("to", to))
	}
}

// senderLoop is one destination's background send thread (paper §III). It
// owns the per-destination sequence counter, so stamping needs no lock, and
// (From, Seq) stays monotonic on the wire within an epoch: receivers process
// each sender's batches in sequence order (see recvStream). The sequence
// restarts at 1 whenever the batch epoch changes — the outboxes are drained
// before a restore bumps the epoch, so the transition is clean. A send that
// fails past retries is remembered and reported at the next flush;
// subsequent batches in the same cycle are discarded (the superstep is
// already lost) so compute never deadlocks behind a dead peer.
func (w *worker[M]) senderLoop(dest int, ob *outbox) {
	var seq, epoch int32
	var pendingErr error
	for item := range ob.ch {
		if b := item.batch; b != nil {
			if pendingErr == nil {
				if b.Epoch != epoch {
					epoch, seq = b.Epoch, 0
				}
				seq++
				b.Seq = seq
				err := w.retry.Do(func() error { return w.endpoint.Send(b) })
				if err != nil {
					pendingErr = err
					w.releaseUnsent(b)
				} else if w.sendCopies {
					// Endpoint copied the payload to the wire: the buffer and
					// the batch struct are dead here; recycle both. (With the
					// in-process transport the receiver owns them now.)
					transport.PutPayload(b.Payload)
					b.Payload = nil
					transport.PutBatch(b)
				}
			} else {
				w.releaseUnsent(b)
			}
		}
		if item.ack != nil {
			item.ack <- pendingErr
			pendingErr = nil
		}
	}
}

// releaseUnsent recycles a batch that was never handed off to the transport.
func (w *worker[M]) releaseUnsent(b *transport.Batch) {
	if b.Payload != nil {
		transport.PutPayload(b.Payload)
		b.Payload = nil
	}
	transport.PutBatch(b)
}

// broadcastSentinels flushes and drains every outbox: each peer receives all
// queued data batches followed by a zero-payload sentinel (Count == -1)
// marking this worker done sending for the superstep. All outboxes flush
// concurrently; the call returns the first send failure of the whole
// superstep (mid-step enqueued batches included), if any.
func (w *worker[M]) broadcastSentinels() error {
	if w.numWorkers == 1 {
		return nil
	}
	span := w.tracer.Start(observe.KindOutboxFlush, w.id, w.superstep)
	depth := 0
	for dest, ob := range w.outboxes {
		if ob == nil {
			continue
		}
		depth += len(ob.ch)
		if w.replayFailed != nil && !w.replayFailed[dest] {
			// Re-executing under confined recovery: survivors are not waiting
			// at this superstep's barrier, so they get no sentinel — but the
			// outbox is still flushed so any send error surfaces here.
			ob.ch <- outboxItem{ack: ob.ack}
			continue
		}
		b := transport.GetBatch()
		b.From = int32(w.id)
		b.To = int32(dest)
		b.Superstep = int32(w.superstep)
		b.Count = -1
		b.Epoch = w.epoch.Load()
		ob.ch <- outboxItem{batch: b, ack: ob.ack}
	}
	w.ins.outboxDepthGauge(w.id).Set(float64(depth))
	var firstErr error
	for _, ob := range w.outboxes {
		if ob == nil {
			continue
		}
		if err := <-ob.ack; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if span.Active() {
		span.End(observe.Int("queued", int64(depth)))
	}
	return firstErr
}

// drainOutboxes waits for every outbox to empty, discarding any send errors
// accumulated by an aborted execution. Called before a checkpoint restore so
// (a) no sender is still shipping pre-rollback batches when the epoch moves
// and (b) a stale send failure cannot poison the first replayed superstep.
func (w *worker[M]) drainOutboxes() {
	for _, ob := range w.outboxes {
		if ob != nil {
			ob.ch <- outboxItem{ack: ob.ack}
		}
	}
	for _, ob := range w.outboxes {
		if ob != nil {
			<-ob.ack
		}
	}
}

// closeOutboxes shuts down the sender goroutines. Remaining queued batches
// are still attempted (they fail fast once the endpoint closes) and then
// released.
func (w *worker[M]) closeOutboxes() {
	for _, ob := range w.outboxes {
		if ob != nil {
			close(ob.ch)
		}
	}
}

// awaitSentinels blocks until all peers have finished sending for the
// current superstep, or the barrier deadline passes (a peer is stuck or its
// messages were lost past all retries). A timeout is reported as a worker
// failure so the manager can roll back instead of waiting forever.
func (w *worker[M]) awaitSentinels() error {
	if w.numWorkers == 1 {
		return nil
	}
	deadline := time.Now().Add(w.barrierTimeout)
	w.sentinelMu.Lock()
	defer w.sentinelMu.Unlock()
	for w.sentinels[w.superstep] < w.numWorkers-1 {
		if !time.Now().Before(deadline) {
			return fmt.Errorf("worker %d: superstep %d: %d/%d peer sentinels after %v (straggler or lost connection)",
				w.id, w.superstep, w.sentinels[w.superstep], w.numWorkers-1, w.barrierTimeout)
		}
		// Timer-backed cond wait: the callback takes the mutex before
		// broadcasting, so the wakeup cannot be lost.
		t := time.AfterFunc(time.Until(deadline)+time.Millisecond, func() {
			w.sentinelMu.Lock()
			w.sentinelCond.Broadcast()
			w.sentinelMu.Unlock()
		})
		w.sentinelCond.Wait()
		t.Stop()
	}
	delete(w.sentinels, w.superstep)
	return nil
}

// receiveLoop is the worker's background receive thread (paper §III). Each
// incoming batch passes the stale-epoch filter (in-flight data from an
// aborted execution must not leak into replayed supersteps — it would
// double-deliver messages or prematurely satisfy a sentinel wait), then its
// sender's ordered stream: batches are processed strictly in sequence order,
// which both drops retry duplicates and re-orders frames that overtook each
// other across a connection redial. In-order processing also guarantees a
// sentinel is seen only after every data batch it fences.
func (w *worker[M]) receiveLoop() {
	for {
		b, err := w.endpoint.Recv()
		if err != nil {
			return // endpoint closed
		}
		cur := w.epoch.Load()
		if b.Epoch != cur {
			w.releaseRecv(b) // dead stream from before a rollback
			continue
		}
		if b.Seq == 0 {
			// Unsequenced: the engine always stamps, but raw transport users
			// (tests, tools) may not — process immediately, no ordering.
			w.processBatch(b)
			continue
		}
		from := b.From // processBatch recycles b; don't touch it afterwards
		st := &w.recvStreams[from]
		if st.epoch != cur {
			// First batch of a new epoch from this sender: abandon the old
			// stream, pending stragglers included.
			st.epoch = cur
			st.next = 1
			for s, p := range st.pending {
				delete(st.pending, s)
				w.releaseRecv(p)
			}
		}
		switch {
		case b.Seq < st.next: // duplicate of a processed batch (retried send)
			w.releaseRecv(b)
		case b.Seq > st.next: // overtook the gap: hold until it fills
			if st.pending == nil {
				st.pending = make(map[int32]*transport.Batch)
			}
			if _, dup := st.pending[b.Seq]; dup {
				w.releaseRecv(b)
			} else {
				st.pending[b.Seq] = b
			}
		default:
			w.processBatch(b)
			st.next++
			for {
				p, ok := st.pending[st.next]
				if !ok {
					break
				}
				delete(st.pending, st.next)
				w.processBatch(p)
				st.next++
			}
			w.recvInv.checkStream(from, st.next, st.pending)
		}
	}
}

// processBatch consumes one in-order batch: sentinels bump the barrier
// count, data batches are decoded into next-superstep inboxes, and the
// batch's pooled payload and struct are recycled.
func (w *worker[M]) processBatch(b *transport.Batch) {
	if b.Count < 0 { // sentinel
		w.recvInv.noteSentinel(b)
		w.sentinelMu.Lock()
		w.sentinels[int(b.Superstep)]++
		w.sentinelCond.Broadcast()
		w.sentinelMu.Unlock()
		transport.PutBatch(b)
		return
	}
	w.recvMu.Lock()
	w.recvBytes[int(b.Superstep)] += b.WireSize()
	w.recvMsgs[int(b.Superstep)] += int64(b.Count)
	w.recvMu.Unlock()
	data := b.Payload
	for len(data) >= msgWireOverhead {
		to, size := readMsgHeader(data)
		data = data[msgWireOverhead:]
		m, _ := w.codec.Decode(data[:size])
		data = data[size:]
		li := w.globalToLocal[to]
		if li < 0 {
			continue // misrouted: drop (cannot happen with valid assignment)
		}
		w.deliverLocal(li, m, int64(size+msgWireOverhead))
	}
	w.releaseRecv(b)
}

// releaseRecv recycles a fully consumed incoming batch. The receiver is the
// final owner on every transport: TCP batches were allocated by the framing
// reader, in-process batches were handed off by the sending worker.
func (w *worker[M]) releaseRecv(b *transport.Batch) {
	if b.Payload != nil {
		transport.PutPayload(b.Payload)
		b.Payload = nil
	}
	transport.PutBatch(b)
}

func (w *worker[M]) resetStepCounters() {
	w.statSentLocal.Store(0)
	w.statSentRemote.Store(0)
	w.statBytesOut.Store(0)
	w.statComputeOps.Store(0)
	for i := range w.peersContacted {
		w.peersContacted[i].Store(false)
	}
}

func (w *worker[M]) checkIn(msg barrierMsg) {
	if msg.Epoch == 0 {
		msg.Epoch = int(w.epoch.Load())
	}
	body, err := json.Marshal(msg)
	if err != nil {
		body = []byte(fmt.Sprintf(`{"w":%d,"s":%d,"err":"marshal: %v"}`, msg.Worker, msg.Superstep, err))
	}
	w.barrierQ.Put(body)
}

// Aggregator merging across compute slots.
func (w *worker[M]) mergeAggs(slot map[string]float64) {
	if len(slot) == 0 {
		return
	}
	w.aggMu.Lock()
	if w.stepAggs == nil {
		w.stepAggs = make(map[string]float64)
	}
	for name, v := range slot {
		if prev, ok := w.stepAggs[name]; ok {
			w.stepAggs[name] = w.aggOp(name).combine(prev, v)
		} else {
			w.stepAggs[name] = v
		}
	}
	w.aggMu.Unlock()
}

func (w *worker[M]) drainAggs() map[string]float64 {
	w.aggMu.Lock()
	aggs := w.stepAggs
	w.stepAggs = nil
	w.aggMu.Unlock()
	return aggs
}
