package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pregelnet/internal/cloud"
	"pregelnet/internal/graph"
	"pregelnet/internal/observe"
	"pregelnet/internal/partition"
	"pregelnet/internal/transport"
)

const (
	inboxStripes = 64
	// queueMaxWait bounds a worker's idle wait for the next step token. The
	// manager closes the queues at job teardown, which unblocks waiters
	// immediately; this is only a backstop against an orphaned worker.
	queueMaxWait = 10 * time.Minute
)

// stepToken is the manager→worker control message starting one superstep.
type stepToken struct {
	Superstep  int                `json:"s"`
	Halt       bool               `json:"halt,omitempty"`
	Injections []graph.VertexID   `json:"inj,omitempty"`
	Aggregates map[string]float64 `json:"agg,omitempty"`
	// Checkpoint asks the worker to snapshot its state before computing.
	Checkpoint bool `json:"ckpt,omitempty"`
	// RestoreTo, when non-nil, asks the worker to roll back to the snapshot
	// taken before the given superstep instead of computing.
	RestoreTo *int `json:"restore,omitempty"`
	// Epoch is the recovery generation of a restore token (the manager's
	// rollback count, starting at 1). Workers adopt it as their data-plane
	// batch epoch and skip restore tokens for an epoch they have already
	// restored, so at-least-once token delivery (duplicates, re-leases
	// arriving after replay started) cannot roll state back mid-job.
	Epoch int `json:"epoch,omitempty"`
}

// barrierMsg is the worker→manager check-in ending one superstep. It carries
// the per-worker statistics the manager needs for halt detection, swath
// heuristics, cost modelling, and the paper's per-worker plots.
type barrierMsg struct {
	Worker      int                `json:"w"`
	Superstep   int                `json:"s"`
	Active      int64              `json:"active"`
	ActiveAfter int64              `json:"after"`
	SentLocal   int64              `json:"sl"`
	SentRemote  int64              `json:"sr"`
	RecvRemote  int64              `json:"rr"`
	BytesOut    int64              `json:"bo"`
	BytesIn     int64              `json:"bi"`
	PeakMemory  int64              `json:"mem"`
	ComputeOps  int64              `json:"ops"`
	Peers       int                `json:"peers"`
	Aggregates  map[string]float64 `json:"agg,omitempty"`
	Retries     int64              `json:"rt,omitempty"`
	Err         string             `json:"err,omitempty"`
	Restored    bool               `json:"restored,omitempty"`
}

type worker[M any] struct {
	id         int
	numWorkers int
	g          *graph.Graph
	assign     partition.Assignment
	codec      Codec[M]
	combiner   Combiner[M]
	flushBytes int
	aggOps     map[string]AggOp
	parallel   int

	owned         []graph.VertexID
	globalToLocal []int32
	halted        []bool
	program       VertexProgram[M]

	inboxCur      [][]M
	inboxCurBytes int64
	inboxNext     [][]M
	inboxNextByts atomic.Int64
	inboxLocks    [inboxStripes]sync.Mutex

	endpoint transport.Endpoint
	stepQ    *cloud.Queue
	barrierQ *cloud.Queue

	ckptStore  *cloud.BlobStore
	failInject func(worker, superstep int) error

	tracer *observe.Tracer
	ins    *jobInstruments

	// Robustness state (chaos substrate).
	retry          cloud.RetryPolicy // retries transient faults; counts into statRetries
	visibility     time.Duration     // control-plane lease visibility
	barrierTimeout time.Duration     // sentinel-wait deadline (straggler bound)
	doneThrough    int               // highest superstep executed; duplicate step tokens ≤ this are skipped
	epoch          atomic.Int32      // recovery epoch stamped on outgoing batches
	sendSeq        []int32           // per-destination send sequence (guarded by sendMu)
	lastSeq        []int32           // per-sender last received sequence (receive goroutine only)
	statRetries    atomic.Int64

	superstep   int
	prevAggs    map[string]float64
	injectedSet map[int32]bool

	aggMu    sync.Mutex
	stepAggs map[string]float64

	// Per-step counters (reset at step start). Receiver-side counters are
	// atomics because the receive goroutine updates them concurrently.
	statSentLocal  atomic.Int64
	statSentRemote atomic.Int64
	statBytesOut   atomic.Int64
	statComputeOps atomic.Int64
	peersContacted []atomic.Bool

	// Receive-side counters are keyed by the batch's superstep: a fast peer
	// can deliver step-s batches before this worker has even started step s,
	// so a per-step reset would race (and make BytesIn nondeterministic).
	recvMu    sync.Mutex
	recvMsgs  map[int]int64
	recvBytes map[int]int64

	// Sentinel tracking: peers that finished sending for a given superstep.
	sentinelMu   sync.Mutex
	sentinelCond *sync.Cond
	sentinels    map[int]int

	sendMu sync.Mutex // serializes endpoint.Send across compute goroutines
}

func newWorker[M any](spec *JobSpec[M], id int, owned []graph.VertexID,
	globalToLocal []int32, ep transport.Endpoint, aggOps map[string]AggOp,
	ins *jobInstruments) *worker[M] {
	w := &worker[M]{
		id:             id,
		numWorkers:     spec.NumWorkers,
		g:              spec.Graph,
		assign:         spec.Assignment,
		codec:          spec.Codec,
		combiner:       spec.Combiner,
		flushBytes:     spec.FlushBytes,
		aggOps:         aggOps,
		parallel:       spec.ComputeParallelism,
		owned:          owned,
		globalToLocal:  globalToLocal,
		halted:         make([]bool, len(owned)),
		inboxCur:       make([][]M, len(owned)),
		inboxNext:      make([][]M, len(owned)),
		endpoint:       ep,
		stepQ:          spec.Queues.Queue(fmt.Sprintf("step-%d", id)),
		barrierQ:       spec.Queues.Queue("barrier"),
		peersContacted: make([]atomic.Bool, spec.NumWorkers),
		sentinels:      make(map[int]int),
		recvMsgs:       make(map[int]int64),
		recvBytes:      make(map[int]int64),
		visibility:     spec.QueueVisibility,
		barrierTimeout: spec.BarrierTimeout,
		doneThrough:    -1,
		sendSeq:        make([]int32, spec.NumWorkers),
		lastSeq:        make([]int32, spec.NumWorkers),
	}
	w.sentinelCond = sync.NewCond(&w.sentinelMu)
	w.ckptStore = spec.CheckpointStore
	w.failInject = spec.FailureInjector
	if ins == nil {
		ins = newJobInstruments(nil, nil)
	}
	w.tracer = spec.Tracer
	w.ins = ins
	w.retry = spec.Retry
	userOnRetry := spec.Retry.OnRetry
	w.retry.OnRetry = func(attempt int, err error) {
		w.statRetries.Add(1)
		w.ins.retries.Inc()
		if w.tracer.Enabled() {
			w.tracer.Emit(observe.KindRetry, w.id, w.superstep,
				observe.Int("attempt", int64(attempt)), observe.Str("err", err.Error()))
		}
		if userOnRetry != nil {
			userOnRetry(attempt, err)
		}
	}
	for i := range w.halted {
		w.halted[i] = !spec.ActivateAll
	}
	w.program = spec.NewProgram(id, spec.Graph, owned)
	return w
}

func (w *worker[M]) aggOp(name string) AggOp {
	if op, ok := w.aggOps[name]; ok {
		return op
	}
	for pat, op := range w.aggOps {
		if strings.HasSuffix(pat, "*") && strings.HasPrefix(name, pat[:len(pat)-1]) {
			return op
		}
	}
	return AggSum
}

// run executes the worker loop until a halt token arrives or an error makes
// progress impossible. It always reports via the barrier queue so the
// manager never deadlocks.
func (w *worker[M]) run() {
	go w.receiveLoop()
	for {
		waitSpan := w.tracer.Start(observe.KindQueueWait, w.id, w.doneThrough+1)
		waitStart := time.Now()
		lease := w.stepQ.GetWait(w.visibility, queueMaxWait)
		w.ins.stepWait.Observe(time.Since(waitStart).Seconds())
		waitSpan.End()
		if lease == nil {
			return // queues closed: job torn down
		}
		var tok stepToken
		err := json.Unmarshal(lease.Body, &tok)
		_ = w.stepQ.Delete(lease.ID) // may fail if the lease expired; dedupe below absorbs redelivery
		if err != nil {
			w.checkIn(barrierMsg{Worker: w.id, Err: fmt.Sprintf("bad step token: %v", err)})
			return
		}
		if tok.Halt {
			w.endpoint.Close()
			return
		}
		if tok.RestoreTo != nil {
			if int32(tok.Epoch) <= w.epoch.Load() {
				// Duplicate restore token (queue duplicate or expired lease
				// redelivered after replay began) for a rollback this worker
				// already performed: restoring again would silently revert
				// state mid-job, so it is dropped.
				continue
			}
			msg := barrierMsg{Worker: w.id, Superstep: *tok.RestoreTo, Restored: true}
			if err := w.restore(w.ckptStore, *tok.RestoreTo, int32(tok.Epoch)); err != nil {
				msg.Err = err.Error()
			} else {
				// Replayed supersteps start at RestoreTo; tokens for them must
				// execute even though they were executed before the rollback.
				w.doneThrough = *tok.RestoreTo - 1
			}
			w.checkIn(msg)
			continue
		}
		if tok.Superstep <= w.doneThrough {
			// Duplicate delivery of a step token already executed (queue
			// at-least-once semantics: a re-leased or duplicated message).
			// Re-executing would double-send messages and double check in, so
			// the duplicate is acknowledged and dropped.
			continue
		}
		w.runSuperstep(&tok)
		w.doneThrough = tok.Superstep
	}
}

func (w *worker[M]) runSuperstep(tok *stepToken) {
	w.superstep = tok.Superstep
	w.prevAggs = tok.Aggregates
	w.resetStepCounters()
	if tok.Checkpoint {
		if err := w.snapshot(w.ckptStore); err != nil {
			w.checkIn(barrierMsg{Worker: w.id, Superstep: w.superstep, Err: err.Error()})
			return
		}
	}
	// Re-establish peer sockets each superstep (paper §III: avoids socket
	// timeouts on long-running jobs).
	if err := w.endpoint.ResetPeers(); err != nil {
		w.checkIn(barrierMsg{Worker: w.id, Superstep: w.superstep, Err: err.Error()})
		return
	}

	// Determine the active set: vertices with pending messages, vertices
	// that did not vote to halt, and scheduler injections.
	injected := make(map[int32]bool, len(tok.Injections))
	for _, v := range tok.Injections {
		li := w.globalToLocal[v]
		if li < 0 {
			w.checkIn(barrierMsg{Worker: w.id, Superstep: w.superstep,
				Err: fmt.Sprintf("injection %d not owned by worker %d", v, w.id)})
			return
		}
		injected[li] = true
	}
	w.injectedSet = injected
	active := make([]int32, 0, len(injected))
	for i := range w.owned {
		li := int32(i)
		if len(w.inboxCur[li]) > 0 || !w.halted[li] || injected[li] {
			active = append(active, li)
		}
	}

	// Parallel compute across cores.
	computeSpan := w.tracer.Start(observe.KindCompute, w.id, w.superstep)
	var wg sync.WaitGroup
	p := w.parallel
	if p > len(active) && len(active) > 0 {
		p = len(active)
	}
	if p < 1 {
		p = 1
	}
	errCh := make(chan error, p)
	for slot := 0; slot < p; slot++ {
		lo := len(active) * slot / p
		hi := len(active) * (slot + 1) / p
		wg.Add(1)
		go func(vertices []int32) {
			defer wg.Done()
			if err := w.computeSlice(vertices); err != nil {
				errCh <- err
			}
		}(active[lo:hi])
	}
	wg.Wait()
	select {
	case err := <-errCh:
		computeSpan.End()
		w.checkIn(barrierMsg{Worker: w.id, Superstep: w.superstep, Err: err.Error()})
		return
	default:
	}
	if computeSpan.Active() {
		computeSpan.End(
			observe.Int("active", int64(len(active))),
			observe.Int("sent", w.statSentLocal.Load()+w.statSentRemote.Load()),
			observe.Int("bytes_out", w.statBytesOut.Load()))
	}

	// All compute done and buffers flushed: notify peers and wait until
	// every peer's data for this superstep has arrived (BSP barrier
	// condition 2: all messages delivered). The wait is bounded: a peer that
	// never delivers (dropped connection past retries, stalled VM) must not
	// hang this worker forever — the timeout surfaces as a failure the
	// manager recovers from by rollback.
	if err := w.broadcastSentinels(); err != nil {
		w.checkIn(barrierMsg{Worker: w.id, Superstep: w.superstep, Err: err.Error()})
		return
	}
	barrierSpan := w.tracer.Start(observe.KindBarrierWait, w.id, w.superstep)
	if err := w.awaitSentinels(); err != nil {
		barrierSpan.End()
		w.checkIn(barrierMsg{Worker: w.id, Superstep: w.superstep, Err: err.Error()})
		return
	}
	barrierSpan.End()

	// Memory accounting: messages held for this step + messages buffered for
	// the next + program state (paper §IV: buffered messages dominate).
	var stateBytes int64
	if sr, ok := w.program.(StateReporter); ok {
		stateBytes = sr.StateBytes()
	}
	peakMem := w.inboxCurBytes + w.inboxNextByts.Load() + stateBytes

	// Swap inboxes for the next superstep.
	for i := range w.inboxCur {
		w.inboxCur[i] = nil
	}
	w.inboxCur, w.inboxNext = w.inboxNext, w.inboxCur
	w.inboxCurBytes = w.inboxNextByts.Load()
	w.inboxNextByts.Store(0)

	var activeAfter int64
	for i := range w.halted {
		if !w.halted[i] {
			activeAfter++
		}
	}
	peers := 0
	for i := range w.peersContacted {
		if w.peersContacted[i].Load() {
			peers++
		}
	}
	// All step-s batches have arrived (sentinels seen), so these totals are
	// complete and deterministic.
	w.recvMu.Lock()
	recvMsgs := w.recvMsgs[w.superstep]
	recvBytes := w.recvBytes[w.superstep]
	delete(w.recvMsgs, w.superstep)
	delete(w.recvBytes, w.superstep)
	w.recvMu.Unlock()
	// Chaos hook: simulate this worker's VM failing after the superstep's
	// work (all messages delivered, so peers are in a consistent state).
	if w.failInject != nil {
		if err := w.failInject(w.id, w.superstep); err != nil {
			w.checkIn(barrierMsg{Worker: w.id, Superstep: w.superstep, Err: err.Error()})
			return
		}
	}
	w.checkIn(barrierMsg{
		Worker:      w.id,
		Superstep:   w.superstep,
		Active:      int64(len(active)),
		ActiveAfter: activeAfter,
		SentLocal:   w.statSentLocal.Load(),
		SentRemote:  w.statSentRemote.Load(),
		RecvRemote:  recvMsgs,
		BytesOut:    w.statBytesOut.Load(),
		BytesIn:     recvBytes,
		PeakMemory:  peakMem,
		ComputeOps:  w.statComputeOps.Load(),
		Peers:       peers,
		Aggregates:  w.drainAggs(),
		Retries:     w.statRetries.Swap(0),
	})
}

// computeSlice runs the user program over a contiguous slice of active
// local vertices using one Context, then flushes its remote buffers.
func (w *worker[M]) computeSlice(vertices []int32) error {
	ctx := &Context[M]{
		w:            w,
		superstep:    w.superstep,
		outRemoteBuf: make([][]byte, w.numWorkers),
		outRemoteCnt: make([]int32, w.numWorkers),
		aggs:         make(map[string]float64),
	}
	if w.combiner != nil {
		ctx.combineStage = make([]map[graph.VertexID]M, w.numWorkers)
	}
	for _, li := range vertices {
		msgs := w.inboxCur[li]
		w.inboxCur[li] = nil
		ctx.vertex = w.owned[li]
		ctx.local = li
		ctx.injected = w.injectedThisStep(li)
		ctx.halted = false
		ctx.computeOps += int64(1 + len(msgs))
		w.program.Compute(ctx, msgs)
		w.halted[li] = ctx.halted
	}
	// Flush combiner stages into the wire buffers, then flush all buffers.
	if ctx.combineStage != nil {
		for dest, stage := range ctx.combineStage {
			for to, m := range stage {
				ctx.encodeRemote(dest, to, m)
			}
			ctx.combineStage[dest] = nil
		}
	}
	for dest := range ctx.outRemoteBuf {
		if len(ctx.outRemoteBuf[dest]) > 0 {
			if err := w.flushSlotBufferErr(ctx, dest); err != nil {
				return err
			}
		}
	}
	if ctx.flushErr != nil {
		return ctx.flushErr
	}
	// Merge per-slot counters.
	w.statComputeOps.Add(ctx.computeOps)
	w.statSentLocal.Add(ctx.sentLocal)
	w.statSentRemote.Add(ctx.sentRemote)
	w.statBytesOut.Add(ctx.remoteBytesOut)
	w.mergeAggs(ctx.aggs)
	return nil
}

// injectedThisStep is threaded through a map rebuilt per superstep; to keep
// the hot path branch-light the worker stores it in a field.
func (w *worker[M]) injectedThisStep(li int32) bool {
	return w.injectedSet != nil && w.injectedSet[li]
}

// deliverLocal appends a message to a co-located vertex's next-step inbox.
// Called concurrently from compute goroutines and the receive loop.
func (w *worker[M]) deliverLocal(li int32, m M, size int64) {
	lock := &w.inboxLocks[int(li)%inboxStripes]
	lock.Lock()
	if w.combiner != nil && len(w.inboxNext[li]) > 0 {
		w.inboxNext[li][0] = w.combiner.Combine(w.inboxNext[li][0], m)
	} else {
		w.inboxNext[li] = append(w.inboxNext[li], m)
		w.inboxNextByts.Add(size)
	}
	lock.Unlock()
}

// flushSlotBuffer sends a slot's buffered batch for one destination worker
// from the mid-step fast path. The first failure is recorded on the Context
// and surfaced when the compute slice finishes, failing the superstep.
func (w *worker[M]) flushSlotBuffer(c *Context[M], dest int) {
	if err := w.flushSlotBufferErr(c, dest); err != nil && c.flushErr == nil {
		c.flushErr = err
	}
}

func (w *worker[M]) flushSlotBufferErr(c *Context[M], dest int) error {
	buf := c.outRemoteBuf[dest]
	if len(buf) == 0 {
		return nil
	}
	b := &transport.Batch{
		From:      int32(w.id),
		To:        int32(dest),
		Superstep: int32(w.superstep),
		Count:     c.outRemoteCnt[dest],
		Payload:   buf,
	}
	c.outRemoteBuf[dest] = nil
	c.outRemoteCnt[dest] = 0
	c.remoteBytesOut += b.WireSize()
	w.peersContacted[dest].Store(true)
	return w.sendBatch(b)
}

// sendBatch stamps a batch with the worker's recovery epoch and the next
// per-destination sequence number, then sends it, retrying transient
// data-plane faults (dropped/stalled connections) with backoff. Receivers
// dedupe by (From, Seq), so a retry can never double-deliver.
func (w *worker[M]) sendBatch(b *transport.Batch) error {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	w.sendSeq[b.To]++
	b.Seq = w.sendSeq[b.To]
	b.Epoch = w.epoch.Load()
	return w.retry.Do(func() error { return w.endpoint.Send(b) })
}

// broadcastSentinels tells every peer this worker is done sending for the
// current superstep. Sentinels are zero-payload batches with Count == -1.
func (w *worker[M]) broadcastSentinels() error {
	for dest := 0; dest < w.numWorkers; dest++ {
		if dest == w.id {
			continue
		}
		b := &transport.Batch{
			From:      int32(w.id),
			To:        int32(dest),
			Superstep: int32(w.superstep),
			Count:     -1,
		}
		if err := w.sendBatch(b); err != nil {
			return err
		}
	}
	return nil
}

// awaitSentinels blocks until all peers have finished sending for the
// current superstep, or the barrier deadline passes (a peer is stuck or its
// messages were lost past all retries). A timeout is reported as a worker
// failure so the manager can roll back instead of waiting forever.
func (w *worker[M]) awaitSentinels() error {
	if w.numWorkers == 1 {
		return nil
	}
	deadline := time.Now().Add(w.barrierTimeout)
	w.sentinelMu.Lock()
	defer w.sentinelMu.Unlock()
	for w.sentinels[w.superstep] < w.numWorkers-1 {
		if !time.Now().Before(deadline) {
			return fmt.Errorf("worker %d: superstep %d: %d/%d peer sentinels after %v (straggler or lost connection)",
				w.id, w.superstep, w.sentinels[w.superstep], w.numWorkers-1, w.barrierTimeout)
		}
		// Timer-backed cond wait: the callback takes the mutex before
		// broadcasting, so the wakeup cannot be lost.
		t := time.AfterFunc(time.Until(deadline)+time.Millisecond, func() {
			w.sentinelMu.Lock()
			w.sentinelCond.Broadcast()
			w.sentinelMu.Unlock()
		})
		w.sentinelCond.Wait()
		t.Stop()
	}
	delete(w.sentinels, w.superstep)
	return nil
}

// receiveLoop is the worker's background receive thread (paper §III): it
// deserializes incoming batches and routes messages to target vertices'
// next-superstep inboxes.
func (w *worker[M]) receiveLoop() {
	for {
		b, err := w.endpoint.Recv()
		if err != nil {
			return // endpoint closed
		}
		// Duplicate suppression: a sender may retry a batch after a transient
		// fault whose first attempt was actually delivered. Sequence numbers
		// are monotonic per sender, so anything at or below the last seen
		// sequence is a duplicate.
		if b.Seq != 0 {
			if b.Seq <= w.lastSeq[b.From] {
				continue
			}
			w.lastSeq[b.From] = b.Seq
		}
		// Stale-epoch suppression: after a checkpoint rollback all workers
		// advance their recovery epoch in lockstep; batches still in flight
		// from the aborted execution carry the old epoch and must not leak
		// into replayed supersteps (they would double-deliver messages or
		// prematurely satisfy a sentinel wait).
		if b.Epoch != w.epoch.Load() {
			continue
		}
		if b.Count < 0 { // sentinel
			w.sentinelMu.Lock()
			w.sentinels[int(b.Superstep)]++
			w.sentinelCond.Broadcast()
			w.sentinelMu.Unlock()
			continue
		}
		w.recvMu.Lock()
		w.recvBytes[int(b.Superstep)] += b.WireSize()
		w.recvMsgs[int(b.Superstep)] += int64(b.Count)
		w.recvMu.Unlock()
		data := b.Payload
		for len(data) >= msgWireOverhead {
			to, size := readMsgHeader(data)
			data = data[msgWireOverhead:]
			m, n := w.codec.Decode(data[:size])
			_ = n
			data = data[size:]
			li := w.globalToLocal[to]
			if li < 0 {
				continue // misrouted: drop (cannot happen with valid assignment)
			}
			w.deliverLocal(li, m, int64(size+msgWireOverhead))
		}
	}
}

func (w *worker[M]) resetStepCounters() {
	w.statSentLocal.Store(0)
	w.statSentRemote.Store(0)
	w.statBytesOut.Store(0)
	w.statComputeOps.Store(0)
	for i := range w.peersContacted {
		w.peersContacted[i].Store(false)
	}
}

func (w *worker[M]) checkIn(msg barrierMsg) {
	body, err := json.Marshal(msg)
	if err != nil {
		body = []byte(fmt.Sprintf(`{"w":%d,"s":%d,"err":"marshal: %v"}`, msg.Worker, msg.Superstep, err))
	}
	w.barrierQ.Put(body)
}

// Aggregator merging across compute slots.
func (w *worker[M]) mergeAggs(slot map[string]float64) {
	if len(slot) == 0 {
		return
	}
	w.aggMu.Lock()
	if w.stepAggs == nil {
		w.stepAggs = make(map[string]float64)
	}
	for name, v := range slot {
		if prev, ok := w.stepAggs[name]; ok {
			w.stepAggs[name] = w.aggOp(name).combine(prev, v)
		} else {
			w.stepAggs[name] = v
		}
	}
	w.aggMu.Unlock()
}

func (w *worker[M]) drainAggs() map[string]float64 {
	w.aggMu.Lock()
	aggs := w.stepAggs
	w.stepAggs = nil
	w.aggMu.Unlock()
	return aggs
}
