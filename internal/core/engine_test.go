package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"pregelnet/internal/cloud"
	"pregelnet/internal/graph"
	"pregelnet/internal/partition"
	"pregelnet/internal/transport"
)

// bfsProgram computes unweighted shortest-path distances from injected
// sources: the canonical traversal exercise for the engine.
type bfsProgram struct {
	dist []int32 // per local vertex, -1 = unreached
}

func newBFSProgram(_ int, _ *graph.Graph, owned []graph.VertexID) VertexProgram[uint32] {
	p := &bfsProgram{dist: make([]int32, len(owned))}
	for i := range p.dist {
		p.dist[i] = -1
	}
	return p
}

func (p *bfsProgram) Compute(ctx *Context[uint32], msgs []uint32) {
	best := int32(-1)
	if ctx.IsInjected() {
		best = 0
	}
	for _, m := range msgs {
		if best < 0 || int32(m) < best {
			best = int32(m)
		}
	}
	li := ctx.LocalIndex()
	if best >= 0 && (p.dist[li] < 0 || best < p.dist[li]) {
		p.dist[li] = best
		ctx.SendToNeighbors(uint32(best + 1))
	}
	ctx.VoteToHalt()
}

func (p *bfsProgram) StateBytes() int64 { return int64(4 * len(p.dist)) }

// bfsDistances merges per-worker results into a global distance array.
func bfsDistances(res *JobResult[uint32], n int) []int32 {
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	for w, prog := range res.Programs {
		p := prog.(*bfsProgram)
		for li, v := range res.Owned[w] {
			dist[v] = p.dist[li]
		}
	}
	return dist
}

func bfsSpec(g *graph.Graph, workers int, src graph.VertexID) JobSpec[uint32] {
	return JobSpec[uint32]{
		Graph:      g,
		NumWorkers: workers,
		NewProgram: newBFSProgram,
		Codec:      Uint32Codec{},
		Scheduler:  NewAllAtOnce([]graph.VertexID{src}),
	}
}

func checkBFSMatches(t *testing.T, g *graph.Graph, res *JobResult[uint32], src graph.VertexID) {
	t.Helper()
	want := graph.BFS(g, src)
	got := bfsDistances(res, g.NumVertices())
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: dist = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBFSSingleWorker(t *testing.T) {
	g := graph.Ring(32)
	res, err := Run(bfsSpec(g, 1, 5))
	if err != nil {
		t.Fatal(err)
	}
	checkBFSMatches(t, g, res, 5)
	// A ring of 32 from one source: eccentricity 16 → 16 message-passing
	// steps + injection step + final empty step.
	if res.Supersteps < 17 || res.Supersteps > 19 {
		t.Errorf("supersteps = %d, want ~18", res.Supersteps)
	}
}

func TestBFSMultiWorkerRemoteMessaging(t *testing.T) {
	g := graph.ErdosRenyi(300, 900, 42)
	res, err := Run(bfsSpec(g, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	checkBFSMatches(t, g, res, 0)
	// With hash partitioning most messages must have crossed workers.
	var local, remote int64
	for _, s := range res.Steps {
		local += s.SentLocal
		remote += s.SentRemote
	}
	if remote == 0 || remote < local {
		t.Errorf("expected mostly remote messages, got local=%d remote=%d", local, remote)
	}
}

func TestBFSOverTCP(t *testing.T) {
	g := graph.ErdosRenyi(150, 500, 7)
	network, err := transport.NewTCPNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	defer network.Close()
	spec := bfsSpec(g, 3, 1)
	spec.Network = network
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	checkBFSMatches(t, g, res, 1)
}

func TestBFSWithMinCombiner(t *testing.T) {
	g := graph.ErdosRenyi(200, 800, 9)
	spec := bfsSpec(g, 4, 0)
	spec.Combiner = MinUint32Combiner{}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	checkBFSMatches(t, g, res, 0)
}

func TestCombinerReducesPeakMemory(t *testing.T) {
	g := graph.Complete(64) // every vertex messages every other: max combining
	plain, err := Run(bfsSpec(g, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	spec := bfsSpec(g, 4, 0)
	spec.Combiner = MinUint32Combiner{}
	combined, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if combined.PeakMemory() >= plain.PeakMemory() {
		t.Errorf("combiner did not reduce peak memory: %d vs %d",
			combined.PeakMemory(), plain.PeakMemory())
	}
}

func TestHashAssignmentIsDefault(t *testing.T) {
	g := graph.Ring(16)
	spec := bfsSpec(g, 4, 0)
	spec.Assignment = nil
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
}

func TestCustomAssignment(t *testing.T) {
	g := graph.Ring(64)
	spec := bfsSpec(g, 4, 0)
	spec.Assignment = partition.Chunk{}.Partition(g, 4)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	checkBFSMatches(t, g, res, 0)
	// Chunked ring: almost all messages are local.
	var local, remote int64
	for _, s := range res.Steps {
		local += s.SentLocal
		remote += s.SentRemote
	}
	if local == 0 || remote > local {
		t.Errorf("chunked ring should be mostly local: local=%d remote=%d", local, remote)
	}
}

// haltImmediately votes to halt without sending anything.
type haltImmediately struct{}

func (haltImmediately) Compute(ctx *Context[uint32], _ []uint32) { ctx.VoteToHalt() }

func TestActivateAllThenHalt(t *testing.T) {
	g := graph.Ring(10)
	res, err := Run(JobSpec[uint32]{
		Graph:       g,
		NumWorkers:  2,
		NewProgram:  func(int, *graph.Graph, []graph.VertexID) VertexProgram[uint32] { return haltImmediately{} },
		Codec:       Uint32Codec{},
		ActivateAll: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 1 {
		t.Errorf("supersteps = %d, want 1", res.Supersteps)
	}
	if res.Steps[0].ActiveVertices != 10 {
		t.Errorf("active = %d, want 10", res.Steps[0].ActiveVertices)
	}
}

func TestNoActivationIsError(t *testing.T) {
	g := graph.Ring(4)
	_, err := Run(JobSpec[uint32]{
		Graph:      g,
		NumWorkers: 1,
		NewProgram: func(int, *graph.Graph, []graph.VertexID) VertexProgram[uint32] { return haltImmediately{} },
		Codec:      Uint32Codec{},
	})
	if err == nil || !strings.Contains(err.Error(), "activation") {
		t.Errorf("err = %v, want activation error", err)
	}
}

// chattyProgram never halts and always messages neighbors: used to test the
// MaxSupersteps guard.
type chattyProgram struct{}

func (chattyProgram) Compute(ctx *Context[uint32], _ []uint32) { ctx.SendToNeighbors(1) }

func TestMaxSuperstepsGuard(t *testing.T) {
	g := graph.Ring(8)
	_, err := Run(JobSpec[uint32]{
		Graph:         g,
		NumWorkers:    2,
		NewProgram:    func(int, *graph.Graph, []graph.VertexID) VertexProgram[uint32] { return chattyProgram{} },
		Codec:         Uint32Codec{},
		ActivateAll:   true,
		MaxSupersteps: 5,
	})
	if err == nil || !strings.Contains(err.Error(), "MaxSupersteps") {
		t.Errorf("err = %v, want MaxSupersteps error", err)
	}
}

func TestMemoryBlowoutFailsJob(t *testing.T) {
	g := graph.Complete(64)
	spec := bfsSpec(g, 2, 0)
	spec.CostModel = cloud.DefaultCostModel(cloud.LargeVM().WithMemory(64)) // absurdly tiny
	_, err := Run(spec)
	if !errors.Is(err, cloud.ErrMemoryBlowout) {
		t.Errorf("err = %v, want ErrMemoryBlowout", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	g := graph.Ring(40)
	res, err := Run(bfsSpec(g, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	// BFS on a connected graph sends exactly deg(v) messages per first
	// discovery: total = sum over computed vertices of messages... at
	// minimum every vertex forwards once: >= NumEdges messages total? On a
	// ring each vertex sends 2 when discovered: 2*40 ≈ 80 total.
	if res.TotalMessages() < int64(g.NumVertices()) {
		t.Errorf("total messages = %d, too low", res.TotalMessages())
	}
	for _, s := range res.Steps {
		if len(s.WorkerSent) != 4 || len(s.WorkerMemory) != 4 || len(s.WorkerActive) != 4 {
			t.Fatalf("per-worker arrays wrong length: %+v", s)
		}
		var sum int64
		for _, ws := range s.WorkerSent {
			sum += ws
		}
		if sum != s.TotalSent() {
			t.Errorf("step %d: worker sent sum %d != total %d", s.Superstep, sum, s.TotalSent())
		}
		if s.SimSeconds <= 0 {
			t.Errorf("step %d: SimSeconds = %v", s.Superstep, s.SimSeconds)
		}
		if u := s.Utilization(); u < 0 || u > 1 {
			t.Errorf("step %d: utilization %v out of range", s.Superstep, u)
		}
		if s.BarrierSimSeconds <= 0 || s.BarrierSimSeconds > s.SimSeconds {
			t.Errorf("step %d: barrier %v vs total %v", s.Superstep, s.BarrierSimSeconds, s.SimSeconds)
		}
	}
	if res.SimSeconds <= 0 || res.VMSeconds <= 0 || res.CostDollars <= 0 {
		t.Errorf("totals: sim=%v vmsec=%v cost=%v", res.SimSeconds, res.VMSeconds, res.CostDollars)
	}
	if res.WallSeconds <= 0 {
		t.Error("wall time not measured")
	}
}

// aggProgram exercises aggregators: every vertex contributes its degree to
// "deg/sum", its ID to "id/min" and "id/max", then halts after verifying the
// previous step's global values.
type aggProgram struct {
	t *testing.T
	g *graph.Graph
	// checked is atomic: Compute runs concurrently across a worker's cores.
	checked atomic.Bool
}

func (p *aggProgram) Compute(ctx *Context[uint32], _ []uint32) {
	switch ctx.Superstep() {
	case 0:
		ctx.Aggregate("deg/sum", float64(ctx.Degree()))
		ctx.Aggregate("id/min", float64(ctx.Vertex()))
		ctx.Aggregate("id/max", float64(ctx.Vertex()))
	case 1:
		if !p.checked.Swap(true) {
			if v, ok := ctx.Agg("deg/sum"); !ok || v != float64(p.g.NumEdges()) {
				p.t.Errorf("deg/sum = %v (%v), want %d", v, ok, p.g.NumEdges())
			}
			if v, ok := ctx.Agg("id/min"); !ok || v != 0 {
				p.t.Errorf("id/min = %v (%v), want 0", v, ok)
			}
			if v, ok := ctx.Agg("id/max"); !ok || v != float64(p.g.NumVertices()-1) {
				p.t.Errorf("id/max = %v (%v), want %d", v, ok, p.g.NumVertices()-1)
			}
		}
		ctx.VoteToHalt()
	}
}

func TestAggregators(t *testing.T) {
	g := graph.ErdosRenyi(64, 128, 3)
	_, err := Run(JobSpec[uint32]{
		Graph:       g,
		NumWorkers:  4,
		NewProgram:  func(int, *graph.Graph, []graph.VertexID) VertexProgram[uint32] { return &aggProgram{t: t, g: g} },
		Codec:       Uint32Codec{},
		ActivateAll: true,
		AggregatorOps: map[string]AggOp{
			"id/min": AggMin,
			"id/max": AggMax,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggregatorPrefixOps(t *testing.T) {
	w := &worker[uint32]{aggOps: map[string]AggOp{"min/*": AggMin, "exact": AggMax}}
	if w.aggOp("min/anything") != AggMin {
		t.Error("prefix op not matched")
	}
	if w.aggOp("exact") != AggMax {
		t.Error("exact op not matched")
	}
	if w.aggOp("other") != AggSum {
		t.Error("default should be AggSum")
	}
}

func TestInjectionReachesCorrectWorkerAndFlag(t *testing.T) {
	g := graph.Ring(16)
	injectedSeen := make([]bool, 16)
	type prog struct{ VertexProgram[uint32] }
	_ = prog{}
	res, err := Run(JobSpec[uint32]{
		Graph:      g,
		NumWorkers: 4,
		NewProgram: func(workerID int, _ *graph.Graph, owned []graph.VertexID) VertexProgram[uint32] {
			return computeFunc[uint32](func(ctx *Context[uint32], msgs []uint32) {
				if ctx.IsInjected() {
					injectedSeen[ctx.Vertex()] = true
				}
				ctx.VoteToHalt()
			})
		},
		Codec:     Uint32Codec{},
		Scheduler: NewAllAtOnce([]graph.VertexID{3, 7, 11}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, saw := range injectedSeen {
		want := v == 3 || v == 7 || v == 11
		if saw != want {
			t.Errorf("vertex %d injected=%v, want %v", v, saw, want)
		}
	}
	if res.Steps[0].Injected != 3 {
		t.Errorf("Injected stat = %d, want 3", res.Steps[0].Injected)
	}
}

// computeFunc adapts a function to VertexProgram.
type computeFunc[M any] func(*Context[M], []M)

func (f computeFunc[M]) Compute(ctx *Context[M], msgs []M) { f(ctx, msgs) }

func TestSpecValidation(t *testing.T) {
	g := graph.Ring(4)
	valid := bfsSpec(g, 2, 0)
	cases := []struct {
		name   string
		mutate func(*JobSpec[uint32])
	}{
		{"no graph", func(s *JobSpec[uint32]) { s.Graph = nil }},
		{"zero workers", func(s *JobSpec[uint32]) { s.NumWorkers = 0 }},
		{"no program", func(s *JobSpec[uint32]) { s.NewProgram = nil }},
		{"no codec", func(s *JobSpec[uint32]) { s.Codec = nil }},
		{"short assignment", func(s *JobSpec[uint32]) { s.Assignment = partition.Assignment{0} }},
		{"bad assignment", func(s *JobSpec[uint32]) {
			s.Assignment = partition.Assignment{9, 9, 9, 9}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := valid
			tc.mutate(&spec)
			if _, err := Run(spec); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestLargeParallelism(t *testing.T) {
	g := graph.ErdosRenyi(100, 300, 5)
	spec := bfsSpec(g, 2, 0)
	spec.ComputeParallelism = 16
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	checkBFSMatches(t, g, res, 0)
}
